#!/usr/bin/env bash
# Tier-1 verification: the standard build + full test suite, followed by a
# ThreadSanitizer pass over the concurrency-sensitive targets (thread pool,
# sweep engine, metrics registry).  Run from anywhere; builds land in build/
# and build-tsan/.
#
# The ctest runs treat "no tests matched" and any skipped test as failures:
# a silently-skipped suite looks exactly like a green run otherwise.
set -euo pipefail
cd "$(dirname "$0")/.."

# Runs ctest with the given args, failing on skips (and, via
# --no-tests=error, on an empty selection).
run_ctest() {
  local log
  log="$(mktemp)"
  (cd "$1" && shift && ctest --output-on-failure --no-tests=error "$@") \
    | tee "$log"
  if grep -q '\*\*\*Skipped\|SKIPPED' "$log"; then
    rm -f "$log"
    echo "tier-1 FAILED: ctest skipped tests (see output above)" >&2
    exit 1
  fi
  rm -f "$log"
}

echo "== tier-1: standard build + ctest =="
cmake -B build -S .
cmake --build build -j
run_ctest build -j

echo "== tier-1: ThreadSanitizer pass (thread pool + sweep engine + metrics + net) =="
cmake -B build-tsan -S . -DMLCR_SANITIZE=thread
cmake --build build-tsan -j
run_ctest build-tsan -R 'ThreadPool|SweepEngine|Metrics|LruCache|AdmissionQueue|NetServer|NetProtocol|NetJson'

echo "== tier-1: mlcrd daemon smoke (sanitizer build) =="
# Start the daemon on an ephemeral port, plan the paper's Table 3 headline
# config through it, and require the report to be field-for-field identical
# to the in-process SweepEngine::plan_one answer (--check-local compares the
# exact wire encoding).  Then SIGTERM and require a clean drain.
mlcrd_log="$(mktemp)"
./build-tsan/examples/mlcrd --port 0 --queue 64 --deadline-ms 0 \
  --io-threads 2 --solver-threads 2 > "$mlcrd_log" 2>&1 &
mlcrd_pid=$!
port=""
for _ in $(seq 1 100); do
  port="$(grep -oE '127\.0\.0\.1:[0-9]+' "$mlcrd_log" | head -1 | cut -d: -f2 || true)"
  [ -n "$port" ] && break
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "tier-1 FAILED: mlcrd did not report a listening port" >&2
  cat "$mlcrd_log" >&2
  kill -9 "$mlcrd_pid" 2>/dev/null || true
  exit 1
fi
./build-tsan/examples/mlcr_client --port "$port" --check-local \
  --te 3e6 --kappa 0.46 --nstar 1e6 --rates 16,12,8,4 \
  --costs 0.9,2.5,3.9,5.5 --pfs-slope 0.0212 --allocation 60
kill -TERM "$mlcrd_pid"
drained=""
for _ in $(seq 1 300); do
  if ! kill -0 "$mlcrd_pid" 2>/dev/null; then drained=yes; break; fi
  sleep 0.1
done
if [ -z "$drained" ]; then
  echo "tier-1 FAILED: mlcrd did not drain within 30s of SIGTERM" >&2
  cat "$mlcrd_log" >&2
  kill -9 "$mlcrd_pid" 2>/dev/null || true
  exit 1
fi
wait "$mlcrd_pid" || {
  echo "tier-1 FAILED: mlcrd exited non-zero after SIGTERM" >&2
  cat "$mlcrd_log" >&2
  exit 1
}
grep -q 'drained' "$mlcrd_log" || {
  echo "tier-1 FAILED: mlcrd log missing drain confirmation" >&2
  cat "$mlcrd_log" >&2
  exit 1
}
rm -f "$mlcrd_log"

echo "tier-1 OK"
