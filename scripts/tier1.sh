#!/usr/bin/env bash
# Tier-1 verification matrix:
#
#   1. standard build (-Werror) + full ctest suite
#   2. mlcr-lint over the whole tree (also a ctest case; run standalone here
#      so a lint regression fails with the findings on stderr, not a ctest
#      log), then the --graph whole-repo pass (lock-order, transitive
#      blocking calls, determinism taint, metric-name drift) against the
#      committed baseline, plus a baseline staleness check.  Under
#      $GITHUB_ACTIONS both lint runs emit ::error annotations.
#   3. self-contained-header check (each header compiles standalone)
#   4. clang-tidy via scripts/run_tidy.sh (no-op with a warning when the
#      container has no clang-tidy)
#   5. ThreadSanitizer pass over the concurrency-sensitive targets + the
#      mlcrd daemon smoke test, once per wire codec (json, binary),
#      including the graceful-drain check, plus the online re-planning
#      smoke (subscribe -> ingest drifted trace -> pushed plan -> drained)
#   6. AddressSanitizer+UBSan pass over the FULL ctest suite + the same
#      per-codec daemon and re-planning smoke tests
#
# Run from anywhere; builds land in build/, build-tsan/, build-asan/.
#
# The ctest runs treat "no tests matched" and any skipped test as failures:
# a silently-skipped suite looks exactly like a green run otherwise.
set -euo pipefail
cd "$(dirname "$0")/.."

# Runs ctest with the given args, failing on skips (and, via
# --no-tests=error, on an empty selection).
run_ctest() {
  local log
  log="$(mktemp)"
  (cd "$1" && shift && ctest --output-on-failure --no-tests=error "$@") \
    | tee "$log"
  if grep -q '\*\*\*Skipped\|SKIPPED' "$log"; then
    rm -f "$log"
    echo "tier-1 FAILED: ctest skipped tests (see output above)" >&2
    exit 1
  fi
  rm -f "$log"
}

# build_and_test <build-dir> <sanitize> [ctest-regex]
#   Configures (warnings-as-errors always on), builds, and runs ctest —
#   the whole suite, or only tests matching the optional regex.
#   <sanitize> is the MLCR_SANITIZE value ("" = plain build).
build_and_test() {
  local dir="$1" sanitize="$2" regex="${3:-}"
  cmake -B "$dir" -S . -DMLCR_WERROR=ON -DMLCR_SANITIZE="$sanitize"
  cmake --build "$dir" -j
  if [ -n "$regex" ]; then
    run_ctest "$dir" -R "$regex"
  else
    run_ctest "$dir" -j
  fi
}

# daemon_smoke <build-dir> <codec>
#   Starts mlcrd on an ephemeral port, plans the paper's Table 3 headline
#   config through it over the given wire codec (json | binary), and
#   requires the report to be field-for-field identical to the in-process
#   SweepEngine::plan_one answer (--check-local compares the exact wire
#   encoding — bit-identical under either codec by construction).  Then
#   SIGTERM and require a clean drain.
daemon_smoke() {
  local dir="$1" codec="$2" mlcrd_log mlcrd_pid port drained
  mlcrd_log="$(mktemp)"
  "$dir"/examples/mlcrd --port 0 --queue 64 --deadline-ms 0 \
    --shards 2 --solver-threads 2 > "$mlcrd_log" 2>&1 &
  mlcrd_pid=$!
  port=""
  for _ in $(seq 1 100); do
    port="$(grep -oE '127\.0\.0\.1:[0-9]+' "$mlcrd_log" | head -1 \
            | cut -d: -f2 || true)"
    [ -n "$port" ] && break
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "tier-1 FAILED: mlcrd did not report a listening port" >&2
    cat "$mlcrd_log" >&2
    kill -9 "$mlcrd_pid" 2>/dev/null || true
    exit 1
  fi
  "$dir"/examples/mlcr_client --port "$port" --codec "$codec" \
    --check-local \
    --te 3e6 --kappa 0.46 --nstar 1e6 --rates 16,12,8,4 \
    --costs 0.9,2.5,3.9,5.5 --pfs-slope 0.0212 --allocation 60
  # Validate round trip at fusion scale: the daemon's SimReport must be
  # bit-identical to the in-process validate_one answer.
  "$dir"/examples/mlcr_client --port "$port" --codec "$codec" \
    --validate --runs 20 --check-local \
    --te 30 --kappa 0.46 --nstar 1024 --rates 24,18,12,6 \
    --costs 0.9,2.5,3.9,5.5 --pfs-slope 0.0212 --allocation 60
  # Same round trip through the DES backend (few replicas — the rank-level
  # replay is orders of magnitude slower): the served report must still be
  # bit-identical to the in-process answer under this codec.
  "$dir"/examples/mlcr_client --port "$port" --codec "$codec" \
    --validate --backend des --runs 8 --check-local \
    --te 30 --kappa 0.46 --nstar 1024 --rates 24,18,12,6 \
    --costs 0.9,2.5,3.9,5.5 --pfs-slope 0.0212 --allocation 60
  kill -TERM "$mlcrd_pid"
  drained=""
  for _ in $(seq 1 300); do
    if ! kill -0 "$mlcrd_pid" 2>/dev/null; then drained=yes; break; fi
    sleep 0.1
  done
  if [ -z "$drained" ]; then
    echo "tier-1 FAILED: mlcrd did not drain within 30s of SIGTERM" >&2
    cat "$mlcrd_log" >&2
    kill -9 "$mlcrd_pid" 2>/dev/null || true
    exit 1
  fi
  wait "$mlcrd_pid" || {
    echo "tier-1 FAILED: mlcrd exited non-zero after SIGTERM" >&2
    cat "$mlcrd_log" >&2
    exit 1
  }
  grep -q 'drained' "$mlcrd_log" || {
    echo "tier-1 FAILED: mlcrd log missing drain confirmation" >&2
    cat "$mlcrd_log" >&2
    exit 1
  }
  rm -f "$mlcrd_log"
}

# daemon_ctrl_smoke <build-dir> <codec>
#   The online re-planning loop end to end (DESIGN.md section 13): start
#   mlcrd, attach a plan subscriber, ingest a stationary day of observed
#   failures (every level exactly on its planned 16-12-8-4/day schedule, so
#   the posteriors provably stay at the baseline), then three days with the
#   L1 rate doubled.  The subscriber must receive exactly one pushed revised
#   plan (plan_epoch=1); a second subscriber then waits through SIGTERM and
#   must see the {"event":"drained"} goodbye before the daemon exits 0.
daemon_ctrl_smoke() {
  local dir="$1" codec="$2" work mlcrd_pid port sub_pid drain_sub_pid
  work="$(mktemp -d)"
  # Synthetic counter-based traces: deterministic, sorted by time.  Every
  # level appears in both windows — a level with zero events over a day
  # would legitimately read as downward drift.
  awk 'BEGIN{
    day=86400.0; split("16 12 8 4", r, " "); n=0;
    for (l=1; l<=4; ++l) { iv=day/r[l];
      for (t=iv; t<=day; t+=iv) { ts[n]=t; lv[n]=l; ++n } }
    for (i=1;i<n;++i){tt=ts[i];ll=lv[i];j=i-1;
      while(j>=0&&ts[j]>tt){ts[j+1]=ts[j];lv[j+1]=lv[j];--j}
      ts[j+1]=tt;lv[j+1]=ll}
    print "# mlcr failure trace v1";
    for (i=0;i<n;++i) printf "%.17g %d\n", ts[i], lv[i];
  }' > "$work/stationary.txt"
  awk 'BEGIN{
    day=86400.0; start=day; end=4*day; split("32 12 8 4", r, " "); n=0;
    for (l=1; l<=4; ++l) { iv=day/r[l];
      for (t=start+iv; t<=end; t+=iv) { ts[n]=t; lv[n]=l; ++n } }
    for (i=1;i<n;++i){tt=ts[i];ll=lv[i];j=i-1;
      while(j>=0&&ts[j]>tt){ts[j+1]=ts[j];lv[j+1]=lv[j];--j}
      ts[j+1]=tt;lv[j+1]=ll}
    print "# mlcr failure trace v1";
    for (i=0;i<n;++i) printf "%.17g %d\n", ts[i], lv[i];
  }' > "$work/drifted.txt"

  "$dir"/examples/mlcrd --port 0 --queue 64 --shards 2 --solver-threads 2 \
    > "$work/mlcrd.log" 2>&1 &
  mlcrd_pid=$!
  port=""
  for _ in $(seq 1 100); do
    port="$(grep -oE '127\.0\.0\.1:[0-9]+' "$work/mlcrd.log" | head -1 \
            | cut -d: -f2 || true)"
    [ -n "$port" ] && break
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "tier-1 FAILED: mlcrd did not report a listening port" >&2
    cat "$work/mlcrd.log" >&2
    kill -9 "$mlcrd_pid" 2>/dev/null || true
    exit 1
  fi

  "$dir"/examples/mlcr_client --port "$port" --codec "$codec" \
    --subscribe --events 1 > "$work/sub.log" 2>&1 &
  sub_pid=$!
  for _ in $(seq 1 100); do
    grep -q '^subscribed' "$work/sub.log" && break
    sleep 0.1
  done
  grep -q '^subscribed epoch=0' "$work/sub.log" || {
    echo "tier-1 FAILED: subscriber did not ack" >&2
    cat "$work/sub.log" >&2
    kill -9 "$mlcrd_pid" "$sub_pid" 2>/dev/null || true
    exit 1
  }

  "$dir"/examples/mlcr_client --port "$port" --codec "$codec" \
    --ingest "$work/stationary.txt" --observed-seconds 86400 \
    > "$work/ingest1.log"
  grep -q '^drift:     false' "$work/ingest1.log" || {
    echo "tier-1 FAILED: stationary trace read as drift" >&2
    cat "$work/ingest1.log" >&2
    kill -9 "$mlcrd_pid" "$sub_pid" 2>/dev/null || true
    exit 1
  }
  "$dir"/examples/mlcr_client --port "$port" --codec "$codec" \
    --ingest "$work/drifted.txt" --observed-seconds 345600 \
    > "$work/ingest2.log"
  grep -q '^replanned: true' "$work/ingest2.log" || {
    echo "tier-1 FAILED: doubled-L1 trace did not schedule a re-plan" >&2
    cat "$work/ingest2.log" >&2
    kill -9 "$mlcrd_pid" "$sub_pid" 2>/dev/null || true
    exit 1
  }

  # The subscriber exits 0 once the pushed revision (epoch 1) arrives.
  wait "$sub_pid" || {
    echo "tier-1 FAILED: subscriber did not receive the pushed plan" >&2
    cat "$work/sub.log" >&2
    kill -9 "$mlcrd_pid" 2>/dev/null || true
    exit 1
  }
  grep -q '^pushed plan_epoch=1' "$work/sub.log" || {
    echo "tier-1 FAILED: push missing plan_epoch=1" >&2
    cat "$work/sub.log" >&2
    kill -9 "$mlcrd_pid" 2>/dev/null || true
    exit 1
  }

  # A fresh subscriber rides through the drain: SIGTERM must deliver the
  # drained goodbye (--events 0 -> exit 0 on it) before the daemon exits.
  "$dir"/examples/mlcr_client --port "$port" --codec "$codec" \
    --subscribe --events 0 > "$work/drain_sub.log" 2>&1 &
  drain_sub_pid=$!
  for _ in $(seq 1 100); do
    grep -q '^subscribed' "$work/drain_sub.log" && break
    sleep 0.1
  done
  kill -TERM "$mlcrd_pid"
  wait "$drain_sub_pid" || {
    echo "tier-1 FAILED: subscriber not notified on drain" >&2
    cat "$work/drain_sub.log" >&2
    kill -9 "$mlcrd_pid" 2>/dev/null || true
    exit 1
  }
  grep -q '^drained' "$work/drain_sub.log" || {
    echo "tier-1 FAILED: drain goodbye missing from subscriber log" >&2
    cat "$work/drain_sub.log" >&2
    kill -9 "$mlcrd_pid" 2>/dev/null || true
    exit 1
  }
  wait "$mlcrd_pid" || {
    echo "tier-1 FAILED: mlcrd exited non-zero after SIGTERM" >&2
    cat "$work/mlcrd.log" >&2
    exit 1
  }
  rm -rf "$work"
}

echo "== tier-1: standard build (-Werror) + full ctest =="
build_and_test build ""

echo "== tier-1: bench_sim smoke (validation pipeline gates) =="
# Gates: determinism across thread counts, plan-vs-sim error < 5%, and
# (on hosts with >= 8 hardware threads) >= 4x replica-throughput speedup.
rm -f BENCH_sim.json
./build/bench/bench_sim --runs 30
if [ ! -f BENCH_sim.json ]; then
  echo "tier-1 FAILED: bench_sim did not write BENCH_sim.json" >&2
  exit 1
fi
# The determinism bit is the validation pipeline's foundation: a tier-1 run
# must never produce an artifact that records serial != parallel, even if a
# future bench edit were to stop gating on it.
if ! grep -q '"deterministic":true' BENCH_sim.json; then
  echo "tier-1 FAILED: BENCH_sim.json does not record deterministic:true" >&2
  cat BENCH_sim.json >&2
  exit 1
fi

echo "== tier-1: mlcr-lint project invariants =="
# Under GitHub Actions, emit ::error annotations so findings land inline on
# the PR diff; locally, plain text on stderr.
lint_format=text
if [ -n "${GITHUB_ACTIONS:-}" ]; then lint_format=github; fi
./build/tools/mlcr-lint --format="$lint_format" src examples bench tests

echo "== tier-1: mlcr-lint whole-repo graph analysis =="
./build/tools/mlcr-lint --graph --format="$lint_format" \
  --baseline tools/mlcr-lint/baseline.txt src examples bench tests

echo "== tier-1: mlcr-lint baseline is in sync =="
scripts/lint_baseline.sh build

echo "== tier-1: self-contained headers =="
scripts/check_headers.sh

echo "== tier-1: clang-tidy =="
scripts/run_tidy.sh build

echo "== tier-1: ThreadSanitizer pass (thread pool + sweep engine + metrics + net + ctrl + sim fan-out) =="
build_and_test build-tsan thread \
  'ThreadPool|SweepEngine|ShardedLruCache|Metrics|LruCache|AdmissionQueue|NetServer|NetProtocol|NetJson|NetCodec|NetReactor|MonteCarloParallel|MonteCarloChunks|ValidatePipeline|CtrlReplanner|IngestOp|SubscribeOp|DesBackend|BackendRegistry'

echo "== tier-1: mlcrd daemon smoke (TSan build, json codec) =="
daemon_smoke build-tsan json

echo "== tier-1: mlcrd daemon smoke (TSan build, binary codec) =="
daemon_smoke build-tsan binary

echo "== tier-1: online re-planning smoke (TSan build, json codec) =="
daemon_ctrl_smoke build-tsan json

echo "== tier-1: online re-planning smoke (TSan build, binary codec) =="
daemon_ctrl_smoke build-tsan binary

echo "== tier-1: ASan+UBSan pass (full suite) =="
build_and_test build-asan address,undefined

echo "== tier-1: mlcrd daemon smoke (ASan+UBSan build, json codec) =="
daemon_smoke build-asan json

echo "== tier-1: mlcrd daemon smoke (ASan+UBSan build, binary codec) =="
daemon_smoke build-asan binary

echo "== tier-1: online re-planning smoke (ASan+UBSan build, json codec) =="
daemon_ctrl_smoke build-asan json

echo "== tier-1: online re-planning smoke (ASan+UBSan build, binary codec) =="
daemon_ctrl_smoke build-asan binary

echo "tier-1 OK"
