#!/usr/bin/env bash
# Tier-1 verification matrix:
#
#   1. standard build (-Werror) + full ctest suite
#   2. mlcr-lint over the whole tree (also a ctest case; run standalone here
#      so a lint regression fails with the findings on stderr, not a ctest log)
#   3. self-contained-header check (each header compiles standalone)
#   4. clang-tidy via scripts/run_tidy.sh (no-op with a warning when the
#      container has no clang-tidy)
#   5. ThreadSanitizer pass over the concurrency-sensitive targets + the
#      mlcrd daemon smoke test, once per wire codec (json, binary),
#      including the graceful-drain check
#   6. AddressSanitizer+UBSan pass over the FULL ctest suite + the same
#      per-codec daemon smoke tests
#
# Run from anywhere; builds land in build/, build-tsan/, build-asan/.
#
# The ctest runs treat "no tests matched" and any skipped test as failures:
# a silently-skipped suite looks exactly like a green run otherwise.
set -euo pipefail
cd "$(dirname "$0")/.."

# Runs ctest with the given args, failing on skips (and, via
# --no-tests=error, on an empty selection).
run_ctest() {
  local log
  log="$(mktemp)"
  (cd "$1" && shift && ctest --output-on-failure --no-tests=error "$@") \
    | tee "$log"
  if grep -q '\*\*\*Skipped\|SKIPPED' "$log"; then
    rm -f "$log"
    echo "tier-1 FAILED: ctest skipped tests (see output above)" >&2
    exit 1
  fi
  rm -f "$log"
}

# build_and_test <build-dir> <sanitize> [ctest-regex]
#   Configures (warnings-as-errors always on), builds, and runs ctest —
#   the whole suite, or only tests matching the optional regex.
#   <sanitize> is the MLCR_SANITIZE value ("" = plain build).
build_and_test() {
  local dir="$1" sanitize="$2" regex="${3:-}"
  cmake -B "$dir" -S . -DMLCR_WERROR=ON -DMLCR_SANITIZE="$sanitize"
  cmake --build "$dir" -j
  if [ -n "$regex" ]; then
    run_ctest "$dir" -R "$regex"
  else
    run_ctest "$dir" -j
  fi
}

# daemon_smoke <build-dir> <codec>
#   Starts mlcrd on an ephemeral port, plans the paper's Table 3 headline
#   config through it over the given wire codec (json | binary), and
#   requires the report to be field-for-field identical to the in-process
#   SweepEngine::plan_one answer (--check-local compares the exact wire
#   encoding — bit-identical under either codec by construction).  Then
#   SIGTERM and require a clean drain.
daemon_smoke() {
  local dir="$1" codec="$2" mlcrd_log mlcrd_pid port drained
  mlcrd_log="$(mktemp)"
  "$dir"/examples/mlcrd --port 0 --queue 64 --deadline-ms 0 \
    --shards 2 --solver-threads 2 > "$mlcrd_log" 2>&1 &
  mlcrd_pid=$!
  port=""
  for _ in $(seq 1 100); do
    port="$(grep -oE '127\.0\.0\.1:[0-9]+' "$mlcrd_log" | head -1 \
            | cut -d: -f2 || true)"
    [ -n "$port" ] && break
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "tier-1 FAILED: mlcrd did not report a listening port" >&2
    cat "$mlcrd_log" >&2
    kill -9 "$mlcrd_pid" 2>/dev/null || true
    exit 1
  fi
  "$dir"/examples/mlcr_client --port "$port" --codec "$codec" \
    --check-local \
    --te 3e6 --kappa 0.46 --nstar 1e6 --rates 16,12,8,4 \
    --costs 0.9,2.5,3.9,5.5 --pfs-slope 0.0212 --allocation 60
  # Validate round trip at fusion scale: the daemon's SimReport must be
  # bit-identical to the in-process validate_one answer.
  "$dir"/examples/mlcr_client --port "$port" --codec "$codec" \
    --validate --runs 20 --check-local \
    --te 30 --kappa 0.46 --nstar 1024 --rates 24,18,12,6 \
    --costs 0.9,2.5,3.9,5.5 --pfs-slope 0.0212 --allocation 60
  kill -TERM "$mlcrd_pid"
  drained=""
  for _ in $(seq 1 300); do
    if ! kill -0 "$mlcrd_pid" 2>/dev/null; then drained=yes; break; fi
    sleep 0.1
  done
  if [ -z "$drained" ]; then
    echo "tier-1 FAILED: mlcrd did not drain within 30s of SIGTERM" >&2
    cat "$mlcrd_log" >&2
    kill -9 "$mlcrd_pid" 2>/dev/null || true
    exit 1
  fi
  wait "$mlcrd_pid" || {
    echo "tier-1 FAILED: mlcrd exited non-zero after SIGTERM" >&2
    cat "$mlcrd_log" >&2
    exit 1
  }
  grep -q 'drained' "$mlcrd_log" || {
    echo "tier-1 FAILED: mlcrd log missing drain confirmation" >&2
    cat "$mlcrd_log" >&2
    exit 1
  }
  rm -f "$mlcrd_log"
}

echo "== tier-1: standard build (-Werror) + full ctest =="
build_and_test build ""

echo "== tier-1: bench_sim smoke (validation pipeline gates) =="
# Gates: determinism across thread counts, plan-vs-sim error < 5%, and
# (on hosts with >= 8 hardware threads) >= 4x replica-throughput speedup.
rm -f BENCH_sim.json
./build/bench/bench_sim --runs 30
if [ ! -f BENCH_sim.json ]; then
  echo "tier-1 FAILED: bench_sim did not write BENCH_sim.json" >&2
  exit 1
fi
# The determinism bit is the validation pipeline's foundation: a tier-1 run
# must never produce an artifact that records serial != parallel, even if a
# future bench edit were to stop gating on it.
if ! grep -q '"deterministic":true' BENCH_sim.json; then
  echo "tier-1 FAILED: BENCH_sim.json does not record deterministic:true" >&2
  cat BENCH_sim.json >&2
  exit 1
fi

echo "== tier-1: mlcr-lint project invariants =="
./build/tools/mlcr-lint src examples bench tests

echo "== tier-1: self-contained headers =="
scripts/check_headers.sh

echo "== tier-1: clang-tidy =="
scripts/run_tidy.sh build

echo "== tier-1: ThreadSanitizer pass (thread pool + sweep engine + metrics + net + sim fan-out) =="
build_and_test build-tsan thread \
  'ThreadPool|SweepEngine|ShardedLruCache|Metrics|LruCache|AdmissionQueue|NetServer|NetProtocol|NetJson|NetCodec|NetReactor|MonteCarloParallel|MonteCarloChunks|ValidatePipeline'

echo "== tier-1: mlcrd daemon smoke (TSan build, json codec) =="
daemon_smoke build-tsan json

echo "== tier-1: mlcrd daemon smoke (TSan build, binary codec) =="
daemon_smoke build-tsan binary

echo "== tier-1: ASan+UBSan pass (full suite) =="
build_and_test build-asan address,undefined

echo "== tier-1: mlcrd daemon smoke (ASan+UBSan build, json codec) =="
daemon_smoke build-asan json

echo "== tier-1: mlcrd daemon smoke (ASan+UBSan build, binary codec) =="
daemon_smoke build-asan binary

echo "tier-1 OK"
