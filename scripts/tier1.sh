#!/usr/bin/env bash
# Tier-1 verification: the standard build + full test suite, followed by a
# ThreadSanitizer pass over the concurrency-sensitive targets (thread pool,
# sweep engine).  Run from anywhere; builds land in build/ and build-tsan/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: standard build + ctest =="
cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== tier-1: ThreadSanitizer pass (thread pool + sweep engine) =="
cmake -B build-tsan -S . -DMLCR_SANITIZE=thread
cmake --build build-tsan -j
(cd build-tsan && ctest --output-on-failure -R 'ThreadPool|SweepEngine')

echo "tier-1 OK"
