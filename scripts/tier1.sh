#!/usr/bin/env bash
# Tier-1 verification: the standard build + full test suite, followed by a
# ThreadSanitizer pass over the concurrency-sensitive targets (thread pool,
# sweep engine, metrics registry).  Run from anywhere; builds land in build/
# and build-tsan/.
#
# The ctest runs treat "no tests matched" and any skipped test as failures:
# a silently-skipped suite looks exactly like a green run otherwise.
set -euo pipefail
cd "$(dirname "$0")/.."

# Runs ctest with the given args, failing on skips (and, via
# --no-tests=error, on an empty selection).
run_ctest() {
  local log
  log="$(mktemp)"
  (cd "$1" && shift && ctest --output-on-failure --no-tests=error "$@") \
    | tee "$log"
  if grep -q '\*\*\*Skipped\|SKIPPED' "$log"; then
    rm -f "$log"
    echo "tier-1 FAILED: ctest skipped tests (see output above)" >&2
    exit 1
  fi
  rm -f "$log"
}

echo "== tier-1: standard build + ctest =="
cmake -B build -S .
cmake --build build -j
run_ctest build -j

echo "== tier-1: ThreadSanitizer pass (thread pool + sweep engine + metrics) =="
cmake -B build-tsan -S . -DMLCR_SANITIZE=thread
cmake --build build-tsan -j
run_ctest build-tsan -R 'ThreadPool|SweepEngine|Metrics|LruCache'

echo "tier-1 OK"
