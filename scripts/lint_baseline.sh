#!/usr/bin/env bash
# Regenerates the mlcr-lint graph baseline and fails if the committed
# tools/mlcr-lint/baseline.txt is stale.
#
#   scripts/lint_baseline.sh [build-dir]      # default: build
#
# The baseline records accepted findings as `path|rule|message` keys
# (line-insensitive, so unrelated edits above a finding don't churn it).
# This script re-runs the graph lint with --write-baseline into a temp
# file and diffs the key lines against the committed file:
#
#   * identical  -> exit 0 (the baseline is in sync with the tree)
#   * different  -> exit 1 with the diff; either fix the new findings or,
#     if they are accepted debt, copy the regenerated file over the
#     committed one and commit both together.
#
# The regeneration is deterministic: findings are sorted by
# (path, line, rule, message) before serialization and the comment header
# is fixed text, so two runs over the same tree produce byte-identical
# baselines regardless of thread count.
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
lint="$build_dir/tools/mlcr-lint"
committed="tools/mlcr-lint/baseline.txt"

if [ ! -x "$lint" ]; then
  echo "lint_baseline: $lint not built (cmake --build $build_dir first)" >&2
  exit 2
fi
if [ ! -f "$committed" ]; then
  echo "lint_baseline: $committed missing" >&2
  exit 2
fi

fresh="$(mktemp)"
trap 'rm -f "$fresh"' EXIT

# --write-baseline exits 0 even when findings exist: the point is to
# capture them, not to fail on them.
"$lint" --graph --write-baseline "$fresh" src examples bench tests

# Compare only the `path|rule|message` key lines; comment headers may
# legitimately differ in wording between generator versions.
if ! diff -u \
    <(grep -v '^#' "$committed" | grep -v '^[[:space:]]*$' | sort) \
    <(grep -v '^#' "$fresh" | grep -v '^[[:space:]]*$' | sort); then
  echo "lint_baseline: STALE — committed $committed does not match the tree." >&2
  echo "lint_baseline: fix the findings above, or accept them with:" >&2
  echo "lint_baseline:   cp $fresh $committed   (and commit the change)" >&2
  trap - EXIT  # keep the regenerated file around for the cp
  exit 1
fi

echo "lint_baseline: OK ($committed is in sync)"
