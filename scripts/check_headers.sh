#!/usr/bin/env bash
# Self-contained-include check: every header in src/, tools/, and bench/
# must compile as the first (and only) include of a translation unit.
# Complements
# mlcr-lint's pragma-once rule — the token scanner can verify the guard is
# present but not that the include list is complete; the compiler can.
#
#   scripts/check_headers.sh
#
# Roughly 30s on one core; tier-1 runs it after the lint pass.
set -euo pipefail
cd "$(dirname "$0")/.."

tu="$(mktemp --suffix=.cpp)"
trap 'rm -f "$tu"' EXIT

status=0
count=0
while IFS= read -r header; do
  printf '#include "%s/%s"\n' "$(pwd)" "$header" > "$tu"
  if ! g++ -std=c++20 -fsyntax-only -Wall -Wextra -Werror -I src -I bench \
       -I tools/mlcr-lint \
       "$tu" 2>/tmp/check_headers_err; then
    echo "check_headers: $header is not self-contained:" >&2
    sed "s|$tu|$header|g" /tmp/check_headers_err >&2
    status=1
  fi
  count=$((count + 1))
done < <(find src tools bench -name '*.h' -o -name '*.hpp' | sort)

echo "check_headers: $count headers checked"
exit "$status"
