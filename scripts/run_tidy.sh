#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy, warnings-as-errors) over every
# project source in the compilation database.
#
#   scripts/run_tidy.sh [build-dir]     # default build dir: build/
#
# Gated on availability: containers without clang-tidy print a warning and
# exit 0, so tier-1 stays runnable everywhere while CI images that do ship
# clang-tidy get the full check.  The configure step always exports
# compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS in CMakeLists.txt).
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_tidy: clang-tidy not found on PATH; skipping (install LLVM to enable)" >&2
  exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_tidy: $build_dir/compile_commands.json missing; configure first:" >&2
  echo "  cmake -B $build_dir -S ." >&2
  exit 1
fi

# Project sources only — third-party code pulled in by the build (gtest,
# benchmark) is not ours to lint.  Lint fixtures are deliberately broken and
# never compiled, so they never appear in the database.
mapfile -t sources < <(
  grep -oE '"file": "[^"]+"' "$build_dir/compile_commands.json" \
    | cut -d'"' -f4 \
    | grep -E "^$(pwd)/(src|tools|tests|bench|examples)/" \
    | sort -u)

if [ "${#sources[@]}" -eq 0 ]; then
  echo "run_tidy: no project sources found in the compilation database" >&2
  exit 1
fi

echo "run_tidy: checking ${#sources[@]} files"
status=0
for source in "${sources[@]}"; do
  clang-tidy -p "$build_dir" --quiet "$source" || status=1
done
if [ "$status" -ne 0 ]; then
  echo "run_tidy: clang-tidy reported errors (WarningsAsErrors: '*')" >&2
fi
exit "$status"
