#include "index.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <fstream>
#include <future>
#include <sstream>
#include <tuple>

#include "common/thread_pool.h"

namespace mlcr::lint {

namespace {

const std::set<std::string>& keywords() {
  static const std::set<std::string> kSet = {
      "if",        "else",     "for",       "while",     "do",
      "switch",    "case",     "return",    "break",     "continue",
      "goto",      "sizeof",   "alignof",   "alignas",   "decltype",
      "static_assert", "new",  "delete",    "throw",     "try",
      "catch",     "const_cast", "static_cast", "dynamic_cast",
      "reinterpret_cast", "operator", "template", "typename", "using",
      "namespace", "class",    "struct",    "enum",      "union",
      "public",    "private",  "protected", "virtual",   "override",
      "final",     "const",    "constexpr", "consteval", "constinit",
      "inline",    "static",   "extern",    "mutable",   "volatile",
      "friend",    "typedef",  "auto",      "void",      "bool",
      "char",      "short",    "int",       "long",      "float",
      "double",    "signed",   "unsigned",  "true",      "false",
      "nullptr",   "this",     "noexcept",  "default",   "explicit",
      "co_await",  "co_return", "co_yield", "and",       "or",
      "not",       "requires", "concept"};
  return kSet;
}

bool is_keyword(const std::string& text) {
  return keywords().count(text) != 0;
}

bool tok_is(const std::vector<Token>& toks, std::size_t i, const char* text) {
  return i < toks.size() && toks[i].kind == Token::Kind::kPunct &&
         toks[i].text == text;
}

bool tok_ident(const std::vector<Token>& toks, std::size_t i) {
  return i < toks.size() && toks[i].kind == Token::Kind::kIdent;
}

/// Index of the token after the group closer matching the opener at `open`
/// (which must be "(" / "{" / "["), or toks.size() when unbalanced.
std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t open) {
  const std::string& o = toks[open].text;
  const char* c = o == "(" ? ")" : o == "{" ? "}" : "]";
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (tok_is(toks, i, o.c_str())) ++depth;
    if (tok_is(toks, i, c) && --depth == 0) return i + 1;
  }
  return toks.size();
}

/// Index after the `>` matching the `<` at `open` (template argument lists;
/// the lexer emits single-char `<`/`>` so nested closers are two tokens).
std::size_t skip_angles(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (tok_is(toks, i, "<")) ++depth;
    if (tok_is(toks, i, ">") && --depth == 0) return i + 1;
    // Bail out of obvious non-template uses (comparisons don't span these).
    if (tok_is(toks, i, ";") || tok_is(toks, i, "{")) return toks.size();
  }
  return toks.size();
}

struct Scope {
  enum class Kind { kNamespace, kClass, kFunction, kBlock };
  Kind kind = Kind::kBlock;
  std::string name;           ///< namespace / class component(s)
  std::size_t fn = SIZE_MAX;  ///< kFunction: index into Index::functions
  int fn_depth = 0;           ///< kFunction: open braces inside the body
  /// kFunction: guards.size() on entry.  Guards below the floor belong to
  /// an enclosing function and do not apply inside (lambdas run later).
  std::size_t guard_floor = 0;
};

struct Guard {
  int depth = 0;  ///< fn_depth at declaration; popped when the block closes
  std::string key;
};

/// Extraction state for one file.
struct Extractor {
  const ScanResult* scanned = nullptr;
  std::size_t file = 0;
  Index* index = nullptr;
  std::vector<Scope> scopes;
  std::vector<Guard> guards;

  std::string scope_prefix() const {
    std::string out;
    for (const Scope& s : scopes) {
      if (s.kind == Scope::Kind::kFunction || s.kind == Scope::Kind::kBlock) {
        continue;
      }
      if (s.name.empty()) continue;
      if (!out.empty()) out += "::";
      out += s.name;
    }
    return out;
  }

  FunctionInfo* current_fn() {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == Scope::Kind::kFunction) {
        return &index->functions[it->fn];
      }
    }
    return nullptr;
  }

  bool in_function() const {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == Scope::Kind::kFunction) return true;
    }
    return false;
  }

  std::vector<std::string> held_keys() const {
    std::size_t floor = 0;
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == Scope::Kind::kFunction) {
        floor = it->guard_floor;
        break;
      }
    }
    std::vector<std::string> out;
    for (std::size_t g = floor; g < guards.size(); ++g) {
      out.push_back(guards[g].key);
    }
    return out;
  }

  bool allowed_here(int line, const char* rule) const {
    const auto at = scanned->allowed.find(line);
    return at != scanned->allowed.end() && at->second.count(rule) != 0;
  }
};

/// Canonicalizes a mutex expression (`this->mu_`, `shard.m`, `qs_[i]->m`)
/// into a stable key under the enclosing function's owner scope.
std::string canon_mutex_key(const std::vector<Token>& expr,
                            const std::string& owner) {
  std::string out;
  for (std::size_t i = 0; i < expr.size(); ++i) {
    const Token& t = expr[i];
    if (t.kind == Token::Kind::kIdent) {
      if (t.text == "this" && tok_is(expr, i + 1, "->")) {
        ++i;  // drop `this->`
        continue;
      }
      out += t.text;
      continue;
    }
    if (t.kind == Token::Kind::kPunct) {
      if (t.text == "." || t.text == "->") {
        out += ".";
      } else if (t.text == "::") {
        out += "::";
      } else if (t.text == "[") {
        out += "[]";
        int depth = 0;
        while (i < expr.size()) {
          if (expr[i].text == "[") ++depth;
          if (expr[i].text == "]" && --depth == 0) break;
          ++i;
        }
      }
      // `*`, `&`, parens: dereference / grouping noise — dropped.
    }
  }
  if (out.empty()) out = "<unknown>";
  return owner.empty() ? out : owner + "::" + out;
}

/// The blocking-syscall name set shared with the per-file rule.
const std::set<std::string>& blocking_names() {
  static const std::set<std::string> kSet = {
      "accept", "accept4", "connect",  "read",   "write",
      "recv",   "send",    "recvfrom", "sendto", "recvmsg",
      "sendmsg"};
  return kSet;
}

const std::set<std::string>& nondet_call_names() {
  static const std::set<std::string> kSet = {
      "rand",   "srand",        "rand_r",       "drand48", "lrand48",
      "random", "gettimeofday", "clock_gettime", "time",   "clock"};
  return kSet;
}

}  // namespace

void index_scanned(const std::string& path, const ScanResult& scanned,
                   Index* index) {
  const std::size_t file_id = index->files.size();
  std::string norm = path;
  std::replace(norm.begin(), norm.end(), '\\', '/');
  index->files.push_back(
      {path, norm, scanned.includes, scanned.allowed, scanned.tokens.size()});

  Extractor ex;
  ex.scanned = &scanned;
  ex.file = file_id;
  ex.index = index;

  const std::vector<Token>& toks = scanned.tokens;
  const std::size_t n = toks.size();

  // --- declaration collectors (scope-independent heuristics) ---------------

  // Variable/member name -> idents seen in its type tokens; pruned against
  // class_names in finalize_index.
  auto collect_var_decl = [&](std::size_t v) {
    if (!tok_ident(toks, v) || is_keyword(toks[v].text)) return;
    // `Class::name(` is a qualified definition/call, not a declaration.
    if (v >= 1 && tok_is(toks, v - 1, "::")) return;
    std::set<std::string>* types = nullptr;
    std::size_t k = v;
    while (k > 0) {
      const Token& t = toks[k - 1];
      const bool type_punct =
          t.kind == Token::Kind::kPunct &&
          (t.text == "::" || t.text == "<" || t.text == ">" ||
           t.text == "*" || t.text == "&" || t.text == ",");
      if (t.kind == Token::Kind::kIdent) {
        if (!is_keyword(t.text)) {
          if (types == nullptr) {
            types = &index->raw_var_types[toks[v].text];
          }
          types->insert(t.text);
        }
        --k;
        continue;
      }
      if (type_punct) {
        --k;
        continue;
      }
      break;
    }
  };

  // unordered_*/pointer-keyed map declarations: the declared name's
  // iteration order is nondeterministic.
  auto collect_unordered_decl = [&](std::size_t i) {
    static const std::set<std::string> kUnordered = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    static const std::set<std::string> kOrdered = {
        "map",      "multimap", "set",   "multiset",
        "vector",   "list",     "deque", "array"};
    const std::string& name = toks[i].text;
    const bool unordered = kUnordered.count(name) != 0;
    const bool ordered = kOrdered.count(name) != 0;
    if (!unordered && !ordered) return;
    if (!tok_is(toks, i + 1, "<")) return;
    bool pointer_key = false;
    int depth = 0;
    std::size_t j = i + 1;
    for (; j < n; ++j) {
      if (tok_is(toks, j, "<")) ++depth;
      if (tok_is(toks, j, ">") && --depth == 0) {
        ++j;
        break;
      }
      if (depth == 1 && tok_is(toks, j, "*")) {
        // `*` at depth 1 before the first top-level comma = pointer key.
        bool before_comma = true;
        for (std::size_t b = i + 2; b < j; ++b) {
          if (tok_is(toks, b, ",")) {
            before_comma = false;
            break;
          }
        }
        if (before_comma) pointer_key = true;
      }
      if (tok_is(toks, j, ";") || tok_is(toks, j, "{")) return;
    }
    const bool nondet =
        unordered || ((name == "map" || name == "multimap") && pointer_key);
    while (tok_is(toks, j, "&") || tok_is(toks, j, "*")) ++j;
    if (tok_ident(toks, j) && !is_keyword(toks[j].text)) {
      if (nondet) {
        index->unordered_decls[toks[j].text].insert(file_id);
      } else {
        index->ordered_decls.insert({file_id, toks[j].text});
      }
    }
  };

  // --- main walk -----------------------------------------------------------

  std::size_t i = 0;
  while (i < n) {
    const Token& tok = toks[i];

    // Scope-independent collectors run on every token.
    if (tok.kind == Token::Kind::kIdent) {
      collect_unordered_decl(i);
      if (i + 1 < n &&
          (tok_is(toks, i + 1, ";") || tok_is(toks, i + 1, "=") ||
           tok_is(toks, i + 1, "{") || tok_is(toks, i + 1, "(") ||
           tok_is(toks, i + 1, ",") || tok_is(toks, i + 1, ")"))) {
        collect_var_decl(i);
      }
    }

    FunctionInfo* fn = ex.current_fn();
    if (fn == nullptr) {
      i = [&]() -> std::size_t {
        // ---- declaration context ----
        if (tok.kind == Token::Kind::kIdent && tok.text == "namespace") {
          std::size_t j = i + 1;
          std::string name;
          if (tok_ident(toks, j)) {
            name = toks[j].text;
            ++j;
            while (tok_is(toks, j, "::") && tok_ident(toks, j + 1)) {
              name += "::" + toks[j + 1].text;
              j += 2;
            }
          }
          if (tok_is(toks, j, "{")) {
            ex.scopes.push_back({Scope::Kind::kNamespace, name, SIZE_MAX, 0});
            return j + 1;
          }
          return j;  // alias / using namespace: no scope
        }
        if (tok.kind == Token::Kind::kIdent &&
            (tok.text == "class" || tok.text == "struct" ||
             tok.text == "union")) {
          // `template <class T>` parameters are not class definitions.
          if (i > 0 && (tok_is(toks, i - 1, "<") || tok_is(toks, i - 1, ","))) {
            return i + 1;
          }
          if (i > 0 && tok_ident(toks, i - 1) && toks[i - 1].text == "enum") {
            return i + 1;
          }
          if (!tok_ident(toks, i + 1)) return i + 1;
          const std::string name = toks[i + 1].text;
          std::size_t p = i + 2;
          while (p < n) {
            if (tok_is(toks, p, "{")) {
              ex.scopes.push_back({Scope::Kind::kClass, name, SIZE_MAX, 0});
              ex.index->class_names.insert(name);
              return p + 1;
            }
            if (tok_is(toks, p, ";")) return p + 1;  // forward declaration
            const Token& t = toks[p];
            const bool ok =
                t.kind == Token::Kind::kIdent ||
                (t.kind == Token::Kind::kPunct &&
                 (t.text == ":" || t.text == "::" || t.text == "<" ||
                  t.text == ">" || t.text == ","));
            if (!ok) return i + 1;
            ++p;
          }
          return i + 1;
        }
        if (tok.kind == Token::Kind::kIdent && tok.text == "enum") {
          // Skip the whole enum body so enumerators don't look like decls.
          std::size_t p = i + 1;
          while (p < n && !tok_is(toks, p, "{") && !tok_is(toks, p, ";")) ++p;
          if (p < n && tok_is(toks, p, "{")) return skip_balanced(toks, p);
          return p + 1;
        }
        if (tok_is(toks, i, "(")) {
          // Candidate function definition: name-chain `(` params `)`
          // trailer `{`.
          if (i == 0 || !tok_ident(toks, i - 1)) return i + 1;
          std::size_t k = i - 1;
          std::vector<std::string> chain = {toks[k].text};
          while (k >= 2 && tok_is(toks, k - 1, "::") && tok_ident(toks, k - 2)) {
            chain.insert(chain.begin(), toks[k - 2].text);
            k -= 2;
          }
          for (const std::string& c : chain) {
            if (is_keyword(c)) return i + 1;
          }
          if (k > 0 && (tok_is(toks, k - 1, ".") || tok_is(toks, k - 1, "->"))) {
            return i + 1;
          }
          const std::size_t after_params = skip_balanced(toks, i);
          if (after_params >= n) return i + 1;
          // Parameters are declarations too — an unordered map passed by
          // reference must taint range-fors over it in the body, and a
          // typed parameter narrows member-call resolution.  Run the
          // collectors only once this proves to be a definition, so plain
          // expression arguments never register as declarations.
          auto collect_param_decls = [&] {
            for (std::size_t a = i + 1; a + 1 < after_params; ++a) {
              if (!tok_ident(toks, a)) continue;
              collect_unordered_decl(a);
              if (tok_is(toks, a + 1, ",") || tok_is(toks, a + 1, ")")) {
                collect_var_decl(a);
              }
            }
          };
          // Trailer: const/noexcept/override/ref-qualifiers/trailing return
          // until `{` (definition), `;` (declaration) or a giveaway that
          // this was an expression or variable declaration.
          std::size_t p = after_params;
          int angle = 0;
          while (p < n) {
            if (tok_is(toks, p, "{") && angle == 0) {
              // Definition.
              std::string qualified = ex.scope_prefix();
              for (const std::string& c : chain) {
                if (!qualified.empty()) qualified += "::";
                qualified += c;
              }
              if (chain.size() > 1) {
                for (std::size_t ci = 0; ci + 1 < chain.size(); ++ci) {
                  ex.index->class_names.insert(chain[ci]);
                }
              }
              FunctionInfo info;
              info.name = qualified;
              info.base = chain.back();
              info.file = file_id;
              info.line = toks[p].line;
              ex.index->functions.push_back(std::move(info));
              ex.scopes.push_back({Scope::Kind::kFunction, chain.back(),
                                   ex.index->functions.size() - 1, 1,
                                   ex.guards.size()});
              collect_param_decls();
              return p + 1;
            }
            if (tok_is(toks, p, ";")) return p + 1;  // declaration
            if (tok_is(toks, p, "=")) {
              // `= default` / `= delete` / `= 0` / variable init: not a body.
              while (p < n && !tok_is(toks, p, ";")) ++p;
              return p + 1;
            }
            if (tok_is(toks, p, ":") && angle == 0) {
              // Constructor init list: skip initializers to the body brace.
              std::size_t q = p + 1;
              while (q < n) {
                if (tok_is(toks, q, "(")) {
                  q = skip_balanced(toks, q);
                  continue;
                }
                if (tok_is(toks, q, "{")) {
                  const bool init_brace =
                      q > 0 && (tok_ident(toks, q - 1) ||
                                tok_is(toks, q - 1, ">"));
                  if (init_brace) {
                    q = skip_balanced(toks, q);
                    continue;
                  }
                  std::string qualified = ex.scope_prefix();
                  for (const std::string& c : chain) {
                    if (!qualified.empty()) qualified += "::";
                    qualified += c;
                  }
                  if (chain.size() > 1) {
                    for (std::size_t ci = 0; ci + 1 < chain.size(); ++ci) {
                      ex.index->class_names.insert(chain[ci]);
                    }
                  }
                  FunctionInfo info;
                  info.name = qualified;
                  info.base = chain.back();
                  info.file = file_id;
                  info.line = toks[q].line;
                  ex.index->functions.push_back(std::move(info));
                  ex.scopes.push_back({Scope::Kind::kFunction, chain.back(),
                                       ex.index->functions.size() - 1, 1,
                                       ex.guards.size()});
                  collect_param_decls();
                  return q + 1;
                }
                if (tok_is(toks, q, ";")) return q + 1;
                ++q;
              }
              return i + 1;
            }
            if (tok_is(toks, p, "(")) {
              p = skip_balanced(toks, p);
              continue;
            }
            if (tok_is(toks, p, "<")) ++angle;
            if (tok_is(toks, p, ">") && angle > 0) --angle;
            if (tok_is(toks, p, ",") && angle == 0) return i + 1;
            const Token& t = toks[p];
            const bool ok =
                t.kind == Token::Kind::kIdent ||
                (t.kind == Token::Kind::kPunct &&
                 (t.text == "&" || t.text == "*" || t.text == "::" ||
                  t.text == "<" || t.text == ">" || t.text == "->" ||
                  t.text == "[" || t.text == "]" || t.text == ","));
            if (!ok) return i + 1;
            ++p;
          }
          return i + 1;
        }
        if (tok_is(toks, i, "{")) {
          ex.scopes.push_back({Scope::Kind::kBlock, "", SIZE_MAX, 0});
          return i + 1;
        }
        if (tok_is(toks, i, "}")) {
          if (!ex.scopes.empty()) ex.scopes.pop_back();
          return i + 1;
        }
        return i + 1;
      }();
      continue;
    }

    // ---- function body context ----
    Scope& fs = ex.scopes.back().kind == Scope::Kind::kFunction
                    ? ex.scopes.back()
                    : [&]() -> Scope& {
                        for (auto it = ex.scopes.rbegin();
                             it != ex.scopes.rend(); ++it) {
                          if (it->kind == Scope::Kind::kFunction) return *it;
                        }
                        return ex.scopes.back();
                      }();

    if (tok_is(toks, i, "{")) {
      ++fs.fn_depth;
      ++i;
      continue;
    }
    if (tok_is(toks, i, "}")) {
      while (ex.guards.size() > fs.guard_floor &&
             ex.guards.back().depth == fs.fn_depth) {
        ex.guards.pop_back();
      }
      --fs.fn_depth;
      if (fs.fn_depth <= 0) {
        ex.guards.resize(fs.guard_floor);
        while (!ex.scopes.empty() &&
               ex.scopes.back().kind != Scope::Kind::kFunction) {
          ex.scopes.pop_back();
        }
        if (!ex.scopes.empty()) ex.scopes.pop_back();
      }
      ++i;
      continue;
    }

    // Lambda introducer: the body is a separate anonymous function — it runs
    // later, possibly on another thread, so calls inside it must not inherit
    // the enclosing function's identity or held locks.  A lambda passed
    // directly to `post(...)` runs on the reactor loop and is marked as an
    // entry point for blocking-call-transitive.
    if (tok_is(toks, i, "[") && i > 0) {
      const Token& prev = toks[i - 1];
      const bool subscript =
          (prev.kind == Token::Kind::kIdent && !is_keyword(prev.text)) ||
          prev.kind == Token::Kind::kNumber ||
          prev.kind == Token::Kind::kString ||
          (prev.kind == Token::Kind::kPunct &&
           (prev.text == ")" || prev.text == "]"));
      if (!subscript) {
        std::size_t body = skip_balanced(toks, i);  // captures
        if (tok_is(toks, body, "(")) body = skip_balanced(toks, body);
        bool lambda = false;
        while (body < toks.size()) {
          if (tok_is(toks, body, "{")) {
            lambda = true;
            break;
          }
          const Token& t = toks[body];
          const bool specifier =
              t.kind == Token::Kind::kIdent ||
              (t.kind == Token::Kind::kPunct &&
               (t.text == "->" || t.text == "::" || t.text == "<" ||
                t.text == ">" || t.text == "&" || t.text == "*" ||
                t.text == ","));
          if (!specifier) break;
          ++body;
        }
        if (lambda) {
          const bool posted = tok_is(toks, i - 1, "(") && i >= 2 &&
                              tok_ident(toks, i - 2) &&
                              toks[i - 2].text == "post";
          FunctionInfo info;
          info.base = "{lambda:" + std::to_string(toks[i].line) + "}";
          info.name = fn->name + "::" + info.base;
          info.file = file_id;
          info.line = toks[body].line;
          info.posted_lambda = posted;
          ex.index->functions.push_back(std::move(info));
          ex.scopes.push_back({Scope::Kind::kFunction, "",
                               ex.index->functions.size() - 1, 1,
                               ex.guards.size()});
          i = body + 1;
          continue;
        }
      }
    }

    if (tok.kind != Token::Kind::kIdent) {
      ++i;
      continue;
    }

    const std::string owner = [&] {
      const std::string& name = fn->name;
      const std::size_t cut = name.rfind("::");
      return cut == std::string::npos ? std::string() : name.substr(0, cut);
    }();

    // RAII guard acquisition.
    static const std::set<std::string> kGuards = {
        "lock_guard", "scoped_lock", "unique_lock", "shared_lock"};
    if (kGuards.count(tok.text) != 0 && i > 0 &&
        !(tok_is(toks, i - 1, ".") || tok_is(toks, i - 1, "->"))) {
      std::size_t j = i + 1;
      if (tok_is(toks, j, "<")) j = skip_angles(toks, j);
      if (tok_ident(toks, j) && !is_keyword(toks[j].text) &&
          (tok_is(toks, j + 1, "(") || tok_is(toks, j + 1, "{"))) {
        const std::size_t open = j + 1;
        const std::size_t after = skip_balanced(toks, open);
        // Split args on top-level commas.
        std::vector<std::vector<Token>> args(1);
        int depth = 0;
        for (std::size_t a = open; a + 1 < after; ++a) {
          if (tok_is(toks, a, "(") || tok_is(toks, a, "{") ||
              tok_is(toks, a, "[")) {
            ++depth;
            if (depth == 1) continue;  // the opener itself
          }
          if (tok_is(toks, a, ")") || tok_is(toks, a, "}") ||
              tok_is(toks, a, "]")) {
            --depth;
          }
          if (depth == 1 && tok_is(toks, a, ",")) {
            args.emplace_back();
            continue;
          }
          if (depth >= 1 && a != open) args.back().push_back(toks[a]);
        }
        const std::vector<std::string> held = ex.held_keys();
        std::vector<std::string> acquired;
        for (const std::vector<Token>& arg : args) {
          if (arg.empty()) continue;
          bool tag = false;
          for (const Token& t : arg) {
            if (t.kind == Token::Kind::kIdent &&
                (t.text == "defer_lock" || t.text == "adopt_lock" ||
                 t.text == "try_to_lock")) {
              tag = true;
            }
          }
          if (tag) continue;
          acquired.push_back(canon_mutex_key(arg, owner));
        }
        for (const std::string& key : acquired) {
          fn->locks.push_back({key, toks[j].line, held});
        }
        for (const std::string& key : acquired) {
          ex.guards.push_back({fs.fn_depth, key});
        }
        i = after;
        continue;
      }
    }

    // Range-for over an unordered container (resolved in finalize).
    if (tok.text == "for" && tok_is(toks, i + 1, "(")) {
      int depth = 0;
      std::size_t colon = 0;
      const std::size_t close = skip_balanced(toks, i + 1);
      for (std::size_t p = i + 1; p + 1 < close; ++p) {
        if (tok_is(toks, p, "(")) ++depth;
        if (tok_is(toks, p, ")")) --depth;
        if (depth == 1 && tok_is(toks, p, ":")) {
          colon = p;
          break;
        }
      }
      if (colon != 0) {
        for (std::size_t p = colon + 1; p + 1 < close; ++p) {
          if (tok_ident(toks, p) && !is_keyword(toks[p].text)) {
            index->pending_iterations.push_back(
                {ex.index->functions.size() == 0
                     ? SIZE_MAX
                     : static_cast<std::size_t>(fn - index->functions.data()),
                 toks[p].text, toks[p].line});
          }
        }
      }
      ++i;
      continue;
    }

    // std::hash over a pointer type.
    if (tok.text == "hash" && tok_is(toks, i + 1, "<")) {
      const std::size_t end = skip_angles(toks, i + 1);
      for (std::size_t p = i + 1; p < end; ++p) {
        if (tok_is(toks, p, "*")) {
          if (!ex.allowed_here(tok.line, "determinism-taint")) {
            fn->taints.push_back({"std::hash over a pointer type", tok.line});
          }
          break;
        }
      }
      ++i;
      continue;
    }

    // Nondeterminism sources that are bare identifiers.
    if (tok.text == "random_device") {
      if (!ex.allowed_here(tok.line, "determinism-taint")) {
        fn->taints.push_back({"std::random_device", tok.line});
      }
      ++i;
      continue;
    }

    // Call sites (ident or qualified chain followed by `(`).
    if (tok_is(toks, i + 1, "(") && !is_keyword(tok.text)) {
      std::size_t k = i;
      std::vector<std::string> chain = {toks[k].text};
      while (k >= 2 && tok_is(toks, k - 1, "::") && tok_ident(toks, k - 2)) {
        chain.insert(chain.begin(), toks[k - 2].text);
        k -= 2;
      }
      const bool global_qualified = k >= 1 && tok_is(toks, k - 1, "::") &&
                                    (k < 2 || !tok_ident(toks, k - 2));
      const bool member = k > 0 && (tok_is(toks, k - 1, ".") ||
                                    tok_is(toks, k - 1, "->"));
      std::string receiver;
      if (member && k >= 2 && tok_ident(toks, k - 2)) {
        receiver = toks[k - 2].text;
      }
      std::string joined;
      for (const std::string& c : chain) {
        if (!joined.empty()) joined += "::";
        joined += c;
      }
      fn->calls.push_back(
          {joined, receiver, member, tok.line, ex.held_keys()});

      // Blocking-syscall facts: bare or `::`-global spellings only.
      if (chain.size() == 1 && blocking_names().count(tok.text) != 0 &&
          !member &&
          (global_qualified || (k == 0 || !tok_is(toks, k - 1, "::"))) &&
          fn->base.find("nonblocking") == std::string::npos &&
          !ex.allowed_here(tok.line, "net-blocking-call") &&
          !ex.allowed_here(tok.line, "blocking-call-transitive")) {
        fn->blocking.push_back(
            {"::" + tok.text + "()", tok.line});
      }

      // Nondeterminism sources that are calls.
      if (!ex.allowed_here(tok.line, "determinism-taint")) {
        if (tok.text == "get_id") {
          fn->taints.push_back({"std::this_thread::get_id()", tok.line});
        } else if (tok.text == "now" && k >= 1 && tok_is(toks, k - 1, "::")) {
          fn->taints.push_back({"clock `now()`", tok.line});
        } else if (chain.size() == 1 && !member &&
                   nondet_call_names().count(tok.text) != 0) {
          fn->taints.push_back({"`" + tok.text + "()`", tok.line});
        }
      }

      // Metric-name literals: first string argument of registry calls.
      if (member &&
          (tok.text == "counter" || tok.text == "gauge" ||
           tok.text == "timer")) {
        std::string low;
        for (char c : receiver) {
          low += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        }
        if (low.find("metric") != std::string::npos ||
            low.find("registr") != std::string::npos) {
          if (i + 2 < n && toks[i + 2].kind == Token::Kind::kString) {
            const bool prefix = tok_is(toks, i + 3, "+");
            index->metrics.push_back(
                {toks[i + 2].text, file_id, toks[i + 2].line, prefix});
          }
        }
      }
      ++i;
      continue;
    }
    ++i;
  }
}

void finalize_index(Index* index) {
  index->by_base.clear();
  index->class_members.clear();
  for (std::size_t id = 0; id < index->functions.size(); ++id) {
    const FunctionInfo& fn = index->functions[id];
    index->by_base[fn.base].push_back(id);
    const std::size_t cut = fn.name.rfind("::");
    if (cut != std::string::npos) {
      const std::size_t prev = fn.name.rfind("::", cut - 1);
      const std::string owner =
          prev == std::string::npos ? fn.name.substr(0, cut)
                                    : fn.name.substr(prev + 2, cut - prev - 2);
      if (index->class_names.count(owner) != 0) {
        index->class_members[owner].insert(fn.base);
      }
    }
  }
  // Prune raw declared-type guesses against the known class set.
  index->var_types.clear();
  for (const auto& [var, types] : index->raw_var_types) {
    std::set<std::string> pruned;
    for (const std::string& t : types) {
      if (index->class_names.count(t) != 0) pruned.insert(t);
    }
    if (!pruned.empty()) index->var_types[var] = std::move(pruned);
  }
  // Include closure: resolve quoted targets to indexed files by suffix
  // match ("net/server.h" matches ".../src/net/server.h"), then take the
  // transitive reachable set per file (self included).
  const std::size_t nf = index->files.size();
  std::vector<std::vector<std::size_t>> inc_edges(nf);
  for (std::size_t f = 0; f < nf; ++f) {
    for (const Include& inc : index->files[f].includes) {
      if (inc.angled) continue;
      for (std::size_t g = 0; g < nf; ++g) {
        const std::string& norm = index->files[g].norm;
        const bool match =
            norm == inc.target ||
            (norm.size() > inc.target.size() &&
             norm[norm.size() - inc.target.size() - 1] == '/' &&
             norm.compare(norm.size() - inc.target.size(), std::string::npos,
                          inc.target) == 0);
        if (match) inc_edges[f].push_back(g);
      }
    }
  }
  index->include_closure.assign(nf, {});
  for (std::size_t f = 0; f < nf; ++f) {
    std::set<std::size_t>& closure = index->include_closure[f];
    std::vector<std::size_t> stack = {f};
    closure.insert(f);
    while (!stack.empty()) {
      const std::size_t at = stack.back();
      stack.pop_back();
      for (std::size_t g : inc_edges[at]) {
        if (closure.insert(g).second) stack.push_back(g);
      }
    }
  }
  // Resolve pending range-for iterations against unordered declarations,
  // scoped to the declaring file's include closure: a local std::vector
  // named like an unordered member in some other header must not taint.
  for (const auto& [fn_id, ident, line] : index->pending_iterations) {
    if (fn_id >= index->functions.size()) continue;
    const auto decl = index->unordered_decls.find(ident);
    if (decl == index->unordered_decls.end()) continue;
    FunctionInfo& fn = index->functions[fn_id];
    const std::size_t file = fn.file;
    if (decl->second.count(file) == 0) {
      // Declared unordered elsewhere only: an ordered same-file declaration
      // shadows it, and the declaring header must actually be included.
      if (index->ordered_decls.count({file, ident}) != 0) continue;
      bool included = false;
      for (std::size_t g : index->include_closure[file]) {
        if (decl->second.count(g) != 0) {
          included = true;
          break;
        }
      }
      if (!included) continue;
    }
    bool dup = false;
    for (const SourceFact& f : fn.taints) {
      if (f.line == line &&
          f.what == "iteration over unordered `" + ident + "`") {
        dup = true;
      }
    }
    if (!dup) {
      fn.taints.push_back({"iteration over unordered `" + ident + "`", line});
    }
  }
  index->pending_iterations.clear();
  index->stats.files = index->files.size();
  index->stats.functions = index->functions.size();
  index->stats.tokens = 0;
  index->stats.calls = 0;
  index->stats.includes = 0;
  for (const IndexedFile& f : index->files) {
    index->stats.tokens += f.tokens;
    index->stats.includes += f.includes.size();
  }
  for (const FunctionInfo& fn : index->functions) {
    index->stats.calls += fn.calls.size();
  }
}

namespace {

std::string owner_of(const FunctionInfo& fn,
                     const std::set<std::string>& class_names) {
  const std::size_t cut = fn.name.rfind("::");
  if (cut == std::string::npos) return {};
  const std::size_t prev = fn.name.rfind("::", cut - 1);
  const std::string owner = prev == std::string::npos
                                ? fn.name.substr(0, cut)
                                : fn.name.substr(prev + 2, cut - prev - 2);
  return class_names.count(owner) != 0 ? owner : std::string();
}

}  // namespace

std::vector<std::size_t> resolve_call(const Index& index,
                                      const FunctionInfo& caller,
                                      const CallSite& call) {
  const std::size_t sep = call.name.rfind("::");
  if (sep != std::string::npos) {
    const std::string base = call.name.substr(sep + 2);
    const auto it = index.by_base.find(base);
    if (it == index.by_base.end()) return {};
    std::vector<std::size_t> out;
    for (std::size_t id : it->second) {
      const std::string& full = index.functions[id].name;
      if (full == call.name || (full.size() > call.name.size() &&
                                full.compare(full.size() - call.name.size() - 2,
                                             2, "::") == 0 &&
                                full.compare(full.size() - call.name.size(),
                                             call.name.size(),
                                             call.name) == 0)) {
        out.push_back(id);
      }
    }
    return out;
  }
  const auto it = index.by_base.find(call.name);
  if (it == index.by_base.end()) return {};
  const std::vector<std::size_t>& candidates = it->second;
  if (call.member && !call.receiver.empty()) {
    const auto vt = index.var_types.find(call.receiver);
    if (vt != index.var_types.end()) {
      std::vector<std::size_t> narrowed;
      for (std::size_t id : candidates) {
        if (vt->second.count(owner_of(index.functions[id],
                                      index.class_names)) != 0) {
          narrowed.push_back(id);
        }
      }
      if (!narrowed.empty()) return narrowed;
    }
  }
  // Prefer same-class members (implicit this->) and same-file definitions.
  const std::string caller_owner = owner_of(caller, index.class_names);
  std::vector<std::size_t> preferred;
  for (std::size_t id : candidates) {
    const FunctionInfo& fn = index.functions[id];
    const bool same_owner = !caller_owner.empty() &&
                            owner_of(fn, index.class_names) == caller_owner;
    if (same_owner || fn.file == caller.file) preferred.push_back(id);
  }
  if (!preferred.empty()) return preferred;
  return candidates;
}

Index build_index(const std::vector<std::string>& files, std::size_t threads,
                  std::vector<Finding>* findings,
                  const Options* per_file_options) {
  Index index;
  const auto lex_start = std::chrono::steady_clock::now();

  struct Slot {
    bool ok = false;
    ScanResult scanned;
  };
  std::vector<Slot> slots(files.size());
  {
    common::ThreadPool pool(threads);
    index.stats.threads = pool.size();
    std::vector<std::future<void>> pending;
    pending.reserve(files.size());
    for (std::size_t s = 0; s < files.size(); ++s) {
      pending.push_back(pool.submit([&files, &slots, s] {
        std::ifstream in(files[s], std::ios::binary);
        if (!in) return;
        std::ostringstream buffer;
        buffer << in.rdbuf();
        slots[s].scanned = scan(buffer.str());
        slots[s].ok = true;
      }));
    }
    for (std::future<void>& f : pending) f.get();
  }
  const auto lex_end = std::chrono::steady_clock::now();
  index.stats.lex_seconds =
      std::chrono::duration<double>(lex_end - lex_start).count();

  for (std::size_t s = 0; s < files.size(); ++s) {
    if (!slots[s].ok) {
      if (findings != nullptr) {
        findings->push_back({files[s], 0, "io-error", "cannot open file"});
      }
      continue;
    }
    if (findings != nullptr && per_file_options != nullptr) {
      std::vector<Finding> per_file =
          lint_scanned(files[s], slots[s].scanned, *per_file_options);
      findings->insert(findings->end(),
                       std::make_move_iterator(per_file.begin()),
                       std::make_move_iterator(per_file.end()));
    }
    index_scanned(files[s], slots[s].scanned, &index);
    slots[s].scanned = ScanResult{};  // release tokens early
  }
  finalize_index(&index);
  const auto index_end = std::chrono::steady_clock::now();
  index.stats.index_seconds =
      std::chrono::duration<double>(index_end - lex_end).count();
  return index;
}

}  // namespace mlcr::lint
