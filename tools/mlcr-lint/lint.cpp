#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>

namespace mlcr::lint {

namespace {

// --- lexer -----------------------------------------------------------------

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parses "mlcr-lint: allow(rule-a, rule-b)" out of a comment body and
/// registers the ids against `line` (the line the suppression applies to).
/// Rule ids may be separated by commas, whitespace, or both.
void parse_allow(const std::string& comment, int line, ScanResult* result) {
  const std::string tag = "mlcr-lint:";
  std::size_t at = comment.find(tag);
  if (at == std::string::npos) return;
  at = comment.find("allow(", at + tag.size());
  if (at == std::string::npos) return;
  const std::size_t close = comment.find(')', at);
  if (close == std::string::npos) return;
  const std::string ids = comment.substr(at + 6, close - at - 6);
  std::string id;
  auto flush = [&] {
    if (!id.empty()) result->allowed[line].insert(id);
    id.clear();
  };
  for (char c : ids) {
    if (c == ',' || c == ' ' || c == '\t') {
      flush();
    } else {
      id += c;
    }
  }
  flush();
}

/// Extracts the target of an `#include` directive from the squeezed
/// directive text ("#include \"x.h\"" or "#include <x>").
void parse_include(const std::string& squeezed, int line, ScanResult* result) {
  static const char* kForms[] = {"#include", "# include"};
  std::size_t after = std::string::npos;
  for (const char* form : kForms) {
    if (squeezed.rfind(form, 0) == 0) {
      after = std::string(form).size();
      break;
    }
  }
  if (after == std::string::npos) return;
  std::size_t i = after;
  while (i < squeezed.size() && squeezed[i] == ' ') ++i;
  if (i >= squeezed.size()) return;
  const char open = squeezed[i];
  const char close = open == '<' ? '>' : '"';
  if (open != '<' && open != '"') return;
  const std::size_t end = squeezed.find(close, i + 1);
  if (end == std::string::npos) return;
  result->includes.push_back(
      {squeezed.substr(i + 1, end - i - 1), open == '<', line});
}

}  // namespace

ScanResult scan(std::string_view text) {
  ScanResult result;
  int line = 1;
  bool line_has_code = false;  // decides where a standalone allow() applies
  std::size_t i = 0;
  const std::size_t n = text.size();

  auto newline = [&] {
    ++line;
    line_has_code = false;
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      newline();
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const std::size_t start = i;
      while (i < n && text[i] != '\n') ++i;
      const std::string body(text.substr(start, i - start));
      // A comment alone on its line suppresses the *next* line.
      parse_allow(body, line_has_code ? line : line + 1, &result);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const std::size_t start = i;
      const int start_line = line;
      const bool standalone = !line_has_code;
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') newline();
        ++i;
      }
      int end_line = line;
      i = std::min(n, i + 2);
      const std::string body(text.substr(start, i - start));
      // Same convention as line comments, using the closing line.
      const bool alone = standalone && start_line == end_line;
      parse_allow(body, alone ? end_line + 1 : end_line, &result);
      continue;
    }
    // Preprocessor directive: swallow the logical line (incl. continuations).
    if (c == '#' && !line_has_code) {
      const std::size_t start = i;
      const int directive_line = line;
      while (i < n) {
        if (text[i] == '\n') {
          if (i > 0 && text[i - 1] == '\\') {
            newline();
            ++i;
            continue;
          }
          break;
        }
        ++i;
      }
      std::string directive(text.substr(start, i - start));
      // Collapse whitespace so "#  pragma   once" still matches.
      std::string squeezed;
      for (char d : directive) {
        if (d == ' ' || d == '\t') {
          if (!squeezed.empty() && squeezed.back() != ' ') squeezed += ' ';
        } else {
          squeezed += d;
        }
      }
      if (squeezed.rfind("# pragma once", 0) == 0 ||
          squeezed.rfind("#pragma once", 0) == 0) {
        result.has_pragma_once = true;
      }
      parse_include(squeezed, directive_line, &result);
      continue;
    }
    // String literal (including raw strings and encoding prefixes handled
    // via the preceding identifier token, e.g. R"(...)").
    if (c == '"') {
      const bool raw = !result.tokens.empty() &&
                       result.tokens.back().line == line &&
                       result.tokens.back().kind == Token::Kind::kIdent &&
                       !result.tokens.back().text.empty() &&
                       result.tokens.back().text.back() == 'R';
      std::string value;
      if (raw) {
        result.tokens.pop_back();  // the R prefix is part of the literal
        ++i;
        std::string delim;
        while (i < n && text[i] != '(') delim += text[i++];
        ++i;  // '('
        const std::string closer = ")" + delim + "\"";
        const std::size_t end = text.find(closer, i);
        const std::size_t stop = end == std::string_view::npos ? n : end;
        for (std::size_t k = i; k < stop; ++k) {
          value += text[k];
          if (text[k] == '\n') newline();
        }
        i = stop == n ? n : stop + closer.size();
      } else {
        ++i;
        while (i < n && text[i] != '"') {
          if (text[i] == '\\' && i + 1 < n) {
            value += text[i];
            value += text[i + 1];
            i += 2;
            continue;
          }
          if (text[i] == '\n') newline();  // unterminated; keep line counts
          value += text[i++];
        }
        ++i;  // closing quote
      }
      result.tokens.push_back({Token::Kind::kString, value, line});
      line_has_code = true;
      continue;
    }
    // Character literal.
    if (c == '\'') {
      ++i;
      while (i < n && text[i] != '\'') {
        if (text[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      ++i;
      result.tokens.push_back({Token::Kind::kString, "", line});
      line_has_code = true;
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(text[i])) ++i;
      result.tokens.push_back(
          {Token::Kind::kIdent, std::string(text.substr(start, i - start)),
           line});
      line_has_code = true;
      continue;
    }
    // Number (accepts separators, exponents, hex floats).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      const std::size_t start = i;
      while (i < n) {
        const char d = text[i];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++i;
          continue;
        }
        if ((d == '+' || d == '-') && i > start) {
          const char prev = text[i - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            ++i;
            continue;
          }
        }
        break;
      }
      result.tokens.push_back(
          {Token::Kind::kNumber, std::string(text.substr(start, i - start)),
           line});
      line_has_code = true;
      continue;
    }
    // Multi-char punctuation we care about: -> and ::
    if (c == '-' && i + 1 < n && text[i + 1] == '>') {
      result.tokens.push_back({Token::Kind::kPunct, "->", line});
      i += 2;
      line_has_code = true;
      continue;
    }
    if (c == ':' && i + 1 < n && text[i + 1] == ':') {
      result.tokens.push_back({Token::Kind::kPunct, "::", line});
      i += 2;
      line_has_code = true;
      continue;
    }
    result.tokens.push_back({Token::Kind::kPunct, std::string(1, c), line});
    ++i;
    line_has_code = true;
  }
  return result;
}

// --- rule machinery --------------------------------------------------------

namespace {

struct FileContext {
  std::string path;        ///< as given (diagnostics)
  std::string norm;        ///< forward-slash normalized (scoping)
  const ScanResult* scan = nullptr;
  const Options* options = nullptr;
  std::vector<Finding>* findings = nullptr;
};

bool in_dir(const FileContext& ctx, const char* dir) {
  return ctx.norm.find(dir) != std::string::npos;
}

bool is_header(const FileContext& ctx) {
  return ctx.norm.size() >= 2 &&
         (ctx.norm.rfind(".h") == ctx.norm.size() - 2 ||
          (ctx.norm.size() >= 4 &&
           ctx.norm.rfind(".hpp") == ctx.norm.size() - 4));
}

void emit(const FileContext& ctx, int line, const char* rule,
          std::string message) {
  for (const std::string& disabled : ctx.options->disabled_rules) {
    if (disabled == rule) return;
  }
  const auto at = ctx.scan->allowed.find(line);
  if (at != ctx.scan->allowed.end() && at->second.count(rule) != 0) return;
  ctx.findings->push_back({ctx.path, line, rule, std::move(message)});
}

const Token* prev_tok(const std::vector<Token>& toks, std::size_t i) {
  return i == 0 ? nullptr : &toks[i - 1];
}
const Token* next_tok(const std::vector<Token>& toks, std::size_t i) {
  return i + 1 >= toks.size() ? nullptr : &toks[i + 1];
}

bool is_punct(const Token* tok, const char* text) {
  return tok != nullptr && tok->kind == Token::Kind::kPunct &&
         tok->text == text;
}

bool is_call(const std::vector<Token>& toks, std::size_t i) {
  return is_punct(next_tok(toks, i), "(");
}

bool member_access(const std::vector<Token>& toks, std::size_t i) {
  const Token* prev = prev_tok(toks, i);
  return is_punct(prev, ".") || is_punct(prev, "->");
}

bool std_qualified(const std::vector<Token>& toks, std::size_t i) {
  return i >= 2 && is_punct(&toks[i - 1], "::") &&
         toks[i - 2].kind == Token::Kind::kIdent && toks[i - 2].text == "std";
}

/// True when a printf-style format string requests a floating conversion
/// (%f, %e, %g, %a and their uppercase forms), i.e. consults the locale's
/// radix character.
bool has_float_conversion(const std::string& format) {
  for (std::size_t i = 0; i + 1 < format.size(); ++i) {
    if (format[i] != '%') continue;
    std::size_t j = i + 1;
    while (j < format.size() &&
           std::string_view("-+ #0123456789.*hlLqjzt").find(format[j]) !=
               std::string_view::npos) {
      ++j;
    }
    if (j < format.size() &&
        std::string_view("aAeEfFgG").find(format[j]) !=
            std::string_view::npos) {
      return true;
    }
  }
  return false;
}

// --- rules -----------------------------------------------------------------

void rule_raw_memory(const FileContext& ctx) {
  if (in_dir(ctx, "src/common/")) return;  // the sanctioned home
  static const std::set<std::string> kAllocCalls = {
      "malloc", "calloc", "realloc", "free", "strdup", "aligned_alloc"};
  const auto& toks = ctx.scan->tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind != Token::Kind::kIdent) continue;
    if (tok.text == "new") {
      emit(ctx, tok.line, "raw-memory",
           "raw `new` outside src/common; use std::make_unique / containers");
    } else if (tok.text == "delete") {
      // `= delete;` / `= delete,` function specifiers are not deallocation.
      if (is_punct(prev_tok(toks, i), "=") &&
          (is_punct(next_tok(toks, i), ";") ||
           is_punct(next_tok(toks, i), ","))) {
        continue;
      }
      emit(ctx, tok.line, "raw-memory",
           "raw `delete` outside src/common; owning types manage lifetime");
    } else if (kAllocCalls.count(tok.text) != 0 && is_call(toks, i) &&
               !member_access(toks, i)) {
      emit(ctx, tok.line, "raw-memory",
           "C allocation `" + tok.text +
               "` outside src/common; use RAII owners");
    }
  }
}

void rule_naked_lock(const FileContext& ctx) {
  static const std::set<std::string> kManual = {"lock", "unlock", "try_lock"};
  const auto& toks = ctx.scan->tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind != Token::Kind::kIdent || kManual.count(tok.text) == 0) {
      continue;
    }
    if (!member_access(toks, i)) continue;
    if (!is_call(toks, i) || !is_punct(i + 2 < toks.size() ? &toks[i + 2]
                                                           : nullptr, ")")) {
      continue;
    }
    emit(ctx, tok.line, "naked-lock",
         "manual `." + tok.text +
             "()`; use std::lock_guard / std::unique_lock (RAII)");
  }
}

void rule_net_locale(const FileContext& ctx) {
  if (!in_dir(ctx, "src/net/")) return;
  static const std::set<std::string> kBanned = {
      "strtod", "strtof",     "strtold", "atof", "stod",
      "stof",   "stold",      "sprintf", "vsprintf",
      "setlocale", "localeconv"};
  static const std::set<std::string> kFormatted = {
      "snprintf", "vsnprintf", "printf", "fprintf",
      "sscanf",   "fscanf",    "scanf"};
  const auto& toks = ctx.scan->tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind != Token::Kind::kIdent || member_access(toks, i)) continue;
    if (kBanned.count(tok.text) != 0 && is_call(toks, i)) {
      emit(ctx, tok.line, "net-locale",
           "locale-sensitive `" + tok.text +
               "` in src/net; use net::parse_double / net::hexf (textnum.h)");
      continue;
    }
    if (tok.text == "to_string" && std_qualified(toks, i)) {
      emit(ctx, tok.line, "net-locale",
           "std::to_string in src/net; use net::dec / net::hexf (textnum.h)");
      continue;
    }
    if (kFormatted.count(tok.text) != 0 && is_call(toks, i)) {
      // Integer-only formats are locale-independent; only flag the call if
      // a format literal inside it requests a floating conversion.
      int depth = 0;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (is_punct(&toks[j], "(")) ++depth;
        if (is_punct(&toks[j], ")") && --depth == 0) break;
        if (toks[j].kind == Token::Kind::kString &&
            has_float_conversion(toks[j].text)) {
          emit(ctx, tok.line, "net-locale",
               "`" + tok.text +
                   "` with a floating format in src/net; use net::hexf / "
                   "<charconv> (textnum.h)");
          break;
        }
      }
    }
  }
}

void rule_unguarded_math(const FileContext& ctx) {
  if (!in_dir(ctx, "src/model/") && !in_dir(ctx, "src/opt/")) return;
  static const std::set<std::string> kMath = {
      "exp",   "exp2",  "expm1", "log",  "log2", "log10",
      "log1p", "pow",   "sqrt",  "cbrt", "hypot"};
  const auto& toks = ctx.scan->tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind != Token::Kind::kIdent || kMath.count(tok.text) == 0) {
      continue;
    }
    if (!is_call(toks, i) || member_access(toks, i)) continue;
    emit(ctx, tok.line, "unguarded-math",
         "bare `" + tok.text +
             "()` in solver hot path; route through num::checked_" +
             tok.text + " (src/num/finite.h) so NaN/Inf surface as "
             "kDiverged");
  }
}

void rule_solver_nondeterminism(const FileContext& ctx) {
  if (!in_dir(ctx, "src/model/") && !in_dir(ctx, "src/num/") &&
      !in_dir(ctx, "src/opt/") && !in_dir(ctx, "src/svc/") &&
      !in_dir(ctx, "src/stat/")) {
    return;
  }
  static const std::set<std::string> kNondet = {
      "rand",   "srand",        "rand_r",       "drand48", "lrand48",
      "random", "gettimeofday", "clock_gettime"};
  const auto& toks = ctx.scan->tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind != Token::Kind::kIdent || member_access(toks, i)) continue;
    if (tok.text == "random_device") {
      emit(ctx, tok.line, "solver-nondeterminism",
           "std::random_device in solver code; seed common::Rng explicitly "
           "so runs replay");
      continue;
    }
    if ((kNondet.count(tok.text) != 0 ||
         tok.text == "time" || tok.text == "clock") &&
        is_call(toks, i)) {
      emit(ctx, tok.line, "solver-nondeterminism",
           "nondeterministic `" + tok.text +
               "()` in solver code; plans must replay bit-identically");
    }
  }
}

void rule_net_blocking_call(const FileContext& ctx) {
  // Scope: sources whose code runs on reactor event loops, where a single
  // blocking syscall stalls every connection on the shard.  The sanctioned
  // home for raw socket syscalls is src/net/socket.cpp (bounded-timeout and
  // *_nonblocking helpers); reactor-managed code calls those instead.
  // src/ctrl is included because Replanner::ingest runs inline on shard
  // threads (server.cpp handle_ingest) — it must stay pure arithmetic.
  // The --graph rule blocking-call-transitive extends this through the call
  // graph to helpers defined elsewhere.
  if (!in_dir(ctx, "src/net/reactor") && !in_dir(ctx, "src/net/server") &&
      !in_dir(ctx, "src/ctrl")) {
    return;
  }
  static const std::set<std::string> kBlocking = {
      "accept", "accept4", "connect",  "read",   "write",
      "recv",   "send",    "recvfrom", "sendto", "recvmsg",
      "sendmsg"};
  const auto& toks = ctx.scan->tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind != Token::Kind::kIdent || kBlocking.count(tok.text) == 0) {
      continue;
    }
    if (!is_call(toks, i) || member_access(toks, i)) continue;
    // Namespace-qualified calls (net::..., helpers::...) are wrappers; only
    // the bare or global-scope (`::read`) spelling is the syscall.
    if (i >= 2 && is_punct(&toks[i - 1], "::") &&
        toks[i - 2].kind == Token::Kind::kIdent) {
      continue;
    }
    emit(ctx, tok.line, "net-blocking-call",
         "blocking `" + tok.text +
             "()` in reactor-managed code; use the non-blocking socket.cpp "
             "helpers (recv_nonblocking / send_nonblocking / "
             "accept_nonblocking) or post() to the loop");
  }
}

void rule_pragma_once(const FileContext& ctx) {
  if (!is_header(ctx)) return;
  if (ctx.scan->has_pragma_once) return;
  emit(ctx, 1, "pragma-once", "header without #pragma once");
}

void rule_using_namespace_header(const FileContext& ctx) {
  if (!is_header(ctx)) return;
  const auto& toks = ctx.scan->tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind == Token::Kind::kIdent && toks[i].text == "using" &&
        toks[i + 1].kind == Token::Kind::kIdent &&
        toks[i + 1].text == "namespace") {
      emit(ctx, toks[i].line, "using-namespace-header",
           "`using namespace` in a header leaks into every includer");
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"raw-memory",
       "no new/delete/malloc/free outside src/common (RAII owners only)"},
      {"naked-lock",
       "no manual .lock()/.unlock(); std::lock_guard / std::unique_lock"},
      {"net-blocking-call",
       "no blocking accept/connect/read/write/recv/send in reactor-managed "
       "sources (src/net/reactor*, src/net/server*, src/ctrl)"},
      {"net-locale",
       "no locale-sensitive numeric text in src/net (determinism contract)"},
      {"unguarded-math",
       "exp/log/sqrt/pow in src/model + src/opt go through num::checked_*"},
      {"solver-nondeterminism",
       "no rand()/time()/random_device in solver code (replayable plans)"},
      {"pragma-once", "every header starts with #pragma once"},
      {"using-namespace-header", "no using namespace at header scope"},
  };
  return kRules;
}

const std::vector<RuleInfo>& graph_rules_info() {
  static const std::vector<RuleInfo> kRules = {
      {"blocking-call-transitive",
       "no blocking syscall reachable from reactor/shard entry points "
       "through the call graph (reported with the call chain)"},
      {"determinism-taint",
       "no nondeterminism source (unordered iteration, get_id, clocks) "
       "reachable from canonical_key / deterministic_fingerprint / net "
       "encoders"},
      {"lock-order",
       "the global mutex acquisition-order graph must be acyclic "
       "(cycles are potential deadlocks; reported with a witness path)"},
      {"metric-name-drift",
       "metric-name string literals must not be one edit away from a more "
       "common sibling (catches typo'd registry names)"},
  };
  return kRules;
}

std::vector<Finding> lint_scanned(const std::string& path,
                                  const ScanResult& scanned,
                                  const Options& options) {
  std::vector<Finding> findings;
  std::string norm = path;
  std::replace(norm.begin(), norm.end(), '\\', '/');
  FileContext ctx{path, norm, &scanned, &options, &findings};
  rule_raw_memory(ctx);
  rule_naked_lock(ctx);
  rule_net_locale(ctx);
  rule_net_blocking_call(ctx);
  rule_unguarded_math(ctx);
  rule_solver_nondeterminism(ctx);
  rule_pragma_once(ctx);
  rule_using_namespace_header(ctx);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
            });
  return findings;
}

std::vector<Finding> lint_file(const std::string& path,
                               std::string_view contents,
                               const Options& options) {
  return lint_scanned(path, scan(contents), options);
}

namespace {

bool lintable(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

bool skipped_dir(const std::string& name) {
  return name == ".git" || name == "lint_fixtures" ||
         name.rfind("build", 0) == 0;
}

void collect(const std::filesystem::path& root,
             std::vector<std::string>* files) {
  std::vector<std::filesystem::path> stack = {root};
  while (!stack.empty()) {
    const std::filesystem::path dir = stack.back();
    stack.pop_back();
    std::vector<std::filesystem::path> subdirs;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.is_directory()) {
        if (!skipped_dir(entry.path().filename().string())) {
          subdirs.push_back(entry.path());
        }
      } else if (entry.is_regular_file() && lintable(entry.path())) {
        files->push_back(entry.path().generic_string());
      }
    }
    stack.insert(stack.end(), subdirs.begin(), subdirs.end());
  }
}

}  // namespace

std::vector<std::string> expand_paths(const std::vector<std::string>& paths,
                                      std::vector<Finding>* io_errors) {
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      collect(path, &files);
    } else if (std::filesystem::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      io_errors->push_back({path, 0, "io-error", "no such file or directory"});
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::vector<Finding> lint_paths(const std::vector<std::string>& paths,
                                const Options& options) {
  std::vector<Finding> findings;
  const std::vector<std::string> files = expand_paths(paths, &findings);
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      findings.push_back({file, 0, "io-error", "cannot open file"});
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string contents = buffer.str();
    std::vector<Finding> file_findings = lint_file(file, contents, options);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

void sort_findings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.path, a.line, a.rule, a.message) <
                     std::tie(b.path, b.line, b.rule, b.message);
            });
}

// --- output formats --------------------------------------------------------

namespace {

/// Minimal JSON string escaping (shared by kJson and kSarif output).
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string render_text(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += f.path + ":" + std::to_string(f.line) + ": " + f.rule + ": " +
           f.message + "\n";
  }
  return out;
}

std::string render_json(const std::vector<Finding>& findings) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "  {\"path\": \"" + json_escape(f.path) +
           "\", \"line\": " + std::to_string(f.line) + ", \"rule\": \"" +
           json_escape(f.rule) + "\", \"message\": \"" +
           json_escape(f.message) + "\"}";
    if (i + 1 < findings.size()) out += ",";
    out += "\n";
  }
  out += "]\n";
  return out;
}

std::string render_sarif(const std::vector<Finding>& findings) {
  // SARIF 2.1.0: one run, the full rule table in tool.driver.rules, one
  // result per finding.  io-error findings carry line 0; SARIF regions
  // require startLine >= 1, so those results omit the region.
  std::string out;
  out +=
      "{\n"
      "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
      "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"mlcr-lint\",\n"
      "          \"version\": \"2.0.0\",\n"
      "          \"rules\": [\n";
  std::vector<RuleInfo> all = rules();
  const std::vector<RuleInfo>& graph = graph_rules_info();
  all.insert(all.end(), graph.begin(), graph.end());
  all.push_back({"io-error", "file could not be read"});
  for (std::size_t i = 0; i < all.size(); ++i) {
    out += "            {\"id\": \"" + json_escape(all[i].id) +
           "\", \"shortDescription\": {\"text\": \"" +
           json_escape(all[i].summary) + "\"}}";
    if (i + 1 < all.size()) out += ",";
    out += "\n";
  }
  out +=
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "        {\"ruleId\": \"" + json_escape(f.rule) +
           "\", \"level\": \"error\", \"message\": {\"text\": \"" +
           json_escape(f.message) +
           "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"" +
           json_escape(f.path) + "\"}";
    if (f.line > 0) {
      out += ", \"region\": {\"startLine\": " + std::to_string(f.line) + "}";
    }
    out += "}}]}";
    if (i + 1 < findings.size()) out += ",";
    out += "\n";
  }
  out +=
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

/// GitHub Actions workflow commands: %, CR and LF must be URL-escaped in
/// annotation messages (https://docs.github.com/actions workflow commands).
std::string github_escape(std::string_view text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '%': out += "%25"; break;
      case '\n': out += "%0A"; break;
      case '\r': out += "%0D"; break;
      default: out += c;
    }
  }
  return out;
}

std::string render_github(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += "::error file=" + github_escape(f.path);
    if (f.line > 0) out += ",line=" + std::to_string(f.line);
    out += ",title=" + github_escape(f.rule) +
           "::" + github_escape(f.message) + "\n";
  }
  return out;
}

}  // namespace

std::optional<Format> parse_format(std::string_view name) {
  if (name == "text") return Format::kText;
  if (name == "json") return Format::kJson;
  if (name == "sarif") return Format::kSarif;
  if (name == "github") return Format::kGithub;
  return std::nullopt;
}

std::string render(const std::vector<Finding>& findings, Format format) {
  switch (format) {
    case Format::kText: return render_text(findings);
    case Format::kJson: return render_json(findings);
    case Format::kSarif: return render_sarif(findings);
    case Format::kGithub: return render_github(findings);
  }
  return {};
}

// --- baseline --------------------------------------------------------------

std::string baseline_key(const Finding& finding) {
  return finding.path + "|" + finding.rule + "|" + finding.message;
}

std::optional<std::set<std::string>> load_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::set<std::string> keys;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    keys.insert(line);
  }
  return keys;
}

std::string serialize_baseline(const std::vector<Finding>& findings) {
  std::set<std::string> keys;
  for (const Finding& f : findings) keys.insert(baseline_key(f));
  std::string out =
      "# mlcr-lint baseline: one path|rule|message key per line.\n"
      "# Regenerate with scripts/lint_baseline.sh; the graph-tree ctest\n"
      "# fails when a finding is neither fixed nor listed here.\n";
  for (const std::string& key : keys) out += key + "\n";
  return out;
}

void apply_baseline(const std::set<std::string>& baseline,
                    std::vector<Finding>* findings) {
  findings->erase(std::remove_if(findings->begin(), findings->end(),
                                 [&](const Finding& f) {
                                   return baseline.count(baseline_key(f)) != 0;
                                 }),
                  findings->end());
}

}  // namespace mlcr::lint
