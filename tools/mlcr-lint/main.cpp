// CLI for mlcr-lint.  See lint.h for the rule set.
//
//   ./build/tools/mlcr-lint src examples bench tests
//
// Prints `file:line: rule-id: message` per finding; exits 0 on a clean
// tree, 1 when there are findings, 2 on usage errors.
#include <cstdio>
#include <string>
#include <vector>

#include "lint.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--list-rules] [--disable <rule-id>] <path>...\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  mlcr::lint::Options options;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& rule : mlcr::lint::rules()) {
        std::printf("%-24s %s\n", rule.id, rule.summary);
      }
      return 0;
    }
    if (arg == "--disable") {
      if (i + 1 >= argc) return usage(argv[0]);
      options.disabled_rules.push_back(argv[++i]);
      continue;
    }
    if (arg == "--help" || arg == "-h" || arg.rfind("--", 0) == 0) {
      return usage(argv[0]);
    }
    paths.push_back(arg);
  }
  if (paths.empty()) return usage(argv[0]);

  const std::vector<mlcr::lint::Finding> findings =
      mlcr::lint::lint_paths(paths, options);
  for (const auto& finding : findings) {
    std::printf("%s:%d: %s: %s\n", finding.path.c_str(), finding.line,
                finding.rule.c_str(), finding.message.c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "mlcr-lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
