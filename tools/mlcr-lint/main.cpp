// CLI for mlcr-lint.  See lint.h for the rule set.
//
//   ./build/tools/mlcr-lint src examples bench tests
//   ./build/tools/mlcr-lint --graph --baseline tools/mlcr-lint/baseline.txt
//       src examples bench tests
//
// Default output is `file:line: rule-id: message` per finding; --format
// selects json / sarif / github renderings.  Exits 0 on a clean tree, 1
// when there are findings, 2 on usage or baseline IO errors.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "graph_rules.h"
#include "index.h"
#include "lint.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--list-rules] [--disable <rule-id>] [--graph]\n"
      "          [--format=text|json|sarif|github] [--baseline <file>]\n"
      "          [--write-baseline <file>] [--jobs <n>] <path>...\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  mlcr::lint::Options options;
  std::vector<std::string> paths;
  bool graph = false;
  mlcr::lint::Format format = mlcr::lint::Format::kText;
  std::string baseline_path;
  std::string write_baseline_path;
  std::size_t jobs = 0;  // 0 = hardware concurrency

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& rule : mlcr::lint::rules()) {
        std::printf("%-26s %s\n", rule.id, rule.summary);
      }
      for (const auto& rule : mlcr::lint::graph_rules_info()) {
        std::printf("%-26s [graph] %s\n", rule.id, rule.summary);
      }
      return 0;
    }
    if (arg == "--disable") {
      if (i + 1 >= argc) return usage(argv[0]);
      options.disabled_rules.push_back(argv[++i]);
      continue;
    }
    if (arg == "--graph") {
      graph = true;
      continue;
    }
    if (arg.rfind("--format=", 0) == 0) {
      const auto parsed = mlcr::lint::parse_format(arg.substr(9));
      if (!parsed) return usage(argv[0]);
      format = *parsed;
      continue;
    }
    if (arg == "--baseline") {
      if (i + 1 >= argc) return usage(argv[0]);
      baseline_path = argv[++i];
      continue;
    }
    if (arg == "--write-baseline") {
      if (i + 1 >= argc) return usage(argv[0]);
      write_baseline_path = argv[++i];
      continue;
    }
    if (arg == "--jobs") {
      if (i + 1 >= argc) return usage(argv[0]);
      jobs = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      continue;
    }
    if (arg == "--help" || arg == "-h" || arg.rfind("--", 0) == 0) {
      return usage(argv[0]);
    }
    paths.push_back(arg);
  }
  if (paths.empty()) return usage(argv[0]);

  std::vector<mlcr::lint::Finding> findings;
  if (graph) {
    const std::vector<std::string> files =
        mlcr::lint::expand_paths(paths, &findings);
    const mlcr::lint::Index index =
        mlcr::lint::build_index(files, jobs, &findings, &options);
    std::vector<mlcr::lint::Finding> graph_findings =
        mlcr::lint::run_graph_rules(index, options);
    findings.insert(findings.end(),
                    std::make_move_iterator(graph_findings.begin()),
                    std::make_move_iterator(graph_findings.end()));
    std::fprintf(stderr,
                 "mlcr-lint: indexed %zu files (%zu tokens, %zu functions, "
                 "%zu calls, %zu includes) — lex %.3fs on %zu thread(s), "
                 "extract+rules %.3fs\n",
                 index.stats.files, index.stats.tokens, index.stats.functions,
                 index.stats.calls, index.stats.includes,
                 index.stats.lex_seconds, index.stats.threads,
                 index.stats.index_seconds);
  } else {
    findings = mlcr::lint::lint_paths(paths, options);
  }
  mlcr::lint::sort_findings(&findings);

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "mlcr-lint: cannot write baseline %s\n",
                   write_baseline_path.c_str());
      return 2;
    }
    out << mlcr::lint::serialize_baseline(findings);
    std::fprintf(stderr, "mlcr-lint: wrote %zu finding(s) to %s\n",
                 findings.size(), write_baseline_path.c_str());
    return 0;
  }

  if (!baseline_path.empty()) {
    const auto baseline = mlcr::lint::load_baseline(baseline_path);
    if (!baseline) {
      std::fprintf(stderr, "mlcr-lint: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    mlcr::lint::apply_baseline(*baseline, &findings);
  }

  const std::string rendered = mlcr::lint::render(findings, format);
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  if (!findings.empty()) {
    std::fprintf(stderr, "mlcr-lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
