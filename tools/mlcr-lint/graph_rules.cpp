#include "graph_rules.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <tuple>

namespace mlcr::lint {

namespace {

struct GraphContext {
  const Index* index = nullptr;
  const Options* options = nullptr;
  std::vector<Finding>* findings = nullptr;
  /// Resolved call-graph adjacency: fn id -> sorted unique callee ids.
  std::vector<std::vector<std::size_t>> callees;
};

bool rule_disabled(const GraphContext& ctx, const char* rule) {
  for (const std::string& d : ctx.options->disabled_rules) {
    if (d == rule) return true;
  }
  return false;
}

void emit(const GraphContext& ctx, std::size_t file, int line,
          const char* rule, std::string message) {
  if (rule_disabled(ctx, rule)) return;
  const IndexedFile& f = ctx.index->files[file];
  const auto at = f.allowed.find(line);
  if (at != f.allowed.end() && at->second.count(rule) != 0) return;
  ctx.findings->push_back({f.path, line, rule, std::move(message)});
}

/// Strips a leading "mlcr::" so witness chains stay readable; fixture
/// namespaces pass through unchanged.
std::string short_name(const std::string& qualified) {
  if (qualified.rfind("mlcr::", 0) == 0) return qualified.substr(6);
  return qualified;
}

std::string join_chain(const std::vector<std::size_t>& chain,
                       const Index& index) {
  std::string out;
  for (std::size_t id : chain) {
    if (!out.empty()) out += " -> ";
    out += short_name(index.functions[id].name);
  }
  return out;
}

/// Shortest-path BFS from `sources` over ctx.callees; parent[fn] = the fn we
/// arrived from (SIZE_MAX for sources / unreached).  Deterministic: sources
/// and neighbors are visited in ascending id order.
std::vector<std::size_t> bfs(const GraphContext& ctx,
                             const std::vector<std::size_t>& sources,
                             std::vector<bool>* reached) {
  const std::size_t n = ctx.index->functions.size();
  std::vector<std::size_t> parent(n, SIZE_MAX);
  reached->assign(n, false);
  std::deque<std::size_t> queue;
  for (std::size_t s : sources) {
    if (!(*reached)[s]) {
      (*reached)[s] = true;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    const std::size_t at = queue.front();
    queue.pop_front();
    for (std::size_t next : ctx.callees[at]) {
      if ((*reached)[next]) continue;
      (*reached)[next] = true;
      parent[next] = at;
      queue.push_back(next);
    }
  }
  return parent;
}

std::vector<std::size_t> chain_to(const std::vector<std::size_t>& parent,
                                  std::size_t fn) {
  std::vector<std::size_t> chain = {fn};
  while (parent[chain.back()] != SIZE_MAX) chain.push_back(parent[chain.back()]);
  std::reverse(chain.begin(), chain.end());
  return chain;
}

// --- blocking-call-transitive ---------------------------------------------

/// Files already policed by the per-file net-blocking-call rule; direct
/// facts there are that rule's findings, not this one's.
bool per_file_blocking_scope(const std::string& norm) {
  return norm.find("src/net/reactor") != std::string::npos ||
         norm.find("src/net/server") != std::string::npos ||
         norm.find("src/ctrl") != std::string::npos;
}

bool is_reactor_entry(const Index& index, const FunctionInfo& fn) {
  const std::string& norm = index.files[fn.file].norm;
  if (norm.find("src/net/") != std::string::npos &&
      (fn.name.find("Reactor::") != std::string::npos ||
       fn.name.find("Server::") != std::string::npos)) {
    return true;
  }
  // A lambda handed straight to post(...) is deferred onto the reactor loop.
  if (fn.posted_lambda && norm.find("src/net/") != std::string::npos) {
    return true;
  }
  if (norm.find("src/ctrl") != std::string::npos &&
      fn.name.find("Replanner::ingest") != std::string::npos) {
    return true;
  }
  return false;
}

void rule_blocking_transitive(const GraphContext& ctx) {
  const Index& index = *ctx.index;
  std::vector<std::size_t> entries;
  for (std::size_t id = 0; id < index.functions.size(); ++id) {
    if (is_reactor_entry(index, index.functions[id])) entries.push_back(id);
  }
  if (entries.empty()) return;
  std::vector<bool> reached;
  const std::vector<std::size_t> parent = bfs(ctx, entries, &reached);
  for (std::size_t id = 0; id < index.functions.size(); ++id) {
    if (!reached[id]) continue;
    const FunctionInfo& fn = index.functions[id];
    if (fn.blocking.empty()) continue;
    if (per_file_blocking_scope(index.files[fn.file].norm)) continue;
    const std::vector<std::size_t> chain = chain_to(parent, id);
    if (chain.size() < 2) continue;  // direct facts in entries: per-file rule
    const std::string chain_text = join_chain(chain, index);
    for (const SourceFact& fact : fn.blocking) {
      emit(ctx, fn.file, fact.line, "blocking-call-transitive",
           "blocking `" + fact.what + "` reachable from reactor entry `" +
               short_name(index.functions[chain.front()].name) + "` via " +
               chain_text +
               "; use the non-blocking socket.cpp helpers or post() off the "
               "loop");
    }
  }
}

// --- determinism-taint -----------------------------------------------------

bool is_determinism_sink(const Index& index, const FunctionInfo& fn) {
  if (fn.base == "canonical_key" || fn.base == "deterministic_fingerprint") {
    return true;
  }
  // Wire encoders (src/net/) and the DES backend's payload/fingerprint
  // encoders (src/sim/) are both replayed bit-exactly: anything
  // nondeterministic feeding them breaks cache keys or restore checks.
  if (fn.base.rfind("encode_", 0) != 0) return false;
  const std::string& file = index.files[fn.file].norm;
  return file.find("src/net/") != std::string::npos ||
         file.find("src/sim/") != std::string::npos;
}

void rule_determinism_taint(const GraphContext& ctx) {
  const Index& index = *ctx.index;
  std::vector<std::size_t> sinks;
  for (std::size_t id = 0; id < index.functions.size(); ++id) {
    if (is_determinism_sink(index, index.functions[id])) sinks.push_back(id);
  }
  if (sinks.empty()) return;
  // A tainted function is a finding when it can REACH a sink, so the BFS
  // walks the reversed call graph outward from the sinks.
  GraphContext reversed = ctx;
  reversed.callees.assign(index.functions.size(), {});
  for (std::size_t id = 0; id < ctx.callees.size(); ++id) {
    for (std::size_t callee : ctx.callees[id]) {
      reversed.callees[callee].push_back(id);
    }
  }
  for (auto& edges : reversed.callees) {
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }
  std::vector<bool> reached;
  const std::vector<std::size_t> parent = bfs(reversed, sinks, &reached);
  for (std::size_t id = 0; id < index.functions.size(); ++id) {
    if (!reached[id]) continue;
    const FunctionInfo& fn = index.functions[id];
    if (fn.taints.empty()) continue;
    // parent chains run sink -> ... -> fn; flip so the witness reads in
    // data-flow direction (tainted fn -> ... -> sink).
    std::vector<std::size_t> chain = chain_to(parent, id);
    std::reverse(chain.begin(), chain.end());
    const std::string chain_text = join_chain(chain, index);
    for (const SourceFact& fact : fn.taints) {
      emit(ctx, fn.file, fact.line, "determinism-taint",
           "nondeterminism source (" + fact.what +
               ") flows into determinism sink `" +
               short_name(index.functions[chain.back()].name) + "` via " +
               chain_text +
               "; canonical keys, fingerprints and wire payloads must be "
               "bit-stable");
    }
  }
}

// --- lock-order ------------------------------------------------------------

struct EdgeWitness {
  std::size_t file = 0;
  int line = 0;                     ///< acquisition site of the `to` mutex
  std::vector<std::size_t> chain;   ///< caller -> ... -> acquiring fn
};

void rule_lock_order(const GraphContext& ctx) {
  const Index& index = *ctx.index;
  const std::size_t n = index.functions.size();

  // Transitive acquisition sets with witness pointers: for (fn, mutex),
  // either a direct LockSite or (call line, callee) that leads to one.
  struct Via {
    bool direct = false;
    int line = 0;          ///< direct: acquisition line; else call line
    std::size_t callee = SIZE_MAX;
  };
  std::vector<std::map<std::string, Via>> acquires(n);
  for (std::size_t id = 0; id < n; ++id) {
    for (const LockSite& site : index.functions[id].locks) {
      acquires[id].emplace(site.mutex, Via{true, site.line, SIZE_MAX});
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t id = 0; id < n; ++id) {
      for (const CallSite& call : index.functions[id].calls) {
        for (std::size_t callee :
             resolve_call(index, index.functions[id], call)) {
          for (const auto& [mutex, via] : acquires[callee]) {
            (void)via;
            if (acquires[id].count(mutex) == 0) {
              acquires[id].emplace(mutex, Via{false, call.line, callee});
              changed = true;
            }
          }
        }
      }
    }
  }

  // Reconstructs fn-chain + final acquisition site for (fn, mutex).
  auto witness_for = [&](std::size_t fn, const std::string& mutex) {
    EdgeWitness w;
    std::size_t at = fn;
    for (std::size_t hops = 0; hops <= n; ++hops) {
      w.chain.push_back(at);
      const Via& via = acquires[at].at(mutex);
      if (via.direct) {
        w.file = index.functions[at].file;
        w.line = via.line;
        return w;
      }
      at = via.callee;
    }
    return w;  // unreachable: the fixpoint only adds resolvable paths
  };

  // Acquisition-order edges.
  std::map<std::pair<std::string, std::string>, EdgeWitness> edges;
  auto add_edge = [&](const std::string& from, const std::string& to,
                      EdgeWitness w) {
    edges.emplace(std::make_pair(from, to), std::move(w));
  };
  for (std::size_t id = 0; id < n; ++id) {
    const FunctionInfo& fn = index.functions[id];
    for (const LockSite& site : fn.locks) {
      for (const std::string& held : site.held) {
        if (held == site.mutex) continue;
        add_edge(held, site.mutex, EdgeWitness{fn.file, site.line, {id}});
      }
    }
    for (const CallSite& call : fn.calls) {
      if (call.held.empty()) continue;
      for (std::size_t callee : resolve_call(index, fn, call)) {
        for (const auto& [mutex, via] : acquires[callee]) {
          (void)via;
          for (const std::string& held : call.held) {
            if (held == mutex) continue;
            if (edges.count({held, mutex}) != 0) continue;
            EdgeWitness w = witness_for(callee, mutex);
            w.chain.insert(w.chain.begin(), id);
            add_edge(held, mutex, std::move(w));
          }
        }
      }
    }
  }

  // Cycle detection over the mutex digraph (deterministic DFS).
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [key, w] : edges) {
    (void)w;
    adj[key.first].push_back(key.second);
    adj.emplace(key.second, std::vector<std::string>());
  }
  std::set<std::vector<std::string>> reported;
  std::map<std::string, int> color;  // 0 white, 1 on stack, 2 done
  std::vector<std::string> stack;

  auto report_cycle = [&](std::size_t loop_start) {
    std::vector<std::string> cycle(stack.begin() + loop_start, stack.end());
    // Canonical rotation: smallest mutex first.
    const auto min_it = std::min_element(cycle.begin(), cycle.end());
    std::rotate(cycle.begin(), min_it, cycle.end());
    if (!reported.insert(cycle).second) return;
    std::string names;
    for (const std::string& m : cycle) names += "`" + m + "` -> ";
    names += "`" + cycle.front() + "`";
    std::string detail;
    for (std::size_t e = 0; e < cycle.size(); ++e) {
      const std::string& from = cycle[e];
      const std::string& to = cycle[(e + 1) % cycle.size()];
      const EdgeWitness& w = edges.at({from, to});
      detail += "; `" + to + "` acquired with `" + from + "` held at " +
                index.files[w.file].path + ":" + std::to_string(w.line) +
                " (" + join_chain(w.chain, index) + ")";
    }
    const EdgeWitness& first =
        edges.at({cycle.front(), cycle[1 % cycle.size()]});
    emit(ctx, first.file, first.line, "lock-order",
         "mutex acquisition-order cycle: " + names + detail +
             "; acquire in one global order or use std::scoped_lock");
  };

  std::function<void(const std::string&)> dfs = [&](const std::string& at) {
    color[at] = 1;
    stack.push_back(at);
    for (const std::string& next : adj[at]) {
      if (color[next] == 1) {
        const auto it = std::find(stack.begin(), stack.end(), next);
        report_cycle(static_cast<std::size_t>(it - stack.begin()));
      } else if (color[next] == 0) {
        dfs(next);
      }
    }
    stack.pop_back();
    color[at] = 2;
  };
  for (const auto& [node, nexts] : adj) {
    (void)nexts;
    if (color[node] == 0) dfs(node);
  }
  // Self-edges (relocking a held mutex) are cycles of length one.
  for (const auto& [key, w] : edges) {
    if (key.first != key.second) continue;
    emit(ctx, w.file, w.line, "lock-order",
         "mutex `" + key.first +
             "` re-acquired while already held (self-deadlock on a "
             "non-recursive mutex) at " + index.files[w.file].path + ":" +
             std::to_string(w.line) + " (" + join_chain(w.chain, index) + ")");
  }
}

// --- metric-name-drift -----------------------------------------------------

std::size_t edit_distance(const std::string& a, const std::string& b) {
  const std::size_t la = a.size();
  const std::size_t lb = b.size();
  if (la > lb + 1 || lb > la + 1) return 2;  // only distance <= 1 matters
  std::vector<std::size_t> row(lb + 1);
  for (std::size_t j = 0; j <= lb; ++j) row[j] = j;
  for (std::size_t i = 1; i <= la; ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= lb; ++j) {
      const std::size_t up = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = up;
    }
  }
  return row[lb];
}

void rule_metric_name_drift(const GraphContext& ctx) {
  const Index& index = *ctx.index;
  std::map<std::string, std::vector<const MetricUse*>> by_name;
  for (const MetricUse& use : index.metrics) {
    if (use.prefix) continue;  // dynamic `"net.shard." + i` style names
    by_name[use.name].push_back(&use);
  }
  for (const auto& [name, uses] : by_name) {
    const MetricUse* best = nullptr;
    std::string best_sibling;
    std::size_t best_count = uses.size();
    for (const auto& [other, other_uses] : by_name) {
      if (other == name) continue;
      if (other_uses.size() <= uses.size()) continue;  // strictly rarer only
      if (edit_distance(name, other) != 1) continue;
      if (other_uses.size() > best_count ||
          (other_uses.size() == best_count && other < best_sibling)) {
        best = other_uses.front();
        best_sibling = other;
        best_count = other_uses.size();
      }
    }
    if (best == nullptr) continue;
    for (const MetricUse* use : uses) {
      emit(ctx, use->file, use->line, "metric-name-drift",
           "metric name `" + name + "` (used " +
               std::to_string(uses.size()) + "x) is one edit from `" +
               best_sibling + "` (used " + std::to_string(best_count) +
               "x); unify the spelling or allow if intentional");
    }
  }
}

}  // namespace

std::vector<Finding> run_graph_rules(const Index& index,
                                     const Options& options) {
  std::vector<Finding> findings;
  GraphContext ctx;
  ctx.index = &index;
  ctx.options = &options;
  ctx.findings = &findings;
  ctx.callees.resize(index.functions.size());
  for (std::size_t id = 0; id < index.functions.size(); ++id) {
    std::vector<std::size_t>& out = ctx.callees[id];
    for (const CallSite& call : index.functions[id].calls) {
      const std::vector<std::size_t> resolved =
          resolve_call(index, index.functions[id], call);
      out.insert(out.end(), resolved.begin(), resolved.end());
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  rule_blocking_transitive(ctx);
  rule_determinism_taint(ctx);
  rule_lock_order(ctx);
  rule_metric_name_drift(ctx);
  sort_findings(&findings);
  return findings;
}

}  // namespace mlcr::lint
