// Pass 2 of the --graph analysis: whole-repo rules over the pass-1 index.
//
//   lock-order                mutex acquisition-order cycles (held-lock sets
//                             propagated through the call graph; each edge
//                             carries a witness acquisition site + chain)
//   blocking-call-transitive  blocking syscalls reachable from reactor/shard
//                             entry points (Reactor::*, Server::* in src/net,
//                             Replanner::ingest in src/ctrl), reported with
//                             the shortest call chain
//   determinism-taint         nondeterminism sources reachable from
//                             canonical_key / deterministic_fingerprint /
//                             src/net encode_* payload encoders
//   metric-name-drift         metric-name literals one edit away from a
//                             strictly more common sibling
//
// Findings honor the same inline `// mlcr-lint: allow(rule)` comments as the
// per-file rules, applied at the finding's own line, and the same
// Options::disabled_rules list.  All output is deterministic: functions are
// visited in index order, neighbors in ascending id order, and every message
// embeds its witness path so a human can check the finding by hand.
#pragma once

#include <vector>

#include "index.h"
#include "lint.h"

namespace mlcr::lint {

[[nodiscard]] std::vector<Finding> run_graph_rules(const Index& index,
                                                   const Options& options = {});

}  // namespace mlcr::lint
