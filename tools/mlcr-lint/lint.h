// mlcr-lint: the project-invariant analyzer.
//
// A token-level scanner (no libclang) that enforces the repo's own coding
// invariants as named, suppressible rules — the things -Wall and the
// sanitizers cannot see because they are *conventions*, not language rules.
//
// Per-file rules (pass over one translation unit at a time):
//
//   raw-memory              no new/delete/malloc/free outside src/common
//   naked-lock              no manual .lock()/.unlock(); RAII guards only
//   net-blocking-call       no blocking accept/connect/read/write/recv/send
//                           in reactor-managed sources (src/net/reactor*,
//                           src/net/server*, src/ctrl — Replanner::ingest
//                           runs on shard threads); socket.cpp helpers only
//   net-locale              no locale-sensitive numeric text in src/net
//   unguarded-math          exp/log/sqrt/pow in src/model + src/opt must
//                           route through the num::checked_* finite guards
//   solver-nondeterminism   no rand()/time()/random_device in solver code
//   pragma-once             every header starts with #pragma once
//   using-namespace-header  no using namespace at header scope
//
// Graph rules (--graph: a two-pass whole-repo analysis; pass 1 builds a
// symbol/call/lock index over every file — see index.h — pass 2 walks it):
//
//   lock-order              mutex acquisition-order cycles across the call
//                           graph (potential deadlock), with witness path
//   blocking-call-transitive blocking syscalls reachable from reactor/shard
//                           entry points through helpers, with call chain
//   determinism-taint       nondeterminism sources (unordered iteration,
//                           get_id, clocks) reachable from canonical_key /
//                           deterministic_fingerprint / net encoders
//   metric-name-drift       near-duplicate metric-name literals repo-wide
//
// Diagnostics are `file:line: rule-id: message`.  A finding on a line that
// carries `// mlcr-lint: allow(rule-a, rule-b)` — comma- or space-separated
// ids — or whose previous line is only that comment — is suppressed.  See
// DESIGN.md §10 for the rule rationale, index schema, and how to add a rule.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace mlcr::lint {

struct Finding {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// The per-file rule table, in diagnostic-id order.
[[nodiscard]] const std::vector<RuleInfo>& rules();

/// The graph rule table (--graph), in diagnostic-id order.
[[nodiscard]] const std::vector<RuleInfo>& graph_rules_info();

// --- lexer -----------------------------------------------------------------
// Exposed so the pass-1 indexer (index.cpp) shares one tokenizer with the
// per-file rules; tests drive it directly for suppression-parsing coverage.

struct Token {
  enum class Kind { kIdent, kNumber, kString, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;
  int line = 0;
};

struct Include {
  std::string target;  ///< as written between the quotes / angle brackets
  bool angled = false;
  int line = 0;
};

struct ScanResult {
  std::vector<Token> tokens;
  /// line -> rule ids suppressed on that line (from allow() directives).
  std::map<int, std::set<std::string>> allowed;
  /// #include directives, in file order (the pass-1 include graph).
  std::vector<Include> includes;
  bool has_pragma_once = false;
};

/// Token-level scan: identifiers/numbers/strings/punctuation; strips
/// comments (harvesting allow() directives) and preprocessor lines
/// (detecting #pragma once, collecting #include targets).
[[nodiscard]] ScanResult scan(std::string_view text);

// --- driving ---------------------------------------------------------------

struct Options {
  /// Rule ids disabled for this run (--disable on the CLI).
  std::vector<std::string> disabled_rules;
};

/// Lints one file's contents.  `path` is used both for diagnostics and for
/// rule scoping: directory-scoped rules match on normalized sub-strings
/// ("src/net/", "src/common/", ...), so fixtures can opt into a scope by
/// mirroring the directory layout.
[[nodiscard]] std::vector<Finding> lint_file(const std::string& path,
                                             std::string_view contents,
                                             const Options& options = {});

/// Runs the per-file rules over an already-scanned file (shared by
/// lint_file and the --graph driver, which lexes each file exactly once).
[[nodiscard]] std::vector<Finding> lint_scanned(const std::string& path,
                                                const ScanResult& scanned,
                                                const Options& options = {});

/// Lints files and directory trees.  Directories are walked recursively for
/// .h/.hpp/.cpp/.cc files in sorted order; build trees, .git, and
/// lint_fixtures directories are skipped during the walk (explicitly named
/// files are always scanned).  IO failures are reported as findings with
/// rule "io-error" so a truncated run can never look clean.
[[nodiscard]] std::vector<Finding> lint_paths(
    const std::vector<std::string>& paths, const Options& options = {});

/// Expands `paths` to the sorted, deduplicated lintable file list using the
/// same walk as lint_paths.  Missing paths append io-error findings.
[[nodiscard]] std::vector<std::string> expand_paths(
    const std::vector<std::string>& paths, std::vector<Finding>* io_errors);

/// Stable ordering for reports and baselines: (path, line, rule, message).
void sort_findings(std::vector<Finding>* findings);

// --- output formats --------------------------------------------------------

enum class Format { kText, kJson, kSarif, kGithub };

/// Parses a --format= value; nullopt on unknown names.
[[nodiscard]] std::optional<Format> parse_format(std::string_view name);

/// Renders findings in the given format.  kText is the classic
/// `file:line: rule: message` lines; kJson a stable JSON array; kSarif a
/// SARIF 2.1.0 log (one run, one result per finding); kGithub GitHub
/// Actions `::error file=...` workflow annotations.
[[nodiscard]] std::string render(const std::vector<Finding>& findings,
                                 Format format);

// --- baseline / ratchet ----------------------------------------------------
// A baseline file holds one `path|rule|message` key per line (line numbers
// are deliberately excluded so unrelated edits don't invalidate entries).
// `#` comment lines and blank lines are ignored.  Findings whose key is in
// the baseline are dropped, which lets a new rule land with existing debt
// ratcheted: the debt cannot grow, and scripts/lint_baseline.sh fails CI
// when the committed baseline goes stale.

[[nodiscard]] std::string baseline_key(const Finding& finding);

/// Loads a baseline file; nullopt when it cannot be read.
[[nodiscard]] std::optional<std::set<std::string>> load_baseline(
    const std::string& path);

/// Serializes findings as sorted, deduplicated baseline lines.
[[nodiscard]] std::string serialize_baseline(
    const std::vector<Finding>& findings);

/// Removes findings whose baseline_key is present in `baseline`.
void apply_baseline(const std::set<std::string>& baseline,
                    std::vector<Finding>* findings);

}  // namespace mlcr::lint
