// mlcr-lint: the project-invariant analyzer.
//
// A token-level scanner (no libclang) that enforces the repo's own coding
// invariants as named, suppressible rules — the things -Wall and the
// sanitizers cannot see because they are *conventions*, not language rules:
//
//   raw-memory              no new/delete/malloc/free outside src/common
//   naked-lock              no manual .lock()/.unlock(); RAII guards only
//   net-blocking-call       no blocking accept/connect/read/write/recv/send
//                           in reactor-managed sources (src/net/reactor*,
//                           src/net/server*, src/ctrl — Replanner::ingest
//                           runs on shard threads); socket.cpp helpers only
//   net-locale              no locale-sensitive numeric text in src/net
//   unguarded-math          exp/log/sqrt/pow in src/model + src/opt must
//                           route through the num::checked_* finite guards
//   solver-nondeterminism   no rand()/time()/random_device in solver code
//   pragma-once             every header starts with #pragma once
//   using-namespace-header  no using namespace at header scope
//
// Diagnostics are `file:line: rule-id: message`.  A finding on a line that
// carries `// mlcr-lint: allow(rule-id)` — or whose previous line is only
// that comment — is suppressed.  See DESIGN.md §10 for the rule rationale
// and how to add a rule.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mlcr::lint {

struct Finding {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// The rule table, in diagnostic-id order.
[[nodiscard]] const std::vector<RuleInfo>& rules();

struct Options {
  /// Rule ids disabled for this run (--disable on the CLI).
  std::vector<std::string> disabled_rules;
};

/// Lints one file's contents.  `path` is used both for diagnostics and for
/// rule scoping: directory-scoped rules match on normalized sub-strings
/// ("src/net/", "src/common/", ...), so fixtures can opt into a scope by
/// mirroring the directory layout.
[[nodiscard]] std::vector<Finding> lint_file(const std::string& path,
                                             std::string_view contents,
                                             const Options& options = {});

/// Lints files and directory trees.  Directories are walked recursively for
/// .h/.hpp/.cpp/.cc files in sorted order; build trees, .git, and
/// lint_fixtures directories are skipped during the walk (explicitly named
/// files are always scanned).  IO failures are reported as findings with
/// rule "io-error" so a truncated run can never look clean.
[[nodiscard]] std::vector<Finding> lint_paths(
    const std::vector<std::string>& paths, const Options& options = {});

}  // namespace mlcr::lint
