// Pass 1 of the --graph analysis: a whole-repo index built from the shared
// token lexer (lint.h scan()).  One parse per file extracts:
//
//   - the include graph (quoted + angled #include targets),
//   - every function *definition* with its fully qualified name (namespace
//     stack + class stack + explicit Class:: qualifiers on out-of-line
//     definitions),
//   - per-function call sites (name as written, receiver identifier for
//     member calls, and the set of mutex keys held at the call),
//   - per-function lock acquisitions (std::lock_guard / scoped_lock /
//     unique_lock / shared_lock targets, canonicalized to
//     `Enclosing::Scope::expr` keys, with the keys already held),
//   - blocking-syscall and nondeterminism-source facts (inputs to the
//     blocking-call-transitive and determinism-taint graph rules),
//   - metric-name string literals (first argument of .counter/.gauge/.timer
//     registry calls),
//   - declared variable/member names -> candidate class types (narrows
//     member-call resolution) and names declared with unordered_* types,
//     scoped by declaring file + include closure (iteration over those is a
//     nondeterminism source; a same-file ordered declaration shadows them).
//
// The extractor is token-level and heuristic: it over-approximates calls
// (every `name(` that isn't a keyword or declaration it recognizes) and
// resolves them by base name, narrowed by receiver type and same-file
// preference in graph_rules.cpp.  That bias is deliberate — over-approximate
// reachability, then let witness paths make each finding checkable by hand.
//
// Lexing is parallel (common::ThreadPool, one task per file, results in
// deterministic slot order); extraction is single-threaded and cheap.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

#include "lint.h"

namespace mlcr::lint {

/// A call site inside a function body.
struct CallSite {
  std::string name;      ///< as written: "helper" or "ns::helper"
  std::string receiver;  ///< last receiver identifier for member calls
  bool member = false;   ///< preceded by `.` or `->`
  int line = 0;
  std::vector<std::string> held;  ///< mutex keys held at the call
};

/// A RAII guard acquisition inside a function body.
struct LockSite {
  std::string mutex;  ///< canonical key, e.g. "mlcr::net::Server::subs_mutex_"
  int line = 0;
  std::vector<std::string> held;  ///< keys already held when this is acquired
};

/// A direct blocking-syscall or nondeterminism-source fact.
struct SourceFact {
  std::string what;  ///< e.g. "::recv()" or "iteration over unordered `conns`"
  int line = 0;
};

struct FunctionInfo {
  std::string name;  ///< fully qualified, e.g. "mlcr::net::Server::flush"
  std::string base;  ///< last component, e.g. "flush"
  std::size_t file = 0;  ///< index into Index::files
  int line = 0;          ///< line of the definition's opening brace
  /// Lambda passed directly to a `post(...)` call: it runs on the reactor
  /// loop later, so blocking-call-transitive treats it as an entry point.
  bool posted_lambda = false;
  std::vector<CallSite> calls;
  std::vector<LockSite> locks;
  std::vector<SourceFact> blocking;  ///< blocking-call-transitive inputs
  std::vector<SourceFact> taints;    ///< determinism-taint inputs
};

/// A metric-name literal use: first string argument of a registry call.
struct MetricUse {
  std::string name;
  std::size_t file = 0;
  int line = 0;
  bool prefix = false;  ///< literal is concatenated with `+` (dynamic name)
};

struct IndexedFile {
  std::string path;  ///< as given (diagnostics)
  std::string norm;  ///< forward-slash normalized (rule scoping)
  std::vector<Include> includes;
  /// line -> rule ids suppressed on that line, kept so graph rules honor
  /// inline allow() comments at the finding site.
  std::map<int, std::set<std::string>> allowed;
  std::size_t tokens = 0;
};

struct IndexStats {
  std::size_t files = 0;
  std::size_t tokens = 0;
  std::size_t functions = 0;
  std::size_t calls = 0;
  std::size_t includes = 0;
  std::size_t threads = 1;     ///< lexing pool size
  double lex_seconds = 0.0;    ///< wall time of the parallel lex phase
  double index_seconds = 0.0;  ///< wall time of the extraction phase
};

struct Index {
  std::vector<IndexedFile> files;
  std::vector<FunctionInfo> functions;
  /// base name -> function ids (the call-resolution table).
  std::map<std::string, std::vector<std::size_t>> by_base;
  /// class name -> base names of its member functions.
  std::map<std::string, std::set<std::string>> class_members;
  /// declared variable/member name -> class names seen in its type tokens
  /// (pruned against class_names by finalize_index).
  std::map<std::string, std::set<std::string>> var_types;
  std::set<std::string> class_names;
  /// name -> files declaring it with an unordered_* (or pointer-keyed map)
  /// type.  Iteration findings only fire in the declaring file or a file
  /// that transitively includes it, so same-name locals elsewhere stay quiet.
  std::map<std::string, std::set<std::size_t>> unordered_decls;
  /// (file, name) declared with an ordered/sequence container: shadows a
  /// same-name unordered member coming in from an included header.
  std::set<std::pair<std::size_t, std::string>> ordered_decls;
  /// file -> files transitively reachable through quoted #includes (self
  /// included); targets are resolved against indexed paths by suffix match.
  std::vector<std::set<std::size_t>> include_closure;
  std::vector<MetricUse> metrics;
  IndexStats stats;

  // Intermediate extraction state, consumed by finalize_index:
  /// declared name -> every ident seen in its type tokens (unpruned).
  std::map<std::string, std::set<std::string>> raw_var_types;
  /// (function id, iterated ident, line) from range-for statements; turned
  /// into determinism-taint facts when an unordered declaration of the
  /// ident is visible (same file, or through the include closure and not
  /// shadowed by a same-file ordered declaration).
  std::vector<std::tuple<std::size_t, std::string, int>> pending_iterations;
};

/// Extracts one already-scanned file into the index (single-threaded).
/// Exposed for fixture-level tests; build_index is the normal entry point.
void index_scanned(const std::string& path, const ScanResult& scanned,
                   Index* index);

/// Finalizes cross-file tables (by_base, class_members, var_types pruning).
/// Called once after every file is extracted.
void finalize_index(Index* index);

/// Pass 1: reads and lexes `files` in parallel on a ThreadPool of `threads`
/// workers (0 = hardware concurrency), extracts each into the index in
/// deterministic file order, and finalizes.  Unreadable files append
/// io-error findings.  When `per_file_options` is non-null the per-file
/// rules also run on each scanned file (one lex serves both passes) and
/// their findings are appended too.
[[nodiscard]] Index build_index(const std::vector<std::string>& files,
                                std::size_t threads,
                                std::vector<Finding>* findings,
                                const Options* per_file_options = nullptr);

/// Resolves a call site to candidate function ids: qualified suffix match
/// when the name has `::`, else base-name lookup narrowed by the receiver's
/// declared type (member calls) and by same-file candidates.  Deterministic
/// (ids ascending).  Exposed for tests.
[[nodiscard]] std::vector<std::size_t> resolve_call(const Index& index,
                                                    const FunctionInfo& caller,
                                                    const CallSite& call);

}  // namespace mlcr::lint
