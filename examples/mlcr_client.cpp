// Client CLI for the planning daemon (mlcrd): describes the system with the
// same flags as plan_cli, ships the request over TCP, prints the report.
//
//   ./mlcr_client --port 7070 --solution "ML(opt-scale)" --deadline-ms 500
//   ./mlcr_client --port 7070 --codec binary --check-local
//   ./mlcr_client --port 7070 --validate --runs 100 --seed 24141
//   ./mlcr_client --port 7070 --validate --backend des --check-local
//   ./mlcr_client --port 7070 --ping
//   ./mlcr_client --port 7070 --metrics
//
// --check-local re-plans (or, with --validate, re-validates) the same
// request in-process and fails (exit 2) unless the daemon's report is
// field-for-field identical — the tier-1 smoke test uses this to pin the
// serving layer to the sweep engine.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "ctrl/replanner.h"
#include "model/system.h"
#include "net/client.h"
#include "net/json.h"
#include "net/protocol.h"
#include "sim/trace_io.h"
#include "svc/sweep_engine.h"
#include "svc/system_config_builder.h"

namespace {

using namespace mlcr;

std::vector<double> parse_list(const std::string& text) {
  std::vector<double> values;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string item =
        text.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!item.empty()) values.push_back(std::atof(item.c_str()));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return values;
}

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 7070;
  int timeout_ms = 60000;
  net::Codec codec = net::Codec::kJson;
  std::string solution = "ML(opt-scale)";
  long deadline_ms = 0;
  std::string label;
  bool ping = false;
  bool metrics = false;
  bool check_local = false;
  bool validate = false;
  // Control plane: subscribe to pushed re-plans / ship a trace batch.
  bool subscribe = false;
  int events = 1;
  std::string ingest_file;
  double observed_seconds = 0.0;
  double observed_scale = 0.0;
  // Monte-Carlo knobs for --validate.
  int runs = 100;
  unsigned long long seed = 0x5eed;
  svc::SimBackend backend = svc::SimBackend::kCoarse;
  // System flags, plan_cli defaults (the paper's Figure 5 headline case).
  double te_core_days = 3e6;
  double kappa = 0.46;
  double n_star = 1e6;
  std::vector<double> rates{16, 12, 8, 4};
  std::vector<double> costs{0.9, 2.5, 3.9, 5.5};
  double pfs_slope = 0.0212;
  double allocation = 60.0;
};

void usage() {
  std::puts(
      "usage: mlcr_client [--host H] [--port P] [--timeout-ms MS]\n"
      "                   [--codec json|binary]\n"
      "                   [--solution NAME] [--deadline-ms MS] [--label L]\n"
      "                   [--te CORE_DAYS] [--kappa K] [--nstar N]\n"
      "                   [--rates r1,r2,...] [--costs c1,c2,...]\n"
      "                   [--pfs-slope S] [--allocation A]\n"
      "                   [--validate] [--runs N] [--seed S]\n"
      "                   [--backend coarse|des]\n"
      "                   [--subscribe] [--events N] [--ingest FILE]\n"
      "                   [--observed-seconds S] [--observed-scale N]\n"
      "                   [--ping] [--metrics] [--check-local]\n"
      "Plans one request against a running mlcrd; --validate additionally\n"
      "fault-injects the plan N times and prints the plan-vs-simulated\n"
      "error per time portion.  --backend picks the validation engine:\n"
      "'coarse' (default, the paper's closed-form kernel) or 'des' (the\n"
      "rank-level checkpoint-replay simulator; slower, higher fidelity).\n"
      "--check-local verifies the daemon's report is identical to an\n"
      "in-process solve (exit 2 on mismatch).\n"
      "--codec picks the wire framing (reports are bit-identical either\n"
      "way).  deadline_ms < 0 is already expired (load-shed probe).\n"
      "--subscribe waits for pushed re-plans on this request's stream and\n"
      "exits after N events (--events, default 1; 0 = wait for the drain\n"
      "notice; exit 4 if the daemon drains before N arrived).  --ingest\n"
      "ships a trace_io text file as one observation batch; the window end\n"
      "defaults to the last event unless --observed-seconds is given.");
}

bool parse(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") return false;
    if (flag == "--ping") {
      options->ping = true;
    } else if (flag == "--metrics") {
      options->metrics = true;
    } else if (flag == "--check-local") {
      options->check_local = true;
    } else if (flag == "--validate") {
      options->validate = true;
    } else if (flag == "--subscribe") {
      options->subscribe = true;
    } else {
      const char* value = i + 1 < argc ? argv[++i] : nullptr;
      if (value == nullptr) return false;
      if (flag == "--host") options->host = value;
      else if (flag == "--port")
        options->port = static_cast<std::uint16_t>(std::atoi(value));
      else if (flag == "--timeout-ms") options->timeout_ms = std::atoi(value);
      else if (flag == "--codec") {
        if (!net::codec_from_string(value, &options->codec)) return false;
      }
      else if (flag == "--solution") options->solution = value;
      else if (flag == "--deadline-ms") options->deadline_ms = std::atol(value);
      else if (flag == "--label") options->label = value;
      else if (flag == "--runs") options->runs = std::atoi(value);
      else if (flag == "--seed")
        options->seed = std::strtoull(value, nullptr, 10);
      else if (flag == "--backend") {
        const auto backend = svc::backend_from_string(value);
        if (!backend.has_value()) {
          std::fprintf(stderr,
                       "mlcr_client: unknown backend \"%s\" "
                       "(accepted: coarse, des)\n",
                       value);
          return false;
        }
        options->backend = *backend;
      }
      else if (flag == "--te") options->te_core_days = std::atof(value);
      else if (flag == "--kappa") options->kappa = std::atof(value);
      else if (flag == "--nstar") options->n_star = std::atof(value);
      else if (flag == "--rates") options->rates = parse_list(value);
      else if (flag == "--costs") options->costs = parse_list(value);
      else if (flag == "--pfs-slope") options->pfs_slope = std::atof(value);
      else if (flag == "--allocation") options->allocation = std::atof(value);
      else if (flag == "--events") options->events = std::atoi(value);
      else if (flag == "--ingest") options->ingest_file = value;
      else if (flag == "--observed-seconds")
        options->observed_seconds = std::atof(value);
      else if (flag == "--observed-scale")
        options->observed_scale = std::atof(value);
      else return false;
    }
  }
  return options->rates.size() == options->costs.size() &&
         !options->rates.empty();
}

model::SystemConfig build_system(const Options& options) {
  svc::SystemConfigBuilder builder;
  builder.te_core_days(options.te_core_days)
      .quadratic_speedup(options.kappa, options.n_star)
      .failure_rates_per_day(options.rates, options.n_star)
      .allocation_seconds(options.allocation);
  for (std::size_t i = 0; i < options.costs.size(); ++i) {
    const bool top = i + 1 == options.costs.size();
    model::Overhead checkpoint =
        top && options.pfs_slope > 0.0
            ? model::Overhead::linear(options.costs[i], options.pfs_slope)
            : model::Overhead::constant(options.costs[i]);
    builder.add_level(checkpoint, model::Overhead::constant(options.costs[i]));
  }
  return builder.build();
}

void print_report(const svc::PlanReport& report) {
  std::printf("solution:  %s\nstatus:    %s\n",
              opt::to_string(report.solution).c_str(),
              opt::to_string(report.status).c_str());
  if (!report.message.empty()) {
    std::printf("message:   %s\n", report.message.c_str());
  }
  std::printf("key:       %zu bytes\ncache_hit: %s\n", report.key.size(),
              report.cache_hit ? "true" : "false");
  if (!report.ok()) return;
  std::string intervals;
  for (std::size_t i = 0; i < report.plan().intervals.size(); ++i) {
    if (!report.planned.level_enabled[i]) continue;
    if (!intervals.empty()) intervals += " ";
    char count[32];
    std::snprintf(count, sizeof(count), "%.0f", report.plan().intervals[i]);
    intervals += count;
  }
  std::printf("N:         %.0f\nx_i:       %s\nE(Tw):     %.6e s\n",
              report.plan().scale, intervals.c_str(), report.wallclock());
}

void print_sim_report(const svc::SimReport& report) {
  print_report(report.plan);
  std::printf("backend:   %s\nruns:      %d (%ld incomplete)\n",
              svc::to_string(report.backend), report.runs,
              report.incomplete_runs);
  if (!report.ok()) {
    std::printf("validate:  %s\nmessage:   %s\n",
                opt::to_string(report.status).c_str(),
                report.message.c_str());
    return;
  }
  const model::TimePortions& analytic =
      report.plan.planned.optimization.portions;
  std::printf("portion      analytic       simulated      error\n");
  const struct {
    const char* name;
    double analytic;
    double simulated;
    double error;
  } rows[] = {
      {"productive", analytic.productive, report.productive.mean,
       report.portion_errors.productive},
      {"checkpoint", analytic.checkpoint, report.checkpoint.mean,
       report.portion_errors.checkpoint},
      {"restart", analytic.restart, report.restart.mean,
       report.portion_errors.restart},
      {"rollback", analytic.rollback, report.rollback.mean,
       report.portion_errors.rollback},
      {"wallclock", report.plan.wallclock(), report.wallclock.mean,
       report.wallclock_error},
  };
  for (const auto& row : rows) {
    std::printf("%-12s %14.6e %14.6e %+7.2f%%\n", row.name, row.analytic,
                row.simulated, row.error * 100.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse(argc, argv, &options)) {
    usage();
    return 1;
  }

  try {
    net::Client client(
        {.host = options.host, .port = options.port,
         .timeout_ms = options.timeout_ms, .codec = options.codec});

    if (options.ping) {
      const bool alive = client.ping();
      std::printf("%s\n", alive ? "pong" : "no pong");
      return alive ? 0 : 1;
    }
    if (options.metrics) {
      std::fputs(client.metrics().c_str(), stdout);
      return 0;
    }

    opt::Solution solution;
    if (!net::solution_from_string(options.solution, &solution)) {
      std::fprintf(stderr, "mlcr_client: unknown solution \"%s\"\n",
                   options.solution.c_str());
      return 1;
    }

    if (options.validate) {
      svc::SimRequest request{build_system(options), solution,        {}, {},
                              options.backend,       options.label};
      request.monte_carlo.runs = options.runs;
      request.monte_carlo.seed = options.seed;
      const net::SimResponse response =
          client.validate(request, options.deadline_ms);
      if (!response.accepted) {
        std::printf("rejected:  %s\nmessage:   %s\n",
                    net::to_string(response.reject).c_str(),
                    response.message.c_str());
        return 3;
      }
      print_sim_report(response.report);

      if (options.check_local) {
        svc::SweepEngine engine({.threads = 1});
        const svc::SimReport local = *engine.validate_one(request);
        if (net::deterministic_fingerprint(response.report) !=
            net::deterministic_fingerprint(local)) {
          std::fprintf(stderr,
                       "mlcr_client: daemon report differs from in-process "
                       "validate_one\n  daemon: %s\n  local:  %s\n",
                       net::deterministic_fingerprint(response.report).c_str(),
                       net::deterministic_fingerprint(local).c_str());
          return 2;
        }
        std::printf("check-local: identical\n");
      }
      return 0;
    }

    svc::PlanRequest request{build_system(options), solution, {},
                             options.label};

    if (!options.ingest_file.empty()) {
      std::ifstream in(options.ingest_file);
      if (!in) {
        std::fprintf(stderr, "mlcr_client: cannot open trace file \"%s\"\n",
                     options.ingest_file.c_str());
        return 1;
      }
      ctrl::IngestRequest batch(std::move(request));
      batch.trace = sim::read_trace(in, batch.base.config.levels());
      batch.observed_seconds = options.observed_seconds;
      batch.observed_scale = options.observed_scale;
      const net::IngestResponse response = client.ingest(batch);
      if (!response.accepted) {
        std::printf("rejected:  %s\nmessage:   %s\n",
                    net::to_string(response.reject).c_str(),
                    response.message.c_str());
        return 3;
      }
      const ctrl::IngestReport& report = response.report;
      std::printf("ingested:  %llu events (stream total %llu)\n",
                  static_cast<unsigned long long>(report.batch_events),
                  static_cast<unsigned long long>(report.total_events));
      for (std::size_t i = 0; i < report.levels.size(); ++i) {
        const ctrl::LevelEstimate& level = report.levels[i];
        std::printf(
            "level %zu:   posterior %.3e /s (baseline %.3e /s)%s%s\n", i + 1,
            level.rate_posterior, level.baseline_rate,
            level.cusum_alarm ? " cusum-alarm" : "",
            level.drift ? " DRIFT" : "");
      }
      std::printf("drift:     %s\nreplanned: %s\nepoch:     %llu\n",
                  report.drift_detected ? "true" : "false",
                  report.replanned ? "true" : "false",
                  static_cast<unsigned long long>(report.plan_epoch));
      return 0;
    }

    if (options.subscribe) {
      const net::SubscribeResponse ack = client.subscribe(request);
      if (!ack.accepted) {
        std::printf("rejected:  %s\nmessage:   %s\n",
                    net::to_string(ack.reject).c_str(), ack.message.c_str());
        return 3;
      }
      std::printf("subscribed epoch=%llu\n",
                  static_cast<unsigned long long>(ack.plan_epoch));
      std::fflush(stdout);
      int received = 0;
      while (true) {
        const std::optional<net::PushEvent> event =
            client.poll_event(options.timeout_ms);
        if (!event.has_value()) continue;  // idle stream; keep waiting
        if (event->kind == net::PushEvent::Kind::kDrained) {
          std::printf("drained\n");
          return options.events == 0 ? 0 : 4;
        }
        ++received;
        std::printf("pushed plan_epoch=%llu\n",
                    static_cast<unsigned long long>(event->plan_epoch));
        print_report(event->report);
        std::fflush(stdout);
        if (options.events > 0 && received >= options.events) return 0;
      }
    }

    const net::Response response = client.plan(request, options.deadline_ms);
    if (!response.accepted) {
      std::printf("rejected:  %s\nmessage:   %s\n",
                  net::to_string(response.reject).c_str(),
                  response.message.c_str());
      return 3;
    }
    print_report(response.report);

    if (options.check_local) {
      svc::SweepEngine engine({.threads = 1});
      const svc::PlanReport local = *engine.plan_one(request);
      if (net::deterministic_fingerprint(response.report) !=
          net::deterministic_fingerprint(local)) {
        std::fprintf(stderr,
                     "mlcr_client: daemon report differs from in-process "
                     "plan_one\n  daemon: %s\n  local:  %s\n",
                     net::deterministic_fingerprint(response.report).c_str(),
                     net::deterministic_fingerprint(local).c_str());
        return 2;
      }
      std::printf("check-local: identical\n");
    }
    return 0;
  } catch (const common::Error& error) {
    std::fprintf(stderr, "mlcr_client: %s\n", error.what());
    return 1;
  }
}
