// Capacity planner: a what-if tool for system operators.  For a set of
// workload sizes and failure environments it prints the recommended
// execution scale, the per-level checkpoint intervals, and the predicted
// wall-clock and efficiency — the decisions the paper's optimizer automates.
//
// Built on the batch-planning API: the whole workload x failure-case grid is
// issued as one svc::SweepEngine::plan_sweep, which plans the requests in
// parallel and returns the reports in request order.  Rows that fail to
// converge are no longer dropped — the status column says what happened.
//
//   ./capacity_planner
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "common/units.h"
#include "exp/cases.h"
#include "model/wallclock.h"
#include "svc/sweep_engine.h"

int main() {
  using namespace mlcr;

  svc::SweepEngine engine;

  std::vector<svc::PlanRequest> requests;
  for (const double workload_core_days : {1e6, 3e6, 1e7}) {
    for (const auto& failure_case : exp::paper_failure_cases()) {
      requests.push_back(
          {exp::make_fti_system(workload_core_days, failure_case),
           opt::Solution::kMultilevelOptScale,
           {},
           common::strf("%.0fm core-days|%s", workload_core_days / 1e6,
                        failure_case.name.c_str())});
    }
  }
  const auto reports = engine.plan_sweep(requests);

  common::Table table({"workload", "failure case", "status", "use N", "of 1m",
                       "x1", "x2", "x3", "x4", "wall-clock", "efficiency"});
  std::size_t index = 0;
  for (const double workload_core_days : {1e6, 3e6, 1e7}) {
    for (const auto& failure_case : exp::paper_failure_cases()) {
      const svc::PlanReport& report = reports[index++];
      const std::string workload =
          common::strf("%.0fm core-days", workload_core_days / 1e6);
      if (!report.ok()) {
        table.add_row({workload, failure_case.name,
                       opt::to_string(report.status), "-", "-", "-", "-", "-",
                       "-", "-", "-"});
        std::fprintf(stderr, "  [%s/%s] %s\n", workload.c_str(),
                     failure_case.name.c_str(), report.message.c_str());
        continue;
      }
      const auto& plan = report.plan();
      table.add_row(
          {workload, failure_case.name, opt::to_string(report.status),
           common::format_count(plan.scale),
           common::strf("%.0f%%", 100.0 * plan.scale / 1e6),
           common::strf("%.0f", plan.intervals[0]),
           common::strf("%.0f", plan.intervals[1]),
           common::strf("%.0f", plan.intervals[2]),
           common::strf("%.0f", plan.intervals[3]),
           common::format_duration(report.wallclock()),
           common::strf("%.3f",
                        model::efficiency(requests[index - 1].config.te(),
                                          report.wallclock(), plan.scale))});
    }
  }
  table.print();
  std::printf(
      "\nPlanned %zu scenarios on %zu threads.\n"
      "Reading guide: heavier failure environments shrink the recommended\n"
      "scale (freeing cores improves availability), and larger workloads\n"
      "push it back up because productive time dominates.\n",
      reports.size(), engine.threads());
  return 0;
}
