// Capacity planner: a what-if tool for system operators.  For a set of
// workload sizes and failure environments it prints the recommended
// execution scale, the per-level checkpoint intervals, and the predicted
// wall-clock and efficiency — the decisions the paper's optimizer automates.
//
//   ./capacity_planner
#include <cstdio>

#include "common/table.h"
#include "common/units.h"
#include "exp/cases.h"
#include "model/wallclock.h"
#include "opt/planner.h"

int main() {
  using namespace mlcr;

  common::Table table({"workload", "failure case", "use N", "of 1m", "x1",
                       "x2", "x3", "x4", "wall-clock", "efficiency"});

  for (const double workload_core_days : {1e6, 3e6, 1e7}) {
    for (const auto& failure_case : exp::paper_failure_cases()) {
      const auto system = exp::make_fti_system(workload_core_days,
                                               failure_case);
      const auto planned =
          opt::plan(opt::Solution::kMultilevelOptScale, system);
      if (!planned.optimization.converged) continue;
      const auto& plan = planned.full_plan;
      table.add_row(
          {common::strf("%.0fm core-days", workload_core_days / 1e6),
           failure_case.name, common::format_count(plan.scale),
           common::strf("%.0f%%", 100.0 * plan.scale / 1e6),
           common::strf("%.0f", plan.intervals[0]),
           common::strf("%.0f", plan.intervals[1]),
           common::strf("%.0f", plan.intervals[2]),
           common::strf("%.0f", plan.intervals[3]),
           common::format_duration(planned.optimization.wallclock),
           common::strf("%.3f",
                        model::efficiency(system.te(),
                                          planned.optimization.wallclock,
                                          plan.scale))});
    }
  }
  table.print();
  std::printf(
      "\nReading guide: heavier failure environments shrink the recommended\n"
      "scale (freeing cores improves availability), and larger workloads\n"
      "push it back up because productive time dominates.\n");
  return 0;
}
