// Capacity planner: a what-if tool for system operators.  For a set of
// workload sizes and failure environments it prints the recommended
// execution scale, the per-level checkpoint intervals, and the predicted
// wall-clock and efficiency — the decisions the paper's optimizer automates.
//
// Built on the batch-planning API: the whole workload x failure-case grid is
// issued as one svc::SweepEngine::plan_sweep, which plans the requests in
// parallel and returns the reports in request order.  Rows that fail to
// converge are no longer dropped — the status column says what happened.
//
//   ./capacity_planner [--metrics[=file.jsonl]]
//
// --metrics appends the engine's instrumentation (cache traffic, solver
// status taxonomy, solve-time histograms) as a table, or writes it as JSONL
// when given a file path.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/table.h"
#include "common/units.h"
#include "exp/cases.h"
#include "model/wallclock.h"
#include "svc/sweep_engine.h"

int main(int argc, char** argv) {
  using namespace mlcr;

  bool metrics = false;
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--metrics") {
      metrics = true;
    } else if (flag.rfind("--metrics=", 0) == 0) {
      metrics = true;
      metrics_path = flag.substr(std::strlen("--metrics="));
    } else {
      std::fprintf(stderr,
                   "usage: capacity_planner [--metrics[=file.jsonl]]\n");
      return 1;
    }
  }

  svc::SweepEngine engine;

  std::vector<svc::PlanRequest> requests;
  for (const double workload_core_days : {1e6, 3e6, 1e7}) {
    for (const auto& failure_case : exp::paper_failure_cases()) {
      requests.push_back(
          {exp::make_fti_system(workload_core_days, failure_case),
           opt::Solution::kMultilevelOptScale,
           {},
           common::strf("%.0fm core-days|%s", workload_core_days / 1e6,
                        failure_case.name.c_str())});
    }
  }
  const auto reports = engine.plan_sweep(requests);

  common::Table table({"workload", "failure case", "status", "use N", "of 1m",
                       "x1", "x2", "x3", "x4", "wall-clock", "efficiency"});
  std::size_t index = 0;
  for (const double workload_core_days : {1e6, 3e6, 1e7}) {
    for (const auto& failure_case : exp::paper_failure_cases()) {
      const svc::PlanReport& report = reports[index++];
      const std::string workload =
          common::strf("%.0fm core-days", workload_core_days / 1e6);
      if (!report.ok()) {
        // Render the reason in the row itself (truncated to keep the table
        // readable); the full message still goes to stderr.  A non-ok run
        // has no trustworthy plan or portions, so every numeric cell stays
        // blank rather than echoing a stale iterate.
        std::string reason = report.message;
        if (reason.size() > 44) reason = reason.substr(0, 41) + "...";
        table.add_row({workload, failure_case.name,
                       opt::to_string(report.status), "-", "-", "-", "-", "-",
                       "-", reason.empty() ? "-" : reason, "-"});
        std::fprintf(stderr, "  [%s/%s] %s: %s\n", workload.c_str(),
                     failure_case.name.c_str(),
                     opt::to_string(report.status).c_str(),
                     report.message.c_str());
        continue;
      }
      const auto& plan = report.plan();
      table.add_row(
          {workload, failure_case.name, opt::to_string(report.status),
           common::format_count(plan.scale),
           common::strf("%.0f%%", 100.0 * plan.scale / 1e6),
           common::strf("%.0f", plan.intervals[0]),
           common::strf("%.0f", plan.intervals[1]),
           common::strf("%.0f", plan.intervals[2]),
           common::strf("%.0f", plan.intervals[3]),
           common::format_duration(report.wallclock()),
           common::strf("%.3f",
                        model::efficiency(requests[index - 1].config.te(),
                                          report.wallclock(), plan.scale))});
    }
  }
  table.print();
  std::printf(
      "\nPlanned %zu scenarios on %zu threads.\n"
      "Reading guide: heavier failure environments shrink the recommended\n"
      "scale (freeing cores improves availability), and larger workloads\n"
      "push it back up because productive time dominates.\n",
      reports.size(), engine.threads());

  if (metrics) {
    if (metrics_path.empty()) {
      std::printf("\n-- solver metrics --\n");
      engine.metrics().print();
    } else if (!engine.metrics().write_jsonl_file(metrics_path)) {
      return 1;
    }
  }
  return 0;
}
