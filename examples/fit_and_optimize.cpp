// The full field workflow of the paper, end to end:
//   1. characterize checkpoint costs on the (virtual) cluster at several
//      scales — the Table II measurement;
//   2. least-squares fit the Formula (19) overhead coefficients;
//   3. measure the application's speedup curve and fit the Formula (12)
//      quadratic;
//   4. feed both fits to Algorithm 1 and print the optimized plan for an
//      exascale target machine.
//
//   ./fit_and_optimize
#include <cstdio>

#include "apps/heat.h"
#include "common/table.h"
#include "common/units.h"
#include "exp/cases.h"
#include "model/system.h"
#include "num/least_squares.h"
#include "opt/planner.h"

int main() {
  using namespace mlcr;

  // --- 1. characterize checkpoint overheads (Table II style) ---
  std::printf("characterizing FTI levels on the virtual cluster...\n");
  std::vector<double> scales{128, 256, 512, 1024};
  std::vector<double> cost_by_level[4];
  for (const double ranks : scales) {
    const auto costs = exp::measure_fti_costs(static_cast<int>(ranks));
    for (int level = 0; level < 4; ++level) {
      cost_by_level[level].push_back(costs[static_cast<std::size_t>(level)]);
    }
  }

  // --- 2. fit eps_i + alpha_i * N per level ---
  std::vector<model::LevelOverheads> levels(4);
  const std::vector<double> zero(scales.size(), 0.0);
  for (int level = 0; level < 4; ++level) {
    // Try the scale-dependent fit; fall back to constant when the slope is
    // statistically irrelevant (levels 1-3).
    const auto linear = num::fit_affine_in(scales, cost_by_level[level]);
    const auto constant = num::fit_affine_in(zero, cost_by_level[level]);
    const bool scale_matters =
        linear.ok && linear.residual_sum_squares <
                         0.5 * constant.residual_sum_squares;
    const auto& fit = scale_matters ? linear : constant;
    levels[static_cast<std::size_t>(level)].checkpoint =
        scale_matters
            ? model::Overhead::linear(fit.coefficients[0], fit.coefficients[1])
            : model::Overhead::constant(fit.coefficients[0]);
    levels[static_cast<std::size_t>(level)].recovery =
        model::Overhead::constant(fit.coefficients[0]);
    std::printf("  level %d: C(N) = %.3f %s\n", level + 1,
                fit.coefficients[0],
                scale_matters
                    ? common::strf("+ %.4f * N", fit.coefficients[1]).c_str()
                    : "(constant)");
  }

  // --- 3. measure and fit the application speedup ---
  std::printf("measuring Heat Distribution speedups...\n");
  apps::HeatConfig heat;
  heat.rows = 1026;
  heat.cols = 1024;
  heat.iterations = 10;
  heat.network.latency = 4.5e-6;
  const double single = apps::heat_single_core_time(heat);
  std::vector<double> n_samples, g_samples;
  for (int ranks : {16, 32, 64, 128, 192, 256}) {
    const double wallclock = apps::run_heat(heat, ranks).wallclock;
    n_samples.push_back(ranks);
    g_samples.push_back(single / wallclock);
    std::printf("  %4d ranks: speedup %.1f\n", ranks, g_samples.back());
  }
  // Fit only the rising range through the peak, as the paper prescribes
  // for saturating curves (Figure 2(b) treatment).
  std::size_t peak = 0;
  for (std::size_t i = 1; i < g_samples.size(); ++i) {
    if (g_samples[i] > g_samples[peak]) peak = i;
  }
  n_samples.resize(peak + 1);
  g_samples.resize(peak + 1);
  const auto speedup_fit =
      num::fit_quadratic_through_origin(n_samples, g_samples);
  if (!speedup_fit.ok || speedup_fit.coefficients[1] >= 0.0) {
    std::printf("speedup fit failed; aborting\n");
    return 1;
  }
  auto curve = model::QuadraticSpeedup::from_coefficients(
      speedup_fit.coefficients[0], speedup_fit.coefficients[1]);
  std::printf("  fitted: kappa = %.3f, N_sym = %s (R^2 = %.4f)\n",
              curve.kappa(), common::format_count(curve.n_symmetry()).c_str(),
              speedup_fit.r_squared);

  // --- 4. optimize for an exascale target ---
  const double n_star = std::min(curve.n_symmetry(), 1e6);
  model::FailureRates rates({8, 6, 4, 2}, n_star);
  model::SystemConfig system(
      common::core_days_to_seconds(1000.0),
      std::make_unique<model::QuadraticSpeedup>(curve), std::move(levels),
      std::move(rates), /*allocation=*/60.0, /*max_scale=*/n_star);
  const auto planned = opt::plan(opt::Solution::kMultilevelOptScale, system);
  std::printf("\noptimized plan for 1,000 core-days on this machine:\n");
  std::printf("  N* = %s (bound %s), wall-clock %s\n",
              common::format_count(planned.full_plan.scale).c_str(),
              common::format_count(n_star).c_str(),
              common::format_duration(planned.optimization.wallclock).c_str());
  for (std::size_t level = 0; level < 4; ++level) {
    std::printf("  x%zu = %.0f\n", level + 1,
                planned.full_plan.intervals[level]);
  }
  return 0;
}
