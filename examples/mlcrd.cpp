// The planning daemon: serves PlanRequests over TCP (JSON lines or the
// length-prefixed binary codec, negotiated per connection — see DESIGN.md
// §12) from a reactor-per-core sharded event loop with bounded admission,
// singleflight coalescing, per-request deadlines, and graceful drain on
// SIGINT/SIGTERM.
//
//   ./mlcrd --port 7070 --shards 4 --queue 256 --deadline-ms 500
//
// --port 0 binds an ephemeral port; the actual port is printed on the
// "listening" line, which scripts parse.  On shutdown the daemon finishes
// every admitted solve, flushes metrics (stdout table, or JSONL with
// --metrics-out), and exits 0.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/error.h"
#include "common/shutdown.h"
#include "net/server.h"

namespace {

using namespace mlcr;

struct Options {
  net::ServerOptions server;
  std::string metrics_out;  ///< empty: pretty table on stdout at exit
};

void usage() {
  std::puts(
      "usage: mlcrd [--port P] [--queue N] [--deadline-ms MS]\n"
      "             [--shards N] [--solver-threads N] [--cache N]\n"
      "             [--drift-ratio R] [--cusum-threshold H]\n"
      "             [--cusum-shift RHO] [--min-events N]\n"
      "             [--metrics-out file.jsonl]\n"
      "Serves PlanRequests on 127.0.0.1:P (port 0 = ephemeral; the bound\n"
      "port is printed at startup).  Each connection speaks JSON lines or\n"
      "the binary codec, negotiated by its first byte.\n"
      "--shards sets the reactor event-loop threads (0 = all cores);\n"
      "--queue bounds the admission queue (full -> rejected: overloaded);\n"
      "--deadline-ms is the default per-request deadline (0 = none).\n"
      "--drift-ratio / --cusum-threshold / --cusum-shift / --min-events\n"
      "tune the online re-planning trigger (DESIGN.md section 13): a pushed\n"
      "re-plan fires when a level's posterior rate leaves\n"
      "[baseline/R, baseline*R] or its CUSUM crosses H.\n"
      "SIGINT/SIGTERM drain gracefully: in-flight solves finish, metrics\n"
      "are flushed, then the daemon exits 0.");
}

bool parse(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") return false;
    const char* value = i + 1 < argc ? argv[++i] : nullptr;
    if (value == nullptr) return false;
    if (flag == "--port") {
      options->server.port = static_cast<std::uint16_t>(std::atoi(value));
    } else if (flag == "--queue") {
      options->server.queue_capacity =
          static_cast<std::size_t>(std::atol(value));
    } else if (flag == "--deadline-ms") {
      options->server.default_deadline_ms = std::atol(value);
    } else if (flag == "--shards") {
      options->server.shards = static_cast<std::size_t>(std::atol(value));
    } else if (flag == "--solver-threads") {
      options->server.solver_threads =
          static_cast<std::size_t>(std::atol(value));
    } else if (flag == "--cache") {
      options->server.cache_capacity =
          static_cast<std::size_t>(std::atol(value));
    } else if (flag == "--drift-ratio") {
      options->server.replanner.drift_ratio = std::atof(value);
    } else if (flag == "--cusum-threshold") {
      options->server.replanner.cusum_threshold = std::atof(value);
    } else if (flag == "--cusum-shift") {
      options->server.replanner.cusum_shift = std::atof(value);
    } else if (flag == "--min-events") {
      options->server.replanner.min_events =
          static_cast<std::size_t>(std::atol(value));
    } else if (flag == "--metrics-out") {
      options->metrics_out = value;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse(argc, argv, &options)) {
    usage();
    return 1;
  }

  common::install_shutdown_handler();
  net::Server server(options.server);
  try {
    server.start();
  } catch (const common::Error& error) {
    std::fprintf(stderr, "mlcrd: %s\n", error.what());
    return 1;
  }

  // Scripts parse this line for the (possibly ephemeral) port.
  std::printf("mlcrd: listening on 127.0.0.1:%u (queue %zu, deadline %ld ms, "
              "shards %zu, solvers %zu)\n",
              static_cast<unsigned>(server.port()),
              options.server.queue_capacity,
              options.server.default_deadline_ms, options.server.shards,
              options.server.solver_threads);
  std::fflush(stdout);

  server.serve_until_shutdown();

  const int signal = common::shutdown_signal();
  std::printf("mlcrd: drained%s%s\n", signal != 0 ? " on signal " : "",
              signal != 0 ? std::to_string(signal).c_str() : "");

  if (options.metrics_out.empty()) {
    server.metrics().print();
  } else {
    std::string jsonl = server.metrics().to_jsonl();
    jsonl += server.engine().metrics().to_jsonl();
    jsonl += server.replanner().metrics().to_jsonl();
    std::FILE* file = std::fopen(options.metrics_out.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "mlcrd: cannot write %s\n",
                   options.metrics_out.c_str());
      return 1;
    }
    std::fwrite(jsonl.data(), 1, jsonl.size(), file);
    std::fclose(file);
  }
  return 0;
}
