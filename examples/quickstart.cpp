// Quickstart: describe an HPC system, co-optimize the checkpoint intervals
// and the execution scale (the paper's ML(opt-scale) solution), and verify
// the plan by Monte-Carlo simulation.
//
//   ./quickstart
#include <cstdio>

#include "common/table.h"
#include "common/units.h"
#include "model/system.h"
#include "opt/planner.h"
#include "sim/monte_carlo.h"

int main() {
  using namespace mlcr;

  // 1. Describe the application and machine.
  //    - 3 million core-days of work,
  //    - quadratic speedup peaking at 1M cores (kappa = 0.46),
  //    - four FTI-style checkpoint levels (local / partner / RS / PFS),
  //    - failure rates 8-6-4-2 events/day at the 1M-core baseline.
  std::vector<model::LevelOverheads> levels{
      {model::Overhead::constant(0.9), model::Overhead::constant(0.9)},
      {model::Overhead::constant(2.5), model::Overhead::constant(2.5)},
      {model::Overhead::constant(3.9), model::Overhead::constant(3.9)},
      {model::Overhead::linear(5.5, 0.0212), model::Overhead::constant(5.5)}};
  model::FailureRates rates({8, 6, 4, 2}, /*baseline_scale=*/1e6);
  model::SystemConfig system(common::core_days_to_seconds(3e6),
                             std::make_unique<model::QuadraticSpeedup>(0.46,
                                                                       1e6),
                             std::move(levels), std::move(rates),
                             /*allocation=*/60.0);

  // 2. Optimize: intervals x_1..x_4 and the scale N, simultaneously.
  const auto planned = opt::plan(opt::Solution::kMultilevelOptScale, system);
  const auto& result = planned.optimization;
  std::printf("converged in %d outer iterations\n", result.outer_iterations);
  std::printf("optimal scale N* = %s of 1m cores\n",
              common::format_count(planned.full_plan.scale).c_str());
  for (std::size_t level = 0; level < 4; ++level) {
    std::printf("level %zu: %7.0f checkpoint intervals (every %s of work)\n",
                level + 1, planned.full_plan.intervals[level],
                common::format_duration(
                    system.productive_time(planned.full_plan.scale) /
                    planned.full_plan.intervals[level])
                    .c_str());
  }
  std::printf("predicted wall-clock: %s\n",
              common::format_duration(result.wallclock).c_str());

  // 3. Verify by simulation (100 runs with random failures).
  const auto schedule = sim::Schedule::from_plan(
      system, planned.full_plan, planned.level_enabled);
  const auto simulated = sim::monte_carlo(system, schedule);
  std::printf("simulated wall-clock: %s (+-%s over %llu runs)\n",
              common::format_duration(simulated.wallclock.mean()).c_str(),
              common::format_duration(
                  simulated.wallclock.ci95_half_width())
                  .c_str(),
              static_cast<unsigned long long>(simulated.wallclock.count()));

  // 4. Compare with classic Young's formula at full scale.
  const auto young = opt::plan(opt::Solution::kSingleLevelOriScale, system);
  const auto young_schedule =
      sim::Schedule::from_plan(system, young.full_plan, young.level_enabled);
  const auto young_sim = sim::monte_carlo(system, young_schedule);
  std::printf(
      "classic Young at 1m cores: %s — the optimized plan is %.0f%% "
      "faster\n",
      common::format_duration(young_sim.wallclock.mean()).c_str(),
      100.0 * (1.0 - simulated.wallclock.mean() / young_sim.wallclock.mean()));
  return 0;
}
