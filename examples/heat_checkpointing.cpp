// Runs the real Heat Distribution solver on the virtual cluster with the
// FTI-like multilevel checkpoint library, kills nodes mid-run, and shows
// the application recovering through partner-copy / Reed-Solomon paths
// while producing the exact same answer as an uninterrupted run.
//
//   ./heat_checkpointing
#include <cstdio>

#include "apps/heat.h"
#include "apps/heat_ckpt.h"
#include "common/units.h"
#include "exp/cases.h"

int main() {
  using namespace mlcr;

  apps::HeatCkptConfig config;
  config.heat.rows = 258;
  config.heat.cols = 256;
  config.heat.iterations = 80;
  config.heat.flops_per_cell = 4e5;  // heavy per-cell work
  config.cluster = exp::fusion_cluster(/*ranks=*/64);
  config.fti = exp::fusion_fti();
  config.interval_iterations = {5, 10, 20, 40};
  config.allocation = 15.0;
  config.logical_checkpoint_bytes = exp::fusion_payload_bytes();

  // The clean run: reference answer and duration.
  const auto clean = apps::run_heat_checkpointed(config);
  std::printf("clean run: %s, %d checkpoint rounds (%.1fs writing)\n",
              common::format_duration(clean.wallclock).c_str(),
              clean.checkpoints_taken, clean.checkpoint_time);

  // Now with three injected failures: a software fault, a node crash
  // (partner-copy recovery) and an adjacent pair crash (Reed-Solomon).
  config.failures = {
      {0.25 * clean.wallclock, /*node=*/2, /*level=*/1},
      {0.50 * clean.wallclock, /*node=*/5, /*level=*/2},
      {0.75 * clean.wallclock, /*node=*/3, /*level=*/3},
  };
  config.failures.push_back(
      {0.75 * clean.wallclock, /*node=*/4, /*level=*/2});  // 3's partner

  const auto faulty = apps::run_heat_checkpointed(config);
  std::printf(
      "faulty run: %s, %d failures hit, %d coordinated recoveries\n",
      common::format_duration(faulty.wallclock).c_str(), faulty.failures_hit,
      faulty.recoveries);
  std::printf("slowdown from failures: +%.1f%%\n",
              100.0 * (faulty.wallclock / clean.wallclock - 1.0));

  const bool identical = faulty.grid == clean.grid;
  std::printf("final grids bit-identical: %s\n", identical ? "YES" : "NO");
  std::printf("final residual: %.6g\n", faulty.residual);
  return identical ? 0 : 1;
}
