// Command-line planner: describe your system in flags, get the optimized
// checkpoint intervals and execution scale for all four solution families.
//
//   ./plan_cli --te 3e6 --kappa 0.46 --nstar 1e6
//              --rates 16,12,8,4 --costs 0.9,2.5,3.9,5.5 --pfs-slope 0.0212
//              --allocation 60 --simulate
//
// Every flag has the paper's defaults; run with no arguments for the
// Figure 5 headline case.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/metrics.h"
#include "common/table.h"
#include "common/units.h"
#include "model/system.h"
#include "opt/level_selection.h"
#include "sim/monte_carlo.h"
#include "svc/sweep_engine.h"
#include "svc/system_config_builder.h"

namespace {

using namespace mlcr;

std::vector<double> parse_list(const std::string& text) {
  std::vector<double> values;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string item =
        text.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!item.empty()) values.push_back(std::atof(item.c_str()));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return values;
}

struct Options {
  double te_core_days = 3e6;
  double kappa = 0.46;
  double n_star = 1e6;
  std::vector<double> rates{16, 12, 8, 4};
  std::vector<double> costs{0.9, 2.5, 3.9, 5.5};
  double pfs_slope = 0.0212;
  double allocation = 60.0;
  bool simulate = false;
  bool select_levels = false;
  bool metrics = false;
  std::string metrics_path;  ///< empty: pretty table on stdout
};

void usage() {
  std::puts(
      "usage: plan_cli [--te CORE_DAYS] [--kappa K] [--nstar N]\n"
      "                [--rates r1,r2,...] [--costs c1,c2,...]\n"
      "                [--pfs-slope S] [--allocation A]\n"
      "                [--simulate] [--select-levels]\n"
      "                [--metrics[=file.jsonl]]\n"
      "rates are events/day at the N_star baseline; costs are per-level\n"
      "checkpoint seconds (the last level also grows by S per core).\n"
      "--metrics prints solver/cache instrumentation after the plan table,\n"
      "or writes it as JSONL when given a file path.");
}

bool parse(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--help" || flag == "-h") return false;
    if (flag == "--simulate") {
      options->simulate = true;
    } else if (flag == "--select-levels") {
      options->select_levels = true;
    } else if (flag == "--metrics") {
      options->metrics = true;
    } else if (flag.rfind("--metrics=", 0) == 0) {
      options->metrics = true;
      options->metrics_path = flag.substr(std::strlen("--metrics="));
    } else {
      const char* value = next();
      if (value == nullptr) return false;
      if (flag == "--te") options->te_core_days = std::atof(value);
      else if (flag == "--kappa") options->kappa = std::atof(value);
      else if (flag == "--nstar") options->n_star = std::atof(value);
      else if (flag == "--rates") options->rates = parse_list(value);
      else if (flag == "--costs") options->costs = parse_list(value);
      else if (flag == "--pfs-slope") options->pfs_slope = std::atof(value);
      else if (flag == "--allocation") options->allocation = std::atof(value);
      else return false;
    }
  }
  return options->rates.size() == options->costs.size() &&
         !options->rates.empty();
}

// The validating builder turns malformed flags into field-naming errors
// instead of deep MLCR_EXPECT failures.
model::SystemConfig build_system(const Options& options) {
  svc::SystemConfigBuilder builder;
  builder.te_core_days(options.te_core_days)
      .quadratic_speedup(options.kappa, options.n_star)
      .failure_rates_per_day(options.rates, options.n_star)
      .allocation_seconds(options.allocation);
  for (std::size_t i = 0; i < options.costs.size(); ++i) {
    const bool top = i + 1 == options.costs.size();
    model::Overhead checkpoint =
        top && options.pfs_slope > 0.0
            ? model::Overhead::linear(options.costs[i], options.pfs_slope)
            : model::Overhead::constant(options.costs[i]);
    builder.add_level(checkpoint, model::Overhead::constant(options.costs[i]));
  }
  return builder.build();
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse(argc, argv, &options)) {
    usage();
    return 1;
  }
  std::optional<model::SystemConfig> system;
  try {
    system = build_system(options);
  } catch (const common::Error& error) {
    std::fprintf(stderr, "plan_cli: %s\n", error.what());
    return 1;
  }

  // All four solution families planned in parallel through the sweep engine.
  svc::SweepEngine engine;
  const auto reports = engine.plan_all_solutions(*system);

  common::Table table({"solution", "status", "N", "intervals x_i", "E(Tw)",
                       "efficiency", "sim mean"});
  for (const auto& report : reports) {
    if (!report.ok()) {
      table.add_row({opt::to_string(report.solution),
                     opt::to_string(report.status), "-", "-", "-", "-", "-"});
      std::fprintf(stderr, "  [%s] %s\n",
                   opt::to_string(report.solution).c_str(),
                   report.message.c_str());
      continue;
    }
    const auto& planned = report.planned;
    std::string intervals;
    for (std::size_t i = 0; i < planned.full_plan.intervals.size(); ++i) {
      if (!planned.level_enabled[i]) continue;
      if (!intervals.empty()) intervals += " ";
      intervals += common::strf("%.0f", planned.full_plan.intervals[i]);
    }
    std::string simulated = "-";
    if (options.simulate) {
      const auto schedule = sim::Schedule::from_plan(
          *system, planned.full_plan, planned.level_enabled);
      const auto result = sim::monte_carlo(*system, schedule);
      simulated = common::format_duration(result.wallclock.mean());
    }
    table.add_row(
        {opt::to_string(report.solution), opt::to_string(report.status),
         common::format_count(planned.full_plan.scale), intervals,
         common::format_duration(report.wallclock()),
         common::strf("%.3f",
                      model::efficiency(system->te(), report.wallclock(),
                                        planned.full_plan.scale)),
         simulated});
  }
  table.print();

  if (options.select_levels) {
    const auto selected = opt::optimize_with_level_selection(*system);
    std::string subset;
    for (std::size_t i = 0; i < selected.enabled.size(); ++i) {
      if (selected.enabled[i]) subset += std::to_string(i + 1) + " ";
    }
    std::printf("\nbest level subset: %swith E(Tw) %s\n", subset.c_str(),
                common::format_duration(
                    selected.optimization.wallclock)
                    .c_str());
  }

  if (options.metrics) {
    if (options.metrics_path.empty()) {
      std::printf("\n-- solver metrics --\n");
      engine.metrics().print();
    } else if (!engine.metrics().write_jsonl_file(options.metrics_path)) {
      return 1;
    }
  }
  return 0;
}
