#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace {

using mlcr::common::Rng;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 5);
}

TEST(Rng, DifferentStreamsDiffer) {
  Rng a(7, 0), b(7, 1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(Rng, BelowIsUnbiasedForSmallN) {
  Rng rng(9);
  std::vector<int> counts(5, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++counts[rng.below(5)];
  for (int c : counts) EXPECT_NEAR(c, kSamples / 5.0, kSamples * 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  const double rate = 0.25;
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / kSamples, 1.0 / rate, 0.05);
}

TEST(Rng, ExponentialAlwaysNonNegative) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(2.0), 0.0);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(21);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent.next() == child.next());
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 0;
  const auto a = mlcr::common::splitmix64(s);
  const auto b = mlcr::common::splitmix64(s);
  EXPECT_NE(a, b);
}

}  // namespace
