#include "vmpi/comm.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "vmpi/engine.h"
#include "vmpi/task.h"

// Coroutines are written as free functions: GCC 12 miscompiles some
// coroutine lambdas ("array used as initializer").
namespace {

using namespace mlcr::vmpi;

RankTask sleep_twice(Engine& e, double* out) {
  co_await e.sleep(5.0);
  co_await e.sleep(2.5);
  *out = e.now();
}

TEST(Engine, SleepAdvancesVirtualTime) {
  Engine engine;
  double observed = -1.0;
  engine.spawn(sleep_twice(engine, &observed));
  engine.run();
  EXPECT_DOUBLE_EQ(observed, 7.5);
}

RankTask log_after(Engine& e, std::vector<int>* log, int id, double delay) {
  co_await e.sleep(delay);
  log->push_back(id);
}

TEST(Engine, TasksInterleaveByTime) {
  Engine engine;
  std::vector<int> order;
  engine.spawn(log_after(engine, &order, 1, 3.0));
  engine.spawn(log_after(engine, &order, 2, 1.0));
  engine.spawn(log_after(engine, &order, 3, 2.0));
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

RankTask throwing_task(Engine& e) {
  co_await e.sleep(1.0);
  throw mlcr::common::Error("rank blew up");
}

TEST(Engine, PropagatesTaskException) {
  Engine engine;
  engine.spawn(throwing_task(engine));
  EXPECT_THROW(engine.run(), mlcr::common::Error);
}

Task<double> inner_value(Engine& e) {
  co_await e.sleep(2.0);
  co_return 42.0;
}

RankTask outer_task(Engine& e, double* out) {
  *out = co_await inner_value(e);
  *out += e.now();  // inner's sleep advanced time
}

TEST(Engine, InnerTaskResultFlowsBack) {
  Engine engine;
  double result = 0.0;
  engine.spawn(outer_task(engine, &result));
  engine.run();
  EXPECT_DOUBLE_EQ(result, 44.0);
}

RankTask send_bytes(Comm& c, int from, int to, int tag, Bytes data,
                    double delay = 0.0) {
  if (delay > 0.0) co_await c.engine().sleep(delay);
  co_await c.send(from, to, tag, std::move(data));
}

RankTask recv_bytes(Comm& c, int at, int from, int tag, Bytes* out) {
  *out = co_await c.recv(at, from, tag);
}

TEST(Comm, SendRecvTransfersData) {
  Engine engine;
  Comm comm(engine, 2);
  Bytes got;
  engine.spawn(send_bytes(comm, 0, 1, 7, Bytes{1, 2, 3, 4}));
  engine.spawn(recv_bytes(comm, 1, 0, 7, &got));
  engine.run();
  EXPECT_EQ(got, (Bytes{1, 2, 3, 4}));
}

TEST(Comm, RecvBeforeSendAlsoMatches) {
  Engine engine;
  Comm comm(engine, 2);
  Bytes got;
  engine.spawn(recv_bytes(comm, 0, 1, 5, &got));
  engine.spawn(send_bytes(comm, 1, 0, 5, Bytes{9}, /*delay=*/10.0));
  engine.run();
  EXPECT_EQ(got, Bytes{9});
  EXPECT_GT(engine.now(), 10.0);  // rendezvous waited for the sender
}

RankTask recv_one(Comm& c, int at, int from, int tag) {
  (void)co_await c.recv(at, from, tag);
}

TEST(Comm, TransferTimeScalesWithBytes) {
  NetworkModel net;
  net.latency = 1e-3;
  net.bandwidth = 1e6;  // 1 MB/s
  EXPECT_NEAR(net.transfer_time(1'000'000), 1.001, 1e-9);

  Engine engine;
  Comm comm(engine, 2, net);
  engine.spawn(send_bytes(comm, 0, 1, 0, Bytes(500'000, 0xAB)));
  engine.spawn(recv_one(comm, 1, 0, 0));
  engine.run();
  EXPECT_NEAR(engine.now(), 0.501, 1e-6);
}

RankTask send_two_tags(Comm& c) {
  // Bytes built as locals: GCC 12 rejects repeated braced-init temporaries
  // inside one coroutine ("array used as initializer").
  Bytes first(1, 2);
  Bytes second(1, 1);
  co_await c.send(0, 1, /*tag=*/2, std::move(first));
  co_await c.send(0, 1, /*tag=*/1, std::move(second));
}

RankTask recv_two_tags(Comm& c, Bytes* first, Bytes* second) {
  *first = co_await c.recv(1, 0, /*tag=*/1);
  *second = co_await c.recv(1, 0, /*tag=*/2);
}

TEST(Comm, MessagesWithDifferentTagsDoNotCross) {
  Engine engine;
  Comm comm(engine, 2);
  Bytes a, b;
  engine.spawn(send_two_tags(comm));
  engine.spawn(recv_two_tags(comm, &a, &b));
  engine.run();
  EXPECT_EQ(a, Bytes{1});
  EXPECT_EQ(b, Bytes{2});
}

TEST(Comm, UnmatchedRecvDeadlocks) {
  Engine engine;
  Comm comm(engine, 2);
  engine.spawn(recv_one(comm, 0, 1, 99));  // nobody sends
  EXPECT_THROW(engine.run(), mlcr::common::Error);
}

RankTask barrier_worker(Comm& comm, int rank, double delay,
                        std::vector<int>* log) {
  co_await comm.engine().sleep(delay);
  co_await comm.barrier(rank);
  log->push_back(rank);
}

TEST(Comm, BarrierReleasesEveryoneTogether) {
  Engine engine;
  Comm comm(engine, 3);
  std::vector<int> after;
  engine.spawn(barrier_worker(comm, 0, 1.0, &after));
  engine.spawn(barrier_worker(comm, 1, 5.0, &after));
  engine.spawn(barrier_worker(comm, 2, 3.0, &after));
  engine.run();
  ASSERT_EQ(after.size(), 3u);
  // everyone released at (slowest arrival) + collective cost
  EXPECT_GT(engine.now(), 5.0);
}

RankTask allreduce_worker(Comm& comm, int rank, double value, double* out) {
  *out = co_await comm.allreduce_sum(rank, value);
}

TEST(Comm, AllreduceSumsContributions) {
  Engine engine;
  Comm comm(engine, 4);
  double results[4] = {0, 0, 0, 0};
  for (int r = 0; r < 4; ++r) {
    engine.spawn(allreduce_worker(comm, r, r + 1.0, &results[r]));
  }
  engine.run();
  for (double v : results) EXPECT_DOUBLE_EQ(v, 10.0);
}

RankTask two_allreduces(Comm& c, int rank, double* out1, double* out2) {
  *out1 = co_await c.allreduce_sum(rank, 1.0);
  *out2 = co_await c.allreduce_sum(rank, 10.0 + rank);
}

TEST(Comm, ConsecutiveAllreducesAreIndependent) {
  Engine engine;
  Comm comm(engine, 2);
  double first[2], second[2];
  engine.spawn(two_allreduces(comm, 0, &first[0], &second[0]));
  engine.spawn(two_allreduces(comm, 1, &first[1], &second[1]));
  engine.run();
  EXPECT_DOUBLE_EQ(first[0], 2.0);
  EXPECT_DOUBLE_EQ(second[0], 21.0);
  EXPECT_DOUBLE_EQ(second[1], 21.0);
}

RankTask bcast_worker(Comm& comm, int rank, int root, Bytes payload,
                      Bytes* out) {
  *out = co_await comm.bcast(rank, root, std::move(payload));
}

TEST(Comm, BcastDeliversRootPayload) {
  Engine engine;
  Comm comm(engine, 3);
  Bytes results[3];
  for (int r = 0; r < 3; ++r) {
    engine.spawn(bcast_worker(comm, r, /*root=*/1,
                              r == 1 ? Bytes{7, 7, 7} : Bytes{}, &results[r]));
  }
  engine.run();
  for (const auto& v : results) EXPECT_EQ(v, (Bytes{7, 7, 7}));
}

TEST(Comm, CollectiveCostGrowsLogarithmically) {
  NetworkModel net;
  EXPECT_LT(net.collective_time(2, 8), net.collective_time(64, 8));
  EXPECT_NEAR(net.collective_time(64, 8) / net.collective_time(2, 8), 6.0,
              1e-9);
}

TEST(Comm, ManyRanksBarrierScales) {
  Engine engine;
  Comm comm(engine, 256);
  std::vector<int> done;
  for (int r = 0; r < 256; ++r) {
    engine.spawn(barrier_worker(comm, r, r * 0.001, &done));
  }
  engine.run();
  EXPECT_EQ(done.size(), 256u);
}

}  // namespace
