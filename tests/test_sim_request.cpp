// Canonical-key and summary-flattening tests for the validation request
// type.  The key contract mirrors plan_request: every result-influencing
// field lands in the key; echo tags and resource knobs (label, threads) do
// not, because the replica fan-out is bit-identical at every width.
#include "svc/sim_request.h"

#include <gtest/gtest.h>

#include "exp/cases.h"
#include "stat/summary.h"
#include "svc/plan_request.h"

namespace mlcr::svc {
namespace {

SimRequest base_request() {
  SimRequest request{
      exp::make_fti_system(30.0, exp::FailureCase{"fusion", {24, 18, 12, 6}},
                           1024.0),
      opt::Solution::kMultilevelOptScale,
      {},
      {},
      SimBackend::kCoarse,
      "tag"};
  request.monte_carlo.runs = 40;
  request.monte_carlo.seed = 11;
  return request;
}

TEST(SimRequest, KeyExtendsThePlanKey) {
  const SimRequest request = base_request();
  const std::string key = canonical_key(request);
  const std::string plan_key = canonical_key(request.plan_request());
  // The sim key is the plan key plus the Monte-Carlo fields: warming the
  // plan cache from a validation and vice versa depends on this prefix.
  EXPECT_EQ(key.rfind(plan_key, 0), 0u) << key;
  EXPECT_GT(key.size(), plan_key.size());
  EXPECT_NE(key.find("mc.runs=40"), std::string::npos) << key;
  EXPECT_NE(key.find("mc.seed=11"), std::string::npos) << key;
}

TEST(SimRequest, EveryResultInfluencingFieldChangesTheKey) {
  const SimRequest base = base_request();
  const std::string key = canonical_key(base);

  SimRequest more_runs = base_request();
  more_runs.monte_carlo.runs = 41;
  EXPECT_NE(canonical_key(more_runs), key);

  SimRequest other_seed = base_request();
  other_seed.monte_carlo.seed = 12;
  EXPECT_NE(canonical_key(other_seed), key);

  SimRequest jittered = base_request();
  jittered.monte_carlo.sim.jitter_ratio = 0.25;
  EXPECT_NE(canonical_key(jittered), key);

  SimRequest capped = base_request();
  capped.monte_carlo.sim.max_events += 1;
  EXPECT_NE(canonical_key(capped), key);

  SimRequest non_atomic = base_request();
  non_atomic.monte_carlo.sim.atomic_checkpoints =
      !base.monte_carlo.sim.atomic_checkpoints;
  EXPECT_NE(canonical_key(non_atomic), key);

  SimRequest weibull = base_request();
  weibull.monte_carlo.sim.weibull_shape = 0.7;
  EXPECT_NE(canonical_key(weibull), key);

  SimRequest other_solution = base_request();
  other_solution.solution = opt::Solution::kSingleLevelOptScale;
  EXPECT_NE(canonical_key(other_solution), key);

  SimRequest other_options = base_request();
  other_options.plan_options.delta = 1e-9;
  EXPECT_NE(canonical_key(other_options), key);
}

TEST(SimRequest, BackendSplitsOtherwiseIdenticalRequests) {
  const SimRequest coarse = base_request();
  SimRequest des = base_request();
  des.backend = SimBackend::kDes;
  // The two backends legitimately produce different replica statistics, so
  // a shared cache entry would serve DES answers to coarse callers.
  EXPECT_NE(canonical_key(des), canonical_key(coarse));
  EXPECT_NE(canonical_key(des).find("backend=des"), std::string::npos)
      << canonical_key(des);
}

TEST(SimRequest, CoarseKeyIsByteIdenticalToPreBackendKey) {
  // The coarse default is never rendered into the key, so every key minted
  // before the backend axis existed still hits the same cache entries.
  const std::string key = canonical_key(base_request());
  EXPECT_EQ(key.find("backend"), std::string::npos) << key;
}

TEST(SimRequest, BackendSpellingsRoundTrip) {
  EXPECT_STREQ(to_string(SimBackend::kCoarse), "coarse");
  EXPECT_STREQ(to_string(SimBackend::kDes), "des");
  EXPECT_EQ(backend_from_string("coarse"), SimBackend::kCoarse);
  EXPECT_EQ(backend_from_string("des"), SimBackend::kDes);
  EXPECT_FALSE(backend_from_string("DES").has_value());
  EXPECT_FALSE(backend_from_string("").has_value());
  EXPECT_FALSE(backend_from_string("high-fidelity").has_value());
}

TEST(SimRequest, LabelAndThreadsDoNotSplitTheCache) {
  const std::string key = canonical_key(base_request());

  SimRequest relabeled = base_request();
  relabeled.label = "something else entirely";
  EXPECT_EQ(canonical_key(relabeled), key);

  // threads is a resource knob: by the determinism contract it cannot
  // change the result, so it must not fragment the cache either.
  SimRequest wide = base_request();
  wide.monte_carlo.threads = 8;
  EXPECT_EQ(canonical_key(wide), key);
}

TEST(SimRequest, KeyIsDeterministicAcrossCalls) {
  EXPECT_EQ(canonical_key(base_request()), canonical_key(base_request()));
}

TEST(SimRequest, FlattenPreservesSummaryFields) {
  stat::Summary summary;
  summary.add(1.0);
  summary.add(3.0);
  summary.add(2.0);
  const SimSummary flat = flatten(summary);
  EXPECT_EQ(flat.count, summary.count());
  EXPECT_EQ(flat.mean, summary.mean());
  EXPECT_EQ(flat.stddev, summary.stddev());
  EXPECT_EQ(flat.min, 1.0);
  EXPECT_EQ(flat.max, 3.0);
}

TEST(SimRequest, FlattenOfEmptySummaryIsAllZero) {
  const SimSummary flat = flatten(stat::Summary{});
  EXPECT_EQ(flat.count, 0u);
  EXPECT_EQ(flat.mean, 0.0);
  EXPECT_EQ(flat.stddev, 0.0);
  EXPECT_EQ(flat.min, 0.0);
  EXPECT_EQ(flat.max, 0.0);
}

TEST(SimRequest, PlanRequestHalfCarriesEverythingButMonteCarlo) {
  const SimRequest request = base_request();
  const PlanRequest plan = request.plan_request();
  EXPECT_EQ(plan.solution, request.solution);
  EXPECT_EQ(plan.label, request.label);
  EXPECT_EQ(canonical_key(plan), canonical_key(base_request().plan_request()));
}

}  // namespace
}  // namespace mlcr::svc
