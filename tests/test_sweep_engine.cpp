#include "svc/sweep_engine.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "common/error.h"
#include "common/log.h"
#include "exp/cases.h"
#include "model/speedup.h"
#include "svc/lru_cache.h"
#include "svc/plan_request.h"
#include "svc/sharded_cache.h"

namespace mlcr::svc {
namespace {

std::vector<PlanRequest> small_grid() {
  std::vector<PlanRequest> requests;
  const auto cases = exp::paper_failure_cases();
  for (const double te : {1e6, 3e6}) {
    for (std::size_t c = 0; c < 3; ++c) {
      const auto cfg = exp::make_fti_system(te, cases[c]);
      requests.push_back({cfg, opt::Solution::kMultilevelOptScale, {}, {}});
      requests.push_back({cfg, opt::Solution::kSingleLevelOptScale, {}, {}});
    }
  }
  return requests;
}

TEST(SweepEngine, ParallelSweepMatchesSerialBitExactly) {
  const auto requests = small_grid();
  SweepEngine serial({/*threads=*/1, /*cache_capacity=*/0});
  SweepEngine parallel({/*threads=*/4, /*cache_capacity=*/0});

  const auto serial_reports = serial.plan_sweep(requests);
  const auto parallel_reports = parallel.plan_sweep(requests);
  ASSERT_EQ(serial_reports.size(), requests.size());
  ASSERT_EQ(parallel_reports.size(), requests.size());

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto& s = serial_reports[i];
    const auto& p = parallel_reports[i];
    EXPECT_EQ(s.status, p.status) << "request " << i;
    // Bit-identical: the sweep is a pure function of the request, so the
    // thread count must not change a single ULP.
    EXPECT_EQ(s.plan().scale, p.plan().scale) << "request " << i;
    EXPECT_EQ(s.wallclock(), p.wallclock()) << "request " << i;
    ASSERT_EQ(s.plan().intervals.size(), p.plan().intervals.size());
    for (std::size_t level = 0; level < s.plan().intervals.size(); ++level) {
      EXPECT_EQ(s.plan().intervals[level], p.plan().intervals[level])
          << "request " << i << " level " << level;
    }
  }
}

TEST(SweepEngine, ReportsComeBackInRequestOrder) {
  auto requests = small_grid();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].label = "req-" + std::to_string(i);
  }
  SweepEngine engine({/*threads=*/4, /*cache_capacity=*/1024});
  const auto reports = engine.plan_sweep(requests);
  ASSERT_EQ(reports.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(reports[i].label, "req-" + std::to_string(i));
    EXPECT_EQ(reports[i].solution, requests[i].solution);
  }
}

TEST(SweepEngine, CacheHitOnRepeatedRequest) {
  const auto cfg = exp::make_fti_system(3e6, exp::paper_failure_cases()[0]);
  const PlanRequest request{cfg, opt::Solution::kMultilevelOptScale, {}, {}};

  SweepEngine engine({/*threads=*/2, /*cache_capacity=*/16});
  const auto first = *engine.plan_one(request);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(first.ok());
  EXPECT_EQ(engine.cache_size(), 1u);

  const auto second = *engine.plan_one(request);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.plan().scale, first.plan().scale);
  EXPECT_EQ(second.wallclock(), first.wallclock());
  EXPECT_EQ(second.key, first.key);

  // A warm re-sweep serves everything from cache.
  const auto resweep = engine.plan_sweep({request, request});
  for (const auto& report : resweep) {
    EXPECT_TRUE(report.cache_hit);
    EXPECT_EQ(report.plan().scale, first.plan().scale);
  }
}

TEST(SweepEngine, DuplicateRequestsInOneSweepSolvedOnce) {
  const auto cfg = exp::make_fti_system(1e6, exp::paper_failure_cases()[1]);
  const PlanRequest request{cfg, opt::Solution::kMultilevelOptScale, {}, {}};
  SweepEngine engine({/*threads=*/4, /*cache_capacity=*/0});  // cache off

  const auto reports =
      engine.plan_sweep({request, request, request, request, request});
  std::size_t solved = 0;
  for (const auto& report : reports) {
    if (!report.cache_hit) ++solved;
    EXPECT_EQ(report.plan().scale, reports.front().plan().scale);
  }
  EXPECT_EQ(solved, 1u);  // in-sweep dedup even with the cache disabled
}

TEST(SweepEngine, DistinctOptionsDoNotShareCacheEntries) {
  const auto cfg = exp::make_fti_system(3e6, exp::paper_failure_cases()[0]);
  PlanRequest loose{cfg, opt::Solution::kMultilevelOptScale, {}, {}};
  PlanRequest tight = loose;
  tight.options.delta = 1e-6;
  EXPECT_NE(canonical_key(loose), canonical_key(tight));

  SweepEngine engine({/*threads=*/2, /*cache_capacity=*/16});
  (void)engine.plan_one(loose);
  const auto report = *engine.plan_one(tight);
  EXPECT_FALSE(report.cache_hit);
  EXPECT_EQ(engine.cache_size(), 2u);
}

TEST(SweepEngine, InvalidConfigReportedNotThrown) {
  // ori-scale planning needs a finite N_star; a linear speedup without a
  // machine cap has none, which the old API surfaced as a thrown
  // MLCR_EXPECT and the service layer maps to kInvalidConfig.
  model::SystemConfig cfg(
      1e9, std::make_unique<model::LinearSpeedup>(0.5),
      {{model::Overhead::constant(5.0), model::Overhead::constant(5.0)}},
      model::FailureRates({4.0}, 1e6), 60.0);
  SweepEngine engine;
  const auto report = *engine.plan_one(
      {cfg, opt::Solution::kMultilevelOriScale, {}, "bad"});
  EXPECT_EQ(report.status, opt::Status::kInvalidConfig);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.message.empty());
  EXPECT_EQ(report.label, "bad");
}

TEST(SweepEngine, PlanAllSolutionsCoversTheFourFamilies) {
  const auto cfg = exp::make_fti_system(3e6, exp::paper_failure_cases()[0]);
  SweepEngine engine({/*threads=*/4, /*cache_capacity=*/64});
  const auto reports = engine.plan_all_solutions(cfg);
  const auto expected = opt::all_solutions();
  ASSERT_EQ(reports.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(reports[i].solution, expected[i]);
    EXPECT_TRUE(reports[i].ok()) << reports[i].message;
    EXPECT_GT(reports[i].plan().scale, 0.0);
  }
}

TEST(LruCache, EvictsLeastRecentlyUsedAtCapacity) {
  LruCache<int, int> cache(2);
  EXPECT_EQ(cache.put(1, 10), 0u);
  EXPECT_EQ(cache.put(2, 20), 0u);
  int value = 0;
  ASSERT_TRUE(cache.get(1, &value));  // promotes 1; 2 is now LRU
  EXPECT_EQ(cache.put(3, 30), 1u);    // evicts 2
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.get(1, &value));
  EXPECT_EQ(value, 10);
  EXPECT_FALSE(cache.get(2, &value));
  EXPECT_TRUE(cache.get(3, &value));
  // Refreshing an existing key never evicts.
  EXPECT_EQ(cache.put(3, 33), 0u);
  EXPECT_TRUE(cache.get(3, &value));
  EXPECT_EQ(value, 33);
}

TEST(SweepEngine, CacheEvictsInsteadOfDroppingWhenFull) {
  // The original cache dropped new entries once full: a third distinct
  // request would never be memoized.  With LRU the newest plan always lands
  // in the cache and the stalest one leaves.
  const auto cfg = exp::make_fti_system(3e6, exp::paper_failure_cases()[0]);
  PlanRequest a{cfg, opt::Solution::kMultilevelOptScale, {}, {}};
  PlanRequest b = a;
  b.options.delta = 1e-6;
  PlanRequest c = a;
  c.options.delta = 1e-7;

  // One lock shard so the test observes a single global LRU order (with
  // key-hash sharding each shard keeps its own recency list).
  SweepEngine engine(
      {.threads = 2, .cache_capacity = 2, .cache_shards = 1});
  (void)engine.plan_one(a);
  (void)engine.plan_one(b);
  EXPECT_EQ(engine.cache_size(), 2u);

  // Touch `a` so `b` becomes least-recently-used, then overflow with `c`.
  EXPECT_TRUE(engine.plan_one(a)->cache_hit);
  (void)engine.plan_one(c);
  EXPECT_EQ(engine.cache_size(), 2u);
  EXPECT_EQ(engine.metrics().counter("cache.evictions").value(), 1u);

  // `c` was cached (old behavior: dropped), `a` survived, `b` was evicted.
  EXPECT_TRUE(engine.plan_one(c)->cache_hit);
  EXPECT_TRUE(engine.plan_one(a)->cache_hit);
  EXPECT_FALSE(engine.plan_one(b)->cache_hit);
}

TEST(SweepEngine, ClassifyFailureTaxonomy) {
  const auto classify = [](auto&& thrower) {
    try {
      thrower();
    } catch (...) {
      return classify_failure(std::current_exception());
    }
    return std::pair<opt::Status, std::string>{opt::Status::kOk, ""};
  };
  const auto numeric =
      classify([] { throw common::NumericError("blew up mid-solve"); });
  EXPECT_EQ(numeric.first, opt::Status::kDiverged);
  EXPECT_EQ(numeric.second, "blew up mid-solve");

  const auto config = classify([] { throw common::Error("bad flag"); });
  EXPECT_EQ(config.first, opt::Status::kInvalidConfig);
  EXPECT_EQ(config.second, "bad flag");

  const auto internal =
      classify([] { throw std::runtime_error("logic bug"); });
  EXPECT_EQ(internal.first, opt::Status::kInternalError);
  EXPECT_EQ(internal.second, "unexpected: logic bug");

  const auto unknown = classify([] { throw 42; });
  EXPECT_EQ(unknown.first, opt::Status::kInternalError);
}

TEST(SweepEngine, ForcedDivergenceSurfacesAsDivergedNotInvalidConfig) {
  // Unrealistically high failure rates at the original scale make the outer
  // fixed point diverge (paper Section III-B).  That is a numeric outcome of
  // a well-formed request: it must never be reported as kInvalidConfig.
  const auto saved = common::log_level();
  common::set_log_level(common::LogLevel::kError);
  const auto cfg =
      exp::make_fti_system(3e6, exp::FailureCase{"hot", {1e3, 1e3, 1e3, 1e3}});
  SweepEngine engine({/*threads=*/2, /*cache_capacity=*/16});
  const auto report = *engine.plan_one(
      {cfg, opt::Solution::kMultilevelOriScale, {}, "diverging"});
  common::set_log_level(saved);

  EXPECT_EQ(report.status, opt::Status::kDiverged);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.message.empty());
  EXPECT_EQ(engine.metrics().counter("status.diverged").value(), 1u);
  // A diverged run must not leak plausible-looking portions.
  EXPECT_DOUBLE_EQ(report.planned.optimization.portions.total(), 0.0);
}

TEST(SweepEngine, SweepStatsAccountForEveryRequest) {
  const auto cfg = exp::make_fti_system(3e6, exp::paper_failure_cases()[0]);
  const PlanRequest ml{cfg, opt::Solution::kMultilevelOptScale, {}, {}};
  const PlanRequest sl{cfg, opt::Solution::kSingleLevelOptScale, {}, {}};

  SweepEngine engine({/*threads=*/2, /*cache_capacity=*/16});
  SweepStats cold;
  const auto cold_reports = engine.plan_sweep({ml, ml, sl}, &cold);
  ASSERT_EQ(cold_reports.size(), 3u);
  EXPECT_EQ(cold.requests, 3u);
  EXPECT_EQ(cold.solved, 2u);      // ml solved once, sl once
  EXPECT_EQ(cold.dedup_hits, 1u);  // the duplicate ml
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.errors, 0u);
  EXPECT_EQ(cold.requests, cold.solved + cold.cache_hits + cold.dedup_hits);
  EXPECT_GT(cold.solve_seconds_total, 0.0);
  EXPECT_GE(cold.solve_seconds_max, cold.solve_seconds_p90);
  EXPECT_GE(cold.solve_seconds_p90, cold.solve_seconds_p50);
  EXPECT_GT(cold.wall_seconds, 0.0);

  SweepStats warm;
  const auto warm_reports = engine.plan_sweep({ml, sl}, &warm);
  EXPECT_EQ(warm.requests, 2u);
  EXPECT_EQ(warm.solved, 0u);
  EXPECT_EQ(warm.cache_hits, 2u);
  EXPECT_EQ(warm.evictions, 0u);
  for (const auto& report : warm_reports) {
    EXPECT_TRUE(report.cache_hit);
    // Cache hits never queued in this sweep.
    EXPECT_DOUBLE_EQ(report.queue_wait_seconds, 0.0);
  }
}

TEST(SweepEngine, MetricsCountCacheTrafficAndStatuses) {
  const auto cfg = exp::make_fti_system(3e6, exp::paper_failure_cases()[0]);
  const PlanRequest request{cfg, opt::Solution::kMultilevelOptScale, {}, {}};
  SweepEngine engine({/*threads=*/2, /*cache_capacity=*/16});
  (void)engine.plan_one(request);
  (void)engine.plan_one(request);
  auto& metrics = engine.metrics();
  EXPECT_EQ(metrics.counter("requests").value(), 2u);
  EXPECT_EQ(metrics.counter("cache.misses").value(), 1u);
  EXPECT_EQ(metrics.counter("cache.hits").value(), 1u);
  EXPECT_EQ(metrics.counter("cache.inserts").value(), 1u);
  EXPECT_EQ(metrics.counter("status.ok").value(), 1u);
  EXPECT_EQ(metrics.timer("solve.seconds").snapshot().count, 1u);
  EXPECT_EQ(metrics.timer("solve.outer_iterations").snapshot().count, 1u);
  EXPECT_GT(metrics.timer("solve.outer_iterations").snapshot().max, 0.0);
}

TEST(LruCache, CapacityZeroStoresNothing) {
  LruCache<int, int> cache(0);
  EXPECT_EQ(cache.capacity(), 0u);
  EXPECT_EQ(cache.put(1, 10), 0u);  // no insert, so nothing to evict
  EXPECT_EQ(cache.size(), 0u);
  int value = 0;
  EXPECT_FALSE(cache.get(1, &value));
}

TEST(LruCache, CapacityOneEvictsOnEveryNewKey) {
  LruCache<int, int> cache(1);
  EXPECT_EQ(cache.put(1, 10), 0u);
  EXPECT_EQ(cache.put(2, 20), 1u);  // evicts 1
  int value = 0;
  EXPECT_FALSE(cache.get(1, &value));
  ASSERT_TRUE(cache.get(2, &value));
  EXPECT_EQ(value, 20);
  // Re-inserting the resident key is a refresh, never an eviction.
  EXPECT_EQ(cache.put(2, 22), 0u);
  ASSERT_TRUE(cache.get(2, &value));
  EXPECT_EQ(value, 22);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCache, ReinsertRefreshesRecency) {
  LruCache<int, int> cache(2);
  EXPECT_EQ(cache.put(1, 10), 0u);
  EXPECT_EQ(cache.put(2, 20), 0u);
  // put() on a resident key must promote it, exactly like get(): after
  // refreshing 1, the eviction victim is 2.
  EXPECT_EQ(cache.put(1, 11), 0u);
  EXPECT_EQ(cache.put(3, 30), 1u);
  int value = 0;
  ASSERT_TRUE(cache.get(1, &value));
  EXPECT_EQ(value, 11);
  EXPECT_FALSE(cache.get(2, &value));
  EXPECT_TRUE(cache.get(3, &value));
}

TEST(SweepEngine, ExpiredDeadlineReturnsNulloptWithoutSolving) {
  const auto cfg = exp::make_fti_system(3e6, exp::paper_failure_cases()[0]);
  PlanRequest request{cfg, opt::Solution::kMultilevelOptScale, {}, {}};
  SweepEngine engine({/*threads=*/1});

  const auto past = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  EXPECT_FALSE(engine.plan_one(request, std::optional(past)).has_value());
  EXPECT_EQ(engine.metrics().counter("requests.expired").value(), 1u);
  EXPECT_EQ(engine.metrics().timer("solve.seconds").snapshot().count, 0u);
  EXPECT_EQ(engine.cache_size(), 0u);
}

TEST(SweepEngine, DeadlineVariantMatchesPlainPlanOne) {
  const auto cfg = exp::make_fti_system(3e6, exp::paper_failure_cases()[1]);
  PlanRequest request{cfg, opt::Solution::kMultilevelOptScale, {}, {}};
  SweepEngine plain_engine({/*threads=*/1});
  SweepEngine deadline_engine({/*threads=*/1});

  const auto plain = *plain_engine.plan_one(request);
  const auto far = std::chrono::steady_clock::time_point::max();
  const auto bounded = deadline_engine.plan_one(request, std::optional(far));
  ASSERT_TRUE(bounded.has_value());
  EXPECT_EQ(bounded->key, plain.key);
  EXPECT_EQ(bounded->status, plain.status);
  EXPECT_EQ(bounded->wallclock(), plain.wallclock());
  EXPECT_EQ(bounded->plan().scale, plain.plan().scale);
  EXPECT_EQ(bounded->plan().intervals, plain.plan().intervals);
}

TEST(SweepEngine, CacheHitIsServedEvenPastDeadline) {
  const auto cfg = exp::make_fti_system(3e6, exp::paper_failure_cases()[2]);
  PlanRequest request{cfg, opt::Solution::kMultilevelOptScale, {}, {}};
  SweepEngine engine({/*threads=*/1});

  const auto solved = *engine.plan_one(request);  // populate the cache
  const auto past = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  const auto cached = engine.plan_one(request, std::optional(past));
  ASSERT_TRUE(cached.has_value());  // hits cost microseconds: always served
  EXPECT_TRUE(cached->cache_hit);
  EXPECT_EQ(cached->wallclock(), solved.wallclock());
  EXPECT_EQ(engine.metrics().counter("requests.expired").value(), 0u);
}

TEST(ShardedLruCache, KeysPinToOneShardAndCountersAreExact) {
  ShardedLruCache<int> cache(/*capacity=*/8, /*shards=*/4);
  EXPECT_EQ(cache.shard_count(), 4u);
  // A key's shard is a pure function of the key: lookups from any caller
  // land in the same shard, so there are never duplicate entries.
  const std::string key = "paper-case-0";
  const std::size_t home = cache.shard_index(key);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(cache.shard_index(key), home);

  EXPECT_EQ(cache.put(key, 42), 0u);
  int value = 0;
  ASSERT_TRUE(cache.get(key, &value));
  EXPECT_EQ(value, 42);
  EXPECT_FALSE(cache.get("absent", &value));

  const auto stats = cache.shard_stats();
  ASSERT_EQ(stats.size(), 4u);
  EXPECT_EQ(stats[home].inserts, 1u);
  EXPECT_EQ(stats[home].hits, 1u);
  EXPECT_EQ(stats[home].size, 1u);
  std::size_t hits = 0;
  std::size_t misses = 0;
  for (const auto& shard : stats) {
    hits += shard.hits;
    misses += shard.misses;
  }
  EXPECT_EQ(hits, 1u);
  EXPECT_EQ(misses, 1u);
}

TEST(ShardedLruCache, EvictionsAreAttributedToTheOverflowingShard) {
  // One shard of capacity 1 (shards clamped to capacity): every new key
  // evicts, and the counter lands on that shard exactly.
  ShardedLruCache<int> cache(/*capacity=*/1, /*shards=*/8);
  EXPECT_EQ(cache.shard_count(), 1u);
  EXPECT_EQ(cache.put("a", 1), 0u);
  EXPECT_EQ(cache.put("b", 2), 1u);  // evicts "a"
  EXPECT_EQ(cache.put("c", 3), 1u);  // evicts "b"
  const auto stats = cache.shard_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].inserts, 3u);
  EXPECT_EQ(stats[0].evictions, 2u);
  EXPECT_EQ(stats[0].size, 1u);
  int value = 0;
  EXPECT_FALSE(cache.get("a", &value));
  EXPECT_TRUE(cache.get("c", &value));
}

TEST(SweepEngine, PlanCacheStatsExposePerShardEvictionCounters) {
  SweepEngine engine({.threads = 1, .cache_capacity = 1, .cache_shards = 4});
  std::vector<PlanRequest> requests;
  for (std::size_t i = 0; i < 3; ++i) {
    requests.push_back({exp::make_fti_system(3e6 + 1e5 * double(i),
                                             exp::paper_failure_cases()[0]),
                        opt::Solution::kMultilevelOptScale,
                        {},
                        {}});
    (void)engine.plan_one(requests.back());
  }
  // Capacity 1 with three distinct keys: two evictions, all attributable to
  // the cache's single shard, and the registry-level counter agrees with
  // the per-shard sum.
  const auto stats = engine.plan_cache_stats();
  std::size_t inserts = 0;
  std::size_t evictions = 0;
  for (const auto& shard : stats) {
    inserts += shard.inserts;
    evictions += shard.evictions;
  }
  EXPECT_EQ(inserts, 3u);
  EXPECT_EQ(evictions, 2u);
  EXPECT_EQ(engine.metrics().counter("cache.evictions").value(), evictions);
  EXPECT_EQ(engine.cache_size(), 1u);
}

TEST(SweepEngine, MatchesDirectPlannerCall) {
  const auto cfg = exp::make_fti_system(3e6, exp::paper_failure_cases()[2]);
  const auto direct = opt::plan(opt::Solution::kMultilevelOptScale, cfg);
  SweepEngine engine;
  const auto report = *engine.plan_one(
      {cfg, opt::Solution::kMultilevelOptScale, {}, {}});
  EXPECT_EQ(report.plan().scale, direct.full_plan.scale);
  EXPECT_EQ(report.wallclock(), direct.optimization.wallclock);
  EXPECT_EQ(report.status, direct.optimization.status);
}

}  // namespace
}  // namespace mlcr::svc
