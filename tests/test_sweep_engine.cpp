#include "svc/sweep_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "exp/cases.h"
#include "model/speedup.h"
#include "svc/plan_request.h"

namespace mlcr::svc {
namespace {

std::vector<PlanRequest> small_grid() {
  std::vector<PlanRequest> requests;
  const auto cases = exp::paper_failure_cases();
  for (const double te : {1e6, 3e6}) {
    for (std::size_t c = 0; c < 3; ++c) {
      const auto cfg = exp::make_fti_system(te, cases[c]);
      requests.push_back({cfg, opt::Solution::kMultilevelOptScale, {}, {}});
      requests.push_back({cfg, opt::Solution::kSingleLevelOptScale, {}, {}});
    }
  }
  return requests;
}

TEST(SweepEngine, ParallelSweepMatchesSerialBitExactly) {
  const auto requests = small_grid();
  SweepEngine serial({/*threads=*/1, /*cache_capacity=*/0});
  SweepEngine parallel({/*threads=*/4, /*cache_capacity=*/0});

  const auto serial_reports = serial.plan_sweep(requests);
  const auto parallel_reports = parallel.plan_sweep(requests);
  ASSERT_EQ(serial_reports.size(), requests.size());
  ASSERT_EQ(parallel_reports.size(), requests.size());

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto& s = serial_reports[i];
    const auto& p = parallel_reports[i];
    EXPECT_EQ(s.status, p.status) << "request " << i;
    // Bit-identical: the sweep is a pure function of the request, so the
    // thread count must not change a single ULP.
    EXPECT_EQ(s.plan().scale, p.plan().scale) << "request " << i;
    EXPECT_EQ(s.wallclock(), p.wallclock()) << "request " << i;
    ASSERT_EQ(s.plan().intervals.size(), p.plan().intervals.size());
    for (std::size_t level = 0; level < s.plan().intervals.size(); ++level) {
      EXPECT_EQ(s.plan().intervals[level], p.plan().intervals[level])
          << "request " << i << " level " << level;
    }
  }
}

TEST(SweepEngine, ReportsComeBackInRequestOrder) {
  auto requests = small_grid();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].label = "req-" + std::to_string(i);
  }
  SweepEngine engine({/*threads=*/4, /*cache_capacity=*/1024});
  const auto reports = engine.plan_sweep(requests);
  ASSERT_EQ(reports.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(reports[i].label, "req-" + std::to_string(i));
    EXPECT_EQ(reports[i].solution, requests[i].solution);
  }
}

TEST(SweepEngine, CacheHitOnRepeatedRequest) {
  const auto cfg = exp::make_fti_system(3e6, exp::paper_failure_cases()[0]);
  const PlanRequest request{cfg, opt::Solution::kMultilevelOptScale, {}, {}};

  SweepEngine engine({/*threads=*/2, /*cache_capacity=*/16});
  const auto first = engine.plan_one(request);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(first.ok());
  EXPECT_EQ(engine.cache_size(), 1u);

  const auto second = engine.plan_one(request);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.plan().scale, first.plan().scale);
  EXPECT_EQ(second.wallclock(), first.wallclock());
  EXPECT_EQ(second.key, first.key);

  // A warm re-sweep serves everything from cache.
  const auto resweep = engine.plan_sweep({request, request});
  for (const auto& report : resweep) {
    EXPECT_TRUE(report.cache_hit);
    EXPECT_EQ(report.plan().scale, first.plan().scale);
  }
}

TEST(SweepEngine, DuplicateRequestsInOneSweepSolvedOnce) {
  const auto cfg = exp::make_fti_system(1e6, exp::paper_failure_cases()[1]);
  const PlanRequest request{cfg, opt::Solution::kMultilevelOptScale, {}, {}};
  SweepEngine engine({/*threads=*/4, /*cache_capacity=*/0});  // cache off

  const auto reports =
      engine.plan_sweep({request, request, request, request, request});
  std::size_t solved = 0;
  for (const auto& report : reports) {
    if (!report.cache_hit) ++solved;
    EXPECT_EQ(report.plan().scale, reports.front().plan().scale);
  }
  EXPECT_EQ(solved, 1u);  // in-sweep dedup even with the cache disabled
}

TEST(SweepEngine, DistinctOptionsDoNotShareCacheEntries) {
  const auto cfg = exp::make_fti_system(3e6, exp::paper_failure_cases()[0]);
  PlanRequest loose{cfg, opt::Solution::kMultilevelOptScale, {}, {}};
  PlanRequest tight = loose;
  tight.options.delta = 1e-6;
  EXPECT_NE(canonical_key(loose), canonical_key(tight));

  SweepEngine engine({/*threads=*/2, /*cache_capacity=*/16});
  (void)engine.plan_one(loose);
  const auto report = engine.plan_one(tight);
  EXPECT_FALSE(report.cache_hit);
  EXPECT_EQ(engine.cache_size(), 2u);
}

TEST(SweepEngine, InvalidConfigReportedNotThrown) {
  // ori-scale planning needs a finite N_star; a linear speedup without a
  // machine cap has none, which the old API surfaced as a thrown
  // MLCR_EXPECT and the service layer maps to kInvalidConfig.
  model::SystemConfig cfg(
      1e9, std::make_unique<model::LinearSpeedup>(0.5),
      {{model::Overhead::constant(5.0), model::Overhead::constant(5.0)}},
      model::FailureRates({4.0}, 1e6), 60.0);
  SweepEngine engine;
  const auto report = engine.plan_one(
      {cfg, opt::Solution::kMultilevelOriScale, {}, "bad"});
  EXPECT_EQ(report.status, opt::Status::kInvalidConfig);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.message.empty());
  EXPECT_EQ(report.label, "bad");
}

TEST(SweepEngine, PlanAllSolutionsCoversTheFourFamilies) {
  const auto cfg = exp::make_fti_system(3e6, exp::paper_failure_cases()[0]);
  SweepEngine engine({/*threads=*/4, /*cache_capacity=*/64});
  const auto reports = engine.plan_all_solutions(cfg);
  const auto expected = opt::all_solutions();
  ASSERT_EQ(reports.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(reports[i].solution, expected[i]);
    EXPECT_TRUE(reports[i].ok()) << reports[i].message;
    EXPECT_GT(reports[i].plan().scale, 0.0);
  }
}

TEST(SweepEngine, MatchesDirectPlannerCall) {
  const auto cfg = exp::make_fti_system(3e6, exp::paper_failure_cases()[2]);
  const auto direct = opt::plan(opt::Solution::kMultilevelOptScale, cfg);
  SweepEngine engine;
  const auto report = engine.plan_one(
      {cfg, opt::Solution::kMultilevelOptScale, {}, {}});
  EXPECT_EQ(report.plan().scale, direct.full_plan.scale);
  EXPECT_EQ(report.wallclock(), direct.optimization.wallclock);
  EXPECT_EQ(report.status, direct.optimization.status);
}

}  // namespace
}  // namespace mlcr::svc
