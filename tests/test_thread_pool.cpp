#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <exception>
#include <thread>
#include <vector>

namespace mlcr::common {
namespace {

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  futures.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    futures.push_back(pool.submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, ConcurrentSubmitAndDrain) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  constexpr int kSubmitters = 8;
  constexpr int kPerSubmitter = 250;

  std::vector<std::thread> submitters;
  std::vector<std::vector<std::future<void>>> futures(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &total, &futures, s]() {
      for (int i = 0; i < kPerSubmitter; ++i) {
        futures[static_cast<std::size_t>(s)].push_back(pool.submit(
            [&total]() { total.fetch_add(1, std::memory_order_relaxed); }));
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  for (auto& list : futures) {
    for (auto& future : list) future.get();
  }
  EXPECT_EQ(total.load(), kSubmitters * kPerSubmitter);
}

// what() returns a literal: with a COW std::string (pre-C++11 ABI), a
// runtime_error's message buffer is shared between the worker's stored
// exception and the rethrown copy, and TSan (which cannot see the atomic
// refcount inside an uninstrumented libstdc++) flags the cross-thread
// release as a race.  A literal keeps the test ABI-independent.
struct TaskFailed : std::exception {
  const char* what() const noexcept override { return "task failed"; }
};

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw TaskFailed{}; });
  try {
    (void)future.get();
    FAIL() << "expected TaskFailed";
  } catch (const TaskFailed& error) {
    EXPECT_STREQ(error.what(), "task failed");
  }
  // The pool stays usable after a throwing task.
  EXPECT_EQ(pool.submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::vector<std::future<int>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      futures.push_back(pool.submit([i]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return i;
      }));
    }
  }  // destructor must drain, not abandon
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);
  }
}

TEST(ThreadPool, StealsAcrossQueues) {
  // One long task pins a worker; the remaining tasks round-robin into every
  // queue, so finishing all of them quickly requires stealing from the
  // stuck worker's deque.
  ThreadPool pool(4);
  std::atomic<bool> release{false};
  auto blocker = pool.submit([&release]() {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i]() { return i; }));
  }
  int sum = 0;
  for (auto& future : futures) sum += future.get();
  EXPECT_EQ(sum, 99 * 100 / 2);
  release.store(true, std::memory_order_release);
  blocker.get();
}

}  // namespace
}  // namespace mlcr::common
