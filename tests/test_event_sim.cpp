#include "sim/event_sim.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.h"
#include "exp/cases.h"

namespace {

using namespace mlcr;
using namespace mlcr::sim;

// Small two-level system for fast deterministic checks.
model::SystemConfig small_system(std::vector<double> rates_per_day,
                                 double te_core_days = 100.0) {
  std::vector<model::LevelOverheads> levels{
      {model::Overhead::constant(2.0), model::Overhead::constant(2.0)},
      {model::Overhead::constant(10.0), model::Overhead::constant(10.0)}};
  model::FailureRates rates(std::move(rates_per_day), 1000.0);
  return model::SystemConfig(common::core_days_to_seconds(te_core_days),
                             std::make_unique<model::QuadraticSpeedup>(0.5,
                                                                       1000.0),
                             std::move(levels), std::move(rates),
                             /*allocation=*/30.0);
}

Schedule make_schedule(const model::SystemConfig& cfg, double n,
                       std::vector<double> x) {
  model::Plan plan{std::move(x), n};
  return Schedule::from_plan(cfg, plan, std::vector<bool>(cfg.levels(), true));
}

TEST(Schedule, FromPlanComputesPeriods) {
  const auto cfg = small_system({1, 1});
  const auto s = make_schedule(cfg, 500.0, {10.0, 5.0});
  const double work = cfg.productive_time(500.0);
  EXPECT_NEAR(s.period_seconds[0], work / 10.0, 1e-9);
  EXPECT_NEAR(s.period_seconds[1], work / 5.0, 1e-9);
}

TEST(Schedule, IntervalCountOneDisablesLevel) {
  const auto cfg = small_system({1, 1});
  const auto s = make_schedule(cfg, 500.0, {1.0, 5.0});
  EXPECT_DOUBLE_EQ(s.period_seconds[0], 0.0);
  EXPECT_GT(s.period_seconds[1], 0.0);
}

TEST(EventSim, NoFailuresNoCheckpointsGivesBareProductiveTime) {
  auto cfg = small_system({0, 0});
  const auto schedule = make_schedule(cfg, 500.0, {1.0, 1.0});
  common::Rng rng(1);
  const auto r = simulate(cfg, schedule, rng);
  ASSERT_TRUE(r.completed);
  EXPECT_NEAR(r.wallclock, cfg.productive_time(500.0), 1e-6);
  EXPECT_NEAR(r.portions.productive, r.wallclock, 1e-6);
  EXPECT_DOUBLE_EQ(r.portions.checkpoint, 0.0);
  EXPECT_DOUBLE_EQ(r.portions.restart, 0.0);
  EXPECT_DOUBLE_EQ(r.portions.rollback, 0.0);
}

TEST(EventSim, NoFailuresChargesExactCheckpointOverhead) {
  auto cfg = small_system({0, 0});
  const auto schedule = make_schedule(cfg, 500.0, {10.0, 5.0});
  common::Rng rng(1);
  SimOptions options;
  options.jitter_ratio = 0.0;
  const auto r = simulate(cfg, schedule, rng, options);
  ASSERT_TRUE(r.completed);
  // 9 interior level-1 triggers, 4 interior level-2 triggers; positions that
  // coincide (every 2nd level-2 grid point) are taken at level 2 only.
  // level-1 grid: k/10 (k=1..9); level-2 grid: k/5 (k=1..4) == 2k/10, so the
  // level-1 checkpoints at 2/10, 4/10, 6/10, 8/10 are superseded.
  EXPECT_EQ(r.checkpoints_per_level[0], 5);
  EXPECT_EQ(r.checkpoints_per_level[1], 4);
  EXPECT_NEAR(r.portions.checkpoint, 5 * 2.0 + 4 * 10.0, 1e-6);
  EXPECT_NEAR(r.wallclock, cfg.productive_time(500.0) + 50.0, 1e-6);
}

TEST(EventSim, PortionsAlwaysSumToWallclock) {
  auto cfg = small_system({400, 100});  // very high failure rates
  const auto schedule = make_schedule(cfg, 1000.0, {50.0, 10.0});
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    common::Rng rng(seed);
    const auto r = simulate(cfg, schedule, rng);
    ASSERT_TRUE(r.completed) << "seed " << seed;
    EXPECT_NEAR(r.portions.total(), r.wallclock, r.wallclock * 1e-12 + 1e-6)
        << "seed " << seed;
  }
}

TEST(EventSim, FailuresForceRollbackAndRestart) {
  auto cfg = small_system({400, 100});
  const auto schedule = make_schedule(cfg, 1000.0, {50.0, 10.0});
  common::Rng rng(7);
  const auto r = simulate(cfg, schedule, rng);
  ASSERT_TRUE(r.completed);
  const long failures = r.failures_per_level[0] + r.failures_per_level[1];
  EXPECT_GT(failures, 0);
  EXPECT_GT(r.portions.restart, 0.0);
  EXPECT_GT(r.portions.rollback, 0.0);
  // Productive time is invariant: the work must be done exactly once.
  EXPECT_NEAR(r.portions.productive, cfg.productive_time(1000.0), 1e-6);
}

TEST(EventSim, DeterministicGivenSeed) {
  auto cfg = small_system({100, 20});
  const auto schedule = make_schedule(cfg, 1000.0, {50.0, 10.0});
  common::Rng rng1(99), rng2(99);
  const auto a = simulate(cfg, schedule, rng1);
  const auto b = simulate(cfg, schedule, rng2);
  EXPECT_DOUBLE_EQ(a.wallclock, b.wallclock);
  EXPECT_EQ(a.failures_per_level, b.failures_per_level);
}

TEST(EventSim, Level2FailureSurvivesOnlyLevel2Checkpoints) {
  // Deterministic scenario: disable level 1, rely on level 2 checkpoints;
  // a level-2 failure must roll back to the last level-2 checkpoint, not
  // further.
  auto cfg = small_system({0, 500});  // only level-2 failures
  const auto schedule = make_schedule(cfg, 1000.0, {1.0, 20.0});
  common::Rng rng(3);
  const auto r = simulate(cfg, schedule, rng);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.failures_per_level[1], 0);
  // Rollback loss per failure is bounded by one level-2 period plus the
  // checkpoint costs inside it (all re-execution is below the high-water
  // mark).  Sanity: mean rollback per failure < 2 periods.
  const double period = schedule.period_seconds[1];
  EXPECT_LT(r.portions.rollback /
                static_cast<double>(r.failures_per_level[1]),
            2.0 * period);
}

TEST(EventSim, HigherLevelCheckpointServesLowerLevelFailure) {
  // Only level-2 checkpoints enabled; level-1 failures must recover from
  // them (checkpoint level >= failure level).
  auto cfg = small_system({200, 0});
  const auto schedule = make_schedule(cfg, 1000.0, {1.0, 20.0});
  common::Rng rng(11);
  const auto r = simulate(cfg, schedule, rng);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.failures_per_level[0], 0);
  const double period = schedule.period_seconds[1];
  EXPECT_LT(r.portions.rollback /
                static_cast<double>(r.failures_per_level[0]),
            2.5 * period);
}

TEST(EventSim, Level1CheckpointDoesNotSurviveLevel2Failure) {
  // Only level-1 checkpoints enabled; every level-2 failure restarts from
  // scratch (position 0), so rollback dominates and wall-clock far exceeds
  // the failure-free time.
  auto cfg = small_system({0, 50}, /*te_core_days=*/20.0);
  const auto schedule = make_schedule(cfg, 1000.0, {20.0, 1.0});
  common::Rng rng(5);
  const auto r = simulate(cfg, schedule, rng);
  ASSERT_TRUE(r.completed);
  if (r.failures_per_level[1] > 0) {
    EXPECT_GT(r.portions.rollback, 0.0);
  }
}

TEST(EventSim, JitterChangesCostsButNotWork) {
  auto cfg = small_system({0, 0});
  const auto schedule = make_schedule(cfg, 500.0, {10.0, 5.0});
  common::Rng rng(42);
  SimOptions jittered;
  jittered.jitter_ratio = 0.3;
  const auto r = simulate(cfg, schedule, rng, jittered);
  ASSERT_TRUE(r.completed);
  EXPECT_NEAR(r.portions.productive, cfg.productive_time(500.0), 1e-6);
  // Jittered checkpoint total within +-30% of nominal.
  EXPECT_GT(r.portions.checkpoint, 50.0 * 0.7);
  EXPECT_LT(r.portions.checkpoint, 50.0 * 1.3);
}

TEST(EventSim, MeanFailureCountMatchesPoissonRate) {
  auto cfg = small_system({100, 0});
  const auto schedule = make_schedule(cfg, 1000.0, {20.0, 1.0});
  double total_failures = 0.0, total_wallclock = 0.0;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    common::Rng rng(seed);
    const auto r = simulate(cfg, schedule, rng);
    ASSERT_TRUE(r.completed);
    total_failures += static_cast<double>(r.failures_per_level[0]);
    total_wallclock += r.wallclock;
  }
  const double rate = cfg.rates().rate_per_second(0, 1000.0);
  EXPECT_NEAR(total_failures / (total_wallclock * rate), 1.0, 0.15);
}

}  // namespace
