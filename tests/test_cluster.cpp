#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace {

using namespace mlcr;
using namespace mlcr::cluster;
using mlcr::vmpi::Engine;
using mlcr::vmpi::RankTask;

ClusterConfig small_config() {
  ClusterConfig config;
  config.nodes = 8;
  config.ranks_per_node = 4;
  config.rs_group_size = 4;
  return config;
}

TEST(Cluster, RankToNodeMapping) {
  Cluster c(small_config());
  EXPECT_EQ(c.rank_count(), 32);
  EXPECT_EQ(c.node_of_rank(0), 0);
  EXPECT_EQ(c.node_of_rank(3), 0);
  EXPECT_EQ(c.node_of_rank(4), 1);
  EXPECT_EQ(c.node_of_rank(31), 7);
  EXPECT_EQ(c.first_rank_of(2), 8);
}

TEST(Cluster, PartnerRingWraps) {
  Cluster c(small_config());
  EXPECT_EQ(c.partner_of(0), 1);
  EXPECT_EQ(c.partner_of(7), 0);
}

TEST(Cluster, RsGroups) {
  Cluster c(small_config());
  EXPECT_EQ(c.rs_group_of(0), 0);
  EXPECT_EQ(c.rs_group_of(3), 0);
  EXPECT_EQ(c.rs_group_of(4), 1);
  EXPECT_EQ(c.rs_group_members(0), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(c.rs_group_members(1), (std::vector<int>{4, 5, 6, 7}));
}

TEST(Cluster, KillWipesLocalStoreAndBumpsIncarnation) {
  Cluster c(small_config());
  Engine engine;
  auto writer = [](Engine& e, Cluster& cl) -> RankTask {
    Payload p;
    p.bytes = Bytes(3, 7);
    co_await cl.node(2).store().write(e, "k", std::move(p));
  };
  engine.spawn(writer(engine, c));
  engine.run();
  EXPECT_TRUE(c.node(2).store().contains("k"));
  c.kill_node(2);
  EXPECT_FALSE(c.node(2).alive());
  EXPECT_FALSE(c.node(2).store().contains("k"));
  EXPECT_EQ(c.node(2).incarnation(), 1);
  EXPECT_EQ(c.alive_nodes(), 7);
  c.revive_node(2);
  EXPECT_EQ(c.alive_nodes(), 8);
}

TEST(Cluster, RejectsBadIndices) {
  Cluster c(small_config());
  EXPECT_THROW((void)c.node(8), common::Error);
  EXPECT_THROW((void)c.node_of_rank(32), common::Error);
  EXPECT_THROW((void)c.partner_of(-1), common::Error);
}

TEST(Payload, CostSizeUsesLogicalWhenSet) {
  Payload p{{1, 2, 3}, 0};
  EXPECT_EQ(p.cost_size(), 3u);
  p.logical_size = 1'000'000;
  EXPECT_EQ(p.cost_size(), 1'000'000u);
}

RankTask write_and_read_local(Engine& e, LocalStore& store, double* duration,
                              Payload* out) {
  const double t0 = e.now();
  Payload p;
  p.bytes = Bytes(2, 5);
  p.logical_size = 75'000'000;
  co_await store.write(e, "obj", std::move(p));
  *duration = e.now() - t0;
  auto read = co_await store.read(e, "obj");
  *out = read.value_or(Payload{});
}

TEST(LocalStore, ChargesBandwidthOnLogicalSize) {
  StorageModel model;  // 75 MB/s, 0.05 s latency
  LocalStore store(model);
  Engine engine;
  double write_duration = 0.0;
  Payload read_back;
  engine.spawn(write_and_read_local(engine, store, &write_duration,
                                    &read_back));
  engine.run();
  EXPECT_NEAR(write_duration, 0.05 + 75e6 / 75e6, 1e-9);
  EXPECT_EQ(read_back.bytes, Bytes(2, 5));
}

RankTask read_missing(Engine& e, LocalStore& store, bool* found) {
  auto read = co_await store.read(e, "nope");
  *found = read.has_value();
}

TEST(LocalStore, MissingKeyReturnsNullopt) {
  StorageModel model;
  LocalStore store(model);
  Engine engine;
  bool found = true;
  engine.spawn(read_missing(engine, store, &found));
  engine.run();
  EXPECT_FALSE(found);
}

RankTask pfs_writer(Engine& e, Pfs& pfs, int id, double* done_at) {
  Payload p;
  p.bytes = Bytes(1, static_cast<std::uint8_t>(id));
  p.logical_size = 3'000'000'000;
  std::string key = "w";
  key += std::to_string(id);
  co_await pfs.write(e, key, std::move(p));
  *done_at = e.now();
}

TEST(Pfs, ConcurrentWritersSerializeThroughAggregateBandwidth) {
  StorageModel model;  // 3 GB/s aggregate write, 2 s latency
  Pfs pfs(model);
  Engine engine;
  double done[4] = {0, 0, 0, 0};
  for (int i = 0; i < 4; ++i) engine.spawn(pfs_writer(engine, pfs, i, &done[i]));
  engine.run();
  // Each write moves 3 GB = 1 s of aggregate bandwidth; FIFO makespan is
  // 4 s + latency.  Completion times step linearly — Table II's linear L4.
  std::sort(done, done + 4);
  EXPECT_NEAR(done[0], 1.0 + 2.0, 1e-6);
  EXPECT_NEAR(done[3], 4.0 + 2.0, 1e-6);
  EXPECT_NEAR(done[3] - done[2], 1.0, 1e-6);
}

RankTask pfs_read_one(Engine& e, Pfs& pfs, Payload* out) {
  auto read = co_await pfs.read(e, "w1");
  *out = read.value_or(Payload{});
}

TEST(Pfs, ReadReturnsWrittenObject) {
  StorageModel model;
  Pfs pfs(model);
  Engine engine;
  double done = 0.0;
  engine.spawn(pfs_writer(engine, pfs, 1, &done));
  engine.run();
  Engine engine2;
  Payload out;
  engine2.spawn(pfs_read_one(engine2, pfs, &out));
  engine2.run();
  EXPECT_EQ(out.bytes, Bytes{1});
}

}  // namespace
