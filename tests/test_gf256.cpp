#include "rs/gf256.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace {

using namespace mlcr::rs;

TEST(Gf256, AdditionIsXor) {
  EXPECT_EQ(gf_add(0x57, 0x83), 0x57 ^ 0x83);
  EXPECT_EQ(gf_add(0xff, 0xff), 0);
}

TEST(Gf256, MultiplicationIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    const auto v = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf_mul(v, 1), v);
    EXPECT_EQ(gf_mul(1, v), v);
    EXPECT_EQ(gf_mul(v, 0), 0);
    EXPECT_EQ(gf_mul(0, v), 0);
  }
}

TEST(Gf256, KnownAesProduct) {
  // 0x57 * 0x83 = 0xc1 under polynomial 0x11d... verify against a slow
  // carry-less reference multiplication instead of a quoted constant.
  auto slow_mul = [](std::uint8_t a, std::uint8_t b) {
    std::uint16_t product = 0;
    std::uint16_t aa = a;
    for (int bit = 0; bit < 8; ++bit) {
      if (b & (1 << bit)) product ^= aa << bit;
    }
    // reduce modulo x^8+x^4+x^3+x+1 (0x11d)
    for (int bit = 15; bit >= 8; --bit) {
      if (product & (1 << bit)) product ^= 0x11d << (bit - 8);
    }
    return static_cast<std::uint8_t>(product);
  };
  for (int a = 1; a < 256; a += 7) {
    for (int b = 1; b < 256; b += 11) {
      EXPECT_EQ(gf_mul(static_cast<std::uint8_t>(a),
                       static_cast<std::uint8_t>(b)),
                slow_mul(static_cast<std::uint8_t>(a),
                         static_cast<std::uint8_t>(b)))
          << a << " * " << b;
    }
  }
}

TEST(Gf256, MultiplicationCommutesAndAssociates) {
  for (int a = 1; a < 256; a += 13) {
    for (int b = 1; b < 256; b += 17) {
      const auto va = static_cast<std::uint8_t>(a);
      const auto vb = static_cast<std::uint8_t>(b);
      EXPECT_EQ(gf_mul(va, vb), gf_mul(vb, va));
      const std::uint8_t c = 0x1d;
      EXPECT_EQ(gf_mul(gf_mul(va, vb), c), gf_mul(va, gf_mul(vb, c)));
    }
  }
}

TEST(Gf256, DistributesOverAddition) {
  for (int a = 1; a < 256; a += 19) {
    for (int b = 0; b < 256; b += 23) {
      const auto va = static_cast<std::uint8_t>(a);
      const auto vb = static_cast<std::uint8_t>(b);
      const std::uint8_t c = 0x53;
      EXPECT_EQ(gf_mul(va, gf_add(vb, c)),
                gf_add(gf_mul(va, vb), gf_mul(va, c)));
    }
  }
}

TEST(Gf256, EveryNonZeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto v = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf_mul(v, gf_inv(v)), 1) << a;
  }
}

TEST(Gf256, InverseOfZeroThrows) {
  EXPECT_THROW((void)gf_inv(0), mlcr::common::Error);
  EXPECT_THROW((void)gf_div(1, 0), mlcr::common::Error);
}

TEST(Gf256, DivisionInvertsMultiplication) {
  for (int a = 0; a < 256; a += 5) {
    for (int b = 1; b < 256; b += 9) {
      const auto va = static_cast<std::uint8_t>(a);
      const auto vb = static_cast<std::uint8_t>(b);
      EXPECT_EQ(gf_mul(gf_div(va, vb), vb), va);
    }
  }
}

TEST(Gf256, PowerMatchesRepeatedMultiplication) {
  const std::uint8_t g = 0x03;
  std::uint8_t acc = 1;
  for (int p = 0; p < 300; ++p) {
    EXPECT_EQ(gf_pow(g, p), acc) << p;
    acc = gf_mul(acc, g);
  }
  EXPECT_EQ(gf_pow(0, 5), 0);
  EXPECT_EQ(gf_pow(0, 0), 1);
}

TEST(Gf256, MulAddAccumulates) {
  std::vector<std::uint8_t> dst{1, 2, 3, 4};
  const std::vector<std::uint8_t> src{5, 6, 7, 8};
  gf_mul_add(dst, src, 0x02);
  for (std::size_t i = 0; i < dst.size(); ++i) {
    const std::uint8_t expected =
        gf_add(static_cast<std::uint8_t>(i + 1),
               gf_mul(0x02, static_cast<std::uint8_t>(i + 5)));
    EXPECT_EQ(dst[i], expected);
  }
}

TEST(Gf256, MulAddWithZeroCoefficientIsNoop) {
  std::vector<std::uint8_t> dst{9, 9, 9};
  gf_mul_add(dst, std::vector<std::uint8_t>{1, 2, 3}, 0);
  EXPECT_EQ(dst, (std::vector<std::uint8_t>{9, 9, 9}));
}

}  // namespace
