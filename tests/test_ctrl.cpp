// Unit tests for the ctrl::Replanner drift loop on counter-based synthetic
// traces chosen so every posterior works out in exact arithmetic:
//   * events exactly on the planned schedule (one per 1/lambda seconds) keep
//     the Gamma-Poisson posterior mean at exactly the planned rate, so
//     stationary streams never drift;
//   * doubling one level's event rate for three days pushes its posterior
//     ratio to ~1.71 (>= the 1.5 default) and drives the CUSUM past its
//     threshold, so drift fires deterministically.
#include "ctrl/replanner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/error.h"
#include "exp/cases.h"
#include "svc/plan_request.h"

namespace mlcr::ctrl {
namespace {

constexpr double kDay = 86400.0;

/// The paper's headline system: rates 16-12-8-4 per day at N_b = 1e6.
svc::PlanRequest paper_request() {
  return {exp::make_fti_system(3e6, exp::paper_failure_cases()[0]),
          opt::Solution::kMultilevelOptScale,
          {},
          "ctrl-test"};
}

/// Events exactly every `interval` seconds in (start, end].
std::vector<double> schedule(double start, double end, double interval) {
  std::vector<double> events;
  for (double t = start + interval; t <= end; t += interval) {
    events.push_back(t);
  }
  return events;
}

/// One observation window with every level exactly on the planned schedule,
/// except level 1 which fires every `l1_interval` seconds.
IngestRequest batch(const svc::PlanRequest& base, double start, double end,
                    double l1_interval) {
  IngestRequest request(base);
  request.trace.arrivals_per_level = {
      schedule(start, end, l1_interval),
      schedule(start, end, kDay / 12.0),
      schedule(start, end, kDay / 8.0),
      schedule(start, end, kDay / 4.0),
  };
  request.observed_seconds = end;
  return request;
}

TEST(CtrlReplanner, StationaryBatchTriggersNoReplan) {
  Replanner replanner;
  // A full day exactly on schedule: 16+12+8+4 events.
  const auto outcome =
      replanner.ingest(batch(paper_request(), 0.0, kDay, kDay / 16.0));
  EXPECT_EQ(outcome.report.batch_events, 40u);
  EXPECT_EQ(outcome.report.total_events, 40u);
  EXPECT_FALSE(outcome.report.drift_detected);
  EXPECT_FALSE(outcome.revised.has_value());
  EXPECT_EQ(outcome.report.plan_epoch, 0u);
  ASSERT_EQ(outcome.report.levels.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    // On-schedule counts leave the posterior mean exactly at the plan.
    EXPECT_DOUBLE_EQ(outcome.report.levels[i].rate_posterior,
                     outcome.report.levels[i].baseline_rate)
        << "level " << i + 1;
    EXPECT_FALSE(outcome.report.levels[i].drift);
    EXPECT_FALSE(outcome.report.levels[i].cusum_alarm);
  }
  // Stationary follow-up days stay quiet too.
  const auto later = replanner.ingest(
      batch(paper_request(), kDay, 2.0 * kDay, kDay / 16.0));
  EXPECT_FALSE(later.report.drift_detected);
  EXPECT_EQ(replanner.epoch(later.report.key), 0u);
}

TEST(CtrlReplanner, DoubledLevelOneRateTriggersReplan) {
  Replanner replanner;
  const auto base = paper_request();
  ASSERT_FALSE(
      replanner.ingest(batch(base, 0.0, kDay, kDay / 16.0)).revised.has_value());
  // Days 2-4: level 1 fires every 2700 s (32/day, double the planned 16).
  const auto outcome =
      replanner.ingest(batch(base, kDay, 4.0 * kDay, 2700.0));
  EXPECT_TRUE(outcome.report.drift_detected);
  ASSERT_TRUE(outcome.revised.has_value());
  EXPECT_TRUE(outcome.report.replanned);
  ASSERT_EQ(outcome.report.levels.size(), 4u);

  const auto& l1 = outcome.report.levels[0];
  EXPECT_TRUE(l1.drift);
  EXPECT_TRUE(l1.cusum_alarm);
  // Posterior in exact arithmetic: prior (4, 4*5400) + 112 events over 4 days.
  const double expected_l1 = 116.0 / (4.0 * 5400.0 + 4.0 * kDay);
  EXPECT_DOUBLE_EQ(l1.rate_posterior, expected_l1);
  EXPECT_GE(l1.rate_posterior / l1.baseline_rate, 1.5);
  // On-schedule levels stay pinned to their baselines: no collateral drift.
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(outcome.report.levels[i].rate_posterior,
                     outcome.report.levels[i].baseline_rate);
    EXPECT_FALSE(outcome.report.levels[i].drift);
  }

  // The revised request carries the posterior rates back in per-day form
  // (observed scale == baseline scale, so the conversion is just *86400).
  const auto& revised_rates = outcome.revised->config.rates();
  EXPECT_DOUBLE_EQ(revised_rates.per_day_at_baseline(0), expected_l1 * kDay);
  EXPECT_DOUBLE_EQ(revised_rates.per_day_at_baseline(1), 12.0);
  EXPECT_DOUBLE_EQ(revised_rates.per_day_at_baseline(3), 4.0);
  EXPECT_DOUBLE_EQ(revised_rates.baseline_scale(),
                   base.config.rates().baseline_scale());
  // Everything that is not a failure rate is untouched.
  EXPECT_DOUBLE_EQ(outcome.revised->config.te(), base.config.te());
  EXPECT_EQ(outcome.revised->options.max_outer_iterations,
            base.options.max_outer_iterations);
}

TEST(CtrlReplanner, CommitBumpsEpochAndRearmsEstimators) {
  Replanner replanner;
  const auto base = paper_request();
  (void)replanner.ingest(batch(base, 0.0, kDay, kDay / 16.0));
  const auto outcome =
      replanner.ingest(batch(base, kDay, 4.0 * kDay, 2700.0));
  ASSERT_TRUE(outcome.revised.has_value());
  const std::string key = outcome.report.key;
  EXPECT_EQ(replanner.epoch(key), 0u);

  svc::PlanReport solved;
  solved.label = "revised";
  const auto revised = replanner.commit(key, solved);
  EXPECT_EQ(revised.plan_epoch, 1u);
  EXPECT_EQ(revised.report.label, "revised");
  EXPECT_EQ(replanner.epoch(key), 1u);

  // Post-commit the stream keys on the ORIGINAL base request (same ingest
  // address), but its estimators are re-centered on the revised rates: a
  // day exactly on the revised level-1 schedule reads as stationary.
  const double revised_l1 = 116.0 / (4.0 * 5400.0 + 4.0 * kDay);
  auto follow_up = batch(base, 4.0 * kDay, 5.0 * kDay, 1.0 / revised_l1);
  const auto after = replanner.ingest(follow_up);
  EXPECT_EQ(after.report.plan_epoch, 1u);
  ASSERT_EQ(after.report.levels.size(), 4u);
  EXPECT_DOUBLE_EQ(after.report.levels[0].baseline_rate, revised_l1);
  // 1/revised_l1 is not an exact divisor of the day, so the count rounds
  // down by a fraction of an event — near the baseline, not exactly on it.
  EXPECT_NEAR(after.report.levels[0].rate_posterior, revised_l1,
              0.02 * revised_l1);
  EXPECT_FALSE(after.report.drift_detected);
  // Level counters restarted at the commit.
  EXPECT_EQ(after.report.levels[0].events,
            static_cast<std::uint64_t>(std::floor(kDay * revised_l1)));
}

TEST(CtrlReplanner, RevisedRequestIsDeterministicAcrossReplanners) {
  // Same trace into two independent replanners: byte-identical revisions,
  // hence equal canonical keys — the bit-exactness the push layer relies on.
  const auto base = paper_request();
  std::string keys[2];
  for (int i = 0; i < 2; ++i) {
    Replanner replanner;
    (void)replanner.ingest(batch(base, 0.0, kDay, kDay / 16.0));
    const auto outcome =
        replanner.ingest(batch(base, kDay, 4.0 * kDay, 2700.0));
    EXPECT_TRUE(outcome.revised.has_value());
    keys[i] = svc::canonical_key(*outcome.revised);
  }
  EXPECT_EQ(keys[0], keys[1]);
}

TEST(CtrlReplanner, CancelReplanRetriggersOnNextBatch) {
  Replanner replanner;
  const auto base = paper_request();
  (void)replanner.ingest(batch(base, 0.0, kDay, kDay / 16.0));
  const auto first = replanner.ingest(batch(base, kDay, 4.0 * kDay, 2700.0));
  ASSERT_TRUE(first.revised.has_value());
  // While a revision is in flight, further drifted batches do not schedule
  // another one...
  const auto queued =
      replanner.ingest(batch(base, 4.0 * kDay, 5.0 * kDay, 2700.0));
  EXPECT_TRUE(queued.report.drift_detected);
  EXPECT_FALSE(queued.revised.has_value());
  // ...but cancelling (solver queue shed the job) re-arms the trigger.
  replanner.cancel_replan(first.report.key);
  const auto retried =
      replanner.ingest(batch(base, 5.0 * kDay, 6.0 * kDay, 2700.0));
  EXPECT_TRUE(retried.revised.has_value());
  EXPECT_EQ(replanner.epoch(first.report.key), 0u);
}

TEST(CtrlReplanner, MinEventsFloorSuppressesThinEvidence) {
  ReplannerOptions options;
  options.min_events = 50;
  Replanner replanner(options);
  // Half a day with level 1 at 4x its planned rate: posterior ratio ~3, but
  // the stream total (32+6+4+2 = 44 events) sits under the 50-event floor.
  const auto thin = replanner.ingest(
      batch(paper_request(), 0.0, kDay / 2.0, 1350.0));
  EXPECT_LT(thin.report.total_events, 50u);
  EXPECT_GE(thin.report.levels[0].rate_posterior /
                thin.report.levels[0].baseline_rate,
            1.5);
  EXPECT_FALSE(thin.report.drift_detected);
  EXPECT_FALSE(thin.revised.has_value());
}

TEST(CtrlReplanner, RejectsInvalidBatches) {
  Replanner replanner;
  const auto base = paper_request();
  (void)replanner.ingest(batch(base, 0.0, kDay, kDay / 16.0));

  // Regressing observation window.
  EXPECT_THROW((void)replanner.ingest(batch(base, 0.0, kDay, kDay / 16.0)),
               common::Error);
  // Event outside the declared window.
  {
    auto bad = batch(base, kDay, 2.0 * kDay, kDay / 16.0);
    bad.trace.arrivals_per_level[0].push_back(3.0 * kDay);
    EXPECT_THROW((void)replanner.ingest(bad), common::Error);
  }
  // Level count mismatch against the plan's 4 levels.
  {
    IngestRequest bad(base);
    bad.trace.arrivals_per_level = {{kDay + 1.0}};
    bad.observed_seconds = 2.0 * kDay;
    EXPECT_THROW((void)replanner.ingest(bad), common::Error);
  }
  // Observed scale changed mid-stream.
  {
    auto bad = batch(base, kDay, 2.0 * kDay, kDay / 16.0);
    bad.observed_scale = 5e5;
    EXPECT_THROW((void)replanner.ingest(bad), common::Error);
  }
  // Unknown stream commit / no pending replan.
  EXPECT_THROW((void)replanner.commit("no-such-stream", {}), common::Error);
}

TEST(CtrlReplanner, CommitWithoutPendingReplanThrows) {
  Replanner replanner;
  const auto outcome =
      replanner.ingest(batch(paper_request(), 0.0, kDay, kDay / 16.0));
  EXPECT_THROW((void)replanner.commit(outcome.report.key, {}), common::Error);
}

TEST(CtrlReplanner, MetricsCountTheLoop) {
  Replanner replanner;
  const auto base = paper_request();
  (void)replanner.ingest(batch(base, 0.0, kDay, kDay / 16.0));
  const auto outcome =
      replanner.ingest(batch(base, kDay, 4.0 * kDay, 2700.0));
  ASSERT_TRUE(outcome.revised.has_value());
  (void)replanner.commit(outcome.report.key, {});
  const auto snapshot = replanner.metrics().snapshot();
  auto counter = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [key, value] : snapshot.counters) {
      if (key == name) return value;
    }
    return 0;
  };
  EXPECT_EQ(counter("ctrl.ingest.batches"), 2u);
  EXPECT_GT(counter("ctrl.ingest.events"), 0u);
  EXPECT_EQ(counter("ctrl.drift.detected"), 1u);
  EXPECT_EQ(counter("ctrl.replan.scheduled"), 1u);
  EXPECT_EQ(counter("ctrl.replans"), 1u);
  EXPECT_EQ(replanner.streams(), 1u);
}

}  // namespace
}  // namespace mlcr::ctrl
