#include "model/overhead.h"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace mlcr::model;

TEST(Overhead, ConstantIgnoresScale) {
  const auto c = Overhead::constant(5.0);
  EXPECT_DOUBLE_EQ(c.value(1.0), 5.0);
  EXPECT_DOUBLE_EQ(c.value(1e6), 5.0);
  EXPECT_DOUBLE_EQ(c.derivative(1e6), 0.0);
}

TEST(Overhead, LinearMatchesPaperPfsFit) {
  // Table II level 4: eps = 5.5, alpha = 0.0212.
  const auto c = Overhead::linear(5.5, 0.0212);
  EXPECT_NEAR(c.value(1024.0), 5.5 + 0.0212 * 1024.0, 1e-12);
  EXPECT_DOUBLE_EQ(c.derivative(1e6), 0.0212);
}

TEST(Overhead, SqrtShape) {
  const Overhead c{1.0, 2.0, Scaling::kSqrt};
  EXPECT_DOUBLE_EQ(c.value(100.0), 21.0);
  EXPECT_NEAR(c.derivative(100.0), 2.0 * 0.5 / 10.0, 1e-12);
}

TEST(Overhead, LogShape) {
  const Overhead c{0.0, 1.0, Scaling::kLog};
  EXPECT_NEAR(c.value(std::exp(1.0) - 1.0), 1.0, 1e-12);
  EXPECT_NEAR(c.derivative(0.0), 1.0, 1e-12);
}

TEST(Scaling, AllShapesVanishAtOrigin) {
  for (auto s : {Scaling::kConstant, Scaling::kLinear, Scaling::kSqrt,
                 Scaling::kLog}) {
    EXPECT_DOUBLE_EQ(scaling_value(s, 0.0), 0.0) << to_string(s);
  }
}

TEST(Scaling, DerivativeConsistentWithValue) {
  for (auto s : {Scaling::kLinear, Scaling::kSqrt, Scaling::kLog}) {
    const double n = 500.0, h = 1e-4;
    const double numeric =
        (scaling_value(s, n + h) - scaling_value(s, n - h)) / (2 * h);
    EXPECT_NEAR(scaling_derivative(s, n), numeric, 1e-6) << to_string(s);
  }
}

TEST(LevelOverheads, AggregatesCheckpointAndRecovery) {
  LevelOverheads level{Overhead::constant(2.586), Overhead::constant(3.0)};
  EXPECT_DOUBLE_EQ(level.checkpoint.value(512.0), 2.586);
  EXPECT_DOUBLE_EQ(level.recovery.value(512.0), 3.0);
}

}  // namespace
