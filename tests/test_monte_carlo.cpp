// Monte-Carlo aggregation tests + the key cross-validation: simulated mean
// wall-clock must track the analytic expectation (Formula (21)) within a
// few percent, mirroring the paper's Figure 4 validation claim (<4%).
#include "sim/monte_carlo.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/thread_pool.h"
#include "common/units.h"
#include "exp/cases.h"
#include "opt/planner.h"

namespace {

using namespace mlcr;
using namespace mlcr::sim;

TEST(MonteCarlo, AggregatesRunCount) {
  const auto cfg = exp::make_fti_system(3e6, exp::FailureCase{"t", {8, 6, 4, 2}});
  const auto planned = opt::plan(opt::Solution::kMultilevelOptScale, cfg);
  const auto schedule =
      Schedule::from_plan(cfg, planned.full_plan, planned.level_enabled);
  MonteCarloOptions options;
  options.runs = 10;
  const auto r = monte_carlo(cfg, schedule, options);
  EXPECT_EQ(r.wallclock.count() + static_cast<std::uint64_t>(r.incomplete_runs),
            10u);
  EXPECT_GT(r.wallclock.mean(), 0.0);
}

TEST(MonteCarlo, SimulatedMeanTracksAnalyticModelAtFusionScale) {
  // The paper validated its simulator against real 128-1024-core runs with
  // <4% difference (Figure 4).  At those scales checkpoint costs are tiny
  // relative to intervals, so the analytic expectation and the simulation
  // must agree tightly.
  exp::FailureCase c{"fusion", {24, 18, 12, 6}};
  auto cfg = exp::make_fti_system(/*te_core_days=*/30.0, c, /*n_star=*/1024.0);
  const auto planned = opt::plan(opt::Solution::kMultilevelOptScale, cfg);
  const auto schedule =
      Schedule::from_plan(cfg, planned.full_plan, planned.level_enabled);
  MonteCarloOptions options;
  options.runs = 60;
  const auto r = monte_carlo(cfg, schedule, options);
  ASSERT_EQ(r.incomplete_runs, 0);
  const double analytic = planned.optimization.wallclock;
  EXPECT_NEAR(r.wallclock.mean() / analytic, 1.0, 0.05)
      << "simulated " << r.wallclock.mean() << " analytic " << analytic;
}

TEST(MonteCarlo, SimulatedMeanWithinAnalyticBandAtExascale) {
  // At exascale the PFS write window is a large fraction of the checkpoint
  // cycle, so Formula (18)'s uniform-failure-position assumption makes the
  // model conservative: simulated means land below the analytic expectation
  // but within a bounded band (see EXPERIMENTS.md).
  const auto cfg = exp::make_fti_system(3e6, exp::FailureCase{"t", {8, 6, 4, 2}});
  const auto planned = opt::plan(opt::Solution::kMultilevelOptScale, cfg);
  const auto schedule =
      Schedule::from_plan(cfg, planned.full_plan, planned.level_enabled);
  MonteCarloOptions options;
  options.runs = 40;
  const auto r = monte_carlo(cfg, schedule, options);
  ASSERT_EQ(r.incomplete_runs, 0);
  const double ratio = r.wallclock.mean() / planned.optimization.wallclock;
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.05);
}

TEST(MonteCarlo, EfficiencyMatchesDefinition) {
  const auto cfg = exp::make_fti_system(3e6, exp::FailureCase{"t", {4, 3, 2, 1}});
  const auto planned = opt::plan(opt::Solution::kMultilevelOptScale, cfg);
  const auto schedule =
      Schedule::from_plan(cfg, planned.full_plan, planned.level_enabled);
  MonteCarloOptions options;
  options.runs = 5;
  const auto r = monte_carlo(cfg, schedule, options);
  // efficiency = (Te/Tw)/N; check mean efficiency is consistent with the
  // mean wall-clock to first order.
  const double implied =
      (cfg.te() / r.wallclock.mean()) / schedule.scale;
  EXPECT_NEAR(r.efficiency.mean(), implied, implied * 0.02);
}

TEST(MonteCarlo, MlOptScaleBeatsSlOriScaleBySimulation) {
  // The paper's headline: ML(opt-scale) outperforms SL(ori-scale) by a wide
  // margin (58-88% shorter wall-clock in the Te=3m setting).
  const auto cfg =
      exp::make_fti_system(3e6, exp::FailureCase{"t", {16, 12, 8, 4}});
  MonteCarloOptions options;
  options.runs = 15;

  const auto ml = opt::plan(opt::Solution::kMultilevelOptScale, cfg);
  const auto ml_schedule =
      Schedule::from_plan(cfg, ml.full_plan, ml.level_enabled);
  const auto ml_result = monte_carlo(cfg, ml_schedule, options);

  const auto sl = opt::plan(opt::Solution::kSingleLevelOriScale, cfg);
  const auto sl_schedule =
      Schedule::from_plan(cfg, sl.full_plan, sl.level_enabled);
  const auto sl_result = monte_carlo(cfg, sl_schedule, options);

  ASSERT_EQ(ml_result.incomplete_runs, 0);
  ASSERT_EQ(sl_result.incomplete_runs, 0);
  EXPECT_LT(ml_result.wallclock.mean(), sl_result.wallclock.mean() * 0.6);
}

TEST(MonteCarlo, FewerFailuresShorterWallclock) {
  // Paper: "the total wall-clock time decreases with decreasing number of
  // failure events".
  MonteCarloOptions options;
  options.runs = 10;
  double previous = std::numeric_limits<double>::infinity();
  for (const char* name : {"16-8-4-2", "8-4-2-1", "4-2-1-0.5"}) {
    exp::FailureCase c;
    for (const auto& candidate : exp::paper_failure_cases()) {
      if (candidate.name == name) c = candidate;
    }
    const auto cfg = exp::make_fti_system(3e6, c);
    const auto planned = opt::plan(opt::Solution::kMultilevelOptScale, cfg);
    const auto schedule =
        Schedule::from_plan(cfg, planned.full_plan, planned.level_enabled);
    const auto r = monte_carlo(cfg, schedule, options);
    EXPECT_LT(r.wallclock.mean(), previous) << name;
    previous = r.wallclock.mean();
  }
}

// --- deterministic parallel fan-out -------------------------------------

void expect_identical(const stat::Summary& a, const stat::Summary& b,
                      const char* what, std::size_t threads) {
  EXPECT_EQ(a.count(), b.count()) << what << " @" << threads;
  EXPECT_EQ(a.mean(), b.mean()) << what << " @" << threads;
  EXPECT_EQ(a.variance(), b.variance()) << what << " @" << threads;
  EXPECT_EQ(a.stddev(), b.stddev()) << what << " @" << threads;
  EXPECT_EQ(a.min(), b.min()) << what << " @" << threads;
  EXPECT_EQ(a.max(), b.max()) << what << " @" << threads;
}

void expect_identical(const MonteCarloResult& a, const MonteCarloResult& b,
                      std::size_t threads) {
  expect_identical(a.wallclock, b.wallclock, "wallclock", threads);
  expect_identical(a.productive, b.productive, "productive", threads);
  expect_identical(a.checkpoint, b.checkpoint, "checkpoint", threads);
  expect_identical(a.restart, b.restart, "restart", threads);
  expect_identical(a.rollback, b.rollback, "rollback", threads);
  expect_identical(a.efficiency, b.efficiency, "efficiency", threads);
  expect_identical(a.failures, b.failures, "failures", threads);
  EXPECT_EQ(a.incomplete_runs, b.incomplete_runs) << threads;
}

TEST(MonteCarloParallel, ThreadCountNeverChangesTheResult) {
  // The replica fan-out partitions runs into fixed chunks and merges them in
  // ascending order, so N threads must equal serial bit-for-bit — including
  // Welford second moments, which would differ under any other merge order.
  const auto cfg = exp::make_fti_system(
      30.0, exp::FailureCase{"fusion", {24, 18, 12, 6}}, 1024.0);
  const auto planned = opt::plan(opt::Solution::kMultilevelOptScale, cfg);
  const auto schedule =
      Schedule::from_plan(cfg, planned.full_plan, planned.level_enabled);
  MonteCarloOptions serial;
  serial.runs = 30;  // not a multiple of kMinChunk: tail chunk covered
  serial.seed = 99;
  serial.threads = 1;
  const auto base = monte_carlo(cfg, schedule, serial);
  for (const std::size_t threads : {2u, 3u, 8u}) {
    MonteCarloOptions parallel = serial;
    parallel.threads = threads;
    expect_identical(monte_carlo(cfg, schedule, parallel), base, threads);
  }
}

TEST(MonteCarloParallel, ExternalPoolMatchesSerialBitForBit) {
  const auto cfg = exp::make_fti_system(
      30.0, exp::FailureCase{"fusion", {16, 12, 8, 4}}, 1024.0);
  const auto planned = opt::plan(opt::Solution::kMultilevelOptScale, cfg);
  const auto schedule =
      Schedule::from_plan(cfg, planned.full_plan, planned.level_enabled);
  MonteCarloOptions options;
  options.runs = 17;
  options.seed = 7;
  const auto base = monte_carlo(cfg, schedule, options);
  common::ThreadPool pool(4);
  expect_identical(monte_carlo(cfg, schedule, options, pool), base, 4u);
  // The pool overload ignores options.threads entirely.
  options.threads = 2;
  expect_identical(monte_carlo(cfg, schedule, options, pool), base, 4u);
}

TEST(MonteCarloParallel, SeedSelectsTheStreamNotTheThreadCount) {
  // Counter-based streams: run i always draws from Rng(seed, i), so a
  // different seed changes the answer while the thread count cannot.
  const auto cfg = exp::make_fti_system(
      30.0, exp::FailureCase{"fusion", {24, 18, 12, 6}}, 1024.0);
  const auto planned = opt::plan(opt::Solution::kMultilevelOptScale, cfg);
  const auto schedule =
      Schedule::from_plan(cfg, planned.full_plan, planned.level_enabled);
  MonteCarloOptions options;
  options.runs = 12;
  options.seed = 1;
  const auto first = monte_carlo(cfg, schedule, options);
  options.seed = 2;
  const auto second = monte_carlo(cfg, schedule, options);
  EXPECT_NE(first.wallclock.mean(), second.wallclock.mean());
}

TEST(MonteCarloParallel, ValidateRejectsInvalidOptions) {
  MonteCarloOptions options;
  EXPECT_NO_THROW(sim::validate(options));

  MonteCarloOptions bad_runs;
  bad_runs.runs = 0;
  EXPECT_THROW(sim::validate(bad_runs), common::Error);
  bad_runs.runs = -5;
  EXPECT_THROW(sim::validate(bad_runs), common::Error);

  MonteCarloOptions sentinel;
  sentinel.seed = kSeedSentinel;
  EXPECT_THROW(sim::validate(sentinel), common::Error);

  MonteCarloOptions bad_jitter;
  bad_jitter.sim.jitter_ratio = 1.0;  // half-open [0, 1)
  EXPECT_THROW(sim::validate(bad_jitter), common::Error);
  bad_jitter.sim.jitter_ratio = std::nan("");
  EXPECT_THROW(sim::validate(bad_jitter), common::Error);

  MonteCarloOptions bad_events;
  bad_events.sim.max_events = 0;
  EXPECT_THROW(sim::validate(bad_events), common::Error);

  MonteCarloOptions bad_shape;
  bad_shape.sim.weibull_shape = 0.0;
  EXPECT_THROW(sim::validate(bad_shape), common::Error);
}

TEST(MonteCarloParallel, InvalidOptionsThrowBeforeAnySimulation) {
  const auto cfg = exp::make_fti_system(
      30.0, exp::FailureCase{"fusion", {24, 18, 12, 6}}, 1024.0);
  const auto planned = opt::plan(opt::Solution::kMultilevelOptScale, cfg);
  const auto schedule =
      Schedule::from_plan(cfg, planned.full_plan, planned.level_enabled);
  MonteCarloOptions options;
  options.runs = 0;
  EXPECT_THROW((void)monte_carlo(cfg, schedule, options), common::Error);
  common::ThreadPool pool(2);
  EXPECT_THROW((void)monte_carlo(cfg, schedule, options, pool),
               common::Error);
}

// --- chunk partition properties ------------------------------------------

TEST(MonteCarloChunks, ChunkCountIsPureInRunsAlone) {
  // The aggregation partition is ceil(runs / kMinChunk) — a compile-time
  // function of runs only.  No thread count appears in the signature, so
  // no thread count *can* perturb the partition or the merge tree.
  static_assert(chunk_count(0) == 0);
  static_assert(chunk_count(1) == 1);
  static_assert(chunk_count(kMinChunk - 1) == 1);
  static_assert(chunk_count(kMinChunk) == 1);
  static_assert(chunk_count(kMinChunk + 1) == 2);
  static_assert(chunk_count(10 * kMinChunk) == 10);
  for (int runs = 1; runs <= 64; ++runs) {
    EXPECT_EQ(chunk_count(runs), (runs + kMinChunk - 1) / kMinChunk) << runs;
  }
}

TEST(MonteCarloChunks, SerialMatchesEveryThreadCountAcrossWidths) {
  // Property sweep over awkward widths: a single replica, one short chunk,
  // exactly one chunk, primes (never a multiple of chunk or thread count),
  // and 10x the widest thread count.  Every width must be bit-identical —
  // including the Welford second moments / stddev — at every parallel
  // degree, because chunk slots and the ascending merge order are fixed.
  const auto cfg = exp::make_fti_system(
      30.0, exp::FailureCase{"fusion", {24, 18, 12, 6}}, 1024.0);
  const auto planned = opt::plan(opt::Solution::kMultilevelOptScale, cfg);
  const auto schedule =
      Schedule::from_plan(cfg, planned.full_plan, planned.level_enabled);
  for (const int runs : {1, kMinChunk - 1, kMinChunk, 7, 31, 80, 97}) {
    MonteCarloOptions serial;
    serial.runs = runs;
    serial.seed = 4242;
    serial.threads = 1;
    const auto base = monte_carlo(cfg, schedule, serial);
    EXPECT_EQ(base.wallclock.count() +
                  static_cast<std::uint64_t>(base.incomplete_runs),
              static_cast<std::uint64_t>(runs));
    for (const std::size_t threads : {2u, 3u, 8u}) {
      MonteCarloOptions parallel = serial;
      parallel.threads = threads;
      expect_identical(monte_carlo(cfg, schedule, parallel), base, threads);
    }
  }
}

TEST(MonteCarloChunks, PartitionIndependentOfOptionsThreads) {
  // Regression pin: the chunk partition (and therefore every aggregated
  // double) is a pure function of (runs, kMinChunk).  Two parallel widths
  // must agree with each other even when neither is serial.
  const auto cfg = exp::make_fti_system(
      30.0, exp::FailureCase{"fusion", {16, 12, 8, 4}}, 1024.0);
  const auto planned = opt::plan(opt::Solution::kMultilevelOptScale, cfg);
  const auto schedule =
      Schedule::from_plan(cfg, planned.full_plan, planned.level_enabled);
  MonteCarloOptions options;
  options.runs = 26;
  options.seed = 515;
  options.threads = 2;
  const auto two = monte_carlo(cfg, schedule, options);
  options.threads = 5;
  expect_identical(monte_carlo(cfg, schedule, options), two, 5u);
}

TEST(MonteCarloChunks, SmallRequestsBypassThePoolWithIdenticalResults) {
  // Requests of at most one chunk run inline even when handed a wide pool;
  // the result must still equal the serial answer bit for bit.
  const auto cfg = exp::make_fti_system(
      30.0, exp::FailureCase{"fusion", {24, 18, 12, 6}}, 1024.0);
  const auto planned = opt::plan(opt::Solution::kMultilevelOptScale, cfg);
  const auto schedule =
      Schedule::from_plan(cfg, planned.full_plan, planned.level_enabled);
  common::ThreadPool wide(4);
  common::ThreadPool single(1);
  for (const int runs : {1, kMinChunk}) {
    MonteCarloOptions options;
    options.runs = runs;
    options.seed = 77;
    options.threads = 1;
    const auto base = monte_carlo(cfg, schedule, options);
    expect_identical(monte_carlo(cfg, schedule, options, wide), base, 4u);
    expect_identical(monte_carlo(cfg, schedule, options, single), base, 1u);
  }
}

class SolutionSimSweep : public ::testing::TestWithParam<opt::Solution> {};

TEST_P(SolutionSimSweep, EverySolutionCompletesUnderSimulation) {
  const auto cfg = exp::make_fti_system(3e6, exp::FailureCase{"t", {8, 6, 4, 2}});
  const auto planned = opt::plan(GetParam(), cfg);
  const auto schedule =
      Schedule::from_plan(cfg, planned.full_plan, planned.level_enabled);
  MonteCarloOptions options;
  options.runs = 5;
  const auto r = monte_carlo(cfg, schedule, options);
  EXPECT_EQ(r.incomplete_runs, 0) << opt::to_string(GetParam());
  EXPECT_GT(r.wallclock.mean(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllSolutions, SolutionSimSweep,
                         ::testing::Values(
                             opt::Solution::kMultilevelOptScale,
                             opt::Solution::kSingleLevelOptScale,
                             opt::Solution::kMultilevelOriScale,
                             opt::Solution::kSingleLevelOriScale));

}  // namespace
