// Integration tests: the checkpointed heat solver survives injected node
// failures and still produces the bit-exact result of an uninterrupted run,
// through every recovery path (local, partner-copy, Reed-Solomon, PFS).
#include "apps/heat_ckpt.h"

#include <gtest/gtest.h>

#include "apps/heat.h"
#include "common/rng.h"

namespace {

using namespace mlcr;
using namespace mlcr::apps;

HeatCkptConfig base_config() {
  HeatCkptConfig config;
  config.heat.rows = 34;
  config.heat.cols = 16;
  config.heat.iterations = 40;
  config.cluster.nodes = 8;
  config.cluster.ranks_per_node = 2;
  config.cluster.rs_group_size = 4;
  // Fast storage so the tests stay quick.
  config.cluster.storage.local_latency = 0.01;
  config.cluster.storage.pfs_latency = 0.05;
  config.interval_iterations = {5, 10, 20, 40};
  config.allocation = 1.0;
  return config;
}

std::vector<double> reference_grid(const HeatCkptConfig& config) {
  HeatConfig heat = config.heat;
  return run_heat(heat, config.cluster.nodes * config.cluster.ranks_per_node)
      .grid;
}

/// Virtual duration of the failure-free run, used to aim injections.
double clean_wallclock(HeatCkptConfig config) {
  config.failures.clear();
  return run_heat_checkpointed(config).wallclock;
}

TEST(HeatCkpt, FailureFreeRunMatchesPlainSolver) {
  const auto config = base_config();
  const auto result = run_heat_checkpointed(config);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.recoveries, 0);
  EXPECT_GT(result.checkpoints_taken, 0);
  EXPECT_EQ(result.grid, reference_grid(config));
}

TEST(HeatCkpt, ChecksFollowCyclicLevelSchedule) {
  auto config = base_config();
  config.heat.iterations = 40;
  const auto result = run_heat_checkpointed(config);
  // Iterations 5..35 step 5 -> 7 rounds (10/20/30 promote the level, they
  // do not add rounds; no checkpoint is taken at the final iteration).
  EXPECT_EQ(result.checkpoints_taken, 7);
}

TEST(HeatCkpt, RecoversFromSoftwareFailure) {
  auto config = base_config();
  config.failures.push_back(
      {/*at=*/0.4 * clean_wallclock(config), /*node=*/0, /*level=*/1});
  const auto result = run_heat_checkpointed(config);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.recoveries, 1);
  EXPECT_EQ(result.grid, reference_grid(config));
}

TEST(HeatCkpt, RecoversFromNodeCrashViaPartnerCopy) {
  auto config = base_config();
  // Level-1 every 5 iters only; level-2 every 10.  Crash node 3 mid-run:
  // its local checkpoints are wiped, recovery must use the partner copies
  // (or older PFS baseline) — and the final grid must still be exact.
  config.failures.push_back(
      {/*at=*/0.5 * clean_wallclock(config), /*node=*/3, /*level=*/2});
  const auto result = run_heat_checkpointed(config);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.recoveries, 1);
  EXPECT_EQ(result.failures_hit, 1);
  EXPECT_EQ(result.grid, reference_grid(config));
}

TEST(HeatCkpt, RecoversViaReedSolomonWhenPartnerChainBroken) {
  auto config = base_config();
  config.interval_iterations = {0, 0, 5, 0};  // level-3 checkpoints only
  config.failures.push_back(
      {/*at=*/0.5 * clean_wallclock(config), /*node=*/2, /*level=*/3});
  const auto result = run_heat_checkpointed(config);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.recoveries, 1);
  EXPECT_EQ(result.grid, reference_grid(config));
}

TEST(HeatCkpt, SurvivesMultipleFailures) {
  auto config = base_config();
  config.heat.iterations = 60;
  const double clean = clean_wallclock(config);
  config.failures.push_back({/*at=*/0.2 * clean, /*node=*/1, /*level=*/2});
  config.failures.push_back({/*at=*/0.5 * clean, /*node=*/5, /*level=*/2});
  config.failures.push_back({/*at=*/0.8 * clean, /*node=*/0, /*level=*/1});
  const auto result = run_heat_checkpointed(config);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.failures_hit, 3);
  EXPECT_GE(result.recoveries, 1);
  EXPECT_EQ(result.grid, reference_grid(config));
}

TEST(HeatCkpt, FailuresMakeRunsLonger) {
  auto clean = base_config();
  const auto clean_result = run_heat_checkpointed(clean);
  auto faulty = base_config();
  faulty.failures.push_back(
      {/*at=*/0.5 * clean_wallclock(faulty), /*node=*/3, /*level=*/2});
  const auto faulty_result = run_heat_checkpointed(faulty);
  EXPECT_GT(faulty_result.wallclock, clean_result.wallclock);
}

TEST(HeatCkpt, CheckpointTimeGrowsWithFrequency) {
  auto sparse = base_config();
  sparse.interval_iterations = {20, 0, 0, 40};
  const auto sparse_result = run_heat_checkpointed(sparse);
  auto dense = base_config();
  dense.interval_iterations = {2, 10, 20, 40};
  const auto dense_result = run_heat_checkpointed(dense);
  EXPECT_GT(dense_result.checkpoints_taken, sparse_result.checkpoints_taken);
  EXPECT_GT(dense_result.checkpoint_time, sparse_result.checkpoint_time);
}

// Randomized whole-stack property: ANY storm of software faults, node
// crashes and partner-pair crashes must leave the final grid bit-exact.
class HeatCkptStorm : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeatCkptStorm, RandomFailureStormStaysBitExact) {
  auto config = base_config();
  config.heat.iterations = 50;
  const double clean = clean_wallclock(config);

  common::Rng rng(GetParam());
  const int storms = 2 + static_cast<int>(rng.below(4));  // 2-5 failures
  for (int i = 0; i < storms; ++i) {
    const double at = rng.uniform(0.05, 0.9) * clean;
    const int node =
        static_cast<int>(rng.below(static_cast<std::uint64_t>(
            config.cluster.nodes)));
    const int level = 1 + static_cast<int>(rng.below(3));
    config.failures.push_back({at, node, level});
    if (level == 3) {
      // adjacent pair: breaks the partner chain, forcing RS or PFS paths
      config.failures.push_back(
          {at, (node + 1) % config.cluster.nodes, 2});
    }
  }
  std::sort(config.failures.begin(), config.failures.end(),
            [](const auto& a, const auto& b) { return a.at < b.at; });

  const auto result = run_heat_checkpointed(config);
  ASSERT_TRUE(result.completed) << "seed " << GetParam();
  EXPECT_EQ(result.failures_hit, static_cast<int>(config.failures.size()));
  EXPECT_EQ(result.grid, reference_grid(config)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Storms, HeatCkptStorm,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u,
                                           88u));

TEST(HeatCkpt, LogicalPayloadInflatesCheckpointCost) {
  auto small = base_config();
  const auto small_result = run_heat_checkpointed(small);
  auto big = base_config();
  big.logical_checkpoint_bytes = 500'000'000;  // pretend 500 MB per rank
  const auto big_result = run_heat_checkpointed(big);
  EXPECT_GT(big_result.checkpoint_time, small_result.checkpoint_time * 2);
  // Costs are inflated but the numerics are untouched.
  EXPECT_EQ(big_result.grid, small_result.grid);
}

}  // namespace
