// Golden tests against the paper's Figure 3 reference optima, plus
// cross-validation against a brute-force grid search.
#include "opt/single_level.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.h"
#include "model/wallclock.h"
#include "opt/grid_search.h"

namespace {

using namespace mlcr;
using namespace mlcr::opt;

// Figure 3 setting: Te = 4000 core-days, quadratic speedup (kappa = 0.46,
// N_star = 1e5), mu(N) = 0.005 N, eta0 + A = 5 s.
model::SystemConfig fig3_config(model::Overhead cost) {
  std::vector<model::LevelOverheads> levels{{cost, cost}};
  model::FailureRates rates({1.0}, 1e5);
  return model::SystemConfig(common::core_days_to_seconds(4000.0),
                             std::make_unique<model::QuadraticSpeedup>(0.46,
                                                                       1e5),
                             std::move(levels), std::move(rates),
                             /*allocation=*/0.0);
}

TEST(Fig3ConstantCost, ReproducesPaperOptimum) {
  // Paper: x* = 797, N* = 81,746 for C(N) = R(N) = 5 s.
  const auto cfg = fig3_config(model::Overhead::constant(5.0));
  const model::MuModel mu({0.005});
  const auto s = solve_single_level(cfg, mu);
  ASSERT_TRUE(s.converged);
  EXPECT_NEAR(s.x, 797.0, 2.0);
  EXPECT_NEAR(s.n, 81746.0, 100.0);
}

TEST(Fig3LinearCost, ReproducesPaperOptimum) {
  // Paper: x* = 140, N* = 20,215 for C(N) = R(N) = 5 + 0.005 N.
  const auto cfg = fig3_config(model::Overhead::linear(5.0, 0.005));
  const model::MuModel mu({0.005});
  const auto s = solve_single_level(cfg, mu);
  ASSERT_TRUE(s.converged);
  EXPECT_NEAR(s.x, 140.0, 2.0);
  EXPECT_NEAR(s.n, 20215.0, 100.0);
}

TEST(Fig3ConstantCost, ConvergesInTensOfIterations) {
  // Paper: "our iterative method needs just 30-40 iterations" (threshold
  // 1e-6, x0 = 100,000).  Allow a small margin around that band.
  const auto cfg = fig3_config(model::Overhead::constant(5.0));
  const model::MuModel mu({0.005});
  const auto s = solve_single_level(cfg, mu);
  ASSERT_TRUE(s.converged);
  EXPECT_LE(s.iterations, 60);
}

TEST(Fig3ConstantCost, GridSearchConfirmsOptimum) {
  const auto cfg = fig3_config(model::Overhead::constant(5.0));
  const model::MuModel mu({0.005});
  const auto s = solve_single_level(cfg, mu);
  const auto grid = grid_search_single(cfg, mu);
  // The analytic optimum must not be beaten by more than grid resolution.
  EXPECT_LE(s.wallclock, grid.best_value * 1.0005);
}

TEST(Fig3LinearCost, GridSearchConfirmsOptimum) {
  const auto cfg = fig3_config(model::Overhead::linear(5.0, 0.005));
  const model::MuModel mu({0.005});
  const auto s = solve_single_level(cfg, mu);
  const auto grid = grid_search_single(cfg, mu);
  EXPECT_LE(s.wallclock, grid.best_value * 1.0005);
}

TEST(ClosedFormLinear, MatchesFormulas10And11) {
  // Linear speedup, constant costs: x* = sqrt(b Te/(2 kappa eps0)),
  // N* = sqrt(Te / (kappa b (eta0 + A))).
  const double kappa = 0.5, b = 1e-4, eps0 = 10.0, eta0 = 12.0, a = 8.0;
  const double te = common::core_days_to_seconds(100.0);
  std::vector<model::LevelOverheads> levels{
      {model::Overhead::constant(eps0), model::Overhead::constant(eta0)}};
  model::FailureRates rates({1.0}, 1e5);
  model::SystemConfig cfg(te, std::make_unique<model::LinearSpeedup>(kappa),
                          std::move(levels), std::move(rates), a);
  const model::MuModel mu({b});
  const auto s = solve_single_level_linear(cfg, mu);
  ASSERT_TRUE(s.converged);
  EXPECT_NEAR(s.x, std::sqrt(b * te / (2.0 * kappa * eps0)), 1e-6);
  EXPECT_NEAR(s.n, std::sqrt(te / (kappa * b * (eta0 + a))), 1e-6);
}

TEST(ClosedFormLinear, StationaryUnderFormula13) {
  const double kappa = 0.5, b = 1e-4;
  const double te = common::core_days_to_seconds(100.0);
  std::vector<model::LevelOverheads> levels{
      {model::Overhead::constant(10.0), model::Overhead::constant(12.0)}};
  model::FailureRates rates({1.0}, 1e5);
  model::SystemConfig cfg(te, std::make_unique<model::LinearSpeedup>(kappa),
                          std::move(levels), std::move(rates), 8.0);
  const model::MuModel mu({b});
  const auto s = solve_single_level_linear(cfg, mu);
  EXPECT_NEAR(model::single_dx(cfg, mu, s.x, s.n), 0.0, 1e-8);
  EXPECT_NEAR(model::single_dn(cfg, mu, s.x, s.n), 0.0, 1e-10);
}

TEST(ClosedFormLinear, RejectsNonlinearSpeedup) {
  std::vector<model::LevelOverheads> levels{
      {model::Overhead::constant(5.0), model::Overhead::constant(5.0)}};
  model::FailureRates rates({1.0}, 1e5);
  model::SystemConfig cfg(86400.0,
                          std::make_unique<model::QuadraticSpeedup>(0.46, 1e5),
                          std::move(levels), std::move(rates), 0.0);
  EXPECT_THROW((void)solve_single_level_linear(cfg, model::MuModel({0.005})),
               common::Error);
}

TEST(FixedScale, MatchesYoungAtGivenScale) {
  const auto cfg = fig3_config(model::Overhead::constant(5.0));
  const model::MuModel mu({0.005});
  const double n = 1e5;
  const auto s = solve_single_level_fixed_scale(cfg, mu, n);
  ASSERT_TRUE(s.converged);
  EXPECT_DOUBLE_EQ(s.n, n);
  const double expected = std::sqrt(mu.mu(0, n) * cfg.te() /
                                    (2.0 * 5.0 * cfg.speedup().value(n)));
  EXPECT_NEAR(s.x, expected, 1e-9);
}

TEST(FixedScale, OptScaleBeatsOriScale) {
  // Optimizing the scale can only improve the Formula (13) objective.
  const auto cfg = fig3_config(model::Overhead::constant(5.0));
  const model::MuModel mu({0.005});
  const auto opt = solve_single_level(cfg, mu);
  const auto ori = solve_single_level_fixed_scale(cfg, mu, 1e5);
  EXPECT_LT(opt.wallclock, ori.wallclock);
}

// Property sweep: for several failure intensities, the fixed-point optimum
// matches the grid search and gradients vanish.
class SingleLevelSweep : public ::testing::TestWithParam<double> {};

TEST_P(SingleLevelSweep, StationaryAndGridConfirmed) {
  const double b = GetParam();
  const auto cfg = fig3_config(model::Overhead::constant(5.0));
  const model::MuModel mu({b});
  const auto s = solve_single_level(cfg, mu);
  ASSERT_TRUE(s.converged) << "b=" << b;
  // Interior optimum: gradients vanish (normalized); boundary: skip dx/dn.
  if (s.n < cfg.scale_upper_bound() * 0.999) {
    EXPECT_NEAR(model::single_dx(cfg, mu, s.x, s.n) / cfg.ckpt_cost(0, s.n),
                0.0, 1e-2);
  }
  const auto grid = grid_search_single(cfg, mu);
  EXPECT_LE(s.wallclock, grid.best_value * 1.001);
}

INSTANTIATE_TEST_SUITE_P(FailureIntensities, SingleLevelSweep,
                         ::testing::Values(1e-4, 1e-3, 0.005, 0.02, 0.1));

}  // namespace
