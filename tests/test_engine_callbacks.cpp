// Engine callback events (used by nonblocking-operation completions) and
// their interleaving with coroutine resumptions.
#include "vmpi/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "vmpi/task.h"

namespace {

using namespace mlcr::vmpi;

RankTask sleeper(Engine& engine, std::vector<int>* log, int id,
                 double delay) {
  co_await engine.sleep(delay);
  log->push_back(id);
}

TEST(EngineCallbacks, CallbacksFireAtScheduledTime) {
  Engine engine;
  std::vector<double> fired;
  engine.call_later(2.0, [&]() { fired.push_back(engine.now()); });
  engine.call_later(1.0, [&]() { fired.push_back(engine.now()); });
  engine.run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(fired[0], 1.0);
  EXPECT_DOUBLE_EQ(fired[1], 2.0);
}

TEST(EngineCallbacks, CallbacksInterleaveWithCoroutines) {
  Engine engine;
  std::vector<int> log;
  engine.spawn(sleeper(engine, &log, 1, 1.5));
  engine.call_later(1.0, [&]() { log.push_back(100); });
  engine.call_later(2.0, [&]() { log.push_back(200); });
  engine.run();
  EXPECT_EQ(log, (std::vector<int>{100, 1, 200}));
}

TEST(EngineCallbacks, CallbackMayScheduleFurtherWork) {
  Engine engine;
  std::vector<double> fired;
  engine.call_later(1.0, [&]() {
    fired.push_back(engine.now());
    engine.call_later(1.0, [&]() { fired.push_back(engine.now()); });
  });
  engine.run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(fired[1], 2.0);
}

TEST(EngineCallbacks, SimultaneousEventsRunInScheduleOrder) {
  Engine engine;
  std::vector<int> log;
  engine.call_later(1.0, [&]() { log.push_back(1); });
  engine.call_later(1.0, [&]() { log.push_back(2); });
  engine.call_later(1.0, [&]() { log.push_back(3); });
  engine.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(EngineCallbacks, RejectsNegativeDelay) {
  Engine engine;
  EXPECT_THROW(engine.call_later(-1.0, []() {}), mlcr::common::Error);
}

}  // namespace
