// Fixture: idiomatic code in the most heavily-scoped directory.  A token
// scanner is precision-limited; this file pins down the constructs that must
// NOT be reported.  Expected findings: none.  Not compiled.
#include <cstdio>
#include <mutex>
#include <string>

namespace fake_net {

std::string dec(long long v);
std::string hexf(double v);
bool parse_double(const std::string& text, double* out);

// Sanctioned helpers + integer-only printf formats + RAII locking.
std::string report(std::mutex& m, double value, int lines) {
  std::lock_guard<std::mutex> guard(m);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "{\"lines\":%d}", lines);
  double parsed = 0.0;
  if (!parse_double(hexf(value), &parsed)) return dec(lines);
  return buf + dec(static_cast<long long>(parsed));
}

// `new`/`delete`/`sqrt` in comments or strings must not trip token rules:
// the old code did `double* p = new double;` and called sqrt() here.
const char* kDoc = "never write `new` or call .lock() yourself";

struct Deleted {
  Deleted(const Deleted&) = delete;
};

}  // namespace fake_net
