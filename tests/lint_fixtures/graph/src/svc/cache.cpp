// Graph-rule fixture: Cache locks its own mutex, then calls into Stats
// (one half of the lock-order cycle pinned in tests/test_mlcr_lint.cpp).
#include "types.h"

namespace fx::svc {

void Cache::refill() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_->bump();
}

void Cache::evict() {
  std::lock_guard<std::mutex> lock(mu_);
}

}  // namespace fx::svc
