// Graph-rule fixture: a thread-id plus unordered-iteration salt flowing
// into a canonical-key sink, and an allow()'d twin that must stay silent.
#include <string>
#include <thread>
#include <unordered_map>

namespace fx::svc {

std::string canonical_key(const std::string& salt) { return salt; }

std::string salt_token(const std::unordered_map<int, int>& buckets) {
  std::string salt;
  const auto tid = std::this_thread::get_id();
  (void)tid;
  for (const auto& [k, v] : buckets) {
    salt += static_cast<char>('a' + k % 26);
    (void)v;
  }
  return canonical_key(salt);
}

std::string stable_token() {
  // mlcr-lint: allow(determinism-taint) fixture twin, suppressed.
  const auto tid = std::this_thread::get_id();
  (void)tid;
  return canonical_key("x");
}

}  // namespace fx::svc
