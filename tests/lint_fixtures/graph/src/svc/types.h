// Graph-rule fixture: two types whose methods acquire each other's mutexes
// in opposite orders (cache.cpp / stats.cpp complete the cycle).
#pragma once

#include <mutex>

namespace fx::svc {

class Stats;

class Cache {
 public:
  void refill();
  void evict();

 private:
  std::mutex mu_;
  Stats* stats_ = nullptr;
};

class Stats {
 public:
  void bump();
  void report();

 private:
  std::mutex mu_;
  Cache* cache_ = nullptr;
};

}  // namespace fx::svc
