// Graph-rule fixture: Stats locks its own mutex, then calls back into
// Cache, closing the Cache::mu_ -> Stats::mu_ -> Cache::mu_ cycle.
#include "types.h"

namespace fx::svc {

void Stats::bump() {
  std::lock_guard<std::mutex> lock(mu_);
}

void Stats::report() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_->evict();
}

}  // namespace fx::svc
