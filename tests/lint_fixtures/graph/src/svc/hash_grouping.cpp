// Graph-rule fixture: the hash-ordered grouping shape SweepEngine::plan_sweep
// had before its std::map fix — indexed together with canonical.cpp so the
// cross-TU witness (group_and_key -> canonical_key) stays pinned.
#include <string>
#include <unordered_map>
#include <vector>

namespace fx::svc {

std::string canonical_key(const std::string& salt);

std::string group_and_key(const std::vector<std::string>& reqs) {
  std::unordered_map<std::string, int> by_key;
  for (const std::string& r : reqs) by_key[r] += 1;
  std::string out;
  for (const auto& [key, count] : by_key) {
    out += canonical_key(key);
    (void)count;
  }
  return out;
}

}  // namespace fx::svc
