// Graph-rule fixture: helpers that bury a blocking ::write() behind an
// innocent-looking name, plus an allow()'d twin that must stay silent.
namespace fx::svc {

void sync_log(int fd) {
  const char byte = '!';
  ::write(fd, &byte, 1);
}

void flush_side_channel(int fd) { sync_log(fd); }

void quiet_flush(int fd) {
  const char byte = '.';
  // mlcr-lint: allow(blocking-call-transitive) fixture twin, suppressed.
  ::write(fd, &byte, 1);
}

}  // namespace fx::svc
