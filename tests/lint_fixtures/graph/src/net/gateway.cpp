// Graph-rule fixture: a reactor-entry class whose helper chain hides a raw
// blocking syscall two hops away (tests/test_mlcr_lint.cpp pins the witness
// path).  handle_quiet reaches only the allow()-suppressed twin.
namespace fx::svc {
void flush_side_channel(int fd);
void quiet_flush(int fd);
}  // namespace fx::svc

namespace fx::net {

class Server {
 public:
  void handle_payload(int fd);
  void handle_quiet(int fd);
};

void Server::handle_payload(int fd) { fx::svc::flush_side_channel(fd); }

void Server::handle_quiet(int fd) { fx::svc::quiet_flush(fd); }

}  // namespace fx::net
