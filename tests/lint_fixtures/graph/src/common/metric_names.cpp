// Graph-rule fixture: one misspelled metric name a single edit away from
// the dominant spelling, plus a dynamic prefix use that must stay exempt.
#include <string>

namespace fx::common {

class Registry {
 public:
  int counter(const std::string&) { return 0; }
};

void record(Registry& metrics_) {
  metrics_.counter("net.requests_total");
  metrics_.counter("net.requests_total");
  metrics_.counter("net.request_total");
  metrics_.counter("net.codec." + std::string("framed"));
}

}  // namespace fx::common
