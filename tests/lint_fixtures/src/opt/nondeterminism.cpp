// Fixture: solver-nondeterminism violations.  Not compiled.
#include <cstdlib>
#include <ctime>
#include <random>

double nondeterminism_violations() {
  std::srand(42);                       // line 7: solver-nondeterminism
  double a = std::rand();               // line 8: solver-nondeterminism
  double b = time(nullptr);             // line 9: solver-nondeterminism
  std::random_device entropy;           // line 10: solver-nondeterminism
  return a + b + entropy();
}
