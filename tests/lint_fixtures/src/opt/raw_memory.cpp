// Fixture: raw-memory violations (one per banned construct).  Not compiled.
#include <cstdlib>

void raw_memory_violations() {
  int* p = new int(3);         // line 5: raw-memory (new)
  delete p;                    // line 6: raw-memory (delete)
  void* q = malloc(8);         // line 7: raw-memory (malloc)
  q = realloc(q, 16);          // line 8: raw-memory (realloc)
  free(q);                     // line 9: raw-memory (free)
}

// Deleted special members are declarations, not deallocation: no finding.
struct NotAViolation {
  NotAViolation(const NotAViolation&) = delete;
  NotAViolation& operator=(const NotAViolation&) = delete;
};
