// Fixture: every violation here carries an allow() suppression, both in the
// same-line and standalone-comment-above forms.  Expected findings: none.
#include <cstdlib>
#include <mutex>

void suppressed_violations(std::mutex& m) {
  int* p = new int(3);  // mlcr-lint: allow(raw-memory)
  // mlcr-lint: allow(raw-memory)
  delete p;
  m.lock();  // mlcr-lint: allow(naked-lock)
  // mlcr-lint: allow(naked-lock, solver-nondeterminism)
  m.unlock(); (void)rand();
}
