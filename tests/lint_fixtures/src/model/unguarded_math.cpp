// Fixture: unguarded-math violations in a solver hot path.  Not compiled.
#include <cmath>

double unguarded_math_violations(double x) {
  double a = std::exp(x);   // line 5: unguarded-math
  double b = log(x);        // line 6: unguarded-math (bare call)
  double c = std::sqrt(x);  // line 7: unguarded-math
  double d = std::pow(x, 2.0);  // line 8: unguarded-math
  return a + b + c + d;
}
