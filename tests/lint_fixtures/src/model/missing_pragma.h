// Fixture: header hygiene violations — no #pragma once anywhere, and a
// using-namespace at header scope.  Not compiled.
#include <string>

using namespace std;  // line 5: using-namespace-header

inline string shout(string s) { return s + "!"; }
