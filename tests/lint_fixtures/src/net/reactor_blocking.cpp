// Deliberate net-blocking-call violations: raw blocking syscalls in a
// reactor-managed source (the path contains "src/net/reactor").  Not
// compiled; see README.md.
void on_readable(int fd, char* buf, unsigned long n, void* addr) {
  read(fd, buf, n);
  ::write(fd, buf, n);
  accept(fd, nullptr, nullptr);
  connect(fd, addr, 0);
  recv(fd, buf, n, 0);
  ::send(fd, buf, n, 0);
  // mlcr-lint: allow(net-blocking-call)
  read(fd, buf, n);
  ::write(fd, buf, n);  // mlcr-lint: allow(net-blocking-call)
}

// Fixtures are never compiled, so Conn and helpers::read need no
// definitions here — and a declaration like `int read();` would itself
// look like a call to the token scanner.
void not_violations(Conn* conn, int fd) {
  conn->send("x");      // member call, not the syscall
  (void)conn->read();   // member call
  (void)helpers::read(fd);  // namespace-qualified wrapper
}
