// Fixture: net-locale violations in the determinism-contractual directory.
// Not compiled.
#include <cstdio>
#include <cstdlib>
#include <string>

std::string locale_violations(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);  // line 9: net-locale (%g)
  double d = std::strtod(buf, nullptr);         // line 10: net-locale
  std::string s = std::to_string(d);            // line 11: net-locale
  std::sprintf(buf, "%s", s.c_str());           // line 12: net-locale
  return s;
}

void integer_formats_are_fine(int lines) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "{\"lines\":%d}", lines);  // no finding
}
