// Fixture: naked-lock violations.  Not compiled.
#include <mutex>

void naked_lock_violations(std::mutex& m) {
  m.lock();    // line 5: naked-lock
  m.unlock();  // line 6: naked-lock
}

void raii_is_fine(std::mutex& m) {
  std::lock_guard<std::mutex> guard(m);  // no finding
  std::unique_lock<std::mutex> lk(m);    // no finding
}
