#include "num/least_squares.h"

#include <gtest/gtest.h>

#include <vector>

namespace {

using namespace mlcr::num;

TEST(SolveLinearSystem, TwoByTwo) {
  // 2x + y = 5; x - y = 1  =>  x = 2, y = 1
  const auto x = solve_linear_system({2, 1, 1, -1}, {5, 1});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(SolveLinearSystem, SingularReturnsEmpty) {
  const auto x = solve_linear_system({1, 2, 2, 4}, {3, 6});
  EXPECT_TRUE(x.empty());
}

TEST(SolveLinearSystem, NeedsPivoting) {
  // First pivot is zero; partial pivoting must handle it.
  const auto x = solve_linear_system({0, 1, 1, 0}, {2, 3});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(FitPolynomial, RecoversExactLine) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y;
  for (double v : x) y.push_back(3.0 + 2.0 * v);
  const auto fit = fit_polynomial(x, y, 1);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.coefficients[0], 3.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[1], 2.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitPolynomial, RecoversQuadratic) {
  const std::vector<double> x{-2, -1, 0, 1, 2, 3};
  std::vector<double> y;
  for (double v : x) y.push_back(1.0 - 0.5 * v + 0.25 * v * v);
  const auto fit = fit_polynomial(x, y, 2);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.coefficients[0], 1.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[1], -0.5, 1e-9);
  EXPECT_NEAR(fit.coefficients[2], 0.25, 1e-9);
}

TEST(FitAffineIn, RecoversTable2Level4Shape) {
  // Paper Table II level 4 fit: eps = 5.5, alpha = 0.0212 over H(N) = N.
  const std::vector<double> n{128, 256, 384, 512, 1024};
  std::vector<double> y;
  for (double v : n) y.push_back(5.5 + 0.0212 * v);
  const auto fit = fit_affine_in(n, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.coefficients[0], 5.5, 1e-6);
  EXPECT_NEAR(fit.coefficients[1], 0.0212, 1e-9);
}

TEST(FitAffineIn, ConstantLevelDegeneratesToMean) {
  // Levels 1-3 of Table II: H(N) = 0 for all samples -> mean fit.
  const std::vector<double> h{0, 0, 0, 0, 0};
  const std::vector<double> y{0.9, 0.67, 0.67, 0.99, 1.1};
  const auto fit = fit_affine_in(h, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.coefficients[0], (0.9 + 0.67 + 0.67 + 0.99 + 1.1) / 5.0,
              1e-12);
  EXPECT_DOUBLE_EQ(fit.coefficients[1], 0.0);
}

TEST(FitQuadraticThroughOrigin, RecoversFormula12) {
  // g(N) = -kappa/(2 Nsym) N^2 + kappa N with kappa=0.46, Nsym=1e5.
  const double kappa = 0.46, nsym = 1e5;
  std::vector<double> n, g;
  for (double v = 1000; v <= 60000; v += 1000) {
    n.push_back(v);
    g.push_back(-kappa / (2 * nsym) * v * v + kappa * v);
  }
  const auto fit = fit_quadratic_through_origin(n, g);
  ASSERT_TRUE(fit.ok);
  const double a1 = fit.coefficients[0];
  const double a2 = fit.coefficients[1];
  EXPECT_NEAR(a1, kappa, 1e-6);
  EXPECT_NEAR(-a1 / (2 * a2), nsym, 1.0);
}

TEST(FitQuadraticThroughOrigin, NoConstantLeakage) {
  // Data with a constant offset cannot be matched exactly; the fit must
  // still pass through the origin (prediction at N=0 is 0 by construction).
  const std::vector<double> n{1, 2, 3};
  const std::vector<double> g{11, 12, 13};
  const auto fit = fit_quadratic_through_origin(n, g);
  ASSERT_TRUE(fit.ok);
  ASSERT_EQ(fit.coefficients.size(), 2u);
  EXPECT_GT(fit.residual_sum_squares, 0.0);
}

TEST(LinearLeastSquares, RejectsUnderdeterminedSystems) {
  const std::vector<double> design{1.0, 2.0};  // 1 row, 2 cols
  const std::vector<double> y{1.0};
  const auto fit = linear_least_squares(design, 2, y);
  EXPECT_FALSE(fit.ok);
}

TEST(LinearLeastSquares, NoisyFitHasReasonableR2) {
  std::vector<double> design;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.1;
    design.push_back(1.0);
    design.push_back(x);
    y.push_back(2.0 + 0.7 * x + ((i % 2 == 0) ? 0.01 : -0.01));
  }
  const auto fit = linear_least_squares(design, 2, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_GT(fit.r_squared, 0.999);
}

}  // namespace
