#include "common/table.h"

#include <gtest/gtest.h>

namespace {

using mlcr::common::strf;
using mlcr::common::Table;

TEST(Table, RendersHeaderAndRows) {
  Table t({"case", "wct", "eff"});
  t.add_row({"16-12-8-4", "14.6", "0.158"});
  t.add_row({"8-6-4-2", "12.8", "0.173"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("case"), std::string::npos);
  EXPECT_NE(out.find("16-12-8-4"), std::string::npos);
  EXPECT_NE(out.find("0.173"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, AlignsColumns) {
  Table t({"a", "b"});
  t.add_row({"xxxx", "1"});
  t.add_row({"y", "22"});
  const std::string out = t.to_string();
  // every line has the same length
  std::size_t expected = out.find('\n');
  for (std::size_t pos = 0; pos < out.size();) {
    const std::size_t eol = out.find('\n', pos);
    EXPECT_EQ(eol - pos, expected);
    pos = eol + 1;
  }
}

TEST(Table, NumericRowFormatsValues) {
  Table t({"label", "v1", "v2"});
  t.add_row("row", {1.23456, 1000.0}, "%.2f");
  const std::string out = t.to_string();
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("1000.00"), std::string::npos);
}

TEST(Table, ShortRowsPad) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(Strf, FormatsLikePrintf) {
  EXPECT_EQ(strf("%d-%d", 3, 4), "3-4");
  EXPECT_EQ(strf("%.3f", 2.0), "2.000");
}

}  // namespace
