#include "svc/system_config_builder.h"

#include <gtest/gtest.h>

#include <string>

#include "common/error.h"
#include "common/units.h"

namespace mlcr::svc {
namespace {

/// A builder pre-filled with a valid 2-level system; tests then break one
/// field at a time.
SystemConfigBuilder valid_builder() {
  SystemConfigBuilder builder;
  builder.te_core_days(3e6)
      .quadratic_speedup(0.46, 1e6)
      .add_level(model::Overhead::constant(0.9),
                 model::Overhead::constant(0.9))
      .add_level(model::Overhead::linear(5.5, 0.0212),
                 model::Overhead::constant(5.5))
      .failure_rates_per_day({8.0, 4.0}, 1e6)
      .allocation_seconds(60.0);
  return builder;
}

/// Expects build() to throw common::Error whose message mentions `field`.
void expect_rejects(SystemConfigBuilder builder, const std::string& field) {
  try {
    (void)builder.build();
    FAIL() << "expected common::Error naming " << field;
  } catch (const common::Error& error) {
    EXPECT_NE(std::string(error.what()).find(field), std::string::npos)
        << "message was: " << error.what();
  }
}

TEST(SystemConfigBuilder, BuildsAValidConfig) {
  const auto cfg = valid_builder().build();
  EXPECT_DOUBLE_EQ(cfg.te(), common::core_days_to_seconds(3e6));
  EXPECT_EQ(cfg.levels(), 2u);
  EXPECT_DOUBLE_EQ(cfg.allocation(), 60.0);
  EXPECT_DOUBLE_EQ(cfg.scale_upper_bound(), 1e6);
  EXPECT_DOUBLE_EQ(cfg.rates().per_day_at_baseline(0), 8.0);
}

TEST(SystemConfigBuilder, MaxScaleCapsTheSearchBound) {
  const auto cfg = valid_builder().max_scale(2e5).build();
  EXPECT_DOUBLE_EQ(cfg.scale_upper_bound(), 2e5);
}

TEST(SystemConfigBuilder, RejectsMissingTe) {
  SystemConfigBuilder builder;
  builder.quadratic_speedup(0.46, 1e6)
      .add_level(model::Overhead::constant(1.0),
                 model::Overhead::constant(1.0))
      .failure_rates_per_day({4.0}, 1e6);
  expect_rejects(builder, "te_seconds");
}

TEST(SystemConfigBuilder, RejectsNonPositiveTe) {
  expect_rejects(valid_builder().te_seconds(0.0), "te_seconds");
  expect_rejects(valid_builder().te_seconds(-5.0), "te_seconds");
}

TEST(SystemConfigBuilder, RejectsNonPositiveNStar) {
  expect_rejects(valid_builder().quadratic_speedup(0.46, 0.0), "N_star");
  expect_rejects(valid_builder().quadratic_speedup(0.46, -1e6), "N_star");
}

TEST(SystemConfigBuilder, RejectsNonPositiveKappa) {
  expect_rejects(valid_builder().quadratic_speedup(0.0, 1e6), "kappa");
}

TEST(SystemConfigBuilder, RejectsLevelCountMismatch) {
  // 3 rates for 2 overhead levels.
  expect_rejects(valid_builder().failure_rates_per_day({8.0, 4.0, 2.0}, 1e6),
                 "failure_rates");
}

TEST(SystemConfigBuilder, RejectsNonPositiveRateNamingTheIndex) {
  expect_rejects(valid_builder().failure_rates_per_day({8.0, 0.0}, 1e6),
                 "failure_rates[1]");
  expect_rejects(valid_builder().failure_rates_per_day({-8.0, 4.0}, 1e6),
                 "failure_rates[0]");
}

TEST(SystemConfigBuilder, RejectsNonPositiveBaselineScale) {
  expect_rejects(valid_builder().failure_rates_per_day({8.0, 4.0}, 0.0),
                 "baseline_scale");
}

TEST(SystemConfigBuilder, RejectsMissingLevels) {
  SystemConfigBuilder builder;
  builder.te_core_days(3e6)
      .quadratic_speedup(0.46, 1e6)
      .failure_rates_per_day({4.0}, 1e6);
  expect_rejects(builder, "level");
}

TEST(SystemConfigBuilder, RejectsNegativeOverheadNamingTheField) {
  expect_rejects(
      valid_builder().levels({{model::Overhead::constant(-1.0),
                               model::Overhead::constant(1.0)},
                              {model::Overhead::constant(1.0),
                               model::Overhead::constant(1.0)}}),
      "levels[0].checkpoint");
  expect_rejects(
      valid_builder().levels({{model::Overhead::constant(1.0),
                               model::Overhead::constant(1.0)},
                              {model::Overhead::constant(1.0),
                               {1.0, -0.5, model::Scaling::kLinear}}}),
      "levels[1].recovery");
}

TEST(SystemConfigBuilder, RejectsNegativeAllocation) {
  expect_rejects(valid_builder().allocation_seconds(-1.0),
                 "allocation_seconds");
}

TEST(SystemConfigBuilder, RejectsNegativeMaxScale) {
  expect_rejects(valid_builder().max_scale(-1.0), "max_scale");
}

}  // namespace
}  // namespace mlcr::svc
