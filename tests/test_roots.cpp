#include "num/roots.h"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace mlcr::num;

TEST(Bisect, FindsSqrtTwo) {
  const auto r = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.root, std::sqrt(2.0), 1e-8);
}

TEST(Bisect, ReportsNonBracketing) {
  const auto r = bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0);
  EXPECT_FALSE(r.converged);
}

TEST(Bisect, ExactEndpointRoot) {
  const auto r = bisect([](double x) { return x; }, 0.0, 1.0);
  ASSERT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.root, 0.0);
}

TEST(Bisect, RespectsCoarseTolerance) {
  // The paper stops bisection on N when the bracket is below 0.5.
  RootOptions opts;
  opts.x_tolerance = 0.5;
  const auto r =
      bisect([](double x) { return x - 1234.567; }, 0.0, 1e6, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.root, 1234.567, 0.5);
  EXPECT_LT(r.iterations, 40);
}

TEST(Bisect, DecreasingFunction) {
  const auto r = bisect([](double x) { return 5.0 - x; }, 0.0, 10.0);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.root, 5.0, 1e-8);
}

TEST(Newton, QuadraticConvergence) {
  const auto r = newton([](double x) { return x * x - 2.0; },
                        [](double x) { return 2.0 * x; }, 1.0);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.root, std::sqrt(2.0), 1e-10);
  EXPECT_LT(r.iterations, 10);
}

TEST(Newton, FailsOnZeroDerivative) {
  const auto r = newton([](double x) { return x * x + 1.0; },
                        [](double) { return 0.0; }, 0.0);
  EXPECT_FALSE(r.converged);
}

TEST(Brent, FindsRootFasterThanBisect) {
  auto f = [](double x) { return std::cos(x) - x; };
  const auto rb = brent(f, 0.0, 1.0);
  ASSERT_TRUE(rb.converged);
  EXPECT_NEAR(rb.root, 0.7390851332151607, 1e-8);
  const auto ri = bisect(f, 0.0, 1.0);
  ASSERT_TRUE(ri.converged);
  EXPECT_LE(rb.iterations, ri.iterations);
}

TEST(Brent, NonBracketingReturnsFalse) {
  const auto r = brent([](double x) { return x * x + 1.0; }, -2.0, 2.0);
  EXPECT_FALSE(r.converged);
}

TEST(BracketsRoot, DetectsSignChange) {
  EXPECT_TRUE(brackets_root([](double x) { return x - 0.5; }, 0.0, 1.0));
  EXPECT_FALSE(brackets_root([](double x) { return x + 2.0; }, 0.0, 1.0));
}

class PolynomialRootTest : public ::testing::TestWithParam<double> {};

TEST_P(PolynomialRootTest, BisectFindsShiftedRoot) {
  const double root = GetParam();
  const auto r = bisect([root](double x) { return (x - root) * 3.0; },
                        root - 10.0, root + 10.0);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.root, root, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(SweepRoots, PolynomialRootTest,
                         ::testing::Values(-1e6, -3.25, 0.0, 1.5, 797.0,
                                           81746.0));

}  // namespace
