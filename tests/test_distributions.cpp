#include "stat/distributions.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace {

using namespace mlcr::stat;
using mlcr::common::Rng;

TEST(Exponential, MeanMatches) {
  Rng rng(1);
  Exponential d(0.5);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / kSamples, 2.0, 0.05);
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
}

TEST(Exponential, Memoryless) {
  // P(X > s + t | X > s) == P(X > t): compare tail fractions.
  Rng rng(2);
  Exponential d(1.0);
  int beyond1 = 0, beyond2_given1 = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = d.sample(rng);
    if (x > 1.0) {
      ++beyond1;
      if (x > 2.0) ++beyond2_given1;
    }
  }
  const double conditional = static_cast<double>(beyond2_given1) / beyond1;
  EXPECT_NEAR(conditional, std::exp(-1.0), 0.01);
}

TEST(Exponential, RejectsNonPositiveRate) {
  EXPECT_THROW(Exponential(0.0), mlcr::common::Error);
  EXPECT_THROW(Exponential(-1.0), mlcr::common::Error);
}

TEST(Weibull, ShapeOneIsExponential) {
  Rng rng(3);
  Weibull w(1.0, 4.0);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += w.sample(rng);
  EXPECT_NEAR(sum / kSamples, 4.0, 0.1);
}

TEST(Weibull, MeanUsesGamma) {
  Weibull w(2.0, 1.0);
  // mean = scale * Gamma(1.5) = sqrt(pi)/2
  EXPECT_NEAR(w.mean(), std::sqrt(std::acos(-1.0)) / 2.0, 1e-9);
}

TEST(Weibull, RejectsBadParameters) {
  EXPECT_THROW(Weibull(0.0, 1.0), mlcr::common::Error);
  EXPECT_THROW(Weibull(1.0, 0.0), mlcr::common::Error);
}

TEST(Factories, ProduceWorkingDistributions) {
  Rng rng(4);
  const auto e = make_exponential(2.0);
  const auto w = make_weibull(1.5, 3.0);
  EXPECT_GT(e->sample(rng), 0.0);
  EXPECT_GT(w->sample(rng), 0.0);
  EXPECT_DOUBLE_EQ(e->mean(), 0.5);
}

class ExponentialRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(ExponentialRateSweep, SampleMeanTracksRate) {
  Rng rng(42);
  Exponential d(GetParam());
  double sum = 0.0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) sum += d.sample(rng);
  const double mean = sum / kSamples;
  EXPECT_NEAR(mean, d.mean(), d.mean() * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Rates, ExponentialRateSweep,
                         ::testing::Values(0.01, 0.1, 1.0, 10.0, 1000.0));

}  // namespace
