// End-to-end tests of the FTI-like multilevel checkpoint library: durability
// and bit-exact recovery per level, including real Reed-Solomon rebuilds of
// lost shards and partner-copy fetches after node crashes.
#include "fti/fti.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace {

using namespace mlcr;
using namespace mlcr::fti;
using cluster::Bytes;
using cluster::Payload;
using vmpi::Engine;
using vmpi::RankTask;

cluster::ClusterConfig small_cluster() {
  cluster::ClusterConfig config;
  config.nodes = 8;
  config.ranks_per_node = 2;
  config.rs_group_size = 4;
  return config;
}

Payload payload_for(int rank, int version) {
  Payload p;
  p.bytes.resize(64);
  for (std::size_t i = 0; i < p.bytes.size(); ++i) {
    p.bytes[i] = static_cast<std::uint8_t>(rank * 37 + version * 11 + i);
  }
  return p;
}

RankTask do_checkpoint(Fti& fti, int rank, int level, int version) {
  co_await fti.checkpoint(rank, level, payload_for(rank, version));
}

RankTask do_restore(Fti& fti, int rank, std::optional<Payload>* out) {
  *out = co_await fti.restore(rank);
}

/// Runs one collective checkpoint of all ranks at `level`.
void run_checkpoint(Engine& engine, cluster::Cluster& cl, Fti& fti, int level,
                    int version) {
  for (int rank = 0; rank < cl.rank_count(); ++rank) {
    engine.spawn(do_checkpoint(fti, rank, level, version));
  }
  engine.run();
}

std::optional<Payload> run_restore(Engine& engine, Fti& fti, int rank) {
  std::optional<Payload> out;
  engine.spawn(do_restore(fti, rank, &out));
  engine.run();
  return out;
}

class FtiTest : public ::testing::Test {
 protected:
  FtiTest() : cluster_(small_cluster()), fti_(engine_, cluster_, FtiConfig{}) {}

  Engine engine_;
  cluster::Cluster cluster_;
  Fti fti_;
};

TEST_F(FtiTest, Level1RoundTrip) {
  run_checkpoint(engine_, cluster_, fti_, 1, 1);
  for (int rank : {0, 7, 15}) {
    const auto restored = run_restore(engine_, fti_, rank);
    ASSERT_TRUE(restored.has_value()) << rank;
    EXPECT_EQ(restored->bytes, payload_for(rank, 1).bytes) << rank;
  }
}

TEST_F(FtiTest, Level1LostOnNodeCrash) {
  run_checkpoint(engine_, cluster_, fti_, 1, 1);
  cluster_.kill_node(0);
  cluster_.revive_node(0);
  const auto restored = run_restore(engine_, fti_, 0);
  EXPECT_FALSE(restored.has_value());
}

TEST_F(FtiTest, Level2SurvivesSingleNodeCrash) {
  run_checkpoint(engine_, cluster_, fti_, 2, 1);
  cluster_.kill_node(0);
  cluster_.revive_node(0);
  // Ranks 0 and 1 live on node 0; their replicas sit on node 1.
  for (int rank : {0, 1}) {
    const auto restored = run_restore(engine_, fti_, rank);
    ASSERT_TRUE(restored.has_value()) << rank;
    EXPECT_EQ(restored->bytes, payload_for(rank, 1).bytes) << rank;
  }
}

TEST_F(FtiTest, Level2LostWhenPartnerAlsoCrashes) {
  run_checkpoint(engine_, cluster_, fti_, 2, 1);
  cluster_.kill_node(0);
  cluster_.kill_node(1);  // adjacent partner
  cluster_.revive_node(0);
  cluster_.revive_node(1);
  const auto restored = run_restore(engine_, fti_, 0);
  EXPECT_FALSE(restored.has_value());
}

TEST_F(FtiTest, Level3RebuildsLostShardViaReedSolomon) {
  run_checkpoint(engine_, cluster_, fti_, 3, 1);
  cluster_.kill_node(2);
  cluster_.revive_node(2);
  // Both ranks of node 2 must be rebuilt bit-exactly from group survivors.
  for (int rank : {4, 5}) {
    const auto restored = run_restore(engine_, fti_, rank);
    ASSERT_TRUE(restored.has_value()) << rank;
    EXPECT_EQ(restored->bytes, payload_for(rank, 1).bytes) << rank;
  }
}

TEST_F(FtiTest, Level3SurvivesNonAdjacentCrashesInDifferentGroups) {
  run_checkpoint(engine_, cluster_, fti_, 3, 1);
  cluster_.kill_node(1);  // group 0
  cluster_.kill_node(5);  // group 1
  cluster_.revive_node(1);
  cluster_.revive_node(5);
  for (int rank : {2, 3, 10, 11}) {
    const auto restored = run_restore(engine_, fti_, rank);
    ASSERT_TRUE(restored.has_value()) << rank;
    EXPECT_EQ(restored->bytes, payload_for(rank, 1).bytes) << rank;
  }
}

TEST_F(FtiTest, Level3FailsWhenTooManyGroupNodesDie) {
  run_checkpoint(engine_, cluster_, fti_, 3, 1);
  // Two dead nodes in group 0 lose 2 data + up to 2 parity shards, which
  // exceeds the default m = 2.
  cluster_.kill_node(0);
  cluster_.kill_node(1);
  cluster_.revive_node(0);
  cluster_.revive_node(1);
  const auto restored = run_restore(engine_, fti_, 0);
  EXPECT_FALSE(restored.has_value());
}

TEST_F(FtiTest, Level4SurvivesEverything) {
  run_checkpoint(engine_, cluster_, fti_, 4, 1);
  for (int node = 0; node < cluster_.node_count(); ++node) {
    cluster_.kill_node(node);
    cluster_.revive_node(node);
  }
  for (int rank : {0, 9, 15}) {
    const auto restored = run_restore(engine_, fti_, rank);
    ASSERT_TRUE(restored.has_value()) << rank;
    EXPECT_EQ(restored->bytes, payload_for(rank, 1).bytes) << rank;
  }
}

TEST_F(FtiTest, RestorePrefersNewestRecoverableRecord) {
  run_checkpoint(engine_, cluster_, fti_, 4, 1);  // old, durable
  run_checkpoint(engine_, cluster_, fti_, 1, 2);  // new, fragile
  // Without failures the newest (level-1, version 2) wins.
  auto restored = run_restore(engine_, fti_, 3);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->bytes, payload_for(3, 2).bytes);
  // After the node crash the library falls back to the older PFS copy.
  cluster_.kill_node(1);
  cluster_.revive_node(1);
  restored = run_restore(engine_, fti_, 3);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->bytes, payload_for(3, 1).bytes);
}

TEST_F(FtiTest, CheckpointCostsOrderedByLevel) {
  // C1 <= C2 <= C3 <= C4 for equal payloads (paper Section II).
  double cost[5] = {0, 0, 0, 0, 0};
  for (int level = 1; level <= 4; ++level) {
    cluster::Cluster cl(small_cluster());
    Engine engine;
    Fti fti(engine, cl, FtiConfig{});
    const double t0 = engine.now();
    for (int rank = 0; rank < cl.rank_count(); ++rank) {
      engine.spawn(do_checkpoint(fti, rank, level, 1));
    }
    engine.run();
    cost[level] = engine.now() - t0;
  }
  EXPECT_LE(cost[1], cost[2]);
  EXPECT_LE(cost[2], cost[3]);
  EXPECT_LE(cost[3], cost[4]);
}

TEST_F(FtiTest, RsRankGroupsAreNodeDisjoint) {
  for (int rank = 0; rank < cluster_.rank_count(); ++rank) {
    const auto group = fti_.rs_rank_group(rank);
    std::set<int> nodes;
    for (int member : group) nodes.insert(cluster_.node_of_rank(member));
    EXPECT_EQ(nodes.size(), group.size()) << "rank " << rank;
  }
}

TEST_F(FtiTest, RejectsBadLevels) {
  Engine engine;
  cluster::Cluster cl(small_cluster());
  Fti fti(engine, cl, FtiConfig{});
  auto bad = [](Fti& f) -> RankTask {
    Payload p;
    p.bytes = Bytes(1, 1);
    co_await f.checkpoint(0, 5, std::move(p));
  };
  engine.spawn(bad(fti));
  EXPECT_THROW(engine.run(), common::Error);
}

TEST_F(FtiTest, PruneBoundsStorageFootprint) {
  for (int round = 1; round <= 6; ++round) {
    run_checkpoint(engine_, cluster_, fti_, ((round - 1) % 4) + 1, round);
  }
  const std::size_t before = fti_.stored_objects();
  fti_.prune(2);
  EXPECT_EQ(fti_.records().size(), 2u);
  EXPECT_LT(fti_.stored_objects(), before);
  // The retained records still restore bit-exactly.
  const auto restored = run_restore(engine_, fti_, 5);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->bytes, payload_for(5, 6).bytes);
}

TEST_F(FtiTest, PruneRemovesEveryObjectOfDroppedLevels) {
  // One round per level, prune to the last record: only level-4 objects
  // (plus nothing else) should remain.
  for (int level = 1; level <= 4; ++level) {
    run_checkpoint(engine_, cluster_, fti_, level, level);
  }
  fti_.prune(1);
  ASSERT_EQ(fti_.records().size(), 1u);
  EXPECT_EQ(fti_.records()[0].level, 4);
  // Remaining objects: exactly one PFS object per rank.
  EXPECT_EQ(fti_.stored_objects(),
            static_cast<std::size_t>(cluster_.rank_count()));
}

TEST_F(FtiTest, PruneKeepingEverythingIsNoop) {
  run_checkpoint(engine_, cluster_, fti_, 1, 1);
  const std::size_t before = fti_.stored_objects();
  fti_.prune(5);
  EXPECT_EQ(fti_.stored_objects(), before);
  EXPECT_EQ(fti_.records().size(), 1u);
}

TEST_F(FtiTest, PruneRejectsZero) {
  EXPECT_THROW(fti_.prune(0), common::Error);
}

TEST_F(FtiTest, RecordsTrackVersionsAndLevels) {
  run_checkpoint(engine_, cluster_, fti_, 1, 1);
  run_checkpoint(engine_, cluster_, fti_, 3, 2);
  ASSERT_EQ(fti_.records().size(), 2u);
  EXPECT_EQ(fti_.records()[0].level, 1);
  EXPECT_EQ(fti_.records()[1].level, 3);
  EXPECT_LT(fti_.records()[0].version, fti_.records()[1].version);
}

}  // namespace
