// mlcr-lint's own test suite: fixture files with known violations (exact
// rule-id + line assertions), suppression behavior, scanner precision
// (comments/strings/deleted functions), and the repo-wide guarantee that
// the real tree is clean — the same check `mlcr_lint_tree` enforces from
// ctest, but failing with a readable diff here.
#include "lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace mlcr::lint {
namespace {

std::string fixture(const std::string& relative) {
  return std::string(MLCR_SOURCE_DIR "/tests/lint_fixtures/") + relative;
}

std::string tree(const std::string& relative) {
  return std::string(MLCR_SOURCE_DIR "/") + relative;
}

/// (line, rule) pairs, sorted, for compact assertions.
std::vector<std::pair<int, std::string>> hits(
    const std::vector<Finding>& findings) {
  std::vector<std::pair<int, std::string>> out;
  out.reserve(findings.size());
  for (const Finding& finding : findings) {
    out.emplace_back(finding.line, finding.rule);
  }
  std::sort(out.begin(), out.end());
  return out;
}

using Hits = std::vector<std::pair<int, std::string>>;

TEST(MlcrLint, RawMemoryFixtureExactHits) {
  const auto found = hits(lint_paths({fixture("src/opt/raw_memory.cpp")}));
  const Hits expected = {{5, "raw-memory"},
                         {6, "raw-memory"},
                         {7, "raw-memory"},
                         {8, "raw-memory"},
                         {9, "raw-memory"}};
  EXPECT_EQ(found, expected);
}

TEST(MlcrLint, NakedLockFixtureExactHits) {
  const auto found = hits(lint_paths({fixture("src/svc/naked_lock.cpp")}));
  const Hits expected = {{5, "naked-lock"}, {6, "naked-lock"}};
  EXPECT_EQ(found, expected);
}

TEST(MlcrLint, NetLocaleFixtureExactHits) {
  const auto found = hits(lint_paths({fixture("src/net/locale.cpp")}));
  const Hits expected = {{9, "net-locale"},
                         {10, "net-locale"},
                         {11, "net-locale"},
                         {12, "net-locale"}};
  EXPECT_EQ(found, expected);
}

TEST(MlcrLint, NetBlockingCallFixtureExactHits) {
  // Raw syscalls fire; suppressed, member-qualified, and
  // namespace-qualified spellings do not.
  const auto found =
      hits(lint_paths({fixture("src/net/reactor_blocking.cpp")}));
  const Hits expected = {{5, "net-blocking-call"},
                         {6, "net-blocking-call"},
                         {7, "net-blocking-call"},
                         {8, "net-blocking-call"},
                         {9, "net-blocking-call"},
                         {10, "net-blocking-call"}};
  EXPECT_EQ(found, expected);
}

TEST(MlcrLint, NetBlockingCallOnlyAppliesToReactorManagedSources) {
  // The identical contents outside the reactor/server scope are clean —
  // src/net/socket.cpp is the sanctioned home for raw syscalls.
  const std::string code = "void f(int fd, char* b) { read(fd, b, 1); }\n";
  EXPECT_EQ(lint_file("src/net/server.cpp", code).size(), 1u);
  EXPECT_EQ(lint_file("src/net/reactor.cpp", code).size(), 1u);
  EXPECT_TRUE(lint_file("src/net/socket.cpp", code).empty());
  EXPECT_TRUE(lint_file("src/net/client.cpp", code).empty());
}

TEST(MlcrLint, UnguardedMathFixtureExactHits) {
  const auto found =
      hits(lint_paths({fixture("src/model/unguarded_math.cpp")}));
  const Hits expected = {{5, "unguarded-math"},
                         {6, "unguarded-math"},
                         {7, "unguarded-math"},
                         {8, "unguarded-math"}};
  EXPECT_EQ(found, expected);
}

TEST(MlcrLint, NondeterminismFixtureExactHits) {
  const auto found =
      hits(lint_paths({fixture("src/opt/nondeterminism.cpp")}));
  const Hits expected = {{7, "solver-nondeterminism"},
                         {8, "solver-nondeterminism"},
                         {9, "solver-nondeterminism"},
                         {10, "solver-nondeterminism"}};
  EXPECT_EQ(found, expected);
}

TEST(MlcrLint, HeaderHygieneFixtureExactHits) {
  const auto found =
      hits(lint_paths({fixture("src/model/missing_pragma.h")}));
  const Hits expected = {{1, "pragma-once"}, {5, "using-namespace-header"}};
  EXPECT_EQ(found, expected);
}

TEST(MlcrLint, SuppressionsSilenceBothForms) {
  // Same-line and standalone-comment-above allow() directives.
  EXPECT_TRUE(lint_paths({fixture("src/opt/suppressed.cpp")}).empty());
}

TEST(MlcrLint, CleanFixtureHasNoFindings) {
  EXPECT_TRUE(lint_paths({fixture("clean/src/net/clean.cpp")}).empty());
}

TEST(MlcrLint, ScopingOnlyAppliesInsideTheNamedDirectories) {
  // The same banned tokens outside any scoped directory: only the
  // globally-scoped rules (raw-memory, naked-lock) may fire.
  const auto findings =
      lint_file("tests/whatever.cpp", "double d = std::strtod(s, nullptr) + "
                                      "std::exp(x) + rand();\n");
  EXPECT_TRUE(findings.empty());
}

TEST(MlcrLint, DeletedFunctionsAreNotDeallocation) {
  EXPECT_TRUE(
      lint_file("src/opt/x.cpp", "struct S { S(const S&) = delete; };\n")
          .empty());
}

TEST(MlcrLint, CommentsAndStringsAreNotCode) {
  const auto findings = lint_file(
      "src/opt/x.cpp",
      "// new delete malloc(3) .lock() rand() std::exp(x)\n"
      "/* delete p; */\n"
      "const char* s = \"new double; .unlock(); time(nullptr)\";\n");
  EXPECT_TRUE(findings.empty());
}

TEST(MlcrLint, DisabledRulesAreSkipped) {
  Options options;
  options.disabled_rules.push_back("raw-memory");
  EXPECT_TRUE(
      lint_file("src/opt/x.cpp", "int* p = new int;\n", options).empty());
  EXPECT_EQ(lint_file("src/opt/x.cpp", "int* p = new int;\n").size(), 1u);
}

TEST(MlcrLint, MissingPathReportsIoErrorFinding) {
  const auto findings = lint_paths({fixture("does/not/exist.cpp")});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "io-error");
}

TEST(MlcrLint, DirectoryWalkSkipsFixturesButExplicitFilesScan) {
  // Walking tests/ must not surface the deliberate violations planted in
  // tests/lint_fixtures/ (they are skipped); naming a fixture explicitly
  // always scans it.
  const auto walk = lint_paths({tree("tests")});
  for (const Finding& finding : walk) {
    EXPECT_EQ(finding.path.find("lint_fixtures"), std::string::npos)
        << finding.path;
  }
  EXPECT_FALSE(lint_paths({fixture("src/opt/raw_memory.cpp")}).empty());
}

TEST(MlcrLint, RealTreeIsClean) {
  const auto findings = lint_paths(
      {tree("src"), tree("examples"), tree("bench"), tree("tests")});
  for (const Finding& finding : findings) {
    ADD_FAILURE() << finding.path << ":" << finding.line << ": "
                  << finding.rule << ": " << finding.message;
  }
}

TEST(MlcrLint, RuleTableCoversEveryEmittedRule) {
  // Every fixture hit must use a rule id documented in rules().
  std::vector<std::string> known;
  for (const RuleInfo& rule : rules()) known.push_back(rule.id);
  const auto findings = lint_paths({fixture("src")});
  for (const Finding& finding : findings) {
    EXPECT_NE(std::find(known.begin(), known.end(), finding.rule),
              known.end())
        << finding.rule;
  }
  EXPECT_FALSE(findings.empty());
}

}  // namespace
}  // namespace mlcr::lint
