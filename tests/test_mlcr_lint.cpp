// mlcr-lint's own test suite: fixture files with known violations (exact
// rule-id + line assertions), suppression behavior, scanner precision
// (comments/strings/deleted functions), the two-pass graph rules (witness
// paths pinned against tests/lint_fixtures/graph/), output renderers (SARIF
// validated with the repo's own JSON parser), and the repo-wide guarantee
// that the real tree is clean under both passes — the same checks
// `mlcr_lint_tree` / `mlcr_lint_graph_tree` enforce from ctest, but failing
// with a readable diff here.
#include "lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "graph_rules.h"
#include "index.h"
#include "net/json.h"

namespace mlcr::lint {
namespace {

std::string fixture(const std::string& relative) {
  return std::string(MLCR_SOURCE_DIR "/tests/lint_fixtures/") + relative;
}

std::string tree(const std::string& relative) {
  return std::string(MLCR_SOURCE_DIR "/") + relative;
}

/// (line, rule) pairs, sorted, for compact assertions.
std::vector<std::pair<int, std::string>> hits(
    const std::vector<Finding>& findings) {
  std::vector<std::pair<int, std::string>> out;
  out.reserve(findings.size());
  for (const Finding& finding : findings) {
    out.emplace_back(finding.line, finding.rule);
  }
  std::sort(out.begin(), out.end());
  return out;
}

using Hits = std::vector<std::pair<int, std::string>>;

TEST(MlcrLint, RawMemoryFixtureExactHits) {
  const auto found = hits(lint_paths({fixture("src/opt/raw_memory.cpp")}));
  const Hits expected = {{5, "raw-memory"},
                         {6, "raw-memory"},
                         {7, "raw-memory"},
                         {8, "raw-memory"},
                         {9, "raw-memory"}};
  EXPECT_EQ(found, expected);
}

TEST(MlcrLint, NakedLockFixtureExactHits) {
  const auto found = hits(lint_paths({fixture("src/svc/naked_lock.cpp")}));
  const Hits expected = {{5, "naked-lock"}, {6, "naked-lock"}};
  EXPECT_EQ(found, expected);
}

TEST(MlcrLint, NetLocaleFixtureExactHits) {
  const auto found = hits(lint_paths({fixture("src/net/locale.cpp")}));
  const Hits expected = {{9, "net-locale"},
                         {10, "net-locale"},
                         {11, "net-locale"},
                         {12, "net-locale"}};
  EXPECT_EQ(found, expected);
}

TEST(MlcrLint, NetBlockingCallFixtureExactHits) {
  // Raw syscalls fire; suppressed, member-qualified, and
  // namespace-qualified spellings do not.
  const auto found =
      hits(lint_paths({fixture("src/net/reactor_blocking.cpp")}));
  const Hits expected = {{5, "net-blocking-call"},
                         {6, "net-blocking-call"},
                         {7, "net-blocking-call"},
                         {8, "net-blocking-call"},
                         {9, "net-blocking-call"},
                         {10, "net-blocking-call"}};
  EXPECT_EQ(found, expected);
}

TEST(MlcrLint, NetBlockingCallOnlyAppliesToReactorManagedSources) {
  // The identical contents outside the reactor/server scope are clean —
  // src/net/socket.cpp is the sanctioned home for raw syscalls.
  const std::string code = "void f(int fd, char* b) { read(fd, b, 1); }\n";
  EXPECT_EQ(lint_file("src/net/server.cpp", code).size(), 1u);
  EXPECT_EQ(lint_file("src/net/reactor.cpp", code).size(), 1u);
  EXPECT_TRUE(lint_file("src/net/socket.cpp", code).empty());
  EXPECT_TRUE(lint_file("src/net/client.cpp", code).empty());
}

TEST(MlcrLint, UnguardedMathFixtureExactHits) {
  const auto found =
      hits(lint_paths({fixture("src/model/unguarded_math.cpp")}));
  const Hits expected = {{5, "unguarded-math"},
                         {6, "unguarded-math"},
                         {7, "unguarded-math"},
                         {8, "unguarded-math"}};
  EXPECT_EQ(found, expected);
}

TEST(MlcrLint, NondeterminismFixtureExactHits) {
  const auto found =
      hits(lint_paths({fixture("src/opt/nondeterminism.cpp")}));
  const Hits expected = {{7, "solver-nondeterminism"},
                         {8, "solver-nondeterminism"},
                         {9, "solver-nondeterminism"},
                         {10, "solver-nondeterminism"}};
  EXPECT_EQ(found, expected);
}

TEST(MlcrLint, HeaderHygieneFixtureExactHits) {
  const auto found =
      hits(lint_paths({fixture("src/model/missing_pragma.h")}));
  const Hits expected = {{1, "pragma-once"}, {5, "using-namespace-header"}};
  EXPECT_EQ(found, expected);
}

TEST(MlcrLint, SuppressionsSilenceBothForms) {
  // Same-line and standalone-comment-above allow() directives.
  EXPECT_TRUE(lint_paths({fixture("src/opt/suppressed.cpp")}).empty());
}

TEST(MlcrLint, CleanFixtureHasNoFindings) {
  EXPECT_TRUE(lint_paths({fixture("clean/src/net/clean.cpp")}).empty());
}

TEST(MlcrLint, ScopingOnlyAppliesInsideTheNamedDirectories) {
  // The same banned tokens outside any scoped directory: only the
  // globally-scoped rules (raw-memory, naked-lock) may fire.
  const auto findings =
      lint_file("tests/whatever.cpp", "double d = std::strtod(s, nullptr) + "
                                      "std::exp(x) + rand();\n");
  EXPECT_TRUE(findings.empty());
}

TEST(MlcrLint, DeletedFunctionsAreNotDeallocation) {
  EXPECT_TRUE(
      lint_file("src/opt/x.cpp", "struct S { S(const S&) = delete; };\n")
          .empty());
}

TEST(MlcrLint, CommentsAndStringsAreNotCode) {
  const auto findings = lint_file(
      "src/opt/x.cpp",
      "// new delete malloc(3) .lock() rand() std::exp(x)\n"
      "/* delete p; */\n"
      "const char* s = \"new double; .unlock(); time(nullptr)\";\n");
  EXPECT_TRUE(findings.empty());
}

TEST(MlcrLint, DisabledRulesAreSkipped) {
  Options options;
  options.disabled_rules.push_back("raw-memory");
  EXPECT_TRUE(
      lint_file("src/opt/x.cpp", "int* p = new int;\n", options).empty());
  EXPECT_EQ(lint_file("src/opt/x.cpp", "int* p = new int;\n").size(), 1u);
}

TEST(MlcrLint, MissingPathReportsIoErrorFinding) {
  const auto findings = lint_paths({fixture("does/not/exist.cpp")});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "io-error");
}

TEST(MlcrLint, DirectoryWalkSkipsFixturesButExplicitFilesScan) {
  // Walking tests/ must not surface the deliberate violations planted in
  // tests/lint_fixtures/ (they are skipped); naming a fixture explicitly
  // always scans it.
  const auto walk = lint_paths({tree("tests")});
  for (const Finding& finding : walk) {
    EXPECT_EQ(finding.path.find("lint_fixtures"), std::string::npos)
        << finding.path;
  }
  EXPECT_FALSE(lint_paths({fixture("src/opt/raw_memory.cpp")}).empty());
}

TEST(MlcrLint, RealTreeIsClean) {
  const auto findings = lint_paths(
      {tree("src"), tree("examples"), tree("bench"), tree("tests")});
  for (const Finding& finding : findings) {
    ADD_FAILURE() << finding.path << ":" << finding.line << ": "
                  << finding.rule << ": " << finding.message;
  }
}

TEST(MlcrLint, RuleTableCoversEveryEmittedRule) {
  // Every fixture hit must use a rule id documented in rules().
  std::vector<std::string> known;
  for (const RuleInfo& rule : rules()) known.push_back(rule.id);
  const auto findings = lint_paths({fixture("src")});
  for (const Finding& finding : findings) {
    EXPECT_NE(std::find(known.begin(), known.end(), finding.rule),
              known.end())
        << finding.rule;
  }
  EXPECT_FALSE(findings.empty());
}

// --- allow() directive parsing ---------------------------------------------

TEST(MlcrLint, AllowListsParseCommaAndSpaceSeparatedIds) {
  const std::string comma =
      "int* p = new int;  // mlcr-lint: allow(raw-memory, naked-lock)\n";
  EXPECT_TRUE(lint_file("src/opt/x.cpp", comma).empty());
  const std::string space =
      "int* p = new int;  // mlcr-lint: allow(raw-memory naked-lock)\n";
  EXPECT_TRUE(lint_file("src/opt/x.cpp", space).empty());
  // A list that names only other rules must not suppress.
  const std::string miss =
      "int* p = new int;  // mlcr-lint: allow(naked-lock, net-locale)\n";
  EXPECT_EQ(lint_file("src/opt/x.cpp", miss).size(), 1u);
}

// --- io-error findings -----------------------------------------------------

TEST(MlcrLint, IoErrorFindingShapeIsPinned) {
  const auto findings = lint_paths({fixture("does/not/exist.cpp")});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "io-error");
  EXPECT_EQ(findings[0].line, 0);
  EXPECT_EQ(findings[0].message, "no such file or directory");
  EXPECT_EQ(findings[0].path, fixture("does/not/exist.cpp"));
}

// --- graph rules -----------------------------------------------------------

std::vector<Finding> graph_findings(const std::vector<std::string>& files,
                                    const Options& options = Options()) {
  std::vector<Finding> findings;
  const Index index = build_index(files, 1, &findings, nullptr);
  std::vector<Finding> graph = run_graph_rules(index, options);
  findings.insert(findings.end(), std::make_move_iterator(graph.begin()),
                  std::make_move_iterator(graph.end()));
  sort_findings(&findings);
  return findings;
}

TEST(MlcrLintGraph, BlockingTransitiveWitnessPathIsPinned) {
  const auto findings =
      graph_findings({fixture("graph/src/net/gateway.cpp"),
                      fixture("graph/src/svc/side_channel.cpp")});
  // One hit: the buried ::write().  The allow()'d twin reached from
  // handle_quiet stays silent.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "blocking-call-transitive");
  EXPECT_EQ(findings[0].path, fixture("graph/src/svc/side_channel.cpp"));
  EXPECT_EQ(findings[0].line, 7);
  EXPECT_NE(findings[0].message.find(
                "blocking `::write()` reachable from reactor entry "
                "`fx::net::Server::handle_payload` via "
                "fx::net::Server::handle_payload -> "
                "fx::svc::flush_side_channel -> fx::svc::sync_log"),
            std::string::npos)
      << findings[0].message;
}

TEST(MlcrLintGraph, LockOrderCycleWitnessIsPinned) {
  const auto findings = graph_findings({fixture("graph/src/svc/types.h"),
                                        fixture("graph/src/svc/cache.cpp"),
                                        fixture("graph/src/svc/stats.cpp")});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lock-order");
  const std::string& message = findings[0].message;
  EXPECT_NE(message.find("mutex acquisition-order cycle: "
                         "`fx::svc::Cache::mu_` -> `fx::svc::Stats::mu_` -> "
                         "`fx::svc::Cache::mu_`"),
            std::string::npos)
      << message;
  // Both edges carry an acquisition site and a caller chain.
  EXPECT_NE(message.find("`fx::svc::Stats::mu_` acquired with "
                         "`fx::svc::Cache::mu_` held at " +
                         fixture("graph/src/svc/stats.cpp") +
                         ":8 (fx::svc::Cache::refill -> fx::svc::Stats::bump)"),
            std::string::npos)
      << message;
  EXPECT_NE(
      message.find("`fx::svc::Cache::mu_` acquired with "
                    "`fx::svc::Stats::mu_` held at " +
                    fixture("graph/src/svc/cache.cpp") +
                    ":13 (fx::svc::Stats::report -> fx::svc::Cache::evict)"),
      std::string::npos)
      << message;
}

TEST(MlcrLintGraph, DeterminismTaintWitnessesArePinned) {
  const auto findings = graph_findings({fixture("graph/src/svc/canonical.cpp")});
  // Two taints in salt_token (thread id + unordered iteration); the
  // allow()'d stable_token contributes nothing.
  ASSERT_EQ(findings.size(), 2u);
  for (const Finding& finding : findings) {
    EXPECT_EQ(finding.rule, "determinism-taint");
    EXPECT_NE(finding.message.find(
                  "flows into determinism sink `fx::svc::canonical_key` via "
                  "fx::svc::salt_token -> fx::svc::canonical_key"),
              std::string::npos)
        << finding.message;
  }
  EXPECT_EQ(findings[0].line, 13);
  EXPECT_NE(findings[0].message.find("std::this_thread::get_id()"),
            std::string::npos);
  EXPECT_EQ(findings[1].line, 15);
  EXPECT_NE(findings[1].message.find("iteration over unordered `buckets`"),
            std::string::npos);
}

TEST(MlcrLintGraph, MetricNameDriftFlagsTheRarerSpelling) {
  const auto findings =
      graph_findings({fixture("graph/src/common/metric_names.cpp")});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "metric-name-drift");
  EXPECT_EQ(findings[0].line, 15);
  EXPECT_NE(findings[0].message.find(
                "metric name `net.request_total` (used 1x) is one edit from "
                "`net.requests_total` (used 2x)"),
            std::string::npos)
      << findings[0].message;
}

TEST(MlcrLintGraph, HashGroupingRegressionStaysPinned) {
  // The shape SweepEngine::plan_sweep had before its std::map fix: grouping
  // in an unordered_map, then iterating it on the way to canonical_key.
  // Cross-TU on purpose — the sink definition lives in canonical.cpp.
  const auto findings =
      graph_findings({fixture("graph/src/svc/canonical.cpp"),
                      fixture("graph/src/svc/hash_grouping.cpp")});
  bool found = false;
  for (const Finding& finding : findings) {
    if (finding.path != fixture("graph/src/svc/hash_grouping.cpp")) continue;
    found = true;
    EXPECT_EQ(finding.rule, "determinism-taint");
    EXPECT_EQ(finding.line, 16);
    EXPECT_NE(finding.message.find("iteration over unordered `by_key`"),
              std::string::npos)
        << finding.message;
    EXPECT_NE(finding.message.find("fx::svc::group_and_key -> "
                                   "fx::svc::canonical_key"),
              std::string::npos)
        << finding.message;
  }
  EXPECT_TRUE(found);
}

TEST(MlcrLintGraph, DisableSkipsGraphRules) {
  Options options;
  options.disabled_rules.push_back("determinism-taint");
  EXPECT_TRUE(
      graph_findings({fixture("graph/src/svc/canonical.cpp")}, options)
          .empty());
}

TEST(MlcrLintGraph, UnorderedScopingIgnoresSameNameLocalsElsewhere) {
  // `conns` is an unordered member of the real Server, but a plain vector
  // here; with no include path to server.h the iteration must not taint.
  const std::string code =
      "#include <string>\n"
      "#include <vector>\n"
      "namespace fx::svc {\n"
      "std::string canonical_key(const std::string& s) { return s; }\n"
      "std::string all(const std::vector<std::string>& conns) {\n"
      "  std::string out;\n"
      "  for (const auto& c : conns) out += canonical_key(c);\n"
      "  return out;\n"
      "}\n"
      "}  // namespace fx::svc\n";
  const std::string path = testing::TempDir() + "mlcr_lint_scoping.cpp";
  {
    std::ofstream out(path, std::ios::binary);
    out << code;
  }
  EXPECT_TRUE(graph_findings({path, tree("src/net/server.h")}).empty());
  std::remove(path.c_str());
}

TEST(MlcrLintGraph, IndexCapturesIncludesFunctionsAndResolution) {
  std::vector<Finding> findings;
  const Index index = build_index({fixture("graph/src/svc/types.h"),
                                   fixture("graph/src/svc/cache.cpp"),
                                   fixture("graph/src/svc/stats.cpp")},
                                  1, &findings, nullptr);
  EXPECT_TRUE(findings.empty());
  ASSERT_EQ(index.files.size(), 3u);
  // cache.cpp records its quoted include and resolves it into the closure.
  const IndexedFile& cache = index.files[1];
  ASSERT_EQ(cache.includes.size(), 1u);
  EXPECT_EQ(cache.includes[0].target, "types.h");
  EXPECT_FALSE(cache.includes[0].angled);
  EXPECT_NE(index.include_closure[1].count(0), 0u);
  // All four member functions are indexed with qualified names.
  std::vector<std::string> names;
  for (const FunctionInfo& fn : index.functions) names.push_back(fn.name);
  for (const char* expected :
       {"fx::svc::Cache::refill", "fx::svc::Cache::evict",
        "fx::svc::Stats::bump", "fx::svc::Stats::report"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  // stats_->bump() resolves through the receiver's declared type to the
  // single Stats member, not to every `bump` in the index.
  const FunctionInfo* refill = nullptr;
  for (const FunctionInfo& fn : index.functions) {
    if (fn.name == "fx::svc::Cache::refill") refill = &fn;
  }
  ASSERT_NE(refill, nullptr);
  const CallSite* bump = nullptr;
  for (const CallSite& call : refill->calls) {
    if (call.name == "bump") bump = &call;
  }
  ASSERT_NE(bump, nullptr);
  EXPECT_TRUE(bump->member);
  EXPECT_EQ(bump->receiver, "stats_");
  const auto resolved = resolve_call(index, *refill, *bump);
  ASSERT_EQ(resolved.size(), 1u);
  EXPECT_EQ(index.functions[resolved[0]].name, "fx::svc::Stats::bump");
}

TEST(MlcrLintGraph, ParallelLexMatchesSerial) {
  std::vector<std::string> files;
  std::vector<Finding> io;
  files = expand_paths({tree("src/svc"), tree("src/common")}, &io);
  EXPECT_TRUE(io.empty());
  std::vector<Finding> f1;
  std::vector<Finding> f4;
  const Index serial = build_index(files, 1, &f1, nullptr);
  const Index parallel = build_index(files, 4, &f4, nullptr);
  EXPECT_EQ(serial.stats.tokens, parallel.stats.tokens);
  ASSERT_EQ(serial.functions.size(), parallel.functions.size());
  for (std::size_t i = 0; i < serial.functions.size(); ++i) {
    EXPECT_EQ(serial.functions[i].name, parallel.functions[i].name);
  }
  EXPECT_EQ(hits(run_graph_rules(serial)), hits(run_graph_rules(parallel)));
}

TEST(MlcrLintGraph, RealTreeIsCleanUnderGraphRules) {
  // The two-pass analogue of RealTreeIsClean — also the regression pin for
  // the real fixes this analyzer forced: SweepEngine::plan_sweep grouping
  // in std::map and Server::push_drained draining in sorted fd order.
  std::vector<Finding> findings;
  const std::vector<std::string> files = expand_paths(
      {tree("src"), tree("examples"), tree("bench"), tree("tests")},
      &findings);
  const Index index = build_index(files, 0, &findings, nullptr);
  std::vector<Finding> graph = run_graph_rules(index);
  findings.insert(findings.end(), graph.begin(), graph.end());
  for (const Finding& finding : findings) {
    ADD_FAILURE() << finding.path << ":" << finding.line << ": "
                  << finding.rule << ": " << finding.message;
  }
}

// --- renderers -------------------------------------------------------------

TEST(MlcrLint, SarifOutputIsStructurallyValid210) {
  // Findings with and without a line (io-error is line 0): the SARIF must
  // parse with the repo's own JSON parser and carry the 2.1.0 structure.
  auto findings = lint_paths({fixture("does/not/exist.cpp"),
                              fixture("src/opt/raw_memory.cpp")});
  sort_findings(&findings);
  ASSERT_FALSE(findings.empty());
  const std::string sarif = render(findings, Format::kSarif);
  std::string error;
  const auto doc = net::json::parse(sarif, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("version")->as_string(), "2.1.0");
  EXPECT_NE(doc->find("$schema")->as_string().find("sarif-schema-2.1.0"),
            std::string::npos);
  const auto& runs = doc->find("runs")->as_array();
  ASSERT_EQ(runs.size(), 1u);
  const auto* driver = runs[0].find("tool")->find("driver");
  EXPECT_EQ(driver->find("name")->as_string(), "mlcr-lint");
  // The embedded rule table covers every emitted ruleId.
  std::vector<std::string> rule_ids;
  for (const auto& rule : driver->find("rules")->as_array()) {
    rule_ids.push_back(rule.find("id")->as_string());
  }
  const auto& results = runs[0].find("results")->as_array();
  ASSERT_EQ(results.size(), findings.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& result = results[i];
    EXPECT_NE(std::find(rule_ids.begin(), rule_ids.end(),
                        result.find("ruleId")->as_string()),
              rule_ids.end());
    EXPECT_FALSE(result.find("message")->find("text")->as_string().empty());
    const auto* location =
        result.find("locations")->as_array().at(0).find("physicalLocation");
    EXPECT_EQ(location->find("artifactLocation")->find("uri")->as_string(),
              findings[i].path);
    if (findings[i].line == 0) {
      EXPECT_EQ(location->find("region"), nullptr);
    } else {
      EXPECT_EQ(location->find("region")->find("startLine")->as_number(),
                findings[i].line);
    }
  }
}

TEST(MlcrLint, GithubFormatEmitsEscapedAnnotations) {
  const std::vector<Finding> findings = {
      {"src/a.cpp", 3, "raw-memory", "50% more\nnew"},
      {"missing.cpp", 0, "io-error", "no such file or directory"}};
  EXPECT_EQ(render(findings, Format::kGithub),
            "::error file=src/a.cpp,line=3,title=raw-memory::50%25 "
            "more%0Anew\n"
            "::error file=missing.cpp,title=io-error::no such file or "
            "directory\n");
}

TEST(MlcrLint, ParseFormatAcceptsAllFourAndRejectsJunk) {
  EXPECT_TRUE(parse_format("text").has_value());
  EXPECT_TRUE(parse_format("json").has_value());
  EXPECT_TRUE(parse_format("sarif").has_value());
  EXPECT_TRUE(parse_format("github").has_value());
  EXPECT_FALSE(parse_format("xml").has_value());
}

// --- baseline --------------------------------------------------------------

TEST(MlcrLint, BaselineRoundTripAndRatchet) {
  const std::vector<Finding> old_findings = {
      {"src/a.cpp", 3, "raw-memory", "avoid `new`"},
      {"src/b.cpp", 9, "lock-order", "cycle"}};
  const std::string path = testing::TempDir() + "mlcr_lint_baseline.txt";
  {
    std::ofstream out(path, std::ios::binary);
    out << serialize_baseline(old_findings);
  }
  const auto baseline = load_baseline(path);
  std::remove(path.c_str());
  ASSERT_TRUE(baseline.has_value());
  // Known findings are filtered even if they moved lines; new ones survive.
  std::vector<Finding> now = {
      {"src/a.cpp", 30, "raw-memory", "avoid `new`"},
      {"src/c.cpp", 1, "raw-memory", "avoid `new`"}};
  apply_baseline(*baseline, &now);
  ASSERT_EQ(now.size(), 1u);
  EXPECT_EQ(now[0].path, "src/c.cpp");
  EXPECT_FALSE(load_baseline(path + ".missing").has_value());
}

TEST(MlcrLint, CommittedGraphBaselineIsEmpty) {
  // The acceptance bar: real findings get fixed, not baselined away.
  const auto baseline = load_baseline(tree("tools/mlcr-lint/baseline.txt"));
  ASSERT_TRUE(baseline.has_value());
  EXPECT_TRUE(baseline->empty());
}

TEST(MlcrLint, GraphRuleTableCoversGraphRules) {
  std::vector<std::string> ids;
  for (const RuleInfo& rule : graph_rules_info()) ids.push_back(rule.id);
  for (const char* expected : {"blocking-call-transitive", "determinism-taint",
                               "lock-order", "metric-name-drift"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), expected), ids.end())
        << expected;
  }
}

}  // namespace
}  // namespace mlcr::lint
