// Property-style invariants of the analytic model and the optimizer,
// swept over the paper's failure cases.  These encode the qualitative laws
// the paper argues from: costs can only hurt, more failures can only hurt,
// heavier failure environments shrink the optimal scale, and the optimizer
// output always dominates sensible hand-picked baselines.
#include <gtest/gtest.h>

#include "common/units.h"
#include "exp/cases.h"
#include "model/wallclock.h"
#include "opt/algorithm1.h"
#include "opt/planner.h"

namespace {

using namespace mlcr;

class CaseSweep : public ::testing::TestWithParam<exp::FailureCase> {};

TEST_P(CaseSweep, HigherCheckpointCostNeverHelps) {
  const auto base_cfg = exp::make_fti_system(3e6, GetParam());
  const auto mu = model::MuModel::from_rates(base_cfg.rates(), 30 * 86400.0);
  const model::Plan plan{{9000, 4500, 3000, 50}, 5e5};
  const double base = model::expected_wallclock(base_cfg, mu, plan);

  // Inflate each level's checkpoint cost by 2x in turn.
  for (std::size_t level = 0; level < 4; ++level) {
    auto levels = exp::fti_level_overheads();
    levels[level].checkpoint.base *= 2.0;
    levels[level].checkpoint.slope *= 2.0;
    model::FailureRates rates(GetParam().per_day, 1e6);
    model::SystemConfig cfg(common::core_days_to_seconds(3e6),
                            std::make_unique<model::QuadraticSpeedup>(0.46,
                                                                      1e6),
                            std::move(levels), std::move(rates), 60.0);
    EXPECT_GT(model::expected_wallclock(cfg, mu, plan), base)
        << "level " << level;
  }
}

TEST_P(CaseSweep, LongerAllocationNeverHelps) {
  const auto cfg = exp::make_fti_system(3e6, GetParam());
  const auto mu = model::MuModel::from_rates(cfg.rates(), 30 * 86400.0);
  const model::Plan plan{{9000, 4500, 3000, 50}, 5e5};
  model::FailureRates rates(GetParam().per_day, 1e6);
  model::SystemConfig slow(common::core_days_to_seconds(3e6),
                           std::make_unique<model::QuadraticSpeedup>(0.46,
                                                                     1e6),
                           exp::fti_level_overheads(), std::move(rates),
                           /*allocation=*/600.0);
  EXPECT_GT(model::expected_wallclock(slow, mu, plan),
            model::expected_wallclock(cfg, mu, plan));
}

TEST_P(CaseSweep, OptimizerBeatsUniformHandPickedPlans) {
  const auto cfg = exp::make_fti_system(3e6, GetParam());
  const auto r = opt::optimize_multilevel(cfg);
  ASSERT_TRUE(r.converged);
  const auto mu = model::MuModel::from_rates(cfg.rates(), r.wallclock);

  // A selection of plausible hand plans at various scales.
  for (const double n : {2e5, 5e5, 8e5, 1e6}) {
    for (const double x : {100.0, 1000.0, 10000.0}) {
      const model::Plan hand{{x, x, x, std::max(2.0, x / 100.0)}, n};
      const double hand_mu_wallclock =
          model::expected_wallclock(cfg, mu, hand);
      EXPECT_LE(r.wallclock, hand_mu_wallclock * 1.001)
          << "N=" << n << " x=" << x;
    }
  }
}

TEST_P(CaseSweep, DoublingWorkloadLessThanDoublesWallclock) {
  // Overheads scale sub-linearly with Te (checkpoint counts grow ~sqrt),
  // so E(Tw) grows by less than 2x... but at least by ~2x productive.
  const auto small = opt::optimize_multilevel(exp::make_fti_system(
      3e6, GetParam()));
  const auto large = opt::optimize_multilevel(exp::make_fti_system(
      6e6, GetParam()));
  ASSERT_TRUE(small.converged);
  ASSERT_TRUE(large.converged);
  EXPECT_GT(large.wallclock, small.wallclock * 1.5);
  EXPECT_LT(large.wallclock, small.wallclock * 2.5);
}

TEST_P(CaseSweep, EfficiencyBelowIdealAboveZero) {
  const auto cfg = exp::make_fti_system(3e6, GetParam());
  const auto r = opt::optimize_multilevel(cfg);
  ASSERT_TRUE(r.converged);
  const double eff =
      model::efficiency(cfg.te(), r.wallclock, r.plan.scale);
  EXPECT_GT(eff, 0.0);
  EXPECT_LT(eff, 0.46);  // cannot beat the failure-free kappa
}

INSTANTIATE_TEST_SUITE_P(
    PaperCases, CaseSweep,
    ::testing::ValuesIn(exp::paper_failure_cases()),
    [](const ::testing::TestParamInfo<exp::FailureCase>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-' || c == '.') c = '_';
      }
      return name;
    });

TEST(ModelProperties, OptimalScaleMonotoneInFailureRates) {
  // Scaling ALL rates by a factor can only shrink the optimal scale.
  double previous = 1e18;
  for (const double factor : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    std::vector<double> rates{16 * factor, 12 * factor, 8 * factor,
                              4 * factor};
    const auto cfg =
        exp::make_fti_system(3e6, exp::FailureCase{"scaled", rates});
    const auto r = opt::optimize_multilevel(cfg);
    ASSERT_TRUE(r.converged) << factor;
    EXPECT_LE(r.plan.scale, previous * 1.0001) << factor;
    previous = r.plan.scale;
  }
}

TEST(ModelProperties, WallclockMonotoneInFailureRates) {
  double previous = 0.0;
  for (const double factor : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    std::vector<double> rates{16 * factor, 12 * factor, 8 * factor,
                              4 * factor};
    const auto cfg =
        exp::make_fti_system(3e6, exp::FailureCase{"scaled", rates});
    const auto r = opt::optimize_multilevel(cfg);
    ASSERT_TRUE(r.converged) << factor;
    EXPECT_GE(r.wallclock, previous) << factor;
    previous = r.wallclock;
  }
}

TEST(ModelProperties, CheaperPfsGrowsOptimalScale) {
  // Halving the PFS slope (less congestion) should let the optimizer use
  // more cores.
  const exp::FailureCase heavy{"16-12-8-4", {16, 12, 8, 4}};
  const auto base = opt::optimize_multilevel(exp::make_fti_system(3e6, heavy));

  auto levels = exp::fti_level_overheads();
  levels[3].checkpoint.slope *= 0.25;
  model::FailureRates rates(heavy.per_day, 1e6);
  model::SystemConfig cheap(common::core_days_to_seconds(3e6),
                            std::make_unique<model::QuadraticSpeedup>(0.46,
                                                                      1e6),
                            std::move(levels), std::move(rates), 60.0);
  const auto improved = opt::optimize_multilevel(cheap);
  ASSERT_TRUE(base.converged);
  ASSERT_TRUE(improved.converged);
  EXPECT_GT(improved.plan.scale, base.plan.scale);
  EXPECT_LT(improved.wallclock, base.wallclock);
}

TEST(ModelProperties, CapacityCapBindsWhenBelowOptimum) {
  // With the machine capped below the unconstrained optimum, the optimizer
  // sits exactly on the cap.
  const exp::FailureCase light{"4-2-1-0.5", {4, 2, 1, 0.5}};
  const auto unconstrained =
      opt::optimize_multilevel(exp::make_fti_system(3e6, light));
  ASSERT_TRUE(unconstrained.converged);

  model::FailureRates rates(light.per_day, 1e6);
  const double cap = unconstrained.plan.scale * 0.5;
  model::SystemConfig capped(common::core_days_to_seconds(3e6),
                             std::make_unique<model::QuadraticSpeedup>(0.46,
                                                                       1e6),
                             exp::fti_level_overheads(), std::move(rates),
                             60.0, /*max_scale=*/cap);
  const auto r = opt::optimize_multilevel(capped);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.plan.scale, cap, cap * 1e-6);
}

}  // namespace
