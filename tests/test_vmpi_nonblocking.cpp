// Nonblocking point-to-point (Isend/Irecv/Wait) and rooted collectives
// (Reduce, Gather) of the virtual-MPI runtime.
#include "vmpi/comm.h"

#include <gtest/gtest.h>

#include "vmpi/engine.h"
#include "vmpi/task.h"

namespace {

using namespace mlcr::vmpi;

RankTask isend_then_work(Comm& c, double* sent_at) {
  Bytes payload(1000, 0x42);
  Request request = c.isend(0, 1, 1, std::move(payload));
  // isend returns immediately: virtual time has not advanced.
  *sent_at = c.engine().now();
  co_await c.engine().sleep(5.0);  // overlap communication with "compute"
  co_await c.wait(request);
}

RankTask irecv_collector(Comm& c, Bytes* out, double* completed_at) {
  Request request = c.irecv(1, 0, 1);
  co_await c.wait(request);
  *out = request.take();
  *completed_at = c.engine().now();
}

TEST(Nonblocking, IsendOverlapsComputation) {
  Engine engine;
  Comm comm(engine, 2);
  double sent_at = -1.0, received_at = -1.0;
  Bytes got;
  engine.spawn(isend_then_work(comm, &sent_at));
  engine.spawn(irecv_collector(comm, &got, &received_at));
  engine.run();
  EXPECT_DOUBLE_EQ(sent_at, 0.0);  // isend did not block
  EXPECT_EQ(got.size(), 1000u);
  EXPECT_EQ(got[0], 0x42);
  // The transfer completed long before the sender's 5 s of compute.
  EXPECT_LT(received_at, 1.0);
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);  // overlap: total = max, not sum
}

RankTask irecv_before_send(Comm& c, Bytes* out) {
  Request request = c.irecv(0, 1, 2);  // posted early
  co_await c.engine().sleep(1.0);
  co_await c.wait(request);
  *out = request.take();
}

RankTask late_sender(Comm& c) {
  co_await c.engine().sleep(3.0);
  co_await c.send(1, 0, 2, Bytes(4, 9));
}

TEST(Nonblocking, IrecvPostedBeforeSendCompletes) {
  Engine engine;
  Comm comm(engine, 2);
  Bytes got;
  engine.spawn(irecv_before_send(comm, &got));
  engine.spawn(late_sender(comm));
  engine.run();
  EXPECT_EQ(got, Bytes(4, 9));
  EXPECT_GT(engine.now(), 3.0);
}

RankTask waitall_style(Comm& c, int rank, int ranks, int* completed) {
  // Post both directions nonblocking, then wait for all — the ghost
  // exchange pattern of the paper's heat program (Isend/Irecv/Waitall).
  std::vector<Request> requests;
  const int next = (rank + 1) % ranks;
  const int prev = (rank + ranks - 1) % ranks;
  requests.push_back(c.isend(rank, next, 7, Bytes(256, 1)));
  requests.push_back(c.irecv(rank, prev, 7));
  for (auto& request : requests) co_await c.wait(request);
  ++*completed;
}

TEST(Nonblocking, RingExchangeWithWaitall) {
  Engine engine;
  Comm comm(engine, 8);
  int completed = 0;
  for (int rank = 0; rank < 8; ++rank) {
    engine.spawn(waitall_style(comm, rank, 8, &completed));
  }
  engine.run();
  EXPECT_EQ(completed, 8);
}

TEST(Nonblocking, WaitOnCompletedRequestIsImmediate) {
  Engine engine;
  Comm comm(engine, 2);
  double waited_at = -1.0;
  auto worker = [](Comm& c, double* out) -> RankTask {
    Request request = c.isend(0, 1, 3, Bytes(8, 0));
    co_await c.engine().sleep(10.0);
    EXPECT_TRUE(request.done());
    co_await c.wait(request);  // already done: no extra time
    *out = c.engine().now();
  };
  auto receiver = [](Comm& c) -> RankTask { (void)co_await c.recv(1, 0, 3); };
  engine.spawn(worker(comm, &waited_at));
  engine.spawn(receiver(comm));
  engine.run();
  EXPECT_DOUBLE_EQ(waited_at, 10.0);
}

RankTask reduce_worker(Comm& c, int rank, int root, double value,
                       double* out) {
  *out = co_await c.reduce_sum(rank, root, value);
}

TEST(Reduce, OnlyRootReceivesSum) {
  Engine engine;
  Comm comm(engine, 4);
  double results[4] = {-1, -1, -1, -1};
  for (int rank = 0; rank < 4; ++rank) {
    engine.spawn(reduce_worker(comm, rank, /*root=*/2, rank + 1.0,
                               &results[rank]));
  }
  engine.run();
  EXPECT_DOUBLE_EQ(results[2], 10.0);
  EXPECT_DOUBLE_EQ(results[0], 0.0);
  EXPECT_DOUBLE_EQ(results[1], 0.0);
  EXPECT_DOUBLE_EQ(results[3], 0.0);
}

RankTask gather_worker(Comm& c, int rank, int root,
                       std::vector<Bytes>* out) {
  Bytes contribution(4, static_cast<std::uint8_t>(rank));
  *out = co_await c.gather(rank, root, std::move(contribution));
}

TEST(Gather, RootReceivesRankOrderedContributions) {
  Engine engine;
  Comm comm(engine, 4);
  std::vector<Bytes> results[4];
  for (int rank = 0; rank < 4; ++rank) {
    engine.spawn(gather_worker(comm, rank, /*root=*/0, &results[rank]));
  }
  engine.run();
  ASSERT_EQ(results[0].size(), 4u);
  for (int rank = 0; rank < 4; ++rank) {
    EXPECT_EQ(results[0][static_cast<std::size_t>(rank)],
              Bytes(4, static_cast<std::uint8_t>(rank)));
  }
  EXPECT_TRUE(results[1].empty());
  EXPECT_TRUE(results[3].empty());
}

TEST(Gather, CostScalesWithTotalVolume) {
  NetworkModel net;
  net.latency = 1e-3;
  net.bandwidth = 1e6;
  Engine engine;
  Comm comm(engine, 4);
  // Direct model check: total gathered volume dominates the cost.
  Engine engine2;
  Comm comm2(engine2, 4, net);
  std::vector<Bytes> sink[4];
  for (int rank = 0; rank < 4; ++rank) {
    engine2.spawn(gather_worker(comm2, rank, 0, &sink[rank]));
  }
  engine2.run();
  EXPECT_GT(engine2.now(), 0.0);
}

}  // namespace
