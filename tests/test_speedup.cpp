#include "model/speedup.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "num/derivative.h"

namespace {

using namespace mlcr::model;

TEST(LinearSpeedup, ValueAndDerivative) {
  LinearSpeedup s(0.46);
  EXPECT_DOUBLE_EQ(s.value(100.0), 46.0);
  EXPECT_DOUBLE_EQ(s.derivative(12345.0), 0.46);
  EXPECT_TRUE(std::isinf(s.ideal_scale()));
}

TEST(LinearSpeedup, RejectsNonPositiveKappa) {
  EXPECT_THROW(LinearSpeedup(0.0), mlcr::common::Error);
}

TEST(QuadraticSpeedup, MatchesFormula12) {
  // g(N) = -kappa/(2 Nsym) N^2 + kappa N; paper example kappa=0.46, Nsym=1e5.
  QuadraticSpeedup s(0.46, 1e5);
  const double n = 81746.0;
  const double expected = -0.46 / 2e5 * n * n + 0.46 * n;
  EXPECT_NEAR(s.value(n), expected, 1e-9);
  EXPECT_NEAR(s.value(n), 22233.0, 1.0);  // hand-checked from the paper
}

TEST(QuadraticSpeedup, DerivativeZeroAtSymmetryAxis) {
  QuadraticSpeedup s(0.46, 1e5);
  EXPECT_NEAR(s.derivative(1e5), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.ideal_scale(), 1e5);
  EXPECT_GT(s.derivative(5e4), 0.0);
  EXPECT_LT(s.derivative(1.5e5), 0.0);
}

TEST(QuadraticSpeedup, AnalyticDerivativeMatchesNumeric) {
  QuadraticSpeedup s(0.46, 1e5);
  for (double n : {1e3, 2e4, 8e4}) {
    const double numeric =
        mlcr::num::derivative([&](double v) { return s.value(v); }, n);
    EXPECT_NEAR(s.derivative(n), numeric, 1e-6 * std::fabs(numeric) + 1e-9);
  }
}

TEST(QuadraticSpeedup, FromCoefficientsRoundTrip) {
  QuadraticSpeedup original(0.46, 1e5);
  // g = a1 N + a2 N^2 with a1 = kappa, a2 = -kappa/(2 Nsym)
  const auto rebuilt =
      QuadraticSpeedup::from_coefficients(0.46, -0.46 / (2.0 * 1e5));
  EXPECT_NEAR(rebuilt.kappa(), original.kappa(), 1e-12);
  EXPECT_NEAR(rebuilt.n_symmetry(), original.n_symmetry(), 1e-6);
}

TEST(QuadraticSpeedup, FromCoefficientsRejectsConvex) {
  EXPECT_THROW(QuadraticSpeedup::from_coefficients(0.46, 0.001),
               mlcr::common::Error);
}

TEST(AmdahlSpeedup, CapsAtInverseSerialFraction) {
  AmdahlSpeedup s(0.01);
  EXPECT_NEAR(s.value(1.0), 1.0, 1e-12);
  EXPECT_LT(s.value(1e9), 100.0);
  EXPECT_GT(s.value(1e9), 99.0);
}

TEST(AmdahlSpeedup, DerivativeMatchesNumeric) {
  AmdahlSpeedup s(0.05);
  for (double n : {2.0, 10.0, 100.0, 1e4}) {
    const double numeric =
        mlcr::num::derivative([&](double v) { return s.value(v); }, n);
    EXPECT_NEAR(s.derivative(n), numeric,
                1e-5 * std::fabs(numeric) + 1e-12);
  }
}

TEST(TabulatedSpeedup, InterpolatesMeasuredPoints) {
  const std::vector<double> n{128, 256, 512, 1024};
  const std::vector<double> g{60, 110, 190, 300};
  TabulatedSpeedup s(n, g);
  EXPECT_DOUBLE_EQ(s.value(256), 110.0);
  EXPECT_DOUBLE_EQ(s.value(384), 150.0);  // midpoint of 110 and 190
  // below the first point the curve heads to the origin
  EXPECT_DOUBLE_EQ(s.value(64), 30.0);
}

TEST(TabulatedSpeedup, IdealScaleAtPeak) {
  // eddy_uv-like: speedup peaks at 100 cores then declines (Figure 2(b)).
  const std::vector<double> n{10, 50, 100, 200, 400};
  const std::vector<double> g{8, 35, 52, 45, 30};
  TabulatedSpeedup s(n, g);
  EXPECT_DOUBLE_EQ(s.ideal_scale(), 100.0);
}

TEST(TabulatedSpeedup, RejectsUnsortedScales) {
  const std::vector<double> n{10, 5};
  const std::vector<double> g{1, 2};
  EXPECT_THROW(TabulatedSpeedup(n, g), mlcr::common::Error);
}

TEST(Clone, PreservesBehaviour) {
  QuadraticSpeedup s(0.46, 1e5);
  const auto copy = s.clone();
  EXPECT_DOUBLE_EQ(copy->value(5e4), s.value(5e4));
  EXPECT_DOUBLE_EQ(copy->ideal_scale(), s.ideal_scale());
}

// Property: all speedup shapes are increasing on (0, ideal_scale).
class SpeedupMonotoneTest
    : public ::testing::TestWithParam<std::shared_ptr<Speedup>> {};

TEST_P(SpeedupMonotoneTest, IncreasingBelowIdealScale) {
  const auto& s = *GetParam();
  const double hi = std::min(s.ideal_scale(), 1e6);
  double prev = 0.0;
  for (int i = 1; i <= 50; ++i) {
    const double n = hi * i / 50.0;
    const double v = s.value(n);
    EXPECT_GT(v, prev) << "at N=" << n;
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpeedupMonotoneTest,
    ::testing::Values(std::make_shared<LinearSpeedup>(0.46),
                      std::make_shared<QuadraticSpeedup>(0.46, 1e5),
                      std::make_shared<QuadraticSpeedup>(0.9, 1e6),
                      std::make_shared<AmdahlSpeedup>(1e-6)));

}  // namespace
