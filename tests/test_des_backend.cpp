// The DES validation backend (DESIGN.md §14): replays the coarse kernel's
// checkpoint commit / failure rollback sequence through the rank-level
// vmpi/cluster/fti stack.  The contracts pinned here:
//
//   * serial == pooled bit-identity — the DES replica kernel rides the same
//     chunk/span/merge driver as the coarse kernel, so the thread count can
//     never change a bit of the aggregate;
//   * fidelity — at the paper's Figure 4 fusion regime the DES mean
//     wall-clock tracks both the analytic model and the coarse kernel
//     within the validation band;
//   * the registry — backend names are wire strings and metric suffixes,
//     and the coarse backend is exactly the monte_carlo kernel.
#include "sim/des_backend.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/thread_pool.h"
#include "exp/cases.h"
#include "opt/planner.h"
#include "sim/backend.h"
#include "sim/monte_carlo.h"

namespace {

using namespace mlcr;
using namespace mlcr::sim;

struct Planned {
  model::SystemConfig cfg;
  Schedule schedule;
};

// The paper's Figure 4 / Table 2 baseline regime: fusion-scale FTI system,
// 30 core-days, 1024 nodes, 24-18-12-6 failures/day.
Planned fusion_plan() {
  auto cfg = exp::make_fti_system(
      30.0, exp::FailureCase{"fusion", {24, 18, 12, 6}}, 1024.0);
  const auto planned = opt::plan(opt::Solution::kMultilevelOptScale, cfg);
  auto schedule =
      Schedule::from_plan(cfg, planned.full_plan, planned.level_enabled);
  return {cfg, schedule};
}

void expect_bit_identical(const stat::Summary& a, const stat::Summary& b,
                          const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;
  EXPECT_EQ(a.stddev(), b.stddev()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
}

TEST(DesBackend, SerialAndPooledRunsAreBitIdentical) {
  const Planned p = fusion_plan();
  MonteCarloOptions options;
  options.runs = 12;
  options.seed = 0x5eed;
  const MonteCarloResult serial =
      des_backend().run(p.cfg, p.schedule, options, nullptr);
  common::ThreadPool pool(8);
  const MonteCarloResult pooled =
      des_backend().run(p.cfg, p.schedule, options, &pool);
  expect_bit_identical(serial.wallclock, pooled.wallclock, "wallclock");
  expect_bit_identical(serial.productive, pooled.productive, "productive");
  expect_bit_identical(serial.checkpoint, pooled.checkpoint, "checkpoint");
  expect_bit_identical(serial.restart, pooled.restart, "restart");
  expect_bit_identical(serial.rollback, pooled.rollback, "rollback");
  expect_bit_identical(serial.efficiency, pooled.efficiency, "efficiency");
  expect_bit_identical(serial.failures, pooled.failures, "failures");
  EXPECT_EQ(serial.incomplete_runs, pooled.incomplete_runs);
}

TEST(DesBackend, WallclockTracksAnalyticModelAtFusionScale) {
  // The acceptance gate: model-vs-DES error within 5% at the paper's
  // baseline (the coarse kernel's Figure 4 claim, extended to the DES
  // replay).  Measured ~0.6% in practice; 5% is the published band.
  auto cfg = exp::make_fti_system(
      30.0, exp::FailureCase{"fusion", {24, 18, 12, 6}}, 1024.0);
  const auto planned = opt::plan(opt::Solution::kMultilevelOptScale, cfg);
  const auto schedule =
      Schedule::from_plan(cfg, planned.full_plan, planned.level_enabled);
  MonteCarloOptions options;
  options.runs = 16;
  const MonteCarloResult r =
      des_backend().run(cfg, schedule, options, nullptr);
  ASSERT_EQ(r.incomplete_runs, 0);
  const double analytic = planned.optimization.wallclock;
  EXPECT_NEAR(r.wallclock.mean() / analytic, 1.0, 0.05)
      << "des " << r.wallclock.mean() << " analytic " << analytic;
}

TEST(DesBackend, AgreesWithTheCoarseKernelAtFusionScale) {
  // Both backends consume the identical counter-based failure stream, so
  // the residual gap isolates mechanics differences (restart anchoring,
  // recovery level selection) — a few percent, not tens.
  const Planned p = fusion_plan();
  MonteCarloOptions options;
  options.runs = 16;
  const MonteCarloResult coarse =
      coarse_backend().run(p.cfg, p.schedule, options, nullptr);
  const MonteCarloResult des =
      des_backend().run(p.cfg, p.schedule, options, nullptr);
  ASSERT_EQ(coarse.incomplete_runs, 0);
  ASSERT_EQ(des.incomplete_runs, 0);
  EXPECT_NEAR(des.wallclock.mean() / coarse.wallclock.mean(), 1.0, 0.05);
  // Failure counts are a pure function of the shared stream: identical.
  EXPECT_EQ(des.failures.mean(), coarse.failures.mean());
}

TEST(DesBackend, RepeatedRunsAreBitIdentical) {
  const Planned p = fusion_plan();
  MonteCarloOptions options;
  options.runs = 8;
  const MonteCarloResult a =
      des_backend().run(p.cfg, p.schedule, options, nullptr);
  const MonteCarloResult b =
      des_backend().run(p.cfg, p.schedule, options, nullptr);
  expect_bit_identical(a.wallclock, b.wallclock, "wallclock");
  expect_bit_identical(a.efficiency, b.efficiency, "efficiency");
}

TEST(DesBackend, ReplicaPayloadIsDeterministicAndStreamSpecific) {
  const cluster::Payload a = encode_replica_payload(11, 3, 2, 5);
  const cluster::Payload b = encode_replica_payload(11, 3, 2, 5);
  ASSERT_EQ(a.bytes.size(), 64u);
  EXPECT_EQ(a, b);
  // Any coordinate change must change the bytes — the restore verification
  // compares payloads bit-exactly, so collisions would mask wrong-record
  // restores.
  EXPECT_NE(a, encode_replica_payload(12, 3, 2, 5));
  EXPECT_NE(a, encode_replica_payload(11, 4, 2, 5));
  EXPECT_NE(a, encode_replica_payload(11, 3, 3, 5));
  EXPECT_NE(a, encode_replica_payload(11, 3, 2, 6));
}

TEST(BackendRegistry, NamesAreWireStable) {
  // These strings appear in wire payloads, canonical keys and metric names;
  // changing one is a protocol break.
  EXPECT_STREQ(coarse_backend().name(), "coarse");
  EXPECT_STREQ(des_backend().name(), "des");
}

TEST(BackendRegistry, CoarseBackendIsTheMonteCarloKernel) {
  const Planned p = fusion_plan();
  MonteCarloOptions options;
  options.runs = 12;
  const MonteCarloResult direct = monte_carlo(p.cfg, p.schedule, options);
  const MonteCarloResult via_backend =
      coarse_backend().run(p.cfg, p.schedule, options, nullptr);
  expect_bit_identical(direct.wallclock, via_backend.wallclock, "wallclock");
  expect_bit_identical(direct.efficiency, via_backend.efficiency,
                       "efficiency");
  EXPECT_EQ(direct.incomplete_runs, via_backend.incomplete_runs);
}

TEST(BackendRegistry, InvalidOptionsThrowThroughEveryBackend) {
  const Planned p = fusion_plan();
  MonteCarloOptions options;
  options.runs = 0;
  EXPECT_THROW(
      (void)coarse_backend().run(p.cfg, p.schedule, options, nullptr),
      common::Error);
  EXPECT_THROW((void)des_backend().run(p.cfg, p.schedule, options, nullptr),
               common::Error);
}

}  // namespace
