#include "model/failure.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace {

using namespace mlcr::model;

FailureRates paper_rates() {
  // "16-12-8-4" case at baseline N_b = 1e6 cores.
  return FailureRates({16, 12, 8, 4}, 1e6);
}

TEST(FailureRates, BaselineRateMatchesPerDay) {
  const auto r = paper_rates();
  EXPECT_NEAR(r.rate_per_second(0, 1e6), 16.0 / 86400.0, 1e-15);
  EXPECT_NEAR(r.rate_per_second(3, 1e6), 4.0 / 86400.0, 1e-15);
}

TEST(FailureRates, ProportionalToScale) {
  const auto r = paper_rates();
  // half the cores -> half the failure rate (paper Section IV-A)
  EXPECT_NEAR(r.rate_per_second(0, 5e5), 8.0 / 86400.0, 1e-15);
  EXPECT_NEAR(r.rate_per_second(1, 2e6), 24.0 / 86400.0, 1e-15);
}

TEST(FailureRates, ExpectedFailuresOverWindow) {
  const auto r = paper_rates();
  // 16/day at baseline over 2 days -> 32 expected failures.
  EXPECT_NEAR(r.expected_failures(0, 1e6, 2 * 86400.0), 32.0, 1e-9);
}

TEST(FailureRates, DerivativeMatchesProportionality) {
  const auto r = paper_rates();
  // lambda(N) = c N  =>  dlambda/dN = c = lambda(N)/N
  const double n = 3e5;
  EXPECT_NEAR(r.rate_derivative(0, n), r.rate_per_second(0, n) / n, 1e-18);
}

TEST(FailureRates, SuperlinearExponent) {
  FailureRates r({8}, 1e6, 2.0);
  EXPECT_NEAR(r.rate_per_second(0, 2e6), 4.0 * 8.0 / 86400.0, 1e-12);
}

TEST(FailureRates, RejectsBadInputs) {
  EXPECT_THROW(FailureRates({}, 1e6), mlcr::common::Error);
  EXPECT_THROW(FailureRates({1.0}, 0.0), mlcr::common::Error);
  EXPECT_THROW(FailureRates({-1.0}, 1e6), mlcr::common::Error);
}

TEST(MuModel, LinearInScale) {
  MuModel mu({0.005});
  EXPECT_DOUBLE_EQ(mu.mu(0, 81746.0), 0.005 * 81746.0);
  EXPECT_DOUBLE_EQ(mu.mu_derivative(0, 81746.0), 0.005);
}

TEST(MuModel, FromRatesMatchesLambdaTimesWallclock) {
  const auto r = paper_rates();
  const double wallclock = 13.0 * 86400.0;
  const auto mu = MuModel::from_rates(r, wallclock);
  for (std::size_t level = 0; level < 4; ++level) {
    for (double n : {1e5, 5e5, 1e6}) {
      EXPECT_NEAR(mu.mu(level, n), r.expected_failures(level, n, wallclock),
                  1e-9)
          << "level " << level << " N " << n;
    }
  }
}

TEST(MuModel, FromRatesPreservesExponent) {
  FailureRates r({8}, 1e6, 1.5);
  const auto mu = MuModel::from_rates(r, 86400.0);
  EXPECT_NEAR(mu.mu(0, 1e6), 8.0, 1e-9);
  EXPECT_NEAR(mu.mu(0, 4e6), 8.0 * 8.0, 1e-6);  // 4^1.5 = 8
}

TEST(MuModel, RejectsNegativeCoefficients) {
  EXPECT_THROW(MuModel({-0.1}), mlcr::common::Error);
  EXPECT_THROW(MuModel({}), mlcr::common::Error);
}

}  // namespace
