#include "common/units.h"

#include <gtest/gtest.h>

namespace {

using namespace mlcr::common;

TEST(Units, CoreDaysRoundTrip) {
  EXPECT_DOUBLE_EQ(core_days_to_seconds(1.0), 86400.0);
  EXPECT_DOUBLE_EQ(seconds_to_days(core_days_to_seconds(3.5)), 3.5);
}

TEST(Units, PerDayToPerSecond) {
  EXPECT_DOUBLE_EQ(per_day_to_per_second(86400.0), 1.0);
  EXPECT_DOUBLE_EQ(per_day_to_per_second(8.0), 8.0 / 86400.0);
}

TEST(Units, FormatDurationPicksUnit) {
  EXPECT_EQ(format_duration(30.0), "30.00s");
  EXPECT_EQ(format_duration(120.0), "2.00m");
  EXPECT_EQ(format_duration(7200.0), "2.00h");
  EXPECT_EQ(format_duration(2.0 * 86400.0), "2.00d");
}

TEST(Units, FormatCountPicksSuffix) {
  EXPECT_EQ(format_count(500.0), "500");
  EXPECT_EQ(format_count(81746.0), "81.7k");
  EXPECT_EQ(format_count(1e6), "1m");
}

}  // namespace
