#include "num/minimize.h"

#include <gtest/gtest.h>

#include <cmath>

#include "num/derivative.h"
#include "num/fixed_point.h"

namespace {

using namespace mlcr::num;

TEST(GoldenSection, FindsParabolaMinimum) {
  const auto r =
      golden_section([](double x) { return (x - 3.0) * (x - 3.0); }, 0.0, 10.0);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 3.0, 1e-6);
}

TEST(GoldenSection, HandlesBoundaryMinimum) {
  const auto r = golden_section([](double x) { return x; }, 2.0, 5.0);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 2.0, 1e-4);
}

TEST(GridMin, FindsGlobalOnMultimodal) {
  // Two dips; the deeper one is near x = 8.
  auto f = [](double x) {
    return std::min((x - 2) * (x - 2) + 1.0, (x - 8) * (x - 8));
  };
  const auto r = grid_min(f, 0.0, 10.0, 1001);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 8.0, 0.02);
}

TEST(Derivative, MatchesAnalytic) {
  auto f = [](double x) { return x * x * x; };
  EXPECT_NEAR(derivative(f, 2.0), 12.0, 1e-4);
  EXPECT_NEAR(second_derivative(f, 2.0), 12.0, 1e-3);
}

TEST(Convexity, DetectsConvexAndConcave) {
  EXPECT_TRUE(is_convex_on([](double x) { return x * x; }, -5.0, 5.0));
  EXPECT_FALSE(is_convex_on([](double x) { return -x * x; }, -5.0, 5.0));
  EXPECT_TRUE(is_convex_on([](double x) { return 2.0 * x + 1.0; }, 0.0, 9.0));
}

TEST(FixedPoint, ConvergesToSqrt) {
  // Babylonian iteration for sqrt(2) as a 1-vector fixed point.
  auto step = [](const std::vector<double>& v) {
    return std::vector<double>{0.5 * (v[0] + 2.0 / v[0])};
  };
  const auto r = fixed_point(step, {1.0});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.value[0], std::sqrt(2.0), 1e-8);
  EXPECT_LT(r.iterations, 20);
}

TEST(FixedPoint, ReportsNonConvergence) {
  auto step = [](const std::vector<double>& v) {
    return std::vector<double>{-v[0]};  // oscillates forever
  };
  FixedPointOptions opts;
  opts.max_iterations = 50;
  const auto r = fixed_point(step, {1.0}, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 50);
}

TEST(FixedPoint, MultiDimensional) {
  // x <- (y+1)/2, y <- x/2 converges to x = 2/3, y = 1/3.
  auto step = [](const std::vector<double>& v) {
    return std::vector<double>{(v[1] + 1.0) / 2.0, v[0] / 2.0};
  };
  const auto r = fixed_point(step, {0.0, 0.0});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.value[0], 2.0 / 3.0, 1e-7);
  EXPECT_NEAR(r.value[1], 1.0 / 3.0, 1e-7);
}

}  // namespace
