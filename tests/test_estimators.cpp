#include "stat/estimators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "model/failure.h"
#include "sim/trace_io.h"

namespace {

using namespace mlcr;
using stat::Cusum;
using stat::GammaPoisson;
using stat::RateMle;

TEST(RateMleTest, ZeroObservationsYieldZeroRate) {
  RateMle mle;
  EXPECT_EQ(mle.events(), 0u);
  EXPECT_EQ(mle.rate(), 0.0);
  // Exposure without events: the MLE is genuinely zero, not undefined.
  mle.observe(0, 1000.0);
  EXPECT_EQ(mle.rate(), 0.0);
  EXPECT_EQ(mle.exposure_seconds(), 1000.0);
}

TEST(RateMleTest, SingleEvent) {
  RateMle mle;
  mle.observe(1, 250.0);
  EXPECT_EQ(mle.events(), 1u);
  EXPECT_DOUBLE_EQ(mle.rate(), 1.0 / 250.0);
}

TEST(RateMleTest, AccumulatesAcrossBatches) {
  RateMle mle;
  mle.observe(3, 100.0);
  mle.observe(7, 300.0);
  EXPECT_EQ(mle.events(), 10u);
  EXPECT_DOUBLE_EQ(mle.rate(), 10.0 / 400.0);
}

TEST(GammaPoissonTest, PriorFromMeanIsCenteredOnTheMean) {
  const double mean = 16.0 / 86400.0;
  const auto prior = GammaPoisson::from_mean(mean, 4.0);
  EXPECT_DOUBLE_EQ(prior.mean(), mean);
  EXPECT_DOUBLE_EQ(prior.shape(), 4.0);
}

TEST(GammaPoissonTest, ZeroEventsPullTheMeanDown) {
  const double mean = 1.0 / 5400.0;
  auto posterior = GammaPoisson::from_mean(mean, 4.0);
  // A long empty window is evidence the rate is lower than planned.
  posterior.observe(0, 86400.0);
  EXPECT_LT(posterior.mean(), mean);
  EXPECT_GT(posterior.mean(), 0.0);
}

TEST(GammaPoissonTest, SingleEventStaysNearThePrior) {
  const double mean = 1.0 / 5400.0;
  auto posterior = GammaPoisson::from_mean(mean, 4.0);
  posterior.observe(1, 5400.0);
  // One on-schedule event should barely move a 4-pseudo-event prior.
  EXPECT_NEAR(posterior.mean(), mean, 0.05 * mean);
}

TEST(GammaPoissonTest, ConjugateUpdateIsExact) {
  auto posterior = GammaPoisson(2.0, 100.0);
  posterior.observe(5, 400.0);
  EXPECT_DOUBLE_EQ(posterior.shape(), 7.0);
  EXPECT_DOUBLE_EQ(posterior.rate(), 500.0);
  EXPECT_DOUBLE_EQ(posterior.mean(), 7.0 / 500.0);
  EXPECT_DOUBLE_EQ(posterior.variance(), 7.0 / (500.0 * 500.0));
}

TEST(GammaPoissonTest, PosteriorConvergesToTheTrueRate) {
  // Draw a long synthetic trace at the paper's headline rates and check the
  // posterior lands on the true per-second rate for every level.
  const model::FailureRates rates({16.0, 12.0, 8.0, 4.0}, 1e6);
  const double horizon = 30.0 * 86400.0;
  common::Rng rng(1234);
  const auto trace = sim::draw_poisson_trace(rates, 1e6, horizon, rng);
  for (std::size_t level = 0; level < rates.levels(); ++level) {
    const double truth = rates.rate_per_second(level, 1e6);
    // Deliberately mis-centered prior: convergence must come from the data.
    auto posterior = GammaPoisson::from_mean(4.0 * truth, 4.0);
    posterior.observe(trace.arrivals_per_level[level].size(), horizon);
    EXPECT_NEAR(posterior.mean(), truth, 0.15 * truth)
        << "level " << level + 1;
    // And the posterior keeps tightening: sd well under the mean.
    EXPECT_LT(std::sqrt(posterior.variance()), 0.2 * posterior.mean());
  }
}

TEST(GammaPoissonTest, RejectsInvalidParameters) {
  EXPECT_THROW(GammaPoisson(0.0, 1.0), common::Error);
  EXPECT_THROW(GammaPoisson(1.0, -1.0), common::Error);
  EXPECT_THROW((void)GammaPoisson::from_mean(0.0, 4.0), common::Error);
  auto posterior = GammaPoisson(1.0, 1.0);
  EXPECT_THROW(posterior.observe(1, -5.0), common::Error);
}

TEST(CusumTest, StationaryStreamRaisesNoFalseAlarm) {
  // 5 independent stationary streams of 2000 exponential gaps at exactly the
  // reference rate: none may alarm at threshold 8 (ARL at h=8 is far beyond
  // 2000 events).
  const double rate = 1.0 / 5400.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    common::Rng rng(seed);
    Cusum cusum(rate, 2.0, 8.0);
    for (int i = 0; i < 2000; ++i) {
      cusum.observe_gap(rng.exponential(rate));
    }
    EXPECT_FALSE(cusum.alarmed()) << "seed " << seed;
  }
}

TEST(CusumTest, DetectsDoubledRate) {
  const double rate = 1.0 / 5400.0;
  common::Rng rng(42);
  Cusum cusum(rate, 2.0, 8.0);
  int events_to_alarm = 0;
  while (!cusum.alarmed()) {
    cusum.observe_gap(rng.exponential(2.0 * rate));
    ++events_to_alarm;
    ASSERT_LT(events_to_alarm, 1000);
  }
  // Expected detection delay is ~h / E[increment] ~= 26 events; allow slack.
  EXPECT_LT(events_to_alarm, 200);
  EXPECT_GE(cusum.up_statistic(), 8.0);
}

TEST(CusumTest, DetectsHalvedRate) {
  const double rate = 1.0 / 5400.0;
  common::Rng rng(42);
  Cusum cusum(rate, 2.0, 8.0);
  int events_to_alarm = 0;
  while (!cusum.alarmed()) {
    cusum.observe_gap(rng.exponential(0.5 * rate));
    ++events_to_alarm;
    ASSERT_LT(events_to_alarm, 1000);
  }
  EXPECT_GE(cusum.down_statistic(), 8.0);
}

TEST(CusumTest, AlarmLatchesUntilReset) {
  const double rate = 1.0 / 100.0;
  Cusum cusum(rate, 2.0, 1.0);
  while (!cusum.alarmed()) cusum.observe_gap(1.0);  // near-zero gaps: rate up
  // On-rate gaps afterwards do not clear the alarm.
  cusum.observe_gap(100.0);
  EXPECT_TRUE(cusum.alarmed());
  cusum.reset(2.0 * rate);
  EXPECT_FALSE(cusum.alarmed());
  EXPECT_EQ(cusum.up_statistic(), 0.0);
  EXPECT_EQ(cusum.down_statistic(), 0.0);
  EXPECT_DOUBLE_EQ(cusum.reference_rate(), 2.0 * rate);
}

TEST(CusumTest, RejectsInvalidParameters) {
  EXPECT_THROW(Cusum(0.0, 2.0, 8.0), common::Error);
  EXPECT_THROW(Cusum(1.0, 1.0, 8.0), common::Error);
  EXPECT_THROW(Cusum(1.0, 2.0, 0.0), common::Error);
  Cusum cusum(1.0, 2.0, 8.0);
  EXPECT_THROW(cusum.observe_gap(-1.0), common::Error);
}

}  // namespace
