// Codec tests for the mlcrd wire protocol: the JSON layer parses exactly
// RFC 8259, and the protocol layer round-trips every request/report
// bit-identically (encode -> decode -> encode is byte-equal), because
// doubles cross the wire in the same hex-float rendering svc::canonical_key
// uses.  Malformed and non-finite input must come back as structured,
// field-naming errors — never a crash or a silent drop.
#include "net/protocol.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/error.h"
#include "exp/cases.h"
#include "model/speedup.h"
#include "net/json.h"
#include "svc/plan_request.h"
#include "svc/sweep_engine.h"
#include "svc/system_config_builder.h"

namespace mlcr::net {
namespace {

json::Value parse_ok(const std::string& text) {
  std::string error;
  const auto parsed = json::parse(text, &error);
  EXPECT_TRUE(parsed.has_value()) << text << " -> " << error;
  return parsed.value_or(json::Value());
}

// --- json layer -------------------------------------------------------

TEST(NetJson, ParsesScalarsAndNesting) {
  const json::Value v =
      parse_ok(R"({"a":[1,2.5,-3e2],"b":{"c":true,"d":null},"e":"x"})");
  ASSERT_TRUE(v.is_object());
  const auto& a = v.find("a")->as_array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0].as_number(), 1.0);
  EXPECT_EQ(a[1].as_number(), 2.5);
  EXPECT_EQ(a[2].as_number(), -300.0);
  EXPECT_TRUE(v.find("b")->find("c")->as_bool());
  EXPECT_TRUE(v.find("b")->find("d")->is_null());
  EXPECT_EQ(v.find("e")->as_string(), "x");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(NetJson, RejectsMalformedDocuments) {
  std::string error;
  // JSON has no NaN/Infinity literals, no trailing garbage, no bare values
  // past the document, no unterminated containers.
  for (const char* bad :
       {"", "nan", "Infinity", "-Infinity", "{\"a\":1} trailing", "[1,2",
        "{\"a\"}", "{\"a\":}", "[1,]", "01", "1.", "+1", "\"unterminated",
        "{\"dup\" 1}", "tru", "[1 2]"}) {
    error.clear();
    EXPECT_FALSE(json::parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(NetJson, RejectsUnboundedNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  std::string error;
  EXPECT_FALSE(json::parse(deep, &error).has_value());
  EXPECT_NE(error.find("too deep"), std::string::npos) << error;
}

TEST(NetJson, StringEscapesRoundTrip) {
  // Escapes, a control character, and a surrogate pair (U+1F600).
  const json::Value v =
      parse_ok(R"json(["a\"b\\c\/d\n\t\u0001","😀"])json");
  const auto& items = v.as_array();
  EXPECT_EQ(items[0].as_string(), std::string("a\"b\\c/d\n\t\x01"));
  EXPECT_EQ(items[1].as_string(), "\xf0\x9f\x98\x80");
  // dump escapes back to valid JSON that parses to the same value.
  const std::string dumped = json::dump(v);
  EXPECT_EQ(parse_ok(dumped).as_array()[1].as_string(), "\xf0\x9f\x98\x80");
}

TEST(NetJson, RejectsRawControlCharactersInStrings) {
  std::string error;
  EXPECT_FALSE(json::parse("\"a\nb\"", &error).has_value());
}

TEST(NetJson, DumpIsDeterministicAcrossKeyOrder) {
  const json::Value a = parse_ok(R"({"z":1,"a":[true,null],"m":"s"})");
  const json::Value b = parse_ok(R"({"m":"s","a":[true,null],"z":1})");
  EXPECT_EQ(json::dump(a), json::dump(b));
}

TEST(NetJson, DumpRefusesNonFiniteNumbers) {
  EXPECT_THROW((void)json::dump(json::Value(std::nan(""))), common::Error);
  EXPECT_THROW(
      (void)json::dump(json::Value(std::numeric_limits<double>::infinity())),
      common::Error);
}

// --- exact double codec -----------------------------------------------

TEST(NetProtocol, HexFloatDoubleRoundTripIsBitExact) {
  const std::vector<double> values = {
      0.0,
      -0.0,
      0.1,
      1.0 / 3.0,
      -1.234567890123456789e300,
      1e-300,
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::min(),
      6.62607015e-34,
      3.625626e6};
  for (const double value : values) {
    const json::Value encoded = encode_double(value);
    ASSERT_TRUE(encoded.is_string());
    double decoded = 0.0;
    std::string error;
    ASSERT_TRUE(decode_double(encoded, &decoded, &error)) << error;
    // Bit comparison, not ==: catches -0.0 vs 0.0.
    EXPECT_EQ(std::memcmp(&value, &decoded, sizeof(double)), 0)
        << value << " -> " << encoded.as_string();
  }
}

TEST(NetProtocol, PlainJsonNumbersAcceptedOnInput) {
  double decoded = 0.0;
  std::string error;
  ASSERT_TRUE(decode_double(parse_ok("2.5"), &decoded, &error));
  EXPECT_EQ(decoded, 2.5);
}

TEST(NetProtocol, NonFiniteDoublesRejectedBothDirections) {
  EXPECT_THROW((void)encode_double(std::nan("")), common::Error);
  EXPECT_THROW((void)encode_double(std::numeric_limits<double>::infinity()),
               common::Error);
  double out = 0.0;
  std::string error;
  for (const char* bad : {"nan", "inf", "-inf", "infinity", "", "0x1.8p+",
                          "1.5oops"}) {
    error.clear();
    EXPECT_FALSE(decode_double(json::Value(bad), &out, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
  EXPECT_FALSE(decode_double(json::Value(true), &out, &error));
}

// --- request round trips ----------------------------------------------

model::SystemConfig config_with(std::unique_ptr<model::Speedup> curve) {
  svc::SystemConfigBuilder builder;
  builder.te_seconds(1e6)
      .speedup(std::move(curve))
      .failure_rates_per_day({8.0, 4.0}, 1e5)
      .allocation_seconds(60.0)
      .max_scale(1e6);
  builder.add_level(model::Overhead::constant(1.5),
                    model::Overhead::constant(2.5));
  builder.add_level(model::Overhead::linear(5.5, 0.0212),
                    model::Overhead::constant(6.5));
  return builder.build();
}

std::vector<svc::PlanRequest> wire_requests() {
  std::vector<svc::PlanRequest> requests;
  // The paper's quadratic FTI system plus every other wire-encodable
  // speedup family.
  requests.push_back({exp::make_fti_system(3e6, exp::paper_failure_cases()[0]),
                      opt::Solution::kMultilevelOptScale,
                      {},
                      "paper-case"});
  requests.push_back({config_with(std::make_unique<model::LinearSpeedup>(0.9)),
                      opt::Solution::kSingleLevelOptScale,
                      {},
                      ""});
  requests.push_back(
      {config_with(std::make_unique<model::AmdahlSpeedup>(1e-6)),
       opt::Solution::kMultilevelOriScale,
       {},
       "amdahl"});
  const std::vector<double> scales = {1e3, 1e4, 1e5, 1e6};
  const std::vector<double> speedups = {9.5e2, 8.1e3, 5.2e4, 2.7e5};
  requests.push_back(
      {config_with(std::make_unique<model::TabulatedSpeedup>(scales, speedups)),
       opt::Solution::kSingleLevelOriScale,
       {},
       "tabulated"});
  // Non-default solver options must survive the trip too.
  opt::Algorithm1Options options;
  options.delta = 1e-9;
  options.max_outer_iterations = 77;
  options.aitken = false;
  requests.push_back({exp::make_fti_system(1e6, exp::paper_failure_cases()[1]),
                      opt::Solution::kMultilevelOptScale, options,
                      "custom-options"});
  return requests;
}

TEST(NetProtocol, RequestRoundTripIsByteIdentical) {
  for (const svc::PlanRequest& request : wire_requests()) {
    const std::string first = encode_request_line(request, 250);
    long deadline_ms = 0;
    std::string error;
    const auto decoded =
        decode_request(parse_ok(first), &deadline_ms, &error);
    ASSERT_TRUE(decoded.has_value()) << error;
    EXPECT_EQ(deadline_ms, 250);
    // encode(decode(encode(x))) == encode(x): every config field, option,
    // and label survived exactly.
    EXPECT_EQ(encode_request_line(*decoded, 250), first);
    // The sweep engine would memoize both under the same key — this is what
    // makes daemon reports interchangeable with in-process ones.
    EXPECT_EQ(svc::canonical_key(*decoded), svc::canonical_key(request));
  }
}

TEST(NetProtocol, NegativeDeadlinePreserved) {
  const auto request = wire_requests().front();
  long deadline_ms = 0;
  std::string error;
  const auto decoded = decode_request(
      parse_ok(encode_request_line(request, -1)), &deadline_ms, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(deadline_ms, -1);
}

TEST(NetProtocol, MalformedRequestsNameTheOffendingField) {
  const std::string line = encode_request_line(wire_requests().front());
  // Drop a required field.
  json::Value envelope = parse_ok(line);
  json::Object without = envelope.as_object();
  without.erase("solution");
  long deadline_ms = 0;
  std::string error;
  EXPECT_FALSE(
      decode_request(json::Value(without), &deadline_ms, &error).has_value());
  EXPECT_NE(error.find("solution"), std::string::npos) << error;

  // Poison one numeric field with NaN text.
  json::Object poisoned = envelope.as_object();
  json::Object config = poisoned.at("config").as_object();
  config["te_seconds"] = json::Value("nan");
  poisoned["config"] = json::Value(std::move(config));
  error.clear();
  EXPECT_FALSE(
      decode_request(json::Value(poisoned), &deadline_ms, &error).has_value());
  EXPECT_NE(error.find("te_seconds"), std::string::npos) << error;

  // Semantically invalid configs fail the builder's validation, with the
  // same structured error path.
  json::Object negative = envelope.as_object();
  config = negative.at("config").as_object();
  config["te_seconds"] = json::Value(encode_double(-5.0));
  negative["config"] = json::Value(std::move(config));
  error.clear();
  EXPECT_FALSE(
      decode_request(json::Value(negative), &deadline_ms, &error).has_value());
  EXPECT_FALSE(error.empty());
}

// --- report round trips -----------------------------------------------

TEST(NetProtocol, ReportRoundTripIsByteIdentical) {
  svc::SweepEngine engine({.threads = 1});
  for (const svc::PlanRequest& request : wire_requests()) {
    const svc::PlanReport report = *engine.plan_one(request);
    const std::string first = json::dump(encode_report(report));
    svc::PlanReport decoded;
    std::string error;
    ASSERT_TRUE(decode_report(parse_ok(first), &decoded, &error)) << error;
    EXPECT_EQ(json::dump(encode_report(decoded)), first);
    // Spot-check the fields the daemon identity test relies on.
    EXPECT_EQ(decoded.key, report.key);
    EXPECT_EQ(decoded.status, report.status);
    EXPECT_EQ(decoded.wallclock(), report.wallclock());
    EXPECT_EQ(decoded.plan().scale, report.plan().scale);
    EXPECT_EQ(decoded.plan().intervals, report.plan().intervals);
    EXPECT_EQ(decoded.planned.level_enabled, report.planned.level_enabled);
  }
}

TEST(NetProtocol, ResponseLinesDecodeToReportOrRejection) {
  svc::SweepEngine engine({.threads = 1});
  const svc::PlanReport report = *engine.plan_one(wire_requests().front());

  Response response;
  std::string error;
  ASSERT_TRUE(decode_response(encode_report_line(report), &response, &error))
      << error;
  EXPECT_TRUE(response.accepted);
  EXPECT_EQ(response.report.wallclock(), report.wallclock());

  ASSERT_TRUE(decode_response(
      encode_rejection_line(Reject::kOverloaded, "queue full"), &response,
      &error))
      << error;
  EXPECT_FALSE(response.accepted);
  EXPECT_EQ(response.reject, Reject::kOverloaded);
  EXPECT_EQ(response.message, "queue full");

  EXPECT_FALSE(decode_response("not json at all", &response, &error));
  EXPECT_FALSE(decode_response(R"({"no":"ok field"})", &response, &error));
}

// --- validate round trips ----------------------------------------------

svc::SimRequest wire_sim_request() {
  svc::SimRequest request{
      exp::make_fti_system(30.0, exp::FailureCase{"fusion", {24, 18, 12, 6}},
                           1024.0),
      opt::Solution::kMultilevelOptScale,
      {},
      {},
      svc::SimBackend::kCoarse,
      "sim"};
  request.monte_carlo.runs = 16;
  request.monte_carlo.seed = 0xdeadbeefULL;
  request.monte_carlo.sim.jitter_ratio = 0.25;
  return request;
}

TEST(NetProtocol, SimRequestRoundTripIsByteIdentical) {
  const svc::SimRequest request = wire_sim_request();
  const std::string first = encode_sim_request_line(request, 250);
  long deadline_ms = 0;
  std::string error;
  const auto decoded =
      decode_sim_request(parse_ok(first), &deadline_ms, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(deadline_ms, 250);
  EXPECT_EQ(encode_sim_request_line(*decoded, 250), first);
  EXPECT_EQ(svc::canonical_key(*decoded), svc::canonical_key(request));
  EXPECT_EQ(decoded->monte_carlo.runs, 16);
  EXPECT_EQ(decoded->monte_carlo.seed, 0xdeadbeefULL);
  EXPECT_EQ(decoded->monte_carlo.sim.jitter_ratio, 0.25);
}

TEST(NetProtocol, SimRequestInvalidMonteCarloOptionsAreBadRequests) {
  const std::string line = encode_sim_request_line(wire_sim_request());
  json::Object envelope = parse_ok(line).as_object();
  json::Object mc = envelope.at("monte_carlo").as_object();
  mc["runs"] = json::Value(-3L);
  envelope["monte_carlo"] = json::Value(std::move(mc));
  long deadline_ms = 0;
  std::string error;
  EXPECT_FALSE(decode_sim_request(json::Value(envelope), &deadline_ms, &error)
                   .has_value());
  EXPECT_NE(error.find("runs"), std::string::npos) << error;

  // The reserved sentinel seed is refused at the wire boundary too.
  json::Object sentinel = parse_ok(line).as_object();
  json::Object mc2 = sentinel.at("monte_carlo").as_object();
  mc2["seed"] = json::Value("18446744073709551615");
  sentinel["monte_carlo"] = json::Value(std::move(mc2));
  error.clear();
  EXPECT_FALSE(decode_sim_request(json::Value(sentinel), &deadline_ms, &error)
                   .has_value());
  EXPECT_NE(error.find("sentinel"), std::string::npos) << error;
}

TEST(NetProtocol, SimRequestBackendRoundTripsAndCoarseIsOmitted) {
  // A coarse request never renders the field — the encoding is byte-for-
  // byte what a pre-backend client would have produced.
  const std::string coarse_line = encode_sim_request_line(wire_sim_request());
  EXPECT_EQ(coarse_line.find("backend"), std::string::npos) << coarse_line;

  svc::SimRequest request = wire_sim_request();
  request.backend = svc::SimBackend::kDes;
  const std::string des_line = encode_sim_request_line(request, 250);
  EXPECT_NE(des_line.find("\"backend\":\"des\""), std::string::npos)
      << des_line;
  long deadline_ms = 0;
  std::string error;
  const auto decoded =
      decode_sim_request(parse_ok(des_line), &deadline_ms, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->backend, svc::SimBackend::kDes);
  EXPECT_EQ(encode_sim_request_line(*decoded, 250), des_line);

  // Absent backend (every v1 client) decodes as the coarse default.
  const auto old_client =
      decode_sim_request(parse_ok(coarse_line), &deadline_ms, &error);
  ASSERT_TRUE(old_client.has_value()) << error;
  EXPECT_EQ(old_client->backend, svc::SimBackend::kCoarse);
}

TEST(NetProtocol, UnknownBackendIsAStructuredBadRequest) {
  json::Object envelope =
      parse_ok(encode_sim_request_line(wire_sim_request())).as_object();
  envelope["backend"] = json::Value("turbo");
  long deadline_ms = 0;
  std::string error;
  EXPECT_FALSE(decode_sim_request(json::Value(envelope), &deadline_ms, &error)
                   .has_value());
  // The error names the field and every accepted value, so a client can fix
  // its spelling without reading the server source.
  EXPECT_NE(error.find("backend"), std::string::npos) << error;
  EXPECT_NE(error.find("coarse"), std::string::npos) << error;
  EXPECT_NE(error.find("des"), std::string::npos) << error;

  // Non-string backend values get the same structured refusal.
  envelope["backend"] = json::Value(7.0);
  error.clear();
  EXPECT_FALSE(decode_sim_request(json::Value(envelope), &deadline_ms, &error)
                   .has_value());
  EXPECT_NE(error.find("backend"), std::string::npos) << error;
}

TEST(NetProtocol, SimReportEchoesTheBackend) {
  svc::SweepEngine engine({.threads = 1});
  const svc::SimReport coarse = *engine.validate_one(wire_sim_request());
  ASSERT_TRUE(coarse.ok()) << coarse.message;
  // Coarse reports omit the field: v1 clients see byte-identical lines.
  EXPECT_EQ(json::dump(encode_sim_report(coarse)).find("backend"),
            std::string::npos);

  svc::SimRequest request = wire_sim_request();
  request.backend = svc::SimBackend::kDes;
  request.monte_carlo.runs = 8;  // keep the DES leg cheap
  const svc::SimReport des = *engine.validate_one(request);
  ASSERT_TRUE(des.ok()) << des.message;
  EXPECT_EQ(des.backend, svc::SimBackend::kDes);
  const std::string line = json::dump(encode_sim_report(des));
  EXPECT_NE(line.find("\"backend\":\"des\""), std::string::npos) << line;
  svc::SimReport decoded;
  std::string error;
  ASSERT_TRUE(decode_sim_report(parse_ok(line), &decoded, &error)) << error;
  EXPECT_EQ(decoded.backend, svc::SimBackend::kDes);
  EXPECT_EQ(deterministic_fingerprint(decoded),
            deterministic_fingerprint(des));
}

TEST(NetProtocol, SimReportRoundTripIsByteIdentical) {
  svc::SweepEngine engine({.threads = 1});
  const svc::SimReport report = *engine.validate_one(wire_sim_request());
  ASSERT_TRUE(report.ok()) << report.message;
  const std::string first = json::dump(encode_sim_report(report));
  svc::SimReport decoded;
  std::string error;
  ASSERT_TRUE(decode_sim_report(parse_ok(first), &decoded, &error)) << error;
  EXPECT_EQ(json::dump(encode_sim_report(decoded)), first);
  EXPECT_EQ(decoded.key, report.key);
  EXPECT_EQ(decoded.runs, report.runs);
  EXPECT_EQ(decoded.wallclock.mean, report.wallclock.mean);
  EXPECT_EQ(decoded.wallclock.stddev, report.wallclock.stddev);
  EXPECT_EQ(decoded.portion_errors.productive,
            report.portion_errors.productive);
  EXPECT_EQ(decoded.plan.plan().scale, report.plan.plan().scale);
  EXPECT_EQ(deterministic_fingerprint(decoded),
            deterministic_fingerprint(report));
}

TEST(NetProtocol, SimResponseLinesDecodeToReportOrRejection) {
  svc::SweepEngine engine({.threads = 1});
  const svc::SimReport report = *engine.validate_one(wire_sim_request());

  SimResponse response;
  std::string error;
  ASSERT_TRUE(
      decode_sim_response(encode_sim_report_line(report), &response, &error))
      << error;
  EXPECT_TRUE(response.accepted);
  EXPECT_EQ(response.report.wallclock.mean, report.wallclock.mean);

  ASSERT_TRUE(decode_sim_response(
      encode_rejection_line(Reject::kDeadline, "too slow"), &response,
      &error))
      << error;
  EXPECT_FALSE(response.accepted);
  EXPECT_EQ(response.reject, Reject::kDeadline);
  EXPECT_EQ(response.message, "too slow");
}

// --- versioning & op discovery -----------------------------------------

TEST(NetProtocol, FreshEnvelopesCarryTheCurrentVersion) {
  EXPECT_NE(encode_request_line(wire_requests().front()).find("\"v\":2"),
            std::string::npos);
  EXPECT_NE(encode_sim_request_line(wire_sim_request()).find("\"v\":2"),
            std::string::npos);
  svc::SweepEngine engine({.threads = 1});
  const auto report = *engine.plan_one(wire_requests().front());
  EXPECT_NE(encode_report_line(report).find("\"v\":2"), std::string::npos);
  EXPECT_NE(encode_rejection_line(Reject::kDraining, "bye").find("\"v\":2"),
            std::string::npos);
  EXPECT_NE(encode_unknown_op_line("nope").find("\"v\":2"),
            std::string::npos);
  // Response encoders echo whichever version the request spoke, so v1
  // clients keep receiving byte-identical v1 lines.
  EXPECT_NE(encode_report_line(report, 1).find("\"v\":1"), std::string::npos);
  EXPECT_NE(encode_rejection_line(Reject::kDraining, "bye", 1).find("\"v\":1"),
            std::string::npos);
  EXPECT_NE(encode_unknown_op_line("nope", 1).find("\"v\":1"),
            std::string::npos);
}

TEST(NetProtocol, VersionCheckAcceptsSpokenRangeRejectsOthers) {
  std::string error;
  EXPECT_TRUE(envelope_version_ok(parse_ok(R"({"op":"ping"})"), &error));
  EXPECT_TRUE(envelope_version_ok(parse_ok(R"({"op":"ping","v":1})"), &error));
  EXPECT_TRUE(envelope_version_ok(parse_ok(R"({"op":"ping","v":2})"), &error));
  EXPECT_FALSE(envelope_version_ok(parse_ok(R"({"op":"ping","v":3})"), &error));
  EXPECT_NE(error.find("unsupported protocol version 3"), std::string::npos)
      << error;
  EXPECT_NE(error.find("1..2"), std::string::npos) << error;
  error.clear();
  EXPECT_FALSE(
      envelope_version_ok(parse_ok(R"({"op":"ping","v":"x"})"), &error));
  EXPECT_FALSE(error.empty());
}

TEST(NetProtocol, UnknownOpLineListsSupportedOps) {
  const std::string line = encode_unknown_op_line("frobnicate");
  Response response;
  std::string error;
  ASSERT_TRUE(decode_response(line, &response, &error)) << error;
  EXPECT_FALSE(response.accepted);
  EXPECT_EQ(response.reject, Reject::kBadRequest);
  EXPECT_NE(response.message.find("frobnicate"), std::string::npos);
  EXPECT_NE(response.message.find("plan|validate|ping|metrics|ingest|subscribe"),
            std::string::npos)
      << response.message;
  const json::Value parsed = parse_ok(line);
  const json::Value* supported = parsed.find("supported");
  ASSERT_NE(supported, nullptr);
  ASSERT_TRUE(supported->is_array());
  ASSERT_EQ(supported->as_array().size(), supported_ops().size());
  for (std::size_t i = 0; i < supported_ops().size(); ++i) {
    EXPECT_EQ(supported->as_array()[i].as_string(), supported_ops()[i]);
  }
}

TEST(NetProtocol, SupportedOpsAreStable) {
  const std::vector<std::string> expected = {
      "plan", "validate", "ping", "metrics", "ingest", "subscribe"};
  EXPECT_EQ(supported_ops(), expected);
}

TEST(NetProtocol, RejectTaxonomyNamesAreStable) {
  // These strings are wire protocol and metric suffixes; changing one is a
  // breaking change.
  EXPECT_EQ(to_string(Reject::kBadRequest), "bad_request");
  EXPECT_EQ(to_string(Reject::kOverloaded), "overloaded");
  EXPECT_EQ(to_string(Reject::kDeadline), "deadline");
  EXPECT_EQ(to_string(Reject::kDraining), "draining");
  Reject reason = Reject::kBadRequest;
  EXPECT_TRUE(reject_from_string("deadline", &reason));
  EXPECT_EQ(reason, Reject::kDeadline);
  EXPECT_FALSE(reject_from_string("nope", &reason));
}

}  // namespace
}  // namespace mlcr::net
