#include "sim/trace_io.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "exp/cases.h"

namespace {

using namespace mlcr;
using namespace mlcr::sim;

TEST(TraceIo, RoundTripPreservesEveryEvent) {
  FailureTrace trace;
  trace.arrivals_per_level = {{1.5, 2.25, 9.0}, {0.5}, {}, {3.125}};
  const std::string text = trace_to_string(trace);
  const auto loaded = trace_from_string(text, 4);
  ASSERT_EQ(loaded.arrivals_per_level.size(), 4u);
  EXPECT_EQ(loaded.arrivals_per_level[0], trace.arrivals_per_level[0]);
  EXPECT_EQ(loaded.arrivals_per_level[1], trace.arrivals_per_level[1]);
  EXPECT_TRUE(loaded.arrivals_per_level[2].empty());
  EXPECT_EQ(loaded.arrivals_per_level[3], trace.arrivals_per_level[3]);
}

TEST(TraceIo, EventsWrittenInTimeOrder) {
  FailureTrace trace;
  trace.arrivals_per_level = {{5.0}, {1.0}, {3.0}};
  const std::string text = trace_to_string(trace);
  const auto one = text.find("1 2");   // t=1, level 2
  const auto three = text.find("3 3");
  const auto five = text.find("5 1");
  EXPECT_LT(one, three);
  EXPECT_LT(three, five);
}

TEST(TraceIo, RejectsMalformedLines) {
  EXPECT_THROW((void)trace_from_string("banana\n", 4), common::Error);
  EXPECT_THROW((void)trace_from_string("1.0\n", 4), common::Error);
}

TEST(TraceIo, RejectsTrailingGarbageTokens) {
  EXPECT_THROW((void)trace_from_string("1.5 2 junk\n", 4), common::Error);
  EXPECT_THROW((void)trace_from_string("1.5 2 3\n", 4), common::Error);
}

TEST(TraceIo, RejectsNonFiniteTimes) {
  EXPECT_THROW((void)trace_from_string("inf 1\n", 4), common::Error);
  EXPECT_THROW((void)trace_from_string("nan 1\n", 4), common::Error);
  EXPECT_THROW((void)trace_from_string("-1.0 1\n", 4), common::Error);
}

TEST(TraceIo, RejectsNonIntegerLevelTokens) {
  // Levels like "2.5" or "2x" must not silently truncate to 2.
  EXPECT_THROW((void)trace_from_string("1.0 2.5\n", 4), common::Error);
  EXPECT_THROW((void)trace_from_string("1.0 2x\n", 4), common::Error);
  EXPECT_THROW((void)trace_from_string("1.0 x2\n", 4), common::Error);
}

TEST(TraceIo, MalformedErrorsNameTheLine) {
  try {
    (void)trace_from_string("1.0 1\n2.0 haircut\n", 4);
    FAIL() << "expected common::Error";
  } catch (const common::Error& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos)
        << error.what();
  }
}

TEST(TraceIo, RejectsOutOfRangeLevels) {
  EXPECT_THROW((void)trace_from_string("1.0 0\n", 4), common::Error);
  EXPECT_THROW((void)trace_from_string("1.0 5\n", 4), common::Error);
}

TEST(TraceIo, RejectsNonAscendingTimesPerLevel) {
  EXPECT_THROW((void)trace_from_string("2.0 1\n1.0 1\n", 4), common::Error);
  // Different levels may interleave freely.
  EXPECT_NO_THROW((void)trace_from_string("2.0 1\n1.0 2\n", 4));
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
  const auto trace =
      trace_from_string("# header\n\n# comment\n1.0 1\n", 2);
  EXPECT_EQ(trace_event_count(trace), 1u);
}

TEST(TraceIo, PoissonGeneratorMatchesExpectedCounts) {
  model::FailureRates rates({16, 12, 8, 4}, 1e6);
  common::Rng rng(7);
  const double horizon = 200.0 * 86400.0;  // 200 days
  const auto trace = draw_poisson_trace(rates, 1e6, horizon, rng);
  ASSERT_EQ(trace.arrivals_per_level.size(), 4u);
  const double expected[4] = {16 * 200.0, 12 * 200.0, 8 * 200.0, 4 * 200.0};
  for (std::size_t level = 0; level < 4; ++level) {
    const double count =
        static_cast<double>(trace.arrivals_per_level[level].size());
    EXPECT_NEAR(count / expected[level], 1.0, 0.1) << "level " << level;
    EXPECT_TRUE(std::is_sorted(trace.arrivals_per_level[level].begin(),
                               trace.arrivals_per_level[level].end()));
  }
}

TEST(TraceIo, GeneratedTraceDrivesSimulatorLikeSampledFailures) {
  // A generated trace replayed through simulate_trace must statistically
  // match direct sampling at the same rates.
  const auto cfg = exp::make_fti_system(3e6, exp::FailureCase{"t", {8, 6, 4, 2}});
  model::Plan plan{{9000, 4500, 3000, 49}, 5e5};
  const auto schedule =
      Schedule::from_plan(cfg, plan, std::vector<bool>(4, true));

  double sampled_total = 0.0, replayed_total = 0.0;
  constexpr int kRuns = 15;
  for (int seed = 0; seed < kRuns; ++seed) {
    common::Rng rng1(static_cast<std::uint64_t>(seed));
    sampled_total += simulate(cfg, schedule, rng1).wallclock;

    common::Rng trace_rng(static_cast<std::uint64_t>(seed) + 500);
    const auto trace = draw_poisson_trace(cfg.rates(), plan.scale,
                                          365.0 * 86400.0, trace_rng);
    common::Rng rng2(static_cast<std::uint64_t>(seed) + 900);
    replayed_total += simulate_trace(cfg, schedule, trace, rng2).wallclock;
  }
  EXPECT_NEAR(replayed_total / sampled_total, 1.0, 0.05);
}

TEST(TraceIo, EmptyTraceRoundTripsAndPinsHeaderOnlyFormat) {
  // An empty trace is just the header — byte-exact, because these files are
  // an on-disk interchange format (DESIGN.md §8): changing a byte breaks
  // replayability of archived traces.
  FailureTrace empty;
  empty.arrivals_per_level = {{}, {}, {}};
  EXPECT_EQ(trace_to_string(empty), "# mlcr failure trace v1\n");
  const auto loaded = trace_from_string(trace_to_string(empty), 3);
  ASSERT_EQ(loaded.arrivals_per_level.size(), 3u);
  EXPECT_EQ(trace_event_count(loaded), 0u);
}

TEST(TraceIo, SingleEventTraceRoundTripsExactly) {
  FailureTrace trace;
  trace.arrivals_per_level = {{}, {2.5}};
  const std::string text = trace_to_string(trace);
  EXPECT_EQ(text, "# mlcr failure trace v1\n2.5 2\n");
  const auto loaded = trace_from_string(text, 2);
  EXPECT_TRUE(loaded.arrivals_per_level[0].empty());
  ASSERT_EQ(loaded.arrivals_per_level[1].size(), 1u);
  EXPECT_EQ(loaded.arrivals_per_level[1][0], 2.5);
}

TEST(TraceIo, OnDiskFormatIsPinned) {
  // "<seconds> <level>" with 1-based levels, merged in time order, 17
  // significant digits available for non-representable times.
  FailureTrace trace;
  trace.arrivals_per_level = {{1.5}, {0.5, 3.0}};
  EXPECT_EQ(trace_to_string(trace),
            "# mlcr failure trace v1\n"
            "0.5 2\n"
            "1.5 1\n"
            "3 2\n");
  // Serialize -> parse -> serialize is a fixed point.
  const auto loaded = trace_from_string(trace_to_string(trace), 2);
  EXPECT_EQ(trace_to_string(loaded), trace_to_string(trace));
}

TEST(TraceIo, EventCount) {
  FailureTrace trace;
  trace.arrivals_per_level = {{1, 2}, {}, {3}};
  EXPECT_EQ(trace_event_count(trace), 3u);
}

}  // namespace
