#include "apps/heat.h"

#include <gtest/gtest.h>

#include "apps/eddy.h"
#include "common/error.h"

namespace {

using namespace mlcr;
using namespace mlcr::apps;

HeatConfig small_config(int iterations = 30) {
  HeatConfig config;
  config.rows = 34;  // 32 interior rows
  config.cols = 16;
  config.iterations = iterations;
  return config;
}

TEST(HeatPartition, CoversAllInteriorRowsExactlyOnce) {
  for (int ranks : {1, 2, 3, 5, 8}) {
    std::vector<int> owner(32, -1);
    for (int rank = 0; rank < ranks; ++rank) {
      const auto [first, count] = heat_partition(34, ranks, rank);
      for (int r = first; r < first + count; ++r) {
        EXPECT_EQ(owner[static_cast<std::size_t>(r - 1)], -1);
        owner[static_cast<std::size_t>(r - 1)] = rank;
      }
    }
    for (int o : owner) EXPECT_NE(o, -1) << "ranks " << ranks;
  }
}

TEST(HeatPartition, RejectsMoreRanksThanRows) {
  EXPECT_THROW((void)heat_partition(6, 10, 0), common::Error);
}

TEST(Heat, HeatFlowsDownFromSource) {
  const auto result = run_heat(small_config(100), 2);
  ASSERT_TRUE(result.completed);
  const int cols = 16;
  // Temperature decreases monotonically away from the source for a mid
  // column after enough iterations.
  const double near = result.grid[static_cast<std::size_t>(1 * cols + 8)];
  const double mid = result.grid[static_cast<std::size_t>(8 * cols + 8)];
  const double far = result.grid[static_cast<std::size_t>(20 * cols + 8)];
  EXPECT_GT(near, mid);
  EXPECT_GT(mid, far);
  EXPECT_GT(near, 0.0);
}

TEST(Heat, DecompositionInvariant) {
  // The whole point of the ghost-exchange protocol: the final grid must be
  // bit-identical regardless of the number of ranks.
  const auto reference = run_heat(small_config(), 1);
  for (int ranks : {2, 4, 7}) {
    const auto result = run_heat(small_config(), ranks);
    ASSERT_EQ(result.grid.size(), reference.grid.size()) << ranks;
    for (std::size_t i = 0; i < reference.grid.size(); ++i) {
      ASSERT_EQ(result.grid[i], reference.grid[i])
          << "ranks " << ranks << " cell " << i;
    }
  }
}

TEST(Heat, ResidualShrinksOverIterations) {
  const auto short_run = run_heat(small_config(10), 2);
  const auto long_run = run_heat(small_config(200), 2);
  EXPECT_LT(long_run.residual, short_run.residual);
}

TEST(Heat, MoreRanksRunFaster) {
  HeatConfig config = small_config();
  config.rows = 130;
  config.cols = 128;
  const auto t1 = run_heat(config, 1).wallclock;
  const auto t4 = run_heat(config, 4).wallclock;
  const auto t16 = run_heat(config, 16).wallclock;
  EXPECT_GT(t1, t4);
  EXPECT_GT(t4, t16);
}

TEST(Heat, SpeedupIsSubLinear) {
  HeatConfig config = small_config();
  config.rows = 130;
  config.cols = 128;
  const double single = heat_single_core_time(config);
  const auto t16 = run_heat(config, 16).wallclock;
  const double speedup = single / t16;
  EXPECT_GT(speedup, 4.0);
  EXPECT_LT(speedup, 16.0);  // communication keeps it below ideal
}

TEST(Heat, SerializeRoundTrip) {
  HeatConfig config = small_config();
  HeatBlock block(config, 0, 2);
  // run a couple of sweeps to get non-trivial state
  (void)block.sweep(config);
  (void)block.sweep(config);
  const auto bytes = block.serialize();
  HeatBlock other(config, 0, 2);
  other.deserialize(bytes);
  EXPECT_EQ(other.serialize(), bytes);
}

TEST(Heat, SerializeRejectsWrongSize) {
  HeatConfig config = small_config();
  HeatBlock block(config, 0, 2);
  std::vector<std::uint8_t> junk(7);
  EXPECT_THROW(block.deserialize(junk), common::Error);
}

TEST(Eddy, SpeedupPeaksThenDeclines) {
  EddyConfig config;
  config.network.latency = 5e-5;
  config.network.bandwidth = 1e9;
  const double single = eddy_single_core_time(config);
  double previous_speedup = 0.0;
  double peak = 0.0;
  int peak_at = 0;
  for (int ranks : {2, 4, 8, 16, 32, 64, 128}) {
    const auto result = run_eddy(config, ranks);
    const double speedup = single / result.wallclock;
    if (speedup > peak) {
      peak = speedup;
      peak_at = ranks;
    }
    previous_speedup = speedup;
  }
  (void)previous_speedup;
  // Peak strictly inside the sweep: the largest scale is not the best.
  EXPECT_GT(peak_at, 2);
  EXPECT_LT(peak_at, 128);
}

TEST(Eddy, DeterministicChecksum) {
  EddyConfig config;
  const auto a = run_eddy(config, 8);
  const auto b = run_eddy(config, 8);
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
  EXPECT_DOUBLE_EQ(a.wallclock, b.wallclock);
}

}  // namespace
