// Tests of the canonical experiment configurations, including the key
// cross-check that the Fusion-calibrated virtual cluster reproduces the
// paper's Table II costs by measurement.
#include "exp/cases.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace {

using namespace mlcr;

TEST(ExpCases, SixPaperFailureCasesInOrder) {
  const auto cases = exp::paper_failure_cases();
  ASSERT_EQ(cases.size(), 6u);
  EXPECT_EQ(cases[0].name, "16-12-8-4");
  EXPECT_EQ(cases[5].name, "4-2-1-0.5");
  for (const auto& c : cases) {
    ASSERT_EQ(c.per_day.size(), 4u) << c.name;
    // Rates decrease with the level in every case.
    for (std::size_t i = 1; i < 4; ++i) {
      EXPECT_LE(c.per_day[i], c.per_day[i - 1]) << c.name;
    }
  }
}

TEST(ExpCases, Table2DataMatchesPaper) {
  const auto& data = exp::table2_data();
  ASSERT_EQ(data.size(), 5u);
  EXPECT_DOUBLE_EQ(data[0].cores, 128.0);
  EXPECT_DOUBLE_EQ(data[0].cost[3], 7.0);
  EXPECT_DOUBLE_EQ(data[4].cores, 1024.0);
  EXPECT_DOUBLE_EQ(data[4].cost[3], 25.15);
}

TEST(ExpCases, FtiCoefficientsAsPublished) {
  const auto c = exp::fti_coefficients();
  EXPECT_DOUBLE_EQ(c.eps[0], 0.866);
  EXPECT_DOUBLE_EQ(c.eps[3], 5.5);
  EXPECT_DOUBLE_EQ(c.alpha[3], 0.0212);
  EXPECT_DOUBLE_EQ(c.alpha[0], 0.0);
}

TEST(ExpCases, FtiSystemShape) {
  const auto cfg =
      exp::make_fti_system(3e6, exp::FailureCase{"t", {16, 12, 8, 4}});
  EXPECT_EQ(cfg.levels(), 4u);
  EXPECT_DOUBLE_EQ(cfg.te(), 3e6 * 86400.0);
  EXPECT_DOUBLE_EQ(cfg.allocation(), 60.0);
  EXPECT_DOUBLE_EQ(cfg.scale_upper_bound(), 1e6);
  // Checkpoint costs ordered by level at any scale.
  for (double n : {1e4, 1e5, 1e6}) {
    EXPECT_LT(cfg.ckpt_cost(0, n), cfg.ckpt_cost(1, n));
    EXPECT_LT(cfg.ckpt_cost(1, n), cfg.ckpt_cost(2, n));
    EXPECT_LT(cfg.ckpt_cost(2, n), cfg.ckpt_cost(3, n));
  }
  // Recovery is constant per level (documented assumption).
  EXPECT_DOUBLE_EQ(cfg.recovery_cost(3, 1e6), cfg.recovery_cost(3, 128.0));
}

TEST(ExpCases, ConstantPfsSystemUsesGivenRecoveryFactor) {
  const auto full = exp::make_constant_pfs_system(
      exp::FailureCase{"t", {16, 12, 8, 4}}, /*recovery_factor=*/1.0);
  const auto half = exp::make_constant_pfs_system(
      exp::FailureCase{"t", {16, 12, 8, 4}}, /*recovery_factor=*/0.5);
  EXPECT_DOUBLE_EQ(full.recovery_cost(3, 1e6), 2000.0);
  EXPECT_DOUBLE_EQ(half.recovery_cost(3, 1e6), 1000.0);
  EXPECT_DOUBLE_EQ(full.ckpt_cost(0, 1e6), 50.0);
}

TEST(ExpCases, Fig3SystemMatchesVerifiedUnits) {
  const auto cfg = exp::make_fig3_system(false);
  EXPECT_DOUBLE_EQ(cfg.te(), 4000.0 * 86400.0);
  EXPECT_DOUBLE_EQ(cfg.allocation(), 0.0);
  EXPECT_DOUBLE_EQ(cfg.scale_upper_bound(), 1e5);
  EXPECT_DOUBLE_EQ(exp::fig3_mu().mu(0, 81746.0), 0.005 * 81746.0);
}

TEST(ExpCases, MeasuredFtiCostsMatchTable2Fits) {
  // The headline calibration check: measured per-level makespans on the
  // virtual cluster land on the paper's fitted coefficients.
  const auto at_128 = exp::measure_fti_costs(128);
  EXPECT_NEAR(at_128[0], 0.9, 0.05);
  EXPECT_NEAR(at_128[1], 2.53, 0.1);
  EXPECT_NEAR(at_128[2], 3.9, 0.3);
  EXPECT_NEAR(at_128[3], 5.5 + 0.0212 * 128, 0.1);

  const auto at_1024 = exp::measure_fti_costs(1024);
  // Levels 1-3 stay constant with scale; level 4 grows linearly.
  EXPECT_NEAR(at_1024[0], at_128[0], 0.05);
  EXPECT_NEAR(at_1024[1], at_128[1], 0.1);
  EXPECT_NEAR(at_1024[2], at_128[2], 0.3);
  EXPECT_NEAR(at_1024[3], 5.5 + 0.0212 * 1024, 0.5);
}

TEST(ExpCases, SpeedupSamplesHaveTheRightShapes) {
  const auto heat = exp::heat_speedup_samples();
  ASSERT_GE(heat.size(), 5u);
  // Monotone increasing over the measured range (Figure 2(a)).
  for (std::size_t i = 1; i < heat.size(); ++i) {
    EXPECT_GT(heat[i].speedup, heat[i - 1].speedup);
  }
  const auto eddy = exp::eddy_speedup_samples();
  double peak = 0.0;
  std::size_t peak_index = 0;
  for (std::size_t i = 0; i < eddy.size(); ++i) {
    if (eddy[i].speedup > peak) {
      peak = eddy[i].speedup;
      peak_index = i;
    }
  }
  // Peak strictly inside the range (Figure 2(b): decline after ~100).
  EXPECT_GT(peak_index, 0u);
  EXPECT_LT(peak_index, eddy.size() - 1);
}

TEST(ExpCases, FusionClusterGeometry) {
  const auto config = exp::fusion_cluster(1024);
  EXPECT_EQ(config.nodes, 128);
  EXPECT_EQ(config.ranks_per_node, 8);
  EXPECT_EQ(config.rs_group_size, 3);
}

}  // namespace
