// Wire-codec tests: the binary frame grammar (magic, version, length
// prefix, payload), the JSON line framing it sits beside, first-byte codec
// autodetection, and the end-to-end invariant that a report served through
// the binary codec is bit-identical to the same report served through JSON
// — the payload encoder is shared, so the codec can only change framing,
// never content.
#include "net/codec.h"

#include <gtest/gtest.h>

#include <string>

#include "common/error.h"
#include "exp/cases.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "svc/sweep_engine.h"

namespace mlcr::net {
namespace {

std::string feed_one(FrameReader* reader, const std::string& bytes) {
  reader->feed(bytes);
  std::string payload;
  std::string error;
  EXPECT_EQ(reader->next(&payload, &error), FrameReader::Result::kFrame)
      << error;
  return payload;
}

TEST(NetCodec, CodecNamesRoundTrip) {
  EXPECT_EQ(to_string(Codec::kJson), "json");
  EXPECT_EQ(to_string(Codec::kBinary), "binary");
  Codec codec = Codec::kBinary;
  ASSERT_TRUE(codec_from_string("json", &codec));
  EXPECT_EQ(codec, Codec::kJson);
  ASSERT_TRUE(codec_from_string("binary", &codec));
  EXPECT_EQ(codec, Codec::kBinary);
  EXPECT_FALSE(codec_from_string("protobuf", &codec));
  EXPECT_EQ(codec, Codec::kBinary);  // untouched on failure
}

TEST(NetCodec, JsonFramingIsPayloadPlusNewline) {
  const std::string framed = frame_payload(R"({"op":"ping"})", Codec::kJson);
  EXPECT_EQ(framed, "{\"op\":\"ping\"}\n");
  FrameReader reader;
  EXPECT_EQ(feed_one(&reader, framed), R"({"op":"ping"})");
  EXPECT_EQ(reader.codec(), Codec::kJson);
}

TEST(NetCodec, JsonFramingRejectsEmbeddedNewlineAndOversize) {
  EXPECT_THROW((void)frame_payload("a\nb", Codec::kJson), common::Error);
  const std::string huge(kMaxFramePayload + 1, 'x');
  EXPECT_THROW((void)frame_payload(huge, Codec::kJson), common::Error);
  EXPECT_THROW((void)frame_payload(huge, Codec::kBinary), common::Error);
}

TEST(NetCodec, BinaryFrameGrammarIsMagicVersionLengthPayload) {
  const std::string payload = R"({"op":"ping","v":1})";
  const std::string framed = frame_payload(payload, Codec::kBinary);
  ASSERT_EQ(framed.size(), kBinaryHeaderBytes + payload.size());
  EXPECT_EQ(static_cast<unsigned char>(framed[0]), kBinaryMagic[0]);
  EXPECT_EQ(static_cast<unsigned char>(framed[1]), kBinaryMagic[1]);
  EXPECT_EQ(static_cast<unsigned char>(framed[2]), kBinaryMagic[2]);
  EXPECT_EQ(static_cast<unsigned char>(framed[3]), kBinaryVersion);
  // u32 little-endian payload length.
  const auto length = static_cast<std::uint32_t>(
      static_cast<unsigned char>(framed[4]) |
      (static_cast<unsigned char>(framed[5]) << 8) |
      (static_cast<unsigned char>(framed[6]) << 16) |
      (static_cast<unsigned char>(framed[7]) << 24));
  EXPECT_EQ(length, payload.size());
  EXPECT_EQ(framed.substr(kBinaryHeaderBytes), payload);
}

TEST(NetCodec, ReaderAutodetectsCodecFromFirstByte) {
  FrameReader binary_side;
  EXPECT_FALSE(binary_side.codec().has_value());
  EXPECT_EQ(feed_one(&binary_side, frame_payload("{}", Codec::kBinary)), "{}");
  EXPECT_EQ(binary_side.codec(), Codec::kBinary);

  // "this is not json" is still the JSON *codec* (line framing): framing
  // succeeds, and the payload is rejected later at the protocol layer.
  FrameReader json_side;
  EXPECT_EQ(feed_one(&json_side, "this is not json\n"), "this is not json");
  EXPECT_EQ(json_side.codec(), Codec::kJson);
}

TEST(NetCodec, ReaderReassemblesFramesAcrossArbitrarySplits) {
  const std::string payload(1000, 'p');
  const std::string framed = frame_payload(payload, Codec::kBinary) +
                             frame_payload("{}", Codec::kBinary);
  for (const std::size_t split : {1u, 3u, 7u, 8u, 9u, 500u, 1007u}) {
    FrameReader reader;
    reader.feed(framed.substr(0, split));
    std::string out;
    std::string error;
    // Truncated mid-header or mid-payload: never an error, just NeedMore.
    if (split < kBinaryHeaderBytes + payload.size()) {
      EXPECT_EQ(reader.next(&out, &error), FrameReader::Result::kNeedMore);
    }
    reader.feed(framed.substr(split));
    EXPECT_EQ(reader.next(&out, &error), FrameReader::Result::kFrame);
    EXPECT_EQ(out, payload);
    EXPECT_EQ(reader.next(&out, &error), FrameReader::Result::kFrame);
    EXPECT_EQ(out, "{}");
    EXPECT_EQ(reader.next(&out, &error), FrameReader::Result::kNeedMore);
  }
}

TEST(NetCodec, ReaderRejectsBadMagicVersionAndOversizeLength) {
  {
    // First byte 0xA7 commits to binary; a corrupt magic tail is fatal.
    FrameReader reader;
    std::string bad = frame_payload("{}", Codec::kBinary);
    bad[1] = 'X';
    reader.feed(bad);
    std::string out;
    std::string error;
    EXPECT_EQ(reader.next(&out, &error), FrameReader::Result::kError);
    EXPECT_NE(error.find("magic"), std::string::npos) << error;
    // Errors are sticky: there is no resync point.
    EXPECT_EQ(reader.next(&out, &error), FrameReader::Result::kError);
  }
  {
    FrameReader reader;
    std::string bad = frame_payload("{}", Codec::kBinary);
    bad[3] = 0x02;
    reader.feed(bad);
    std::string out;
    std::string error;
    EXPECT_EQ(reader.next(&out, &error), FrameReader::Result::kError);
    EXPECT_NE(error.find("version"), std::string::npos) << error;
  }
  {
    FrameReader reader;
    std::string bad = frame_payload("{}", Codec::kBinary);
    bad[4] = '\xff';
    bad[5] = '\xff';
    bad[6] = '\xff';
    bad[7] = '\x7f';
    reader.feed(bad);
    std::string out;
    std::string error;
    EXPECT_EQ(reader.next(&out, &error), FrameReader::Result::kError);
  }
  {
    // The JSON side enforces the same cap as a maximum line length.
    FrameReader reader;
    reader.feed(std::string(kMaxFramePayload + 2, 'x'));
    std::string out;
    std::string error;
    EXPECT_EQ(reader.next(&out, &error), FrameReader::Result::kError);
  }
}

// --- end to end: binary <-> JSON cross round trip ----------------------

svc::PlanRequest paper_request() {
  return {exp::make_fti_system(3e6, exp::paper_failure_cases()[0]),
          opt::Solution::kMultilevelOptScale,
          {},
          "codec-test"};
}

ServerOptions small_server() {
  ServerOptions options;
  options.port = 0;
  options.shards = 2;
  options.solver_threads = 2;
  options.queue_capacity = 16;
  return options;
}

TEST(NetCodec, BinaryAndJsonReportsAreBitIdentical) {
  Server server(small_server());
  server.start();

  Client json_client({.port = server.port(), .codec = Codec::kJson});
  Client binary_client({.port = server.port(), .codec = Codec::kBinary});

  const svc::PlanRequest request = paper_request();
  const Response via_json = json_client.plan(request);
  const Response via_binary = binary_client.plan(request);
  ASSERT_TRUE(via_json.accepted) << via_json.message;
  ASSERT_TRUE(via_binary.accepted) << via_binary.message;
  EXPECT_EQ(deterministic_fingerprint(via_json.report),
            deterministic_fingerprint(via_binary.report));

  // And both match the in-process engine bit for bit.
  svc::SweepEngine engine({.threads = 1});
  EXPECT_EQ(deterministic_fingerprint(via_binary.report),
            deterministic_fingerprint(*engine.plan_one(request)));

  // Per-connection codec accounting saw one of each.
  EXPECT_EQ(server.metrics().counter("net.codec.json").value(), 1u);
  EXPECT_EQ(server.metrics().counter("net.codec.binary").value(), 1u);
}

TEST(NetCodec, BinaryValidateMatchesJsonValidate) {
  Server server(small_server());
  server.start();

  svc::SimRequest request{
      exp::make_fti_system(30.0, exp::FailureCase{"fusion", {24, 18, 12, 6}},
                           1024.0),
      opt::Solution::kMultilevelOptScale,
      {},
      {},
      svc::SimBackend::kCoarse,
      "codec-sim"};
  request.monte_carlo.runs = 24;
  request.monte_carlo.seed = 1234;

  Client json_client({.port = server.port(), .codec = Codec::kJson});
  Client binary_client({.port = server.port(), .codec = Codec::kBinary});
  const SimResponse via_json = json_client.validate(request);
  const SimResponse via_binary = binary_client.validate(request);
  ASSERT_TRUE(via_json.accepted) << via_json.message;
  ASSERT_TRUE(via_binary.accepted) << via_binary.message;
  EXPECT_EQ(deterministic_fingerprint(via_json.report),
            deterministic_fingerprint(via_binary.report));
}

TEST(NetCodec, DesValidateIsBitIdenticalAcrossCodecs) {
  // The codecs are framing-only, so the DES backend's report — like every
  // payload — must be bit-identical over json and binary transport and
  // against the in-process engine.
  Server server(small_server());
  server.start();

  svc::SimRequest request{
      exp::make_fti_system(30.0, exp::FailureCase{"fusion", {24, 18, 12, 6}},
                           1024.0),
      opt::Solution::kMultilevelOptScale,
      {},
      {},
      svc::SimBackend::kDes,
      "codec-des"};
  request.monte_carlo.runs = 8;
  request.monte_carlo.seed = 1234;

  Client json_client({.port = server.port(), .codec = Codec::kJson});
  Client binary_client({.port = server.port(), .codec = Codec::kBinary});
  const SimResponse via_json = json_client.validate(request);
  const SimResponse via_binary = binary_client.validate(request);
  ASSERT_TRUE(via_json.accepted) << via_json.message;
  ASSERT_TRUE(via_binary.accepted) << via_binary.message;
  EXPECT_EQ(via_json.report.backend, svc::SimBackend::kDes);
  EXPECT_EQ(deterministic_fingerprint(via_json.report),
            deterministic_fingerprint(via_binary.report));

  svc::SweepEngine engine({.threads = 1});
  EXPECT_EQ(deterministic_fingerprint(via_binary.report),
            deterministic_fingerprint(*engine.validate_one(request)));
}

TEST(NetCodec, BinaryPingAndMetricsWork) {
  Server server(small_server());
  server.start();
  Client client({.port = server.port(), .codec = Codec::kBinary});
  EXPECT_TRUE(client.ping());
  const std::string jsonl = client.metrics();
  EXPECT_NE(jsonl.find("\"net.pings\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"net.shards\""), std::string::npos);
}

}  // namespace
}  // namespace mlcr::net
