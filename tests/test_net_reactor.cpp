// Reactor-core serving tests: the event loop itself (post/stop semantics,
// fd dispatch), the Singleflight table, and the server-level behaviors the
// reactor redesign exists for — round-robin shard accept accounting,
// singleflight coalescing of identical in-flight plan keys (exactly one
// engine solve for K concurrent clients), and graceful drain with work in
// flight on more than one shard.
#include "net/reactor.h"

#include <gtest/gtest.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exp/cases.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "svc/singleflight.h"

namespace mlcr::net {
namespace {

// --- reactor ----------------------------------------------------------

TEST(NetReactor, PostedTasksRunOnTheLoopThread) {
  Reactor reactor;
  reactor.set_dispatcher([](int, std::uint32_t) {});
  std::thread loop([&] { reactor.run(); });

  std::promise<bool> on_loop;
  reactor.post([&] { on_loop.set_value(reactor.on_loop_thread()); });
  EXPECT_TRUE(on_loop.get_future().get());
  EXPECT_FALSE(reactor.on_loop_thread());  // we are not the loop thread

  reactor.stop();
  loop.join();
}

TEST(NetReactor, TasksPostedAroundStopAllRun) {
  std::atomic<int> ran{0};
  {
    Reactor reactor;
    reactor.set_dispatcher([](int, std::uint32_t) {});
    std::thread loop([&] { reactor.run(); });
    reactor.post([&] { ++ran; });
    reactor.stop();
    loop.join();
    // Posted after run() returned: the destructor's drain must execute it
    // (the serving core relies on this to release captured reports).
    reactor.post([&] { ++ran; });
  }
  EXPECT_EQ(ran.load(), 2);
}

TEST(NetReactor, DispatchesReadableFdsRegisteredInEpoll) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  set_nonblocking(fds[0]);

  Reactor reactor;
  std::promise<int> seen;
  std::atomic<bool> signaled{false};
  reactor.set_dispatcher([&](int fd, std::uint32_t events) {
    // Level-triggered epoll re-reports the fd until it is drained, so the
    // dispatcher can run more than once; consume the byte and fulfill the
    // promise exactly once.
    if ((events & EPOLLIN) == 0 || signaled.exchange(true)) return;
    char byte = 0;
    EXPECT_EQ(::read(fd, &byte, 1), 1);
    seen.set_value(fd);
  });
  reactor.add_fd(fds[0], EPOLLIN);
  std::thread loop([&] { reactor.run(); });

  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  EXPECT_EQ(seen.get_future().get(), fds[0]);

  reactor.post([&] { reactor.remove_fd(fds[0]); });
  reactor.stop();
  loop.join();
  ::close(fds[0]);
  ::close(fds[1]);
}

// --- singleflight table -----------------------------------------------

TEST(NetReactor, SingleflightLeaderThenFollowersThenComplete) {
  svc::Singleflight<std::string> flight;
  std::vector<std::string> delivered;
  const auto waiter = [&](const std::string* report) {
    delivered.push_back(report != nullptr ? *report : "<aborted>");
  };

  EXPECT_TRUE(flight.join("key", waiter));    // leader
  EXPECT_FALSE(flight.join("key", waiter));   // follower
  EXPECT_FALSE(flight.join("key", waiter));   // follower
  EXPECT_TRUE(flight.join("other", waiter));  // distinct key: new leader
  EXPECT_EQ(flight.inflight(), 2u);

  EXPECT_EQ(flight.complete("key", "solved"), 3u);
  EXPECT_EQ(flight.abort("other"), 1u);
  EXPECT_EQ(flight.inflight(), 0u);
  EXPECT_EQ(delivered,
            (std::vector<std::string>{"solved", "solved", "solved",
                                      "<aborted>"}));

  // Popped keys start a fresh flight; completing a non-flight key is a
  // tolerated no-op.
  EXPECT_TRUE(flight.join("key", waiter));
  EXPECT_EQ(flight.complete("gone", "x"), 0u);
  EXPECT_EQ(flight.complete("key", "again"), 1u);
}

// --- server-level behaviors -------------------------------------------

svc::PlanRequest plan_request(double te_core_days) {
  return {exp::make_fti_system(te_core_days, exp::paper_failure_cases()[0]),
          opt::Solution::kMultilevelOptScale,
          {},
          "reactor-test"};
}

// A validate of the full paper-scale system: hundreds of milliseconds of
// single-threaded Monte-Carlo, used to pin the lone solver thread down
// while concurrent plan requests pile into the singleflight table.
std::string slow_validate_line() {
  svc::SimRequest request{
      exp::make_fti_system(3e6, exp::paper_failure_cases()[0]),
      opt::Solution::kMultilevelOptScale,
      {},
      {},
      svc::SimBackend::kCoarse,
      "occupier"};
  request.monte_carlo.runs = 100;
  request.monte_carlo.seed = 99;
  return encode_sim_request_line(request);
}

TEST(NetReactor, RoundRobinAcceptIsCountedPerShard) {
  ServerOptions options;
  options.port = 0;
  options.shards = 2;
  options.solver_threads = 1;
  Server server(options);
  server.start();

  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<Client>(
        ClientOptions{.port = server.port()}));
    EXPECT_TRUE(clients.back()->ping());  // round trip: adoption completed
  }

  EXPECT_EQ(server.metrics().gauge("net.shards").value(), 2.0);
  EXPECT_EQ(server.metrics().counter("net.shard.0.accepted").value(), 2u);
  EXPECT_EQ(server.metrics().counter("net.shard.1.accepted").value(), 2u);
  EXPECT_EQ(server.metrics().counter("net.connections").value(), 4u);
}

TEST(NetReactor, ConcurrentIdenticalKeysAreCoalescedIntoOneSolve) {
  ServerOptions options;
  options.port = 0;
  options.shards = 2;
  options.solver_threads = 1;  // one solver: the occupier serializes solves
  options.queue_capacity = 16;
  Server server(options);
  server.start();

  // Occupy the lone solver with a slow validate so the plan flight cannot
  // complete while the followers arrive.
  Connection occupier(connect_to("127.0.0.1", server.port(), 2000));
  ASSERT_TRUE(occupier.write_line(slow_validate_line()));

  constexpr int kClients = 4;
  const std::string plan_line = encode_request_line(plan_request(2e6));
  std::vector<std::unique_ptr<Connection>> conns;
  for (int i = 0; i < kClients; ++i) {
    conns.push_back(std::make_unique<Connection>(
        connect_to("127.0.0.1", server.port(), 2000)));
    ASSERT_TRUE(conns[i]->write_line(plan_line));
  }

  std::vector<std::string> fingerprints;
  for (auto& conn : conns) {
    std::string line;
    ASSERT_EQ(conn->read_line(&line, 60000), Connection::ReadResult::kLine);
    Response response;
    std::string error;
    ASSERT_TRUE(decode_response(line, &response, &error)) << error;
    ASSERT_TRUE(response.accepted) << response.message;
    fingerprints.push_back(deterministic_fingerprint(response.report));
  }
  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(fingerprints[i], fingerprints[0]);  // bit-identical reports
  }
  std::string sim_line;
  ASSERT_EQ(occupier.read_line(&sim_line, 60000),
            Connection::ReadResult::kLine);

  // Exactly one plan solve: the engine saw the occupier's internal
  // plan_one plus ONE leader plan_one for all kClients requests.
  EXPECT_EQ(server.engine().metrics().counter("requests").value(), 2u);
  EXPECT_EQ(server.metrics().counter("net.singleflight.leaders").value(), 2u)
      << "occupier validate + one plan leader";
  EXPECT_EQ(server.metrics().counter("net.singleflight.joined").value(),
            static_cast<std::uint64_t>(kClients - 1));
  EXPECT_EQ(server.metrics().counter("net.planned").value(),
            static_cast<std::uint64_t>(kClients));
}

TEST(NetReactor, DrainAnswersInFlightWorkAcrossShards) {
  ServerOptions options;
  options.port = 0;
  options.shards = 2;
  options.solver_threads = 1;
  options.queue_capacity = 16;
  Server server(options);
  server.start();

  // Four sequential connects round-robin onto shards 0,1,0,1 — so the
  // in-flight work below is guaranteed to span both shards.
  std::vector<std::unique_ptr<Connection>> conns;
  for (int i = 0; i < 4; ++i) {
    conns.push_back(std::make_unique<Connection>(
        connect_to("127.0.0.1", server.port(), 2000)));
  }
  ASSERT_TRUE(conns[0]->write_line(slow_validate_line()));
  const std::string plan_line = encode_request_line(plan_request(1e6));
  for (int i = 1; i < 4; ++i) {
    ASSERT_TRUE(conns[i]->write_line(plan_line));
  }
  // Let the reactors admit everything before the drain begins.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  EXPECT_EQ(server.metrics().counter("net.shard.0.accepted").value(), 2u);
  EXPECT_EQ(server.metrics().counter("net.shard.1.accepted").value(), 2u);

  server.drain();  // blocks until every admitted request is answered+flushed

  // Every response was flushed to the kernel before the server closed the
  // connections; the clients read them (then EOF) from their buffers.
  std::string line;
  ASSERT_EQ(conns[0]->read_line(&line, 2000), Connection::ReadResult::kLine);
  SimResponse sim_response;
  std::string error;
  ASSERT_TRUE(decode_sim_response(line, &sim_response, &error)) << error;
  EXPECT_TRUE(sim_response.accepted) << sim_response.message;
  for (int i = 1; i < 4; ++i) {
    ASSERT_EQ(conns[i]->read_line(&line, 2000),
              Connection::ReadResult::kLine);
    Response response;
    ASSERT_TRUE(decode_response(line, &response, &error)) << error;
    EXPECT_TRUE(response.accepted) << response.message;
  }
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace mlcr::net
