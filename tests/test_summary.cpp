#include "stat/summary.h"

#include <gtest/gtest.h>

namespace {

using mlcr::stat::Summary;

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Summary, KnownMeanAndVariance) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // sample variance of this classic set is 32/7
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, MergeMatchesSequential) {
  Summary all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double v = 0.37 * i - 3.0;
    all.add(v);
    (i < 40 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  Summary b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Summary, CiShrinksWithSamples) {
  Summary few, many;
  for (int i = 0; i < 10; ++i) few.add(i % 3);
  for (int i = 0; i < 1000; ++i) many.add(i % 3);
  EXPECT_GT(few.ci95_half_width(), many.ci95_half_width());
}

TEST(Summary, NumericallyStableOnLargeOffsets) {
  Summary s;
  for (int i = 0; i < 1000; ++i) s.add(1e12 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e12 + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25 * 1000.0 / 999.0, 1e-3);
}

}  // namespace
