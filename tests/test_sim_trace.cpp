// Deterministic trace-driven simulation tests: with failures injected at
// exact times, every rollback and restart is predictable to the second.
#include "sim/event_sim.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "exp/cases.h"
#include "stat/summary.h"

namespace {

using namespace mlcr;
using namespace mlcr::sim;

// Two-level system: C1 = R1 = 2 s, C2 = R2 = 10 s, A = 30 s, work = 1000 s.
model::SystemConfig two_level() {
  std::vector<model::LevelOverheads> levels{
      {model::Overhead::constant(2.0), model::Overhead::constant(2.0)},
      {model::Overhead::constant(10.0), model::Overhead::constant(10.0)}};
  model::FailureRates rates({1, 1}, 1000.0);
  return model::SystemConfig(/*te=*/500'000.0,
                             std::make_unique<model::LinearSpeedup>(1.0),
                             std::move(levels), std::move(rates),
                             /*allocation=*/30.0,
                             /*max_scale=*/500.0);
}

Schedule schedule_for(const model::SystemConfig& cfg, double x1, double x2) {
  model::Plan plan{{x1, x2}, 500.0};  // work = 500000/500 = 1000 s
  return Schedule::from_plan(cfg, plan, {true, true});
}

// High-rate variant for statistical tests (several level-1 failures per run).
model::SystemConfig two_level_hot() {
  std::vector<model::LevelOverheads> levels{
      {model::Overhead::constant(2.0), model::Overhead::constant(2.0)},
      {model::Overhead::constant(10.0), model::Overhead::constant(10.0)}};
  model::FailureRates rates({600, 0.001}, 1000.0);
  return model::SystemConfig(/*te=*/500'000.0,
                             std::make_unique<model::LinearSpeedup>(1.0),
                             std::move(levels), std::move(rates),
                             /*allocation=*/30.0,
                             /*max_scale=*/500.0);
}

SimOptions no_jitter() {
  SimOptions options;
  options.jitter_ratio = 0.0;
  return options;
}

TEST(SimTrace, NoFailuresExactArithmetic) {
  const auto cfg = two_level();
  const auto schedule = schedule_for(cfg, 10.0, 5.0);
  FailureTrace trace{{{}, {}}};
  common::Rng rng(1);
  const auto r = simulate_trace(cfg, schedule, trace, rng, no_jitter());
  ASSERT_TRUE(r.completed);
  // 9 level-1 grid points, of which 4 coincide with level-2 (every 200 s);
  // 4 level-2 checkpoints.  5 * 2 + 4 * 10 = 50 s overhead.
  EXPECT_EQ(r.checkpoints_per_level[0], 5);
  EXPECT_EQ(r.checkpoints_per_level[1], 4);
  EXPECT_NEAR(r.wallclock, 1000.0 + 50.0, 1e-9);
}

TEST(SimTrace, SingleLevel1FailureRollsBackToLastCheckpoint) {
  const auto cfg = two_level();
  const auto schedule = schedule_for(cfg, 10.0, 5.0);
  // Fail at t = 350 s.  Timeline: work 100 + ckpt(L1) 2, work to 200 (+2
  // in ckpts)... position at t=350: grid: each 100 s of work plus
  // overheads; by t = 350 the run is mid third interval.
  FailureTrace trace{{{350.0}, {}}};
  common::Rng rng(1);
  const auto r = simulate_trace(cfg, schedule, trace, rng, no_jitter());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.failures_per_level[0], 1);
  // Restart = A + R1 = 32 s; rollback = re-executed work.
  EXPECT_NEAR(r.portions.restart, 32.0, 1e-9);
  EXPECT_GT(r.portions.rollback, 0.0);
  EXPECT_LT(r.portions.rollback, 110.0);  // less than one interval + ckpt
  // total = work + first-pass ckpts (50) + restart + rollback
  EXPECT_NEAR(r.wallclock,
              1000.0 + 50.0 + 32.0 + r.portions.rollback, 1e-9);
}

TEST(SimTrace, Level2FailureDestroysLevel1Checkpoints) {
  const auto cfg = two_level();
  const auto schedule = schedule_for(cfg, 10.0, 5.0);
  // Level-2 failure at t = 350 s: rollback to the last LEVEL-2 checkpoint
  // (position 200), not the later level-1 checkpoint (position 300).
  FailureTrace trace{{{}, {350.0}}};
  common::Rng rng(1);
  const auto r = simulate_trace(cfg, schedule, trace, rng, no_jitter());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.failures_per_level[1], 1);
  EXPECT_NEAR(r.portions.restart, 40.0, 1e-9);  // A + R2
  // Re-executed work >= 100 s (position 200 -> ~344 minus overhead).
  EXPECT_GT(r.portions.rollback, 100.0);
}

TEST(SimTrace, FailureDuringCheckpointDefersUnderAtomicSemantics) {
  const auto cfg = two_level();
  const auto schedule = schedule_for(cfg, 10.0, 5.0);
  // The first level-1 checkpoint spans [100, 102).  A failure at 101 is
  // processed at 102, after the write persisted; the rollback target is
  // the just-written checkpoint, so no work is lost.
  FailureTrace trace{{{101.0}, {}}};
  common::Rng rng(1);
  const auto r = simulate_trace(cfg, schedule, trace, rng, no_jitter());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.failures_per_level[0], 1);
  EXPECT_NEAR(r.portions.rollback, 0.0, 1e-9);
  EXPECT_NEAR(r.wallclock, 1000.0 + 50.0 + 32.0, 1e-9);
}

TEST(SimTrace, FailureDuringCheckpointKillsWriteUnderStrictSemantics) {
  const auto cfg = two_level();
  const auto schedule = schedule_for(cfg, 10.0, 5.0);
  FailureTrace trace{{{101.0}, {}}};
  common::Rng rng(1);
  SimOptions options = no_jitter();
  options.atomic_checkpoints = false;
  const auto r = simulate_trace(cfg, schedule, trace, rng, options);
  ASSERT_TRUE(r.completed);
  // The interrupted write is discarded: rollback goes to position 0 and
  // the 100 s of work re-execute.
  EXPECT_NEAR(r.portions.rollback, 100.0 + 1.0, 1.5);
}

TEST(SimTrace, QueuedFailuresEachPayRecoveryUnderSerialSemantics) {
  const auto cfg = two_level();
  const auto schedule = schedule_for(cfg, 10.0, 5.0);
  // Two level-1 failures 5 s apart; the second arrives during the first
  // recovery (A + R1 = 32 s) and queues behind it.
  FailureTrace trace{{{150.0, 155.0}, {}}};
  common::Rng rng(1);
  const auto r = simulate_trace(cfg, schedule, trace, rng, no_jitter());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.failures_per_level[0], 2);
  EXPECT_NEAR(r.portions.restart, 64.0, 1e-9);  // 2 x (A + R1)
}

TEST(SimTrace, CollapseSemanticsShareTheRecovery) {
  const auto cfg = two_level();
  const auto schedule = schedule_for(cfg, 10.0, 5.0);
  FailureTrace trace{{{150.0, 155.0}, {}}};
  common::Rng rng(1);
  SimOptions options = no_jitter();
  options.serial_recovery = false;
  const auto r = simulate_trace(cfg, schedule, trace, rng, options);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.failures_per_level[0], 2);
  // First recovery runs 5 s, is aborted, second runs to completion:
  // 5 + 32 = 37 s in restart, less than the serial 64 s.
  EXPECT_NEAR(r.portions.restart, 37.0, 1e-9);
}

TEST(SimTrace, FailureAfterCompletionIsIgnored) {
  const auto cfg = two_level();
  const auto schedule = schedule_for(cfg, 10.0, 5.0);
  FailureTrace trace{{{5000.0}, {}}};
  common::Rng rng(1);
  const auto r = simulate_trace(cfg, schedule, trace, rng, no_jitter());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.failures_per_level[0], 0);
  EXPECT_NEAR(r.wallclock, 1050.0, 1e-9);
}

TEST(SimWeibull, ShapeOnePreservesExponentialStatistics) {
  const auto cfg = two_level_hot();
  const auto schedule = schedule_for(cfg, 10.0, 5.0);
  // weibull_shape = 1 must sample the same distribution family as the
  // default; means over many runs agree within Monte-Carlo noise.
  double mean_default = 0.0, mean_weibull = 0.0;
  constexpr int kRuns = 60;
  for (int seed = 0; seed < kRuns; ++seed) {
    common::Rng rng1(static_cast<std::uint64_t>(seed));
    mean_default += simulate(cfg, schedule, rng1, no_jitter()).wallclock;
    common::Rng rng2(static_cast<std::uint64_t>(seed) + 1000);
    SimOptions weibull = no_jitter();
    weibull.weibull_shape = 1.0;
    mean_weibull += simulate(cfg, schedule, rng2, weibull).wallclock;
  }
  EXPECT_NEAR(mean_weibull / mean_default, 1.0, 0.05);
}

TEST(SimWeibull, WearOutShapeChangesFailureClustering) {
  // Same mean rate but shape 3 (wear-out): inter-arrival variance shrinks,
  // so failure counts per run concentrate around the mean.
  const auto cfg = two_level_hot();
  const auto schedule = schedule_for(cfg, 10.0, 5.0);
  stat::Summary exponential_counts, weibull_counts;
  for (int seed = 0; seed < 80; ++seed) {
    common::Rng rng1(static_cast<std::uint64_t>(seed));
    const auto a = simulate(cfg, schedule, rng1, no_jitter());
    exponential_counts.add(static_cast<double>(a.failures_per_level[0]));
    common::Rng rng2(static_cast<std::uint64_t>(seed));
    SimOptions weibull = no_jitter();
    weibull.weibull_shape = 3.0;
    const auto b = simulate(cfg, schedule, rng2, weibull);
    weibull_counts.add(static_cast<double>(b.failures_per_level[0]));
  }
  // Comparable means...
  EXPECT_NEAR(weibull_counts.mean() / std::max(1.0, exponential_counts.mean()),
              1.0, 0.35);
  // ...but lower dispersion for the wear-out shape.
  EXPECT_LT(weibull_counts.variance(), exponential_counts.variance());
}

}  // namespace
