#include "opt/algorithm1.h"

#include <gtest/gtest.h>

#include "common/log.h"
#include "common/units.h"
#include "exp/cases.h"
#include "opt/planner.h"

namespace {

using namespace mlcr;
using namespace mlcr::opt;

model::SystemConfig fti_config(std::vector<double> rates_per_day,
                               double te_core_days = 3e6) {
  return exp::make_fti_system(te_core_days,
                              exp::FailureCase{"case", std::move(rates_per_day)});
}

TEST(Algorithm1, ConvergesAtPaperDelta) {
  const auto cfg = fti_config({16, 12, 8, 4});
  Algorithm1Options options;
  options.delta = 1e-12;
  const auto r = optimize_multilevel(cfg, options);
  ASSERT_TRUE(r.converged);
  // Paper: 7-15 outer iterations; allow headroom for our exact variant.
  EXPECT_LE(r.outer_iterations, 60);
  EXPECT_GT(r.wallclock, 0.0);
}

TEST(Algorithm1, SelfConsistentFailureCounts) {
  // At convergence, mu_i == lambda_i(N*) * E(Tw) and the wall-clock equals
  // the Formula (21) evaluation under exactly those counts.
  const auto cfg = fti_config({16, 12, 8, 4});
  const auto r = optimize_multilevel(cfg);
  ASSERT_TRUE(r.converged);
  const auto mu = model::MuModel::from_rates(cfg.rates(), r.wallclock);
  EXPECT_NEAR(model::expected_wallclock(cfg, mu, r.plan), r.wallclock,
              r.wallclock * 1e-6);
}

TEST(Algorithm1, PortionsSumToWallclock) {
  const auto cfg = fti_config({8, 6, 4, 2});
  const auto r = optimize_multilevel(cfg);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.portions.total(), r.wallclock, r.wallclock * 1e-6);
}

TEST(Algorithm1, HighestPaperRateStillConverges) {
  // Paper: "the failure rate is set up to 16+12+8+4 = 40 failures per day,
  // which is already very high.  Algorithm 1 can still converge quickly."
  const auto cfg = fti_config({16, 12, 8, 4});
  const auto r = optimize_multilevel(cfg);
  EXPECT_TRUE(r.converged);
}

TEST(Algorithm1, FixedScaleVariant) {
  const auto cfg = fti_config({16, 12, 8, 4});
  Algorithm1Options options;
  options.optimize_scale = false;
  options.fixed_scale = 1e6;
  const auto r = optimize_multilevel(cfg, options);
  ASSERT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.plan.scale, 1e6);
}

TEST(Algorithm1, OptimizedScaleInPaperBand) {
  // Paper Table III: ML(opt-scale) uses 472k-734k cores (40-79% of 1m)
  // across the six failure cases.  Check the extreme cases land in a
  // compatible band.
  const auto high = optimize_multilevel(fti_config({16, 12, 8, 4}));
  const auto low = optimize_multilevel(fti_config({4, 2, 1, 0.5}));
  ASSERT_TRUE(high.converged);
  ASSERT_TRUE(low.converged);
  EXPECT_GT(high.plan.scale, 2e5);
  EXPECT_LT(high.plan.scale, 7e5);
  EXPECT_GT(low.plan.scale, high.plan.scale);
  EXPECT_LT(low.plan.scale, 9.5e5);
}

TEST(Algorithm1, SingleLevelVariantConverges) {
  const auto cfg = fti_config({16, 12, 8, 4}).single_level_view();
  const auto r = optimize_single_level(cfg);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.plan.intervals.size(), 1u);
  // SL(opt-scale) shrinks the scale drastically (paper Table III: 41k).
  EXPECT_LT(r.plan.scale, 3e5);
}

TEST(Algorithm1, SingleLevelRejectsMultilevelConfig) {
  const auto cfg = fti_config({16, 12, 8, 4});
  EXPECT_THROW((void)optimize_single_level(cfg), common::Error);
}

TEST(Planner, FourSolutionsHaveExpectedShapes) {
  const auto cfg = fti_config({16, 12, 8, 4});
  for (const auto solution : all_solutions()) {
    const auto r = plan(solution, cfg);
    ASSERT_TRUE(r.optimization.converged) << to_string(solution);
    EXPECT_EQ(r.full_plan.intervals.size(), 4u) << to_string(solution);
    EXPECT_EQ(r.level_enabled.size(), 4u) << to_string(solution);
    EXPECT_TRUE(r.level_enabled.back()) << to_string(solution);
  }
}

TEST(Planner, OriScaleSolutionsUseFullMachine) {
  const auto cfg = fti_config({16, 12, 8, 4});
  const auto ml = plan(Solution::kMultilevelOriScale, cfg);
  const auto sl = plan(Solution::kSingleLevelOriScale, cfg);
  EXPECT_DOUBLE_EQ(ml.full_plan.scale, 1e6);
  EXPECT_DOUBLE_EQ(sl.full_plan.scale, 1e6);
}

TEST(Planner, SingleLevelPlannersDisableLowerLevels) {
  const auto cfg = fti_config({16, 12, 8, 4});
  const auto sl = plan(Solution::kSingleLevelOptScale, cfg);
  EXPECT_FALSE(sl.level_enabled[0]);
  EXPECT_FALSE(sl.level_enabled[1]);
  EXPECT_FALSE(sl.level_enabled[2]);
  EXPECT_TRUE(sl.level_enabled[3]);
}

TEST(Planner, MultilevelOptScaleUsesFewerCoresThanOriScale) {
  const auto cfg = fti_config({16, 12, 8, 4});
  const auto opt = plan(Solution::kMultilevelOptScale, cfg);
  const auto ori = plan(Solution::kMultilevelOriScale, cfg);
  EXPECT_LT(opt.full_plan.scale, ori.full_plan.scale);
}

TEST(Planner, PredictedWallclockOrderingMatchesPaper) {
  // Under the analytic model, ML(opt-scale) <= ML(ori-scale) and
  // SL(opt-scale) <= SL(ori-scale) on their respective targets.
  const auto cfg = fti_config({16, 12, 8, 4});
  const auto ml_opt = plan(Solution::kMultilevelOptScale, cfg);
  const auto ml_ori = plan(Solution::kMultilevelOriScale, cfg);
  const auto sl_opt = plan(Solution::kSingleLevelOptScale, cfg);
  const auto sl_ori = plan(Solution::kSingleLevelOriScale, cfg);
  EXPECT_LE(ml_opt.optimization.wallclock,
            ml_ori.optimization.wallclock * 1.0001);
  EXPECT_LE(sl_opt.optimization.wallclock,
            sl_ori.optimization.wallclock * 1.0001);
  // And the multilevel optimum beats the single-level optimum overall.
  EXPECT_LT(ml_opt.optimization.wallclock, sl_opt.optimization.wallclock);
}

TEST(Algorithm1, TraceHasOneEntryPerOuterIteration) {
  const auto cfg = fti_config({16, 12, 8, 4});
  Algorithm1Options options;
  options.delta = 1e-12;
  const auto r = optimize_multilevel(cfg, options);
  ASSERT_TRUE(r.converged);
  ASSERT_EQ(r.trace.size(), static_cast<std::size_t>(r.outer_iterations));
  for (std::size_t i = 0; i < r.trace.size(); ++i) {
    const auto& step = r.trace[i];
    EXPECT_EQ(step.iteration, static_cast<int>(i) + 1);
    EXPECT_GT(step.wallclock_estimate, 0.0);
    EXPECT_GT(step.wallclock, 0.0);
    EXPECT_GE(step.mu_change, 0.0);
    EXPECT_GT(step.inner_iterations, 0);
  }
  // The trace ends exactly where the headline numbers say it does.
  EXPECT_DOUBLE_EQ(r.trace.back().mu_change, r.final_mu_change);
  EXPECT_DOUBLE_EQ(r.trace.back().wallclock, r.wallclock);
  EXPECT_LE(r.trace.back().mu_change, options.delta);
}

TEST(Algorithm1, TraceInvariantHoldsOnNonConvergedRuns) {
  const auto cfg = fti_config({16, 12, 8, 4});
  Algorithm1Options options;
  options.delta = 1e-12;
  options.max_outer_iterations = 2;
  options.aitken = false;  // plain iteration cannot reach 1e-12 in 2 rounds
  const auto r = optimize_multilevel(cfg, options);
  ASSERT_EQ(r.status, Status::kMaxIterations);
  EXPECT_EQ(r.trace.size(), 2u);
  EXPECT_EQ(r.outer_iterations, 2);
}

TEST(Algorithm1, TraceRecordsAitkenJumps) {
  // With acceleration on, the paper-delta run must use at least one
  // extrapolation jump (that is what compresses the iteration count into
  // the quoted 7-15), and the jump flag must appear in the trace.
  const auto cfg = fti_config({16, 12, 8, 4});
  Algorithm1Options options;
  options.delta = 1e-12;
  const auto accelerated = optimize_multilevel(cfg, options);
  ASSERT_TRUE(accelerated.converged);
  int jumps = 0;
  for (const auto& step : accelerated.trace) {
    if (step.aitken_jump) ++jumps;
  }
  EXPECT_GT(jumps, 0);

  options.aitken = false;
  const auto plain = optimize_multilevel(cfg, options);
  for (const auto& step : plain.trace) EXPECT_FALSE(step.aitken_jump);
}

TEST(Algorithm1, PortionsZeroedWhenNotConverged) {
  // A non-converged run's plan is a stale iterate; reporting a time
  // breakdown computed from it would look plausible and mean nothing.
  const auto cfg = fti_config({16, 12, 8, 4});
  Algorithm1Options options;
  options.max_outer_iterations = 1;
  options.aitken = false;
  const auto r = optimize_multilevel(cfg, options);
  ASSERT_NE(r.status, Status::kOk);
  EXPECT_DOUBLE_EQ(r.portions.productive, 0.0);
  EXPECT_DOUBLE_EQ(r.portions.checkpoint, 0.0);
  EXPECT_DOUBLE_EQ(r.portions.restart, 0.0);
  EXPECT_DOUBLE_EQ(r.portions.rollback, 0.0);

  const auto sl_cfg = fti_config({16, 12, 8, 4}).single_level_view();
  const auto sl = optimize_single_level(sl_cfg, options);
  ASSERT_NE(sl.status, Status::kOk);
  EXPECT_DOUBLE_EQ(sl.portions.total(), 0.0);
}

TEST(Algorithm1, DivergedRunReportsDivergedStatusAndNoPortions) {
  const auto saved = common::log_level();
  common::set_log_level(common::LogLevel::kError);
  const auto cfg = fti_config({1e3, 1e3, 1e3, 1e3});
  Algorithm1Options options;
  options.optimize_scale = false;
  options.fixed_scale = 1e6;
  const auto r = optimize_multilevel(cfg, options);
  common::set_log_level(saved);
  EXPECT_EQ(r.status, Status::kDiverged);
  EXPECT_FALSE(r.converged);
  EXPECT_FALSE(r.message.empty());
  EXPECT_DOUBLE_EQ(r.portions.total(), 0.0);
  // The trace shows the blow-up, one entry per iteration actually run.
  EXPECT_EQ(r.trace.size(), static_cast<std::size_t>(r.outer_iterations));
}

TEST(Algorithm1, NonFiniteIntermediatesSurfaceAsDivergedNotException) {
  // Regression: pin the solver at a fixed scale just below the speedup's
  // zero at 2*N_sym, where g(N) is a sliver above 0 and Te/g(N) explodes.
  // The resulting overflow/NaN used to escape as a NumericError exception;
  // the boundary guards must turn it into kDiverged with a zeroed plan.
  const auto saved = common::log_level();
  common::set_log_level(common::LogLevel::kError);
  const auto cfg = fti_config({16, 12, 8, 4}, /*te_core_days=*/1e290);
  Algorithm1Options options;
  options.optimize_scale = false;
  options.fixed_scale = 2e6 - 1e-6;  // N_sym = 1e6 in make_fti_system
  Algorithm1Result r;
  ASSERT_NO_THROW(r = optimize_multilevel(cfg, options));
  common::set_log_level(saved);
  EXPECT_EQ(r.status, Status::kDiverged);
  EXPECT_FALSE(r.converged);
  EXPECT_NE(r.message.find("non-finite"), std::string::npos) << r.message;
  EXPECT_DOUBLE_EQ(r.wallclock, 0.0);
  EXPECT_DOUBLE_EQ(r.portions.total(), 0.0);
  EXPECT_TRUE(r.plan.intervals.empty());
}

TEST(Algorithm1, StatusToStringCoversAllStatuses) {
  EXPECT_EQ(to_string(Status::kOk), "ok");
  EXPECT_EQ(to_string(Status::kDiverged), "diverged");
  EXPECT_EQ(to_string(Status::kMaxIterations), "max-iterations");
  EXPECT_EQ(to_string(Status::kInvalidConfig), "invalid-config");
  EXPECT_EQ(to_string(Status::kInternalError), "internal-error");
}

class Algorithm1CaseSweep
    : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(Algorithm1CaseSweep, ConvergesOnEveryPaperCase) {
  const auto cfg = fti_config(GetParam());
  Algorithm1Options options;
  options.delta = 1e-12;
  const auto r = optimize_multilevel(cfg, options);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.plan.scale, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    PaperCases, Algorithm1CaseSweep,
    ::testing::Values(std::vector<double>{16, 12, 8, 4},
                      std::vector<double>{8, 6, 4, 2},
                      std::vector<double>{4, 3, 2, 1},
                      std::vector<double>{16, 8, 4, 2},
                      std::vector<double>{8, 4, 2, 1},
                      std::vector<double>{4, 2, 1, 0.5}));

}  // namespace
