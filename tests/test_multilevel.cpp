#include "opt/multilevel.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.h"
#include "opt/grid_search.h"
#include "opt/young.h"

namespace {

using namespace mlcr;
using namespace mlcr::opt;

// Four-level FTI system (Table II fits) at exascale (N_star = 1e6).
model::SystemConfig fti_config(double te_core_days = 3e6) {
  std::vector<model::LevelOverheads> levels{
      {model::Overhead::constant(0.866), model::Overhead::constant(0.866)},
      {model::Overhead::constant(2.586), model::Overhead::constant(2.586)},
      {model::Overhead::constant(3.886), model::Overhead::constant(3.886)},
      {model::Overhead::linear(5.5, 0.0212),
       model::Overhead::linear(5.5, 0.0212)}};
  model::FailureRates rates({16, 12, 8, 4}, 1e6);
  return model::SystemConfig(common::core_days_to_seconds(te_core_days),
                             std::make_unique<model::QuadraticSpeedup>(0.46,
                                                                       1e6),
                             std::move(levels), std::move(rates), 60.0);
}

// A mu model of realistic magnitude: ~13 days at 1e6 cores, rates 16-12-8-4
// per day => mu ~ (208, 156, 104, 52) at N = 1e6.
model::MuModel realistic_mu() {
  const double days = 13.0;
  return model::MuModel(
      {16 * days / 1e6, 12 * days / 1e6, 8 * days / 1e6, 4 * days / 1e6});
}

TEST(Multilevel, ConvergesOnFtiSystem) {
  const auto cfg = fti_config();
  const auto mu = realistic_mu();
  const auto s = solve_multilevel(cfg, mu);
  ASSERT_TRUE(s.converged);
  EXPECT_GT(s.plan.scale, 1e5);
  EXPECT_LE(s.plan.scale, 1e6);
  for (double x : s.plan.intervals) EXPECT_GE(x, 1.0);
}

TEST(Multilevel, StationarityOfIntervals) {
  const auto cfg = fti_config();
  const auto mu = realistic_mu();
  const auto s = solve_multilevel(cfg, mu);
  ASSERT_TRUE(s.converged);
  for (std::size_t i = 0; i < 4; ++i) {
    if (s.plan.intervals[i] <= 1.0) continue;  // clamped at the bound
    const double dx = model::wallclock_dx(cfg, mu, s.plan, i);
    EXPECT_NEAR(dx / cfg.ckpt_cost(i, s.plan.scale), 0.0, 1e-5)
        << "level " << i;
  }
}

TEST(Multilevel, StationarityOfScale) {
  const auto cfg = fti_config();
  const auto mu = realistic_mu();
  const auto s = solve_multilevel(cfg, mu);
  ASSERT_TRUE(s.converged);
  if (s.plan.scale < cfg.scale_upper_bound() * 0.999) {
    const double dn = model::wallclock_dn(cfg, mu, s.plan);
    const double magnitude =
        cfg.productive_time(s.plan.scale) / s.plan.scale;
    EXPECT_NEAR(dn / magnitude, 0.0, 1e-3);
  }
}

TEST(Multilevel, CoordinateDescentCannotImprove) {
  const auto cfg = fti_config();
  const auto mu = realistic_mu();
  const auto s = solve_multilevel(cfg, mu);
  ASSERT_TRUE(s.converged);
  const auto refined = coordinate_descent_multilevel(cfg, mu, s.plan);
  EXPECT_LE(s.wallclock, refined.best_value * 1.0005);
}

TEST(Multilevel, BeatsYoungInitialization) {
  const auto cfg = fti_config();
  const auto mu = realistic_mu();
  const auto s = solve_multilevel(cfg, mu);
  model::Plan young_plan;
  young_plan.scale = cfg.scale_upper_bound();
  young_plan.intervals = young_interval_counts(cfg, mu, young_plan.scale);
  EXPECT_LT(s.wallclock, model::expected_wallclock(cfg, mu, young_plan));
}

TEST(Multilevel, FixedScaleKeepsScale) {
  const auto cfg = fti_config();
  const auto mu = realistic_mu();
  MultilevelOptions options;
  options.optimize_scale = false;
  options.fixed_scale = 1e6;
  const auto s = solve_multilevel(cfg, mu, options);
  ASSERT_TRUE(s.converged);
  EXPECT_DOUBLE_EQ(s.plan.scale, 1e6);
}

TEST(Multilevel, OptScaleAtLeastAsGoodAsFixed) {
  const auto cfg = fti_config();
  const auto mu = realistic_mu();
  const auto opt = solve_multilevel(cfg, mu);
  MultilevelOptions fixed_options;
  fixed_options.optimize_scale = false;
  fixed_options.fixed_scale = 1e6;
  const auto fixed = solve_multilevel(cfg, mu, fixed_options);
  EXPECT_LE(opt.wallclock, fixed.wallclock + 1e-9);
}

TEST(Multilevel, LowerLevelsCheckpointMoreOften) {
  // With higher failure rates and cheaper checkpoints at lower levels, the
  // optimal interval counts decrease with the level index.
  const auto cfg = fti_config();
  const auto mu = realistic_mu();
  const auto s = solve_multilevel(cfg, mu);
  ASSERT_TRUE(s.converged);
  EXPECT_GT(s.plan.intervals[0], s.plan.intervals[1]);
  EXPECT_GT(s.plan.intervals[1], s.plan.intervals[2]);
  EXPECT_GT(s.plan.intervals[2], s.plan.intervals[3]);
}

TEST(Multilevel, FewerFailuresLargerScale) {
  // Paper Table III trend: as rates drop from 16-12-8-4 to 4-3-2-1, the
  // optimized scale grows toward N_star.
  const auto cfg = fti_config();
  const auto high = solve_multilevel(cfg, realistic_mu());
  const double days = 13.0;
  const model::MuModel low_mu(
      {4 * days / 1e6, 3 * days / 1e6, 2 * days / 1e6, 1 * days / 1e6});
  const auto low = solve_multilevel(cfg, low_mu);
  ASSERT_TRUE(high.converged);
  ASSERT_TRUE(low.converged);
  EXPECT_GT(low.plan.scale, high.plan.scale);
}

TEST(Multilevel, TinyFailureRatesPushScaleToNstar) {
  // Paper: "if no root exists in [0, N_star], the optimal N equals N_star;
  // this occurs with very few failures or small checkpoint overhead".
  const auto cfg = fti_config();
  const model::MuModel mu({1e-10, 1e-10, 1e-10, 1e-10});
  const auto s = solve_multilevel(cfg, mu);
  ASSERT_TRUE(s.converged);
  // The root of Formula (24) sits within a few cores of N_star because the
  // residual failure terms are ~1e-6 of the speedup gradient.
  EXPECT_NEAR(s.plan.scale, 1e6, 100.0);
}

class MultilevelRateSweep
    : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(MultilevelRateSweep, SolutionDominatesPerturbations) {
  const auto cfg = fti_config();
  const double days = 13.0;
  std::vector<double> b;
  for (double r : GetParam()) b.push_back(r * days / 1e6);
  const model::MuModel mu(b);
  const auto s = solve_multilevel(cfg, mu);
  ASSERT_TRUE(s.converged);
  const double base = model::expected_wallclock(cfg, mu, s.plan);
  // Perturb each coordinate by +-10%; the objective must not improve.
  for (std::size_t i = 0; i <= 4; ++i) {
    for (double factor : {0.9, 1.1}) {
      model::Plan p = s.plan;
      if (i < 4) {
        p.intervals[i] = std::max(1.0, p.intervals[i] * factor);
      } else {
        p.scale = std::min(cfg.scale_upper_bound(), p.scale * factor);
      }
      EXPECT_GE(model::expected_wallclock(cfg, mu, p), base * (1 - 1e-9))
          << "coordinate " << i << " factor " << factor;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperCases, MultilevelRateSweep,
    ::testing::Values(std::vector<double>{16, 12, 8, 4},
                      std::vector<double>{8, 6, 4, 2},
                      std::vector<double>{4, 3, 2, 1},
                      std::vector<double>{16, 8, 4, 2},
                      std::vector<double>{8, 4, 2, 1},
                      std::vector<double>{4, 2, 1, 0.5}));

}  // namespace
