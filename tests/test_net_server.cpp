// End-to-end tests for the planning daemon core (net::Server) and the
// bounded admission queue in front of its solvers.  The central invariant:
// a report served over TCP is field-for-field identical to the in-process
// SweepEngine::plan_one result — the daemon adds transport, admission
// control, and deadlines, never a different answer.
#include "net/server.h"

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "ctrl/replanner.h"
#include "exp/cases.h"
#include "net/client.h"
#include "net/json.h"
#include "net/protocol.h"
#include "svc/admission_queue.h"
#include "svc/sweep_engine.h"

namespace mlcr::net {
namespace {

// --- admission queue ---------------------------------------------------

TEST(AdmissionQueue, CapacityZeroAdmitsNothing) {
  svc::AdmissionQueue queue(0);
  EXPECT_FALSE(queue.try_push([] {}));
  EXPECT_EQ(queue.size(), 0u);
  queue.close();
  std::function<void()> job;
  EXPECT_FALSE(queue.pop(&job));
}

TEST(AdmissionQueue, RejectsWhenFullHandsOutInFifoOrder) {
  svc::AdmissionQueue queue(2);
  std::vector<int> order;
  ASSERT_TRUE(queue.try_push([&order] { order.push_back(1); }));
  ASSERT_TRUE(queue.try_push([&order] { order.push_back(2); }));
  EXPECT_FALSE(queue.try_push([&order] { order.push_back(3); }));  // full
  EXPECT_EQ(queue.size(), 2u);

  std::function<void()> job;
  ASSERT_TRUE(queue.pop(&job));
  job();
  ASSERT_TRUE(queue.pop(&job));
  job();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  // A slot freed up, so admission resumes.
  EXPECT_TRUE(queue.try_push([] {}));
}

TEST(AdmissionQueue, CloseDrainsQueuedJobsThenStopsConsumers) {
  svc::AdmissionQueue queue(4);
  std::atomic<int> ran{0};
  ASSERT_TRUE(queue.try_push([&ran] { ++ran; }));
  ASSERT_TRUE(queue.try_push([&ran] { ++ran; }));
  queue.close();
  EXPECT_FALSE(queue.try_push([&ran] { ++ran; }));  // no admissions after close

  std::function<void()> job;
  while (queue.pop(&job)) job();  // queued work still handed out
  EXPECT_EQ(ran.load(), 2);
  EXPECT_FALSE(queue.pop(&job));  // closed and empty: consumers exit
}

TEST(AdmissionQueue, PopBlocksUntilPushOrClose) {
  svc::AdmissionQueue queue(1);
  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    std::function<void()> job;
    while (queue.pop(&job)) job();
    popped.store(true);
  });
  ASSERT_TRUE(queue.try_push([] {}));
  queue.close();
  consumer.join();
  EXPECT_TRUE(popped.load());
}

// --- server end to end -------------------------------------------------

svc::PlanRequest paper_request(double te = 3e6, std::size_t failure_case = 0) {
  return {exp::make_fti_system(te, exp::paper_failure_cases()[failure_case]),
          opt::Solution::kMultilevelOptScale,
          {},
          "test"};
}

/// The exact wire encoding with non-deterministic timing fields zeroed —
/// equality means "the same answer", independent of where it was solved.
std::string fingerprint(const svc::PlanReport& report) {
  return deterministic_fingerprint(report);
}

ServerOptions small_server() {
  ServerOptions options;
  options.port = 0;  // ephemeral
  options.shards = 2;
  options.solver_threads = 2;
  options.queue_capacity = 16;
  return options;
}

TEST(NetServer, ReportMatchesInProcessPlanOneExactly) {
  Server server(small_server());
  server.start();
  Client client({.port = server.port()});

  const svc::PlanRequest request = paper_request();
  const Response response = client.plan(request);
  ASSERT_TRUE(response.accepted) << response.message;

  svc::SweepEngine engine({.threads = 1});
  const svc::PlanReport local = *engine.plan_one(request);
  EXPECT_EQ(fingerprint(response.report), fingerprint(local));
  EXPECT_EQ(response.report.key, local.key);
  EXPECT_EQ(response.report.status, local.status);
  EXPECT_EQ(response.report.wallclock(), local.wallclock());
  EXPECT_EQ(response.report.plan().scale, local.plan().scale);
  EXPECT_EQ(response.report.plan().intervals, local.plan().intervals);
}

TEST(NetServer, BadRequestAnswersStructuredErrorAndKeepsConnection) {
  Server server(small_server());
  server.start();
  Connection conn(connect_to("127.0.0.1", server.port(), 5000));

  // Unparseable line -> structured bad_request, connection stays usable.
  ASSERT_TRUE(conn.write_line("this is not json"));
  std::string line;
  ASSERT_EQ(conn.read_line(&line, 5000), Connection::ReadResult::kLine);
  Response response;
  std::string error;
  ASSERT_TRUE(decode_response(line, &response, &error)) << error;
  EXPECT_FALSE(response.accepted);
  EXPECT_EQ(response.reject, Reject::kBadRequest);

  // Well-formed JSON with a malformed plan body: same taxonomy, and the
  // error names the missing field.
  ASSERT_TRUE(
      conn.write_line(R"x({"op":"plan","solution":"ML(opt-scale)"})x"));
  ASSERT_EQ(conn.read_line(&line, 5000), Connection::ReadResult::kLine);
  ASSERT_TRUE(decode_response(line, &response, &error)) << error;
  EXPECT_EQ(response.reject, Reject::kBadRequest);
  EXPECT_NE(response.message.find("config"), std::string::npos)
      << response.message;

  // The same connection still answers pings.
  ASSERT_TRUE(conn.write_line(R"({"op":"ping"})"));
  ASSERT_EQ(conn.read_line(&line, 5000), Connection::ReadResult::kLine);
  EXPECT_NE(line.find("pong"), std::string::npos);

  EXPECT_EQ(server.metrics().counter("net.rejected.bad_request").value(), 2u);
}

TEST(NetServer, FullQueueRejectsOverloaded) {
  ServerOptions options = small_server();
  options.queue_capacity = 0;  // degenerate queue: every plan is shed
  Server server(options);
  server.start();
  Client client({.port = server.port()});

  const Response response = client.plan(paper_request());
  ASSERT_FALSE(response.accepted);
  EXPECT_EQ(response.reject, Reject::kOverloaded);
  EXPECT_EQ(server.metrics().counter("net.rejected.overloaded").value(), 1u);
  // Ping and metrics bypass admission — the daemon stays observable while
  // shedding load.
  EXPECT_TRUE(client.ping());
}

TEST(NetServer, ExpiredDeadlineRejectsButCacheHitsAreServed) {
  Server server(small_server());
  server.start();
  Client client({.port = server.port()});
  const svc::PlanRequest request = paper_request();

  // deadline_ms < 0 is already expired: the solver must not run.
  const Response expired = client.plan(request, -1);
  ASSERT_FALSE(expired.accepted);
  EXPECT_EQ(expired.reject, Reject::kDeadline);
  EXPECT_EQ(server.metrics().counter("net.rejected.deadline").value(), 1u);

  // Solve it once for real...
  const Response solved = client.plan(request);
  ASSERT_TRUE(solved.accepted) << solved.message;
  EXPECT_FALSE(solved.report.cache_hit);

  // ...after which even an expired deadline is served from cache (hits cost
  // microseconds; only misses are load-shed).
  const Response cached = client.plan(request, -1);
  ASSERT_TRUE(cached.accepted) << cached.message;
  EXPECT_TRUE(cached.report.cache_hit);
  EXPECT_EQ(fingerprint(cached.report), fingerprint(solved.report));
}

TEST(NetServer, MetricsOpExposesDaemonAndEngineCounters) {
  Server server(small_server());
  server.start();
  Client client({.port = server.port()});
  ASSERT_TRUE(client.plan(paper_request()).accepted);

  const std::string jsonl = client.metrics();
  EXPECT_NE(jsonl.find("\"net.requests\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"net.planned\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"net.queue.capacity\""), std::string::npos);
  // Engine instruments ride along in the same dump.
  EXPECT_NE(jsonl.find("cache."), std::string::npos);
  // Every line is valid JSON.
  std::size_t start = 0;
  while (start < jsonl.size()) {
    const std::size_t end = jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    std::string error;
    EXPECT_TRUE(
        json::parse(jsonl.substr(start, end - start), &error).has_value())
        << error;
    start = end + 1;
  }
}

TEST(NetServer, ConcurrentClientsAllGetTheSameAnswer) {
  Server server(small_server());
  server.start();
  const std::uint16_t port = server.port();

  svc::SweepEngine engine({.threads = 1});
  const std::string expected = fingerprint(*engine.plan_one(paper_request()));

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(4);
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([port, &expected, &mismatches] {
      Client client({.port = port});
      for (int j = 0; j < 3; ++j) {
        const Response response = client.plan(paper_request());
        if (!response.accepted ||
            fingerprint(response.report) != expected) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& thread : clients) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(server.metrics().counter("net.planned").value(), 12u);
}

TEST(NetServer, DrainForceClosesPeersThatStopReading) {
  ServerOptions options = small_server();
  options.drain_flush_timeout_ms = 200;  // bounded, and short for the test
  Server server(options);
  server.start();

  // Warm the plan cache so every pipelined request below is a cache hit,
  // answered inline on the reactor thread in microseconds.
  {
    Client warmup({.port = server.port()});
    ASSERT_TRUE(warmup.plan(paper_request()).accepted);
  }

  // A tiny receive buffer keeps the peer's TCP window small, so the
  // server's responses overrun the kernel buffers quickly once we stop
  // reading.
  Socket socket = connect_to("127.0.0.1", server.port(), 5000);
  const int rcvbuf = 4096;
  ::setsockopt(socket.fd(), SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  Connection conn(std::move(socket));

  // Pipeline identical plan requests and never read a byte.  The label is
  // not part of the canonical key but is echoed in every report, so a fat
  // label makes each cache-hit response ~64 KiB: a couple hundred of them
  // (~8 MB) decisively overrun what loopback TCP buffers absorb before
  // send() blocks (a few MB), the server's flush hits EWOULDBLOCK, and the
  // rest parks in the conn's outbuf — the shape of a peer that stopped
  // reading.  Few-but-fat keeps the request count low enough for the
  // sanitizer builds to answer them all well inside the poll budget below.
  svc::PlanRequest request = paper_request();
  request.label = std::string(64 * 1024, 'x');
  const std::string request_line = encode_request_line(request);
  constexpr std::size_t kRequests = 120;
  for (std::size_t i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(conn.write_line(request_line));
  }
  // Let the server answer everything (into buffers) so the stall is
  // established before the drain starts.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server.metrics().counter("net.planned").value() <
             static_cast<double>(kRequests + 1) &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.metrics().counter("net.planned").value(),
            static_cast<double>(kRequests + 1));

  // Without the flush-timeout bound this would hang forever on the unread
  // backlog; with it, the stalled conn is force-closed and drain returns.
  const auto drain_start = std::chrono::steady_clock::now();
  server.drain();
  const double drain_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    drain_start)
          .count();
  EXPECT_FALSE(server.running());
  EXPECT_GE(server.metrics().counter("net.drain.force_closed").value(), 1.0);
  EXPECT_LT(drain_seconds, 10.0);
}

TEST(NetServer, DrainFinishesInFlightWorkAndStopsAccepting) {
  Server server(small_server());
  server.start();
  const std::uint16_t port = server.port();

  Client client({.port = port});
  ASSERT_TRUE(client.plan(paper_request()).accepted);
  ASSERT_TRUE(server.running());

  server.drain();
  EXPECT_FALSE(server.running());
  server.drain();  // idempotent
  EXPECT_FALSE(server.running());

  // The listener is gone: new connections fail at the transport level.
  EXPECT_THROW(Client({.port = port, .timeout_ms = 500}), common::Error);
}

svc::SimRequest paper_sim_request(int runs = 24) {
  // Fusion-scale FTI system (te_core_days=30, n_star=1024): small enough to
  // simulate quickly, and its plan/sim agreement is within a few percent.
  svc::SimRequest request{
      exp::make_fti_system(30.0, exp::FailureCase{"fusion", {24, 18, 12, 6}},
                           1024.0),
      opt::Solution::kMultilevelOptScale,
      {},
      {},
      svc::SimBackend::kCoarse,
      "sim-test"};
  request.monte_carlo.runs = runs;
  request.monte_carlo.seed = 1234;
  return request;
}

TEST(NetServer, ValidateReportMatchesInProcessValidateOne) {
  Server server(small_server());
  server.start();
  Client client({.port = server.port()});

  const svc::SimRequest request = paper_sim_request();
  const SimResponse response = client.validate(request);
  ASSERT_TRUE(response.accepted) << response.message;
  EXPECT_TRUE(response.report.ok()) << response.report.message;
  EXPECT_EQ(response.report.runs, request.monte_carlo.runs);

  svc::SweepEngine engine({.threads = 1});
  const svc::SimReport local = *engine.validate_one(request);
  EXPECT_EQ(deterministic_fingerprint(response.report),
            deterministic_fingerprint(local));
  EXPECT_EQ(response.report.wallclock.mean, local.wallclock.mean);
  EXPECT_EQ(server.metrics().counter("net.validated").value(), 1u);
}

TEST(NetServer, DesValidateOverTheWireMatchesInProcessBitExactly) {
  Server server(small_server());
  server.start();
  Client client({.port = server.port()});

  svc::SimRequest request = paper_sim_request(12);
  request.backend = svc::SimBackend::kDes;
  const SimResponse response = client.validate(request);
  ASSERT_TRUE(response.accepted) << response.message;
  ASSERT_TRUE(response.report.ok()) << response.report.message;
  EXPECT_EQ(response.report.backend, svc::SimBackend::kDes);

  svc::SweepEngine engine({.threads = 1});
  const svc::SimReport local = *engine.validate_one(request);
  EXPECT_EQ(deterministic_fingerprint(response.report),
            deterministic_fingerprint(local));
}

TEST(NetServer, LegacyV1ValidateIsServedByteIdentically) {
  // A pre-backend (v1) client sends no "v" or "v":1 and no backend field;
  // the response must speak v1 and omit the backend member, so the line is
  // byte-for-byte what the v1 daemon produced.
  Server server(small_server());
  server.start();
  Connection conn(connect_to("127.0.0.1", server.port(), 5000));

  const svc::SimRequest request = paper_sim_request(12);
  json::Object envelope =
      json::parse(encode_sim_request_line(request), nullptr).value().as_object();
  envelope.erase("v");
  ASSERT_TRUE(conn.write_line(json::dump(json::Value(envelope))));
  std::string line;
  ASSERT_EQ(conn.read_line(&line, 20000), Connection::ReadResult::kLine);
  EXPECT_NE(line.find("\"v\":1"), std::string::npos) << line;
  EXPECT_EQ(line.find("\"v\":2"), std::string::npos) << line;
  EXPECT_EQ(line.find("backend"), std::string::npos) << line;
  SimResponse response;
  std::string error;
  ASSERT_TRUE(decode_sim_response(line, &response, &error)) << error;
  ASSERT_TRUE(response.accepted) << response.message;

  // The same request spoken at v2 gets a v2 answer with the same payload.
  ASSERT_TRUE(conn.write_line(encode_sim_request_line(request)));
  ASSERT_EQ(conn.read_line(&line, 20000), Connection::ReadResult::kLine);
  EXPECT_NE(line.find("\"v\":2"), std::string::npos) << line;
  SimResponse modern;
  ASSERT_TRUE(decode_sim_response(line, &modern, &error)) << error;
  EXPECT_EQ(deterministic_fingerprint(modern.report),
            deterministic_fingerprint(response.report));
}

TEST(NetServer, UnknownBackendOverTheWireIsABadRequest) {
  Server server(small_server());
  server.start();
  Connection conn(connect_to("127.0.0.1", server.port(), 5000));
  json::Object envelope =
      json::parse(encode_sim_request_line(paper_sim_request(4)), nullptr)
          .value()
          .as_object();
  envelope["backend"] = json::Value("turbo");
  ASSERT_TRUE(conn.write_line(json::dump(json::Value(envelope))));
  std::string line;
  ASSERT_EQ(conn.read_line(&line, 5000), Connection::ReadResult::kLine);
  Response response;
  std::string error;
  ASSERT_TRUE(decode_response(line, &response, &error)) << error;
  EXPECT_FALSE(response.accepted);
  EXPECT_EQ(response.reject, Reject::kBadRequest);
  EXPECT_NE(response.message.find("coarse"), std::string::npos)
      << response.message;
  EXPECT_NE(response.message.find("des"), std::string::npos)
      << response.message;
}

TEST(NetServer, UnknownOpAnswersStructuredErrorListingSupportedOps) {
  Server server(small_server());
  server.start();
  Connection conn(connect_to("127.0.0.1", server.port(), 5000));
  ASSERT_TRUE(conn.write_line(R"({"op":"frobnicate"})"));
  std::string line;
  ASSERT_EQ(conn.read_line(&line, 5000), Connection::ReadResult::kLine);
  Response response;
  std::string error;
  ASSERT_TRUE(decode_response(line, &response, &error)) << error;
  EXPECT_FALSE(response.accepted);
  EXPECT_EQ(response.reject, Reject::kBadRequest);
  EXPECT_NE(response.message.find("frobnicate"), std::string::npos)
      << response.message;
  EXPECT_NE(response.message.find("plan|validate|ping|metrics|ingest|subscribe"),
            std::string::npos)
      << response.message;
  // The supported ops also ride along as a structured array.
  std::string parse_error;
  const auto parsed = json::parse(line, &parse_error);
  ASSERT_TRUE(parsed.has_value()) << parse_error;
  const json::Value* supported = parsed->find("supported");
  ASSERT_NE(supported, nullptr);
  ASSERT_TRUE(supported->is_array());
  EXPECT_EQ(supported->as_array().size(), supported_ops().size());
  // The connection stays usable after the unknown op.
  ASSERT_TRUE(conn.write_line(R"({"op":"ping","v":1})"));
  ASSERT_EQ(conn.read_line(&line, 5000), Connection::ReadResult::kLine);
  EXPECT_NE(line.find("pong"), std::string::npos);
}

TEST(NetServer, UnsupportedProtocolVersionIsRejected) {
  Server server(small_server());
  server.start();
  Connection conn(connect_to("127.0.0.1", server.port(), 5000));
  ASSERT_TRUE(conn.write_line(R"({"op":"ping","v":3})"));
  std::string line;
  ASSERT_EQ(conn.read_line(&line, 5000), Connection::ReadResult::kLine);
  Response response;
  std::string error;
  ASSERT_TRUE(decode_response(line, &response, &error)) << error;
  EXPECT_FALSE(response.accepted);
  EXPECT_EQ(response.reject, Reject::kBadRequest);
  EXPECT_NE(response.message.find("unsupported protocol version"),
            std::string::npos)
      << response.message;
  // Absent "v" means version 1: the same connection still serves it.
  ASSERT_TRUE(conn.write_line(R"({"op":"ping"})"));
  ASSERT_EQ(conn.read_line(&line, 5000), Connection::ReadResult::kLine);
  EXPECT_NE(line.find("pong"), std::string::npos);
}

TEST(NetServer, ServerDefaultDeadlineAppliesWhenRequestCarriesNone) {
  ServerOptions options = small_server();
  options.default_deadline_ms = -1;  // every uncached miss is pre-expired
  Server server(options);
  server.start();
  Client client({.port = server.port()});

  const Response shed = client.plan(paper_request());
  ASSERT_FALSE(shed.accepted);
  EXPECT_EQ(shed.reject, Reject::kDeadline);

  // An explicit per-request deadline overrides the server default.
  const Response solved = client.plan(paper_request(), 60000);
  ASSERT_TRUE(solved.accepted) << solved.message;
}

// --- control plane: ingest + subscribe ---------------------------------

constexpr double kDay = 86400.0;

/// Events exactly every `interval` seconds in (start, end].
std::vector<double> on_schedule(double start, double end, double interval) {
  std::vector<double> events;
  for (double t = start + interval; t <= end; t += interval) {
    events.push_back(t);
  }
  return events;
}

/// One observation window with every level exactly on the planned schedule
/// (rates 16-12-8-4 per day), except level 1 which fires every
/// `l1_interval` seconds.  On-schedule counts keep the Gamma-Poisson
/// posterior mean exactly at the planned rate, so the stationary windows
/// below provably never drift (see test_ctrl.cpp for the arithmetic).
ctrl::IngestRequest ctrl_batch(const svc::PlanRequest& base, double start,
                               double end, double l1_interval) {
  ctrl::IngestRequest request(base);
  request.trace.arrivals_per_level = {
      on_schedule(start, end, l1_interval),
      on_schedule(start, end, kDay / 12.0),
      on_schedule(start, end, kDay / 8.0),
      on_schedule(start, end, kDay / 4.0),
  };
  request.observed_seconds = end;
  return request;
}

TEST(IngestOp, FoldsBatchesAndAnswersEstimatorState) {
  Server server(small_server());
  server.start();
  Client client({.port = server.port()});

  const svc::PlanRequest base = paper_request();
  const IngestResponse response =
      client.ingest(ctrl_batch(base, 0.0, kDay, kDay / 16.0));
  ASSERT_TRUE(response.accepted) << response.message;
  EXPECT_EQ(response.report.key, svc::canonical_key(base));
  EXPECT_EQ(response.report.batch_events, 40u);
  EXPECT_FALSE(response.report.drift_detected);
  EXPECT_FALSE(response.report.replanned);
  ASSERT_EQ(response.report.levels.size(), 4u);
  // Estimator state round-trips bit-exactly (hex-float doubles).
  EXPECT_DOUBLE_EQ(response.report.levels[0].rate_posterior,
                   response.report.levels[0].baseline_rate);

  // A regressing observation window is a structured bad_request, and the
  // connection survives to serve the corrected retry.
  const IngestResponse regressed =
      client.ingest(ctrl_batch(base, 0.0, kDay, kDay / 16.0));
  ASSERT_FALSE(regressed.accepted);
  EXPECT_EQ(regressed.reject, Reject::kBadRequest);
  const IngestResponse retried =
      client.ingest(ctrl_batch(base, kDay, 2.0 * kDay, kDay / 16.0));
  EXPECT_TRUE(retried.accepted) << retried.message;
  EXPECT_EQ(retried.report.total_events, 80u);
}

TEST(IngestOp, MalformedTraceTextIsAStructuredBadRequest) {
  Server server(small_server());
  server.start();
  Connection conn(connect_to("127.0.0.1", server.port(), 5000));

  // A syntactically valid envelope whose embedded trace text is garbage:
  // the sim::read_trace rejection surfaces as a bad_request naming the
  // offending line, not as a dropped connection.
  json::Value envelope =
      encode_ingest_request(ctrl_batch(paper_request(), 0.0, kDay, 5400.0));
  json::Object corrupted = envelope.as_object();
  corrupted["trace"] = json::Value(std::string("1.5 2 junk"));
  ASSERT_TRUE(conn.write_line(json::dump(json::Value(corrupted))));
  std::string line;
  ASSERT_EQ(conn.read_line(&line, 5000), Connection::ReadResult::kLine);
  IngestResponse response;
  std::string error;
  ASSERT_TRUE(decode_ingest_response(line, &response, &error)) << error;
  EXPECT_FALSE(response.accepted);
  EXPECT_EQ(response.reject, Reject::kBadRequest);
  EXPECT_NE(response.message.find("line 1"), std::string::npos)
      << response.message;
}

TEST(SubscribeOp, AcksWithKeyAndRejectsDoubleSubscribe) {
  Server server(small_server());
  server.start();
  Client client({.port = server.port()});

  const svc::PlanRequest base = paper_request();
  const SubscribeResponse ack = client.subscribe(base);
  ASSERT_TRUE(ack.accepted) << ack.message;
  EXPECT_EQ(ack.key, svc::canonical_key(base));
  EXPECT_EQ(ack.plan_epoch, 0u);

  const SubscribeResponse again = client.subscribe(base);
  ASSERT_FALSE(again.accepted);
  EXPECT_EQ(again.reject, Reject::kBadRequest);
  EXPECT_NE(again.message.find("already subscribed"), std::string::npos)
      << again.message;
}

/// The acceptance loop end to end under one codec: subscribe, ingest a
/// stationary day (no push), ingest three drifted days (push), and check
/// the pushed report is bit-identical to an in-process re-solve of the
/// re-estimated config.
void drift_push_round_trip(Codec codec) {
  Server server(small_server());
  server.start();
  const svc::PlanRequest base = paper_request();

  Client subscriber({.port = server.port(), .codec = codec});
  const SubscribeResponse ack = subscriber.subscribe(base);
  ASSERT_TRUE(ack.accepted) << ack.message;

  // Day 1 exactly on the planned schedule: stationary, nothing pushed.
  Client ingester({.port = server.port(), .codec = codec});
  const IngestResponse quiet =
      ingester.ingest(ctrl_batch(base, 0.0, kDay, kDay / 16.0));
  ASSERT_TRUE(quiet.accepted) << quiet.message;
  EXPECT_FALSE(quiet.report.drift_detected);
  EXPECT_FALSE(subscriber.poll_event(200).has_value());

  // Days 2-4: level 1 fires every 2700 s (double its planned 16/day).  The
  // posterior ratio crosses 1.5 and the CUSUM alarms, so the daemon
  // re-solves and pushes the revision.
  const IngestResponse drifted =
      ingester.ingest(ctrl_batch(base, kDay, 4.0 * kDay, 2700.0));
  ASSERT_TRUE(drifted.accepted) << drifted.message;
  EXPECT_TRUE(drifted.report.drift_detected);
  EXPECT_TRUE(drifted.report.replanned);

  const std::optional<PushEvent> pushed = subscriber.poll_event(60000);
  ASSERT_TRUE(pushed.has_value());
  ASSERT_EQ(pushed->kind, PushEvent::Kind::kPlan);
  EXPECT_EQ(pushed->key, svc::canonical_key(base));
  EXPECT_EQ(pushed->plan_epoch, 1u);

  // Bit-exactness: replay the same two batches through a fresh in-process
  // Replanner and solve the revision locally — the pushed report must match
  // field for field.
  ctrl::Replanner replay;
  (void)replay.ingest(ctrl_batch(base, 0.0, kDay, kDay / 16.0));
  const ctrl::IngestOutcome outcome =
      replay.ingest(ctrl_batch(base, kDay, 4.0 * kDay, 2700.0));
  ASSERT_TRUE(outcome.revised.has_value());
  svc::SweepEngine engine({.threads = 1});
  const svc::PlanReport local = *engine.plan_one(*outcome.revised);
  EXPECT_EQ(fingerprint(pushed->report), fingerprint(local));
  EXPECT_EQ(pushed->report.plan().scale, local.plan().scale);
  EXPECT_EQ(pushed->report.plan().intervals, local.plan().intervals);

  // A stationary follow-up at the revised rate stays quiet.
  const double revised_l1 = 116.0 / (4.0 * 5400.0 + 4.0 * kDay);
  const IngestResponse after = ingester.ingest(
      ctrl_batch(base, 4.0 * kDay, 5.0 * kDay, 1.0 / revised_l1));
  ASSERT_TRUE(after.accepted) << after.message;
  EXPECT_FALSE(after.report.drift_detected);
  EXPECT_EQ(after.report.plan_epoch, 1u);
  EXPECT_FALSE(subscriber.poll_event(200).has_value());
}

TEST(SubscribeOp, DriftPushesRevisedPlanBitExactJson) {
  drift_push_round_trip(Codec::kJson);
}

TEST(SubscribeOp, DriftPushesRevisedPlanBitExactBinary) {
  drift_push_round_trip(Codec::kBinary);
}

TEST(SubscribeOp, DrainNotifiesSubscribersBeforeClosing) {
  Server server(small_server());
  server.start();
  Client subscriber({.port = server.port()});
  ASSERT_TRUE(subscriber.subscribe(paper_request()).accepted);

  std::thread drainer([&server] { server.drain(); });
  const std::optional<PushEvent> event = subscriber.poll_event(10000);
  drainer.join();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->kind, PushEvent::Kind::kDrained);
  // The drained line is the last one: the server closes the connection.
  EXPECT_THROW((void)subscriber.poll_event(5000), common::Error);
}

}  // namespace
}  // namespace mlcr::net
