#include "opt/level_selection.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/units.h"
#include "exp/cases.h"

namespace {

using namespace mlcr;
using namespace mlcr::opt;

TEST(ReduceToLevels, KeepsAllWhenAllEnabled) {
  const auto cfg =
      exp::make_fti_system(3e6, exp::FailureCase{"t", {16, 12, 8, 4}});
  const auto reduced = reduce_to_levels(cfg, {true, true, true, true});
  EXPECT_EQ(reduced.levels(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(reduced.rates().per_day_at_baseline(i),
                     cfg.rates().per_day_at_baseline(i));
  }
}

TEST(ReduceToLevels, MergesDisabledRatesUpward) {
  const auto cfg =
      exp::make_fti_system(3e6, exp::FailureCase{"t", {16, 12, 8, 4}});
  // Disable levels 2 and 3: their failure types recover from level 4.
  const auto reduced = reduce_to_levels(cfg, {true, false, false, true});
  ASSERT_EQ(reduced.levels(), 2u);
  EXPECT_DOUBLE_EQ(reduced.rates().per_day_at_baseline(0), 16.0);
  EXPECT_DOUBLE_EQ(reduced.rates().per_day_at_baseline(1), 12.0 + 8.0 + 4.0);
  // The surviving levels keep their own overheads.
  EXPECT_DOUBLE_EQ(reduced.ckpt_cost(0, 1000.0), cfg.ckpt_cost(0, 1000.0));
  EXPECT_DOUBLE_EQ(reduced.ckpt_cost(1, 1000.0), cfg.ckpt_cost(3, 1000.0));
}

TEST(ReduceToLevels, DisablingLevelOneMergesIntoLevelTwo) {
  const auto cfg =
      exp::make_fti_system(3e6, exp::FailureCase{"t", {16, 12, 8, 4}});
  const auto reduced = reduce_to_levels(cfg, {false, true, true, true});
  ASSERT_EQ(reduced.levels(), 3u);
  EXPECT_DOUBLE_EQ(reduced.rates().per_day_at_baseline(0), 28.0);
}

TEST(ReduceToLevels, RejectsDisabledTopLevel) {
  const auto cfg =
      exp::make_fti_system(3e6, exp::FailureCase{"t", {16, 12, 8, 4}});
  EXPECT_THROW((void)reduce_to_levels(cfg, {true, true, true, false}),
               common::Error);
}

TEST(LevelSelection, FtiSystemNearTieWithAllLevels) {
  // A subtle model effect: frequent cheap level-1 checkpoints inflate the
  // rollback of every HIGHER-level failure (the redo term
  // sum C_k x_k / (2 x_i) of Formula (18)), so selection prefers the
  // {3, 4} subset by a hair (<2%) over enabling everything.  The top two
  // levels must always survive selection here.
  const auto cfg =
      exp::make_fti_system(3e6, exp::FailureCase{"t", {16, 12, 8, 4}});
  const auto r = optimize_with_level_selection(cfg);
  EXPECT_TRUE(r.enabled[2]);
  EXPECT_TRUE(r.enabled[3]);
  const double all_levels = r.subset_wallclocks.back();  // mask 0b111
  EXPECT_LE(r.optimization.wallclock, all_levels);
  EXPECT_GT(r.optimization.wallclock, all_levels * 0.98);
}

TEST(LevelSelection, DropsUselessExpensiveLevel) {
  // Level 2: enormous checkpoint cost, (almost) no failures of its type —
  // paying for its checkpoints buys nothing, so selection must disable it.
  std::vector<model::LevelOverheads> levels{
      {model::Overhead::constant(0.9), model::Overhead::constant(0.9)},
      {model::Overhead::constant(800.0), model::Overhead::constant(800.0)},
      {model::Overhead::constant(3.9), model::Overhead::constant(3.9)},
      {model::Overhead::linear(5.5, 0.0212), model::Overhead::constant(5.5)}};
  model::FailureRates rates({16, 0.001, 8, 4}, 1e6);
  model::SystemConfig cfg(common::core_days_to_seconds(3e6),
                          std::make_unique<model::QuadraticSpeedup>(0.46, 1e6),
                          std::move(levels), std::move(rates), 60.0);
  const auto r = optimize_with_level_selection(cfg);
  EXPECT_FALSE(r.enabled[1]);
  EXPECT_TRUE(r.enabled[0]);
  EXPECT_TRUE(r.enabled[3]);
}

TEST(LevelSelection, NeverWorseThanAllLevels) {
  for (const auto& failure_case : exp::paper_failure_cases()) {
    const auto cfg = exp::make_fti_system(3e6, failure_case);
    const auto all = optimize_multilevel(cfg);
    const auto selected = optimize_with_level_selection(cfg);
    ASSERT_TRUE(all.converged) << failure_case.name;
    EXPECT_LE(selected.optimization.wallclock, all.wallclock * 1.0001)
        << failure_case.name;
  }
}

TEST(LevelSelection, FullPlanDisablesUnselectedLevels) {
  std::vector<model::LevelOverheads> levels{
      {model::Overhead::constant(0.9), model::Overhead::constant(0.9)},
      {model::Overhead::constant(800.0), model::Overhead::constant(800.0)},
      {model::Overhead::constant(3.9), model::Overhead::constant(3.9)},
      {model::Overhead::linear(5.5, 0.0212), model::Overhead::constant(5.5)}};
  model::FailureRates rates({16, 0.001, 8, 4}, 1e6);
  model::SystemConfig cfg(common::core_days_to_seconds(3e6),
                          std::make_unique<model::QuadraticSpeedup>(0.46, 1e6),
                          std::move(levels), std::move(rates), 60.0);
  const auto r = optimize_with_level_selection(cfg);
  ASSERT_EQ(r.full_plan.intervals.size(), 4u);
  EXPECT_DOUBLE_EQ(r.full_plan.intervals[1], 1.0);  // disabled -> x = 1
  EXPECT_GT(r.full_plan.intervals[0], 1.0);
  EXPECT_GT(r.full_plan.intervals[3], 1.0);
}

TEST(LevelSelection, ReportsEverySubset) {
  const auto cfg =
      exp::make_fti_system(3e6, exp::FailureCase{"t", {8, 6, 4, 2}});
  const auto r = optimize_with_level_selection(cfg);
  ASSERT_EQ(r.subset_wallclocks.size(), 8u);  // 2^(4-1)
  double minimum = r.subset_wallclocks[0];
  for (double w : r.subset_wallclocks) {
    EXPECT_TRUE(std::isfinite(w));
    minimum = std::min(minimum, w);
  }
  // The winner is exactly the subset minimum.
  EXPECT_DOUBLE_EQ(minimum, r.optimization.wallclock);
}

}  // namespace
