#include "rs/reed_solomon.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace {

using namespace mlcr::rs;

std::vector<std::vector<std::uint8_t>> random_shards(int total, int data,
                                                     std::size_t size,
                                                     std::uint64_t seed) {
  mlcr::common::Rng rng(seed);
  std::vector<std::vector<std::uint8_t>> shards(
      static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    shards[static_cast<std::size_t>(i)].resize(size);
    if (i < data) {
      for (auto& byte : shards[static_cast<std::size_t>(i)]) {
        byte = static_cast<std::uint8_t>(rng.next());
      }
    }
  }
  return shards;
}

TEST(ReedSolomon, EncodeThenVerify) {
  ReedSolomon rs(4, 2);
  auto shards = random_shards(6, 4, 1024, 1);
  rs.encode(shards);
  EXPECT_TRUE(rs.verify(shards));
}

TEST(ReedSolomon, VerifyDetectsCorruption) {
  ReedSolomon rs(4, 2);
  auto shards = random_shards(6, 4, 256, 2);
  rs.encode(shards);
  shards[1][100] ^= 0x40;
  EXPECT_FALSE(rs.verify(shards));
}

TEST(ReedSolomon, RecoversSingleDataLoss) {
  ReedSolomon rs(5, 2);
  auto shards = random_shards(7, 5, 512, 3);
  rs.encode(shards);
  const auto original = shards;
  shards[2].clear();
  std::vector<bool> present(7, true);
  present[2] = false;
  ASSERT_TRUE(rs.reconstruct(shards, present));
  EXPECT_EQ(shards[2], original[2]);
  EXPECT_TRUE(rs.verify(shards));
}

TEST(ReedSolomon, RecoversParityLoss) {
  ReedSolomon rs(3, 2);
  auto shards = random_shards(5, 3, 128, 4);
  rs.encode(shards);
  const auto original = shards;
  shards[4].clear();
  std::vector<bool> present(5, true);
  present[4] = false;
  ASSERT_TRUE(rs.reconstruct(shards, present));
  EXPECT_EQ(shards[4], original[4]);
}

TEST(ReedSolomon, FailsBeyondParityCount) {
  ReedSolomon rs(4, 2);
  auto shards = random_shards(6, 4, 64, 5);
  rs.encode(shards);
  std::vector<bool> present(6, true);
  present[0] = present[1] = present[2] = false;  // 3 losses > m = 2
  EXPECT_FALSE(rs.reconstruct(shards, present));
}

TEST(ReedSolomon, AllErasurePatternsUpToParityRecover) {
  // Exhaustive property: every pattern of <= m erasures must reconstruct
  // bit-exactly.  (4+3 choose <=3) patterns.
  const int k = 4, m = 3, total = k + m;
  ReedSolomon rs(k, m);
  auto pristine = random_shards(total, k, 96, 6);
  rs.encode(pristine);

  for (int mask = 0; mask < (1 << total); ++mask) {
    const int losses = __builtin_popcount(static_cast<unsigned>(mask));
    if (losses == 0 || losses > m) continue;
    auto shards = pristine;
    std::vector<bool> present(static_cast<std::size_t>(total), true);
    for (int i = 0; i < total; ++i) {
      if (mask & (1 << i)) {
        shards[static_cast<std::size_t>(i)].assign(96, 0xEE);  // garbage
        present[static_cast<std::size_t>(i)] = false;
      }
    }
    ASSERT_TRUE(rs.reconstruct(shards, present)) << "mask " << mask;
    for (int i = 0; i < total; ++i) {
      EXPECT_EQ(shards[static_cast<std::size_t>(i)],
                pristine[static_cast<std::size_t>(i)])
          << "mask " << mask << " shard " << i;
    }
  }
}

TEST(ReedSolomon, NoMissingShardsIsNoop) {
  ReedSolomon rs(4, 2);
  auto shards = random_shards(6, 4, 32, 7);
  rs.encode(shards);
  const auto original = shards;
  std::vector<bool> present(6, true);
  ASSERT_TRUE(rs.reconstruct(shards, present));
  EXPECT_EQ(shards, original);
}

TEST(ReedSolomon, SingleParityActsLikeXor) {
  // m = 1 reduces to a parity stripe: losing any one shard must recover.
  ReedSolomon rs(6, 1);
  auto shards = random_shards(7, 6, 64, 8);
  rs.encode(shards);
  const auto original = shards;
  for (int lost = 0; lost < 7; ++lost) {
    auto copy = original;
    copy[static_cast<std::size_t>(lost)].assign(64, 0);
    std::vector<bool> present(7, true);
    present[static_cast<std::size_t>(lost)] = false;
    ASSERT_TRUE(rs.reconstruct(copy, present)) << lost;
    EXPECT_EQ(copy, original) << lost;
  }
}

TEST(ReedSolomon, RejectsBadGeometry) {
  EXPECT_THROW(ReedSolomon(0, 2), mlcr::common::Error);
  EXPECT_THROW(ReedSolomon(2, 0), mlcr::common::Error);
  EXPECT_THROW(ReedSolomon(200, 100), mlcr::common::Error);
}

class RsGeometrySweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RsGeometrySweep, WorstCaseErasureRecovers) {
  const auto [k, m] = GetParam();
  ReedSolomon rs(k, m);
  auto shards = random_shards(k + m, k, 200, 99);
  rs.encode(shards);
  const auto original = shards;
  // Lose the first m shards (all-data erasure where possible: hardest case
  // since every lost shard needs the parity rows).
  std::vector<bool> present(static_cast<std::size_t>(k + m), true);
  for (int i = 0; i < m && i < k; ++i) {
    shards[static_cast<std::size_t>(i)].clear();
    present[static_cast<std::size_t>(i)] = false;
  }
  ASSERT_TRUE(rs.reconstruct(shards, present));
  EXPECT_EQ(shards, original);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, RsGeometrySweep,
    ::testing::Values(std::pair{2, 1}, std::pair{4, 2}, std::pair{8, 2},
                      std::pair{8, 4}, std::pair{16, 4}, std::pair{32, 8},
                      std::pair{100, 28}));

}  // namespace
