// End-to-end tests for the validation pipeline (SweepEngine::validate_one /
// validate_sweep): plan a request, fault-inject the plan with the parallel
// Monte-Carlo driver, report plan-vs-simulated error.  The central
// invariants: the report is bit-identical for every thread count (the
// `solver-nondeterminism` contract extended to simulation), failures come
// back as reports rather than exceptions, and at the paper's validation
// scales the analytic model agrees with the simulation within 5%
// (Figure 4's claim).
#include "svc/sweep_engine.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <optional>
#include <vector>

#include "common/log.h"
#include "exp/cases.h"
#include "net/protocol.h"
#include "svc/sim_request.h"

namespace mlcr::svc {
namespace {

SimRequest fusion_request(int runs = 40, std::uint64_t seed = 11) {
  // Fusion-scale FTI system (Figure 4's regime): checkpoint costs are small
  // relative to intervals, so analytic and simulated means agree tightly.
  SimRequest request{
      exp::make_fti_system(30.0, exp::FailureCase{"fusion", {24, 18, 12, 6}},
                           1024.0),
      opt::Solution::kMultilevelOptScale,
      {},
      {},
      SimBackend::kCoarse,
      "fusion"};
  request.monte_carlo.runs = runs;
  request.monte_carlo.seed = seed;
  return request;
}

TEST(ValidatePipeline, OneThreadAndEightThreadsAreBitIdentical) {
  // The whole pipeline — plan, replica fan-out, merge, error computation —
  // must be a pure function of the request.  Compared via the wire
  // fingerprint, which zeroes only the timing/cache fields.
  SweepEngine narrow({.threads = 1});
  SweepEngine wide({.threads = 8});
  const auto a = narrow.validate_one(fusion_request());
  const auto b = wide.validate_one(fusion_request());
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  ASSERT_TRUE(a->ok()) << a->message;
  EXPECT_EQ(net::deterministic_fingerprint(*a),
            net::deterministic_fingerprint(*b));
  // Spot-check the raw moments too: the fingerprint must not be hiding a
  // lossy encoding.
  EXPECT_EQ(a->wallclock.mean, b->wallclock.mean);
  EXPECT_EQ(a->wallclock.stddev, b->wallclock.stddev);
  EXPECT_EQ(a->efficiency.mean, b->efficiency.mean);
  EXPECT_EQ(a->wallclock_error, b->wallclock_error);
}

TEST(ValidatePipeline, FusionScaleErrorWithinFivePercent) {
  SweepEngine engine({.threads = 2});
  const auto report = engine.validate_one(fusion_request(60));
  ASSERT_TRUE(report.has_value());
  ASSERT_TRUE(report->ok()) << report->message;
  ASSERT_EQ(report->incomplete_runs, 0);
  EXPECT_LT(std::abs(report->wallclock_error), 0.05)
      << "simulated " << report->wallclock.mean << " analytic "
      << report->plan.wallclock();
  // Portion errors are normalized by the analytic wall-clock, so they are
  // bounded by the wall-clock error budget as well.
  EXPECT_LT(std::abs(report->portion_errors.productive), 0.05);
}

TEST(ValidatePipeline, SecondValidationIsACacheHit) {
  SweepEngine engine({.threads = 2});
  const auto first = engine.validate_one(fusion_request());
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(first->cache_hit);
  EXPECT_EQ(engine.sim_cache_size(), 1u);

  const auto second = engine.validate_one(fusion_request());
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->wallclock.mean, first->wallclock.mean);
  EXPECT_EQ(second->key, first->key);
  EXPECT_EQ(engine.metrics().counter("validate.cache.hits").value(), 1u);

  // The plan half landed in the plan cache: planning the same problem later
  // is free.
  const auto plan = engine.plan_one(fusion_request().plan_request());
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->cache_hit);
}

TEST(ValidatePipeline, DifferentSeedsProduceDifferentReports) {
  SweepEngine engine({.threads = 2});
  const auto a = engine.validate_one(fusion_request(40, 1));
  const auto b = engine.validate_one(fusion_request(40, 2));
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_FALSE(b->cache_hit);  // seed is part of the canonical key
  EXPECT_NE(a->wallclock.mean, b->wallclock.mean);
}

TEST(ValidatePipeline, InvalidMonteCarloOptionsComeBackAsReports) {
  SweepEngine engine({.threads = 1});
  SimRequest request = fusion_request();
  request.monte_carlo.runs = 0;
  const auto report = engine.validate_one(request);
  ASSERT_TRUE(report.has_value());  // never throws, never nullopt
  EXPECT_EQ(report->status, opt::Status::kInvalidConfig);
  EXPECT_NE(report->message.find("runs"), std::string::npos)
      << report->message;

  SimRequest sentinel = fusion_request();
  sentinel.monte_carlo.seed = sim::kSeedSentinel;
  const auto rejected = engine.validate_one(sentinel);
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(rejected->status, opt::Status::kInvalidConfig);
}

TEST(ValidatePipeline, FailedPlanPropagatesWithPlanPrefix) {
  // Divergent planning problem (see test_sweep_engine): the sim layer must
  // report the plan failure, not simulate garbage.
  const auto saved = common::log_level();
  common::set_log_level(common::LogLevel::kError);
  SimRequest request{
      exp::make_fti_system(3e6, exp::FailureCase{"hot", {1e3, 1e3, 1e3, 1e3}}),
      opt::Solution::kMultilevelOriScale,
      {},
      {},
      SimBackend::kCoarse,
      "diverging"};
  request.monte_carlo.runs = 4;
  SweepEngine engine({.threads = 1});
  const auto report = engine.validate_one(request);
  common::set_log_level(saved);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->status, opt::Status::kDiverged);
  EXPECT_EQ(report->message.rfind("plan: ", 0), 0u) << report->message;
  EXPECT_EQ(report->wallclock.count, 0u);  // nothing was simulated
}

TEST(ValidatePipeline, ExpiredDeadlineReturnsNulloptButCacheHitsAreServed) {
  SweepEngine engine({.threads = 1});
  const auto past =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  EXPECT_FALSE(
      engine.validate_one(fusion_request(), std::optional(past)).has_value());
  EXPECT_EQ(engine.metrics().counter("validate.expired").value(), 1u);
  EXPECT_EQ(engine.sim_cache_size(), 0u);

  const auto solved = engine.validate_one(fusion_request());
  ASSERT_TRUE(solved.has_value());
  const auto cached =
      engine.validate_one(fusion_request(), std::optional(past));
  ASSERT_TRUE(cached.has_value());  // hits cost microseconds: always served
  EXPECT_TRUE(cached->cache_hit);
  EXPECT_EQ(cached->wallclock.mean, solved->wallclock.mean);
}

TEST(ValidatePipeline, SweepKeepsOrderAndAccountsForEveryRequest) {
  std::vector<SimRequest> requests = {
      fusion_request(20, 1), fusion_request(20, 2), fusion_request(20, 1)};
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].label = "v-" + std::to_string(i);
  }
  SweepEngine engine({.threads = 2});
  SimSweepStats stats;
  const auto reports = engine.validate_sweep(requests, &stats);
  ASSERT_EQ(reports.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(reports[i].label, "v-" + std::to_string(i));
    EXPECT_TRUE(reports[i].ok()) << reports[i].message;
  }
  // Request 2 repeats request 0's key: served from the sim cache.
  EXPECT_TRUE(reports[2].cache_hit);
  EXPECT_EQ(reports[2].wallclock.mean, reports[0].wallclock.mean);

  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.simulated, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.requests, stats.simulated + stats.cache_hits);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.replicas, 40u);  // 2 simulated requests x 20 runs
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.sim_seconds_total, 0.0);
  EXPECT_GE(stats.sim_seconds_max, 0.0);
  EXPECT_GT(stats.worst_abs_error, 0.0);
  EXPECT_LT(stats.worst_abs_error, 0.10);
}

SimRequest des_request(int runs = 12, std::uint64_t seed = 11) {
  SimRequest request = fusion_request(runs, seed);
  request.backend = SimBackend::kDes;
  return request;
}

TEST(ValidatePipeline, DesReportsAreBitIdenticalAcrossThreadCounts) {
  // The DES replica kernel rides the same chunk/span/merge driver as the
  // coarse kernel, so the full pipeline stays a pure function of the
  // request at every pool width.
  SweepEngine narrow({.threads = 1});
  SweepEngine wide({.threads = 8});
  const auto a = narrow.validate_one(des_request());
  const auto b = wide.validate_one(des_request());
  ASSERT_TRUE(a.has_value() && b.has_value());
  ASSERT_TRUE(a->ok()) << a->message;
  EXPECT_EQ(a->backend, SimBackend::kDes);
  EXPECT_EQ(net::deterministic_fingerprint(*a),
            net::deterministic_fingerprint(*b));
  EXPECT_EQ(a->wallclock.mean, b->wallclock.mean);
  EXPECT_EQ(a->wallclock.stddev, b->wallclock.stddev);
}

TEST(ValidatePipeline, DesErrorWithinFivePercentAtFusionScale) {
  // The cross-backend golden gate: at the paper's Figure 4 baseline both
  // backends must sit inside the 5% validation band, and within a few
  // percent of each other.
  SweepEngine engine({.threads = 2});
  const auto des = engine.validate_one(des_request(16));
  const auto coarse = engine.validate_one(fusion_request(16));
  ASSERT_TRUE(des.has_value() && coarse.has_value());
  ASSERT_TRUE(des->ok()) << des->message;
  ASSERT_EQ(des->incomplete_runs, 0);
  EXPECT_LT(std::abs(des->wallclock_error), 0.05)
      << "des " << des->wallclock.mean << " analytic "
      << des->plan.wallclock();
  EXPECT_NEAR(des->wallclock.mean / coarse->wallclock.mean, 1.0, 0.05);
}

TEST(ValidatePipeline, BackendsSplitTheCacheButShareThePlanHalf) {
  SweepEngine engine({.threads = 2});
  const auto coarse = engine.validate_one(fusion_request(12));
  ASSERT_TRUE(coarse.has_value());
  EXPECT_FALSE(coarse->cache_hit);
  // Same problem, different backend: a genuine miss, not a cache hit
  // serving coarse numbers to a DES caller.
  const auto des = engine.validate_one(des_request(12));
  ASSERT_TRUE(des.has_value());
  EXPECT_FALSE(des->cache_hit);
  EXPECT_NE(des->key, coarse->key);
  EXPECT_EQ(engine.sim_cache_size(), 2u);
  // But the plan half is backend-independent and shared: the DES leg hit
  // the plan cache warmed by the coarse one.
  EXPECT_EQ(engine.metrics().counter("cache.hits").value(), 1u);

  const auto again = engine.validate_one(des_request(12));
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(again->cache_hit);
  EXPECT_EQ(again->wallclock.mean, des->wallclock.mean);
}

TEST(ValidatePipeline, PerBackendMetricsSplitTheAggregates) {
  SweepEngine engine({.threads = 2});
  ASSERT_TRUE(engine.validate_one(fusion_request(12))->ok());
  ASSERT_TRUE(engine.validate_one(des_request(12))->ok());
  auto& metrics = engine.metrics();
  // Aggregates cover both backends; the per-backend twins split them.
  EXPECT_EQ(metrics.counter("validate.requests").value(), 2u);
  EXPECT_EQ(metrics.counter("validate.coarse.requests").value(), 1u);
  EXPECT_EQ(metrics.counter("validate.des.requests").value(), 1u);
  EXPECT_EQ(metrics.counter("sim.replicas").value(), 24u);
  EXPECT_EQ(metrics.counter("sim.coarse.replicas").value(), 12u);
  EXPECT_EQ(metrics.counter("sim.des.replicas").value(), 12u);
  EXPECT_EQ(metrics.counter("validate.coarse.cache.misses").value(), 1u);
  EXPECT_EQ(metrics.counter("validate.des.cache.misses").value(), 1u);
  EXPECT_EQ(metrics.timer("sim.des.seconds").snapshot().count, 1u);
  EXPECT_LT(std::abs(metrics.gauge("validate.des.error.wallclock").value()),
            0.05);
  EXPECT_GT(metrics.gauge("sim.des.replicas_per_second").value(), 0.0);
}

TEST(ValidatePipeline, MetricsCoverThePipeline) {
  SweepEngine engine({.threads = 2});
  const auto report = engine.validate_one(fusion_request(20));
  ASSERT_TRUE(report.has_value());
  ASSERT_TRUE(report->ok());
  auto& metrics = engine.metrics();
  EXPECT_EQ(metrics.counter("validate.requests").value(), 1u);
  EXPECT_EQ(metrics.counter("validate.cache.misses").value(), 1u);
  EXPECT_EQ(metrics.counter("validate.cache.inserts").value(), 1u);
  EXPECT_EQ(metrics.counter("validate.status.ok").value(), 1u);
  EXPECT_EQ(metrics.counter("sim.replicas").value(), 20u);
  EXPECT_EQ(metrics.timer("sim.seconds").snapshot().count, 1u);
  EXPECT_GT(metrics.gauge("sim.replicas_per_second").value(), 0.0);
  EXPECT_EQ(metrics.timer("validate.error.abs").snapshot().count, 1u);
  EXPECT_GT(report->sim_seconds, 0.0);
}

}  // namespace
}  // namespace mlcr::svc
