#include "opt/young.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace {

using namespace mlcr;
using namespace mlcr::opt;

TEST(YoungInterval, ClassicFormula) {
  // tau = sqrt(2 C M): C = 50 s, MTBF = 1 day.
  EXPECT_NEAR(young_interval(50.0, 86400.0), std::sqrt(2.0 * 50.0 * 86400.0),
              1e-9);
}

TEST(YoungInterval, RejectsBadInputs) {
  EXPECT_THROW((void)young_interval(0.0, 100.0), common::Error);
  EXPECT_THROW((void)young_interval(10.0, 0.0), common::Error);
}

TEST(DalyInterval, CloseToYoungForSmallC) {
  const double c = 10.0, m = 86400.0;
  const double young = young_interval(c, m);
  const double daly = daly_interval(c, m);
  EXPECT_NEAR(daly, young, young * 0.02);
  EXPECT_LT(daly, young);  // the -C correction dominates for small C/M
}

TEST(DalyInterval, FallsBackToMtbfForHugeC) {
  EXPECT_DOUBLE_EQ(daly_interval(1e6, 100.0), 100.0);
}

model::SystemConfig fti_config() {
  std::vector<model::LevelOverheads> levels{
      {model::Overhead::constant(0.866), model::Overhead::constant(0.866)},
      {model::Overhead::constant(2.586), model::Overhead::constant(2.586)},
      {model::Overhead::constant(3.886), model::Overhead::constant(3.886)},
      {model::Overhead::linear(5.5, 0.0212),
       model::Overhead::linear(5.5, 0.0212)}};
  model::FailureRates rates({16, 12, 8, 4}, 1e6);
  return model::SystemConfig(common::core_days_to_seconds(3e6),
                             std::make_unique<model::QuadraticSpeedup>(0.46,
                                                                       1e6),
                             std::move(levels), std::move(rates), 60.0);
}

TEST(YoungCounts, Formula25Shape) {
  const auto cfg = fti_config();
  const model::MuModel mu({2e-4, 1.5e-4, 1e-4, 5e-5});
  const double n = 5e5;
  const auto x = young_interval_counts(cfg, mu, n);
  ASSERT_EQ(x.size(), 4u);
  const double productive = cfg.productive_time(n);
  for (std::size_t i = 0; i < 4; ++i) {
    const double expected =
        std::sqrt(mu.mu(i, n) * productive / (2.0 * cfg.ckpt_cost(i, n)));
    EXPECT_NEAR(x[i], expected, 1e-9) << "level " << i;
  }
  // Cheaper levels checkpoint more often (higher failure rate, lower cost).
  EXPECT_GT(x[0], x[1]);
  EXPECT_GT(x[1], x[2]);
  EXPECT_GT(x[2], x[3]);
}

TEST(YoungCounts, ClampedToAtLeastOne) {
  const auto cfg = fti_config();
  const model::MuModel mu({1e-12, 1e-12, 1e-12, 1e-12});
  const auto x = young_interval_counts(cfg, mu, 1e4);
  for (double v : x) EXPECT_GE(v, 1.0);
}

TEST(IntervalLength, InverseOfCount) {
  const auto cfg = fti_config();
  const double n = 5e5;
  const double productive = cfg.productive_time(n);
  EXPECT_NEAR(interval_length(cfg, 100.0, n), productive / 100.0, 1e-9);
}

}  // namespace
