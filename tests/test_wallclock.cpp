#include "model/wallclock.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/units.h"
#include "num/derivative.h"

namespace {

using namespace mlcr::model;

// Single-level system matching the paper's Figure 3 setting:
// Te = 4000 core-days, quadratic speedup kappa=0.46, Nsym=1e5,
// C = R = 5 s constant, A = 0, mu(N) = 0.005 N.
SystemConfig fig3_config() {
  std::vector<LevelOverheads> levels{
      {Overhead::constant(5.0), Overhead::constant(5.0)}};
  FailureRates rates({1.0}, 1e5);  // placeholder; MuModel drives the math
  return SystemConfig(mlcr::common::core_days_to_seconds(4000.0),
                      std::make_unique<QuadraticSpeedup>(0.46, 1e5),
                      std::move(levels), std::move(rates),
                      /*allocation=*/0.0);
}

MuModel fig3_mu() { return MuModel({0.005}); }

TEST(Wallclock, SingleLevelMatchesFormula13ByHand) {
  const auto cfg = fig3_config();
  const auto mu = fig3_mu();
  const Plan plan{{100.0}, 50000.0};
  const double te = cfg.te();
  const double g = cfg.speedup().value(50000.0);
  // Formula (13) + the C/2 self-term from Formula (18)'s k<=i sum:
  const double expected = te / g + 5.0 * 99.0 +
                          0.005 * 50000.0 *
                              (te / g / 200.0 + 5.0 * 100.0 / 200.0 + 5.0);
  EXPECT_NEAR(expected_wallclock(cfg, mu, plan), expected, 1e-6);
}

TEST(Wallclock, PortionsSumToTotal) {
  const auto cfg = fig3_config();
  const auto mu = fig3_mu();
  const Plan plan{{797.0}, 81746.0};
  const auto portions = expected_portions(cfg, mu, plan);
  EXPECT_NEAR(portions.total(), expected_wallclock(cfg, mu, plan), 1e-9);
  EXPECT_GT(portions.productive, 0.0);
  EXPECT_GT(portions.checkpoint, 0.0);
  EXPECT_GT(portions.restart, 0.0);
  EXPECT_GT(portions.rollback, 0.0);
}

TEST(Wallclock, Fig3OptimumIsStationaryUnderFormula13) {
  // Hand-verified from the paper: x* = 797, N* = 81746 with eta0 + A = 5.
  // These are stationary points of the single-level target (Formula (13)).
  const auto cfg = fig3_config();
  const auto mu = fig3_mu();
  const double x = 797.07, n = 81746.0;
  const double productive = cfg.productive_time(n);
  // Scale gradients relative to problem magnitude.
  EXPECT_NEAR(single_dx(cfg, mu, x, n) / 5.0, 0.0, 1e-2);
  EXPECT_NEAR(single_dn(cfg, mu, x, n) * n / productive, 0.0, 2e-2);
}

TEST(Wallclock, Formula21AddsHalfCheckpointRedoTerm) {
  // The multilevel target (21) charges C/2 extra per failure compared to
  // the single-level target (13); with L = 1 the difference is exactly
  // mu(N) * C / 2.
  const auto cfg = fig3_config();
  const auto mu = fig3_mu();
  const double x = 300.0, n = 60000.0;
  const double multi = expected_wallclock(cfg, mu, Plan{{x}, n});
  const double single = expected_wallclock_single(cfg, mu, x, n);
  EXPECT_NEAR(multi - single, mu.mu(0, n) * 5.0 / 2.0, 1e-9);
}

TEST(Wallclock, SingleDxDnMatchNumericDerivatives) {
  const auto cfg = fig3_config();
  const auto mu = fig3_mu();
  const double x = 500.0, n = 40000.0;
  const double dx_numeric = mlcr::num::derivative(
      [&](double v) { return expected_wallclock_single(cfg, mu, v, n); }, x);
  const double dn_numeric = mlcr::num::derivative(
      [&](double v) { return expected_wallclock_single(cfg, mu, x, v); }, n);
  EXPECT_NEAR(single_dx(cfg, mu, x, n), dx_numeric,
              1e-4 * std::fabs(dx_numeric) + 1e-8);
  EXPECT_NEAR(single_dn(cfg, mu, x, n), dn_numeric,
              1e-4 * std::fabs(dn_numeric) + 1e-8);
}

TEST(Wallclock, DxMatchesNumericDerivative) {
  const auto cfg = fig3_config();
  const auto mu = fig3_mu();
  const Plan base{{300.0}, 60000.0};
  const double analytic = wallclock_dx(cfg, mu, base, 0);
  const double numeric = mlcr::num::derivative(
      [&](double x) {
        Plan p = base;
        p.intervals[0] = x;
        return expected_wallclock(cfg, mu, p);
      },
      300.0);
  EXPECT_NEAR(analytic, numeric, 1e-4 * std::fabs(numeric) + 1e-8);
}

TEST(Wallclock, DnMatchesNumericDerivative) {
  const auto cfg = fig3_config();
  const auto mu = fig3_mu();
  const Plan base{{300.0}, 60000.0};
  const double analytic = wallclock_dn(cfg, mu, base);
  const double numeric = mlcr::num::derivative(
      [&](double n) {
        Plan p = base;
        p.scale = n;
        return expected_wallclock(cfg, mu, p);
      },
      60000.0);
  EXPECT_NEAR(analytic, numeric, 1e-4 * std::fabs(numeric) + 1e-8);
}

// Four-level system with the paper's FTI coefficients (Table II fits).
SystemConfig fti_config(double te_core_days = 3e6, double nsym = 1e6) {
  std::vector<LevelOverheads> levels{
      {Overhead::constant(0.866), Overhead::constant(0.866)},
      {Overhead::constant(2.586), Overhead::constant(2.586)},
      {Overhead::constant(3.886), Overhead::constant(3.886)},
      {Overhead::linear(5.5, 0.0212), Overhead::linear(5.5, 0.0212)}};
  FailureRates rates({16, 12, 8, 4}, nsym);
  return SystemConfig(mlcr::common::core_days_to_seconds(te_core_days),
                      std::make_unique<QuadraticSpeedup>(0.46, nsym),
                      std::move(levels), std::move(rates),
                      /*allocation=*/60.0);
}

TEST(Wallclock, MultilevelDxMatchesNumericDerivativeEveryLevel) {
  const auto cfg = fti_config();
  const MuModel mu({2e-5, 1.5e-5, 1e-5, 5e-6});
  const Plan base{{900.0, 450.0, 220.0, 60.0}, 5e5};
  for (std::size_t level = 0; level < 4; ++level) {
    const double analytic = wallclock_dx(cfg, mu, base, level);
    const double numeric = mlcr::num::derivative(
        [&](double x) {
          Plan p = base;
          p.intervals[level] = x;
          return expected_wallclock(cfg, mu, p);
        },
        base.intervals[level]);
    EXPECT_NEAR(analytic, numeric, 1e-4 * std::fabs(numeric) + 1e-6)
        << "level " << level;
  }
}

TEST(Wallclock, MultilevelDnMatchesNumericDerivative) {
  const auto cfg = fti_config();
  const MuModel mu({2e-5, 1.5e-5, 1e-5, 5e-6});
  const Plan base{{900.0, 450.0, 220.0, 60.0}, 5e5};
  const double analytic = wallclock_dn(cfg, mu, base);
  const double numeric = mlcr::num::derivative(
      [&](double n) {
        Plan p = base;
        p.scale = n;
        return expected_wallclock(cfg, mu, p);
      },
      base.scale);
  EXPECT_NEAR(analytic, numeric, 1e-3 * std::fabs(numeric) + 1e-6);
}

TEST(Wallclock, ConvexInEachIntervalVariable) {
  // Paper claim: d2 E / d x_i^2 > 0 (Section III-D).
  const auto cfg = fti_config();
  const MuModel mu({2e-5, 1.5e-5, 1e-5, 5e-6});
  const Plan base{{900.0, 450.0, 220.0, 60.0}, 5e5};
  for (std::size_t level = 0; level < 4; ++level) {
    const double d2 = mlcr::num::second_derivative(
        [&](double x) {
          Plan p = base;
          p.intervals[level] = x;
          return expected_wallclock(cfg, mu, p);
        },
        base.intervals[level]);
    EXPECT_GT(d2, 0.0) << "level " << level;
  }
}

TEST(Wallclock, RejectsShapeMismatches) {
  const auto cfg = fig3_config();
  const auto mu = fig3_mu();
  EXPECT_THROW((void)expected_wallclock(cfg, mu, Plan{{1.0, 2.0}, 100.0}),
               mlcr::common::Error);
  EXPECT_THROW((void)expected_wallclock(cfg, mu, Plan{{10.0}, -1.0}),
               mlcr::common::Error);
  EXPECT_THROW((void)expected_wallclock(cfg, mu, Plan{{0.5}, 100.0}),
               mlcr::common::Error);
}

TEST(Wallclock, MoreFailuresNeverHelp) {
  const auto cfg = fti_config();
  const Plan plan{{900.0, 450.0, 220.0, 60.0}, 5e5};
  const MuModel low({1e-5, 1e-5, 1e-5, 1e-5});
  const MuModel high({2e-5, 2e-5, 2e-5, 2e-5});
  EXPECT_LT(expected_wallclock(cfg, low, plan),
            expected_wallclock(cfg, high, plan));
}

TEST(Efficiency, DefinitionMatchesPaper) {
  // efficiency = (Te / Tw) / N
  EXPECT_DOUBLE_EQ(efficiency(100.0, 10.0, 5.0), 2.0);
  EXPECT_DOUBLE_EQ(efficiency(100.0, 0.0, 5.0), 0.0);
}

TEST(SingleLevelView, MergesRatesAndKeepsTopLevel) {
  const auto cfg = fti_config();
  const auto sl = cfg.single_level_view();
  EXPECT_EQ(sl.levels(), 1u);
  EXPECT_DOUBLE_EQ(sl.rates().per_day_at_baseline(0), 16 + 12 + 8 + 4);
  EXPECT_DOUBLE_EQ(sl.ckpt_cost(0, 1024.0), 5.5 + 0.0212 * 1024.0);
}

}  // namespace
