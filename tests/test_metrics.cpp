#include "common/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <vector>

namespace mlcr::common::metrics {
namespace {

TEST(Metrics, CounterStartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.increment();
  counter.increment(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Metrics, GaugeIsLastWriteWins) {
  Gauge gauge;
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  gauge.set(3.5);
  gauge.set(-1.25);
  EXPECT_DOUBLE_EQ(gauge.value(), -1.25);
}

TEST(Metrics, TimerTracksCountSumMinMax) {
  Timer timer;
  timer.observe(2.0);
  timer.observe(0.5);
  timer.observe(1.0);
  const auto snap = timer.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 3.5);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 2.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 3.5 / 3.0);
  EXPECT_DOUBLE_EQ(snap.p50, 1.0);
}

TEST(Metrics, EmptyTimerSnapshotIsAllZero) {
  Timer timer;
  const auto snap = timer.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
  EXPECT_DOUBLE_EQ(snap.p99, 0.0);
}

TEST(Metrics, PercentileInterpolatesAndClamps) {
  const std::vector<double> samples{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(samples, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile(samples, 2.0), 4.0);  // clamped
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Metrics, TimerWindowKeepsExactAggregatesPastCapacity) {
  // Percentiles use a bounded window, but count/sum/min/max stay exact.
  Timer timer;
  const int n = 5000;  // > kWindow
  for (int i = 1; i <= n; ++i) timer.observe(static_cast<double>(i));
  const auto snap = timer.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(n));
  EXPECT_DOUBLE_EQ(snap.sum, n * (n + 1) / 2.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, static_cast<double>(n));
}

TEST(Metrics, RegistryReturnsStableReferences) {
  Registry registry;
  Counter& a = registry.counter("hits");
  a.increment();
  // Creating more instruments must not invalidate earlier references.
  for (int i = 0; i < 100; ++i) {
    std::string name = "c";
    name += std::to_string(i);
    (void)registry.counter(name);
  }
  Counter& b = registry.counter("hits");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 1u);
}

TEST(Metrics, RegistrySnapshotSortedByName) {
  Registry registry;
  registry.counter("zeta").increment(2);
  registry.counter("alpha").increment(1);
  registry.gauge("g").set(7.0);
  registry.timer("t").observe(0.25);
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[0].second, 1u);
  EXPECT_EQ(snap.counters[1].first, "zeta");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 7.0);
  ASSERT_EQ(snap.timers.size(), 1u);
  EXPECT_EQ(snap.timers[0].second.count, 1u);
}

TEST(Metrics, JsonlExportOneObjectPerInstrument) {
  Registry registry;
  registry.counter("cache.hits").increment(3);
  registry.gauge("cache.size").set(64.0);
  registry.timer("solve.seconds").observe(0.125);
  const std::string jsonl = registry.to_jsonl();
  EXPECT_NE(jsonl.find("{\"kind\":\"counter\",\"name\":\"cache.hits\","
                       "\"value\":3}"),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"gauge\",\"name\":\"cache.size\""),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"timer\",\"name\":\"solve.seconds\""),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"count\":1"), std::string::npos);
  // One line per instrument, each a complete object.
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 3);
}

TEST(Metrics, JsonlEscapesNamesAndNonFiniteValues) {
  Registry registry;
  registry.gauge("weird\"name\\with\nescapes").set(1.0);
  registry.gauge("inf").set(std::numeric_limits<double>::infinity());
  const std::string jsonl = registry.to_jsonl();
  EXPECT_NE(jsonl.find("weird\\\"name\\\\with\\nescapes"), std::string::npos);
  EXPECT_NE(jsonl.find("\"name\":\"inf\",\"value\":null"), std::string::npos);
}

TEST(Metrics, WriteJsonlFileRoundTrips) {
  Registry registry;
  registry.counter("n").increment(9);
  const std::string path = ::testing::TempDir() + "mlcr_metrics_test.jsonl";
  ASSERT_TRUE(registry.write_jsonl_file(path));
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  char buffer[256] = {0};
  const std::size_t read = std::fread(buffer, 1, sizeof(buffer) - 1, file);
  std::fclose(file);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buffer, read),
            "{\"kind\":\"counter\",\"name\":\"n\",\"value\":9}\n");
}

TEST(Metrics, ToTableRendersAllKinds) {
  Registry registry;
  registry.counter("hits").increment(5);
  registry.timer("wait").observe(1.0);
  const std::string table = registry.to_table();
  EXPECT_NE(table.find("hits"), std::string::npos);
  EXPECT_NE(table.find("counter"), std::string::npos);
  EXPECT_NE(table.find("wait"), std::string::npos);
  EXPECT_NE(table.find("p99"), std::string::npos);
}

// Concurrency: hammer one registry from many threads through the name-based
// API (get-or-create races, counter increments, timer observations, and
// concurrent snapshots).  Run under TSan by scripts/tier1.sh.
TEST(MetricsConcurrency, RegistryIsThreadSafe) {
  Registry registry;
  constexpr int kThreads = 8;
  constexpr int kIterations = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t]() {
      for (int i = 0; i < kIterations; ++i) {
        registry.counter("shared.counter").increment();
        registry.counter("per-thread." + std::to_string(t)).increment();
        registry.gauge("shared.gauge").set(static_cast<double>(i));
        registry.timer("shared.timer").observe(1e-3 * i);
        if (i % 500 == 0) (void)registry.snapshot();
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(registry.counter("shared.counter").value(),
            static_cast<std::uint64_t>(kThreads) * kIterations);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.counter("per-thread." + std::to_string(t)).value(),
              static_cast<std::uint64_t>(kIterations));
  }
  const auto snap = registry.timer("shared.timer").snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kIterations);
}

}  // namespace
}  // namespace mlcr::common::metrics
