# Empty compiler generated dependencies file for test_heat_ckpt.
# This may be replaced when dependencies are built.
