file(REMOVE_RECURSE
  "CMakeFiles/test_heat_ckpt.dir/test_heat_ckpt.cpp.o"
  "CMakeFiles/test_heat_ckpt.dir/test_heat_ckpt.cpp.o.d"
  "test_heat_ckpt"
  "test_heat_ckpt.pdb"
  "test_heat_ckpt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heat_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
