file(REMOVE_RECURSE
  "CMakeFiles/test_fti.dir/test_fti.cpp.o"
  "CMakeFiles/test_fti.dir/test_fti.cpp.o.d"
  "test_fti"
  "test_fti.pdb"
  "test_fti[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
