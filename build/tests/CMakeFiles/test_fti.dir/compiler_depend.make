# Empty compiler generated dependencies file for test_fti.
# This may be replaced when dependencies are built.
