# Empty dependencies file for test_vmpi_nonblocking.
# This may be replaced when dependencies are built.
