file(REMOVE_RECURSE
  "CMakeFiles/test_vmpi_nonblocking.dir/test_vmpi_nonblocking.cpp.o"
  "CMakeFiles/test_vmpi_nonblocking.dir/test_vmpi_nonblocking.cpp.o.d"
  "test_vmpi_nonblocking"
  "test_vmpi_nonblocking.pdb"
  "test_vmpi_nonblocking[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vmpi_nonblocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
