file(REMOVE_RECURSE
  "CMakeFiles/test_wallclock.dir/test_wallclock.cpp.o"
  "CMakeFiles/test_wallclock.dir/test_wallclock.cpp.o.d"
  "test_wallclock"
  "test_wallclock.pdb"
  "test_wallclock[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wallclock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
