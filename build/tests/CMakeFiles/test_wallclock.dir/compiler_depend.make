# Empty compiler generated dependencies file for test_wallclock.
# This may be replaced when dependencies are built.
