# Empty dependencies file for test_young.
# This may be replaced when dependencies are built.
