file(REMOVE_RECURSE
  "CMakeFiles/test_young.dir/test_young.cpp.o"
  "CMakeFiles/test_young.dir/test_young.cpp.o.d"
  "test_young"
  "test_young.pdb"
  "test_young[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_young.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
