file(REMOVE_RECURSE
  "CMakeFiles/test_single_level.dir/test_single_level.cpp.o"
  "CMakeFiles/test_single_level.dir/test_single_level.cpp.o.d"
  "test_single_level"
  "test_single_level.pdb"
  "test_single_level[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_single_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
