# Empty compiler generated dependencies file for test_exp_cases.
# This may be replaced when dependencies are built.
