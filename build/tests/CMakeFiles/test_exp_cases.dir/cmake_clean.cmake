file(REMOVE_RECURSE
  "CMakeFiles/test_exp_cases.dir/test_exp_cases.cpp.o"
  "CMakeFiles/test_exp_cases.dir/test_exp_cases.cpp.o.d"
  "test_exp_cases"
  "test_exp_cases.pdb"
  "test_exp_cases[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exp_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
