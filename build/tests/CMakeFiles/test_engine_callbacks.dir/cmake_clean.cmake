file(REMOVE_RECURSE
  "CMakeFiles/test_engine_callbacks.dir/test_engine_callbacks.cpp.o"
  "CMakeFiles/test_engine_callbacks.dir/test_engine_callbacks.cpp.o.d"
  "test_engine_callbacks"
  "test_engine_callbacks.pdb"
  "test_engine_callbacks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_callbacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
