# Empty compiler generated dependencies file for test_engine_callbacks.
# This may be replaced when dependencies are built.
