# Empty compiler generated dependencies file for test_level_selection.
# This may be replaced when dependencies are built.
