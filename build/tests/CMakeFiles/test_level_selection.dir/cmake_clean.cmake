file(REMOVE_RECURSE
  "CMakeFiles/test_level_selection.dir/test_level_selection.cpp.o"
  "CMakeFiles/test_level_selection.dir/test_level_selection.cpp.o.d"
  "test_level_selection"
  "test_level_selection.pdb"
  "test_level_selection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_level_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
