# Empty dependencies file for bench_fig4_validation.
# This may be replaced when dependencies are built.
