file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_single_level.dir/bench_fig3_single_level.cpp.o"
  "CMakeFiles/bench_fig3_single_level.dir/bench_fig3_single_level.cpp.o.d"
  "bench_fig3_single_level"
  "bench_fig3_single_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_single_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
