# Empty dependencies file for bench_fig3_single_level.
# This may be replaced when dependencies are built.
