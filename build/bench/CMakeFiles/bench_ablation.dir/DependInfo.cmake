
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation.cpp" "bench/CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/mlcr_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/mlcr_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mlcr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fti/CMakeFiles/mlcr_fti.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mlcr_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/vmpi/CMakeFiles/mlcr_vmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/rs/CMakeFiles/mlcr_rs.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mlcr_model.dir/DependInfo.cmake"
  "/root/repo/build/src/num/CMakeFiles/mlcr_num.dir/DependInfo.cmake"
  "/root/repo/build/src/stat/CMakeFiles/mlcr_stat.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlcr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
