# Empty dependencies file for bench_fig5_time_analysis.
# This may be replaced when dependencies are built.
