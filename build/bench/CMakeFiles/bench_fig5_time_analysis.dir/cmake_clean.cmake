file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_time_analysis.dir/bench_fig5_time_analysis.cpp.o"
  "CMakeFiles/bench_fig5_time_analysis.dir/bench_fig5_time_analysis.cpp.o.d"
  "bench_fig5_time_analysis"
  "bench_fig5_time_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_time_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
