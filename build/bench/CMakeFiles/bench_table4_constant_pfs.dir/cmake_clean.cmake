file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_constant_pfs.dir/bench_table4_constant_pfs.cpp.o"
  "CMakeFiles/bench_table4_constant_pfs.dir/bench_table4_constant_pfs.cpp.o.d"
  "bench_table4_constant_pfs"
  "bench_table4_constant_pfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_constant_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
