# Empty dependencies file for bench_table2_characterization.
# This may be replaced when dependencies are built.
