# Empty compiler generated dependencies file for bench_fig6_time_analysis_10m.
# This may be replaced when dependencies are built.
