file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_time_analysis_10m.dir/bench_fig6_time_analysis_10m.cpp.o"
  "CMakeFiles/bench_fig6_time_analysis_10m.dir/bench_fig6_time_analysis_10m.cpp.o.d"
  "bench_fig6_time_analysis_10m"
  "bench_fig6_time_analysis_10m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_time_analysis_10m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
