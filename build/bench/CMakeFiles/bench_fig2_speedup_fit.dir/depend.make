# Empty dependencies file for bench_fig2_speedup_fit.
# This may be replaced when dependencies are built.
