file(REMOVE_RECURSE
  "CMakeFiles/bench_level_selection.dir/bench_level_selection.cpp.o"
  "CMakeFiles/bench_level_selection.dir/bench_level_selection.cpp.o.d"
  "bench_level_selection"
  "bench_level_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_level_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
