# Empty compiler generated dependencies file for bench_level_selection.
# This may be replaced when dependencies are built.
