# Empty compiler generated dependencies file for bench_table3_opt_scales.
# This may be replaced when dependencies are built.
