file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_opt_scales.dir/bench_table3_opt_scales.cpp.o"
  "CMakeFiles/bench_table3_opt_scales.dir/bench_table3_opt_scales.cpp.o.d"
  "bench_table3_opt_scales"
  "bench_table3_opt_scales.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_opt_scales.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
