# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("num")
subdirs("stat")
subdirs("model")
subdirs("opt")
subdirs("exp")
subdirs("sim")
subdirs("rs")
subdirs("vmpi")
subdirs("cluster")
subdirs("fti")
subdirs("apps")
