
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/num/derivative.cpp" "src/num/CMakeFiles/mlcr_num.dir/derivative.cpp.o" "gcc" "src/num/CMakeFiles/mlcr_num.dir/derivative.cpp.o.d"
  "/root/repo/src/num/least_squares.cpp" "src/num/CMakeFiles/mlcr_num.dir/least_squares.cpp.o" "gcc" "src/num/CMakeFiles/mlcr_num.dir/least_squares.cpp.o.d"
  "/root/repo/src/num/minimize.cpp" "src/num/CMakeFiles/mlcr_num.dir/minimize.cpp.o" "gcc" "src/num/CMakeFiles/mlcr_num.dir/minimize.cpp.o.d"
  "/root/repo/src/num/roots.cpp" "src/num/CMakeFiles/mlcr_num.dir/roots.cpp.o" "gcc" "src/num/CMakeFiles/mlcr_num.dir/roots.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mlcr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
