file(REMOVE_RECURSE
  "CMakeFiles/mlcr_num.dir/derivative.cpp.o"
  "CMakeFiles/mlcr_num.dir/derivative.cpp.o.d"
  "CMakeFiles/mlcr_num.dir/least_squares.cpp.o"
  "CMakeFiles/mlcr_num.dir/least_squares.cpp.o.d"
  "CMakeFiles/mlcr_num.dir/minimize.cpp.o"
  "CMakeFiles/mlcr_num.dir/minimize.cpp.o.d"
  "CMakeFiles/mlcr_num.dir/roots.cpp.o"
  "CMakeFiles/mlcr_num.dir/roots.cpp.o.d"
  "libmlcr_num.a"
  "libmlcr_num.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcr_num.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
