file(REMOVE_RECURSE
  "libmlcr_num.a"
)
