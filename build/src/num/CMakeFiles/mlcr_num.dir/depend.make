# Empty dependencies file for mlcr_num.
# This may be replaced when dependencies are built.
