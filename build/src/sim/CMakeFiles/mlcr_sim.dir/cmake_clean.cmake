file(REMOVE_RECURSE
  "CMakeFiles/mlcr_sim.dir/event_sim.cpp.o"
  "CMakeFiles/mlcr_sim.dir/event_sim.cpp.o.d"
  "CMakeFiles/mlcr_sim.dir/monte_carlo.cpp.o"
  "CMakeFiles/mlcr_sim.dir/monte_carlo.cpp.o.d"
  "CMakeFiles/mlcr_sim.dir/trace_io.cpp.o"
  "CMakeFiles/mlcr_sim.dir/trace_io.cpp.o.d"
  "libmlcr_sim.a"
  "libmlcr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
