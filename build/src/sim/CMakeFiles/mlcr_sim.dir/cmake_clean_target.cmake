file(REMOVE_RECURSE
  "libmlcr_sim.a"
)
