
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_sim.cpp" "src/sim/CMakeFiles/mlcr_sim.dir/event_sim.cpp.o" "gcc" "src/sim/CMakeFiles/mlcr_sim.dir/event_sim.cpp.o.d"
  "/root/repo/src/sim/monte_carlo.cpp" "src/sim/CMakeFiles/mlcr_sim.dir/monte_carlo.cpp.o" "gcc" "src/sim/CMakeFiles/mlcr_sim.dir/monte_carlo.cpp.o.d"
  "/root/repo/src/sim/trace_io.cpp" "src/sim/CMakeFiles/mlcr_sim.dir/trace_io.cpp.o" "gcc" "src/sim/CMakeFiles/mlcr_sim.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/mlcr_model.dir/DependInfo.cmake"
  "/root/repo/build/src/stat/CMakeFiles/mlcr_stat.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlcr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/num/CMakeFiles/mlcr_num.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
