file(REMOVE_RECURSE
  "CMakeFiles/mlcr_rs.dir/gf256.cpp.o"
  "CMakeFiles/mlcr_rs.dir/gf256.cpp.o.d"
  "CMakeFiles/mlcr_rs.dir/reed_solomon.cpp.o"
  "CMakeFiles/mlcr_rs.dir/reed_solomon.cpp.o.d"
  "libmlcr_rs.a"
  "libmlcr_rs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcr_rs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
