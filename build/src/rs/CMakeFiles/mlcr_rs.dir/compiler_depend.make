# Empty compiler generated dependencies file for mlcr_rs.
# This may be replaced when dependencies are built.
