file(REMOVE_RECURSE
  "libmlcr_rs.a"
)
