file(REMOVE_RECURSE
  "CMakeFiles/mlcr_common.dir/log.cpp.o"
  "CMakeFiles/mlcr_common.dir/log.cpp.o.d"
  "CMakeFiles/mlcr_common.dir/rng.cpp.o"
  "CMakeFiles/mlcr_common.dir/rng.cpp.o.d"
  "CMakeFiles/mlcr_common.dir/table.cpp.o"
  "CMakeFiles/mlcr_common.dir/table.cpp.o.d"
  "CMakeFiles/mlcr_common.dir/units.cpp.o"
  "CMakeFiles/mlcr_common.dir/units.cpp.o.d"
  "libmlcr_common.a"
  "libmlcr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
