file(REMOVE_RECURSE
  "libmlcr_common.a"
)
