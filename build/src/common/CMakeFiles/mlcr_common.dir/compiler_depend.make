# Empty compiler generated dependencies file for mlcr_common.
# This may be replaced when dependencies are built.
