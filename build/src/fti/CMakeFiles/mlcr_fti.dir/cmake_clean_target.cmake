file(REMOVE_RECURSE
  "libmlcr_fti.a"
)
