file(REMOVE_RECURSE
  "CMakeFiles/mlcr_fti.dir/fti.cpp.o"
  "CMakeFiles/mlcr_fti.dir/fti.cpp.o.d"
  "libmlcr_fti.a"
  "libmlcr_fti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcr_fti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
