# Empty dependencies file for mlcr_fti.
# This may be replaced when dependencies are built.
