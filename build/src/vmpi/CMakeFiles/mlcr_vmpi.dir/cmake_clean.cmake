file(REMOVE_RECURSE
  "CMakeFiles/mlcr_vmpi.dir/comm.cpp.o"
  "CMakeFiles/mlcr_vmpi.dir/comm.cpp.o.d"
  "CMakeFiles/mlcr_vmpi.dir/engine.cpp.o"
  "CMakeFiles/mlcr_vmpi.dir/engine.cpp.o.d"
  "libmlcr_vmpi.a"
  "libmlcr_vmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcr_vmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
