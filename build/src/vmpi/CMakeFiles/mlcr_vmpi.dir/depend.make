# Empty dependencies file for mlcr_vmpi.
# This may be replaced when dependencies are built.
