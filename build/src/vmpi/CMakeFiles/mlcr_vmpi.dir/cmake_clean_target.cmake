file(REMOVE_RECURSE
  "libmlcr_vmpi.a"
)
