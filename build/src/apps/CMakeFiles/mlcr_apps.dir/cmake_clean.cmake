file(REMOVE_RECURSE
  "CMakeFiles/mlcr_apps.dir/eddy.cpp.o"
  "CMakeFiles/mlcr_apps.dir/eddy.cpp.o.d"
  "CMakeFiles/mlcr_apps.dir/heat.cpp.o"
  "CMakeFiles/mlcr_apps.dir/heat.cpp.o.d"
  "CMakeFiles/mlcr_apps.dir/heat_ckpt.cpp.o"
  "CMakeFiles/mlcr_apps.dir/heat_ckpt.cpp.o.d"
  "libmlcr_apps.a"
  "libmlcr_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcr_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
