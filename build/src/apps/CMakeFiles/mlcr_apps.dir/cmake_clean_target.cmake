file(REMOVE_RECURSE
  "libmlcr_apps.a"
)
