# Empty dependencies file for mlcr_apps.
# This may be replaced when dependencies are built.
