file(REMOVE_RECURSE
  "CMakeFiles/mlcr_cluster.dir/cluster.cpp.o"
  "CMakeFiles/mlcr_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/mlcr_cluster.dir/storage.cpp.o"
  "CMakeFiles/mlcr_cluster.dir/storage.cpp.o.d"
  "libmlcr_cluster.a"
  "libmlcr_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcr_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
