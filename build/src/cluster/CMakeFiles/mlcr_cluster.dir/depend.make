# Empty dependencies file for mlcr_cluster.
# This may be replaced when dependencies are built.
