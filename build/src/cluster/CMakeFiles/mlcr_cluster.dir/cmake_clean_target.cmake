file(REMOVE_RECURSE
  "libmlcr_cluster.a"
)
