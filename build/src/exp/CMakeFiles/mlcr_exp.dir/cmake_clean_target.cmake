file(REMOVE_RECURSE
  "libmlcr_exp.a"
)
