file(REMOVE_RECURSE
  "CMakeFiles/mlcr_exp.dir/cases.cpp.o"
  "CMakeFiles/mlcr_exp.dir/cases.cpp.o.d"
  "libmlcr_exp.a"
  "libmlcr_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcr_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
