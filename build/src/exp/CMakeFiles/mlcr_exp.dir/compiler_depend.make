# Empty compiler generated dependencies file for mlcr_exp.
# This may be replaced when dependencies are built.
