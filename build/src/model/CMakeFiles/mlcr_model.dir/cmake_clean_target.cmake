file(REMOVE_RECURSE
  "libmlcr_model.a"
)
