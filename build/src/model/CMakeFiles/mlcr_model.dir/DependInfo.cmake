
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/failure.cpp" "src/model/CMakeFiles/mlcr_model.dir/failure.cpp.o" "gcc" "src/model/CMakeFiles/mlcr_model.dir/failure.cpp.o.d"
  "/root/repo/src/model/overhead.cpp" "src/model/CMakeFiles/mlcr_model.dir/overhead.cpp.o" "gcc" "src/model/CMakeFiles/mlcr_model.dir/overhead.cpp.o.d"
  "/root/repo/src/model/speedup.cpp" "src/model/CMakeFiles/mlcr_model.dir/speedup.cpp.o" "gcc" "src/model/CMakeFiles/mlcr_model.dir/speedup.cpp.o.d"
  "/root/repo/src/model/system.cpp" "src/model/CMakeFiles/mlcr_model.dir/system.cpp.o" "gcc" "src/model/CMakeFiles/mlcr_model.dir/system.cpp.o.d"
  "/root/repo/src/model/wallclock.cpp" "src/model/CMakeFiles/mlcr_model.dir/wallclock.cpp.o" "gcc" "src/model/CMakeFiles/mlcr_model.dir/wallclock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mlcr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/num/CMakeFiles/mlcr_num.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
