# Empty dependencies file for mlcr_model.
# This may be replaced when dependencies are built.
