file(REMOVE_RECURSE
  "CMakeFiles/mlcr_model.dir/failure.cpp.o"
  "CMakeFiles/mlcr_model.dir/failure.cpp.o.d"
  "CMakeFiles/mlcr_model.dir/overhead.cpp.o"
  "CMakeFiles/mlcr_model.dir/overhead.cpp.o.d"
  "CMakeFiles/mlcr_model.dir/speedup.cpp.o"
  "CMakeFiles/mlcr_model.dir/speedup.cpp.o.d"
  "CMakeFiles/mlcr_model.dir/system.cpp.o"
  "CMakeFiles/mlcr_model.dir/system.cpp.o.d"
  "CMakeFiles/mlcr_model.dir/wallclock.cpp.o"
  "CMakeFiles/mlcr_model.dir/wallclock.cpp.o.d"
  "libmlcr_model.a"
  "libmlcr_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcr_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
