# Empty dependencies file for mlcr_stat.
# This may be replaced when dependencies are built.
