file(REMOVE_RECURSE
  "CMakeFiles/mlcr_stat.dir/distributions.cpp.o"
  "CMakeFiles/mlcr_stat.dir/distributions.cpp.o.d"
  "CMakeFiles/mlcr_stat.dir/summary.cpp.o"
  "CMakeFiles/mlcr_stat.dir/summary.cpp.o.d"
  "libmlcr_stat.a"
  "libmlcr_stat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcr_stat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
