file(REMOVE_RECURSE
  "libmlcr_stat.a"
)
