
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stat/distributions.cpp" "src/stat/CMakeFiles/mlcr_stat.dir/distributions.cpp.o" "gcc" "src/stat/CMakeFiles/mlcr_stat.dir/distributions.cpp.o.d"
  "/root/repo/src/stat/summary.cpp" "src/stat/CMakeFiles/mlcr_stat.dir/summary.cpp.o" "gcc" "src/stat/CMakeFiles/mlcr_stat.dir/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mlcr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
