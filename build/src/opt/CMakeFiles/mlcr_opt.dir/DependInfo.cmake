
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/algorithm1.cpp" "src/opt/CMakeFiles/mlcr_opt.dir/algorithm1.cpp.o" "gcc" "src/opt/CMakeFiles/mlcr_opt.dir/algorithm1.cpp.o.d"
  "/root/repo/src/opt/grid_search.cpp" "src/opt/CMakeFiles/mlcr_opt.dir/grid_search.cpp.o" "gcc" "src/opt/CMakeFiles/mlcr_opt.dir/grid_search.cpp.o.d"
  "/root/repo/src/opt/level_selection.cpp" "src/opt/CMakeFiles/mlcr_opt.dir/level_selection.cpp.o" "gcc" "src/opt/CMakeFiles/mlcr_opt.dir/level_selection.cpp.o.d"
  "/root/repo/src/opt/multilevel.cpp" "src/opt/CMakeFiles/mlcr_opt.dir/multilevel.cpp.o" "gcc" "src/opt/CMakeFiles/mlcr_opt.dir/multilevel.cpp.o.d"
  "/root/repo/src/opt/planner.cpp" "src/opt/CMakeFiles/mlcr_opt.dir/planner.cpp.o" "gcc" "src/opt/CMakeFiles/mlcr_opt.dir/planner.cpp.o.d"
  "/root/repo/src/opt/single_level.cpp" "src/opt/CMakeFiles/mlcr_opt.dir/single_level.cpp.o" "gcc" "src/opt/CMakeFiles/mlcr_opt.dir/single_level.cpp.o.d"
  "/root/repo/src/opt/young.cpp" "src/opt/CMakeFiles/mlcr_opt.dir/young.cpp.o" "gcc" "src/opt/CMakeFiles/mlcr_opt.dir/young.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/mlcr_model.dir/DependInfo.cmake"
  "/root/repo/build/src/num/CMakeFiles/mlcr_num.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlcr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
