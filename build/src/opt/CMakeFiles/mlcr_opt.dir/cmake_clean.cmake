file(REMOVE_RECURSE
  "CMakeFiles/mlcr_opt.dir/algorithm1.cpp.o"
  "CMakeFiles/mlcr_opt.dir/algorithm1.cpp.o.d"
  "CMakeFiles/mlcr_opt.dir/grid_search.cpp.o"
  "CMakeFiles/mlcr_opt.dir/grid_search.cpp.o.d"
  "CMakeFiles/mlcr_opt.dir/level_selection.cpp.o"
  "CMakeFiles/mlcr_opt.dir/level_selection.cpp.o.d"
  "CMakeFiles/mlcr_opt.dir/multilevel.cpp.o"
  "CMakeFiles/mlcr_opt.dir/multilevel.cpp.o.d"
  "CMakeFiles/mlcr_opt.dir/planner.cpp.o"
  "CMakeFiles/mlcr_opt.dir/planner.cpp.o.d"
  "CMakeFiles/mlcr_opt.dir/single_level.cpp.o"
  "CMakeFiles/mlcr_opt.dir/single_level.cpp.o.d"
  "CMakeFiles/mlcr_opt.dir/young.cpp.o"
  "CMakeFiles/mlcr_opt.dir/young.cpp.o.d"
  "libmlcr_opt.a"
  "libmlcr_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlcr_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
