# Empty dependencies file for mlcr_opt.
# This may be replaced when dependencies are built.
