file(REMOVE_RECURSE
  "libmlcr_opt.a"
)
