# Empty dependencies file for plan_cli.
# This may be replaced when dependencies are built.
