file(REMOVE_RECURSE
  "CMakeFiles/plan_cli.dir/plan_cli.cpp.o"
  "CMakeFiles/plan_cli.dir/plan_cli.cpp.o.d"
  "plan_cli"
  "plan_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
