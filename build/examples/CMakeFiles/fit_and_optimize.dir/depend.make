# Empty dependencies file for fit_and_optimize.
# This may be replaced when dependencies are built.
