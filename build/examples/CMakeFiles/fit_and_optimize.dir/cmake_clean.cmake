file(REMOVE_RECURSE
  "CMakeFiles/fit_and_optimize.dir/fit_and_optimize.cpp.o"
  "CMakeFiles/fit_and_optimize.dir/fit_and_optimize.cpp.o.d"
  "fit_and_optimize"
  "fit_and_optimize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fit_and_optimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
