# Empty dependencies file for heat_checkpointing.
# This may be replaced when dependencies are built.
