file(REMOVE_RECURSE
  "CMakeFiles/heat_checkpointing.dir/heat_checkpointing.cpp.o"
  "CMakeFiles/heat_checkpointing.dir/heat_checkpointing.cpp.o.d"
  "heat_checkpointing"
  "heat_checkpointing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat_checkpointing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
