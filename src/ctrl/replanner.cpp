#include "ctrl/replanner.h"

#include <cmath>
#include <utility>

#include "common/error.h"

namespace mlcr::ctrl {

namespace {

constexpr double kSecondsPerDay = 86400.0;

/// lambda (events/second at scale N) -> the wire's per-day-at-baseline form:
/// per_day = lambda * 86400 / (N / N_b)^p.
double per_second_to_per_day_at_baseline(double per_second, double scale,
                                         const model::FailureRates& rates) {
  const double scaling =
      std::pow(scale / rates.baseline_scale(), rates.scale_exponent());
  return per_second * kSecondsPerDay / scaling;
}

}  // namespace

Replanner::Replanner(ReplannerOptions options) : options_(options) {
  MLCR_EXPECT(options_.drift_ratio > 1.0,
              "Replanner: drift_ratio must exceed 1");
  MLCR_EXPECT(options_.cusum_shift > 1.0,
              "Replanner: cusum_shift must exceed 1");
  MLCR_EXPECT(options_.cusum_threshold > 0.0,
              "Replanner: cusum_threshold must be positive");
  MLCR_EXPECT(options_.prior_shape > 0.0,
              "Replanner: prior_shape must be positive");
}

svc::PlanRequest Replanner::with_rates(
    const svc::PlanRequest& base, const std::vector<double>& per_day) {
  const model::FailureRates& old_rates = base.config.rates();
  if (per_day.size() != old_rates.levels()) {
    common::fail("Replanner: with_rates level count mismatch");
  }
  return {model::SystemConfig(
              base.config.te(), base.config.speedup().clone(),
              base.config.all_levels(),
              model::FailureRates(per_day, old_rates.baseline_scale(),
                                  old_rates.scale_exponent()),
              base.config.allocation(), base.config.max_scale()),
          base.solution, base.options, base.label};
}

Replanner::Stream Replanner::make_stream(const IngestRequest& request) const {
  Stream stream(request.base);
  stream.observed_scale = request.observed_scale > 0.0
                              ? request.observed_scale
                              : request.base.config.rates().baseline_scale();
  if (!std::isfinite(stream.observed_scale) || stream.observed_scale <= 0.0) {
    common::fail("Replanner: observed_scale must be positive");
  }
  const model::FailureRates& rates = request.base.config.rates();
  stream.levels.reserve(rates.levels());
  for (std::size_t i = 0; i < rates.levels(); ++i) {
    stream.levels.emplace_back(rates.rate_per_second(i, stream.observed_scale),
                               options_.prior_shape, options_.cusum_shift,
                               options_.cusum_threshold);
  }
  return stream;
}

IngestOutcome Replanner::ingest(const IngestRequest& request) {
  const std::string key = svc::canonical_key(request.base);

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = streams_.find(key);
  if (it == streams_.end()) {
    it = streams_.emplace(key, make_stream(request)).first;
    metrics_.gauge("ctrl.streams").set(static_cast<double>(streams_.size()));
  }
  Stream& stream = it->second;

  if (request.trace.arrivals_per_level.size() != stream.levels.size()) {
    common::fail("Replanner: trace has " +
                 std::to_string(request.trace.arrivals_per_level.size()) +
                 " levels, plan has " + std::to_string(stream.levels.size()));
  }
  if (request.observed_scale > 0.0 &&
      request.observed_scale != stream.observed_scale) {
    common::fail("Replanner: observed_scale changed mid-stream");
  }

  // Resolve the batch window (prev_end, batch_end].
  double last_event = 0.0;
  std::uint64_t batch_events = 0;
  for (const auto& arrivals : request.trace.arrivals_per_level) {
    batch_events += arrivals.size();
    if (!arrivals.empty()) last_event = std::max(last_event, arrivals.back());
  }
  double batch_end = request.observed_seconds;
  if (batch_end <= 0.0) batch_end = last_event;
  if (!std::isfinite(batch_end) || batch_end <= stream.observed_end) {
    common::fail("Replanner: batch window must advance past " +
                 std::to_string(stream.observed_end) + " seconds");
  }
  for (const auto& arrivals : request.trace.arrivals_per_level) {
    double prev = stream.observed_end;
    for (double t : arrivals) {
      if (t <= stream.observed_end || t > batch_end) {
        common::fail("Replanner: event at " + std::to_string(t) +
                     "s outside batch window (" +
                     std::to_string(stream.observed_end) + ", " +
                     std::to_string(batch_end) + "]");
      }
      if (t < prev) {
        common::fail("Replanner: event times not ascending within a level");
      }
      prev = t;
    }
  }

  // Fold the batch into every level's estimators.  The tail gap between the
  // last event and the window end is censored (not an arrival), so the CUSUM
  // only consumes complete inter-arrival gaps; the exposure-based
  // MLE/posterior see the full window either way.
  const double exposure = batch_end - stream.observed_end;
  for (std::size_t i = 0; i < stream.levels.size(); ++i) {
    LevelState& level = stream.levels[i];
    const auto& arrivals = request.trace.arrivals_per_level[i];
    const auto events = static_cast<std::uint64_t>(arrivals.size());
    level.mle.observe(events, exposure);
    level.posterior.observe(events, exposure);
    for (double t : arrivals) {
      level.cusum.observe_gap(t - level.last_event_time);
      level.last_event_time = t;
    }
  }
  stream.observed_end = batch_end;
  stream.total_events += batch_events;

  // Drift decision (per level): posterior mean outside the drift band, or a
  // latched CUSUM alarm — gated on the stream-wide event floor so one level
  // cannot fire off near-zero evidence.
  IngestOutcome outcome;
  outcome.report.key = key;
  outcome.report.label = request.base.label;
  outcome.report.batch_events = batch_events;
  outcome.report.total_events = stream.total_events;
  outcome.report.plan_epoch = stream.plan_epoch;
  const bool enough = stream.total_events >= options_.min_events;
  std::vector<double> revised_per_day(stream.levels.size());
  std::vector<double> revised_per_second(stream.levels.size());
  for (std::size_t i = 0; i < stream.levels.size(); ++i) {
    const LevelState& level = stream.levels[i];
    LevelEstimate estimate;
    estimate.events = level.mle.events();
    estimate.exposure_seconds = level.mle.exposure_seconds();
    estimate.rate_mle = level.mle.rate();
    estimate.rate_posterior = level.posterior.mean();
    estimate.baseline_rate = level.baseline_rate;
    estimate.cusum_statistic =
        std::max(level.cusum.up_statistic(), level.cusum.down_statistic());
    estimate.cusum_alarm = level.cusum.alarmed();
    const double ratio = estimate.rate_posterior / level.baseline_rate;
    estimate.drift =
        enough && (ratio >= options_.drift_ratio ||
                   ratio <= 1.0 / options_.drift_ratio || estimate.cusum_alarm);
    outcome.report.drift_detected |= estimate.drift;
    outcome.report.levels.push_back(estimate);
    revised_per_second[i] = estimate.rate_posterior;
    revised_per_day[i] = per_second_to_per_day_at_baseline(
        estimate.rate_posterior, stream.observed_scale,
        stream.base.config.rates());
  }

  metrics_.counter("ctrl.ingest.batches").increment();
  metrics_.counter("ctrl.ingest.events").increment(batch_events);
  if (outcome.report.drift_detected) {
    metrics_.counter("ctrl.drift.detected").increment();
    if (!stream.replan_pending) {
      stream.replan_pending = true;
      stream.pending_rates_per_day = revised_per_day;
      stream.pending_rates_per_second = revised_per_second;
      outcome.report.replanned = true;
      outcome.revised = with_rates(stream.base, revised_per_day);
      metrics_.counter("ctrl.replan.scheduled").increment();
    }
  }
  return outcome;
}

RevisedPlan Replanner::commit(const std::string& key,
                              const svc::PlanReport& report) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = streams_.find(key);
  if (it == streams_.end()) {
    common::fail("Replanner: commit for unknown stream");
  }
  Stream& stream = it->second;
  if (!stream.replan_pending) {
    common::fail("Replanner: commit without a pending re-plan");
  }
  stream.base = with_rates(stream.base, stream.pending_rates_per_day);
  for (std::size_t i = 0; i < stream.levels.size(); ++i) {
    LevelState& level = stream.levels[i];
    level.baseline_rate = stream.pending_rates_per_second[i];
    level.mle = stat::RateMle();
    level.posterior =
        stat::GammaPoisson::from_mean(level.baseline_rate, options_.prior_shape);
    level.cusum.reset(level.baseline_rate);
    // last_event_time is kept: the gap chain continues across the re-plan.
  }
  stream.replan_pending = false;
  stream.pending_rates_per_day.clear();
  stream.pending_rates_per_second.clear();
  ++stream.plan_epoch;
  metrics_.counter("ctrl.replans").increment();

  RevisedPlan revised;
  revised.plan_epoch = stream.plan_epoch;
  revised.report = report;
  return revised;
}

void Replanner::cancel_replan(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = streams_.find(key);
  if (it == streams_.end() || !it->second.replan_pending) return;
  it->second.replan_pending = false;
  it->second.pending_rates_per_day.clear();
  it->second.pending_rates_per_second.clear();
  metrics_.counter("ctrl.replan.cancelled").increment();
}

std::uint64_t Replanner::epoch(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = streams_.find(key);
  return it == streams_.end() ? 0 : it->second.plan_epoch;
}

std::size_t Replanner::streams() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return streams_.size();
}

}  // namespace mlcr::ctrl
