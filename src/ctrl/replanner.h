// The online re-planning control loop (DESIGN.md §13): observe -> estimate
// -> re-plan -> push.
//
// A ctrl::Replanner owns one estimation "stream" per canonical plan key
// (svc::canonical_key of the subscribed/ingested base request).  Each
// ingest batch carries observed failure events in the sim::FailureTrace
// wire form; the replanner folds them into per-level online estimators
// (stat::RateMle, stat::GammaPoisson seeded at the planned rate,
// stat::Cusum over inter-arrival gaps) and decides whether the observed
// rates have drifted beyond the configured threshold.  On drift it rebuilds
// the SystemConfig with the posterior-mean rates (everything else
// unchanged) and hands back a revised PlanRequest; the caller solves it
// through the existing SweepEngine::plan_one and then commit()s the report,
// which bumps the stream's monotonically increasing plan_epoch and re-arms
// the estimators against the revised baseline.
//
// Determinism contract: ingest() and with_rates() are pure functions of the
// observed events and the options — no clocks, no RNG — so a revised
// request derived here and re-derived in-process from the same trace is
// byte-identical (equal canonical keys), and the pushed PlanReport is
// bit-exact against an in-process re-solve.
//
// Threading: every public method is safe to call from any thread (one
// internal mutex; all work under it is arithmetic on a few doubles per
// level).  Nothing here blocks — this header's code runs on reactor event
// loops, and the net-blocking-call lint rule covers src/ctrl.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "sim/event_sim.h"
#include "stat/estimators.h"
#include "svc/plan_request.h"

namespace mlcr::ctrl {

struct ReplannerOptions {
  /// Re-plan when a level's posterior-mean rate leaves
  /// [baseline / drift_ratio, baseline * drift_ratio].  Must be > 1.
  double drift_ratio = 1.5;
  /// stat::Cusum shift factor (rho) and alarm threshold (h): the detector
  /// tests "rate jumped by rho" and alarms after ~h / ln(rho) post-change
  /// events (for large rho).
  double cusum_shift = 2.0;
  double cusum_threshold = 8.0;
  /// Minimum total observed events on a stream before drift can fire; the
  /// Gamma prior already shrinks thin evidence toward the plan, this is a
  /// hard floor on top.
  std::uint64_t min_events = 8;
  /// Gamma prior pseudo-event count (prior strength).  The prior mean is
  /// always the current baseline rate.
  double prior_shape = 4.0;
};

/// One ingest batch: the base request identifying the stream plus observed
/// failure events (absolute wall-clock seconds, per level — the
/// sim::FailureTrace / sim::trace_io wire form).
struct IngestRequest {
  explicit IngestRequest(svc::PlanRequest base_request)
      : base(std::move(base_request)) {}

  svc::PlanRequest base;
  sim::FailureTrace trace;
  /// Absolute end of this batch's observation window, seconds.  0 = the
  /// batch's last event time.  Must not regress across batches; events must
  /// lie within (previous end, this end].
  double observed_seconds = 0.0;
  /// Execution scale N the events were observed at; 0 = the config's
  /// failure-rate baseline scale.  Pinned by the first batch of a stream.
  double observed_scale = 0.0;
};

/// Per-level estimation snapshot (all rates in events/second at the
/// observed scale).
struct LevelEstimate {
  std::uint64_t events = 0;         ///< cumulative since last re-plan
  double exposure_seconds = 0.0;    ///< cumulative since last re-plan
  double rate_mle = 0.0;            ///< K / T (0 while no exposure)
  double rate_posterior = 0.0;      ///< Gamma–Poisson posterior mean
  double baseline_rate = 0.0;       ///< current plan's rate (drift reference)
  double cusum_statistic = 0.0;     ///< max of the up/down statistics
  bool cusum_alarm = false;
  bool drift = false;
};

/// Wire-visible result of one ingest batch ({"ok":true,"ingest":{...}}).
struct IngestReport {
  std::string key;    ///< canonical plan key of the stream
  std::string label;  ///< echoed from the request
  std::uint64_t batch_events = 0;
  std::uint64_t total_events = 0;  ///< lifetime stream total
  std::vector<LevelEstimate> levels;
  bool drift_detected = false;
  /// True when THIS batch scheduled a re-plan (drift with none pending).
  bool replanned = false;
  /// Last committed epoch at response time (the revision in flight, if any,
  /// will carry plan_epoch + 1).
  std::uint64_t plan_epoch = 0;
};

/// A committed revision: the re-solved report plus its epoch.
struct RevisedPlan {
  std::uint64_t plan_epoch = 0;
  svc::PlanReport report;
};

/// Everything the caller needs after one ingest: the wire report, and —
/// when this batch crossed the drift threshold — the rebuilt request to
/// solve and commit().
struct IngestOutcome {
  IngestReport report;
  /// Engaged exactly when this batch scheduled a re-plan.
  std::optional<svc::PlanRequest> revised;
};

class Replanner {
 public:
  explicit Replanner(ReplannerOptions options = {});

  /// Folds one batch of observed failures into the stream keyed by
  /// canonical_key(request.base), creating the stream on first contact.
  /// Throws common::Error on invalid batches (regressing observation
  /// window, events outside it, changed observed_scale, level-count
  /// mismatch).
  [[nodiscard]] IngestOutcome ingest(const IngestRequest& request);

  /// Records the solved revision for `key`: bumps the stream's plan_epoch,
  /// clears the pending-replan latch, re-centers every estimator on the
  /// revised rates, and returns the epoch-stamped report to publish.
  /// Throws common::Error if the stream does not exist.
  [[nodiscard]] RevisedPlan commit(const std::string& key,
                                   const svc::PlanReport& report);

  /// Clears the pending-replan latch without bumping the epoch (the solve
  /// was shed); the still-drifted estimators re-trigger on the next batch.
  void cancel_replan(const std::string& key);

  /// Last committed epoch for `key` (0 for unknown streams: the base plan).
  [[nodiscard]] std::uint64_t epoch(const std::string& key) const;

  [[nodiscard]] std::size_t streams() const;
  [[nodiscard]] const ReplannerOptions& options() const noexcept {
    return options_;
  }

  /// ctrl.* instrumentation (ingest batches/events, drift, replans, sheds).
  [[nodiscard]] common::metrics::Registry& metrics() noexcept {
    return metrics_;
  }

  /// Pure helper: `base` with its per-day-at-baseline failure rates
  /// replaced (level count must match), everything else bit-identical.
  [[nodiscard]] static svc::PlanRequest with_rates(
      const svc::PlanRequest& base,
      const std::vector<double>& per_day_at_baseline);

 private:
  struct LevelState {
    LevelState(double baseline, double prior_shape, double cusum_shift,
               double cusum_threshold)
        : posterior(stat::GammaPoisson::from_mean(baseline, prior_shape)),
          cusum(baseline, cusum_shift, cusum_threshold),
          baseline_rate(baseline) {}

    stat::RateMle mle;
    stat::GammaPoisson posterior;
    stat::Cusum cusum;
    double baseline_rate;  ///< per-second at the observed scale
    double last_event_time = 0.0;
  };

  struct Stream {
    explicit Stream(svc::PlanRequest base_request)
        : base(std::move(base_request)) {}

    svc::PlanRequest base;  ///< latest committed request (revised on commit)
    double observed_scale = 0.0;
    double observed_end = 0.0;  ///< end of the last accepted window
    std::vector<LevelState> levels;
    std::uint64_t total_events = 0;
    std::uint64_t plan_epoch = 0;
    bool replan_pending = false;
    /// Posterior per-day-at-baseline rates captured when the pending
    /// revision was scheduled; applied to the baselines on commit().
    std::vector<double> pending_rates_per_day;
    std::vector<double> pending_rates_per_second;
  };

  [[nodiscard]] Stream make_stream(const IngestRequest& request) const;

  ReplannerOptions options_;
  common::metrics::Registry metrics_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Stream> streams_;
};

}  // namespace mlcr::ctrl
