// Expected wall-clock evaluators — the paper's target function.
//
// Formula (21):
//   E(Tw) = Te/g(N) + sum_i C_i(N) (x_i - 1)
//         + sum_i mu_i [ Te/g(N)/(2 x_i) + sum_{k<=i} C_k x_k/(2 x_i)
//                        + A + R_i(N) ]
// with the frozen failure-count model mu_i = mu_i(N) (MuModel).
//
// Also provides the closed-form partial derivatives used by the optimizer:
//   d E / d x_i  — Formula (23)
//   d E / d N    — Formula (24)
// and the analytic breakdown into the four time portions reported in
// Figures 5/6 (productive, checkpoint, restart, rollback).
#pragma once

#include <vector>

#include "model/failure.h"
#include "model/system.h"

namespace mlcr::model {

/// A candidate solution: per-level checkpoint-interval counts and the scale.
struct Plan {
  std::vector<double> intervals;  ///< x_i >= 1 per level (level 1 first)
  double scale = 0.0;             ///< N > 0

  [[nodiscard]] std::size_t levels() const noexcept {
    return intervals.size();
  }
};

/// Analytic expectation of the four time portions (seconds).
struct TimePortions {
  double productive = 0.0;  ///< Te / g(N)
  double checkpoint = 0.0;  ///< sum_i C_i (x_i - 1)
  double restart = 0.0;     ///< sum_i mu_i (A + R_i)
  double rollback = 0.0;    ///< sum_i mu_i (Te/g/(2x_i) + sum C_k x_k/(2x_i))

  [[nodiscard]] double total() const noexcept {
    return productive + checkpoint + restart + rollback;
  }
};

/// E(Tw) per Formula (21).  Requires plan.levels() == cfg.levels() ==
/// mu.levels() and every x_i >= 1.
[[nodiscard]] double expected_wallclock(const SystemConfig& cfg,
                                        const MuModel& mu, const Plan& plan);

/// Same expectation, split into the paper's four portions.
[[nodiscard]] TimePortions expected_portions(const SystemConfig& cfg,
                                             const MuModel& mu,
                                             const Plan& plan);

/// Formula (23): d E(Tw) / d x_i at the given plan (level index 0-based).
[[nodiscard]] double wallclock_dx(const SystemConfig& cfg, const MuModel& mu,
                                  const Plan& plan, std::size_t level);

/// Formula (24): d E(Tw) / d N at the given plan.
[[nodiscard]] double wallclock_dn(const SystemConfig& cfg, const MuModel& mu,
                                  const Plan& plan);

// --- Single-level model, Formula (13) ---------------------------------
//
// The paper's single-level derivation (Formulas (7)/(13)) differs slightly
// from the L=1 specialization of Formula (21): it does NOT charge the
// half-checkpoint redo term C/2 per failure that Formula (18) adds.  The
// Figure 3 reference optima (x*=797/N*=81746 and x*=140/N*=20215) are
// stationary points of THIS target.  The SL baselines use these evaluators.

/// Formula (13): Te/g + C(N)(x-1) + mu(N) (Te/(2 x g(N)) + R(N) + A).
/// Requires cfg.levels() == 1 and mu.levels() == 1.
[[nodiscard]] double expected_wallclock_single(const SystemConfig& cfg,
                                               const MuModel& mu, double x,
                                               double n);

/// Formula (14): d/dx of the single-level target.
[[nodiscard]] double single_dx(const SystemConfig& cfg, const MuModel& mu,
                               double x, double n);

/// Formula (15): d/dN of the single-level target.
[[nodiscard]] double single_dn(const SystemConfig& cfg, const MuModel& mu,
                               double x, double n);

/// Wall-clock "efficiency" (processor utilization, Section IV-A):
/// (Te / wallclock) / N.
[[nodiscard]] double efficiency(double te_seconds, double wallclock_seconds,
                                double scale) noexcept;

}  // namespace mlcr::model
