#include "model/speedup.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/error.h"

namespace mlcr::model {

namespace {

/// Exact (hex-float) rendering so distinct parameters never collide.
std::string hexf(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

}  // namespace

LinearSpeedup::LinearSpeedup(double kappa) : kappa_(kappa) {
  MLCR_EXPECT(kappa > 0.0, "LinearSpeedup: kappa must be positive");
}

double LinearSpeedup::value(double n) const { return kappa_ * n; }
double LinearSpeedup::derivative(double) const { return kappa_; }
double LinearSpeedup::ideal_scale() const {
  return std::numeric_limits<double>::infinity();
}
std::unique_ptr<Speedup> LinearSpeedup::clone() const {
  return std::make_unique<LinearSpeedup>(*this);
}
std::string LinearSpeedup::cache_key() const {
  return "linear(" + hexf(kappa_) + ")";
}

QuadraticSpeedup::QuadraticSpeedup(double kappa, double n_symmetry)
    : kappa_(kappa), n_symmetry_(n_symmetry) {
  MLCR_EXPECT(kappa > 0.0, "QuadraticSpeedup: kappa must be positive");
  MLCR_EXPECT(n_symmetry > 0.0, "QuadraticSpeedup: N_sym must be positive");
}

double QuadraticSpeedup::value(double n) const {
  return -kappa_ / (2.0 * n_symmetry_) * n * n + kappa_ * n;
}

double QuadraticSpeedup::derivative(double n) const {
  return kappa_ * (1.0 - n / n_symmetry_);
}

double QuadraticSpeedup::ideal_scale() const { return n_symmetry_; }

std::unique_ptr<Speedup> QuadraticSpeedup::clone() const {
  return std::make_unique<QuadraticSpeedup>(*this);
}

std::string QuadraticSpeedup::cache_key() const {
  return "quadratic(" + hexf(kappa_) + "," + hexf(n_symmetry_) + ")";
}

QuadraticSpeedup QuadraticSpeedup::from_coefficients(double a1, double a2) {
  MLCR_EXPECT(a1 > 0.0, "from_coefficients: slope at origin must be positive");
  MLCR_EXPECT(a2 < 0.0, "from_coefficients: quadratic term must be negative");
  // g = a1 N + a2 N^2 = -kappa/(2 N_sym) N^2 + kappa N
  // => kappa = a1, N_sym = -a1 / (2 a2).
  return QuadraticSpeedup(a1, -a1 / (2.0 * a2));
}

AmdahlSpeedup::AmdahlSpeedup(double serial_fraction)
    : serial_fraction_(serial_fraction) {
  MLCR_EXPECT(serial_fraction > 0.0 && serial_fraction <= 1.0,
              "AmdahlSpeedup: serial fraction must be in (0, 1]");
}

double AmdahlSpeedup::value(double n) const {
  return 1.0 / (serial_fraction_ + (1.0 - serial_fraction_) / n);
}

double AmdahlSpeedup::derivative(double n) const {
  const double denom = serial_fraction_ + (1.0 - serial_fraction_) / n;
  return (1.0 - serial_fraction_) / (n * n * denom * denom);
}

double AmdahlSpeedup::ideal_scale() const {
  return std::numeric_limits<double>::infinity();
}

std::unique_ptr<Speedup> AmdahlSpeedup::clone() const {
  return std::make_unique<AmdahlSpeedup>(*this);
}

std::string AmdahlSpeedup::cache_key() const {
  return "amdahl(" + hexf(serial_fraction_) + ")";
}

TabulatedSpeedup::TabulatedSpeedup(std::span<const double> scales,
                                   std::span<const double> speedups)
    : scales_(scales.begin(), scales.end()),
      speedups_(speedups.begin(), speedups.end()) {
  MLCR_EXPECT(scales_.size() == speedups_.size(),
              "TabulatedSpeedup: size mismatch");
  MLCR_EXPECT(scales_.size() >= 2, "TabulatedSpeedup: need >= 2 points");
  MLCR_EXPECT(std::is_sorted(scales_.begin(), scales_.end()) &&
                  std::adjacent_find(scales_.begin(), scales_.end()) ==
                      scales_.end(),
              "TabulatedSpeedup: scales must be strictly increasing");
  MLCR_EXPECT(scales_.front() > 0.0, "TabulatedSpeedup: scales must be > 0");
}

double TabulatedSpeedup::value(double n) const {
  // Below the first point, interpolate toward the origin (g(0) = 0).
  if (n <= scales_.front()) {
    return speedups_.front() * n / scales_.front();
  }
  auto it = std::lower_bound(scales_.begin(), scales_.end(), n);
  std::size_t hi = it == scales_.end() ? scales_.size() - 1
                                       : static_cast<std::size_t>(
                                             std::distance(scales_.begin(), it));
  if (hi == 0) hi = 1;
  const std::size_t lo = hi - 1;
  const double t = (n - scales_[lo]) / (scales_[hi] - scales_[lo]);
  return speedups_[lo] + t * (speedups_[hi] - speedups_[lo]);
}

double TabulatedSpeedup::derivative(double n) const {
  if (n <= scales_.front()) return speedups_.front() / scales_.front();
  auto it = std::lower_bound(scales_.begin(), scales_.end(), n);
  std::size_t hi = it == scales_.end() ? scales_.size() - 1
                                       : static_cast<std::size_t>(
                                             std::distance(scales_.begin(), it));
  if (hi == 0) hi = 1;
  const std::size_t lo = hi - 1;
  return (speedups_[hi] - speedups_[lo]) / (scales_[hi] - scales_[lo]);
}

double TabulatedSpeedup::ideal_scale() const {
  // First local maximum: the scale of the largest tabulated speedup.
  const auto it = std::max_element(speedups_.begin(), speedups_.end());
  return scales_[static_cast<std::size_t>(
      std::distance(speedups_.begin(), it))];
}

std::unique_ptr<Speedup> TabulatedSpeedup::clone() const {
  return std::make_unique<TabulatedSpeedup>(*this);
}

std::string TabulatedSpeedup::cache_key() const {
  std::string key = "tabulated(";
  for (std::size_t i = 0; i < scales_.size(); ++i) {
    if (i > 0) key += ";";
    key += hexf(scales_[i]) + ":" + hexf(speedups_[i]);
  }
  return key + ")";
}

}  // namespace mlcr::model
