// SystemConfig: the full input of the optimization problem — workload,
// speedup curve, per-level checkpoint/recovery overheads, failure rates,
// resource-allocation period A, and the machine capacity.
#pragma once

#include <memory>
#include <vector>

#include "model/failure.h"
#include "model/overhead.h"
#include "model/speedup.h"

namespace mlcr::model {

class SystemConfig {
 public:
  /// `te_seconds`   — single-core productive time Te (seconds).
  /// `speedup`      — speedup curve g(N) (owned).
  /// `levels`       — per-level checkpoint/recovery overheads, level 1 first.
  /// `rates`        — per-level failure rates; must have levels.size() levels.
  /// `allocation`   — resource (re)allocation period A in seconds.
  /// `max_scale`    — machine capacity (upper bound on N); 0 = use the
  ///                  speedup's ideal scale.
  SystemConfig(double te_seconds, std::unique_ptr<Speedup> speedup,
               std::vector<LevelOverheads> levels, FailureRates rates,
               double allocation_seconds, double max_scale = 0.0);

  SystemConfig(const SystemConfig& other);
  SystemConfig& operator=(const SystemConfig& other);
  SystemConfig(SystemConfig&&) noexcept = default;
  SystemConfig& operator=(SystemConfig&&) noexcept = default;

  [[nodiscard]] double te() const noexcept { return te_seconds_; }
  [[nodiscard]] const Speedup& speedup() const noexcept { return *speedup_; }
  [[nodiscard]] std::size_t levels() const noexcept { return levels_.size(); }
  [[nodiscard]] const LevelOverheads& level(std::size_t i) const;
  [[nodiscard]] const std::vector<LevelOverheads>& all_levels() const noexcept {
    return levels_;
  }
  [[nodiscard]] const FailureRates& rates() const noexcept { return rates_; }
  [[nodiscard]] double allocation() const noexcept { return allocation_; }
  /// Raw machine-capacity bound as configured (0 = uncapped); prefer
  /// scale_upper_bound() for searches.  Exposed for exact wire encoding.
  [[nodiscard]] double max_scale() const noexcept { return max_scale_; }

  /// Search upper bound for N: min(max_scale, speedup ideal scale).
  [[nodiscard]] double scale_upper_bound() const noexcept;

  /// Parallel productive time f(Te, N) = Te / g(N).
  [[nodiscard]] double productive_time(double n) const;

  /// Convenience: checkpoint / recovery overhead of level i at scale N.
  [[nodiscard]] double ckpt_cost(std::size_t level, double n) const;
  [[nodiscard]] double ckpt_cost_derivative(std::size_t level, double n) const;
  [[nodiscard]] double recovery_cost(std::size_t level, double n) const;
  [[nodiscard]] double recovery_cost_derivative(std::size_t level,
                                                double n) const;

  /// Returns a copy restricted to the top (PFS) level only — the
  /// "single-level" view used by the SL baselines.  Failure rates of all
  /// levels are merged into one, since a single-level scheme must recover
  /// every failure from the PFS checkpoint.
  [[nodiscard]] SystemConfig single_level_view() const;

 private:
  double te_seconds_;
  std::unique_ptr<Speedup> speedup_;
  std::vector<LevelOverheads> levels_;
  FailureRates rates_;
  double allocation_;
  double max_scale_;
};

}  // namespace mlcr::model
