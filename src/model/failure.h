// Failure-rate model.  The paper specifies per-level failure rates as
// "r_1-r_2-...-r_L failures per day at the baseline scale N_b", with real
// rates growing proportionally to the execution scale:
//   lambda_i(N) = (r_i / 86400) * (N / N_b)^p   [per second],  p = 1 default.
//
// Algorithm 1's inner problem freezes the expected failure *count* per level
// to a function of N only: mu_i(N) = lambda_i(N) * Tw_hat, i.e. the linear
// model mu_i(N) = b_i N with b_i = r_i Tw_hat / (86400 N_b) when p = 1.
#pragma once

#include <vector>

#include "common/error.h"
#include "common/units.h"

namespace mlcr::model {

/// Per-level failure rates, scale-proportional (exponent p configurable).
class FailureRates {
 public:
  /// `per_day_at_baseline[i]` is the level-(i+1) rate (events/day) observed
  /// when running on `baseline_scale` cores.
  FailureRates(std::vector<double> per_day_at_baseline, double baseline_scale,
               double scale_exponent = 1.0);

  [[nodiscard]] std::size_t levels() const noexcept {
    return per_day_at_baseline_.size();
  }

  /// lambda_i(N): failures per second at level i (0-based) when running on N.
  [[nodiscard]] double rate_per_second(std::size_t level, double n) const;

  /// d lambda_i / dN.
  [[nodiscard]] double rate_derivative(std::size_t level, double n) const;

  /// Expected failure count at level i over a wall-clock span.
  [[nodiscard]] double expected_failures(std::size_t level, double n,
                                         double wallclock_seconds) const;

  [[nodiscard]] double baseline_scale() const noexcept {
    return baseline_scale_;
  }
  [[nodiscard]] double per_day_at_baseline(std::size_t level) const {
    MLCR_EXPECT(level < per_day_at_baseline_.size(), "level out of range");
    return per_day_at_baseline_[level];
  }
  [[nodiscard]] double scale_exponent() const noexcept {
    return scale_exponent_;
  }

 private:
  std::vector<double> per_day_at_baseline_;
  double baseline_scale_;
  double scale_exponent_;
};

/// The inner-problem failure-count model mu_i(N) (paper Section III-B):
/// mu depends only on N.  Linear form mu_i(N) = b_i * N^p (p = 1 default).
class MuModel {
 public:
  MuModel(std::vector<double> b, double exponent = 1.0);

  /// Builds b_i from failure rates and a wall-clock estimate Tw_hat:
  /// mu_i(N) = lambda_i(N) * Tw_hat.
  [[nodiscard]] static MuModel from_rates(const FailureRates& rates,
                                          double wallclock_estimate);

  [[nodiscard]] std::size_t levels() const noexcept { return b_.size(); }
  [[nodiscard]] double mu(std::size_t level, double n) const;
  [[nodiscard]] double mu_derivative(std::size_t level, double n) const;
  [[nodiscard]] double b(std::size_t level) const {
    MLCR_EXPECT(level < b_.size(), "level out of range");
    return b_[level];
  }

 private:
  std::vector<double> b_;
  double exponent_;
};

}  // namespace mlcr::model
