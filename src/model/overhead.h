// Checkpoint / recovery overhead models (paper Formulas (19)/(20)):
//   C_i(N) = eps_i + alpha_i * Hc(N),   R_i(N) = eta_i + beta_i * Hr(N)
// where Hc/Hr are baseline functions through the origin.  The paper uses
// Hc = 0 (constant cost; FTI levels 1-3, Table II) and Hc = N (linear; FTI
// level 4 on the PFS).  Sqrt and Log shapes are provided for sensitivity
// studies of partially-congested storage.
#pragma once

#include <string>

namespace mlcr::model {

/// Shape of the scale-dependent term H(N).
enum class Scaling {
  kConstant,  ///< H(N) = 0   — overhead independent of scale
  kLinear,    ///< H(N) = N
  kSqrt,      ///< H(N) = sqrt(N)
  kLog,       ///< H(N) = ln(1 + N)
};

[[nodiscard]] double scaling_value(Scaling scaling, double n);
[[nodiscard]] double scaling_derivative(Scaling scaling, double n);
[[nodiscard]] std::string to_string(Scaling scaling);

/// One overhead curve: base + slope * H(N).
struct Overhead {
  double base = 0.0;   ///< eps_i (or eta_i), seconds
  double slope = 0.0;  ///< alpha_i (or beta_i), seconds per unit of H(N)
  Scaling scaling = Scaling::kConstant;

  [[nodiscard]] double value(double n) const {
    return base + slope * scaling_value(scaling, n);
  }
  [[nodiscard]] double derivative(double n) const {
    return slope * scaling_derivative(scaling, n);
  }

  [[nodiscard]] static Overhead constant(double seconds) noexcept {
    return {seconds, 0.0, Scaling::kConstant};
  }
  [[nodiscard]] static Overhead linear(double base, double slope) noexcept {
    return {base, slope, Scaling::kLinear};
  }
};

/// Per-level pair of checkpoint + recovery overheads.
struct LevelOverheads {
  Overhead checkpoint;
  Overhead recovery;
};

}  // namespace mlcr::model
