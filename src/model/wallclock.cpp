#include "model/wallclock.h"

#include <cmath>

#include "common/error.h"

namespace mlcr::model {

namespace {

void check_shapes(const SystemConfig& cfg, const MuModel& mu,
                  const Plan& plan) {
  MLCR_EXPECT(plan.levels() == cfg.levels(),
              "wallclock: plan/config level mismatch");
  MLCR_EXPECT(mu.levels() == cfg.levels(),
              "wallclock: mu/config level mismatch");
  MLCR_EXPECT(plan.scale > 0.0, "wallclock: scale must be positive");
  for (double x : plan.intervals) {
    MLCR_EXPECT(x >= 1.0, "wallclock: interval counts must be >= 1");
  }
}

}  // namespace

TimePortions expected_portions(const SystemConfig& cfg, const MuModel& mu,
                               const Plan& plan) {
  check_shapes(cfg, mu, plan);
  const double n = plan.scale;
  const double productive = cfg.productive_time(n);
  const std::size_t levels = cfg.levels();

  TimePortions portions;
  portions.productive = productive;

  for (std::size_t i = 0; i < levels; ++i) {
    const double ci = cfg.ckpt_cost(i, n);
    const double xi = plan.intervals[i];
    portions.checkpoint += ci * (xi - 1.0);
  }

  for (std::size_t i = 0; i < levels; ++i) {
    const double mi = mu.mu(i, n);
    const double xi = plan.intervals[i];
    // Expected rollback per failure at level i (Formula (18)): half an
    // interval of productive work plus half of every lower-or-equal level's
    // checkpoint overhead spent inside that interval.
    double rollback = productive / (2.0 * xi);
    for (std::size_t k = 0; k <= i; ++k) {
      rollback += cfg.ckpt_cost(k, n) * plan.intervals[k] / (2.0 * xi);
    }
    portions.rollback += mi * rollback;
    portions.restart += mi * (cfg.allocation() + cfg.recovery_cost(i, n));
  }
  return portions;
}

double expected_wallclock(const SystemConfig& cfg, const MuModel& mu,
                          const Plan& plan) {
  return expected_portions(cfg, mu, plan).total();
}

double wallclock_dx(const SystemConfig& cfg, const MuModel& mu,
                    const Plan& plan, std::size_t level) {
  check_shapes(cfg, mu, plan);
  MLCR_EXPECT(level < cfg.levels(), "wallclock_dx: level out of range");
  const double n = plan.scale;
  const double productive = cfg.productive_time(n);
  const double ci = cfg.ckpt_cost(level, n);
  const double xi = plan.intervals[level];

  // Formula (23):
  //   C_i  -  mu_i/(2 x_i^2) (Te/g + sum_{j<i} C_j x_j)
  //        +  (C_i/2) sum_{j>i} mu_j / x_j
  double lower = productive;
  for (std::size_t j = 0; j < level; ++j) {
    lower += cfg.ckpt_cost(j, n) * plan.intervals[j];
  }
  double upper = 0.0;
  for (std::size_t j = level + 1; j < cfg.levels(); ++j) {
    upper += mu.mu(j, n) / plan.intervals[j];
  }
  return ci - mu.mu(level, n) / (2.0 * xi * xi) * lower + 0.5 * ci * upper;
}

double wallclock_dn(const SystemConfig& cfg, const MuModel& mu,
                    const Plan& plan) {
  check_shapes(cfg, mu, plan);
  const double n = plan.scale;
  const double te = cfg.te();
  const double g = cfg.speedup().value(n);
  const double dg = cfg.speedup().derivative(n);
  MLCR_EXPECT(g > 0.0, "wallclock_dn: non-positive speedup");
  const std::size_t levels = cfg.levels();

  // Formula (24), expanded term by term.
  // d/dN [Te/g] = -Te g' / g^2
  double result = -te * dg / (g * g);

  for (std::size_t i = 0; i < levels; ++i) {
    const double xi = plan.intervals[i];
    const double mi = mu.mu(i, n);
    const double dmi = mu.mu_derivative(i, n);
    const double dci = cfg.ckpt_cost_derivative(i, n);

    // d/dN [C_i (x_i - 1)]
    result += dci * (xi - 1.0);

    // mu_i * (Te/(2 x_i g)): both mu_i and 1/g depend on N.
    result += dmi * te / (2.0 * xi * g);
    result -= mi * te * dg / (2.0 * xi * g * g);

    // mu_i * sum_{k<=i} C_k x_k / (2 x_i)
    double chain = 0.0;
    double dchain = 0.0;
    for (std::size_t k = 0; k <= i; ++k) {
      chain += cfg.ckpt_cost(k, n) * plan.intervals[k] / (2.0 * xi);
      dchain += cfg.ckpt_cost_derivative(k, n) * plan.intervals[k] / (2.0 * xi);
    }
    result += dmi * chain + mi * dchain;

    // mu_i * (A + R_i)
    result += dmi * (cfg.allocation() + cfg.recovery_cost(i, n));
    result += mi * cfg.recovery_cost_derivative(i, n);
  }
  return result;
}

namespace {

void check_single(const SystemConfig& cfg, const MuModel& mu, double x,
                  double n) {
  MLCR_EXPECT(cfg.levels() == 1, "single-level evaluator needs L == 1");
  MLCR_EXPECT(mu.levels() == 1, "single-level evaluator needs one mu level");
  MLCR_EXPECT(x >= 1.0, "single-level: interval count must be >= 1");
  MLCR_EXPECT(n > 0.0, "single-level: scale must be positive");
}

}  // namespace

double expected_wallclock_single(const SystemConfig& cfg, const MuModel& mu,
                                 double x, double n) {
  check_single(cfg, mu, x, n);
  const double productive = cfg.productive_time(n);
  const double c = cfg.ckpt_cost(0, n);
  const double r = cfg.recovery_cost(0, n);
  return productive + c * (x - 1.0) +
         mu.mu(0, n) * (productive / (2.0 * x) + r + cfg.allocation());
}

double single_dx(const SystemConfig& cfg, const MuModel& mu, double x,
                 double n) {
  check_single(cfg, mu, x, n);
  // Formula (14): C(N) - mu(N) Te / (2 g(N) x^2).
  return cfg.ckpt_cost(0, n) -
         mu.mu(0, n) * cfg.te() / (2.0 * cfg.speedup().value(n) * x * x);
}

double single_dn(const SystemConfig& cfg, const MuModel& mu, double x,
                 double n) {
  check_single(cfg, mu, x, n);
  const double te = cfg.te();
  const double g = cfg.speedup().value(n);
  const double dg = cfg.speedup().derivative(n);
  const double m = mu.mu(0, n);
  const double dm = mu.mu_derivative(0, n);
  const double r = cfg.recovery_cost(0, n);
  const double dr = cfg.recovery_cost_derivative(0, n);
  const double dc = cfg.ckpt_cost_derivative(0, n);
  // Formula (15) generalized to scale-dependent C/R:
  //   -Te g'/g^2 + C'(x-1)
  //   + mu' (Te/(2 x g) + R + A) + mu (-Te g'/(2 x g^2) + R')
  return -te * dg / (g * g) + dc * (x - 1.0) +
         dm * (te / (2.0 * x * g) + r + cfg.allocation()) +
         m * (-te * dg / (2.0 * x * g * g) + dr);
}

double efficiency(double te_seconds, double wallclock_seconds,
                  double scale) noexcept {
  if (wallclock_seconds <= 0.0 || scale <= 0.0) return 0.0;
  return (te_seconds / wallclock_seconds) / scale;
}

}  // namespace mlcr::model
