#include "model/overhead.h"

#include <cmath>

#include "num/finite.h"

namespace mlcr::model {

double scaling_value(Scaling scaling, double n) {
  switch (scaling) {
    case Scaling::kConstant: return 0.0;
    case Scaling::kLinear: return n;
    case Scaling::kSqrt: return num::checked_sqrt(n, "overhead H(N)");
    case Scaling::kLog: return num::checked_log1p(n, "overhead H(N)");
  }
  return 0.0;
}

double scaling_derivative(Scaling scaling, double n) {
  switch (scaling) {
    case Scaling::kConstant: return 0.0;
    case Scaling::kLinear: return 1.0;
    case Scaling::kSqrt:
      return n > 0.0 ? 0.5 / num::checked_sqrt(n, "overhead H'(N)") : 0.0;
    case Scaling::kLog: return 1.0 / (1.0 + n);
  }
  return 0.0;
}

std::string to_string(Scaling scaling) {
  switch (scaling) {
    case Scaling::kConstant: return "constant";
    case Scaling::kLinear: return "linear";
    case Scaling::kSqrt: return "sqrt";
    case Scaling::kLog: return "log";
  }
  return "?";
}

}  // namespace mlcr::model
