#include "model/overhead.h"

#include <cmath>

namespace mlcr::model {

double scaling_value(Scaling scaling, double n) noexcept {
  switch (scaling) {
    case Scaling::kConstant: return 0.0;
    case Scaling::kLinear: return n;
    case Scaling::kSqrt: return std::sqrt(n);
    case Scaling::kLog: return std::log1p(n);
  }
  return 0.0;
}

double scaling_derivative(Scaling scaling, double n) noexcept {
  switch (scaling) {
    case Scaling::kConstant: return 0.0;
    case Scaling::kLinear: return 1.0;
    case Scaling::kSqrt: return n > 0.0 ? 0.5 / std::sqrt(n) : 0.0;
    case Scaling::kLog: return 1.0 / (1.0 + n);
  }
  return 0.0;
}

std::string to_string(Scaling scaling) {
  switch (scaling) {
    case Scaling::kConstant: return "constant";
    case Scaling::kLinear: return "linear";
    case Scaling::kSqrt: return "sqrt";
    case Scaling::kLog: return "log";
  }
  return "?";
}

}  // namespace mlcr::model
