#include "model/system.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"

namespace mlcr::model {

SystemConfig::SystemConfig(double te_seconds, std::unique_ptr<Speedup> speedup,
                           std::vector<LevelOverheads> levels,
                           FailureRates rates, double allocation_seconds,
                           double max_scale)
    : te_seconds_(te_seconds),
      speedup_(std::move(speedup)),
      levels_(std::move(levels)),
      rates_(std::move(rates)),
      allocation_(allocation_seconds),
      max_scale_(max_scale) {
  MLCR_EXPECT(te_seconds_ > 0.0, "SystemConfig: Te must be positive");
  MLCR_EXPECT(speedup_ != nullptr, "SystemConfig: speedup required");
  MLCR_EXPECT(!levels_.empty(), "SystemConfig: at least one level required");
  MLCR_EXPECT(rates_.levels() == levels_.size(),
              "SystemConfig: failure rates / levels mismatch");
  MLCR_EXPECT(allocation_ >= 0.0, "SystemConfig: A must be non-negative");
  MLCR_EXPECT(max_scale_ >= 0.0, "SystemConfig: capacity must be >= 0");
}

SystemConfig::SystemConfig(const SystemConfig& other)
    : te_seconds_(other.te_seconds_),
      speedup_(other.speedup_->clone()),
      levels_(other.levels_),
      rates_(other.rates_),
      allocation_(other.allocation_),
      max_scale_(other.max_scale_) {}

SystemConfig& SystemConfig::operator=(const SystemConfig& other) {
  if (this != &other) {
    te_seconds_ = other.te_seconds_;
    speedup_ = other.speedup_->clone();
    levels_ = other.levels_;
    rates_ = other.rates_;
    allocation_ = other.allocation_;
    max_scale_ = other.max_scale_;
  }
  return *this;
}

const LevelOverheads& SystemConfig::level(std::size_t i) const {
  MLCR_EXPECT(i < levels_.size(), "SystemConfig: level out of range");
  return levels_[i];
}

double SystemConfig::scale_upper_bound() const noexcept {
  const double ideal = speedup_->ideal_scale();
  if (max_scale_ <= 0.0) return ideal;
  return std::min(max_scale_, ideal);
}

double SystemConfig::productive_time(double n) const {
  const double g = speedup_->value(n);
  MLCR_EXPECT(g > 0.0, "SystemConfig: non-positive speedup at this scale");
  return te_seconds_ / g;
}

double SystemConfig::ckpt_cost(std::size_t level, double n) const {
  return this->level(level).checkpoint.value(n);
}

double SystemConfig::ckpt_cost_derivative(std::size_t level, double n) const {
  return this->level(level).checkpoint.derivative(n);
}

double SystemConfig::recovery_cost(std::size_t level, double n) const {
  return this->level(level).recovery.value(n);
}

double SystemConfig::recovery_cost_derivative(std::size_t level,
                                              double n) const {
  return this->level(level).recovery.derivative(n);
}

SystemConfig SystemConfig::single_level_view() const {
  // All failures must be recovered from the top-level (PFS) checkpoint, so
  // the merged rate is the sum of the per-level rates.
  double merged = 0.0;
  for (std::size_t i = 0; i < rates_.levels(); ++i) {
    merged += rates_.per_day_at_baseline(i);
  }
  FailureRates single({merged}, rates_.baseline_scale(),
                      rates_.scale_exponent());
  return SystemConfig(te_seconds_, speedup_->clone(), {levels_.back()},
                      std::move(single), allocation_, max_scale_);
}

}  // namespace mlcr::model
