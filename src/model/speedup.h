// Speedup functions g(N) (paper Section II / Formula (12)).
//
// The paper's optimizer only needs g(N), g'(N) and the "ideal scale" N_star
// (the largest N at which g is still non-decreasing): the optimum N* is
// always searched in (0, N_star].  Four shapes are provided:
//   * Linear        g(N) = kappa * N                      (Section III-C.1)
//   * Quadratic     g(N) = -kappa/(2 N_sym) N^2 + kappa N  (Formula (12))
//   * Amdahl        g(N) = 1 / (s + (1-s)/N)               (ref [31])
//   * Tabulated     piecewise-linear through measured points (Figure 2 data)
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace mlcr::model {

/// Interface: differentiable speedup curve through the origin.
class Speedup {
 public:
  virtual ~Speedup() = default;

  /// g(N); requires N > 0.
  [[nodiscard]] virtual double value(double n) const = 0;

  /// g'(N).
  [[nodiscard]] virtual double derivative(double n) const = 0;

  /// Largest scale at which the curve is still non-decreasing ("original
  /// optimal scale" N^(*) in the paper).  Infinity for strictly increasing
  /// curves capped only by machine size.
  [[nodiscard]] virtual double ideal_scale() const = 0;

  [[nodiscard]] virtual std::unique_ptr<Speedup> clone() const = 0;

  /// Canonical text form of the curve (shape tag + exact hex-float
  /// parameters).  Two speedups with equal keys evaluate identically; the
  /// plan cache (svc::SweepEngine) folds it into the request key.
  [[nodiscard]] virtual std::string cache_key() const = 0;
};

/// g(N) = kappa * N.
class LinearSpeedup final : public Speedup {
 public:
  explicit LinearSpeedup(double kappa);
  [[nodiscard]] double value(double n) const override;
  [[nodiscard]] double derivative(double n) const override;
  [[nodiscard]] double ideal_scale() const override;
  [[nodiscard]] std::unique_ptr<Speedup> clone() const override;
  [[nodiscard]] std::string cache_key() const override;
  [[nodiscard]] double kappa() const noexcept { return kappa_; }

 private:
  double kappa_;
};

/// Paper Formula (12): g(N) = -kappa/(2 N_sym) N^2 + kappa N.
/// The symmetry axis N_sym is the ideal scale (g peaks there).
class QuadraticSpeedup final : public Speedup {
 public:
  QuadraticSpeedup(double kappa, double n_symmetry);
  [[nodiscard]] double value(double n) const override;
  [[nodiscard]] double derivative(double n) const override;
  [[nodiscard]] double ideal_scale() const override;
  [[nodiscard]] std::unique_ptr<Speedup> clone() const override;
  [[nodiscard]] std::string cache_key() const override;
  [[nodiscard]] double kappa() const noexcept { return kappa_; }
  [[nodiscard]] double n_symmetry() const noexcept { return n_symmetry_; }

  /// Builds from general through-origin coefficients g = a1 N + a2 N^2
  /// (the output of num::fit_quadratic_through_origin); requires a2 < 0.
  [[nodiscard]] static QuadraticSpeedup from_coefficients(double a1, double a2);

 private:
  double kappa_;
  double n_symmetry_;
};

/// Amdahl's law with serial fraction s in (0, 1]: g(N) = 1/(s + (1-s)/N).
class AmdahlSpeedup final : public Speedup {
 public:
  explicit AmdahlSpeedup(double serial_fraction);
  [[nodiscard]] double value(double n) const override;
  [[nodiscard]] double derivative(double n) const override;
  [[nodiscard]] double ideal_scale() const override;
  [[nodiscard]] std::unique_ptr<Speedup> clone() const override;
  [[nodiscard]] std::string cache_key() const override;
  [[nodiscard]] double serial_fraction() const noexcept {
    return serial_fraction_;
  }

 private:
  double serial_fraction_;
};

/// Piecewise-linear interpolation through measured (N, speedup) points.
/// Points must have strictly increasing N; the curve is extended linearly
/// beyond the last segment.
class TabulatedSpeedup final : public Speedup {
 public:
  TabulatedSpeedup(std::span<const double> scales,
                   std::span<const double> speedups);
  [[nodiscard]] double value(double n) const override;
  [[nodiscard]] double derivative(double n) const override;
  [[nodiscard]] double ideal_scale() const override;
  [[nodiscard]] std::unique_ptr<Speedup> clone() const override;
  [[nodiscard]] std::string cache_key() const override;
  [[nodiscard]] const std::vector<double>& scales() const noexcept {
    return scales_;
  }
  [[nodiscard]] const std::vector<double>& speedups() const noexcept {
    return speedups_;
  }

 private:
  std::vector<double> scales_;
  std::vector<double> speedups_;
};

}  // namespace mlcr::model
