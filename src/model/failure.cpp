#include "model/failure.h"

#include <cmath>

#include "num/finite.h"

namespace mlcr::model {

FailureRates::FailureRates(std::vector<double> per_day_at_baseline,
                           double baseline_scale, double scale_exponent)
    : per_day_at_baseline_(std::move(per_day_at_baseline)),
      baseline_scale_(baseline_scale),
      scale_exponent_(scale_exponent) {
  MLCR_EXPECT(!per_day_at_baseline_.empty(), "FailureRates: no levels");
  MLCR_EXPECT(baseline_scale_ > 0.0, "FailureRates: baseline must be > 0");
  for (double r : per_day_at_baseline_) {
    MLCR_EXPECT(r >= 0.0, "FailureRates: negative rate");
  }
}

double FailureRates::rate_per_second(std::size_t level, double n) const {
  MLCR_EXPECT(level < per_day_at_baseline_.size(), "level out of range");
  const double scale = num::checked_pow(n / baseline_scale_, scale_exponent_);
  return common::per_day_to_per_second(per_day_at_baseline_[level]) * scale;
}

double FailureRates::rate_derivative(std::size_t level, double n) const {
  MLCR_EXPECT(level < per_day_at_baseline_.size(), "level out of range");
  const double base = common::per_day_to_per_second(per_day_at_baseline_[level]);
  return base * scale_exponent_ *
         num::checked_pow(n / baseline_scale_, scale_exponent_ - 1.0) /
         baseline_scale_;
}

double FailureRates::expected_failures(std::size_t level, double n,
                                       double wallclock_seconds) const {
  return rate_per_second(level, n) * wallclock_seconds;
}

MuModel::MuModel(std::vector<double> b, double exponent)
    : b_(std::move(b)), exponent_(exponent) {
  MLCR_EXPECT(!b_.empty(), "MuModel: no levels");
  for (double v : b_) MLCR_EXPECT(v >= 0.0, "MuModel: negative coefficient");
}

MuModel MuModel::from_rates(const FailureRates& rates,
                            double wallclock_estimate) {
  MLCR_EXPECT(wallclock_estimate > 0.0, "MuModel: wallclock must be > 0");
  std::vector<double> b(rates.levels());
  for (std::size_t i = 0; i < b.size(); ++i) {
    // mu_i(N) = lambda_i(N) * Tw = [r_i/(day * N_b^p)] * Tw * N^p  =>  b_i.
    b[i] = rates.rate_per_second(i, 1.0) * wallclock_estimate;
  }
  return MuModel(std::move(b), rates.scale_exponent());
}

double MuModel::mu(std::size_t level, double n) const {
  MLCR_EXPECT(level < b_.size(), "level out of range");
  return b_[level] * num::checked_pow(n, exponent_);
}

double MuModel::mu_derivative(std::size_t level, double n) const {
  MLCR_EXPECT(level < b_.size(), "level out of range");
  return b_[level] * exponent_ * num::checked_pow(n, exponent_ - 1.0);
}

}  // namespace mlcr::model
