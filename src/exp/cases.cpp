#include "exp/cases.h"

#include <array>
#include <cmath>

#include "common/units.h"

namespace mlcr::exp {

std::vector<FailureCase> paper_failure_cases() {
  return {{"16-12-8-4", {16, 12, 8, 4}}, {"8-6-4-2", {8, 6, 4, 2}},
          {"4-3-2-1", {4, 3, 2, 1}},     {"16-8-4-2", {16, 8, 4, 2}},
          {"8-4-2-1", {8, 4, 2, 1}},     {"4-2-1-0.5", {4, 2, 1, 0.5}}};
}

std::vector<FailureCase> table4_failure_cases() {
  return {{"16-12-8-4", {16, 12, 8, 4}},
          {"8-6-4-2", {8, 6, 4, 2}},
          {"4-3-2-1", {4, 3, 2, 1}}};
}

const std::vector<Table2Row>& table2_data() {
  static const std::vector<Table2Row> data{
      {128, {0.9, 2.53, 3.7, 7.0}},    {256, {0.67, 2.54, 4.1, 8.1}},
      {384, {0.67, 2.25, 3.9, 14.3}},  {512, {0.99, 3.05, 4.12, 21.3}},
      {1024, {1.1, 2.56, 3.61, 25.15}}};
  return data;
}

FtiCoefficients fti_coefficients() {
  // Paper Section IV-A: least-squares fits of Table II.
  return {{0.866, 2.586, 3.886, 5.5}, {0.0, 0.0, 0.0, 0.0212}};
}

std::vector<model::LevelOverheads> fti_level_overheads() {
  const auto fit = fti_coefficients();
  std::vector<model::LevelOverheads> levels(4);
  for (int i = 0; i < 4; ++i) {
    levels[static_cast<std::size_t>(i)].checkpoint =
        fit.alpha[i] == 0.0 ? model::Overhead::constant(fit.eps[i])
                            : model::Overhead::linear(fit.eps[i], fit.alpha[i]);
    // Recovery is constant per level (see header for the justification).
    levels[static_cast<std::size_t>(i)].recovery =
        model::Overhead::constant(fit.eps[i]);
  }
  return levels;
}

model::SystemConfig make_fti_system(double te_core_days,
                                    const FailureCase& failure_case,
                                    double n_star) {
  model::FailureRates rates(failure_case.per_day, n_star);
  return model::SystemConfig(
      common::core_days_to_seconds(te_core_days),
      std::make_unique<model::QuadraticSpeedup>(0.46, n_star),
      fti_level_overheads(), std::move(rates), /*allocation=*/60.0);
}

model::SystemConfig make_constant_pfs_system(const FailureCase& failure_case,
                                             double recovery_factor,
                                             double te_core_days,
                                             double n_star) {
  const double costs[4] = {50.0, 100.0, 200.0, 2000.0};
  std::vector<model::LevelOverheads> levels(4);
  for (int i = 0; i < 4; ++i) {
    levels[static_cast<std::size_t>(i)].checkpoint =
        model::Overhead::constant(costs[i]);
    levels[static_cast<std::size_t>(i)].recovery =
        model::Overhead::constant(costs[i] * recovery_factor);
  }
  model::FailureRates rates(failure_case.per_day, n_star);
  return model::SystemConfig(
      common::core_days_to_seconds(te_core_days),
      std::make_unique<model::QuadraticSpeedup>(0.46, n_star),
      std::move(levels), std::move(rates), /*allocation=*/60.0);
}

model::SystemConfig make_fig3_system(bool linear_cost) {
  const model::Overhead cost = linear_cost
                                   ? model::Overhead::linear(5.0, 0.005)
                                   : model::Overhead::constant(5.0);
  std::vector<model::LevelOverheads> levels{{cost, cost}};
  model::FailureRates rates({1.0}, 1e5);
  return model::SystemConfig(common::core_days_to_seconds(4000.0),
                             std::make_unique<model::QuadraticSpeedup>(0.46,
                                                                       1e5),
                             std::move(levels), std::move(rates),
                             /*allocation=*/0.0);
}

model::MuModel fig3_mu() { return model::MuModel({0.005}); }

std::vector<SpeedupSample> heat_speedup_samples() {
  // Quadratic shape g(N) = -0.46/(2e5) N^2 + 0.46 N sampled at the paper's
  // measurement scales, with the quoted anchor (77 at 160 cores) and mild
  // flattening consistent with Figure 2(a).
  std::vector<SpeedupSample> samples;
  for (double n : {32.0, 64.0, 128.0, 160.0, 256.0, 384.0, 512.0, 768.0,
                   1024.0}) {
    const double g = -0.46 / 2e5 * n * n + 0.46 * n;
    samples.push_back({n, g});
  }
  return samples;
}

std::vector<SpeedupSample> eddy_speedup_samples() {
  // Communication-bound kernel: speedup peaks near 100 cores then declines
  // (Figure 2(b)).  Shape: g(N) = kappa N / (1 + (N/100)^2) scaled so the
  // initial slope is ~0.5.
  std::vector<SpeedupSample> samples;
  for (double n : {4.0, 8.0, 16.0, 32.0, 48.0, 64.0, 80.0, 100.0, 128.0,
                   160.0, 200.0, 256.0}) {
    const double g = 0.5 * n / (1.0 + std::pow(n / 140.0, 2.0));
    samples.push_back({n, g});
  }
  return samples;
}

cluster::StorageModel fusion_storage() {
  cluster::StorageModel storage;
  // L1 target 0.9 s: latency + 64 MB / bandwidth.
  storage.local_latency = 0.05;
  storage.local_bandwidth = 64e6 / 0.85;
  // L4 target 5.5 + 0.0212 N: FIFO makespan = latency + N * 64 MB / agg.
  storage.pfs_latency = 5.5;
  storage.pfs_write_bandwidth = 64e6 / 0.0212;
  storage.pfs_read_bandwidth = 6e9;
  return storage;
}

cluster::ClusterConfig fusion_cluster(int ranks) {
  cluster::ClusterConfig config;
  config.ranks_per_node = 8;
  config.nodes = (ranks + config.ranks_per_node - 1) / config.ranks_per_node;
  config.rs_group_size = 3;
  config.storage = fusion_storage();
  return config;
}

fti::FtiConfig fusion_fti() {
  fti::FtiConfig config;
  config.parity_shards = 1;
  config.encode_bandwidth = 4e9;
  // L2 target 2.53 s = two local writes (1.8) + one transfer (0.73).
  config.network.latency = 1e-3;
  config.network.bandwidth = 64e6 / 0.729;
  return config;
}

namespace {

vmpi::RankTask checkpoint_once(fti::Fti& fti, int rank, int level) {
  cluster::Payload payload;
  payload.bytes.resize(1024);  // small real content for integrity
  for (std::size_t i = 0; i < payload.bytes.size(); ++i) {
    payload.bytes[i] = static_cast<std::uint8_t>(rank + level + i);
  }
  payload.logical_size = fusion_payload_bytes();
  co_await fti.checkpoint(rank, level, std::move(payload));
}

}  // namespace

std::array<double, 4> measure_fti_costs(int ranks) {
  vmpi::Engine engine;
  cluster::Cluster cl(fusion_cluster(ranks));
  fti::Fti fti(engine, cl, fusion_fti());
  std::array<double, 4> costs{};
  for (int level = 1; level <= 4; ++level) {
    const double t0 = engine.now();
    for (int rank = 0; rank < cl.rank_count(); ++rank) {
      engine.spawn(checkpoint_once(fti, rank, level));
    }
    engine.run();
    costs[static_cast<std::size_t>(level - 1)] = engine.now() - t0;
  }
  return costs;
}

}  // namespace mlcr::exp
