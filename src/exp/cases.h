// Canonical experiment configurations from the paper's evaluation
// (Section IV).  Every bench and integration test builds its systems here so
// the parameters are stated exactly once.
//
// Documented assumptions (the paper is silent on these):
//  * Recovery overheads are constant per level, R_i(N) = eta_i with eta_i
//    equal to the Table II base fit (0.866/2.586/3.886/5.5 s).  They cannot
//    scale like the PFS *write* path: with R_4(1e6) ~ 21,000 s and 4
//    level-4 failures/day the expected wall-clock diverges
//    (lambda_4 R_4 ~ 0.98), contradicting the paper's finite ML(ori-scale)
//    results; FTI restarts read checkpoints without the metadata-heavy
//    write congestion.
//  * The resource allocation period is A = 60 s (paper cites 1-2 minute
//    correlated-failure windows; Figure 3's numbers imply A ~ 0 there, so
//    the Fig. 3 builders use A = 0).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "fti/fti.h"
#include "model/system.h"

namespace mlcr::exp {

/// One of the paper's "r1-r2-r3-r4" failure-rate cases (events/day at the
/// baseline scale N_b = 1e6).
struct FailureCase {
  std::string name;
  std::vector<double> per_day;
};

/// The six cases of Figures 5-7 / Table III, in paper order.
[[nodiscard]] std::vector<FailureCase> paper_failure_cases();

/// The three cases of Table IV.
[[nodiscard]] std::vector<FailureCase> table4_failure_cases();

/// Raw Table II data: checkpoint cost (seconds) per level at 128-1024 cores.
struct Table2Row {
  double cores;
  double cost[4];
};
[[nodiscard]] const std::vector<Table2Row>& table2_data();

/// Least-squares (eps_i, alpha_i) fits of Table II used throughout the
/// paper: (0.866,0) (2.586,0) (3.886,0) (5.5,0.0212).
struct FtiCoefficients {
  double eps[4];
  double alpha[4];
};
[[nodiscard]] FtiCoefficients fti_coefficients();

/// FTI-characterized 4-level overheads: checkpoint per the Table II fits,
/// recovery constant per level (see file comment).
[[nodiscard]] std::vector<model::LevelOverheads> fti_level_overheads();

/// The exascale system of Figures 5-7 / Table III: Te in core-days,
/// quadratic speedup (kappa = 0.46, N_star = n_star), FTI overheads,
/// A = 60 s, failure rates at baseline N_b = n_star.
[[nodiscard]] model::SystemConfig make_fti_system(
    double te_core_days, const FailureCase& failure_case,
    double n_star = 1e6);

/// Table IV's system: constant per-level checkpoint costs (50/100/200/2000 s,
/// "Blue Waters"-style constant PFS), recovery = recovery_factor * cost,
/// Te = 2m core-days by default.
[[nodiscard]] model::SystemConfig make_constant_pfs_system(
    const FailureCase& failure_case, double recovery_factor = 1.0,
    double te_core_days = 2e6, double n_star = 1e6);

/// Figure 3's single-level system: Te = 4000 core-days, quadratic speedup
/// (kappa = 0.46, N_star = 1e5), cost either constant 5 s or 5 + 0.005 N,
/// A = 0.  The matching mu model is mu(N) = 0.005 N.
[[nodiscard]] model::SystemConfig make_fig3_system(bool linear_cost);
[[nodiscard]] model::MuModel fig3_mu();

/// Measured Heat Distribution speedups on Fusion (Figure 2(a) shape):
/// reconstructed from the paper's quoted points (speedup 77 at 160 cores,
/// kappa ~ 0.46, flattening toward 1,024 cores).
struct SpeedupSample {
  double cores;
  double speedup;
};
[[nodiscard]] std::vector<SpeedupSample> heat_speedup_samples();

/// Synthetic eddy_uv-style speedups that peak near 100 cores then decline
/// (Figure 2(b) shape).
[[nodiscard]] std::vector<SpeedupSample> eddy_speedup_samples();

// ---- Fusion-calibrated virtual cluster (Table II / Figure 4) ----------
//
// Storage/network constants chosen so that the virtual cluster's measured
// per-level checkpoint makespans land on the paper's Table II values for a
// 64 MB-per-rank payload and 8 ranks per node:
//   L1 ~ 0.9 s (local write), L2 ~ 2.53 s (local + partner copy),
//   L3 ~ 3.9 s (local + RS group of 3 nodes, 1 parity),
//   L4 ~ 5.5 + 0.0212 * ranks (FIFO-contended PFS aggregate bandwidth).

/// Logical checkpoint size per rank used in the calibration.
[[nodiscard]] constexpr std::uint64_t fusion_payload_bytes() {
  return 64'000'000;
}

/// Calibrated storage constants.
[[nodiscard]] cluster::StorageModel fusion_storage();

/// Cluster of `ranks` (8 per node) with the calibrated storage.
[[nodiscard]] cluster::ClusterConfig fusion_cluster(int ranks);

/// FTI configuration matching the calibration (RS group of 3, 1 parity).
[[nodiscard]] fti::FtiConfig fusion_fti();

/// Runs one collective checkpoint round per level on the calibrated
/// cluster and returns the four makespans in seconds — the measurement
/// behind Table II.
[[nodiscard]] std::array<double, 4> measure_fti_costs(int ranks);

}  // namespace mlcr::exp
