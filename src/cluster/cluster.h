// The virtual cluster: nodes with local storage, a shared PFS, the partner
// ring and Reed-Solomon group topology, and node-failure injection.
#pragma once

#include <vector>

#include "cluster/storage.h"
#include "common/error.h"

namespace mlcr::cluster {

struct ClusterConfig {
  int nodes = 16;
  int ranks_per_node = 8;  ///< Fusion has 8 cores per node
  int rs_group_size = 4;   ///< nodes per Reed-Solomon group
  StorageModel storage;
};

/// A compute node: local storage plus liveness/incarnation state.
class Node {
 public:
  Node(int id, const StorageModel& model) : id_(id), store_(model) {}

  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] bool alive() const noexcept { return alive_; }
  [[nodiscard]] int incarnation() const noexcept { return incarnation_; }
  [[nodiscard]] LocalStore& store() noexcept { return store_; }
  [[nodiscard]] const LocalStore& store() const noexcept { return store_; }

 private:
  friend class Cluster;
  int id_;
  bool alive_ = true;
  int incarnation_ = 0;
  LocalStore store_;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  [[nodiscard]] const ClusterConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] int node_count() const noexcept {
    return static_cast<int>(nodes_.size());
  }
  [[nodiscard]] int rank_count() const noexcept {
    return node_count() * config_.ranks_per_node;
  }
  [[nodiscard]] Node& node(int id);
  [[nodiscard]] const Node& node(int id) const;
  [[nodiscard]] Pfs& pfs() noexcept { return pfs_; }

  /// Node hosting a given rank (block placement).
  [[nodiscard]] int node_of_rank(int rank) const;
  /// First rank hosted on a node.
  [[nodiscard]] int first_rank_of(int node) const;

  /// Partner topology: the node holding copies of this node's checkpoints.
  [[nodiscard]] int partner_of(int node) const;

  /// Reed-Solomon group topology: `rs_group_size` consecutive nodes.
  [[nodiscard]] int rs_group_of(int node) const;
  [[nodiscard]] std::vector<int> rs_group_members(int group) const;

  /// Kills a node: wipes its local storage and bumps its incarnation.
  /// (The replacement node is logically in place immediately; the resource
  /// allocation delay A is charged by the caller, matching the paper.)
  void kill_node(int id);
  /// Marks a killed node usable again (after re-allocation).
  void revive_node(int id);
  [[nodiscard]] int alive_nodes() const;

 private:
  ClusterConfig config_;
  std::vector<Node> nodes_;
  Pfs pfs_;
};

}  // namespace mlcr::cluster
