// Storage substrate of the virtual cluster: per-node local stores and a
// bandwidth-contended parallel file system.
//
// Payloads carry real bytes (for end-to-end integrity checks through
// partner-copy and Reed-Solomon recovery) plus a logical size used by the
// cost model, so exascale-sized checkpoints can be simulated without
// allocating exascale memory.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "vmpi/engine.h"
#include "vmpi/task.h"

namespace mlcr::cluster {

using Bytes = std::vector<std::uint8_t>;

/// A stored object: real content plus the size the cost model charges for.
struct Payload {
  Bytes bytes;
  std::uint64_t logical_size = 0;  ///< 0 means bytes.size()

  [[nodiscard]] std::uint64_t cost_size() const noexcept {
    return logical_size != 0 ? logical_size : bytes.size();
  }
  bool operator==(const Payload& other) const = default;
};

/// Cost parameters, calibrated against the paper's Table II (see
/// exp::fusion_storage()).
struct StorageModel {
  double local_latency = 0.05;      ///< seconds per local operation
  double local_bandwidth = 75e6;    ///< bytes/s per node-local device
  double pfs_latency = 2.0;         ///< per-operation metadata cost, seconds
  double pfs_write_bandwidth = 3e9; ///< aggregate bytes/s shared by writers
  double pfs_read_bandwidth = 6e9;  ///< aggregate bytes/s shared by readers
};

/// Node-local storage device: zero-contention across nodes.
class LocalStore {
 public:
  explicit LocalStore(const StorageModel& model) : model_(&model) {}

  /// Charges the write time, then commits the object.
  [[nodiscard]] vmpi::Task<void> write(vmpi::Engine& engine, std::string key,
                                       Payload payload);
  /// Charges the read time; returns nullopt if the key is absent.
  [[nodiscard]] vmpi::Task<std::optional<Payload>> read(vmpi::Engine& engine,
                                                        std::string key);
  /// Instantaneous metadata check.
  [[nodiscard]] bool contains(const std::string& key) const;
  /// Deletes one object (instant metadata operation).
  void erase(const std::string& key);
  /// Wipes the device (a node crash destroys its local checkpoints).
  void wipe();
  [[nodiscard]] std::size_t object_count() const noexcept {
    return objects_.size();
  }

 private:
  const StorageModel* model_;
  std::map<std::string, Payload> objects_;
};

/// Parallel file system: writes are FIFO-serialized through the aggregate
/// bandwidth, so N concurrent clients writing S bytes each see a makespan
/// of ~ latency + N*S/bandwidth — the linear-in-N level-4 cost the paper
/// measures in Table II.
class Pfs {
 public:
  explicit Pfs(const StorageModel& model) : model_(&model) {}

  [[nodiscard]] vmpi::Task<void> write(vmpi::Engine& engine, std::string key,
                                       Payload payload);
  [[nodiscard]] vmpi::Task<std::optional<Payload>> read(vmpi::Engine& engine,
                                                        std::string key);
  [[nodiscard]] bool contains(const std::string& key) const;
  void erase(const std::string& key);
  [[nodiscard]] std::size_t object_count() const noexcept {
    return objects_.size();
  }

 private:
  const StorageModel* model_;
  double write_busy_until_ = 0.0;
  double read_busy_until_ = 0.0;
  std::map<std::string, Payload> objects_;
};

}  // namespace mlcr::cluster
