#include "cluster/cluster.h"

namespace mlcr::cluster {

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)), pfs_(config_.storage) {
  MLCR_EXPECT(config_.nodes >= 1, "Cluster: need at least one node");
  MLCR_EXPECT(config_.ranks_per_node >= 1, "Cluster: ranks_per_node >= 1");
  MLCR_EXPECT(config_.rs_group_size >= 2,
              "Cluster: RS groups need at least two nodes");
  nodes_.reserve(static_cast<std::size_t>(config_.nodes));
  for (int id = 0; id < config_.nodes; ++id) {
    nodes_.emplace_back(id, config_.storage);
  }
}

Node& Cluster::node(int id) {
  MLCR_EXPECT(id >= 0 && id < node_count(), "Cluster: node out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

const Node& Cluster::node(int id) const {
  MLCR_EXPECT(id >= 0 && id < node_count(), "Cluster: node out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

int Cluster::node_of_rank(int rank) const {
  MLCR_EXPECT(rank >= 0 && rank < rank_count(), "Cluster: rank out of range");
  return rank / config_.ranks_per_node;
}

int Cluster::first_rank_of(int node) const {
  MLCR_EXPECT(node >= 0 && node < node_count(), "Cluster: node out of range");
  return node * config_.ranks_per_node;
}

int Cluster::partner_of(int node) const {
  MLCR_EXPECT(node >= 0 && node < node_count(), "Cluster: node out of range");
  return (node + 1) % node_count();
}

int Cluster::rs_group_of(int node) const {
  MLCR_EXPECT(node >= 0 && node < node_count(), "Cluster: node out of range");
  return node / config_.rs_group_size;
}

std::vector<int> Cluster::rs_group_members(int group) const {
  std::vector<int> members;
  for (int node = group * config_.rs_group_size;
       node < (group + 1) * config_.rs_group_size && node < node_count();
       ++node) {
    members.push_back(node);
  }
  MLCR_EXPECT(!members.empty(), "Cluster: RS group out of range");
  return members;
}

void Cluster::kill_node(int id) {
  Node& n = node(id);
  n.alive_ = false;
  ++n.incarnation_;
  n.store_.wipe();
}

void Cluster::revive_node(int id) { node(id).alive_ = true; }

int Cluster::alive_nodes() const {
  int count = 0;
  for (const auto& n : nodes_) count += n.alive() ? 1 : 0;
  return count;
}

}  // namespace mlcr::cluster
