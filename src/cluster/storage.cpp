#include "cluster/storage.h"

#include <algorithm>

namespace mlcr::cluster {

vmpi::Task<void> LocalStore::write(vmpi::Engine& engine, std::string key,
                                   Payload payload) {
  const double duration =
      model_->local_latency +
      static_cast<double>(payload.cost_size()) / model_->local_bandwidth;
  co_await engine.sleep(duration);
  objects_[std::move(key)] = std::move(payload);
}

vmpi::Task<std::optional<Payload>> LocalStore::read(vmpi::Engine& engine,
                                                    std::string key) {
  const auto it = objects_.find(key);
  if (it == objects_.end()) {
    co_await engine.sleep(model_->local_latency);
    co_return std::nullopt;
  }
  const double duration =
      model_->local_latency +
      static_cast<double>(it->second.cost_size()) / model_->local_bandwidth;
  co_await engine.sleep(duration);
  // Re-find: the map may have changed while suspended (e.g. node wiped).
  const auto again = objects_.find(key);
  co_return again == objects_.end() ? std::nullopt
                                    : std::optional<Payload>(again->second);
}

bool LocalStore::contains(const std::string& key) const {
  return objects_.count(key) > 0;
}

void LocalStore::erase(const std::string& key) { objects_.erase(key); }

void LocalStore::wipe() { objects_.clear(); }

vmpi::Task<void> Pfs::write(vmpi::Engine& engine, std::string key,
                            Payload payload) {
  const double transfer =
      static_cast<double>(payload.cost_size()) / model_->pfs_write_bandwidth;
  const double start = std::max(engine.now(), write_busy_until_);
  write_busy_until_ = start + transfer;
  const double done = write_busy_until_ + model_->pfs_latency;
  co_await engine.sleep(done - engine.now());
  objects_[std::move(key)] = std::move(payload);
}

vmpi::Task<std::optional<Payload>> Pfs::read(vmpi::Engine& engine,
                                             std::string key) {
  const auto it = objects_.find(key);
  if (it == objects_.end()) {
    co_await engine.sleep(model_->pfs_latency);
    co_return std::nullopt;
  }
  const double transfer =
      static_cast<double>(it->second.cost_size()) / model_->pfs_read_bandwidth;
  const double start = std::max(engine.now(), read_busy_until_);
  read_busy_until_ = start + transfer;
  const double done = read_busy_until_ + model_->pfs_latency;
  co_await engine.sleep(done - engine.now());
  const auto again = objects_.find(key);
  co_return again == objects_.end() ? std::nullopt
                                    : std::optional<Payload>(again->second);
}

bool Pfs::contains(const std::string& key) const {
  return objects_.count(key) > 0;
}

void Pfs::erase(const std::string& key) { objects_.erase(key); }

}  // namespace mlcr::cluster
