// Online failure-rate estimation for the re-planning control plane
// (DESIGN.md §13).  The paper freezes the per-level rates b_i a priori;
// these estimators let a long-lived daemon learn them from observed failure
// events instead:
//
//   RateMle       streaming maximum-likelihood Poisson rate: the process is
//                 Poisson with unknown rate lambda, so after K events over
//                 exposure T seconds the MLE is simply K / T.
//   GammaPoisson  conjugate Bayesian posterior: a Gamma(alpha, beta) prior
//                 on lambda updated by (K, T) stays Gamma(alpha+K, beta+T).
//                 Seeding the prior at the *planned* rate makes the
//                 posterior mean shrink toward the plan while evidence is
//                 thin and converge to K/T as exposure grows — exactly the
//                 regularization a drift test wants.
//   Cusum         change-point detection over inter-arrival times: a
//                 two-sided CUSUM of the exponential log-likelihood ratio
//                 between the reference rate lambda_0 and a shifted rate
//                 rho * lambda_0 (up) / lambda_0 / rho (down).  Alarms much
//                 earlier than the cumulative ratio test after an abrupt
//                 rate change, because old evidence never dilutes the
//                 statistic.
//
// All three are tiny deterministic value types: same observations in, same
// state out, no clocks, no RNG — the control plane's bit-exact re-plan
// contract depends on this.
#pragma once

#include <cstdint>

namespace mlcr::stat {

/// Streaming Poisson-rate MLE: rate() = total events / total exposure.
class RateMle {
 public:
  /// Folds one observation window: `events` arrivals over
  /// `exposure_seconds` of wall-clock observation (must be >= 0).
  void observe(std::uint64_t events, double exposure_seconds) noexcept;

  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }
  [[nodiscard]] double exposure_seconds() const noexcept { return exposure_; }
  /// Events per second; 0 while no exposure has been observed.
  [[nodiscard]] double rate() const noexcept;

 private:
  std::uint64_t events_ = 0;
  double exposure_ = 0.0;
};

/// Conjugate Gamma–Poisson posterior over an arrival rate.
class GammaPoisson {
 public:
  /// Gamma(shape, rate) prior — `rate` is the inverse-scale beta, i.e.
  /// pseudo-exposure seconds; `shape` is pseudo-events.  Both must be > 0.
  GammaPoisson(double shape, double rate);

  /// Prior centered on `mean_rate` (events/second) with `shape`
  /// pseudo-events of strength: beta = shape / mean_rate.
  [[nodiscard]] static GammaPoisson from_mean(double mean_rate, double shape);

  /// Conjugate update: shape += events, rate += exposure.
  void observe(std::uint64_t events, double exposure_seconds);

  [[nodiscard]] double shape() const noexcept { return shape_; }
  [[nodiscard]] double rate() const noexcept { return rate_; }
  /// Posterior mean alpha / beta (events per second).
  [[nodiscard]] double mean() const noexcept { return shape_ / rate_; }
  /// Posterior variance alpha / beta^2.
  [[nodiscard]] double variance() const noexcept {
    return shape_ / (rate_ * rate_);
  }

 private:
  double shape_;
  double rate_;
};

/// Two-sided CUSUM over exponential inter-arrival gaps.  The up detector
/// tests H1: rate = shift_factor * reference against H0: rate = reference;
/// the down detector tests rate = reference / shift_factor.  Each gap x
/// adds the exponential log-likelihood ratio to its side's statistic,
/// clamped at zero (Page's recursion); an alarm latches once either side
/// reaches `threshold` and stays raised until reset().
class Cusum {
 public:
  /// `reference_rate` (events/second) and `shift_factor` > 1 define the
  /// hypotheses; `threshold` trades detection delay against false alarms
  /// (expected delay after a true shift is ~threshold / E[llr per gap]).
  Cusum(double reference_rate, double shift_factor, double threshold);

  /// Observes one inter-arrival gap (seconds, >= 0); returns alarmed().
  bool observe_gap(double gap_seconds);

  [[nodiscard]] bool alarmed() const noexcept { return alarmed_; }
  [[nodiscard]] double up_statistic() const noexcept { return up_; }
  [[nodiscard]] double down_statistic() const noexcept { return down_; }
  [[nodiscard]] double reference_rate() const noexcept { return reference_; }

  /// Re-arms the detector against a new reference rate (post re-plan).
  void reset(double reference_rate);

 private:
  double reference_;
  double shift_;
  double threshold_;
  double log_shift_;  ///< cached ln(shift_factor)
  double up_ = 0.0;
  double down_ = 0.0;
  bool alarmed_ = false;
};

}  // namespace mlcr::stat
