#include "stat/distributions.h"

#include <cmath>

#include "common/error.h"

namespace mlcr::stat {

Exponential::Exponential(double rate) : rate_(rate) {
  MLCR_EXPECT(rate > 0.0, "Exponential: rate must be positive");
}

double Exponential::sample(common::Rng& rng) const {
  return rng.exponential(rate_);
}

double Exponential::mean() const { return 1.0 / rate_; }

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  MLCR_EXPECT(shape > 0.0, "Weibull: shape must be positive");
  MLCR_EXPECT(scale > 0.0, "Weibull: scale must be positive");
}

double Weibull::sample(common::Rng& rng) const {
  // Inverse transform: scale * (-ln(1-u))^(1/shape).
  const double u = rng.uniform();
  return scale_ * std::pow(-std::log(1.0 - u), 1.0 / shape_);
}

double Weibull::mean() const {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

std::unique_ptr<IntervalDistribution> make_exponential(double rate) {
  return std::make_unique<Exponential>(rate);
}

std::unique_ptr<IntervalDistribution> make_weibull(double shape, double scale) {
  return std::make_unique<Weibull>(shape, scale);
}

}  // namespace mlcr::stat
