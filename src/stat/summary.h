// Running summary statistics (Welford) and normal-approximation confidence
// intervals.  Used by the Monte-Carlo runner: the paper reports "mean values
// based on 100 runs for each case".
#pragma once

#include <cstddef>
#include <cstdint>

namespace mlcr::stat {

/// Numerically stable running mean/variance/min/max accumulator.
class Summary {
 public:
  void add(double value) noexcept;
  void merge(const Summary& other) noexcept;

  /// Folds `values[0, n)` in as one batch: a two-pass mean / squared-
  /// deviation reduction over the contiguous array (straight-line loops the
  /// compiler can vectorize, unlike the per-value Welford recurrence whose
  /// mean update is a serial dependency chain), then a single Welford merge
  /// of the batch moments.  Deterministic for a given (values, n) but NOT
  /// the same rounding as n sequential add() calls — callers that need
  /// reproducibility must batch identically on every path, which is exactly
  /// what the Monte-Carlo fixed-chunk partition guarantees.
  void add_batch(const double* values, std::size_t n) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double standard_error() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Half-width of the ~95% normal-approximation confidence interval.
  [[nodiscard]] double ci95_half_width() const noexcept;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace mlcr::stat
