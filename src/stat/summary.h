// Running summary statistics (Welford) and normal-approximation confidence
// intervals.  Used by the Monte-Carlo runner: the paper reports "mean values
// based on 100 runs for each case".
#pragma once

#include <cstdint>

namespace mlcr::stat {

/// Numerically stable running mean/variance/min/max accumulator.
class Summary {
 public:
  void add(double value) noexcept;
  void merge(const Summary& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double standard_error() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Half-width of the ~95% normal-approximation confidence interval.
  [[nodiscard]] double ci95_half_width() const noexcept;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace mlcr::stat
