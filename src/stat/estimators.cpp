#include "stat/estimators.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mlcr::stat {

void RateMle::observe(std::uint64_t events, double exposure_seconds) noexcept {
  events_ += events;
  if (exposure_seconds > 0.0) exposure_ += exposure_seconds;
}

double RateMle::rate() const noexcept {
  if (exposure_ <= 0.0) return 0.0;
  return static_cast<double>(events_) / exposure_;
}

GammaPoisson::GammaPoisson(double shape, double rate)
    : shape_(shape), rate_(rate) {
  MLCR_EXPECT(std::isfinite(shape) && shape > 0.0,
              "GammaPoisson: prior shape must be positive");
  MLCR_EXPECT(std::isfinite(rate) && rate > 0.0,
              "GammaPoisson: prior rate must be positive");
}

GammaPoisson GammaPoisson::from_mean(double mean_rate, double shape) {
  MLCR_EXPECT(std::isfinite(mean_rate) && mean_rate > 0.0,
              "GammaPoisson: prior mean rate must be positive");
  return GammaPoisson(shape, shape / mean_rate);
}

void GammaPoisson::observe(std::uint64_t events, double exposure_seconds) {
  MLCR_EXPECT(std::isfinite(exposure_seconds) && exposure_seconds >= 0.0,
              "GammaPoisson: exposure must be non-negative");
  shape_ += static_cast<double>(events);
  rate_ += exposure_seconds;
}

Cusum::Cusum(double reference_rate, double shift_factor, double threshold)
    : reference_(reference_rate),
      shift_(shift_factor),
      threshold_(threshold),
      log_shift_(std::log(shift_factor)) {
  MLCR_EXPECT(std::isfinite(reference_rate) && reference_rate > 0.0,
              "Cusum: reference rate must be positive");
  MLCR_EXPECT(std::isfinite(shift_factor) && shift_factor > 1.0,
              "Cusum: shift factor must exceed 1");
  MLCR_EXPECT(std::isfinite(threshold) && threshold > 0.0,
              "Cusum: threshold must be positive");
}

bool Cusum::observe_gap(double gap_seconds) {
  MLCR_EXPECT(std::isfinite(gap_seconds) && gap_seconds >= 0.0,
              "Cusum: gap must be non-negative");
  // Exponential log-likelihood ratios for one gap x under rate r vs r0:
  //   llr = ln(r / r0) - (r - r0) x.
  // Up:   r = shift * r0 -> ln(shift) - (shift - 1) r0 x
  // Down: r = r0 / shift -> -ln(shift) + (1 - 1/shift) r0 x
  const double scaled = reference_ * gap_seconds;
  up_ = std::max(0.0, up_ + log_shift_ - (shift_ - 1.0) * scaled);
  down_ = std::max(0.0, down_ - log_shift_ + (1.0 - 1.0 / shift_) * scaled);
  if (up_ >= threshold_ || down_ >= threshold_) alarmed_ = true;
  return alarmed_;
}

void Cusum::reset(double reference_rate) {
  MLCR_EXPECT(std::isfinite(reference_rate) && reference_rate > 0.0,
              "Cusum: reference rate must be positive");
  reference_ = reference_rate;
  up_ = 0.0;
  down_ = 0.0;
  alarmed_ = false;
}

}  // namespace mlcr::stat
