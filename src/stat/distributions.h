// Failure-interval distributions.  The paper's evaluation draws failure
// inter-arrival times from an exponential distribution ("the behavior of the
// system for most of its lifetime" [Snyder & Miller]); Weibull is provided
// for sensitivity studies (infant-mortality / wear-out phases).
#pragma once

#include <memory>

#include "common/rng.h"

namespace mlcr::stat {

/// Interface for sampling positive inter-arrival times.
class IntervalDistribution {
 public:
  virtual ~IntervalDistribution() = default;

  /// Draws the next inter-arrival time (seconds).
  [[nodiscard]] virtual double sample(common::Rng& rng) const = 0;

  /// Mean inter-arrival time (seconds).
  [[nodiscard]] virtual double mean() const = 0;
};

/// Exponential(rate): memoryless, mean 1/rate.
class Exponential final : public IntervalDistribution {
 public:
  explicit Exponential(double rate);
  [[nodiscard]] double sample(common::Rng& rng) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  double rate_;
};

/// Weibull(shape, scale).  shape < 1: infant mortality; shape > 1: wear-out.
class Weibull final : public IntervalDistribution {
 public:
  Weibull(double shape, double scale);
  [[nodiscard]] double sample(common::Rng& rng) const override;
  [[nodiscard]] double mean() const override;

 private:
  double shape_;
  double scale_;
};

/// Factory helpers.
[[nodiscard]] std::unique_ptr<IntervalDistribution> make_exponential(
    double rate);
[[nodiscard]] std::unique_ptr<IntervalDistribution> make_weibull(double shape,
                                                                 double scale);

}  // namespace mlcr::stat
