#include "stat/summary.h"

#include <cmath>

namespace mlcr::stat {

void Summary::add(double value) noexcept {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void Summary::merge(const Summary& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double Summary::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

double Summary::standard_error() const noexcept {
  return count_ > 0 ? stddev() / std::sqrt(static_cast<double>(count_)) : 0.0;
}

double Summary::ci95_half_width() const noexcept {
  return 1.96 * standard_error();
}

}  // namespace mlcr::stat
