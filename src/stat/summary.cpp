#include "stat/summary.h"

#include <cmath>

namespace mlcr::stat {

void Summary::add(double value) noexcept {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void Summary::add_batch(const double* values, std::size_t n) noexcept {
  if (n == 0) return;
  // Pass 1: sum + extrema.  Pass 2: squared deviations about the batch
  // mean.  Both are plain reductions over a contiguous array.
  double sum = 0.0;
  double lo = values[0];
  double hi = values[0];
  for (std::size_t i = 0; i < n; ++i) {
    sum += values[i];
    if (values[i] < lo) lo = values[i];
    if (values[i] > hi) hi = values[i];
  }
  const double batch_mean = sum / static_cast<double>(n);
  double batch_m2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = values[i] - batch_mean;
    batch_m2 += d * d;
  }
  Summary batch;
  batch.count_ = n;
  batch.mean_ = batch_mean;
  batch.m2_ = batch_m2;
  batch.min_ = lo;
  batch.max_ = hi;
  merge(batch);
}

void Summary::merge(const Summary& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double Summary::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

double Summary::standard_error() const noexcept {
  return count_ > 0 ? stddev() / std::sqrt(static_cast<double>(count_)) : 0.0;
}

double Summary::ci95_half_width() const noexcept {
  return 1.96 * standard_error();
}

}  // namespace mlcr::stat
