// Front-ends for the four solutions compared in the paper's evaluation
// (Section IV-A):
//   ML(opt-scale) — this paper: multilevel intervals + optimized scale
//   SL(opt-scale) — Jin et al.-style: single level, optimized x and N
//   ML(ori-scale) — prior work [22]: multilevel intervals, N = N_star
//   SL(ori-scale) — classic Young: single level, N = N_star
// Each planner returns the plan in the full L-level space so the simulator
// can execute any of them on the same system: single-level planners emit a
// plan whose lower levels are disabled (x_i = 1 means "no intermediate
// checkpoints at that level" is approximated by taking none; see
// `level_enabled`).
#pragma once

#include <string>
#include <vector>

#include "model/system.h"
#include "opt/algorithm1.h"

namespace mlcr::opt {

enum class Solution {
  kMultilevelOptScale,
  kSingleLevelOptScale,
  kMultilevelOriScale,
  kSingleLevelOriScale,
};

[[nodiscard]] std::string to_string(Solution solution);
[[nodiscard]] std::vector<Solution> all_solutions();

struct PlannerResult {
  Solution solution = Solution::kMultilevelOptScale;
  Algorithm1Result optimization;
  /// Which levels of the original system the plan actually checkpoints at.
  /// Single-level planners only use the top (PFS) level.
  std::vector<bool> level_enabled;
  /// Interval counts in the full L-level space (disabled levels get x = 1,
  /// i.e. no checkpoints taken there besides the implicit end of run).
  model::Plan full_plan;
};

/// Plans with the given solution on the L-level system `cfg`.
[[nodiscard]] PlannerResult plan(Solution solution,
                                 const model::SystemConfig& cfg,
                                 const Algorithm1Options& base_options = {});

}  // namespace mlcr::opt
