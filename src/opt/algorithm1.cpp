#include "opt/algorithm1.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/log.h"
#include "common/table.h"
#include "num/finite.h"
#include "opt/multilevel.h"
#include "opt/single_level.h"

namespace mlcr::opt {

std::string to_string(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kDiverged: return "diverged";
    case Status::kMaxIterations: return "max-iterations";
    case Status::kInvalidConfig: return "invalid-config";
    case Status::kInternalError: return "internal-error";
  }
  return "?";
}

namespace {

/// Converts a mid-solve NumericError into a kDiverged result with the plan
/// and wall-clock zeroed: a run that produced NaN/Inf anywhere must never
/// hand a numeric plan to the caller.
void mark_diverged(Algorithm1Result& result, const std::exception& error) {
  common::log_warn("algorithm1: non-finite values mid-solve; aborting");
  result.status = Status::kDiverged;
  result.converged = false;
  result.plan = model::Plan{};
  result.wallclock = 0.0;
  result.portions = model::TimePortions{};
  result.message =
      std::string("solver produced non-finite values: ") + error.what();
}

/// Shared outer loop.  `solve_inner` maps a MuModel to (plan, wallclock,
/// inner iterations); `evaluate` recomputes E(Tw) for a mu/plan pair.
Algorithm1Result outer_loop(
    const model::SystemConfig& cfg, const Algorithm1Options& options,
    const std::function<MultilevelSolution(const model::MuModel&)>&
        solve_inner,
    const std::function<double(const model::MuModel&, const model::Plan&)>&
        evaluate) {
  Algorithm1Result result;

  // Line 1-3 of Algorithm 1: initialize the expected failure counts from the
  // failure-free parallel run length at the starting scale.
  const double start_scale = options.optimize_scale
                                 ? cfg.scale_upper_bound()
                                 : options.fixed_scale;
  MLCR_EXPECT(std::isfinite(start_scale) && start_scale > 0.0,
              "algorithm1: needs a finite positive starting scale");
  // Everything from here on is floating-point iteration: any NumericError
  // (a NaN/Inf caught by the num:: guards or MLCR_NUMERIC_EXPECT) means the
  // fixed point is running away numerically, and surfaces as kDiverged —
  // never as an exception, never as a numeric plan.
  try {
  double wallclock_estimate = num::require_finite(
      cfg.productive_time(start_scale),
      "algorithm1: initial wall-clock estimate");

  std::vector<double> mu_at_solution(cfg.levels(), 0.0);
  std::vector<double> wallclock_history;
  for (int outer = 0; outer < options.max_outer_iterations; ++outer) {
    result.outer_iterations = outer + 1;
    const auto mu = model::MuModel::from_rates(cfg.rates(), wallclock_estimate);

    OuterIterationTrace step;
    step.iteration = outer + 1;
    step.wallclock_estimate = wallclock_estimate;

    // Line 5: inner convex problem at frozen mu.
    const MultilevelSolution inner = solve_inner(mu);
    result.inner_iterations += inner.iterations;
    result.plan = inner.plan;
    step.inner_iterations = inner.iterations;

    // Line 6: expected wall-clock under the new plan.
    const double wallclock = evaluate(mu, inner.plan);
    MLCR_NUMERIC_EXPECT(std::isfinite(wallclock) && wallclock > 0.0,
                        "algorithm1: inner solution produced invalid "
                        "wall-clock");

    // Lines 7-10: recompute mu from the achieved wall-clock; the convergence
    // test compares expected failure counts at the solution scale.
    double mu_change = 0.0;
    for (std::size_t i = 0; i < cfg.levels(); ++i) {
      const double updated =
          cfg.rates().expected_failures(i, inner.plan.scale, wallclock);
      mu_change = std::max(mu_change, std::fabs(updated - mu_at_solution[i]));
      mu_at_solution[i] = updated;
    }
    result.final_mu_change = mu_change;
    result.wallclock = wallclock;
    step.wallclock = wallclock;
    step.mu_change = mu_change;
    result.trace.push_back(step);

    // Divergence guard (paper: only under extremely high failure rates).
    if (!std::isfinite(mu_change) || mu_change > 1e12) {
      common::log_warn("algorithm1: diverging failure estimates; aborting");
      result.status = Status::kDiverged;
      result.message = common::strf(
          "failure estimates diverged after %d outer iterations "
          "(mu change %.3g); the failure rates are likely unrealistically "
          "high for this system",
          result.outer_iterations, mu_change);
      return result;
    }
    if (mu_change <= options.delta) {
      result.converged = true;
      result.status = Status::kOk;
      break;
    }
    // Aitken delta-squared: with estimates (w0 -> w1 -> w2) of a geometric
    // contraction, w* ~ w2 - (w2 - w1)^2 / ((w2 - w1) - (w1 - w0)).
    if (options.aitken) {
      wallclock_history.push_back(wallclock);
      if (wallclock_history.size() >= 3) {
        const double w0 = wallclock_history[wallclock_history.size() - 3];
        const double w1 = wallclock_history[wallclock_history.size() - 2];
        const double w2 = wallclock_history.back();
        const double denominator = (w2 - w1) - (w1 - w0);
        if (std::fabs(denominator) > 1e-12 * std::fabs(w2)) {
          const double extrapolated = w2 - (w2 - w1) * (w2 - w1) / denominator;
          if (std::isfinite(extrapolated) && extrapolated > 0.0) {
            wallclock_estimate = extrapolated;
            wallclock_history.clear();  // restart the window after a jump
            result.trace.back().aitken_jump = true;
            continue;
          }
        }
      }
    }
    wallclock_estimate = wallclock;
  }
  // Belt and braces at the boundary: a kOk result must be numerically
  // usable in every field before anyone simulates or serves it.
  if (result.status == Status::kOk) {
    num::require_finite(result.plan.scale, "algorithm1: converged scale");
    if (!num::all_finite(result.plan.intervals)) {
      common::fail_numeric("algorithm1: converged intervals contain NaN/Inf");
    }
    num::require_finite(result.wallclock, "algorithm1: converged wall-clock");
  }
  if (result.status == Status::kMaxIterations) {
    result.message = common::strf(
        "did not reach delta=%.3g within %d outer iterations "
        "(last mu change %.3g)",
        options.delta, options.max_outer_iterations, result.final_mu_change);
  }
  } catch (const common::NumericError& error) {
    mark_diverged(result, error);
  }
  return result;
}

}  // namespace

Algorithm1Result optimize_multilevel(const model::SystemConfig& cfg,
                                     const Algorithm1Options& options) {
  MultilevelOptions inner_options;
  inner_options.tolerance = options.inner_tolerance;
  inner_options.max_iterations = options.inner_max_iterations;
  inner_options.optimize_scale = options.optimize_scale;
  inner_options.fixed_scale = options.fixed_scale;

  auto solve_inner = [&](const model::MuModel& mu) {
    return solve_multilevel(cfg, mu, inner_options);
  };
  auto evaluate = [&](const model::MuModel& mu, const model::Plan& plan) {
    return model::expected_wallclock(cfg, mu, plan);
  };
  Algorithm1Result result = outer_loop(cfg, options, solve_inner, evaluate);
  // Portions are an analytic breakdown *at the converged fixed point*; on a
  // diverged or exhausted run the plan is a stale iterate and the breakdown
  // would look plausible while meaning nothing.  Leave it zeroed.
  if (result.status == Status::kOk) {
    try {
      const auto mu =
          model::MuModel::from_rates(cfg.rates(), result.wallclock);
      result.portions = model::expected_portions(cfg, mu, result.plan);
    } catch (const common::NumericError& error) {
      mark_diverged(result, error);
    }
  }
  return result;
}

Algorithm1Result optimize_single_level(const model::SystemConfig& cfg,
                                       const Algorithm1Options& options) {
  MLCR_EXPECT(cfg.levels() == 1, "optimize_single_level: L must be 1");
  SingleLevelOptions inner_options;
  inner_options.tolerance = options.inner_tolerance;
  inner_options.max_iterations = options.inner_max_iterations;

  auto solve_inner = [&](const model::MuModel& mu) {
    const SingleLevelSolution s =
        options.optimize_scale
            ? solve_single_level(cfg, mu, inner_options)
            : solve_single_level_fixed_scale(cfg, mu, options.fixed_scale);
    MultilevelSolution wrapped;
    wrapped.converged = s.converged;
    wrapped.plan = model::Plan{{s.x}, s.n};
    wrapped.wallclock = s.wallclock;
    wrapped.iterations = s.iterations;
    return wrapped;
  };
  auto evaluate = [&](const model::MuModel& mu, const model::Plan& plan) {
    return model::expected_wallclock_single(cfg, mu, plan.intervals[0],
                                            plan.scale);
  };
  Algorithm1Result result = outer_loop(cfg, options, solve_inner, evaluate);

  // Portions under the Formula (13) target: no half-checkpoint redo term.
  // Same gate as the multilevel variant: only a converged run has a
  // meaningful breakdown.
  if (result.status == Status::kOk) {
    try {
      const auto mu =
          model::MuModel::from_rates(cfg.rates(), result.wallclock);
      const double n = result.plan.scale;
      const double x = result.plan.intervals[0];
      const double productive = cfg.productive_time(n);
      result.portions.productive = productive;
      result.portions.checkpoint = cfg.ckpt_cost(0, n) * (x - 1.0);
      result.portions.restart =
          mu.mu(0, n) * (cfg.allocation() + cfg.recovery_cost(0, n));
      result.portions.rollback = mu.mu(0, n) * productive / (2.0 * x);
    } catch (const common::NumericError& error) {
      mark_diverged(result, error);
    }
  }
  return result;
}

}  // namespace mlcr::opt
