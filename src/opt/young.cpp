#include "opt/young.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "num/finite.h"

namespace mlcr::opt {

double young_interval(double checkpoint_seconds, double mtbf_seconds) {
  MLCR_EXPECT(checkpoint_seconds > 0.0, "young: C must be positive");
  MLCR_EXPECT(mtbf_seconds > 0.0, "young: MTBF must be positive");
  return num::checked_sqrt(2.0 * checkpoint_seconds * mtbf_seconds);
}

double daly_interval(double checkpoint_seconds, double mtbf_seconds) {
  MLCR_EXPECT(checkpoint_seconds > 0.0, "daly: C must be positive");
  MLCR_EXPECT(mtbf_seconds > 0.0, "daly: MTBF must be positive");
  const double c = checkpoint_seconds;
  const double m = mtbf_seconds;
  if (c >= 2.0 * m) return m;
  const double ratio = c / (2.0 * m);
  return num::checked_sqrt(2.0 * c * m) *
             (1.0 + num::checked_sqrt(ratio) / 3.0 + ratio / 9.0) -
         c;
}

std::vector<double> young_interval_counts(const model::SystemConfig& cfg,
                                          const model::MuModel& mu, double n) {
  MLCR_EXPECT(mu.levels() == cfg.levels(), "young: level mismatch");
  const double productive = cfg.productive_time(n);
  std::vector<double> x(cfg.levels());
  for (std::size_t i = 0; i < cfg.levels(); ++i) {
    const double c = cfg.ckpt_cost(i, n);
    MLCR_EXPECT(c > 0.0, "young: non-positive checkpoint cost");
    x[i] = std::max(1.0, num::checked_sqrt(mu.mu(i, n) * productive / (2.0 * c)));
  }
  return x;
}

double interval_length(const model::SystemConfig& cfg, double x, double n) {
  MLCR_EXPECT(x >= 1.0, "interval_length: x must be >= 1");
  return cfg.productive_time(n) / x;
}

}  // namespace mlcr::opt
