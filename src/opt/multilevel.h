// Inner solver for the multilevel model (paper Section III-D).
//
// Given a frozen failure-count model mu_i(N), minimizes Formula (21) over
// {x_1..x_L, N} by fixed-point iteration:
//   * every x_i from the stationarity condition (23) rearranged to
//       x_i = sqrt( mu_i (Te/g + sum_{j<i} C_j x_j)
//                   / (2 C_i (1 + sum_{j>i} mu_j/(2 x_j))) )
//     swept Gauss-Seidel style (level 1 upward, using fresh values);
//   * N from bisection on the stationarity condition (24) over
//     [n_lower, N_star] (unique root because d2E/dN2 > 0 on that range;
//     when no root is bracketed the optimum sits on the boundary).
// Initial x values come from the generalized Young formula (25).
#pragma once

#include "model/failure.h"
#include "model/system.h"
#include "model/wallclock.h"

namespace mlcr::opt {

struct MultilevelSolution {
  bool converged = false;
  model::Plan plan;        ///< optimal interval counts and scale
  double wallclock = 0.0;  ///< Formula (21) value at the plan
  int iterations = 0;      ///< fixed-point sweeps used
};

struct MultilevelOptions {
  double tolerance = 1e-6;  ///< max-norm change (x and N) to stop
  int max_iterations = 500;
  double n_lower = 1.0;
  bool optimize_scale = true;  ///< false: keep N at `fixed_scale`
  double fixed_scale = 0.0;    ///< used when optimize_scale is false
};

/// Solves the inner (frozen-mu) problem.  cfg and mu must agree on L.
[[nodiscard]] MultilevelSolution solve_multilevel(
    const model::SystemConfig& cfg, const model::MuModel& mu,
    const MultilevelOptions& options = {});

}  // namespace mlcr::opt
