#include "opt/multilevel.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "num/finite.h"
#include "num/roots.h"
#include "opt/young.h"

namespace mlcr::opt {

namespace {

/// One Gauss-Seidel sweep of the x_i update from Formula (23).
void sweep_intervals(const model::SystemConfig& cfg, const model::MuModel& mu,
                     model::Plan& plan) {
  const double n = plan.scale;
  const double productive = cfg.productive_time(n);
  const std::size_t levels = cfg.levels();
  for (std::size_t i = 0; i < levels; ++i) {
    const double ci = cfg.ckpt_cost(i, n);
    double lower = productive;
    for (std::size_t j = 0; j < i; ++j) {
      lower += cfg.ckpt_cost(j, n) * plan.intervals[j];
    }
    double upper = 0.0;
    for (std::size_t j = i + 1; j < levels; ++j) {
      upper += mu.mu(j, n) / (2.0 * plan.intervals[j]);
    }
    const double numerator = mu.mu(i, n) * lower;
    const double denominator = 2.0 * ci * (1.0 + upper);
    plan.intervals[i] =
        std::max(1.0, num::checked_sqrt(numerator / denominator));
  }
}

/// Solves wallclock_dn = 0 for N at the current intervals, by bisection.
double optimal_scale(const model::SystemConfig& cfg, const model::MuModel& mu,
                     const model::Plan& plan, double n_lower, double n_upper) {
  auto dn = [&](double n) {
    model::Plan candidate = plan;
    candidate.scale = n;
    return model::wallclock_dn(cfg, mu, candidate);
  };
  const double at_hi = dn(n_upper);
  const double at_lo = dn(n_lower);
  if (at_hi <= 0.0) return n_upper;  // wall-clock still decreasing at N_star
  if (at_lo >= 0.0) return n_lower;  // adding cores never pays off
  num::RootOptions opts;
  opts.x_tolerance = 0.5;  // integer N; paper stops when the bracket < 0.5
  const auto root = num::bisect(dn, n_lower, n_upper, opts);
  return root.converged ? root.root : n_upper;
}

}  // namespace

MultilevelSolution solve_multilevel(const model::SystemConfig& cfg,
                                    const model::MuModel& mu,
                                    const MultilevelOptions& options) {
  MLCR_EXPECT(mu.levels() == cfg.levels(), "solve_multilevel: level mismatch");
  const double n_upper = cfg.scale_upper_bound();
  MLCR_EXPECT(options.optimize_scale ? std::isfinite(n_upper)
                                     : options.fixed_scale > 0.0,
              "solve_multilevel: needs a finite scale bound, or a fixed scale");

  MultilevelSolution solution;
  model::Plan plan;
  plan.scale = options.optimize_scale ? n_upper : options.fixed_scale;
  plan.intervals = young_interval_counts(cfg, mu, plan.scale);

  for (int it = 0; it < options.max_iterations; ++it) {
    solution.iterations = it + 1;
    const model::Plan previous = plan;
    sweep_intervals(cfg, mu, plan);
    if (options.optimize_scale) {
      plan.scale = optimal_scale(cfg, mu, plan, options.n_lower, n_upper);
    }
    double change = std::fabs(plan.scale - previous.scale);
    for (std::size_t i = 0; i < plan.intervals.size(); ++i) {
      change = std::max(change,
                        std::fabs(plan.intervals[i] - previous.intervals[i]));
    }
    if (change <= options.tolerance) {
      solution.converged = true;
      break;
    }
  }
  solution.plan = std::move(plan);
  solution.wallclock = model::expected_wallclock(cfg, mu, solution.plan);
  return solution;
}

}  // namespace mlcr::opt
