#include "opt/level_selection.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace mlcr::opt {

model::SystemConfig reduce_to_levels(const model::SystemConfig& cfg,
                                     const std::vector<bool>& enabled) {
  MLCR_EXPECT(enabled.size() == cfg.levels(),
              "reduce_to_levels: mask size mismatch");
  MLCR_EXPECT(enabled.back(), "reduce_to_levels: top level must stay enabled");

  std::vector<model::LevelOverheads> levels;
  std::vector<double> merged_rates;
  double pending_rate = 0.0;  // rates of disabled types waiting to merge up
  for (std::size_t i = 0; i < cfg.levels(); ++i) {
    pending_rate += cfg.rates().per_day_at_baseline(i);
    if (!enabled[i]) continue;
    levels.push_back(cfg.level(i));
    merged_rates.push_back(pending_rate);
    pending_rate = 0.0;
  }
  MLCR_EXPECT(pending_rate == 0.0, "reduce_to_levels: unreachable");

  model::FailureRates rates(std::move(merged_rates),
                            cfg.rates().baseline_scale(),
                            cfg.rates().scale_exponent());
  return model::SystemConfig(cfg.te(), cfg.speedup().clone(),
                             std::move(levels), std::move(rates),
                             cfg.allocation(), cfg.scale_upper_bound());
}

LevelSelectionResult optimize_with_level_selection(
    const model::SystemConfig& cfg, const Algorithm1Options& options) {
  const std::size_t levels = cfg.levels();
  MLCR_EXPECT(levels >= 1 && levels <= 16,
              "optimize_with_level_selection: 1..16 levels supported");

  LevelSelectionResult best;
  double best_wallclock = std::numeric_limits<double>::infinity();
  const unsigned subsets = 1u << (levels - 1);
  best.subset_wallclocks.assign(subsets,
                                std::numeric_limits<double>::infinity());

  for (unsigned mask = 0; mask < subsets; ++mask) {
    std::vector<bool> enabled(levels, false);
    enabled[levels - 1] = true;
    for (std::size_t i = 0; i + 1 < levels; ++i) {
      enabled[i] = (mask >> i) & 1u;
    }
    const auto reduced = reduce_to_levels(cfg, enabled);
    const auto result = optimize_multilevel(reduced, options);
    if (!result.converged) continue;
    best.subset_wallclocks[mask] = result.wallclock;
    if (result.wallclock < best_wallclock) {
      best_wallclock = result.wallclock;
      best.enabled = enabled;
      best.optimization = result;
    }
  }
  MLCR_EXPECT(std::isfinite(best_wallclock),
              "optimize_with_level_selection: no subset converged");

  // Lift the reduced plan back to the full level space.
  best.full_plan.scale = best.optimization.plan.scale;
  best.full_plan.intervals.assign(levels, 1.0);
  std::size_t reduced_index = 0;
  for (std::size_t i = 0; i < levels; ++i) {
    if (best.enabled[i]) {
      best.full_plan.intervals[i] =
          best.optimization.plan.intervals[reduced_index++];
    }
  }
  return best;
}

}  // namespace mlcr::opt
