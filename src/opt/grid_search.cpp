#include "opt/grid_search.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "num/finite.h"

namespace mlcr::opt {

namespace {

/// Geometric grid over [lo, hi].
std::vector<double> geometric_grid(double lo, double hi, int samples) {
  std::vector<double> grid(static_cast<std::size_t>(samples));
  const double ratio =
      num::checked_log(num::checked_div(hi, lo, "grid bounds"), "grid ratio");
  for (int i = 0; i < samples; ++i) {
    grid[static_cast<std::size_t>(i)] =
        lo * num::checked_exp(ratio * i / (samples - 1), "grid point");
  }
  return grid;
}

}  // namespace

GridResult grid_search_single(const model::SystemConfig& cfg,
                              const model::MuModel& mu,
                              const GridOptions& options) {
  MLCR_EXPECT(cfg.levels() == 1, "grid_search_single: L must be 1");
  const double n_cap = cfg.scale_upper_bound();
  MLCR_EXPECT(std::isfinite(n_cap), "grid_search_single: need finite N bound");

  GridResult result;
  result.best_value = std::numeric_limits<double>::infinity();
  double x_lo = options.x_min, x_hi = options.x_max;
  double n_lo = 1.0, n_hi = n_cap;

  for (int round = 0; round <= options.refine_rounds; ++round) {
    const auto xs = geometric_grid(x_lo, x_hi, options.x_samples);
    const auto ns = geometric_grid(n_lo, n_hi, options.n_samples);
    double best_x = xs.front(), best_n = ns.front();
    for (double x : xs) {
      for (double n : ns) {
        const double v = model::expected_wallclock_single(cfg, mu, x, n);
        ++result.evaluations;
        if (v < result.best_value) {
          result.best_value = v;
          best_x = x;
          best_n = n;
        }
      }
    }
    result.best_plan = model::Plan{{best_x}, best_n};
    // Zoom in around the incumbent for the next round.
    const double x_span = num::checked_sqrt(x_hi / x_lo);
    const double n_span = num::checked_sqrt(n_hi / n_lo);
    x_lo = std::max(options.x_min, best_x / num::checked_sqrt(x_span));
    x_hi = std::min(options.x_max, best_x * num::checked_sqrt(x_span));
    n_lo = std::max(1.0, best_n / num::checked_sqrt(n_span));
    n_hi = std::min(n_cap, best_n * num::checked_sqrt(n_span));
    if (x_lo >= x_hi || n_lo >= n_hi) break;
  }
  return result;
}

GridResult coordinate_descent_multilevel(const model::SystemConfig& cfg,
                                         const model::MuModel& mu,
                                         model::Plan initial,
                                         const GridOptions& options) {
  MLCR_EXPECT(initial.levels() == cfg.levels(),
              "coordinate_descent: plan/config mismatch");
  const double n_cap = cfg.scale_upper_bound();

  GridResult result;
  result.best_plan = std::move(initial);
  result.best_value = model::expected_wallclock(cfg, mu, result.best_plan);
  ++result.evaluations;

  // Line-scan each coordinate on a local geometric neighbourhood; repeat
  // with shrinking span until nothing improves.
  double span = 4.0;
  for (int round = 0; round < 60; ++round) {
    bool improved = false;
    for (std::size_t coord = 0; coord <= cfg.levels(); ++coord) {
      const bool is_scale = coord == cfg.levels();
      const double current = is_scale ? result.best_plan.scale
                                      : result.best_plan.intervals[coord];
      double lo = current / span;
      double hi = current * span;
      if (is_scale && std::isfinite(n_cap)) hi = std::min(hi, n_cap);
      if (!is_scale) lo = std::max(lo, options.x_min);
      if (is_scale) lo = std::max(lo, 1.0);
      if (lo >= hi) continue;
      const auto grid = geometric_grid(lo, hi, options.x_samples);
      for (double v : grid) {
        model::Plan candidate = result.best_plan;
        if (is_scale) {
          candidate.scale = v;
        } else {
          candidate.intervals[coord] = std::max(1.0, v);
        }
        const double value = model::expected_wallclock(cfg, mu, candidate);
        ++result.evaluations;
        if (value < result.best_value) {
          result.best_value = value;
          result.best_plan = candidate;
          improved = true;
        }
      }
    }
    if (!improved) {
      span = num::checked_sqrt(span);
      if (span < 1.0005) break;
    }
  }
  return result;
}

}  // namespace mlcr::opt
