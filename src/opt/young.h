// Young's formula and Daly's refinement for checkpoint intervals.
//
// Paper Formula (25) generalizes Young's first-order rule to the multilevel
// setting: the (sub-optimal) number of intervals at level i, ignoring the
// other levels, is
//     x_i = sqrt( mu_i(N) * (Te/g(N)) / (2 C_i(N)) ).
// The classic forms (interval tau = sqrt(2 C M), M = MTBF) are provided for
// the SL(ori-scale) baseline and for cross-checks.
#pragma once

#include <vector>

#include "model/failure.h"
#include "model/system.h"

namespace mlcr::opt {

/// Classic Young interval: tau = sqrt(2 * C * MTBF) (seconds of productive
/// time between checkpoints).  Requires positive inputs.
[[nodiscard]] double young_interval(double checkpoint_seconds,
                                    double mtbf_seconds);

/// Daly's higher-order interval: tau = sqrt(2 C M) * [1 + sqrt(C/(2M))/3 +
/// (1/9)(C/(2M))] - C, valid for C < 2M; falls back to M when C >= 2M.
[[nodiscard]] double daly_interval(double checkpoint_seconds,
                                   double mtbf_seconds);

/// Paper Formula (25): per-level interval counts for a given scale.
/// Values are clamped to >= 1.
[[nodiscard]] std::vector<double> young_interval_counts(
    const model::SystemConfig& cfg, const model::MuModel& mu, double n);

/// Converts an interval count x at scale N to the productive-time interval
/// length tau = (Te/g(N)) / x.
[[nodiscard]] double interval_length(const model::SystemConfig& cfg, double x,
                                     double n);

}  // namespace mlcr::opt
