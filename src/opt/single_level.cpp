#include "opt/single_level.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "num/finite.h"
#include "model/wallclock.h"
#include "num/roots.h"

namespace mlcr::opt {

namespace {

/// Solves single_dn(cfg, mu, x, .) = 0 over [n_lower, n_upper] by bisection
/// (paper: "there must be at most one root in [0, N_star]").  When no root
/// is bracketed, the optimum sits on a boundary: N_star if the target is
/// still decreasing there, n_lower otherwise.
double optimal_scale_for_x(const model::SystemConfig& cfg,
                           const model::MuModel& mu, double x, double n_lower,
                           double n_upper) {
  auto dn = [&](double n) { return model::single_dn(cfg, mu, x, n); };
  const double at_hi = dn(n_upper);
  const double at_lo = dn(n_lower);
  if (at_hi <= 0.0) return n_upper;  // still improving at full scale
  if (at_lo >= 0.0) return n_lower;  // more cores never help
  num::RootOptions opts;
  opts.x_tolerance = 0.5;  // N is an integer; paper stops at bracket < 0.5
  const auto root = num::bisect(dn, n_lower, n_upper, opts);
  return root.converged ? root.root : n_upper;
}

}  // namespace

SingleLevelSolution solve_single_level_linear(const model::SystemConfig& cfg,
                                              const model::MuModel& mu) {
  MLCR_EXPECT(cfg.levels() == 1, "solve_single_level_linear: L must be 1");
  MLCR_EXPECT(mu.levels() == 1, "solve_single_level_linear: one mu level");
  const auto* linear =
      dynamic_cast<const model::LinearSpeedup*>(&cfg.speedup());
  MLCR_EXPECT(linear != nullptr,
              "solve_single_level_linear: requires a linear speedup");
  const double kappa = linear->kappa();
  const double b = mu.b(0);
  MLCR_EXPECT(b > 0.0, "solve_single_level_linear: b must be positive");
  const double eps0 = cfg.ckpt_cost(0, 1.0);
  const double eta0 = cfg.recovery_cost(0, 1.0);
  MLCR_EXPECT(cfg.ckpt_cost_derivative(0, 1.0) == 0.0 &&
                  cfg.recovery_cost_derivative(0, 1.0) == 0.0,
              "solve_single_level_linear: requires constant overheads");

  SingleLevelSolution solution;
  solution.converged = true;
  // Formulas (10) and (11).
  solution.x = std::max(1.0, num::checked_sqrt(b * cfg.te() / (2.0 * kappa * eps0)));
  solution.n =
      num::checked_sqrt(cfg.te() / (kappa * b * (eta0 + cfg.allocation())));
  const double cap = cfg.scale_upper_bound();
  if (std::isfinite(cap)) solution.n = std::min(solution.n, cap);
  solution.wallclock =
      model::expected_wallclock_single(cfg, mu, solution.x, solution.n);
  return solution;
}

SingleLevelSolution solve_single_level(const model::SystemConfig& cfg,
                                       const model::MuModel& mu,
                                       const SingleLevelOptions& options) {
  MLCR_EXPECT(cfg.levels() == 1, "solve_single_level: L must be 1");
  MLCR_EXPECT(mu.levels() == 1, "solve_single_level: one mu level");
  const double n_upper = cfg.scale_upper_bound();
  MLCR_EXPECT(std::isfinite(n_upper),
              "solve_single_level: needs a finite scale bound "
              "(quadratic/tabulated speedup or max_scale)");

  SingleLevelSolution solution;
  double x = options.x_initial;
  double n = n_upper;
  for (int it = 0; it < options.max_iterations; ++it) {
    solution.iterations = it + 1;
    // Formula (16): closed-form x at the current N.
    const double g = cfg.speedup().value(n);
    const double c = cfg.ckpt_cost(0, n);
    const double x_next =
        std::max(1.0, num::checked_sqrt(mu.mu(0, n) * cfg.te() / (2.0 * c * g)));
    // Formula (17): bisection for N at the updated x.
    const double n_next =
        optimal_scale_for_x(cfg, mu, x_next, options.n_lower, n_upper);
    const double change =
        std::max(std::fabs(x_next - x), std::fabs(n_next - n));
    x = x_next;
    n = n_next;
    if (change <= options.tolerance) {
      solution.converged = true;
      break;
    }
  }
  solution.x = x;
  solution.n = n;
  solution.wallclock = model::expected_wallclock_single(cfg, mu, x, n);
  return solution;
}

SingleLevelSolution solve_single_level_fixed_scale(
    const model::SystemConfig& cfg, const model::MuModel& mu, double n) {
  MLCR_EXPECT(cfg.levels() == 1, "solve_single_level_fixed_scale: L must be 1");
  MLCR_EXPECT(n > 0.0, "solve_single_level_fixed_scale: N must be positive");
  SingleLevelSolution solution;
  solution.converged = true;
  solution.iterations = 1;
  // Formula (14) solved for x — exactly Young's rule (25) for L = 1.
  const double g = cfg.speedup().value(n);
  const double c = cfg.ckpt_cost(0, n);
  solution.x = std::max(1.0, num::checked_sqrt(mu.mu(0, n) * cfg.te() / (2.0 * c * g)));
  solution.n = n;
  solution.wallclock =
      model::expected_wallclock_single(cfg, mu, solution.x, n);
  return solution;
}

}  // namespace mlcr::opt
