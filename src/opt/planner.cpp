#include "opt/planner.h"

#include <cmath>

#include "common/error.h"

namespace mlcr::opt {

std::string to_string(Solution solution) {
  switch (solution) {
    case Solution::kMultilevelOptScale: return "ML(opt-scale)";
    case Solution::kSingleLevelOptScale: return "SL(opt-scale)";
    case Solution::kMultilevelOriScale: return "ML(ori-scale)";
    case Solution::kSingleLevelOriScale: return "SL(ori-scale)";
  }
  return "?";
}

std::vector<Solution> all_solutions() {
  return {Solution::kMultilevelOptScale, Solution::kSingleLevelOptScale,
          Solution::kMultilevelOriScale, Solution::kSingleLevelOriScale};
}

PlannerResult plan(Solution solution, const model::SystemConfig& cfg,
                   const Algorithm1Options& base_options) {
  PlannerResult result;
  result.solution = solution;

  Algorithm1Options options = base_options;
  const bool multilevel = solution == Solution::kMultilevelOptScale ||
                          solution == Solution::kMultilevelOriScale;
  const bool optimize_scale = solution == Solution::kMultilevelOptScale ||
                              solution == Solution::kSingleLevelOptScale;
  options.optimize_scale = optimize_scale;
  if (!optimize_scale) {
    // "ori-scale": run at the application's original optimal scale N_star
    // (capped by the machine size), exactly as the paper's baselines do.
    const double n_star = cfg.scale_upper_bound();
    MLCR_EXPECT(std::isfinite(n_star),
                "planner: ori-scale solutions need a finite N_star");
    options.fixed_scale = options.fixed_scale > 0.0 ? options.fixed_scale
                                                    : n_star;
  }

  if (multilevel) {
    result.optimization = optimize_multilevel(cfg, options);
    result.level_enabled.assign(cfg.levels(), true);
    result.full_plan = result.optimization.plan;
  } else {
    const model::SystemConfig single = cfg.single_level_view();
    result.optimization = optimize_single_level(single, options);
    // Expand the 1-level plan into the full space: only the top level is
    // used; lower levels take no checkpoints.
    result.level_enabled.assign(cfg.levels(), false);
    result.level_enabled.back() = true;
    result.full_plan.scale = result.optimization.plan.scale;
    result.full_plan.intervals.assign(cfg.levels(), 1.0);
    result.full_plan.intervals.back() = result.optimization.plan.intervals[0];
  }
  return result;
}

}  // namespace mlcr::opt
