// Checkpoint-level selection (the companion decision the paper's earlier
// work [22] optimizes and this paper inherits: "optimize the selection of
// levels for each HPC application").
//
// Each failure TYPE i is fixed by the environment; each checkpoint LEVEL
// may be enabled or disabled.  A type-i failure recovers from the lowest
// enabled checkpoint level >= i, so disabling a level redirects its failure
// types to the next enabled level above.  The top (PFS) level can never be
// disabled — some level must cover catastrophic failures.
//
// The optimizer enumerates all 2^(L-1) admissible subsets, reduces the
// system to the enabled levels (merging failure rates upward), runs
// Algorithm 1 on each reduction, and returns the subset with the smallest
// expected wall-clock.
#pragma once

#include <vector>

#include "model/system.h"
#include "opt/algorithm1.h"

namespace mlcr::opt {

struct LevelSelectionResult {
  /// Which original levels the winning configuration checkpoints at.
  std::vector<bool> enabled;
  /// Optimization result in the reduced (enabled-levels-only) space.
  Algorithm1Result optimization;
  /// Plan lifted back to the full L-level space (disabled levels get
  /// x = 1, i.e. no checkpoints).
  model::Plan full_plan;
  /// Expected wall-clock per evaluated subset, for reporting (indexed by
  /// the subset bitmask over levels 1..L-1; the top level is always on).
  std::vector<double> subset_wallclocks;
};

/// Builds the reduced system for an enabled-mask (must include the top
/// level): enabled levels keep their overheads; each disabled level's
/// failure rate is merged into the next enabled level above it.
[[nodiscard]] model::SystemConfig reduce_to_levels(
    const model::SystemConfig& cfg, const std::vector<bool>& enabled);

/// Exhaustive search over level subsets; cfg.levels() <= 16.
[[nodiscard]] LevelSelectionResult optimize_with_level_selection(
    const model::SystemConfig& cfg, const Algorithm1Options& options = {});

}  // namespace mlcr::opt
