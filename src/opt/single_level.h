// Single-level optimizers (paper Section III-C).
//
// Linear speedup + constant costs has closed forms (Formulas (10)/(11)):
//   x* = sqrt( b Te / (2 kappa eps0) ),   N* = sqrt( Te / (kappa b (eta0+A)) ).
//
// Nonlinear (quadratic) speedup uses the fixed-point iteration of Formulas
// (16)/(17): x from the closed form at the current N, then N from bisection
// on d E/d N = 0 over (0, N_star]; repeated until x converges.
#pragma once

#include "model/failure.h"
#include "model/system.h"

namespace mlcr::opt {

struct SingleLevelSolution {
  bool converged = false;
  double x = 1.0;          ///< optimal number of checkpoint intervals
  double n = 1.0;          ///< optimal scale
  double wallclock = 0.0;  ///< Formula (13) value at (x, n)
  int iterations = 0;      ///< fixed-point iterations used
};

struct SingleLevelOptions {
  double x_initial = 100000.0;  ///< paper: "x's initial value is set to 100,000"
  double tolerance = 1e-6;      ///< paper's error threshold for Figure 3
  int max_iterations = 500;
  double n_lower = 1.0;  ///< lower end of the bisection bracket for N
};

/// Closed forms (10)/(11).  Requires a LinearSpeedup config with constant
/// overheads and a 1-level mu model mu(N) = b N.
[[nodiscard]] SingleLevelSolution solve_single_level_linear(
    const model::SystemConfig& cfg, const model::MuModel& mu);

/// Fixed-point iteration (16)/(17) for general (e.g. quadratic) speedups.
/// Optimizes both x and N.  cfg must have exactly one level.
[[nodiscard]] SingleLevelSolution solve_single_level(
    const model::SystemConfig& cfg, const model::MuModel& mu,
    const SingleLevelOptions& options = {});

/// Optimizes x only, with N frozen (the SL(ori-scale) baseline, i.e. classic
/// Young's formula expressed through Formula (14)).
[[nodiscard]] SingleLevelSolution solve_single_level_fixed_scale(
    const model::SystemConfig& cfg, const model::MuModel& mu, double n);

}  // namespace mlcr::opt
