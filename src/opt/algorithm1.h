// Algorithm 1 (paper Section III-B): the outer loop that removes the
// frozen-failure-count assumption.
//
//   1. initialize mu_i from the failure rates and an initial wall-clock
//      estimate f(Te, N) = Te / g(N) at the capacity scale;
//   2. solve the inner convex problem (single- or multilevel) for (x*, N*);
//   3. re-estimate E(Tw) at (x*, N*), recompute mu_i = lambda_i * E(Tw);
//   4. repeat until max_i |mu_i' - mu_i| <= delta.
//
// The paper reports convergence in 7-15 outer iterations at delta = 1e-12,
// and divergence only under unrealistically high failure rates (the loop
// detects that case and reports converged = false).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "model/failure.h"
#include "model/system.h"
#include "model/wallclock.h"

namespace mlcr::opt {

/// Outcome of a planning run.  Replaces the lone `bool converged` (still
/// kept in sync for older call sites): callers can now distinguish a
/// diverging fixed point from one that merely ran out of iterations, and
/// the service layer maps configuration errors to kInvalidConfig instead
/// of silently dropping the row.
enum class Status {
  kOk,             ///< converged to the requested delta
  kDiverged,       ///< failure estimates blew up (unrealistically high rates)
  kMaxIterations,  ///< outer loop exhausted max_outer_iterations
  kInvalidConfig,  ///< the request itself was malformed
  kInternalError,  ///< unexpected failure inside the solver (a bug, not the
                   ///< caller's configuration — report it)
};

[[nodiscard]] std::string to_string(Status status);

/// One outer iteration of Algorithm 1, as observed: the wall-clock estimate
/// the iteration started from, the E(Tw) it evaluated, the resulting change
/// in expected failure counts, and whether Aitken extrapolation jumped the
/// next estimate.  `Algorithm1Result::trace` holds exactly one entry per
/// outer iteration, so the trace length always equals `outer_iterations` —
/// this is how the paper's "7-15 outer iterations to delta = 1e-12" claim
/// becomes checkable instead of anecdotal.
struct OuterIterationTrace {
  int iteration = 0;               ///< 1-based outer iteration index
  double wallclock_estimate = 0.0; ///< estimate entering the iteration
  double wallclock = 0.0;          ///< E(Tw) evaluated at the inner solution
  double mu_change = 0.0;          ///< max_i |mu_i' - mu_i| after the update
  int inner_iterations = 0;        ///< inner solver iterations this round
  bool aitken_jump = false;        ///< extrapolation replaced the estimate
};

struct Algorithm1Result {
  Status status = Status::kMaxIterations;
  std::string message;  ///< human-readable detail for non-kOk statuses
  bool converged = false;  ///< == (status == Status::kOk); prefer `status`
  model::Plan plan;
  double wallclock = 0.0;      ///< self-consistent E(Tw)
  /// Analytic breakdown at the solution.  Only populated when status is kOk;
  /// non-converged runs keep it zeroed so a diverged plan can never leak
  /// plausible-looking portions into reports.
  model::TimePortions portions;
  int outer_iterations = 0;
  int inner_iterations = 0;    ///< total across all outer rounds
  double final_mu_change = 0.0;
  /// Per-iteration convergence trace; trace.size() == outer_iterations.
  std::vector<OuterIterationTrace> trace;
};

struct Algorithm1Options {
  double delta = 1e-12;  ///< paper's outer-loop threshold on mu changes
  int max_outer_iterations = 200;
  double inner_tolerance = 1e-9;
  int inner_max_iterations = 500;
  bool optimize_scale = true;  ///< false: ML(ori-scale)/SL(ori-scale)
  double fixed_scale = 0.0;    ///< used when optimize_scale is false
  /// Aitken delta-squared acceleration of the outer fixed point on the
  /// wall-clock estimate.  The plain iteration contracts geometrically with
  /// ratio ~ overhead fraction; extrapolation reaches delta = 1e-12 in the
  /// paper's quoted 7-15 iterations even for failure-heavy cases.
  bool aitken = true;
};

/// Runs Algorithm 1 with the multilevel inner solver on `cfg` as given
/// (use cfg.single_level_view() + single_level below for the SL baselines).
[[nodiscard]] Algorithm1Result optimize_multilevel(
    const model::SystemConfig& cfg, const Algorithm1Options& options = {});

/// Runs Algorithm 1 with the single-level inner solver (Formulas (16)/(17));
/// cfg must have exactly one level (e.g. from cfg.single_level_view()).
/// Wall-clock/portions are evaluated with the Formula (13) target.
[[nodiscard]] Algorithm1Result optimize_single_level(
    const model::SystemConfig& cfg, const Algorithm1Options& options = {});

}  // namespace mlcr::opt
