// Brute-force verifiers.  These exist to validate the analytic optimizers:
// a coarse-to-fine grid scan over (x, N) for the single-level target and a
// coordinate-descent scan for the multilevel target.  Tests assert that the
// fixed-point optima are no worse than anything the scans find.
#pragma once

#include "model/failure.h"
#include "model/system.h"
#include "model/wallclock.h"

namespace mlcr::opt {

struct GridResult {
  double best_value = 0.0;
  model::Plan best_plan;
  long evaluations = 0;
};

struct GridOptions {
  int x_samples = 200;
  int n_samples = 200;
  int refine_rounds = 3;  ///< zoom-in rounds around the incumbent
  double x_min = 1.0;
  double x_max = 1e6;
};

/// Scans the single-level Formula (13) target over (x, N).
[[nodiscard]] GridResult grid_search_single(const model::SystemConfig& cfg,
                                            const model::MuModel& mu,
                                            const GridOptions& options = {});

/// Coordinate-descent over the multilevel Formula (21) target: repeatedly
/// line-scans each x_i and N until no coordinate improves.
[[nodiscard]] GridResult coordinate_descent_multilevel(
    const model::SystemConfig& cfg, const model::MuModel& mu,
    model::Plan initial, const GridOptions& options = {});

}  // namespace mlcr::opt
