// Checkpointed Heat Distribution: the full integration of the solver with
// the FTI-like multilevel checkpoint library on the virtual cluster, with
// node-failure injection — the paper's "practical experiments deployed with
// FTI and real MPI programs on Fusion" (Section IV-A, Figure 4, Table II).
//
// Checkpoints follow an FTI-style cyclic schedule: every `interval[level]`
// iterations the level is due; when several are due the highest wins.
// Failures are injected at virtual times; they kill a node (wiping its
// local checkpoints).  At the next iteration boundary every rank pays the
// re-allocation period, restores the newest recoverable checkpoint (lost
// blocks are rebuilt from the partner copy or by Reed-Solomon), rolls back
// to the checkpointed iteration and continues.  The final grid must be
// bit-exact with an uninterrupted run — tests assert exactly that.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "apps/heat.h"
#include "cluster/cluster.h"
#include "fti/fti.h"

namespace mlcr::apps {

struct InjectedFailure {
  double at = 0.0;  ///< virtual time
  int node = 0;     ///< node to kill
  int level = 2;    ///< failure level (1 = software: nothing wiped)
};

struct HeatCkptConfig {
  HeatConfig heat;
  cluster::ClusterConfig cluster;
  fti::FtiConfig fti;
  /// Checkpoint every interval[l] iterations at level l+1; 0 disables.
  std::array<int, 4> interval_iterations{5, 10, 20, 40};
  double allocation = 10.0;  ///< re-allocation period A, seconds
  std::vector<InjectedFailure> failures;
  /// Logical checkpoint size per rank (cost model); 0 = real payload size.
  std::uint64_t logical_checkpoint_bytes = 0;
};

struct HeatCkptResult {
  bool completed = false;
  double wallclock = 0.0;
  double checkpoint_time = 0.0;  ///< summed over ranks' max per round
  int checkpoints_taken = 0;     ///< collective rounds
  int recoveries = 0;            ///< coordinated restarts
  int failures_hit = 0;
  double residual = 0.0;
  std::vector<double> grid;  ///< final global grid
};

/// Runs the checkpointed solver end to end.  `config.cluster` must host at
/// least as many ranks as the run uses (ranks = cluster.rank_count()).
[[nodiscard]] HeatCkptResult run_heat_checkpointed(
    const HeatCkptConfig& config);

}  // namespace mlcr::apps
