// The paper's evaluation application: Heat Distribution — a 2D Jacobi
// iteration with row-block decomposition, ghost-row exchange between
// neighbouring ranks and a residual Allreduce per step ("the ghost array
// between adjacent blocks ... commonly adopted in real scientific projects
// such as parallel ocean simulation").
//
// The solver runs REAL numerics on real grids inside the virtual-MPI
// runtime; simulated time advances by a compute-cost model (cells x flops /
// core speed) plus the network cost of the exchanges, so both correctness
// (identical results at any rank count) and performance (speedup curves,
// Figure 2) are measurable.
#pragma once

#include <vector>

#include "vmpi/comm.h"
#include "vmpi/engine.h"

namespace mlcr::apps {

struct HeatConfig {
  int rows = 128;           ///< global grid rows (incl. fixed boundary)
  int cols = 128;           ///< global grid columns
  int iterations = 50;
  double top_temperature = 100.0;  ///< heat source along the top edge
  double flops_per_cell = 6.0;
  double core_gflops = 1.0;        ///< per-core compute speed
  vmpi::NetworkModel network;
};

struct HeatResult {
  bool completed = false;
  double wallclock = 0.0;        ///< simulated seconds
  double residual = 0.0;         ///< final global residual
  std::vector<double> grid;      ///< final global grid, row-major
};

/// Per-rank block state: owned rows plus two ghost rows.
class HeatBlock {
 public:
  HeatBlock(const HeatConfig& config, int rank, int ranks);

  [[nodiscard]] int first_row() const noexcept { return first_row_; }
  [[nodiscard]] int row_count() const noexcept { return row_count_; }
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int ranks() const noexcept { return ranks_; }

  [[nodiscard]] double& at(int local_row, int col);
  [[nodiscard]] double at(int local_row, int col) const;
  [[nodiscard]] std::vector<double> ghost_row_up() const;   ///< first owned row
  [[nodiscard]] std::vector<double> ghost_row_down() const; ///< last owned row
  void set_ghost_up(const std::vector<double>& row);
  void set_ghost_down(const std::vector<double>& row);

  /// One Jacobi sweep over the owned interior; returns the local residual
  /// (sum of absolute updates).  Global boundary cells stay fixed.
  [[nodiscard]] double sweep(const HeatConfig& config);

  /// Owned interior cell count (the compute cost driver).
  [[nodiscard]] long owned_cells(const HeatConfig& config) const;

  /// Checkpoint payload: the owned rows, byte-exact.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  void deserialize(const std::vector<std::uint8_t>& bytes);

 private:
  int rank_;
  int ranks_;
  int cols_;
  int first_row_;
  int row_count_;
  std::vector<double> cells_;  ///< (row_count + 2) x cols with ghosts
  std::vector<double> next_;
};

/// Splits `rows` across `ranks`: returns {first_row, count} for `rank`.
[[nodiscard]] std::pair<int, int> heat_partition(int rows, int ranks,
                                                 int rank);

/// Runs the solver on `ranks` virtual ranks and returns the global result.
[[nodiscard]] HeatResult run_heat(const HeatConfig& config, int ranks);

/// Analytic single-core time of the same problem (for speedup curves).
[[nodiscard]] double heat_single_core_time(const HeatConfig& config);

}  // namespace mlcr::apps
