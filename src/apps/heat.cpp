#include "apps/heat.h"

#include <cmath>
#include <cstring>

#include "common/error.h"
#include "vmpi/task.h"

namespace mlcr::apps {

std::pair<int, int> heat_partition(int rows, int ranks, int rank) {
  MLCR_EXPECT(ranks >= 1 && rank >= 0 && rank < ranks,
              "heat_partition: bad rank");
  // Interior rows 1..rows-2 are distributed; boundary rows are fixed and
  // owned by the first/last rank for storage purposes.
  const int interior = rows - 2;
  MLCR_EXPECT(interior >= ranks, "heat_partition: more ranks than rows");
  const int base = interior / ranks;
  const int extra = interior % ranks;
  const int first =
      1 + rank * base + std::min(rank, extra);
  const int count = base + (rank < extra ? 1 : 0);
  return {first, count};
}

HeatBlock::HeatBlock(const HeatConfig& config, int rank, int ranks)
    : rank_(rank), ranks_(ranks), cols_(config.cols) {
  const auto [first, count] = heat_partition(config.rows, ranks, rank);
  first_row_ = first;
  row_count_ = count;
  cells_.assign(static_cast<std::size_t>(row_count_ + 2) * cols_, 0.0);
  next_ = cells_;
  // Ghost rows adjacent to the global boundary carry the fixed boundary
  // values: the top edge is the heat source.
  if (first_row_ == 1) {
    for (int c = 0; c < cols_; ++c) at(-1, c) = config.top_temperature;
  }
}

double& HeatBlock::at(int local_row, int col) {
  return cells_[static_cast<std::size_t>(local_row + 1) * cols_ + col];
}

double HeatBlock::at(int local_row, int col) const {
  return cells_[static_cast<std::size_t>(local_row + 1) * cols_ + col];
}

std::vector<double> HeatBlock::ghost_row_up() const {
  return {cells_.begin() + cols_, cells_.begin() + 2 * cols_};
}

std::vector<double> HeatBlock::ghost_row_down() const {
  return {cells_.end() - 2 * cols_, cells_.end() - cols_};
}

void HeatBlock::set_ghost_up(const std::vector<double>& row) {
  MLCR_EXPECT(static_cast<int>(row.size()) == cols_, "ghost size mismatch");
  std::copy(row.begin(), row.end(), cells_.begin());
}

void HeatBlock::set_ghost_down(const std::vector<double>& row) {
  MLCR_EXPECT(static_cast<int>(row.size()) == cols_, "ghost size mismatch");
  std::copy(row.begin(), row.end(), cells_.end() - cols_);
}

double HeatBlock::sweep(const HeatConfig&) {
  double residual = 0.0;
  for (int r = 0; r < row_count_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      double updated;
      if (c == 0 || c == cols_ - 1) {
        updated = at(r, c);  // fixed side boundary
      } else {
        updated = 0.25 * (at(r - 1, c) + at(r + 1, c) + at(r, c - 1) +
                          at(r, c + 1));
      }
      next_[static_cast<std::size_t>(r + 1) * cols_ + c] = updated;
      residual += std::fabs(updated - at(r, c));
    }
  }
  // Commit the sweep; ghost rows keep their exchanged values.
  std::copy(next_.begin() + cols_, next_.end() - cols_,
            cells_.begin() + cols_);
  return residual;
}

long HeatBlock::owned_cells(const HeatConfig& config) const {
  return static_cast<long>(row_count_) * config.cols;
}

std::vector<std::uint8_t> HeatBlock::serialize() const {
  std::vector<std::uint8_t> bytes(cells_.size() * sizeof(double));
  std::memcpy(bytes.data(), cells_.data(), bytes.size());
  return bytes;
}

void HeatBlock::deserialize(const std::vector<std::uint8_t>& bytes) {
  MLCR_EXPECT(bytes.size() == cells_.size() * sizeof(double),
              "HeatBlock: checkpoint size mismatch");
  std::memcpy(cells_.data(), bytes.data(), bytes.size());
}

double heat_single_core_time(const HeatConfig& config) {
  const double cells =
      static_cast<double>(config.rows - 2) * config.cols;
  return cells * config.flops_per_cell * config.iterations /
         (config.core_gflops * 1e9);
}

namespace {

using vmpi::Bytes;
using vmpi::Comm;
using vmpi::Engine;
using vmpi::RankTask;

Bytes pack(const std::vector<double>& row) {
  Bytes bytes(row.size() * sizeof(double));
  std::memcpy(bytes.data(), row.data(), bytes.size());
  return bytes;
}

std::vector<double> unpack(const Bytes& bytes) {
  std::vector<double> row(bytes.size() / sizeof(double));
  std::memcpy(row.data(), bytes.data(), bytes.size());
  return row;
}

constexpr int kTagDown = 1;  // data flowing to the next rank
constexpr int kTagUp = 2;    // data flowing to the previous rank

struct SharedState {
  const HeatConfig* config;
  int ranks;
  std::vector<HeatBlock>* blocks;
  double residual = 0.0;
};

RankTask heat_rank(Engine& engine, Comm& comm, SharedState& shared,
                   int rank) {
  const HeatConfig& config = *shared.config;
  HeatBlock& block = (*shared.blocks)[static_cast<std::size_t>(rank)];
  const double compute_seconds =
      static_cast<double>(block.owned_cells(config)) *
      config.flops_per_cell / (config.core_gflops * 1e9);

  for (int iteration = 0; iteration < config.iterations; ++iteration) {
    // Ghost exchange with neighbours (eager sends avoid ordering deadlock).
    if (rank + 1 < shared.ranks) {
      co_await comm.send(rank, rank + 1, kTagDown,
                         pack(block.ghost_row_down()));
    }
    if (rank > 0) {
      co_await comm.send(rank, rank - 1, kTagUp, pack(block.ghost_row_up()));
    }
    if (rank > 0) {
      Bytes bytes = co_await comm.recv(rank, rank - 1, kTagDown);
      block.set_ghost_up(unpack(bytes));
    }
    if (rank + 1 < shared.ranks) {
      Bytes bytes = co_await comm.recv(rank, rank + 1, kTagUp);
      block.set_ghost_down(unpack(bytes));
    }

    // Real numerics + modeled compute time.
    const double local_residual = block.sweep(config);
    co_await engine.sleep(compute_seconds);

    // Global residual (the paper's MPI_Allreduce).
    const double total = co_await comm.allreduce_sum(rank, local_residual);
    if (rank == 0) shared.residual = total;
  }
}

}  // namespace

HeatResult run_heat(const HeatConfig& config, int ranks) {
  MLCR_EXPECT(ranks >= 1, "run_heat: need at least one rank");
  Engine engine;
  Comm comm(engine, ranks, config.network);
  std::vector<HeatBlock> blocks;
  blocks.reserve(static_cast<std::size_t>(ranks));
  for (int rank = 0; rank < ranks; ++rank) {
    blocks.emplace_back(config, rank, ranks);
  }
  SharedState shared{&config, ranks, &blocks, 0.0};
  for (int rank = 0; rank < ranks; ++rank) {
    engine.spawn(heat_rank(engine, comm, shared, rank));
  }
  engine.run();

  HeatResult result;
  result.completed = true;
  result.wallclock = engine.now();
  result.residual = shared.residual;
  // Assemble the global grid (fixed boundary + owned rows).
  result.grid.assign(static_cast<std::size_t>(config.rows) * config.cols,
                     0.0);
  for (int c = 0; c < config.cols; ++c) {
    result.grid[static_cast<std::size_t>(c)] = config.top_temperature;
  }
  for (const auto& block : blocks) {
    for (int r = 0; r < block.row_count(); ++r) {
      for (int c = 0; c < config.cols; ++c) {
        result.grid[static_cast<std::size_t>(block.first_row() + r) *
                        config.cols +
                    c] = block.at(r, c);
      }
    }
  }
  return result;
}

}  // namespace mlcr::apps
