#include "apps/heat_ckpt.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "vmpi/task.h"

namespace mlcr::apps {

namespace {

using cluster::Payload;
using vmpi::Bytes;
using vmpi::Comm;
using vmpi::Engine;
using vmpi::RankTask;

constexpr int kTagDown = 1;
constexpr int kTagUp = 2;

Bytes pack(const std::vector<double>& row) {
  Bytes bytes(row.size() * sizeof(double));
  std::memcpy(bytes.data(), row.data(), bytes.size());
  return bytes;
}

std::vector<double> unpack(const Bytes& bytes) {
  std::vector<double> row(bytes.size() / sizeof(double));
  std::memcpy(row.data(), bytes.data(), bytes.size());
  return row;
}

struct Shared {
  const HeatCkptConfig* config;
  cluster::Cluster* cluster;
  fti::Fti* fti;
  std::vector<HeatBlock>* blocks;
  int ranks = 0;

  // Failure injection (raised by the injector coroutine, consumed by the
  // collective recovery vote).
  bool failure_flag = false;

  // Metrics.
  int checkpoints_taken = 0;
  int recoveries = 0;
  int failures_hit = 0;
  double checkpoint_time = 0.0;
  double residual = 0.0;
};

/// Iteration checkpointed in record `version` (encoded in payload header).
struct PayloadHeader {
  std::int32_t iteration = 0;
};

Payload make_payload(const Shared& shared, const HeatBlock& block,
                     int iteration) {
  Payload payload;
  PayloadHeader header{iteration};
  const auto body = block.serialize();
  payload.bytes.resize(sizeof(header) + body.size());
  std::memcpy(payload.bytes.data(), &header, sizeof(header));
  std::memcpy(payload.bytes.data() + sizeof(header), body.data(),
              body.size());
  payload.logical_size = shared.config->logical_checkpoint_bytes;
  return payload;
}

int apply_payload(HeatBlock& block, const Payload& payload) {
  PayloadHeader header;
  MLCR_EXPECT(payload.bytes.size() >= sizeof(header),
              "heat_ckpt: corrupt checkpoint payload");
  std::memcpy(&header, payload.bytes.data(), sizeof(header));
  std::vector<std::uint8_t> body(payload.bytes.begin() + sizeof(header),
                                 payload.bytes.end());
  block.deserialize(body);
  return header.iteration;
}

/// Highest level due at this iteration, or 0 when none.
int due_level(const HeatCkptConfig& config, int iteration) {
  if (iteration == 0) return 0;
  int level = 0;
  for (int l = 0; l < 4; ++l) {
    const int interval = config.interval_iterations[static_cast<std::size_t>(l)];
    if (interval > 0 && iteration % interval == 0) level = l + 1;
  }
  return level;
}

RankTask failure_injector(Engine& engine, Shared& shared) {
  const auto& failures = shared.config->failures;
  for (const auto& failure : failures) {
    const double wait = failure.at - engine.now();
    if (wait > 0.0) co_await engine.sleep(wait);
    if (failure.level >= 2) {
      shared.cluster->kill_node(failure.node);
      shared.cluster->revive_node(failure.node);  // replacement in place
    }
    shared.failure_flag = true;
    ++shared.failures_hit;
  }
}

RankTask heat_ckpt_rank(Engine& engine, Comm& comm, Shared& shared,
                        int rank) {
  const HeatCkptConfig& config = *shared.config;
  const HeatConfig& heat = config.heat;
  HeatBlock& block = (*shared.blocks)[static_cast<std::size_t>(rank)];
  const double compute_seconds =
      static_cast<double>(block.owned_cells(heat)) * heat.flops_per_cell /
      (heat.core_gflops * 1e9);
  int iteration = 0;
  while (iteration < heat.iterations) {
    // --- coordinated recovery check at the iteration boundary ---
    // The decision is itself a collective (everyone acts on the same sum),
    // so a failure flag raised mid-boundary cannot split the ranks.
    const double votes =
        co_await comm.allreduce_sum(rank, shared.failure_flag ? 1.0 : 0.0);
    if (votes > 0.0) {
      if (rank == 0) {
        shared.failure_flag = false;
        ++shared.recoveries;
      }
      co_await comm.barrier(rank);  // flag cleared before anyone re-votes
      // Re-allocation period, then a coordinated restore: walk records
      // newest-first and commit the first one recoverable by EVERY rank
      // (a per-rank newest pick would mix iterations across ranks).
      co_await engine.sleep(config.allocation);
      const auto records = shared.fti->records();  // copy: stable view
      bool restored_ok = false;
      for (auto it = records.rbegin(); it != records.rend(); ++it) {
        auto payload = co_await shared.fti->restore_record(rank, *it);
        const double vote = payload.has_value() ? 1.0 : 0.0;
        const double agreed = co_await comm.allreduce_sum(rank, vote);
        if (agreed == static_cast<double>(shared.ranks)) {
          iteration = apply_payload(block, *payload);
          restored_ok = true;
          break;
        }
      }
      MLCR_EXPECT(restored_ok, "heat_ckpt: no globally recoverable checkpoint");
      co_await comm.barrier(rank);
      continue;
    }

    // --- ghost exchange ---
    if (rank + 1 < shared.ranks) {
      co_await comm.send(rank, rank + 1, kTagDown,
                         pack(block.ghost_row_down()));
    }
    if (rank > 0) {
      co_await comm.send(rank, rank - 1, kTagUp, pack(block.ghost_row_up()));
    }
    if (rank > 0) {
      Bytes bytes = co_await comm.recv(rank, rank - 1, kTagDown);
      block.set_ghost_up(unpack(bytes));
    }
    if (rank + 1 < shared.ranks) {
      Bytes bytes = co_await comm.recv(rank, rank + 1, kTagUp);
      block.set_ghost_down(unpack(bytes));
    }

    // --- compute ---
    const double local_residual = block.sweep(heat);
    co_await engine.sleep(compute_seconds);
    const double total = co_await comm.allreduce_sum(rank, local_residual);
    if (rank == 0) shared.residual = total;
    ++iteration;

    // --- checkpoint when due (never at the final iteration: a checkpoint
    // of a finished run protects nothing, and the analytic model's x
    // intervals imply x-1 interior checkpoints) ---
    const int level =
        iteration < heat.iterations ? due_level(config, iteration) : 0;
    if (level > 0) {
      co_await comm.barrier(rank);
      const double t0 = engine.now();
      co_await shared.fti->checkpoint(rank, level,
                                      make_payload(shared, block, iteration));
      co_await comm.barrier(rank);
      if (rank == 0) {
        ++shared.checkpoints_taken;
        shared.checkpoint_time += engine.now() - t0;
      }
    }
  }
}

RankTask initial_checkpoint(fti::Fti& fti, Shared& shared, int rank) {
  co_await fti.checkpoint(
      rank, 4,
      make_payload(shared, (*shared.blocks)[static_cast<std::size_t>(rank)],
                   0));
}

}  // namespace

HeatCkptResult run_heat_checkpointed(const HeatCkptConfig& config) {
  Engine engine;
  cluster::Cluster cluster(config.cluster);
  const int ranks = cluster.rank_count();
  MLCR_EXPECT(config.heat.rows - 2 >= ranks,
              "heat_ckpt: more ranks than interior rows");
  fti::Fti fti(engine, cluster, config.fti);
  Comm comm(engine, ranks, config.heat.network);

  std::vector<HeatBlock> blocks;
  blocks.reserve(static_cast<std::size_t>(ranks));
  for (int rank = 0; rank < ranks; ++rank) {
    blocks.emplace_back(config.heat, rank, ranks);
  }

  Shared shared;
  shared.config = &config;
  shared.cluster = &cluster;
  shared.fti = &fti;
  shared.blocks = &blocks;
  shared.ranks = ranks;

  // An iteration-0 baseline checkpoint guarantees recoverability of early
  // failures (FTI applications take an initial checkpoint as well).
  // It is written as a level-4 round before the run starts.
  for (int rank = 0; rank < ranks; ++rank) {
    engine.spawn(initial_checkpoint(fti, shared, rank));
  }
  engine.run();
  // The baseline write is setup (the model treats the initial state as
  // recoverable for free); the measured wall-clock starts here.
  const double start = engine.now();

  for (int rank = 0; rank < ranks; ++rank) {
    engine.spawn(heat_ckpt_rank(engine, comm, shared, rank));
  }
  engine.spawn(failure_injector(engine, shared));
  engine.run();

  HeatCkptResult result;
  result.completed = true;
  result.wallclock = engine.now() - start;
  result.checkpoint_time = shared.checkpoint_time;
  result.checkpoints_taken = shared.checkpoints_taken;
  result.recoveries = shared.recoveries;
  result.failures_hit = shared.failures_hit;
  result.residual = shared.residual;

  result.grid.assign(
      static_cast<std::size_t>(config.heat.rows) * config.heat.cols, 0.0);
  for (int c = 0; c < config.heat.cols; ++c) {
    result.grid[static_cast<std::size_t>(c)] = config.heat.top_temperature;
  }
  for (const auto& block : blocks) {
    for (int r = 0; r < block.row_count(); ++r) {
      for (int c = 0; c < config.heat.cols; ++c) {
        result.grid[static_cast<std::size_t>(block.first_row() + r) *
                        config.heat.cols +
                    c] = block.at(r, c);
      }
    }
  }
  return result;
}

}  // namespace mlcr::apps
