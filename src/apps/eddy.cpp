#include "apps/eddy.h"

#include "common/error.h"
#include "vmpi/engine.h"
#include "vmpi/task.h"

namespace mlcr::apps {

double eddy_single_core_time(const EddyConfig& config) {
  return config.work_flops * config.iterations / (config.core_gflops * 1e9);
}

namespace {

using vmpi::Bytes;
using vmpi::Comm;
using vmpi::Engine;
using vmpi::RankTask;

struct Shared {
  const EddyConfig* config;
  int ranks;
  double checksum = 0.0;
};

RankTask eddy_rank(Engine& engine, Comm& comm, Shared& shared, int rank) {
  const EddyConfig& config = *shared.config;
  const double compute =
      config.work_flops / shared.ranks / (config.core_gflops * 1e9);
  const std::size_t message =
      config.base_message * static_cast<std::size_t>(shared.ranks);
  double field = rank + 1.0;

  for (int iteration = 0; iteration < config.iterations; ++iteration) {
    co_await engine.sleep(compute);
    if (shared.ranks > 1) {
      const int next = (rank + 1) % shared.ranks;
      const int prev = (rank + shared.ranks - 1) % shared.ranks;
      // The bulk transfer cost is charged as wire time; only a small token
      // carries real bytes (the logical volume would be GBs at scale).
      co_await engine.sleep(config.network.transfer_time(message));
      co_await comm.send(rank, next, /*tag=*/3, Bytes(64, 0x5A));
      Bytes incoming = co_await comm.recv(rank, prev, /*tag=*/3);
      field += static_cast<double>(message + incoming.size()) * 1e-9;
    }
    field = co_await comm.allreduce_sum(rank, field) / shared.ranks;
  }
  if (rank == 0) shared.checksum = field;
}

}  // namespace

EddyResult run_eddy(const EddyConfig& config, int ranks) {
  MLCR_EXPECT(ranks >= 1, "run_eddy: need at least one rank");
  Engine engine;
  // The ring exchange posts all sends before the recvs; keep them eager so
  // the ring cannot deadlock (the cost model is unaffected).
  vmpi::NetworkModel network = config.network;
  network.eager_limit = std::max(
      network.eager_limit,
      config.base_message * static_cast<std::size_t>(ranks) + 1);
  Comm comm(engine, ranks, network);
  Shared shared{&config, ranks, 0.0};
  for (int rank = 0; rank < ranks; ++rank) {
    engine.spawn(eddy_rank(engine, comm, shared, rank));
  }
  engine.run();
  return EddyResult{engine.now(), shared.checksum};
}

}  // namespace mlcr::apps
