// A communication-bound synthetic kernel in the mold of Nek5000's eddy_uv
// (paper Figure 2(b)): per-iteration neighbour exchanges whose volume grows
// with the rank count, so the speedup peaks at a moderate scale and then
// declines — the shape the paper fits with a quadratic on the initial range.
#pragma once

#include "vmpi/comm.h"

namespace mlcr::apps {

struct EddyConfig {
  double work_flops = 4e9;       ///< total flops per iteration
  int iterations = 10;
  double core_gflops = 1.0;
  /// bytes; the per-neighbour message is base * ranks, so communication
  /// grows linearly with scale and the speedup peaks near
  /// sqrt(work_flops * bandwidth / (base * core_gflops * 1e9)).
  std::size_t base_message = 1'000'000;
  vmpi::NetworkModel network;
};

struct EddyResult {
  double wallclock = 0.0;
  double checksum = 0.0;  ///< deterministic reduction over the fake field
};

/// Runs the kernel on `ranks` virtual ranks.
[[nodiscard]] EddyResult run_eddy(const EddyConfig& config, int ranks);

/// Analytic single-core time (for speedup curves).
[[nodiscard]] double eddy_single_core_time(const EddyConfig& config);

}  // namespace mlcr::apps
