#include "common/units.h"

#include <cmath>
#include <cstdio>

namespace mlcr::common {

std::string format_duration(double seconds) {
  char buf[64];
  const double abs = std::fabs(seconds);
  if (abs >= kSecondsPerDay) {
    std::snprintf(buf, sizeof buf, "%.2fd", seconds / kSecondsPerDay);
  } else if (abs >= 3600.0) {
    std::snprintf(buf, sizeof buf, "%.2fh", seconds / 3600.0);
  } else if (abs >= 60.0) {
    std::snprintf(buf, sizeof buf, "%.2fm", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fs", seconds);
  }
  return buf;
}

std::string format_count(double value) {
  char buf[64];
  const double abs = std::fabs(value);
  if (abs >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3gm", value / 1e6);
  } else if (abs >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3gk", value / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%g", value);
  }
  return buf;
}

}  // namespace mlcr::common
