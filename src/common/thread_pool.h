// Work-stealing thread pool used by the batch-planning service layer
// (src/svc).  Each worker owns a deque: submitted tasks are distributed
// round-robin, a worker pops from the front of its own deque and, when that
// runs dry, steals from the back of its siblings' deques.  `submit` returns a
// std::future so exceptions thrown inside a task propagate to the caller at
// `get()` time.  The destructor drains every queued task before joining.
//
// Tasks must not submit to the same pool and block on the returned future
// from within a worker thread — with every worker blocked the queue would
// never drain.  The sweep engine always joins from the caller's thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace mlcr::common {

class ThreadPool {
 public:
  /// `threads == 0` uses std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Schedules `fn` and returns the future of its result.  A task that
  /// throws stores the exception in the future.
  template <typename F>
  [[nodiscard]] auto submit(F&& fn)
      -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    push([task]() { (*task)(); });
    return future;
  }

 private:
  struct Queue;

  void push(std::function<void()> task);
  bool try_pop(std::size_t self, std::function<void()>* task);
  void worker_loop(std::size_t index);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> next_queue_{0};
  /// Tasks pushed but not yet popped.  Incremented under `wake_mutex_` so a
  /// worker checking the wait predicate cannot miss a wakeup.
  std::atomic<std::size_t> pending_{0};
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  bool stop_ = false;  ///< guarded by wake_mutex_
};

}  // namespace mlcr::common
