// Error-handling conventions.
//
// Library code throws `mlcr::common::Error` for configuration mistakes that a
// caller can prevent (bad parameters), and uses MLCR_EXPECT for internal
// invariants.  Numeric routines that can legitimately fail (non-bracketing
// intervals, non-convergence) return std::optional / status structs instead.
#pragma once

#include <stdexcept>
#include <string>

namespace mlcr::common {

/// Thrown on invalid configuration or arguments.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when the math breaks down mid-solve on a well-formed request
/// (non-finite wall-clock estimate, diverging iterates).  Distinct from
/// Error so service layers can report "the solver diverged" instead of
/// blaming the caller's configuration.
class NumericError : public Error {
 public:
  explicit NumericError(const std::string& what) : Error(what) {}
};

[[noreturn]] inline void fail(const std::string& message) {
  throw Error(message);
}

[[noreturn]] inline void fail_numeric(const std::string& message) {
  throw NumericError(message);
}

}  // namespace mlcr::common

/// Precondition check: throws mlcr::common::Error with location info.
#define MLCR_EXPECT(cond, message)                                          \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::mlcr::common::fail(std::string(__FILE__) + ":" +                    \
                           std::to_string(__LINE__) + ": " + (message));    \
    }                                                                       \
  } while (false)

/// Mid-solve numeric invariant: throws mlcr::common::NumericError, which the
/// service layer maps to a divergence status rather than invalid-config.
#define MLCR_NUMERIC_EXPECT(cond, message)                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::mlcr::common::fail_numeric(std::string(__FILE__) + ":" +            \
                                   std::to_string(__LINE__) + ": " +        \
                                   (message));                              \
    }                                                                       \
  } while (false)
