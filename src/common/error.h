// Error-handling conventions.
//
// Library code throws `mlcr::common::Error` for configuration mistakes that a
// caller can prevent (bad parameters), and uses MLCR_EXPECT for internal
// invariants.  Numeric routines that can legitimately fail (non-bracketing
// intervals, non-convergence) return std::optional / status structs instead.
#pragma once

#include <stdexcept>
#include <string>

namespace mlcr::common {

/// Thrown on invalid configuration or arguments.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void fail(const std::string& message) {
  throw Error(message);
}

}  // namespace mlcr::common

/// Precondition check: throws mlcr::common::Error with location info.
#define MLCR_EXPECT(cond, message)                                          \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::mlcr::common::fail(std::string(__FILE__) + ":" +                    \
                           std::to_string(__LINE__) + ": " + (message));    \
    }                                                                       \
  } while (false)
