// Unit conventions and conversions used across the library.
//
// The paper quotes workloads in "core-days" (single-core productive time) and
// overheads in seconds.  Internally everything is carried in seconds as
// `double`; these helpers make call-sites explicit about intent.
#pragma once

#include <string>

namespace mlcr::common {

inline constexpr double kSecondsPerDay = 86400.0;

/// Converts core-days (paper's workload unit) to core-seconds.
[[nodiscard]] constexpr double core_days_to_seconds(double core_days) noexcept {
  return core_days * kSecondsPerDay;
}

/// Converts seconds to days (used when printing paper-style tables).
[[nodiscard]] constexpr double seconds_to_days(double seconds) noexcept {
  return seconds / kSecondsPerDay;
}

/// Converts a per-day event rate to a per-second rate.
[[nodiscard]] constexpr double per_day_to_per_second(double per_day) noexcept {
  return per_day / kSecondsPerDay;
}

/// Human-readable duration, e.g. "13.0d", "2.1h", "35s".
[[nodiscard]] std::string format_duration(double seconds);

/// Human-readable count with k/m suffix, e.g. "81.7k", "1m".
[[nodiscard]] std::string format_count(double value);

}  // namespace mlcr::common
