#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/log.h"
#include "common/table.h"

namespace mlcr::common::metrics {

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(samples.begin(), samples.end());
  const double rank = q * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

void Timer::observe(double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  if (samples_.size() < kWindow) {
    samples_.push_back(value);
  } else {
    samples_[count_ % kWindow] = value;
  }
  ++count_;
}

Timer::Snapshot Timer::snapshot() const {
  std::vector<double> samples;
  Snapshot snap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snap.count = count_;
    snap.sum = sum_;
    snap.min = min_;
    snap.max = max_;
    samples = samples_;
  }
  snap.p50 = percentile(samples, 0.50);
  snap.p90 = percentile(samples, 0.90);
  snap.p99 = percentile(std::move(samples), 0.99);
  return snap;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Timer& Registry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = timers_[name];
  if (!slot) slot = std::make_unique<Timer>();
  return *slot;
}

Registry::Snapshot Registry::snapshot() const {
  Snapshot snap;
  // Copy instrument pointers under the map lock, then read each instrument
  // outside it (Counter/Gauge are atomic; Timer has its own mutex).
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Timer*>> timers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, counter] : counters_)
      counters.emplace_back(name, counter.get());
    for (const auto& [name, gauge] : gauges_)
      gauges.emplace_back(name, gauge.get());
    for (const auto& [name, timer] : timers_)
      timers.emplace_back(name, timer.get());
  }
  for (const auto& [name, counter] : counters)
    snap.counters.emplace_back(name, counter->value());
  for (const auto& [name, gauge] : gauges)
    snap.gauges.emplace_back(name, gauge->value());
  for (const auto& [name, timer] : timers)
    snap.timers.emplace_back(name, timer->snapshot());
  return snap;
}

std::string Registry::to_table() const {
  const Snapshot snap = snapshot();
  std::string out;
  if (!snap.counters.empty() || !snap.gauges.empty()) {
    Table table({"metric", "kind", "value"});
    for (const auto& [name, value] : snap.counters)
      table.add_row({name, "counter", strf("%llu",
                                           static_cast<unsigned long long>(value))});
    for (const auto& [name, value] : snap.gauges)
      table.add_row({name, "gauge", strf("%.6g", value)});
    out += table.to_string();
  }
  if (!snap.timers.empty()) {
    Table table({"timer", "count", "sum", "mean", "min", "p50", "p90", "p99",
                 "max"});
    for (const auto& [name, t] : snap.timers) {
      table.add_row({name,
                     strf("%llu", static_cast<unsigned long long>(t.count)),
                     strf("%.4g", t.sum), strf("%.4g", t.mean()),
                     strf("%.4g", t.min), strf("%.4g", t.p50),
                     strf("%.4g", t.p90), strf("%.4g", t.p99),
                     strf("%.4g", t.max)});
    }
    if (!out.empty()) out += "\n";
    out += table.to_string();
  }
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

void Registry::print() const { std::fputs(to_table().c_str(), stdout); }

namespace {

/// JSON string escaping for metric names (quotes/backslashes/control chars).
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON has no Inf/NaN literals; clamp to null.
std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  return strf("%.17g", value);
}

}  // namespace

std::string Registry::to_jsonl() const {
  const Snapshot snap = snapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    out += strf("{\"kind\":\"counter\",\"name\":\"%s\",\"value\":%llu}\n",
                json_escape(name).c_str(),
                static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    out += strf("{\"kind\":\"gauge\",\"name\":\"%s\",\"value\":%s}\n",
                json_escape(name).c_str(), json_number(value).c_str());
  }
  for (const auto& [name, t] : snap.timers) {
    out += strf(
        "{\"kind\":\"timer\",\"name\":\"%s\",\"count\":%llu,\"sum\":%s,"
        "\"min\":%s,\"max\":%s,\"mean\":%s,\"p50\":%s,\"p90\":%s,"
        "\"p99\":%s}\n",
        json_escape(name).c_str(), static_cast<unsigned long long>(t.count),
        json_number(t.sum).c_str(), json_number(t.min).c_str(),
        json_number(t.max).c_str(), json_number(t.mean()).c_str(),
        json_number(t.p50).c_str(), json_number(t.p90).c_str(),
        json_number(t.p99).c_str());
  }
  return out;
}

bool Registry::write_jsonl_file(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    log_error("metrics: cannot open " + path + " for writing");
    return false;
  }
  const std::string body = to_jsonl();
  const bool ok = std::fwrite(body.data(), 1, body.size(), file) ==
                  body.size();
  std::fclose(file);
  if (!ok) log_error("metrics: short write to " + path);
  return ok;
}

}  // namespace mlcr::common::metrics
