#include "common/rng.h"

#include <cmath>

namespace mlcr::common {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : Rng(seed, /*stream=*/0) {}

Rng::Rng(std::uint64_t seed, std::uint64_t stream) noexcept {
  reseed(seed, stream);
}

void Rng::reseed(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Mix the stream id into the seed chain so streams are decorrelated.
  std::uint64_t sm = seed;
  (void)splitmix64(sm);
  sm ^= 0x6a09e667f3bcc909ULL * (stream + 1);
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

void Rng::fill_uniform(double* out, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded sampling (rejection on the edge).
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next();
    const unsigned __int128 m = static_cast<unsigned __int128>(r) * n;
    if (static_cast<std::uint64_t>(m) >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

double Rng::exponential(double rate) noexcept {
  // Inverse transform on (0, 1]; 1-uniform() avoids log(0).
  return -std::log(1.0 - uniform()) / rate;
}

Rng Rng::fork() noexcept {
  const std::uint64_t a = next();
  const std::uint64_t b = next();
  return Rng(a, b);
}

}  // namespace mlcr::common
