// Signal-safe process shutdown flag used by long-lived servers (mlcrd).
//
// A SIGINT/SIGTERM handler may only touch async-signal-safe state; the flag
// here is a lock-free atomic written by the handler and polled by server
// loops (which all wait with bounded timeouts, so a set flag is observed
// within one poll tick).  `request_shutdown` lets tests and programmatic
// drains share the same code path as a real signal.
#pragma once

namespace mlcr::common {

/// Installs SIGINT + SIGTERM handlers that record the signal in the
/// process-wide shutdown flag.  Idempotent; no SA_RESTART, so blocking
/// syscalls in the main loop return EINTR promptly.
void install_shutdown_handler();

/// True once a shutdown signal (or request_shutdown) has been seen.
[[nodiscard]] bool shutdown_requested() noexcept;

/// The signal number that triggered shutdown (0 when none yet) — for drain
/// logging ("SIGTERM received, draining").
[[nodiscard]] int shutdown_signal() noexcept;

/// Programmatic shutdown, equivalent to receiving `signal` (tests, drains).
void request_shutdown(int signal) noexcept;

/// Clears the flag so a test harness can run several server lifecycles in
/// one process.  Not intended for production code.
void reset_shutdown() noexcept;

}  // namespace mlcr::common
