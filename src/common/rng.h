// Deterministic, seedable pseudo-random number generation for simulations.
//
// We carry our own generator (xoshiro256**) instead of std::mt19937 so that
// simulation streams are reproducible across standard libraries and cheap to
// fork: every Monte-Carlo run and every failure-injection process derives an
// independent stream from (seed, stream-id) via splitmix64.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace mlcr::common {

/// splitmix64 step; used to seed and to derive independent sub-streams.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Creates an independent stream: same seed, different `stream` ids give
  /// statistically independent sequences.
  Rng(std::uint64_t seed, std::uint64_t stream) noexcept;

  /// Re-derives the state for (seed, stream) in place — the exact sequence
  /// of `Rng(seed, stream)`, without constructing a new object.  Lets a
  /// worker iterate counter-based replica streams with one generator.
  void reseed(std::uint64_t seed, std::uint64_t stream) noexcept;

  [[nodiscard]] std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Fills `out[0, n)` with uniforms in [0, 1), identical to n successive
  /// uniform() calls.  Batch form of the hot draw: the generator state walk
  /// stays serial (xoshiro is a dependency chain) but the 64-bit-to-double
  /// conversions pipeline over the array instead of round-tripping through
  /// a call per sample.
  void fill_uniform(double* out, std::size_t n) noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n).  Requires n > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept;

  /// Exponentially distributed value with the given rate (mean 1/rate).
  /// Requires rate > 0.
  [[nodiscard]] double exponential(double rate) noexcept;

  /// UniformRandomBitGenerator interface (usable with <algorithm> shuffles).
  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Forks a child generator whose stream is decorrelated from this one.
  [[nodiscard]] Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace mlcr::common
