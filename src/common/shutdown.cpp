#include "common/shutdown.h"

#include <csignal>

#include <atomic>

namespace mlcr::common {

namespace {

// Lock-free atomic: stores from the signal handler are async-signal-safe.
std::atomic<int> g_shutdown_signal{0};
static_assert(std::atomic<int>::is_always_lock_free);

extern "C" void mlcr_on_shutdown_signal(int signal) {
  g_shutdown_signal.store(signal, std::memory_order_relaxed);
}

}  // namespace

void install_shutdown_handler() {
  struct sigaction action = {};
  action.sa_handler = mlcr_on_shutdown_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: let blocking syscalls see EINTR
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

bool shutdown_requested() noexcept {
  return g_shutdown_signal.load(std::memory_order_relaxed) != 0;
}

int shutdown_signal() noexcept {
  return g_shutdown_signal.load(std::memory_order_relaxed);
}

void request_shutdown(int signal) noexcept {
  g_shutdown_signal.store(signal, std::memory_order_relaxed);
}

void reset_shutdown() noexcept {
  g_shutdown_signal.store(0, std::memory_order_relaxed);
}

}  // namespace mlcr::common
