#include "common/thread_pool.h"

#include <algorithm>
#include <deque>

namespace mlcr::common {

struct ThreadPool::Queue {
  std::mutex mutex;
  std::deque<std::function<void()>> tasks;
};

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  }
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::push(std::function<void()> task) {
  const std::size_t home =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[home]->mutex);
    queues_[home]->tasks.push_back(std::move(task));
  }
  {
    // Increment under wake_mutex_ so a worker between its predicate check
    // and wait() cannot miss this task.
    std::lock_guard<std::mutex> lock(wake_mutex_);
    pending_.fetch_add(1, std::memory_order_release);
  }
  wake_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>* task) {
  {
    // Own queue first, oldest task first.
    Queue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.front());
      own.tasks.pop_front();
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  // Steal from the back of the other queues.
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    Queue& victim = *queues_[(self + k) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      *task = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t index) {
  for (;;) {
    std::function<void()> task;
    if (try_pop(index, &task)) {
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait(lock, [this] {
      return stop_ || pending_.load(std::memory_order_acquire) > 0;
    });
    // Drain-on-stop: exit only once every queued task has been taken, so
    // no future submitted before destruction is left unfulfilled.
    if (stop_ && pending_.load(std::memory_order_acquire) == 0) return;
  }
}

}  // namespace mlcr::common
