// Solver observability: thread-safe counters, gauges, and timer histograms
// behind a named registry, in the style multilevel checkpoint runtimes
// (VELOC et al.) use to back "very low overhead" claims with numbers.
//
// Design rules:
//   * Instruments are owned by a Registry and handed out by reference; the
//     references stay valid for the registry's lifetime, so hot paths
//     resolve the name once and then touch only an atomic.
//   * Counter/Gauge are lock-free; Timer keeps a bounded sample window under
//     a private mutex (observations are ~per solver run, not per inner
//     iteration, so contention is negligible).
//   * Export never blocks writers for long: snapshots copy under the lock
//     and format outside it.  `to_table()` renders the pretty form benches
//     print; `write_jsonl()` emits one JSON object per instrument for
//     machine consumption (the `--metrics=file.jsonl` CLI flag).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mlcr::common::metrics {

/// Monotonic event count (cache hits, evictions, solver statuses).
class Counter {
 public:
  void increment(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (cache size, thread count).
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Distribution of observed values (solve seconds, queue wait, outer
/// iterations).  Keeps exact count/sum/min/max plus a bounded sample window
/// for percentiles; past the window the oldest samples are overwritten, so
/// percentiles reflect the most recent ~4096 observations.
class Timer {
 public:
  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    [[nodiscard]] double mean() const noexcept {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
  };

  void observe(double value);
  [[nodiscard]] Snapshot snapshot() const;

 private:
  static constexpr std::size_t kWindow = 4096;
  mutable std::mutex mutex_;
  std::vector<double> samples_;  ///< ring once count_ exceeds kWindow
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// RAII wall-clock observation into a Timer, in seconds.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer) noexcept
      : timer_(timer), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() { timer_.observe(elapsed_seconds()); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  Timer& timer_;
  std::chrono::steady_clock::time_point start_;
};

/// Named instrument registry.  Lookups get-or-create under one mutex; the
/// returned references remain valid until the registry is destroyed.
class Registry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Timer& timer(const std::string& name);

  /// Point-in-time copy of every instrument, sorted by name within kind.
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Timer::Snapshot>> timers;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Aligned ASCII rendering (one section per instrument kind).
  [[nodiscard]] std::string to_table() const;
  /// Renders to stdout.
  void print() const;

  /// One JSON object per line per instrument:
  ///   {"kind":"counter","name":"cache.hits","value":42}
  ///   {"kind":"gauge","name":"cache.size","value":64}
  ///   {"kind":"timer","name":"solve.seconds","count":120,"sum":...,
  ///    "min":...,"max":...,"mean":...,"p50":...,"p90":...,"p99":...}
  [[nodiscard]] std::string to_jsonl() const;
  /// Writes to_jsonl() to `path`; returns false (and logs) on I/O failure.
  bool write_jsonl_file(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Timer>> timers_;
};

/// Linear-interpolation percentile (q in [0,1]) of an unsorted sample set;
/// 0 on empty input.  Shared by Timer snapshots and per-sweep aggregates.
[[nodiscard]] double percentile(std::vector<double> samples, double q);

}  // namespace mlcr::common::metrics
