// Minimal leveled logging to stderr; benches lower the level to keep the
// paper-style tables clean while tests can raise it for diagnostics.
#pragma once

#include <string>

namespace mlcr::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

void log(LogLevel level, const std::string& message);

inline void log_debug(const std::string& m) { log(LogLevel::kDebug, m); }
inline void log_info(const std::string& m) { log(LogLevel::kInfo, m); }
inline void log_warn(const std::string& m) { log(LogLevel::kWarn, m); }
inline void log_error(const std::string& m) { log(LogLevel::kError, m); }

}  // namespace mlcr::common
