#include "common/table.h"

#include <cstdarg>
#include <cstdio>

namespace mlcr::common {

std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::string& label, const std::vector<double>& values,
                    const char* fmt) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(strf(fmt, v));
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i >= width.size()) width.resize(i + 1, 0);
      width[i] = std::max(width[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto render = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      line += "| ";
      line += cell;
      line.append(width[i] - cell.size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };

  std::string out = render(header_);
  std::string rule;
  for (std::size_t w : width) {
    rule += '|';
    rule.append(w + 2, '-');
  }
  out += rule;
  out += "|\n";
  for (const auto& row : rows_) out += render(row);
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace mlcr::common
