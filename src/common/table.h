// ASCII table rendering used by benches to print paper-style tables.
#pragma once

#include <string>
#include <vector>

namespace mlcr::common {

/// Accumulates rows of cells and renders an aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a data row; it may have fewer cells than the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats each double with the given printf format.
  void add_row(const std::string& label, const std::vector<double>& values,
               const char* fmt = "%.3g");

  /// Renders with column alignment and a separator under the header.
  [[nodiscard]] std::string to_string() const;

  /// Renders to stdout.
  void print() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper returning std::string.
[[nodiscard]] std::string strf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace mlcr::common
