// Systematic Reed-Solomon erasure coding over GF(2^8) — the engine behind
// the level-3 checkpoints (FTI's RS-encoding): a group of k nodes holds k
// data shards plus m parity shards, and any m shard losses are recoverable.
//
// The code uses a Cauchy matrix a_ij = 1/(x_i + y_j) with distinct field
// points, whose every square submatrix is invertible — the property that
// guarantees recovery from ANY erasure pattern of up to m shards.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace mlcr::rs {

/// Encoder/decoder for a fixed (data_shards, parity_shards) geometry.
class ReedSolomon {
 public:
  /// Requires 1 <= data_shards, 1 <= parity_shards, and
  /// data_shards + parity_shards <= 256.
  ReedSolomon(int data_shards, int parity_shards);

  [[nodiscard]] int data_shards() const noexcept { return k_; }
  [[nodiscard]] int parity_shards() const noexcept { return m_; }
  [[nodiscard]] int total_shards() const noexcept { return k_ + m_; }

  /// Computes the m parity shards from the k data shards.  All shards must
  /// have the same size; `shards` has k data entries followed by m parity
  /// entries (parity contents are overwritten).
  void encode(std::vector<std::vector<std::uint8_t>>& shards) const;

  /// Reconstructs missing shards in place.  `present[i]` says whether
  /// shards[i] currently holds valid data.  Returns false when more than m
  /// shards are missing (unrecoverable); on success every shard (data and
  /// parity) is filled and `present` is all-true.
  [[nodiscard]] bool reconstruct(std::vector<std::vector<std::uint8_t>>& shards,
                                 std::vector<bool>& present) const;

  /// Verifies that the parity shards match the data shards.
  [[nodiscard]] bool verify(
      const std::vector<std::vector<std::uint8_t>>& shards) const;

 private:
  int k_;
  int m_;
  /// m_ x k_ Cauchy encoding matrix, row-major.
  std::vector<std::uint8_t> encode_matrix_;
};

}  // namespace mlcr::rs
