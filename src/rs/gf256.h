// GF(2^8) arithmetic for the Reed-Solomon checkpoint level (paper level 3;
// FTI's RS-encoding uses exactly this field [Reed & Solomon 1960, Plank's
// Jerasure]).  Uses the AES polynomial x^8+x^4+x^3+x+1 (0x11d generator
// tables built at static-init time).
#pragma once

#include <cstdint>
#include <span>

namespace mlcr::rs {

/// Addition/subtraction in GF(2^8) is XOR.
[[nodiscard]] constexpr std::uint8_t gf_add(std::uint8_t a,
                                            std::uint8_t b) noexcept {
  return a ^ b;
}

/// Multiplication via log/antilog tables.
[[nodiscard]] std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) noexcept;

/// Multiplicative inverse; requires a != 0.
[[nodiscard]] std::uint8_t gf_inv(std::uint8_t a);

/// a / b; requires b != 0.
[[nodiscard]] std::uint8_t gf_div(std::uint8_t a, std::uint8_t b);

/// a^power (power >= 0).
[[nodiscard]] std::uint8_t gf_pow(std::uint8_t a, int power) noexcept;

/// dst[i] ^= coefficient * src[i] — the inner loop of encode/decode.
void gf_mul_add(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src,
                std::uint8_t coefficient);

}  // namespace mlcr::rs
