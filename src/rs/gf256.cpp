#include "rs/gf256.h"

#include <array>

#include "common/error.h"

namespace mlcr::rs {

namespace {

struct Tables {
  std::array<std::uint8_t, 512> exp{};  // doubled to skip a mod in mul
  std::array<std::uint8_t, 256> log{};

  Tables() {
    // alpha = 2 is primitive for the Reed-Solomon polynomial 0x11d and
    // spans all 255 non-zero elements.
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
      log[static_cast<std::uint8_t>(x)] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    for (int i = 255; i < 512; ++i) {
      exp[static_cast<std::size_t>(i)] =
          exp[static_cast<std::size_t>(i - 255)];
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  const auto& t = tables();
  return t.exp[static_cast<std::size_t>(t.log[a]) + t.log[b]];
}

std::uint8_t gf_inv(std::uint8_t a) {
  MLCR_EXPECT(a != 0, "gf_inv: zero has no inverse");
  const auto& t = tables();
  return t.exp[255 - t.log[a]];
}

std::uint8_t gf_div(std::uint8_t a, std::uint8_t b) {
  MLCR_EXPECT(b != 0, "gf_div: division by zero");
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp[static_cast<std::size_t>(t.log[a]) + 255 - t.log[b]];
}

std::uint8_t gf_pow(std::uint8_t a, int power) noexcept {
  if (power == 0) return 1;
  if (a == 0) return 0;
  const auto& t = tables();
  const int exponent = (t.log[a] * power) % 255;
  return t.exp[static_cast<std::size_t>(exponent < 0 ? exponent + 255
                                                     : exponent)];
}

void gf_mul_add(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src,
                std::uint8_t coefficient) {
  MLCR_EXPECT(dst.size() == src.size(), "gf_mul_add: size mismatch");
  if (coefficient == 0) return;
  if (coefficient == 1) {
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
    return;
  }
  const auto& t = tables();
  const int log_c = t.log[coefficient];
  for (std::size_t i = 0; i < dst.size(); ++i) {
    const std::uint8_t s = src[i];
    if (s != 0) {
      dst[i] ^= t.exp[static_cast<std::size_t>(log_c) + t.log[s]];
    }
  }
}

}  // namespace mlcr::rs
