#include "rs/reed_solomon.h"

#include <algorithm>

#include "common/error.h"
#include "rs/gf256.h"

namespace mlcr::rs {

ReedSolomon::ReedSolomon(int data_shards, int parity_shards)
    : k_(data_shards), m_(parity_shards) {
  MLCR_EXPECT(k_ >= 1, "ReedSolomon: need at least one data shard");
  MLCR_EXPECT(m_ >= 1, "ReedSolomon: need at least one parity shard");
  MLCR_EXPECT(k_ + m_ <= 256, "ReedSolomon: at most 256 shards in GF(256)");
  // Cauchy matrix with x_i = i (parity points) and y_j = m + j (data
  // points); all 2^8 field points are distinct so x_i + y_j != 0.
  encode_matrix_.resize(static_cast<std::size_t>(m_ * k_));
  for (int i = 0; i < m_; ++i) {
    for (int j = 0; j < k_; ++j) {
      const auto x = static_cast<std::uint8_t>(i);
      const auto y = static_cast<std::uint8_t>(m_ + j);
      encode_matrix_[static_cast<std::size_t>(i * k_ + j)] =
          gf_inv(gf_add(x, y));
    }
  }
}

void ReedSolomon::encode(
    std::vector<std::vector<std::uint8_t>>& shards) const {
  MLCR_EXPECT(static_cast<int>(shards.size()) == k_ + m_,
              "encode: wrong shard count");
  const std::size_t size = shards[0].size();
  for (const auto& shard : shards) {
    MLCR_EXPECT(shard.size() == size, "encode: shard size mismatch");
  }
  for (int i = 0; i < m_; ++i) {
    auto& parity = shards[static_cast<std::size_t>(k_ + i)];
    std::fill(parity.begin(), parity.end(), 0);
    for (int j = 0; j < k_; ++j) {
      gf_mul_add(parity, shards[static_cast<std::size_t>(j)],
                 encode_matrix_[static_cast<std::size_t>(i * k_ + j)]);
    }
  }
}

bool ReedSolomon::reconstruct(std::vector<std::vector<std::uint8_t>>& shards,
                              std::vector<bool>& present) const {
  MLCR_EXPECT(static_cast<int>(shards.size()) == k_ + m_,
              "reconstruct: wrong shard count");
  MLCR_EXPECT(present.size() == shards.size(),
              "reconstruct: present mask size mismatch");

  int available = 0;
  std::size_t shard_size = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (present[i]) {
      ++available;
      shard_size = shards[i].size();
    }
  }
  if (available < k_) return false;  // unrecoverable
  bool any_missing = false;
  for (bool p : present) any_missing |= !p;
  if (!any_missing) return true;

  // Build the k x k system: rows of the generalized generator matrix
  // [I; C] for k available shards.  Row for data shard j is unit row e_j;
  // row for parity shard i is the Cauchy row i.
  std::vector<std::uint8_t> matrix(static_cast<std::size_t>(k_ * k_), 0);
  std::vector<const std::vector<std::uint8_t>*> rhs(
      static_cast<std::size_t>(k_));
  int row = 0;
  for (int s = 0; s < k_ + m_ && row < k_; ++s) {
    if (!present[static_cast<std::size_t>(s)]) continue;
    if (s < k_) {
      matrix[static_cast<std::size_t>(row * k_ + s)] = 1;
    } else {
      for (int j = 0; j < k_; ++j) {
        matrix[static_cast<std::size_t>(row * k_ + j)] =
            encode_matrix_[static_cast<std::size_t>((s - k_) * k_ + j)];
      }
    }
    rhs[static_cast<std::size_t>(row)] = &shards[static_cast<std::size_t>(s)];
    ++row;
  }

  // Invert `matrix` over GF(256) by Gauss-Jordan.
  std::vector<std::uint8_t> inverse(static_cast<std::size_t>(k_ * k_), 0);
  for (int i = 0; i < k_; ++i) {
    inverse[static_cast<std::size_t>(i * k_ + i)] = 1;
  }
  for (int col = 0; col < k_; ++col) {
    int pivot = -1;
    for (int r = col; r < k_; ++r) {
      if (matrix[static_cast<std::size_t>(r * k_ + col)] != 0) {
        pivot = r;
        break;
      }
    }
    // Cauchy structure guarantees invertibility; a zero column would be a
    // logic error rather than an input condition.
    MLCR_EXPECT(pivot >= 0, "reconstruct: singular decode matrix");
    if (pivot != col) {
      for (int c = 0; c < k_; ++c) {
        std::swap(matrix[static_cast<std::size_t>(pivot * k_ + c)],
                  matrix[static_cast<std::size_t>(col * k_ + c)]);
        std::swap(inverse[static_cast<std::size_t>(pivot * k_ + c)],
                  inverse[static_cast<std::size_t>(col * k_ + c)]);
      }
    }
    const std::uint8_t inv_pivot =
        gf_inv(matrix[static_cast<std::size_t>(col * k_ + col)]);
    for (int c = 0; c < k_; ++c) {
      matrix[static_cast<std::size_t>(col * k_ + c)] =
          gf_mul(matrix[static_cast<std::size_t>(col * k_ + c)], inv_pivot);
      inverse[static_cast<std::size_t>(col * k_ + c)] =
          gf_mul(inverse[static_cast<std::size_t>(col * k_ + c)], inv_pivot);
    }
    for (int r = 0; r < k_; ++r) {
      if (r == col) continue;
      const std::uint8_t factor =
          matrix[static_cast<std::size_t>(r * k_ + col)];
      if (factor == 0) continue;
      for (int c = 0; c < k_; ++c) {
        matrix[static_cast<std::size_t>(r * k_ + c)] = gf_add(
            matrix[static_cast<std::size_t>(r * k_ + c)],
            gf_mul(factor, matrix[static_cast<std::size_t>(col * k_ + c)]));
        inverse[static_cast<std::size_t>(r * k_ + c)] = gf_add(
            inverse[static_cast<std::size_t>(r * k_ + c)],
            gf_mul(factor, inverse[static_cast<std::size_t>(col * k_ + c)]));
      }
    }
  }

  // Rebuild every missing data shard: data_j = sum_r inverse[j][r] * rhs[r].
  for (int j = 0; j < k_; ++j) {
    if (present[static_cast<std::size_t>(j)]) continue;
    auto& shard = shards[static_cast<std::size_t>(j)];
    shard.assign(shard_size, 0);
    for (int r = 0; r < k_; ++r) {
      gf_mul_add(shard, *rhs[static_cast<std::size_t>(r)],
                 inverse[static_cast<std::size_t>(j * k_ + r)]);
    }
    present[static_cast<std::size_t>(j)] = true;
  }
  // Re-derive any missing parity from the (now complete) data.
  for (int i = 0; i < m_; ++i) {
    if (present[static_cast<std::size_t>(k_ + i)]) continue;
    auto& parity = shards[static_cast<std::size_t>(k_ + i)];
    parity.assign(shard_size, 0);
    for (int j = 0; j < k_; ++j) {
      gf_mul_add(parity, shards[static_cast<std::size_t>(j)],
                 encode_matrix_[static_cast<std::size_t>(i * k_ + j)]);
    }
    present[static_cast<std::size_t>(k_ + i)] = true;
  }
  return true;
}

bool ReedSolomon::verify(
    const std::vector<std::vector<std::uint8_t>>& shards) const {
  MLCR_EXPECT(static_cast<int>(shards.size()) == k_ + m_,
              "verify: wrong shard count");
  const std::size_t size = shards[0].size();
  std::vector<std::uint8_t> expected(size);
  for (int i = 0; i < m_; ++i) {
    std::fill(expected.begin(), expected.end(), 0);
    for (int j = 0; j < k_; ++j) {
      gf_mul_add(expected, shards[static_cast<std::size_t>(j)],
                 encode_matrix_[static_cast<std::size_t>(i * k_ + j)]);
    }
    if (expected != shards[static_cast<std::size_t>(k_ + i)]) return false;
  }
  return true;
}

}  // namespace mlcr::rs
