// One reactor = one epoll instance + one event-loop thread (DESIGN.md §12).
//
// The serving core runs N of these, one per shard: every socket is
// non-blocking and owned by exactly one reactor, all of whose callbacks run
// on that reactor's loop thread — connection state is single-threaded by
// construction and needs no locks.  The only cross-thread entry point is
// post(), which enqueues a task under a small mutex and wakes the loop
// through an eventfd; solver workers use it to deliver finished reports
// back to the shard that owns the requesting connection.
//
// Dispatch is indirect on purpose: epoll carries only the fd, and the loop
// routes events through the owner-installed dispatcher, which looks the fd
// up in the shard's connection table.  A handler that closes a connection
// mid-batch simply removes it from the table; stale events for the dead fd
// later in the same epoll batch look up nothing and are dropped — no
// deferred-deletion bookkeeping, no dangling handler pointers.
//
// Level-triggered epoll: simpler invariants than edge-triggered (no
// drain-until-EAGAIN obligation on every wakeup) at the cost of one extra
// epoll_wait return per partially-consumed buffer, which is noise at this
// frame size.  Writability interest is toggled only while a connection has
// unflushed output.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "net/socket.h"

namespace mlcr::net {

class Reactor {
 public:
  /// Called on the loop thread for each ready fd (never the wake eventfd).
  using Dispatcher = std::function<void(int fd, std::uint32_t events)>;

  /// Creates the epoll instance and wake eventfd; throws common::Error if
  /// the kernel refuses either.
  Reactor();
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Installs the event dispatcher.  Must be set before run().
  void set_dispatcher(Dispatcher dispatcher) {
    dispatcher_ = std::move(dispatcher);
  }

  /// Runs the loop on the calling thread until stop(): waits on epoll with
  /// a bounded tick, dispatches ready fds, then drains posted tasks.
  void run();

  /// Thread-safe: requests loop exit and wakes it.  Pending posted tasks
  /// still run before run() returns (a drain can rely on its final posts).
  void stop();

  /// Thread-safe: runs `task` on the loop thread during the next iteration
  /// (immediately woken).  Tasks posted after run() returned are executed
  /// by the destructor's drain, so captured resources are always released.
  void post(std::function<void()> task);

  /// Runs every task posted so far on the *calling* thread.  Only safe
  /// while the loop is not running (before run(), or after stop() + join):
  /// the server's drain uses it to answer stragglers whose deliveries were
  /// posted after the loop already exited.
  void drain_posted() { run_posted_tasks(); }

  /// Registration (loop thread only, except the initial setup before run()).
  /// `events` is an EPOLL* mask; add/modify/remove throw common::Error on
  /// kernel rejection, except remove of an already-gone fd (benign during
  /// teardown races).
  void add_fd(int fd, std::uint32_t events);
  void modify_fd(int fd, std::uint32_t events);
  void remove_fd(int fd) noexcept;

  /// True when called from the thread currently inside run().
  [[nodiscard]] bool on_loop_thread() const noexcept {
    return std::this_thread::get_id() ==
           loop_thread_.load(std::memory_order_acquire);
  }

 private:
  void wake() noexcept;
  void run_posted_tasks();

  Socket epoll_;
  Socket wakeup_;  ///< eventfd; registered in epoll_ for read
  Dispatcher dispatcher_;

  std::mutex tasks_mutex_;
  std::vector<std::function<void()>> tasks_;

  std::atomic<bool> stop_{false};
  std::atomic<std::thread::id> loop_thread_{};
};

}  // namespace mlcr::net
