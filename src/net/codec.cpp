#include "net/codec.h"

#include "common/error.h"
#include "net/textnum.h"

namespace mlcr::net {

std::string to_string(Codec codec) {
  return codec == Codec::kBinary ? "binary" : "json";
}

bool codec_from_string(const std::string& text, Codec* out) {
  if (text == "json") {
    *out = Codec::kJson;
    return true;
  }
  if (text == "binary") {
    *out = Codec::kBinary;
    return true;
  }
  return false;
}

std::string frame_payload(std::string_view payload, Codec codec) {
  if (payload.size() > kMaxFramePayload) {
    common::fail("codec: payload of " + dec(static_cast<long long>(
                     payload.size())) +
                 " bytes exceeds the " +
                 dec(static_cast<long long>(kMaxFramePayload)) +
                 "-byte frame cap");
  }
  if (codec == Codec::kJson) {
    if (payload.find('\n') != std::string_view::npos) {
      common::fail("codec: json payload contains a newline");
    }
    std::string framed(payload);
    framed.push_back('\n');
    return framed;
  }
  std::string framed;
  framed.reserve(kBinaryHeaderBytes + payload.size());
  framed.push_back(static_cast<char>(kBinaryMagic[0]));
  framed.push_back(static_cast<char>(kBinaryMagic[1]));
  framed.push_back(static_cast<char>(kBinaryMagic[2]));
  framed.push_back(static_cast<char>(kBinaryVersion));
  const auto length = static_cast<std::uint32_t>(payload.size());
  framed.push_back(static_cast<char>(length & 0xFFu));
  framed.push_back(static_cast<char>((length >> 8) & 0xFFu));
  framed.push_back(static_cast<char>((length >> 16) & 0xFFu));
  framed.push_back(static_cast<char>((length >> 24) & 0xFFu));
  framed.append(payload);
  return framed;
}

FrameReader::Result FrameReader::next(std::string* payload,
                                      std::string* error) {
  if (dead_) {
    *error = "frame reader already failed";
    return Result::kError;
  }
  // feed() pins the codec on the first byte; no byte yet = nothing to do.
  if (!codec_.has_value()) return Result::kNeedMore;
  const Result result = *codec_ == Codec::kJson ? next_json(payload, error)
                                                : next_binary(payload, error);
  if (result == Result::kError) dead_ = true;
  return result;
}

FrameReader::Result FrameReader::next_json(std::string* payload,
                                           std::string* error) {
  const std::size_t newline = buffer_.find('\n');
  if (newline == std::string::npos) {
    if (buffer_.size() > kMaxFramePayload) {
      *error = "line exceeds the " +
               dec(static_cast<long long>(kMaxFramePayload)) + "-byte cap";
      return Result::kError;
    }
    return Result::kNeedMore;
  }
  std::size_t end = newline;
  if (end > 0 && buffer_[end - 1] == '\r') --end;
  if (end > kMaxFramePayload) {
    *error = "line exceeds the " +
             dec(static_cast<long long>(kMaxFramePayload)) + "-byte cap";
    return Result::kError;
  }
  payload->assign(buffer_, 0, end);
  buffer_.erase(0, newline + 1);
  return Result::kFrame;
}

FrameReader::Result FrameReader::next_binary(std::string* payload,
                                             std::string* error) {
  if (buffer_.size() < kBinaryHeaderBytes) return Result::kNeedMore;
  const auto byte = [this](std::size_t i) {
    return static_cast<unsigned char>(buffer_[i]);
  };
  if (byte(0) != kBinaryMagic[0] || byte(1) != kBinaryMagic[1] ||
      byte(2) != kBinaryMagic[2]) {
    *error = "bad binary frame magic";
    return Result::kError;
  }
  if (byte(3) != kBinaryVersion) {
    *error = "unsupported binary frame version " + dec(byte(3)) +
             " (this build speaks " + dec(kBinaryVersion) + ")";
    return Result::kError;
  }
  const std::uint32_t length =
      static_cast<std::uint32_t>(byte(4)) |
      (static_cast<std::uint32_t>(byte(5)) << 8) |
      (static_cast<std::uint32_t>(byte(6)) << 16) |
      (static_cast<std::uint32_t>(byte(7)) << 24);
  if (length > kMaxFramePayload) {
    *error = "binary frame of " + dec(static_cast<long long>(length)) +
             " bytes exceeds the " +
             dec(static_cast<long long>(kMaxFramePayload)) + "-byte cap";
    return Result::kError;
  }
  if (buffer_.size() < kBinaryHeaderBytes + length) return Result::kNeedMore;
  payload->assign(buffer_, kBinaryHeaderBytes, length);
  buffer_.erase(0, kBinaryHeaderBytes + length);
  return Result::kFrame;
}

}  // namespace mlcr::net
