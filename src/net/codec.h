// Per-connection wire codecs for the mlcrd protocol (DESIGN.md §12).
//
// The protocol payload — one JSON envelope per request or response, with
// every double rendered as a canonical hex-float string — is codec
// independent; a codec only decides how payload bytes are framed on the
// stream:
//
//   kJson    line framing: payload bytes + '\n' (the original wire form;
//            a preceding '\r' is tolerated on input).  Self-describing and
//            telnet-friendly, but the reader must scan every byte for the
//            terminator.
//   kBinary  length-prefixed framing: a fixed 8-byte header
//                magic 0xA7 'M' 'C' | version 0x01 | u32 payload length (LE)
//            followed by exactly `length` payload bytes.  The reader knows
//            each frame's size up front (no byte scanning, no escaping),
//            and because the payload encoder is shared with the JSON codec
//            — hex-float doubles and all — binary frames are bit-exact by
//            construction.
//
// Negotiation is implicit and per-connection: the first byte a peer sends
// picks the codec (0xA7 = binary, anything else = JSON lines — 0xA7 can
// never start a JSON document), and the server answers every frame in the
// codec the connection arrived with.  A FrameReader stays in its detected
// codec for the connection's lifetime; mixing codecs mid-stream is a
// protocol error on the binary side (a non-magic byte where a header is
// expected) and simply impossible to express on the JSON side.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace mlcr::net {

enum class Codec : std::uint8_t {
  kJson = 0,    ///< '\n'-delimited JSON envelopes (default, human-typable)
  kBinary = 1,  ///< length-prefixed frames carrying the same envelope bytes
};

[[nodiscard]] std::string to_string(Codec codec);
/// Parses "json"/"binary"; false on anything else.
[[nodiscard]] bool codec_from_string(const std::string& text, Codec* out);

/// Binary frame header: magic(3) + version(1) + u32le payload length.
inline constexpr unsigned char kBinaryMagic[3] = {0xA7, 'M', 'C'};
inline constexpr unsigned char kBinaryVersion = 0x01;
inline constexpr std::size_t kBinaryHeaderBytes = 8;

/// Hard cap on one frame's payload, shared by both codecs (the JSON codec
/// inherits it as the maximum line length).  A hostile peer cannot make a
/// reader buffer more than this plus one header.
inline constexpr std::size_t kMaxFramePayload = 4u << 20;

/// Wraps `payload` for the stream: payload + '\n' (kJson) or header +
/// payload (kBinary).  Throws common::Error if payload exceeds
/// kMaxFramePayload or, for kJson, contains a newline (a framing ambiguity
/// the line codec cannot express).
[[nodiscard]] std::string frame_payload(std::string_view payload, Codec codec);

/// Incremental frame decoder over a byte stream.  Feed bytes as they
/// arrive; next() yields complete payloads in order.
class FrameReader {
 public:
  enum class Result {
    kFrame,     ///< *payload holds one complete payload
    kNeedMore,  ///< the buffered bytes do not complete a frame yet
    kError,     ///< framing violation; *error describes it, stream is dead
  };

  /// Default: codec auto-detected from the first byte fed.  Pass a codec to
  /// pin it (clients know what they speak).
  explicit FrameReader(std::optional<Codec> codec = std::nullopt)
      : codec_(codec) {}

  void feed(std::string_view bytes) {
    buffer_.append(bytes);
    if (!codec_.has_value() && !buffer_.empty()) {
      // 0xA7 can never begin a JSON document, so the first byte on the
      // stream decides the connection's codec immediately (the server's
      // per-codec accounting reads codec() right after the first feed).
      codec_ = static_cast<unsigned char>(buffer_.front()) == kBinaryMagic[0]
                   ? Codec::kBinary
                   : Codec::kJson;
    }
  }

  /// Extracts the next complete payload.  kError is sticky: once the stream
  /// violated framing there is no resync point in either codec.
  [[nodiscard]] Result next(std::string* payload, std::string* error);

  /// The negotiated codec; nullopt until the first byte arrives.
  [[nodiscard]] std::optional<Codec> codec() const noexcept { return codec_; }
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size();
  }

 private:
  [[nodiscard]] Result next_json(std::string* payload, std::string* error);
  [[nodiscard]] Result next_binary(std::string* payload, std::string* error);

  std::optional<Codec> codec_;
  std::string buffer_;
  bool dead_ = false;
};

}  // namespace mlcr::net
