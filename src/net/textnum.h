// Locale-independent numeric <-> text conversion for the wire layer.
//
// The daemon's determinism contract (DESIGN.md §9) says a PlanReport's wire
// bytes are identical no matter which process — or which locale — produced
// them.  printf/strtod-family conversions consult the C locale's radix
// character, so mlcr-lint (rule `net-locale`) bans them inside src/net;
// everything below is built on <charconv>, which is locale-independent by
// specification.  These helpers are the only sanctioned route for numeric
// text in this directory.
#pragma once

#include <string>
#include <string_view>

namespace mlcr::net {

/// Decimal rendering of an integer (replaces std::to_string in src/net).
[[nodiscard]] std::string dec(long long value);

/// Decimal rendering of an unsigned 64-bit integer.  RNG seeds cross the
/// wire in this form (JSON numbers are doubles and cannot represent every
/// uint64 exactly).
[[nodiscard]] std::string dec_u64(unsigned long long value);

/// Parses a full non-negative decimal uint64 string.  Returns false unless
/// the entire text is consumed and in range; *out is untouched on failure.
[[nodiscard]] bool parse_u64(std::string_view text, unsigned long long* out);

/// Exact hex-float rendering, strtod-compatible ("0x1.91p+6"): distinct
/// finite doubles always produce distinct text, and parse_double restores
/// the identical bits.  Same wire format as the snprintf("%a") it replaces.
[[nodiscard]] std::string hexf(double value);

/// Parses a full decimal ("2.5", "1e-3") or hex-float ("0x1.8p+1") string,
/// with an optional leading sign.  Returns false unless the entire text is
/// consumed and in range; *out is untouched on failure.  Accepts the
/// "inf"/"nan" spellings (callers reject them with their own finiteness
/// checks and error messages).
[[nodiscard]] bool parse_double(std::string_view text, double* out);

}  // namespace mlcr::net
