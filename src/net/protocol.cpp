#include "net/protocol.h"

#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/error.h"
#include "net/textnum.h"
#include "sim/trace_io.h"
#include "svc/system_config_builder.h"

namespace mlcr::net {

namespace {

[[noreturn]] void decode_fail(const std::string& field,
                              const std::string& what) {
  common::fail("protocol: " + field + ": " + what);
}

/// Field accessors: throw common::Error naming the offending field, caught
/// at the decode_* boundary and turned into a structured error message.
const json::Value& require(const json::Value& object, const char* key) {
  const json::Value* member = object.find(key);
  if (member == nullptr) decode_fail(key, "required field missing");
  return *member;
}

double get_double(const json::Value& object, const char* key) {
  double value = 0.0;
  std::string error;
  if (!decode_double(require(object, key), &value, &error)) {
    decode_fail(key, error);
  }
  return value;
}

double get_double_or(const json::Value& object, const char* key,
                     double fallback) {
  if (object.find(key) == nullptr) return fallback;
  return get_double(object, key);
}

long get_long(const json::Value& object, const char* key) {
  const double value = require(object, key).as_number();
  const long integral = static_cast<long>(value);
  if (static_cast<double>(integral) != value) {
    decode_fail(key, "must be an integer");
  }
  return integral;
}

long get_long_or(const json::Value& object, const char* key, long fallback) {
  if (object.find(key) == nullptr) return fallback;
  return get_long(object, key);
}

bool get_bool_or(const json::Value& object, const char* key, bool fallback) {
  const json::Value* member = object.find(key);
  return member == nullptr ? fallback : member->as_bool();
}

std::string get_string_or(const json::Value& object, const char* key,
                          const std::string& fallback) {
  const json::Value* member = object.find(key);
  return member == nullptr ? fallback : member->as_string();
}

// --- overheads / scaling ----------------------------------------------

bool scaling_from_string(const std::string& text, model::Scaling* out) {
  for (const auto scaling :
       {model::Scaling::kConstant, model::Scaling::kLinear,
        model::Scaling::kSqrt, model::Scaling::kLog}) {
    if (model::to_string(scaling) == text) {
      *out = scaling;
      return true;
    }
  }
  return false;
}

json::Value encode_overhead(const model::Overhead& overhead) {
  return json::Object{{"base", encode_double(overhead.base)},
                      {"slope", encode_double(overhead.slope)},
                      {"scaling", model::to_string(overhead.scaling)}};
}

model::Overhead decode_overhead(const json::Value& value, const char* field) {
  model::Overhead overhead;
  overhead.base = get_double(value, "base");
  overhead.slope = get_double(value, "slope");
  const std::string scaling = get_string_or(value, "scaling", "constant");
  if (!scaling_from_string(scaling, &overhead.scaling)) {
    decode_fail(field, "unknown scaling '" + scaling + "'");
  }
  return overhead;
}

// --- speedup ----------------------------------------------------------

json::Value encode_speedup(const model::Speedup& speedup) {
  if (const auto* linear =
          dynamic_cast<const model::LinearSpeedup*>(&speedup)) {
    return json::Object{{"kind", "linear"},
                        {"kappa", encode_double(linear->kappa())}};
  }
  if (const auto* quadratic =
          dynamic_cast<const model::QuadraticSpeedup*>(&speedup)) {
    return json::Object{{"kind", "quadratic"},
                        {"kappa", encode_double(quadratic->kappa())},
                        {"n_star", encode_double(quadratic->n_symmetry())}};
  }
  if (const auto* amdahl =
          dynamic_cast<const model::AmdahlSpeedup*>(&speedup)) {
    return json::Object{
        {"kind", "amdahl"},
        {"serial_fraction", encode_double(amdahl->serial_fraction())}};
  }
  if (const auto* tabulated =
          dynamic_cast<const model::TabulatedSpeedup*>(&speedup)) {
    json::Array scales, speedups;
    for (const double n : tabulated->scales()) {
      scales.push_back(encode_double(n));
    }
    for (const double g : tabulated->speedups()) {
      speedups.push_back(encode_double(g));
    }
    return json::Object{{"kind", "tabulated"},
                        {"scales", std::move(scales)},
                        {"speedups", std::move(speedups)}};
  }
  common::fail("protocol: speedup kind not encodable over the wire");
}

std::vector<double> decode_double_array(const json::Value& value,
                                        const char* field) {
  std::vector<double> out;
  for (const json::Value& item : value.as_array()) {
    double v = 0.0;
    std::string error;
    if (!decode_double(item, &v, &error)) decode_fail(field, error);
    out.push_back(v);
  }
  return out;
}

std::unique_ptr<model::Speedup> decode_speedup(const json::Value& value) {
  const std::string kind = require(value, "kind").as_string();
  if (kind == "linear") {
    return std::make_unique<model::LinearSpeedup>(get_double(value, "kappa"));
  }
  if (kind == "quadratic") {
    return std::make_unique<model::QuadraticSpeedup>(
        get_double(value, "kappa"), get_double(value, "n_star"));
  }
  if (kind == "amdahl") {
    return std::make_unique<model::AmdahlSpeedup>(
        get_double(value, "serial_fraction"));
  }
  if (kind == "tabulated") {
    const auto scales =
        decode_double_array(require(value, "scales"), "speedup.scales");
    const auto speedups =
        decode_double_array(require(value, "speedups"), "speedup.speedups");
    return std::make_unique<model::TabulatedSpeedup>(scales, speedups);
  }
  decode_fail("speedup.kind", "unknown kind '" + kind + "'");
}

// --- system config ----------------------------------------------------

json::Value encode_config(const model::SystemConfig& cfg) {
  json::Array levels;
  for (const model::LevelOverheads& level : cfg.all_levels()) {
    levels.push_back(json::Object{{"checkpoint", encode_overhead(level.checkpoint)},
                                  {"recovery", encode_overhead(level.recovery)}});
  }
  const model::FailureRates& rates = cfg.rates();
  json::Array per_day;
  for (std::size_t i = 0; i < rates.levels(); ++i) {
    per_day.push_back(encode_double(rates.per_day_at_baseline(i)));
  }
  return json::Object{
      {"te_seconds", encode_double(cfg.te())},
      {"speedup", encode_speedup(cfg.speedup())},
      {"levels", std::move(levels)},
      {"failure_rates",
       json::Object{{"per_day", std::move(per_day)},
                    {"baseline_scale", encode_double(rates.baseline_scale())},
                    {"exponent", encode_double(rates.scale_exponent())}}},
      {"allocation_seconds", encode_double(cfg.allocation())},
      {"max_scale", encode_double(cfg.max_scale())}};
}

model::SystemConfig decode_config(const json::Value& value) {
  svc::SystemConfigBuilder builder;
  builder.te_seconds(get_double(value, "te_seconds"));
  builder.speedup(decode_speedup(require(value, "speedup")));

  std::vector<model::LevelOverheads> levels;
  for (const json::Value& level : require(value, "levels").as_array()) {
    levels.push_back({decode_overhead(require(level, "checkpoint"),
                                      "levels[].checkpoint"),
                      decode_overhead(require(level, "recovery"),
                                      "levels[].recovery")});
  }
  builder.levels(std::move(levels));

  const json::Value& rates = require(value, "failure_rates");
  builder.failure_rates_per_day(
      decode_double_array(require(rates, "per_day"), "failure_rates.per_day"),
      get_double(rates, "baseline_scale"),
      get_double_or(rates, "exponent", 1.0));

  builder.allocation_seconds(get_double_or(value, "allocation_seconds", 0.0));
  builder.max_scale(get_double_or(value, "max_scale", 0.0));
  return builder.build();  // validates every field, throws common::Error
}

// --- options ----------------------------------------------------------

json::Value encode_options(const opt::Algorithm1Options& options) {
  return json::Object{
      {"delta", encode_double(options.delta)},
      {"max_outer_iterations", options.max_outer_iterations},
      {"inner_tolerance", encode_double(options.inner_tolerance)},
      {"inner_max_iterations", options.inner_max_iterations},
      {"optimize_scale", options.optimize_scale},
      {"fixed_scale", encode_double(options.fixed_scale)},
      {"aitken", options.aitken}};
}

opt::Algorithm1Options decode_options(const json::Value& value) {
  opt::Algorithm1Options defaults;
  opt::Algorithm1Options options;
  options.delta = get_double_or(value, "delta", defaults.delta);
  options.max_outer_iterations = static_cast<int>(get_long_or(
      value, "max_outer_iterations", defaults.max_outer_iterations));
  options.inner_tolerance =
      get_double_or(value, "inner_tolerance", defaults.inner_tolerance);
  options.inner_max_iterations = static_cast<int>(get_long_or(
      value, "inner_max_iterations", defaults.inner_max_iterations));
  options.optimize_scale =
      get_bool_or(value, "optimize_scale", defaults.optimize_scale);
  options.fixed_scale =
      get_double_or(value, "fixed_scale", defaults.fixed_scale);
  options.aitken = get_bool_or(value, "aitken", defaults.aitken);
  return options;
}

// --- plan / portions --------------------------------------------------

json::Value encode_plan(const model::Plan& plan) {
  json::Array intervals;
  for (const double x : plan.intervals) intervals.push_back(encode_double(x));
  return json::Object{{"intervals", std::move(intervals)},
                      {"scale", encode_double(plan.scale)}};
}

model::Plan decode_plan(const json::Value& value) {
  model::Plan plan;
  plan.intervals =
      decode_double_array(require(value, "intervals"), "plan.intervals");
  plan.scale = get_double(value, "scale");
  return plan;
}

json::Value encode_portions(const model::TimePortions& portions) {
  return json::Object{{"productive", encode_double(portions.productive)},
                      {"checkpoint", encode_double(portions.checkpoint)},
                      {"restart", encode_double(portions.restart)},
                      {"rollback", encode_double(portions.rollback)}};
}

model::TimePortions decode_portions(const json::Value& value) {
  model::TimePortions portions;
  portions.productive = get_double(value, "productive");
  portions.checkpoint = get_double(value, "checkpoint");
  portions.restart = get_double(value, "restart");
  portions.rollback = get_double(value, "rollback");
  return portions;
}

// --- monte-carlo options / replica summaries --------------------------

json::Value encode_monte_carlo(const sim::MonteCarloOptions& options) {
  // threads is a server-side resource knob and, by the determinism
  // contract, cannot change the report — it never crosses the wire.
  return json::Object{
      {"runs", static_cast<long>(options.runs)},
      {"seed", dec_u64(options.seed)},
      {"sim",
       json::Object{{"jitter_ratio", encode_double(options.sim.jitter_ratio)},
                    {"max_events", static_cast<long>(options.sim.max_events)},
                    {"atomic_checkpoints", options.sim.atomic_checkpoints},
                    {"serial_recovery", options.sim.serial_recovery},
                    {"weibull_shape",
                     encode_double(options.sim.weibull_shape)}}}};
}

std::uint64_t decode_seed(const json::Value& value) {
  if (value.is_string()) {
    unsigned long long seed = 0;
    if (!parse_u64(value.as_string(), &seed)) {
      decode_fail("monte_carlo.seed",
                  "malformed uint64 string '" + value.as_string() + "'");
    }
    return seed;
  }
  if (value.is_number()) {
    const double number = value.as_number();
    const auto integral = static_cast<unsigned long long>(number);
    if (number < 0.0 || static_cast<double>(integral) != number) {
      decode_fail("monte_carlo.seed", "must be a non-negative integer");
    }
    return integral;
  }
  decode_fail("monte_carlo.seed", "expected decimal string or integer");
}

sim::MonteCarloOptions decode_monte_carlo(const json::Value& value) {
  sim::MonteCarloOptions options;
  options.runs = static_cast<int>(
      get_long_or(value, "runs", options.runs));
  if (const json::Value* seed = value.find("seed")) {
    options.seed = decode_seed(*seed);
  }
  if (const json::Value* sim = value.find("sim")) {
    options.sim.jitter_ratio =
        get_double_or(*sim, "jitter_ratio", options.sim.jitter_ratio);
    options.sim.max_events =
        get_long_or(*sim, "max_events", options.sim.max_events);
    options.sim.atomic_checkpoints = get_bool_or(
        *sim, "atomic_checkpoints", options.sim.atomic_checkpoints);
    options.sim.serial_recovery =
        get_bool_or(*sim, "serial_recovery", options.sim.serial_recovery);
    options.sim.weibull_shape =
        get_double_or(*sim, "weibull_shape", options.sim.weibull_shape);
  }
  return options;
}

json::Value encode_summary(const svc::SimSummary& summary) {
  return json::Object{{"count", static_cast<long>(summary.count)},
                      {"mean", encode_double(summary.mean)},
                      {"stddev", encode_double(summary.stddev)},
                      {"min", encode_double(summary.min)},
                      {"max", encode_double(summary.max)}};
}

svc::SimSummary decode_summary(const json::Value& value, const char* field) {
  if (!value.is_object()) decode_fail(field, "must be a JSON object");
  svc::SimSummary summary;
  const long count = get_long(value, "count");
  if (count < 0) decode_fail(field, "count must be non-negative");
  summary.count = static_cast<std::uint64_t>(count);
  summary.mean = get_double(value, "mean");
  summary.stddev = get_double(value, "stddev");
  summary.min = get_double(value, "min");
  summary.max = get_double(value, "max");
  return summary;
}

// --- validation backend ------------------------------------------------

std::string accepted_backends() {
  std::string joined;
  for (const auto backend : {svc::SimBackend::kCoarse, svc::SimBackend::kDes}) {
    if (!joined.empty()) joined += ", ";
    joined += '"';
    joined += svc::to_string(backend);
    joined += '"';
  }
  return joined;
}

/// "backend" member of a validate request / sim_report: absent means
/// coarse (the pre-v2 meaning), anything unrecognised is a structured
/// bad_request naming the accepted spellings.
svc::SimBackend decode_backend(const json::Value& envelope) {
  const json::Value* member = envelope.find("backend");
  if (member == nullptr) return svc::SimBackend::kCoarse;
  if (!member->is_string()) {
    decode_fail("backend", "must be a string (accepted: " +
                               accepted_backends() + ")");
  }
  const auto backend = svc::backend_from_string(member->as_string());
  if (!backend.has_value()) {
    decode_fail("backend", "unknown backend '" + member->as_string() +
                               "' (accepted: " + accepted_backends() + ")");
  }
  return *backend;
}

// --- shared op envelope ------------------------------------------------

/// The request fields every op shares — op tag, version, and the plan
/// problem (solution/config/options/label).  plan, validate, ingest and
/// subscribe all encode through here, so an envelope-level addition (like
/// v2's "backend") is a one-line emplace at the call site, not a fourth
/// copy of the field list.
json::Object encode_op_envelope(const char* op,
                                const svc::PlanRequest& request) {
  json::Object envelope{{"op", op},
                        {"v", kProtocolVersion},
                        {"solution", opt::to_string(request.solution)},
                        {"config", encode_config(request.config)},
                        {"options", encode_options(request.options)}};
  if (!request.label.empty()) envelope.emplace("label", request.label);
  return envelope;
}

/// Decode twin of encode_op_envelope: the plan fields shared by every op
/// body (identical grammar across plan/validate/ingest/subscribe).
svc::PlanRequest decode_plan_fields(const json::Value& envelope) {
  const std::string solution_text = require(envelope, "solution").as_string();
  opt::Solution solution = opt::Solution::kMultilevelOptScale;
  if (!solution_from_string(solution_text, &solution)) {
    decode_fail("solution", "unknown solution '" + solution_text + "'");
  }
  model::SystemConfig config = decode_config(require(envelope, "config"));
  opt::Algorithm1Options options;
  if (const json::Value* member = envelope.find("options")) {
    options = decode_options(*member);
  }
  std::string label = get_string_or(envelope, "label", "");
  return svc::PlanRequest{std::move(config), solution, options,
                          std::move(label)};
}

void check_envelope(const json::Value& envelope, const char* expected_op) {
  if (!envelope.is_object()) decode_fail("request", "must be a JSON object");
  std::string version_error;
  if (!envelope_version_ok(envelope, &version_error)) {
    common::fail("protocol: " + version_error);
  }
  const std::string op = get_string_or(envelope, "op", expected_op);
  if (op != expected_op) {
    decode_fail("op", "expected '" + std::string(expected_op) + "', got '" +
                          op + "'");
  }
}

bool decode_rejection_fields(const json::Value& envelope, Reject* reject,
                             std::string* message) {
  const std::string reason = require(envelope, "rejected").as_string();
  if (!reject_from_string(reason, reject)) {
    decode_fail("rejected", "unknown reason '" + reason + "'");
  }
  *message = get_string_or(envelope, "message", "");
  return true;
}

}  // namespace

const std::vector<std::string>& supported_ops() {
  static const std::vector<std::string> ops{"plan",    "validate", "ping",
                                           "metrics", "ingest",   "subscribe"};
  return ops;
}

bool envelope_version_ok(const json::Value& envelope, std::string* error) {
  const json::Value* version = envelope.find("v");
  if (version == nullptr) return true;  // absent means 1 (pre-versioning)
  if (version->is_number()) {
    const double value = version->as_number();
    for (long v = kMinProtocolVersion; v <= kProtocolVersion; ++v) {
      if (value == static_cast<double>(v)) return true;
    }
  }
  if (error != nullptr) {
    std::string received = "non-numeric";
    if (version->is_number()) {
      received = dec(static_cast<long long>(version->as_number()));
    }
    *error = "v: unsupported protocol version " + received +
             " (this build speaks " + dec(kMinProtocolVersion) + ".." +
             dec(kProtocolVersion) + ")";
  }
  return false;
}

long envelope_version(const json::Value& envelope) {
  const json::Value* version =
      envelope.is_object() ? envelope.find("v") : nullptr;
  if (version == nullptr || !version->is_number()) return 1;
  return static_cast<long>(version->as_number());
}

std::string to_string(Reject reason) {
  switch (reason) {
    case Reject::kBadRequest: return "bad_request";
    case Reject::kOverloaded: return "overloaded";
    case Reject::kDeadline: return "deadline";
    case Reject::kDraining: return "draining";
  }
  return "?";
}

bool reject_from_string(const std::string& text, Reject* out) {
  for (const auto reason : {Reject::kBadRequest, Reject::kOverloaded,
                            Reject::kDeadline, Reject::kDraining}) {
    if (to_string(reason) == text) {
      *out = reason;
      return true;
    }
  }
  return false;
}

json::Value encode_double(double value) {
  MLCR_EXPECT(std::isfinite(value),
              "protocol: cannot encode non-finite double");
  return json::Value(hexf(value));
}

bool decode_double(const json::Value& value, double* out, std::string* error) {
  if (value.is_number()) {
    // json::parse already guarantees finiteness for plain numbers.
    *out = value.as_number();
    return true;
  }
  if (!value.is_string()) {
    if (error != nullptr) *error = "expected number or hex-float string";
    return false;
  }
  const std::string& text = value.as_string();
  if (text.empty()) {
    if (error != nullptr) *error = "empty numeric string";
    return false;
  }
  double parsed = 0.0;
  if (!parse_double(text, &parsed)) {
    if (error != nullptr) *error = "malformed numeric string '" + text + "'";
    return false;
  }
  if (!std::isfinite(parsed)) {
    if (error != nullptr) {
      *error = "non-finite value '" + text + "' rejected";
    }
    return false;
  }
  *out = parsed;
  return true;
}

bool solution_from_string(const std::string& text, opt::Solution* out) {
  for (const auto solution : opt::all_solutions()) {
    if (opt::to_string(solution) == text) {
      *out = solution;
      return true;
    }
  }
  return false;
}

bool status_from_string(const std::string& text, opt::Status* out) {
  for (const auto status :
       {opt::Status::kOk, opt::Status::kDiverged, opt::Status::kMaxIterations,
        opt::Status::kInvalidConfig, opt::Status::kInternalError}) {
    if (opt::to_string(status) == text) {
      *out = status;
      return true;
    }
  }
  return false;
}

json::Value encode_request(const svc::PlanRequest& request, long deadline_ms) {
  json::Object envelope = encode_op_envelope("plan", request);
  if (deadline_ms != 0) envelope.emplace("deadline_ms", json::Value(deadline_ms));
  return json::Value(std::move(envelope));
}

std::string encode_request_line(const svc::PlanRequest& request,
                                long deadline_ms) {
  return json::dump(encode_request(request, deadline_ms));
}

std::optional<svc::PlanRequest> decode_request(const json::Value& envelope,
                                               long* deadline_ms,
                                               std::string* error) {
  try {
    check_envelope(envelope, "plan");
    svc::PlanRequest request = decode_plan_fields(envelope);
    *deadline_ms = get_long_or(envelope, "deadline_ms", 0);
    return request;
  } catch (const common::Error& e) {
    if (error != nullptr) *error = e.what();
    return std::nullopt;
  }
}

json::Value encode_report(const svc::PlanReport& report) {
  const opt::Algorithm1Result& optimization = report.planned.optimization;
  json::Array level_enabled;
  for (const bool enabled : report.planned.level_enabled) {
    level_enabled.push_back(json::Value(enabled));
  }
  // The per-iteration convergence trace stays server-side (it can be long);
  // everything a client compares or prints crosses the wire exactly.
  return json::Object{
      {"label", report.label},
      {"solution", opt::to_string(report.solution)},
      {"key", report.key},
      {"status", opt::to_string(report.status)},
      {"message", report.message},
      {"level_enabled", std::move(level_enabled)},
      {"plan", encode_plan(report.planned.full_plan)},
      {"optimization",
       json::Object{{"wallclock", encode_double(optimization.wallclock)},
                    {"portions", encode_portions(optimization.portions)},
                    {"plan", encode_plan(optimization.plan)},
                    {"outer_iterations", optimization.outer_iterations},
                    {"inner_iterations", optimization.inner_iterations},
                    {"final_mu_change",
                     encode_double(optimization.final_mu_change)}}},
      {"solve_seconds", encode_double(report.solve_seconds)},
      {"queue_wait_seconds", encode_double(report.queue_wait_seconds)},
      {"cache_hit", report.cache_hit}};
}

std::string encode_report_line(const svc::PlanReport& report, long version) {
  return json::dump(json::Object{
      {"ok", true}, {"report", encode_report(report)}, {"v", version}});
}

bool decode_report(const json::Value& value, svc::PlanReport* out,
                   std::string* error) {
  try {
    if (!value.is_object()) decode_fail("report", "must be a JSON object");
    svc::PlanReport report;
    report.label = get_string_or(value, "label", "");
    const std::string solution = require(value, "solution").as_string();
    if (!solution_from_string(solution, &report.solution)) {
      decode_fail("report.solution", "unknown solution '" + solution + "'");
    }
    report.key = get_string_or(value, "key", "");
    const std::string status = require(value, "status").as_string();
    if (!status_from_string(status, &report.status)) {
      decode_fail("report.status", "unknown status '" + status + "'");
    }
    report.message = get_string_or(value, "message", "");

    report.planned.solution = report.solution;
    for (const json::Value& enabled :
         require(value, "level_enabled").as_array()) {
      report.planned.level_enabled.push_back(enabled.as_bool());
    }
    report.planned.full_plan = decode_plan(require(value, "plan"));

    const json::Value& optimization = require(value, "optimization");
    opt::Algorithm1Result& result = report.planned.optimization;
    result.status = report.status;
    result.message = report.message;
    result.converged = report.status == opt::Status::kOk;
    result.wallclock = get_double(optimization, "wallclock");
    result.portions = decode_portions(require(optimization, "portions"));
    result.plan = decode_plan(require(optimization, "plan"));
    result.outer_iterations =
        static_cast<int>(get_long(optimization, "outer_iterations"));
    result.inner_iterations =
        static_cast<int>(get_long(optimization, "inner_iterations"));
    result.final_mu_change = get_double(optimization, "final_mu_change");

    report.solve_seconds = get_double(value, "solve_seconds");
    report.queue_wait_seconds = get_double(value, "queue_wait_seconds");
    report.cache_hit = get_bool_or(value, "cache_hit", false);
    *out = std::move(report);
    return true;
  } catch (const common::Error& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
}

std::string encode_rejection_line(Reject reason, const std::string& message,
                                  long version) {
  return json::dump(json::Object{{"ok", false},
                                 {"rejected", to_string(reason)},
                                 {"message", message},
                                 {"v", version}});
}

std::string encode_unknown_op_line(const std::string& op, long version) {
  std::string joined;
  json::Array supported;
  for (const std::string& known : supported_ops()) {
    if (!joined.empty()) joined += "|";
    joined += known;
    supported.push_back(known);
  }
  return json::dump(
      json::Object{{"ok", false},
                   {"rejected", to_string(Reject::kBadRequest)},
                   {"message", "op: unknown \"" + op + "\" (supported: " +
                                   joined + ")"},
                   {"supported", std::move(supported)},
                   {"v", version}});
}

bool decode_response(const std::string& line, Response* out,
                     std::string* error) {
  const auto parsed = json::parse(line, error);
  if (!parsed.has_value()) return false;
  try {
    if (!envelope_version_ok(*parsed, error)) return false;
    const bool ok = require(*parsed, "ok").as_bool();
    if (ok) {
      out->accepted = true;
      return decode_report(require(*parsed, "report"), &out->report, error);
    }
    out->accepted = false;
    const std::string reason = require(*parsed, "rejected").as_string();
    if (!reject_from_string(reason, &out->reject)) {
      decode_fail("rejected", "unknown reason '" + reason + "'");
    }
    out->message = get_string_or(*parsed, "message", "");
    return true;
  } catch (const common::Error& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
}

json::Value encode_sim_request(const svc::SimRequest& request,
                               long deadline_ms) {
  json::Object envelope = encode_op_envelope("validate", request.plan_request());
  envelope.emplace("monte_carlo", encode_monte_carlo(request.monte_carlo));
  // The coarse default stays implicit so pre-backend peers decode the same
  // request they always did.
  if (request.backend != svc::SimBackend::kCoarse) {
    envelope.emplace("backend", svc::to_string(request.backend));
  }
  if (deadline_ms != 0) {
    envelope.emplace("deadline_ms", json::Value(deadline_ms));
  }
  return json::Value(std::move(envelope));
}

std::string encode_sim_request_line(const svc::SimRequest& request,
                                    long deadline_ms) {
  return json::dump(encode_sim_request(request, deadline_ms));
}

std::optional<svc::SimRequest> decode_sim_request(const json::Value& envelope,
                                                  long* deadline_ms,
                                                  std::string* error) {
  try {
    check_envelope(envelope, "validate");
    svc::PlanRequest base = decode_plan_fields(envelope);
    sim::MonteCarloOptions monte_carlo;
    if (const json::Value* member = envelope.find("monte_carlo")) {
      if (!member->is_object()) {
        decode_fail("monte_carlo", "must be a JSON object");
      }
      monte_carlo = decode_monte_carlo(*member);
    }
    // Surface invalid Monte-Carlo options (runs <= 0, sentinel seed,
    // non-finite sim horizons) as a structured bad_request right here.
    sim::validate(monte_carlo);
    const svc::SimBackend backend = decode_backend(envelope);
    *deadline_ms = get_long_or(envelope, "deadline_ms", 0);
    return svc::SimRequest{std::move(base.config), base.solution,
                           base.options,           monte_carlo,
                           backend,                std::move(base.label)};
  } catch (const common::Error& e) {
    if (error != nullptr) *error = e.what();
    return std::nullopt;
  }
}

json::Value encode_sim_report(const svc::SimReport& report) {
  json::Object out{
      {"label", report.label},
      {"key", report.key},
      {"status", opt::to_string(report.status)},
      {"message", report.message},
      {"plan", encode_report(report.plan)},
      {"simulated",
       json::Object{{"wallclock", encode_summary(report.wallclock)},
                    {"productive", encode_summary(report.productive)},
                    {"checkpoint", encode_summary(report.checkpoint)},
                    {"restart", encode_summary(report.restart)},
                    {"rollback", encode_summary(report.rollback)},
                    {"efficiency", encode_summary(report.efficiency)},
                    {"failures", encode_summary(report.failures)}}},
      {"runs", static_cast<long>(report.runs)},
      {"incomplete_runs", static_cast<long>(report.incomplete_runs)}};
  // Emitted only for non-default backends: a coarse report's bytes are
  // identical to what a v1 build produced (decoders read absent as coarse).
  if (report.backend != svc::SimBackend::kCoarse) {
    out.emplace("backend", svc::to_string(report.backend));
  }
  out.emplace("error",
              json::Object{{"wallclock", encode_double(report.wallclock_error)},
                           {"portions", encode_portions(report.portion_errors)}});
  out.emplace("sim_seconds", encode_double(report.sim_seconds));
  out.emplace("cache_hit", report.cache_hit);
  return out;
}

std::string encode_sim_report_line(const svc::SimReport& report,
                                   long version) {
  return json::dump(json::Object{{"ok", true},
                                 {"sim_report", encode_sim_report(report)},
                                 {"v", version}});
}

bool decode_sim_report(const json::Value& value, svc::SimReport* out,
                       std::string* error) {
  try {
    if (!value.is_object()) {
      decode_fail("sim_report", "must be a JSON object");
    }
    svc::SimReport report;
    report.label = get_string_or(value, "label", "");
    report.key = get_string_or(value, "key", "");
    const std::string status = require(value, "status").as_string();
    if (!status_from_string(status, &report.status)) {
      decode_fail("sim_report.status", "unknown status '" + status + "'");
    }
    report.message = get_string_or(value, "message", "");
    std::string plan_error;
    if (!decode_report(require(value, "plan"), &report.plan, &plan_error)) {
      decode_fail("sim_report.plan", plan_error);
    }
    const json::Value& simulated = require(value, "simulated");
    report.wallclock =
        decode_summary(require(simulated, "wallclock"), "simulated.wallclock");
    report.productive = decode_summary(require(simulated, "productive"),
                                       "simulated.productive");
    report.checkpoint = decode_summary(require(simulated, "checkpoint"),
                                       "simulated.checkpoint");
    report.restart =
        decode_summary(require(simulated, "restart"), "simulated.restart");
    report.rollback =
        decode_summary(require(simulated, "rollback"), "simulated.rollback");
    report.efficiency = decode_summary(require(simulated, "efficiency"),
                                       "simulated.efficiency");
    report.failures =
        decode_summary(require(simulated, "failures"), "simulated.failures");
    report.runs = static_cast<int>(get_long(value, "runs"));
    report.incomplete_runs = get_long(value, "incomplete_runs");
    report.backend = decode_backend(value);
    const json::Value& errors = require(value, "error");
    report.wallclock_error = get_double(errors, "wallclock");
    report.portion_errors = decode_portions(require(errors, "portions"));
    report.sim_seconds = get_double(value, "sim_seconds");
    report.cache_hit = get_bool_or(value, "cache_hit", false);
    *out = std::move(report);
    return true;
  } catch (const common::Error& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
}

bool decode_sim_response(const std::string& line, SimResponse* out,
                         std::string* error) {
  const auto parsed = json::parse(line, error);
  if (!parsed.has_value()) return false;
  try {
    if (!envelope_version_ok(*parsed, error)) return false;
    const bool ok = require(*parsed, "ok").as_bool();
    if (ok) {
      out->accepted = true;
      return decode_sim_report(require(*parsed, "sim_report"), &out->report,
                               error);
    }
    out->accepted = false;
    const std::string reason = require(*parsed, "rejected").as_string();
    if (!reject_from_string(reason, &out->reject)) {
      decode_fail("rejected", "unknown reason '" + reason + "'");
    }
    out->message = get_string_or(*parsed, "message", "");
    return true;
  } catch (const common::Error& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
}

json::Value encode_ingest_request(const ctrl::IngestRequest& request) {
  json::Object envelope = encode_op_envelope("ingest", request.base);
  envelope.emplace("trace", sim::trace_to_string(request.trace));
  if (request.observed_seconds > 0.0) {
    envelope.emplace("observed_seconds",
                     encode_double(request.observed_seconds));
  }
  if (request.observed_scale > 0.0) {
    envelope.emplace("observed_scale", encode_double(request.observed_scale));
  }
  return json::Value(std::move(envelope));
}

std::string encode_ingest_request_line(const ctrl::IngestRequest& request) {
  return json::dump(encode_ingest_request(request));
}

std::optional<ctrl::IngestRequest> decode_ingest_request(
    const json::Value& envelope, std::string* error) {
  try {
    check_envelope(envelope, "ingest");
    ctrl::IngestRequest request(decode_plan_fields(envelope));
    const json::Value& trace = require(envelope, "trace");
    if (!trace.is_string()) {
      decode_fail("trace", "must be a string in the mlcr trace text format");
    }
    request.trace = sim::trace_from_string(trace.as_string(),
                                           request.base.config.levels());
    if (const json::Value* member = envelope.find("observed_seconds")) {
      std::string field_error;
      if (!decode_double(*member, &request.observed_seconds, &field_error)) {
        decode_fail("observed_seconds", field_error);
      }
    }
    if (const json::Value* member = envelope.find("observed_scale")) {
      std::string field_error;
      if (!decode_double(*member, &request.observed_scale, &field_error)) {
        decode_fail("observed_scale", field_error);
      }
    }
    return request;
  } catch (const common::Error& e) {
    if (error != nullptr) *error = e.what();
    return std::nullopt;
  }
}

json::Value encode_ingest_report(const ctrl::IngestReport& report) {
  json::Array levels;
  for (const ctrl::LevelEstimate& level : report.levels) {
    levels.push_back(json::Object{
        {"events", static_cast<long>(level.events)},
        {"exposure_seconds", encode_double(level.exposure_seconds)},
        {"rate_mle", encode_double(level.rate_mle)},
        {"rate_posterior", encode_double(level.rate_posterior)},
        {"baseline_rate", encode_double(level.baseline_rate)},
        {"cusum_statistic", encode_double(level.cusum_statistic)},
        {"cusum_alarm", level.cusum_alarm},
        {"drift", level.drift}});
  }
  return json::Object{{"key", report.key},
                      {"label", report.label},
                      {"batch_events", static_cast<long>(report.batch_events)},
                      {"total_events", static_cast<long>(report.total_events)},
                      {"levels", std::move(levels)},
                      {"drift_detected", report.drift_detected},
                      {"replanned", report.replanned},
                      {"plan_epoch", static_cast<long>(report.plan_epoch)}};
}

std::string encode_ingest_report_line(const ctrl::IngestReport& report,
                                      long version) {
  return json::dump(json::Object{{"ok", true},
                                 {"ingest", encode_ingest_report(report)},
                                 {"v", version}});
}

bool decode_ingest_report(const json::Value& value, ctrl::IngestReport* out,
                          std::string* error) {
  try {
    if (!value.is_object()) decode_fail("ingest", "must be a JSON object");
    ctrl::IngestReport report;
    report.key = get_string_or(value, "key", "");
    report.label = get_string_or(value, "label", "");
    report.batch_events =
        static_cast<std::uint64_t>(get_long(value, "batch_events"));
    report.total_events =
        static_cast<std::uint64_t>(get_long(value, "total_events"));
    for (const json::Value& level : require(value, "levels").as_array()) {
      ctrl::LevelEstimate estimate;
      estimate.events = static_cast<std::uint64_t>(get_long(level, "events"));
      estimate.exposure_seconds = get_double(level, "exposure_seconds");
      estimate.rate_mle = get_double(level, "rate_mle");
      estimate.rate_posterior = get_double(level, "rate_posterior");
      estimate.baseline_rate = get_double(level, "baseline_rate");
      estimate.cusum_statistic = get_double(level, "cusum_statistic");
      estimate.cusum_alarm = get_bool_or(level, "cusum_alarm", false);
      estimate.drift = get_bool_or(level, "drift", false);
      report.levels.push_back(estimate);
    }
    report.drift_detected = get_bool_or(value, "drift_detected", false);
    report.replanned = get_bool_or(value, "replanned", false);
    report.plan_epoch =
        static_cast<std::uint64_t>(get_long_or(value, "plan_epoch", 0));
    *out = std::move(report);
    return true;
  } catch (const common::Error& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
}

bool decode_ingest_response(const std::string& line, IngestResponse* out,
                            std::string* error) {
  const auto parsed = json::parse(line, error);
  if (!parsed.has_value()) return false;
  try {
    if (!envelope_version_ok(*parsed, error)) return false;
    const bool ok = require(*parsed, "ok").as_bool();
    if (ok) {
      out->accepted = true;
      return decode_ingest_report(require(*parsed, "ingest"), &out->report,
                                  error);
    }
    out->accepted = false;
    return decode_rejection_fields(*parsed, &out->reject, &out->message);
  } catch (const common::Error& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
}

std::string encode_subscribe_request_line(const svc::PlanRequest& request) {
  return json::dump(json::Value(encode_op_envelope("subscribe", request)));
}

std::optional<svc::PlanRequest> decode_subscribe_request(
    const json::Value& envelope, std::string* error) {
  try {
    check_envelope(envelope, "subscribe");
    return decode_plan_fields(envelope);
  } catch (const common::Error& e) {
    if (error != nullptr) *error = e.what();
    return std::nullopt;
  }
}

std::string encode_subscribe_ack_line(const std::string& key,
                                      std::uint64_t plan_epoch,
                                      long version) {
  return json::dump(json::Object{{"ok", true},
                                 {"subscribed", true},
                                 {"key", key},
                                 {"plan_epoch", static_cast<long>(plan_epoch)},
                                 {"v", version}});
}

bool decode_subscribe_response(const std::string& line, SubscribeResponse* out,
                               std::string* error) {
  const auto parsed = json::parse(line, error);
  if (!parsed.has_value()) return false;
  try {
    if (!envelope_version_ok(*parsed, error)) return false;
    const bool ok = require(*parsed, "ok").as_bool();
    if (ok) {
      if (!get_bool_or(*parsed, "subscribed", false)) {
        decode_fail("subscribed", "missing from subscribe ack");
      }
      out->accepted = true;
      out->key = require(*parsed, "key").as_string();
      out->plan_epoch =
          static_cast<std::uint64_t>(get_long_or(*parsed, "plan_epoch", 0));
      return true;
    }
    out->accepted = false;
    return decode_rejection_fields(*parsed, &out->reject, &out->message);
  } catch (const common::Error& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
}

std::string encode_plan_event_line(const std::string& key,
                                   std::uint64_t plan_epoch,
                                   const svc::PlanReport& report,
                                   long version) {
  return json::dump(json::Object{{"event", "plan"},
                                 {"key", key},
                                 {"plan_epoch", static_cast<long>(plan_epoch)},
                                 {"report", encode_report(report)},
                                 {"v", version}});
}

std::string encode_drained_event_line(long version) {
  return json::dump(json::Object{{"event", "drained"}, {"v", version}});
}

bool decode_push_event(const std::string& line, PushEvent* out,
                       std::string* error) {
  const auto parsed = json::parse(line, error);
  if (!parsed.has_value()) return false;
  try {
    if (!parsed->is_object()) decode_fail("event", "must be a JSON object");
    if (!envelope_version_ok(*parsed, error)) return false;
    const json::Value* event = parsed->find("event");
    if (event == nullptr || !event->is_string()) {
      decode_fail("event", "not a push event line");
    }
    const std::string& kind = event->as_string();
    if (kind == "drained") {
      out->kind = PushEvent::Kind::kDrained;
      return true;
    }
    if (kind != "plan") {
      decode_fail("event", "unknown push event '" + kind + "'");
    }
    out->kind = PushEvent::Kind::kPlan;
    out->key = require(*parsed, "key").as_string();
    out->plan_epoch =
        static_cast<std::uint64_t>(get_long_or(*parsed, "plan_epoch", 0));
    return decode_report(require(*parsed, "report"), &out->report, error);
  } catch (const common::Error& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
}

std::string deterministic_fingerprint(svc::PlanReport report) {
  report.solve_seconds = 0.0;
  report.queue_wait_seconds = 0.0;
  report.cache_hit = false;
  return json::dump(encode_report(report));
}

std::string deterministic_fingerprint(svc::SimReport report) {
  report.sim_seconds = 0.0;
  report.cache_hit = false;
  report.plan.solve_seconds = 0.0;
  report.plan.queue_wait_seconds = 0.0;
  report.plan.cache_hit = false;
  return json::dump(encode_sim_report(report));
}

}  // namespace mlcr::net
