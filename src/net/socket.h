// Thin RAII wrappers over POSIX TCP sockets: every fd has exactly one
// owner, every blocking wait has a bounded timeout (so drain flags are
// observed within one poll tick), and reads are framed into '\n'-terminated
// protocol lines with a hard length cap — a hostile peer cannot grow the
// buffer without bound.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace mlcr::net {

/// Owning file descriptor; move-only, closed on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Buffered, line-oriented view of a connected socket.
class Connection {
 public:
  /// Lines longer than this are a protocol violation (kError).
  static constexpr std::size_t kMaxLineBytes = 4u << 20;

  explicit Connection(Socket socket) noexcept : socket_(std::move(socket)) {}

  enum class ReadResult { kLine, kEof, kTimeout, kError };

  /// Reads up to the next '\n' (stripped; a preceding '\r' is stripped
  /// too).  `timeout_ms < 0` blocks indefinitely.  kTimeout leaves any
  /// partial line buffered for the next call.
  [[nodiscard]] ReadResult read_line(std::string* line, int timeout_ms = -1);

  /// Sends all of `data` (+ '\n'); false on any transport error.
  [[nodiscard]] bool write_line(std::string_view data);
  [[nodiscard]] bool write_all(std::string_view data);

  [[nodiscard]] bool valid() const noexcept { return socket_.valid(); }

 private:
  Socket socket_;
  std::string buffer_;  ///< received bytes not yet returned as lines
};

/// Listening socket bound to 127.0.0.1.
class Listener {
 public:
  /// Binds and listens on 127.0.0.1:`port` (0 picks an ephemeral port).
  /// Throws common::Error on failure.
  static Listener bind_loopback(std::uint16_t port);

  /// The actual bound port (resolves ephemeral binds).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Waits up to `timeout_ms` for one connection; nullopt on timeout or
  /// EINTR (callers re-check their stop flags and loop).
  [[nodiscard]] std::optional<Socket> accept_for(int timeout_ms);

  void close() noexcept { socket_.close(); }
  [[nodiscard]] bool valid() const noexcept { return socket_.valid(); }

 private:
  Listener(Socket socket, std::uint16_t port) noexcept
      : socket_(std::move(socket)), port_(port) {}

  Socket socket_;
  std::uint16_t port_ = 0;
};

/// Connects to host:port with a bounded timeout.  Throws common::Error on
/// resolution/connect failure.
[[nodiscard]] Socket connect_to(const std::string& host, std::uint16_t port,
                                int timeout_ms);

}  // namespace mlcr::net
