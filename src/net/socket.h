// Thin RAII wrappers over POSIX TCP sockets: every fd has exactly one
// owner, every blocking wait has a bounded timeout (so drain flags are
// observed within one poll tick), and reads are framed into '\n'-terminated
// protocol lines with a hard length cap — a hostile peer cannot grow the
// buffer without bound.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/codec.h"

namespace mlcr::net {

/// Owning file descriptor; move-only, closed on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Buffered, line-oriented view of a connected socket.
class Connection {
 public:
  /// Lines longer than this are a protocol violation (kError).
  static constexpr std::size_t kMaxLineBytes = 4u << 20;

  explicit Connection(Socket socket) noexcept : socket_(std::move(socket)) {}

  enum class ReadResult { kLine, kEof, kTimeout, kError };

  /// Reads up to the next '\n' (stripped; a preceding '\r' is stripped
  /// too).  `timeout_ms < 0` blocks indefinitely.  kTimeout leaves any
  /// partial line buffered for the next call.
  [[nodiscard]] ReadResult read_line(std::string* line, int timeout_ms = -1);

  /// Reads one codec frame through `reader` (which owns the framing
  /// buffer): kLine = one payload extracted into *payload.  Do not mix with
  /// read_line on the same connection — the two keep separate buffers.
  /// kTimeout leaves partial frames buffered in the reader.
  [[nodiscard]] ReadResult read_frame(FrameReader* reader,
                                      std::string* payload,
                                      int timeout_ms = -1);

  /// Sends all of `data` (+ '\n'); false on any transport error.
  [[nodiscard]] bool write_line(std::string_view data);
  [[nodiscard]] bool write_all(std::string_view data);

  [[nodiscard]] bool valid() const noexcept { return socket_.valid(); }

 private:
  Socket socket_;
  std::string buffer_;  ///< received bytes not yet returned as lines
};

/// Listening socket bound to 127.0.0.1.
class Listener {
 public:
  /// Binds and listens on 127.0.0.1:`port` (0 picks an ephemeral port).
  /// Throws common::Error on failure.
  static Listener bind_loopback(std::uint16_t port);

  /// The actual bound port (resolves ephemeral binds).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Waits up to `timeout_ms` for one connection; nullopt on timeout or
  /// EINTR (callers re-check their stop flags and loop).
  [[nodiscard]] std::optional<Socket> accept_for(int timeout_ms);

  /// One non-blocking accept (the listener must be set_nonblocking first);
  /// nullopt when no connection is pending.  Reactor accept loops call this
  /// until it returns nullopt.
  [[nodiscard]] std::optional<Socket> accept_nonblocking();

  void close() noexcept { socket_.close(); }
  [[nodiscard]] bool valid() const noexcept { return socket_.valid(); }
  [[nodiscard]] int fd() const noexcept { return socket_.fd(); }

 private:
  Listener(Socket socket, std::uint16_t port) noexcept
      : socket_(std::move(socket)), port_(port) {}

  Socket socket_;
  std::uint16_t port_ = 0;
};

/// Connects to host:port with a bounded timeout.  Throws common::Error on
/// resolution/connect failure.
[[nodiscard]] Socket connect_to(const std::string& host, std::uint16_t port,
                                int timeout_ms);

/// Switches `fd` to non-blocking mode; throws common::Error on failure.
/// Every socket owned by a reactor must pass through this before
/// registration — the reactor contract is that no handler ever blocks.
void set_nonblocking(int fd);

/// Best-effort TCP_NODELAY: request/response frames are small and latency
/// matters more than batching.  Failure is ignored (e.g. non-TCP fd in
/// tests).
void set_tcp_nodelay(int fd) noexcept;

/// Outcome of one non-blocking transfer attempt.
enum class IoStatus {
  kOk,          ///< made progress
  kWouldBlock,  ///< kernel buffer empty/full; wait for the next epoll event
  kEof,         ///< orderly peer shutdown (recv only)
  kError,       ///< transport fault; close the connection
};

/// One non-blocking recv; kOk appends the received bytes to *buffer.  The
/// fd must already be non-blocking.  Reactor read loops call this until
/// kWouldBlock.
[[nodiscard]] IoStatus recv_nonblocking(int fd, std::string* buffer);

/// One non-blocking send of as much of `data` as the kernel accepts; *sent
/// receives the byte count on kOk (possibly short).
[[nodiscard]] IoStatus send_nonblocking(int fd, std::string_view data,
                                        std::size_t* sent);

}  // namespace mlcr::net
