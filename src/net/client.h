// Client side of the mlcrd protocol: one TCP connection, blocking
// request/response with a bounded timeout per round trip.  Transport
// failures (connect, timeout, dropped connection, unparseable response)
// throw common::Error; protocol-level rejections come back as a structured
// Response so callers can distinguish "overloaded" from "deadline" from
// "bad_request" without string matching.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/codec.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "svc/plan_request.h"

namespace mlcr::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Per round trip (connect, and each response wait).  Plans can solve for
  /// seconds, so this is generous by default.
  int timeout_ms = 60000;
  /// Wire framing (net/codec.h).  The server detects the codec from the
  /// first byte this client sends and answers in kind; the payload bytes —
  /// and therefore every report — are bit-identical under either codec.
  Codec codec = Codec::kJson;
};

class Client {
 public:
  /// Connects immediately; throws common::Error on failure.
  explicit Client(const ClientOptions& options);

  /// Sends one plan request; `deadline_ms` as in the protocol (0 = server
  /// default, < 0 = already expired, > 0 = budget).  The returned Response
  /// is either an accepted report (bit-identical to the in-process
  /// PlanReport) or a structured rejection.
  [[nodiscard]] Response plan(const svc::PlanRequest& request,
                              long deadline_ms = 0);

  /// Sends one validation request ({"op":"validate"}); same deadline
  /// semantics as plan().  The accepted SimReport is bit-identical to the
  /// in-process SweepEngine::validate_one result (timing fields aside).
  [[nodiscard]] SimResponse validate(const svc::SimRequest& request,
                                     long deadline_ms = 0);

  /// Sends one trace batch ({"op":"ingest"}); an accepted response carries
  /// the per-level estimator state after the batch was folded in.
  [[nodiscard]] IngestResponse ingest(const ctrl::IngestRequest& request);

  /// Upgrades this connection to a plan subscriber ({"op":"subscribe"}).
  /// After an accepted ack the server can push revised plans at any time —
  /// drain them with poll_event().  Do not mix further request/response
  /// calls on a subscribed connection: a push arriving between the request
  /// and its response would be mistaken for the response.
  [[nodiscard]] SubscribeResponse subscribe(const svc::PlanRequest& request);

  /// Waits up to `timeout_ms` for one pushed event on a subscribed
  /// connection.  nullopt on timeout; throws common::Error on EOF,
  /// transport error, or an unparseable line.
  [[nodiscard]] std::optional<PushEvent> poll_event(int timeout_ms);

  /// True when the daemon answered the ping.
  [[nodiscard]] bool ping();

  /// The daemon's metrics registry as raw JSONL (one instrument per line).
  [[nodiscard]] std::string metrics();

 private:
  /// Frames and writes `payload`, reads one response payload; throws on
  /// transport failure.
  [[nodiscard]] std::string round_trip(const std::string& payload);
  [[nodiscard]] std::string read_payload_or_throw();

  Connection connection_;
  int timeout_ms_;
  Codec codec_;
  FrameReader reader_;  ///< pinned to codec_ (no autodetect on responses)
};

}  // namespace mlcr::net
