#include "net/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/error.h"
#include "net/textnum.h"

namespace mlcr::net::json {

namespace {

const char* kind_name(Value::Kind kind) {
  switch (kind) {
    case Value::Kind::kNull: return "null";
    case Value::Kind::kBool: return "bool";
    case Value::Kind::kNumber: return "number";
    case Value::Kind::kString: return "string";
    case Value::Kind::kArray: return "array";
    case Value::Kind::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void kind_mismatch(Value::Kind want, Value::Kind got) {
  common::fail(std::string("json: expected ") + kind_name(want) + ", got " +
               kind_name(got));
}

/// Recursive-descent parser over the raw text.  Nesting is bounded so a
/// hostile "[[[[..." line cannot overflow the stack.
class Parser {
 public:
  static constexpr int kMaxDepth = 64;

  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<Value> run() {
    Value value;
    if (!parse_value(&value, 0)) return std::nullopt;
    skip_whitespace();
    if (pos_ != text_.size()) {
      set_error("trailing characters after JSON document");
      return std::nullopt;
    }
    return value;
  }

 private:
  void set_error(const std::string& message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = "json: " + message + " at offset " +
                dec(static_cast<long long>(pos_));
    }
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool expect(char c) {
    if (consume(c)) return true;
    set_error(std::string("expected '") + c + "'");
    return false;
  }

  bool parse_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    set_error("invalid literal");
    return false;
  }

  bool parse_value(Value* out, int depth) {
    if (depth > kMaxDepth) {
      set_error("nesting too deep");
      return false;
    }
    skip_whitespace();
    if (pos_ >= text_.size()) {
      set_error("unexpected end of input");
      return false;
    }
    switch (text_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = Value(std::move(s));
        return true;
      }
      case 't':
        if (!parse_literal("true")) return false;
        *out = Value(true);
        return true;
      case 'f':
        if (!parse_literal("false")) return false;
        *out = Value(false);
        return true;
      case 'n':
        if (!parse_literal("null")) return false;
        *out = Value();
        return true;
      default: return parse_number(out);
    }
  }

  bool parse_object(Value* out, int depth) {
    ++pos_;  // '{'
    Object object;
    skip_whitespace();
    if (consume('}')) {
      *out = Value(std::move(object));
      return true;
    }
    while (true) {
      skip_whitespace();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_whitespace();
      if (!expect(':')) return false;
      Value value;
      if (!parse_value(&value, depth + 1)) return false;
      object.insert_or_assign(std::move(key), std::move(value));
      skip_whitespace();
      if (consume(',')) continue;
      if (consume('}')) break;
      set_error("expected ',' or '}' in object");
      return false;
    }
    *out = Value(std::move(object));
    return true;
  }

  bool parse_array(Value* out, int depth) {
    ++pos_;  // '['
    Array array;
    skip_whitespace();
    if (consume(']')) {
      *out = Value(std::move(array));
      return true;
    }
    while (true) {
      Value value;
      if (!parse_value(&value, depth + 1)) return false;
      array.push_back(std::move(value));
      skip_whitespace();
      if (consume(',')) continue;
      if (consume(']')) break;
      set_error("expected ',' or ']' in array");
      return false;
    }
    *out = Value(std::move(array));
    return true;
  }

  bool parse_hex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) {
      set_error("truncated \\u escape");
      return false;
    }
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else {
        set_error("invalid \\u escape");
        return false;
      }
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  static void append_utf8(std::string* out, unsigned codepoint) {
    if (codepoint < 0x80) {
      out->push_back(static_cast<char>(codepoint));
    } else if (codepoint < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (codepoint >> 6)));
      out->push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
    } else if (codepoint < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (codepoint >> 12)));
      out->push_back(static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (codepoint >> 18)));
      out->push_back(static_cast<char>(0x80 | ((codepoint >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
    }
  }

  bool parse_string(std::string* out) {
    if (!expect('"')) return false;
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) {
        set_error("unterminated string");
        return false;
      }
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        set_error("raw control character in string");
        return false;
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        set_error("truncated escape");
        return false;
      }
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned codepoint = 0;
          if (!parse_hex4(&codepoint)) return false;
          if (codepoint >= 0xD800 && codepoint <= 0xDBFF) {
            // High surrogate: must pair with \uDC00-\uDFFF.
            if (!(consume('\\') && consume('u'))) {
              set_error("unpaired surrogate");
              return false;
            }
            unsigned low = 0;
            if (!parse_hex4(&low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              set_error("invalid low surrogate");
              return false;
            }
            codepoint =
                0x10000 + ((codepoint - 0xD800) << 10) + (low - 0xDC00);
          } else if (codepoint >= 0xDC00 && codepoint <= 0xDFFF) {
            set_error("unpaired surrogate");
            return false;
          }
          append_utf8(out, codepoint);
          break;
        }
        default: set_error("invalid escape"); return false;
      }
    }
  }

  bool parse_number(Value* out) {
    const std::size_t start = pos_;
    if (consume('-')) {}
    if (consume('0')) {
      // No leading zeros: "01" is invalid JSON.
    } else if (pos_ < text_.size() && text_[pos_] >= '1' && text_[pos_] <= '9') {
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    } else {
      set_error("invalid number");
      return false;
    }
    if (consume('.')) {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        set_error("invalid number");
        return false;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        set_error("invalid number");
        return false;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    double value = 0.0;
    if (!parse_double(text_.substr(start, pos_ - start), &value) ||
        !std::isfinite(value)) {
      set_error("number out of range");
      return false;
    }
    *out = Value(value);
    return true;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

void dump_string(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void dump_value(const Value& value, std::string* out) {
  switch (value.kind()) {
    case Value::Kind::kNull: *out += "null"; return;
    case Value::Kind::kBool: *out += value.as_bool() ? "true" : "false"; return;
    case Value::Kind::kNumber: {
      const double v = value.as_number();
      MLCR_EXPECT(std::isfinite(v), "json: cannot encode non-finite number");
      char buf[40];
      // Integers (the common case: iteration counts, line counts) render
      // without an exponent; everything else round-trips via %.17g.
      const auto format = v == std::floor(v) && std::fabs(v) < 9.007199254740992e15
                              ? std::chars_format::fixed
                              : std::chars_format::general;
      const auto end = std::to_chars(buf, buf + sizeof(buf), v, format);
      out->append(buf, end.ptr);
      return;
    }
    case Value::Kind::kString: dump_string(value.as_string(), out); return;
    case Value::Kind::kArray: {
      out->push_back('[');
      const Array& array = value.as_array();
      for (std::size_t i = 0; i < array.size(); ++i) {
        if (i > 0) out->push_back(',');
        dump_value(array[i], out);
      }
      out->push_back(']');
      return;
    }
    case Value::Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, member] : value.as_object()) {
        if (!first) out->push_back(',');
        first = false;
        dump_string(key, out);
        out->push_back(':');
        dump_value(member, out);
      }
      out->push_back('}');
      return;
    }
  }
}

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) kind_mismatch(Kind::kBool, kind_);
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::kNumber) kind_mismatch(Kind::kNumber, kind_);
  return number_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) kind_mismatch(Kind::kString, kind_);
  return string_;
}

const Array& Value::as_array() const {
  if (kind_ != Kind::kArray) kind_mismatch(Kind::kArray, kind_);
  return array_;
}

const Object& Value::as_object() const {
  if (kind_ != Kind::kObject) kind_mismatch(Kind::kObject, kind_);
  return object_;
}

const Value* Value::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::optional<Value> parse(std::string_view text, std::string* error) {
  if (error != nullptr) error->clear();
  return Parser(text, error).run();
}

std::string dump(const Value& value) {
  std::string out;
  dump_value(value, &out);
  return out;
}

}  // namespace mlcr::net::json
