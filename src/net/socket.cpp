#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"
#include "net/textnum.h"

namespace mlcr::net {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  common::fail("net: " + what + ": " + std::strerror(errno));
}

/// poll() one fd for `events`; 1 = ready, 0 = timeout/EINTR, -1 = error.
int poll_one(int fd, short events, int timeout_ms) {
  struct pollfd pfd = {};
  pfd.fd = fd;
  pfd.events = events;
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc < 0) return errno == EINTR ? 0 : -1;
  if (rc == 0) return 0;
  if ((pfd.revents & (events | POLLHUP | POLLERR)) != 0) return 1;
  return 0;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Connection::ReadResult Connection::read_line(std::string* line,
                                             int timeout_ms) {
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::size_t end = newline;
      if (end > 0 && buffer_[end - 1] == '\r') --end;
      line->assign(buffer_, 0, end);
      buffer_.erase(0, newline + 1);
      return ReadResult::kLine;
    }
    if (buffer_.size() > kMaxLineBytes) return ReadResult::kError;
    if (!socket_.valid()) return ReadResult::kEof;

    const int ready = poll_one(socket_.fd(), POLLIN, timeout_ms);
    if (ready < 0) return ReadResult::kError;
    if (ready == 0) return ReadResult::kTimeout;

    char chunk[4096];
    const ssize_t received = ::recv(socket_.fd(), chunk, sizeof(chunk), 0);
    if (received < 0) {
      if (errno == EINTR) continue;
      return ReadResult::kError;
    }
    if (received == 0) {
      // Orderly shutdown; a partial unterminated line is dropped.
      return ReadResult::kEof;
    }
    buffer_.append(chunk, static_cast<std::size_t>(received));
  }
}

Connection::ReadResult Connection::read_frame(FrameReader* reader,
                                              std::string* payload,
                                              int timeout_ms) {
  while (true) {
    std::string frame_error;
    switch (reader->next(payload, &frame_error)) {
      case FrameReader::Result::kFrame:
        return ReadResult::kLine;
      case FrameReader::Result::kError:
        return ReadResult::kError;
      case FrameReader::Result::kNeedMore:
        break;
    }
    if (!socket_.valid()) return ReadResult::kEof;

    const int ready = poll_one(socket_.fd(), POLLIN, timeout_ms);
    if (ready < 0) return ReadResult::kError;
    if (ready == 0) return ReadResult::kTimeout;

    char chunk[4096];
    const ssize_t received = ::recv(socket_.fd(), chunk, sizeof(chunk), 0);
    if (received < 0) {
      if (errno == EINTR) continue;
      return ReadResult::kError;
    }
    if (received == 0) return ReadResult::kEof;
    reader->feed(
        std::string_view(chunk, static_cast<std::size_t>(received)));
  }
}

bool Connection::write_all(std::string_view data) {
  while (!data.empty()) {
    const ssize_t sent =
        ::send(socket_.fd(), data.data(), data.size(), MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(sent));
  }
  return true;
}

bool Connection::write_line(std::string_view data) {
  std::string framed(data);
  framed.push_back('\n');
  return write_all(framed);
}

Listener Listener::bind_loopback(std::uint16_t port) {
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) fail_errno("socket()");

  const int enable = 1;
  ::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof(enable));

  struct sockaddr_in address = {};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::bind(socket.fd(), reinterpret_cast<struct sockaddr*>(&address),
             sizeof(address)) != 0) {
    fail_errno("bind(127.0.0.1:" + dec(port) + ")");
  }
  if (::listen(socket.fd(), SOMAXCONN) != 0) fail_errno("listen()");

  socklen_t length = sizeof(address);
  if (::getsockname(socket.fd(),
                    reinterpret_cast<struct sockaddr*>(&address),
                    &length) != 0) {
    fail_errno("getsockname()");
  }
  return Listener(std::move(socket), ntohs(address.sin_port));
}

std::optional<Socket> Listener::accept_for(int timeout_ms) {
  const int ready = poll_one(socket_.fd(), POLLIN, timeout_ms);
  if (ready <= 0) return std::nullopt;
  const int fd = ::accept(socket_.fd(), nullptr, nullptr);
  if (fd < 0) return std::nullopt;  // EINTR / peer gone between poll+accept
  return Socket(fd);
}

std::optional<Socket> Listener::accept_nonblocking() {
  const int fd = ::accept(socket_.fd(), nullptr, nullptr);
  if (fd < 0) return std::nullopt;  // EAGAIN / EINTR / peer already gone
  return Socket(fd);
}

IoStatus recv_nonblocking(int fd, std::string* buffer) {
  char chunk[16384];
  while (true) {
    const ssize_t received = ::recv(fd, chunk, sizeof(chunk), 0);
    if (received > 0) {
      buffer->append(chunk, static_cast<std::size_t>(received));
      return IoStatus::kOk;
    }
    if (received == 0) return IoStatus::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kWouldBlock;
    return IoStatus::kError;
  }
}

IoStatus send_nonblocking(int fd, std::string_view data, std::size_t* sent) {
  *sent = 0;
  while (true) {
    const ssize_t pushed =
        ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (pushed >= 0) {
      *sent = static_cast<std::size_t>(pushed);
      return IoStatus::kOk;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kWouldBlock;
    return IoStatus::kError;
  }
}

Socket connect_to(const std::string& host, std::uint16_t port,
                  int timeout_ms) {
  struct addrinfo hints = {};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* found = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), dec(port).c_str(), &hints,
                    &found);
  if (rc != 0) {
    common::fail("net: resolve " + host + ": " + gai_strerror(rc));
  }

  Socket socket;
  std::string last_error = "no addresses";
  for (struct addrinfo* entry = found; entry != nullptr;
       entry = entry->ai_next) {
    Socket candidate(::socket(entry->ai_family, entry->ai_socktype,
                              entry->ai_protocol));
    if (!candidate.valid()) continue;
    // Non-blocking connect so the timeout is enforced.
    const int flags = ::fcntl(candidate.fd(), F_GETFL, 0);
    ::fcntl(candidate.fd(), F_SETFL, flags | O_NONBLOCK);
    const int connected =
        ::connect(candidate.fd(), entry->ai_addr, entry->ai_addrlen);
    if (connected != 0 && errno != EINPROGRESS) {
      last_error = std::strerror(errno);
      continue;
    }
    if (connected != 0) {
      if (poll_one(candidate.fd(), POLLOUT, timeout_ms) != 1) {
        last_error = "connect timed out";
        continue;
      }
      int error = 0;
      socklen_t length = sizeof(error);
      ::getsockopt(candidate.fd(), SOL_SOCKET, SO_ERROR, &error, &length);
      if (error != 0) {
        last_error = std::strerror(error);
        continue;
      }
    }
    ::fcntl(candidate.fd(), F_SETFL, flags);  // back to blocking
    socket = std::move(candidate);
    break;
  }
  ::freeaddrinfo(found);
  if (!socket.valid()) {
    common::fail("net: connect " + host + ":" + dec(port) + ": " +
                 last_error);
  }
  return socket;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    fail_errno("fcntl(O_NONBLOCK)");
  }
}

void set_tcp_nodelay(int fd) noexcept {
  const int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
}

}  // namespace mlcr::net
