#include "net/client.h"

#include <optional>
#include <utility>

#include "common/error.h"
#include "net/json.h"
#include "net/textnum.h"

namespace mlcr::net {

Client::Client(const ClientOptions& options)
    : connection_(connect_to(options.host, options.port, options.timeout_ms)),
      timeout_ms_(options.timeout_ms),
      codec_(options.codec),
      reader_(options.codec) {}

std::string Client::read_payload_or_throw() {
  std::string payload;
  switch (connection_.read_frame(&reader_, &payload, timeout_ms_)) {
    case Connection::ReadResult::kLine:
      return payload;
    case Connection::ReadResult::kEof:
      common::fail("net: connection closed by server");
    case Connection::ReadResult::kTimeout:
      common::fail("net: response timed out after " +
                   dec(timeout_ms_) + " ms");
    case Connection::ReadResult::kError:
      common::fail("net: transport error while reading response");
  }
  common::fail("net: unreachable read state");
}

std::string Client::round_trip(const std::string& payload) {
  if (!connection_.write_all(frame_payload(payload, codec_))) {
    common::fail("net: failed to send request");
  }
  return read_payload_or_throw();
}

Response Client::plan(const svc::PlanRequest& request, long deadline_ms) {
  const std::string line =
      round_trip(encode_request_line(request, deadline_ms));
  Response response;
  std::string error;
  if (!decode_response(line, &response, &error)) {
    common::fail("net: bad response: " + error);
  }
  return response;
}

SimResponse Client::validate(const svc::SimRequest& request,
                             long deadline_ms) {
  const std::string line =
      round_trip(encode_sim_request_line(request, deadline_ms));
  SimResponse response;
  std::string error;
  if (!decode_sim_response(line, &response, &error)) {
    common::fail("net: bad response: " + error);
  }
  return response;
}

IngestResponse Client::ingest(const ctrl::IngestRequest& request) {
  const std::string line = round_trip(encode_ingest_request_line(request));
  IngestResponse response;
  std::string error;
  if (!decode_ingest_response(line, &response, &error)) {
    common::fail("net: bad ingest response: " + error);
  }
  return response;
}

SubscribeResponse Client::subscribe(const svc::PlanRequest& request) {
  const std::string line = round_trip(encode_subscribe_request_line(request));
  SubscribeResponse response;
  std::string error;
  if (!decode_subscribe_response(line, &response, &error)) {
    common::fail("net: bad subscribe response: " + error);
  }
  return response;
}

std::optional<PushEvent> Client::poll_event(int timeout_ms) {
  std::string payload;
  switch (connection_.read_frame(&reader_, &payload, timeout_ms)) {
    case Connection::ReadResult::kLine:
      break;
    case Connection::ReadResult::kTimeout:
      return std::nullopt;
    case Connection::ReadResult::kEof:
      common::fail("net: connection closed by server");
    case Connection::ReadResult::kError:
      common::fail("net: transport error while waiting for push event");
  }
  PushEvent event;
  std::string error;
  if (!decode_push_event(payload, &event, &error)) {
    common::fail("net: bad push event: " + error);
  }
  return event;
}

bool Client::ping() {
  const std::string line = round_trip(R"({"op":"ping","v":1})");
  std::string error;
  const std::optional<json::Value> parsed = json::parse(line, &error);
  if (!parsed.has_value()) return false;
  const json::Value* ok = parsed->find("ok");
  const json::Value* pong = parsed->find("pong");
  return ok != nullptr && ok->is_bool() && ok->as_bool() &&
         pong != nullptr && pong->is_bool() && pong->as_bool();
}

std::string Client::metrics() {
  const std::string header = round_trip(R"({"op":"metrics","v":1})");
  std::string error;
  const std::optional<json::Value> parsed = json::parse(header, &error);
  if (!parsed.has_value()) {
    common::fail("net: bad metrics header: " + error);
  }
  const json::Value* count = parsed->find("metrics_lines");
  if (count == nullptr || !count->is_number()) {
    common::fail("net: metrics header missing metrics_lines");
  }
  const long lines = static_cast<long>(count->as_number());
  std::string jsonl;
  for (long i = 0; i < lines; ++i) {
    jsonl += read_payload_or_throw();
    jsonl.push_back('\n');
  }
  return jsonl;
}

}  // namespace mlcr::net
