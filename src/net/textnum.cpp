#include "net/textnum.h"

#include <charconv>
#include <system_error>

namespace mlcr::net {

std::string dec(long long value) {
  char buf[24];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, result.ptr);
}

std::string dec_u64(unsigned long long value) {
  char buf[24];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, result.ptr);
}

bool parse_u64(std::string_view text, unsigned long long* out) {
  if (text.empty()) return false;
  unsigned long long value = 0;
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (result.ec != std::errc() || result.ptr != text.data() + text.size()) {
    return false;
  }
  *out = value;
  return true;
}

std::string hexf(double value) {
  char buf[48];
  const auto result =
      std::to_chars(buf, buf + sizeof(buf), value, std::chars_format::hex);
  std::string out(buf, result.ptr);
  // to_chars omits the "0x" prefix; restore it so the text stays parseable
  // by any C/C++ float parser (and byte-identical to the %a rendering).
  if (!out.empty() && (out.front() == '-' ? out[1] != 'i' && out[1] != 'n'
                                          : out[0] != 'i' && out[0] != 'n')) {
    out.insert(out.front() == '-' ? 1 : 0, "0x");
  }
  return out;
}

bool parse_double(std::string_view text, double* out) {
  if (text.empty()) return false;
  bool negative = false;
  if (text.front() == '+' || text.front() == '-') {
    negative = text.front() == '-';
    text.remove_prefix(1);
    if (text.empty()) return false;
  }
  std::chars_format format = std::chars_format::general;
  if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    text.remove_prefix(2);
    format = std::chars_format::hex;
  }
  double value = 0.0;
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), value, format);
  if (result.ec != std::errc() || result.ptr != text.data() + text.size()) {
    return false;
  }
  *out = negative ? -value : value;
  return true;
}

}  // namespace mlcr::net
