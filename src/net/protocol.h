// Wire protocol of the planning daemon (mlcrd): line-delimited JSON, one
// request object per line, one response per request.  See DESIGN.md §9 for
// the full grammar.
//
// Requests ({"op": ...}; op defaults to "plan" when absent):
//   {"op":"plan","solution":"ML(opt-scale)","config":{...},
//    "options":{...},"label":"...","deadline_ms":500}
//   {"op":"ping"}
//   {"op":"metrics"}
//
// Responses (one line, except metrics):
//   {"ok":true,"report":{...}}                       — planned
//   {"ok":false,"rejected":"<reason>","message":..}  — load-shed / bad input
//   {"ok":true,"pong":true}                          — ping
//   {"ok":true,"metrics_lines":N}\n<N registry JSONL lines>
//
// Exactness: every double crosses the wire as a hex-float *string*
// ("0x1.8p+1"), the same canonical rendering svc::canonical_key uses, so a
// report decoded by the client is bit-identical to the in-process
// PlanReport — no decimal rounding anywhere.  Plain JSON numbers are also
// accepted on input for hand-written requests.  NaN/Inf are rejected in
// both directions with a structured error, never a dropped connection.
#pragma once

#include <optional>
#include <string>

#include "net/json.h"
#include "svc/plan_request.h"

namespace mlcr::net {

/// Rejection taxonomy: every request the daemon refuses names one of these
/// reasons, each with its own metrics counter (net.rejected.<reason>).
enum class Reject {
  kBadRequest,  ///< unparseable line / malformed or non-finite fields
  kOverloaded,  ///< admission queue full — retry against another instance
  kDeadline,    ///< deadline expired before the solve started
  kDraining,    ///< server is shutting down; connection closes after this
};

[[nodiscard]] std::string to_string(Reject reason);
[[nodiscard]] bool reject_from_string(const std::string& text, Reject* out);

/// Exact double <-> wire rendering (hex-float string, "%a").
[[nodiscard]] json::Value encode_double(double value);  // throws on NaN/Inf
[[nodiscard]] bool decode_double(const json::Value& value, double* out,
                                 std::string* error);

[[nodiscard]] bool solution_from_string(const std::string& text,
                                        opt::Solution* out);
[[nodiscard]] bool status_from_string(const std::string& text,
                                      opt::Status* out);

// --- plan request -----------------------------------------------------

/// Renders the full "plan" op envelope; deadline_ms semantics: 0 = use the
/// server default, < 0 = already expired (load-shed probes), > 0 = budget.
[[nodiscard]] json::Value encode_request(const svc::PlanRequest& request,
                                         long deadline_ms = 0);
[[nodiscard]] std::string encode_request_line(const svc::PlanRequest& request,
                                              long deadline_ms = 0);

/// Decodes a "plan" envelope (already parsed).  On failure returns nullopt
/// with a field-naming message in *error; *deadline_ms receives the raw
/// request value (0 when absent).
[[nodiscard]] std::optional<svc::PlanRequest> decode_request(
    const json::Value& envelope, long* deadline_ms, std::string* error);

// --- plan report ------------------------------------------------------

[[nodiscard]] json::Value encode_report(const svc::PlanReport& report);
/// The full accepted-response line {"ok":true,"report":{...}}.
[[nodiscard]] std::string encode_report_line(const svc::PlanReport& report);

[[nodiscard]] bool decode_report(const json::Value& value,
                                 svc::PlanReport* out, std::string* error);

// --- response envelopes -----------------------------------------------

[[nodiscard]] std::string encode_rejection_line(Reject reason,
                                                const std::string& message);

/// One decoded response to a "plan" op: either an accepted report or a
/// structured rejection.
struct Response {
  bool accepted = false;
  svc::PlanReport report;          ///< valid when accepted
  Reject reject = Reject::kBadRequest;  ///< valid when !accepted
  std::string message;             ///< rejection detail
};

/// Parses one response line (report or rejection).  False = the line was
/// not a valid protocol response (transport-level failure).
[[nodiscard]] bool decode_response(const std::string& line, Response* out,
                                   std::string* error);

}  // namespace mlcr::net
