// Wire protocol of the planning daemon (mlcrd): line-delimited JSON, one
// request object per line, one response per request.  See DESIGN.md §9 and
// §11 for the full grammar.
//
// Requests ({"op": ...}; op defaults to "plan" when absent):
//   {"op":"plan","solution":"ML(opt-scale)","config":{...},
//    "options":{...},"label":"...","deadline_ms":500,"v":2}
//   {"op":"validate",...plan fields...,"monte_carlo":{...},
//    "backend":"coarse"|"des","v":2}
//   {"op":"ping","v":2}
//   {"op":"metrics","v":2}
//   {"op":"ingest",...plan fields...,"trace":"<trace text>",
//    "observed_seconds":"0x...","observed_scale":"0x...","v":2}
//   {"op":"subscribe",...plan fields...,"v":2}
//
// Responses (one line, except metrics; "v" echoes the request's version):
//   {"ok":true,"report":{...},"v":V}                 — planned
//   {"ok":true,"sim_report":{...},"v":V}             — validated
//   {"ok":false,"rejected":"<reason>","message":..,"v":V}
//   {"ok":true,"pong":true,"v":V}                    — ping
//   {"ok":true,"metrics_lines":N,"v":V}\n<N registry JSONL lines>
//   {"ok":true,"ingest":{...}, "v":V}                — ingest accepted
//   {"ok":true,"subscribed":true,"key":..,"plan_epoch":E,"v":V}
//
// Push events (to subscribed connections only, any time after the ack;
// the control loop is in DESIGN.md §13; "v" echoes the subscribe's version):
//   {"event":"plan","key":..,"plan_epoch":E,"report":{...},"v":V}
//   {"event":"drained","v":V}                        — last line before close
//
// Versioning / compatibility rule: every request and response envelope
// carries "v".  An absent "v" means 1 (pre-versioning peers stay
// compatible); the daemon accepts every version in
// [kMinProtocolVersion, kProtocolVersion] and answers in the version the
// request used — so a v1 peer keeps receiving byte-identical v1 lines.  A
// peer receiving a version it does not implement must answer a structured
// bad_request naming the version — never silently drop or misparse the
// line.  Adding fields is allowed within a version (decoders ignore
// unknown members); removing or re-typing a field requires a bump.  An
// unknown "op" is likewise answered with a structured bad_request listing
// the supported ops (see supported_ops()).
//
// v1 -> v2: the "validate" request gained the optional "backend" member
// ("coarse" | "des", see svc::SimBackend).  Absent decodes as "coarse", so
// every v1 validate request keeps its pre-backend meaning; an unknown
// backend string is a structured bad_request naming the accepted values.
// The sim_report echoes the backend, emitted only when != "coarse" so
// coarse reports stay byte-identical to v1.
//
// Exactness: every double crosses the wire as a hex-float *string*
// ("0x1.8p+1"), the same canonical rendering svc::canonical_key uses, so a
// report decoded by the client is bit-identical to the in-process
// PlanReport — no decimal rounding anywhere.  Plain JSON numbers are also
// accepted on input for hand-written requests.  NaN/Inf are rejected in
// both directions with a structured error, never a dropped connection.
// RNG seeds cross the wire as decimal strings (a JSON number is a double
// and cannot represent every uint64).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ctrl/replanner.h"
#include "net/json.h"
#include "svc/plan_request.h"
#include "svc/sim_request.h"

namespace mlcr::net {

/// The newest protocol version this build speaks (see the compatibility
/// rule in the file comment).
inline constexpr long kProtocolVersion = 2;

/// The oldest version still accepted; requests in
/// [kMinProtocolVersion, kProtocolVersion] are served in their own version.
inline constexpr long kMinProtocolVersion = 1;

/// The ops the daemon implements, in documentation order.  This is the one
/// op table: the server's dispatch and the unknown-op hint list are both
/// derived from it (see encode_unknown_op_line).
[[nodiscard]] const std::vector<std::string>& supported_ops();

/// Checks the envelope's "v" member: absent (meaning 1) or any version in
/// [kMinProtocolVersion, kProtocolVersion] passes; anything else fails with
/// a message naming the received and supported versions.
[[nodiscard]] bool envelope_version_ok(const json::Value& envelope,
                                       std::string* error);

/// The envelope's "v" member as a long (absent or non-numeric means 1).
/// Meaningful after envelope_version_ok passed; the server threads this
/// through every response encoder so replies echo the request's version.
[[nodiscard]] long envelope_version(const json::Value& envelope);

/// Rejection taxonomy: every request the daemon refuses names one of these
/// reasons, each with its own metrics counter (net.rejected.<reason>).
enum class Reject {
  kBadRequest,  ///< unparseable line / malformed or non-finite fields
  kOverloaded,  ///< admission queue full — retry against another instance
  kDeadline,    ///< deadline expired before the solve started
  kDraining,    ///< server is shutting down; connection closes after this
};

[[nodiscard]] std::string to_string(Reject reason);
[[nodiscard]] bool reject_from_string(const std::string& text, Reject* out);

/// Exact double <-> wire rendering (hex-float string, "%a").
[[nodiscard]] json::Value encode_double(double value);  // throws on NaN/Inf
[[nodiscard]] bool decode_double(const json::Value& value, double* out,
                                 std::string* error);

[[nodiscard]] bool solution_from_string(const std::string& text,
                                        opt::Solution* out);
[[nodiscard]] bool status_from_string(const std::string& text,
                                      opt::Status* out);

// --- plan request -----------------------------------------------------

/// Renders the full "plan" op envelope; deadline_ms semantics: 0 = use the
/// server default, < 0 = already expired (load-shed probes), > 0 = budget.
[[nodiscard]] json::Value encode_request(const svc::PlanRequest& request,
                                         long deadline_ms = 0);
[[nodiscard]] std::string encode_request_line(const svc::PlanRequest& request,
                                              long deadline_ms = 0);

/// Decodes a "plan" envelope (already parsed).  On failure returns nullopt
/// with a field-naming message in *error; *deadline_ms receives the raw
/// request value (0 when absent).
[[nodiscard]] std::optional<svc::PlanRequest> decode_request(
    const json::Value& envelope, long* deadline_ms, std::string* error);

// --- plan report ------------------------------------------------------

[[nodiscard]] json::Value encode_report(const svc::PlanReport& report);
/// The full accepted-response line {"ok":true,"report":{...},"v":V};
/// `version` is the envelope version to stamp (the request's, echoed).
[[nodiscard]] std::string encode_report_line(const svc::PlanReport& report,
                                             long version = kProtocolVersion);

[[nodiscard]] bool decode_report(const json::Value& value,
                                 svc::PlanReport* out, std::string* error);

// --- validate request / report ----------------------------------------

/// Renders the full "validate" op envelope.  The monte_carlo.threads field
/// never crosses the wire: parallel degree is a server-side resource
/// decision and, by the determinism contract, cannot change the report.
/// The backend is emitted only when != coarse (v1-compatible default).
[[nodiscard]] json::Value encode_sim_request(const svc::SimRequest& request,
                                             long deadline_ms = 0);
[[nodiscard]] std::string encode_sim_request_line(
    const svc::SimRequest& request, long deadline_ms = 0);

/// Decodes a "validate" envelope (already parsed), including the
/// MonteCarloOptions validation (sim::validate), so runs <= 0 or a sentinel
/// seed come back as a structured bad_request at the wire boundary.
[[nodiscard]] std::optional<svc::SimRequest> decode_sim_request(
    const json::Value& envelope, long* deadline_ms, std::string* error);

[[nodiscard]] json::Value encode_sim_report(const svc::SimReport& report);
/// The full accepted-response line {"ok":true,"sim_report":{...},"v":V}.
[[nodiscard]] std::string encode_sim_report_line(
    const svc::SimReport& report, long version = kProtocolVersion);

[[nodiscard]] bool decode_sim_report(const json::Value& value,
                                     svc::SimReport* out, std::string* error);

// --- ingest request / report (op "ingest") ----------------------------

/// Renders the full "ingest" op envelope: the plan fields identify the
/// stream; the observed events travel as the sim::trace_io text format in
/// the "trace" string member.
[[nodiscard]] json::Value encode_ingest_request(
    const ctrl::IngestRequest& request);
[[nodiscard]] std::string encode_ingest_request_line(
    const ctrl::IngestRequest& request);

/// Decodes an "ingest" envelope (already parsed).  The embedded trace text
/// is parsed against the config's level count, so every sim::read_trace
/// rejection (garbage tokens, bad levels, non-ascending times) surfaces as
/// a structured bad_request here, not a dropped connection.
[[nodiscard]] std::optional<ctrl::IngestRequest> decode_ingest_request(
    const json::Value& envelope, std::string* error);

[[nodiscard]] json::Value encode_ingest_report(
    const ctrl::IngestReport& report);
/// The full accepted-response line {"ok":true,"ingest":{...},"v":V}.
[[nodiscard]] std::string encode_ingest_report_line(
    const ctrl::IngestReport& report, long version = kProtocolVersion);
[[nodiscard]] bool decode_ingest_report(const json::Value& value,
                                        ctrl::IngestReport* out,
                                        std::string* error);

/// One decoded response to an "ingest" op.
struct IngestResponse {
  bool accepted = false;
  ctrl::IngestReport report;       ///< valid when accepted
  Reject reject = Reject::kBadRequest;  ///< valid when !accepted
  std::string message;             ///< rejection detail
};

[[nodiscard]] bool decode_ingest_response(const std::string& line,
                                          IngestResponse* out,
                                          std::string* error);

// --- subscribe (op "subscribe") ----------------------------------------

/// Renders the full "subscribe" op envelope (plan fields name the stream).
[[nodiscard]] std::string encode_subscribe_request_line(
    const svc::PlanRequest& request);
[[nodiscard]] std::optional<svc::PlanRequest> decode_subscribe_request(
    const json::Value& envelope, std::string* error);

/// The acknowledgement {"ok":true,"subscribed":true,"key":..,
/// "plan_epoch":E,"v":V} sent before any push event.
[[nodiscard]] std::string encode_subscribe_ack_line(
    const std::string& key, std::uint64_t plan_epoch,
    long version = kProtocolVersion);

/// One decoded response to a "subscribe" op.
struct SubscribeResponse {
  bool accepted = false;
  std::string key;                 ///< valid when accepted
  std::uint64_t plan_epoch = 0;    ///< epoch at subscription time
  Reject reject = Reject::kBadRequest;  ///< valid when !accepted
  std::string message;             ///< rejection detail
};

[[nodiscard]] bool decode_subscribe_response(const std::string& line,
                                             SubscribeResponse* out,
                                             std::string* error);

// --- push events --------------------------------------------------------

/// One server-initiated line on a subscribed connection: a revised plan, or
/// the final "drained" notice sent during graceful shutdown.
struct PushEvent {
  enum class Kind { kPlan, kDrained };
  Kind kind = Kind::kDrained;
  std::string key;               ///< kPlan only
  std::uint64_t plan_epoch = 0;  ///< kPlan only
  svc::PlanReport report;        ///< kPlan only
};

[[nodiscard]] std::string encode_plan_event_line(
    const std::string& key, std::uint64_t plan_epoch,
    const svc::PlanReport& report, long version = kProtocolVersion);
[[nodiscard]] std::string encode_drained_event_line(
    long version = kProtocolVersion);

/// Parses one push-event line.  False = not a push event (transport-level
/// failure or a non-event line).
[[nodiscard]] bool decode_push_event(const std::string& line, PushEvent* out,
                                     std::string* error);

// --- response envelopes -----------------------------------------------

[[nodiscard]] std::string encode_rejection_line(
    Reject reason, const std::string& message,
    long version = kProtocolVersion);

/// The structured unknown-op rejection: a bad_request whose message and
/// `"supported": [...]` array are both generated from supported_ops() — the
/// hint list is never hand-kept anywhere else.
[[nodiscard]] std::string encode_unknown_op_line(
    const std::string& op, long version = kProtocolVersion);

/// One decoded response to a "plan" op: either an accepted report or a
/// structured rejection.
struct Response {
  bool accepted = false;
  svc::PlanReport report;          ///< valid when accepted
  Reject reject = Reject::kBadRequest;  ///< valid when !accepted
  std::string message;             ///< rejection detail
};

/// Parses one response line (report or rejection).  False = the line was
/// not a valid protocol response (transport-level failure).
[[nodiscard]] bool decode_response(const std::string& line, Response* out,
                                   std::string* error);

/// One decoded response to a "validate" op.
struct SimResponse {
  bool accepted = false;
  svc::SimReport report;           ///< valid when accepted
  Reject reject = Reject::kBadRequest;  ///< valid when !accepted
  std::string message;             ///< rejection detail
};

[[nodiscard]] bool decode_sim_response(const std::string& line,
                                       SimResponse* out, std::string* error);

// --- deterministic fingerprints ---------------------------------------

/// The exact wire encoding with the fields that legitimately differ
/// between two executions of the same request (timing, cache provenance)
/// zeroed.  Two reports are deterministically identical iff their
/// fingerprints are byte-equal — this is what `mlcr_client --check-local`
/// and the cross-thread-count determinism tests compare.
[[nodiscard]] std::string deterministic_fingerprint(svc::PlanReport report);
[[nodiscard]] std::string deterministic_fingerprint(svc::SimReport report);

}  // namespace mlcr::net
