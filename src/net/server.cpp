#include "net/server.h"

#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <utility>

#include "common/error.h"
#include "common/shutdown.h"
#include "net/protocol.h"
#include "net/textnum.h"

namespace mlcr::net {

namespace {

using Clock = std::chrono::steady_clock;

/// One poll tick: every blocking wait in the daemon re-checks its stop flag
/// at least this often, which bounds how stale a drain request can get.
constexpr int kPollTickMs = 100;

}  // namespace

Server::Server(ServerOptions options)
    : options_(options),
      // threads=0 (hardware concurrency): plan requests are parallelized by
      // the solver workers calling the thread-safe plan_one concurrently,
      // but validate requests additionally fan their Monte-Carlo replica
      // chunks across this engine pool — the fan-out is deterministic, so
      // the width is purely a throughput knob.
      engine_(svc::SweepEngineOptions{.threads = 0,
                                      .cache_capacity =
                                          options.cache_capacity}),
      queue_(options.queue_capacity) {}

Server::~Server() { drain(); }

void Server::start() {
  MLCR_EXPECT(!started_.load(), "net: server already started");

  listener_.emplace(Listener::bind_loopback(options_.port));
  io_pool_.emplace(options_.io_threads);

  std::size_t solver_threads = options_.solver_threads;
  if (solver_threads == 0) {
    solver_threads = std::thread::hardware_concurrency();
    if (solver_threads == 0) solver_threads = 1;
  }
  solver_workers_.reserve(solver_threads);
  for (std::size_t i = 0; i < solver_threads; ++i) {
    solver_workers_.emplace_back([this] { worker_loop(); });
  }

  metrics_.gauge("net.io_threads").set(static_cast<double>(io_pool_->size()));
  metrics_.gauge("net.solver_threads")
      .set(static_cast<double>(solver_threads));
  metrics_.gauge("net.queue.capacity")
      .set(static_cast<double>(queue_.capacity()));

  accepting_.store(true, std::memory_order_release);
  started_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

std::uint16_t Server::port() const {
  MLCR_EXPECT(listener_.has_value(), "net: server not started");
  return listener_->port();
}

void Server::drain() {
  if (!started_.load(std::memory_order_acquire) ||
      drained_.load(std::memory_order_acquire)) {
    return;
  }
  // New lines from already-connected peers get "rejected: draining".
  draining_.store(true, std::memory_order_release);
  // Stop accepting and release the port before touching in-flight work.
  accepting_.store(false, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_->close();
  // Join connection handlers first: they may be blocked on solve futures,
  // so the solver workers must still be alive while the io pool drains.
  io_pool_.reset();
  queue_.close();
  for (auto& worker : solver_workers_) worker.join();
  solver_workers_.clear();
  drained_.store(true, std::memory_order_release);
}

void Server::serve_until_shutdown() {
  while (running() && !common::shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  drain();
}

void Server::accept_loop() {
  while (accepting_.load(std::memory_order_acquire)) {
    std::optional<Socket> accepted = listener_->accept_for(kPollTickMs);
    if (!accepted.has_value()) continue;
    metrics_.counter("net.connections").increment();
    // std::function requires copyable captures; hand the move-only socket
    // through a shared_ptr.
    auto socket = std::make_shared<Socket>(std::move(*accepted));
    auto handled = io_pool_->submit(
        [this, socket] { handle_connection(std::move(*socket)); });
    (void)handled;  // handlers report via the connection, not the future
  }
}

void Server::worker_loop() {
  std::function<void()> job;
  while (queue_.pop(&job)) {
    metrics_.gauge("net.queue.depth").set(static_cast<double>(queue_.size()));
    job();
    job = nullptr;  // release captured state promptly
  }
}

void Server::handle_connection(Socket socket) {
  Connection conn(std::move(socket));
  std::string line;
  while (true) {
    const Connection::ReadResult result = conn.read_line(&line, kPollTickMs);
    if (result == Connection::ReadResult::kTimeout) {
      if (draining_.load(std::memory_order_acquire)) break;
      continue;
    }
    if (result == Connection::ReadResult::kError) {
      // Oversized line or transport fault; best-effort error, then close.
      metrics_.counter("net.rejected.bad_request").increment();
      (void)conn.write_line(encode_rejection_line(
          Reject::kBadRequest, "line exceeds protocol limits"));
      break;
    }
    if (result != Connection::ReadResult::kLine) break;  // kEof
    if (!handle_line(line, &conn)) break;
  }
}

bool Server::handle_line(const std::string& line, Connection* conn) {
  common::metrics::ScopedTimer request_timer(
      metrics_.timer("net.request.seconds"));
  metrics_.counter("net.requests").increment();

  std::string error;
  const std::optional<json::Value> envelope = json::parse(line, &error);
  if (!envelope.has_value()) {
    return reject(conn, Reject::kBadRequest, "parse: " + error);
  }

  std::string version_error;
  if (!envelope_version_ok(*envelope, &version_error)) {
    return reject(conn, Reject::kBadRequest, version_error);
  }

  std::string op = "plan";
  if (const json::Value* member = envelope->find("op")) {
    if (!member->is_string()) {
      return reject(conn, Reject::kBadRequest, "op: expected string");
    }
    op = member->as_string();
  }

  if (op == "ping") {
    metrics_.counter("net.pings").increment();
    return conn->write_line(R"({"ok":true,"pong":true,"v":1})");
  }
  if (op == "metrics") return write_metrics(conn);
  if (op == "plan") return handle_plan(*envelope, conn);
  if (op == "validate") return handle_validate(*envelope, conn);
  // Unknown op: structured bad_request listing the supported ops.
  metrics_.counter("net.rejected." + to_string(Reject::kBadRequest))
      .increment();
  return conn->write_line(encode_unknown_op_line(op));
}

std::optional<std::chrono::steady_clock::time_point> Server::resolve_deadline(
    long deadline_ms, long* budget_ms) const {
  // Request deadline wins; 0 falls back to the server default; a value < 0
  // is already expired (deterministic load-shed probe).  No deadline at all
  // maps to nullopt ("never expires").
  *budget_ms = deadline_ms != 0 ? deadline_ms : options_.default_deadline_ms;
  if (*budget_ms == 0) return std::nullopt;
  return Clock::now() + std::chrono::milliseconds(*budget_ms);
}

bool Server::handle_plan(const json::Value& envelope, Connection* conn) {
  std::string error;
  long deadline_ms = 0;
  std::optional<svc::PlanRequest> request =
      decode_request(envelope, &deadline_ms, &error);
  if (!request.has_value()) {
    return reject(conn, Reject::kBadRequest, error);
  }
  if (draining_.load(std::memory_order_acquire)) {
    return reject(conn, Reject::kDraining, "server is draining");
  }

  long budget_ms = 0;
  const std::optional<Clock::time_point> deadline =
      resolve_deadline(deadline_ms, &budget_ms);

  auto task = std::make_shared<
      std::packaged_task<std::optional<svc::PlanReport>()>>(
      [this, plan_request = std::move(*request), deadline] {
        return engine_.plan_one(plan_request, deadline);
      });
  std::future<std::optional<svc::PlanReport>> pending = task->get_future();
  if (!queue_.try_push([task] { (*task)(); })) {
    return reject(conn, Reject::kOverloaded,
                  "admission queue full (capacity " +
                      dec(static_cast<long long>(queue_.capacity())) + ")");
  }
  metrics_.counter("net.admitted").increment();
  metrics_.gauge("net.queue.depth").set(static_cast<double>(queue_.size()));

  // Blocking here occupies an io thread, never a solver worker, so the
  // queue always drains.  drain() keeps workers alive until handlers join.
  const std::optional<svc::PlanReport> report = pending.get();
  if (!report.has_value()) {
    return reject(conn, Reject::kDeadline,
                  "deadline expired before solve (budget " +
                      dec(budget_ms) + " ms)");
  }
  metrics_.counter("net.planned").increment();
  return conn->write_line(encode_report_line(*report));
}

bool Server::handle_validate(const json::Value& envelope, Connection* conn) {
  std::string error;
  long deadline_ms = 0;
  std::optional<svc::SimRequest> request =
      decode_sim_request(envelope, &deadline_ms, &error);
  if (!request.has_value()) {
    return reject(conn, Reject::kBadRequest, error);
  }
  if (draining_.load(std::memory_order_acquire)) {
    return reject(conn, Reject::kDraining, "server is draining");
  }

  long budget_ms = 0;
  const std::optional<Clock::time_point> deadline =
      resolve_deadline(deadline_ms, &budget_ms);

  // Same admission path as handle_plan: the solver worker that pops this
  // task calls validate_one, which plans and then fans the Monte-Carlo
  // replica chunks across the engine's own pool (a different pool, so the
  // blocked worker cannot starve the fan-out).
  auto task = std::make_shared<
      std::packaged_task<std::optional<svc::SimReport>()>>(
      [this, sim_request = std::move(*request), deadline] {
        return engine_.validate_one(sim_request, deadline);
      });
  std::future<std::optional<svc::SimReport>> pending = task->get_future();
  if (!queue_.try_push([task] { (*task)(); })) {
    return reject(conn, Reject::kOverloaded,
                  "admission queue full (capacity " +
                      dec(static_cast<long long>(queue_.capacity())) + ")");
  }
  metrics_.counter("net.admitted").increment();
  metrics_.gauge("net.queue.depth").set(static_cast<double>(queue_.size()));

  const std::optional<svc::SimReport> report = pending.get();
  if (!report.has_value()) {
    return reject(conn, Reject::kDeadline,
                  "deadline expired before simulation (budget " +
                      dec(budget_ms) + " ms)");
  }
  metrics_.counter("net.validated").increment();
  return conn->write_line(encode_sim_report_line(*report));
}

bool Server::write_metrics(Connection* conn) {
  metrics_.counter("net.metrics_requests").increment();
  metrics_.gauge("net.queue.depth").set(static_cast<double>(queue_.size()));
  // Daemon counters and engine (cache/solver) instruments, one namespace.
  std::string jsonl = metrics_.to_jsonl();
  jsonl += engine_.metrics().to_jsonl();
  if (!jsonl.empty() && jsonl.back() != '\n') jsonl.push_back('\n');
  std::size_t lines = 0;
  for (const char c : jsonl) {
    if (c == '\n') ++lines;
  }
  if (!conn->write_line(R"({"ok":true,"metrics_lines":)" + dec(lines) +
                        R"(,"v":1})")) {
    return false;
  }
  return conn->write_all(jsonl);
}

bool Server::reject(Connection* conn, Reject reason,
                    const std::string& message) {
  metrics_.counter("net.rejected." + to_string(reason)).increment();
  return conn->write_line(encode_rejection_line(reason, message));
}

}  // namespace mlcr::net
