#include "net/server.h"

#include <sys/epoll.h>

#include <algorithm>
#include <functional>
#include <future>
#include <map>
#include <utility>

#include "common/error.h"
#include "common/shutdown.h"
#include "net/textnum.h"

namespace mlcr::net {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(options),
      // threads=0 (hardware concurrency): plan requests are parallelized by
      // the solver workers calling the thread-safe plan_one concurrently,
      // but validate requests additionally fan their Monte-Carlo replica
      // chunks across this engine pool — the fan-out is deterministic, so
      // the width is purely a throughput knob.
      engine_(svc::SweepEngineOptions{.threads = 0,
                                      .cache_capacity =
                                          options.cache_capacity}),
      queue_(options.queue_capacity),
      replanner_(options.replanner) {}

Server::~Server() { drain(); }

void Server::start() {
  MLCR_EXPECT(!started_.load(), "net: server already started");

  listener_.emplace(Listener::bind_loopback(options_.port));
  set_nonblocking(listener_->fd());

  std::size_t shard_count = options_.shards;
  if (shard_count == 0) {
    shard_count = std::thread::hardware_concurrency();
    if (shard_count == 0) shard_count = 1;
  }
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    Shard* raw = shard.get();
    shard->reactor.set_dispatcher(
        [this, raw](int fd, std::uint32_t events) {
          dispatch(raw, fd, events);
        });
    shards_.push_back(std::move(shard));
  }
  // The listener lives in shard 0's epoll; accepted sockets are handed to
  // their owning shard round-robin (deterministic per-shard accept counts).
  shards_[0]->reactor.add_fd(listener_->fd(), EPOLLIN);

  std::size_t solver_threads = options_.solver_threads;
  if (solver_threads == 0) {
    solver_threads = std::thread::hardware_concurrency();
    if (solver_threads == 0) solver_threads = 1;
  }
  solver_workers_.reserve(solver_threads);
  for (std::size_t i = 0; i < solver_threads; ++i) {
    solver_workers_.emplace_back([this] { worker_loop(); });
  }

  metrics_.gauge("net.shards").set(static_cast<double>(shard_count));
  metrics_.gauge("net.solver_threads")
      .set(static_cast<double>(solver_threads));
  metrics_.gauge("net.queue.capacity")
      .set(static_cast<double>(queue_.capacity()));

  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    shard->thread = std::thread([raw] { raw->reactor.run(); });
  }
  started_.store(true, std::memory_order_release);
}

std::uint16_t Server::port() const {
  MLCR_EXPECT(listener_.has_value(), "net: server not started");
  return listener_->port();
}

void Server::drain() {
  if (!started_.load(std::memory_order_acquire) ||
      drained_.load(std::memory_order_acquire)) {
    return;
  }
  // New plan/validate frames from already-connected peers now get
  // "rejected: draining"; ping/metrics are still answered.
  draining_.store(true, std::memory_order_release);

  // Release the port on shard 0's loop thread (it owns the listener fd).
  {
    std::promise<void> closed;
    std::future<void> done = closed.get_future();
    shards_[0]->reactor.post([this, &closed] {
      if (listener_->valid()) {
        shards_[0]->reactor.remove_fd(listener_->fd());
        listener_->close();
      }
      closed.set_value();
    });
    done.wait();
  }

  // Everything admitted is answered and flushed before the loops stop:
  // solver completions post deliveries back to live reactors, and the
  // reactors keep flushing output buffers until the kernel accepted every
  // response byte.  The flush wait is bounded: a peer that stops reading
  // holds its buffer at EWOULDBLOCK forever, so past the timeout the
  // stalled conns are force-closed (net.drain.force_closed) instead of one
  // dead peer hanging the whole shutdown sequence.
  const bool bounded = options_.drain_flush_timeout_ms > 0;
  const auto flush_budget =
      std::chrono::milliseconds(options_.drain_flush_timeout_ms);
  auto force_close_at = Clock::now() + flush_budget;
  while (outstanding_.load(std::memory_order_acquire) > 0 ||
         unflushed_.load(std::memory_order_acquire) > 0) {
    if (bounded && unflushed_.load(std::memory_order_acquire) > 0 &&
        Clock::now() >= force_close_at) {
      for (auto& shard : shards_) {
        Shard* raw = shard.get();
        raw->reactor.post([this, raw] { force_close_stalled(raw); });
      }
      // Re-arm: deliveries still in flight get a fresh flush budget of
      // their own once they reach a socket.
      force_close_at = Clock::now() + flush_budget;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Subscribers are long-lived by design, so they get an explicit goodbye
  // instead of waiting out the flush budget: push a final
  // {"event":"drained"} to every subscribed conn and close it once the line
  // flushed.  The wait is bounded the same way as the response flush above.
  if (subscriber_count_.load(std::memory_order_acquire) > 0) {
    for (auto& shard : shards_) {
      Shard* raw = shard.get();
      raw->reactor.post([this, raw] { push_drained(raw); });
    }
    auto drained_give_up = Clock::now() + flush_budget;
    while (subscriber_count_.load(std::memory_order_acquire) > 0 ||
           unflushed_.load(std::memory_order_acquire) > 0) {
      if (bounded && Clock::now() >= drained_give_up) {
        for (auto& shard : shards_) {
          Shard* raw = shard.get();
          raw->reactor.post([this, raw] { force_close_stalled(raw); });
        }
        drained_give_up = Clock::now() + flush_budget;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  for (auto& shard : shards_) shard->reactor.stop();
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }

  // TOCTOU backstop: a reactor thread can pass its draining_ check just
  // before the flag store above and admit one more request after the waits
  // already observed zero — that delivery lands on a stopped reactor.  The
  // loop threads are joined, so this thread is now the sole owner of every
  // shard: run the posted deliveries here until the stragglers are
  // answered, then give their output one bounded flush pass.  Nothing
  // admitted is ever silently dropped.
  while (outstanding_.load(std::memory_order_acquire) > 0) {
    for (auto& shard : shards_) shard->reactor.drain_posted();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto straggler_give_up = Clock::now() + flush_budget;
  while (unflushed_.load(std::memory_order_acquire) > 0 &&
         (!bounded || Clock::now() < straggler_give_up)) {
    for (auto& shard : shards_) {
      std::vector<int> pending;
      for (const auto& [fd, conn] : shard->conns) {
        if (conn->counted_unflushed) pending.push_back(fd);
      }
      for (const int fd : pending) {
        const auto it = shard->conns.find(fd);
        if (it != shard->conns.end()) flush(shard.get(), it->second.get());
      }
    }
    if (unflushed_.load(std::memory_order_acquire) == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  for (auto& shard : shards_) shard->conns.clear();

  queue_.close();
  for (auto& worker : solver_workers_) worker.join();
  solver_workers_.clear();
  drained_.store(true, std::memory_order_release);
}

void Server::serve_until_shutdown() {
  while (running() && !common::shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  drain();
}

void Server::worker_loop() {
  std::function<void()> job;
  while (queue_.pop(&job)) {
    metrics_.gauge("net.queue.depth").set(static_cast<double>(queue_.size()));
    job();
    job = nullptr;  // release captured state promptly
  }
}

void Server::dispatch(Shard* shard, int fd, std::uint32_t events) {
  if (shard->index == 0 && listener_->valid() && fd == listener_->fd()) {
    accept_ready();
    return;
  }
  const auto it = shard->conns.find(fd);
  if (it == shard->conns.end()) return;  // stale event after close
  const std::uint64_t conn_id = it->second->id;

  if ((events & EPOLLIN) != 0) on_readable(shard, it->second.get());
  // on_readable may have closed the connection; re-resolve before writing.
  Conn* conn = find_conn(shard, fd, conn_id);
  if (conn == nullptr) return;
  if ((events & EPOLLOUT) != 0) flush(shard, conn);
  conn = find_conn(shard, fd, conn_id);
  if (conn == nullptr) return;
  // HUP/ERR without readable data: the peer is gone for good.
  if ((events & (EPOLLHUP | EPOLLERR)) != 0 && (events & EPOLLIN) == 0) {
    close_conn(shard, fd);
  }
}

void Server::accept_ready() {
  while (true) {
    std::optional<Socket> accepted = listener_->accept_nonblocking();
    if (!accepted.has_value()) break;
    metrics_.counter("net.connections").increment();
    const std::size_t target =
        next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
    Shard* shard = shards_[target].get();
    // std::function requires copyable captures; hand the move-only socket
    // through a shared_ptr.
    auto socket = std::make_shared<Socket>(std::move(*accepted));
    shard->reactor.post(
        [this, shard, socket] { adopt(shard, std::move(*socket)); });
  }
}

void Server::adopt(Shard* shard, Socket socket) {
  if (!socket.valid()) return;  // already moved out (defensive)
  set_nonblocking(socket.fd());
  set_tcp_nodelay(socket.fd());
  auto conn = std::make_unique<Conn>();
  conn->id = conn_ids_.fetch_add(1, std::memory_order_relaxed) + 1;
  conn->socket = std::move(socket);
  const int fd = conn->socket.fd();
  shard->reactor.add_fd(fd, EPOLLIN);
  shard->conns.emplace(fd, std::move(conn));
  metrics_
      .counter("net.shard." + dec(static_cast<long long>(shard->index)) +
               ".accepted")
      .increment();
}

Server::Conn* Server::find_conn(Shard* shard, int fd,
                                std::uint64_t conn_id) const {
  const auto it = shard->conns.find(fd);
  if (it == shard->conns.end() || it->second->id != conn_id) return nullptr;
  return it->second.get();
}

void Server::close_conn(Shard* shard, int fd) {
  const auto it = shard->conns.find(fd);
  if (it == shard->conns.end()) return;
  if (it->second->counted_unflushed) {
    unflushed_.fetch_sub(1, std::memory_order_acq_rel);
  }
  if (it->second->subscribed) {
    // Unregister from the push directory; in-flight push tasks miss the
    // conn-id check and are skipped.
    const std::uint64_t conn_id = it->second->id;
    std::lock_guard<std::mutex> lock(subs_mutex_);
    const auto entry = subscribers_.find(it->second->sub_key);
    if (entry != subscribers_.end()) {
      auto& targets = entry->second;
      for (auto target = targets.begin(); target != targets.end(); ++target) {
        if (target->fd == fd && target->conn_id == conn_id) {
          targets.erase(target);
          break;
        }
      }
      if (targets.empty()) subscribers_.erase(entry);
    }
    const auto count =
        subscriber_count_.fetch_sub(1, std::memory_order_acq_rel) - 1;
    metrics_.gauge("net.subscribers").set(static_cast<double>(count));
  }
  shard->reactor.remove_fd(fd);
  shard->conns.erase(it);  // Socket destructor closes the fd
}

void Server::force_close_stalled(Shard* shard) {
  // Runs on the shard's loop thread (or on the drain thread once the loop
  // threads are joined): drops every conn whose output has been stuck at
  // EWOULDBLOCK past the drain flush budget.
  std::vector<int> stalled;
  for (const auto& [fd, conn] : shard->conns) {
    if (conn->counted_unflushed) stalled.push_back(fd);
  }
  for (const int fd : stalled) {
    metrics_.counter("net.drain.force_closed").increment();
    close_conn(shard, fd);
  }
}

void Server::on_readable(Shard* shard, Conn* conn) {
  const int fd = conn->socket.fd();
  const std::uint64_t conn_id = conn->id;
  bool peer_gone = false;
  std::string incoming;
  while (true) {
    incoming.clear();
    const IoStatus status = recv_nonblocking(fd, &incoming);
    if (status == IoStatus::kOk) {
      conn->reader.feed(incoming);
      continue;
    }
    if (status == IoStatus::kWouldBlock) break;
    peer_gone = true;  // kEof or kError: no more requests on this stream
    break;
  }

  if (!conn->codec_counted && conn->reader.codec().has_value()) {
    conn->codec_counted = true;
    metrics_.counter("net.codec." + to_string(*conn->reader.codec()))
        .increment();
  }

  std::string payload;
  std::string frame_error;
  while (true) {
    const FrameReader::Result result =
        conn->reader.next(&payload, &frame_error);
    if (result == FrameReader::Result::kFrame) {
      handle_payload(shard, conn, payload);
      if (find_conn(shard, fd, conn_id) == nullptr) return;  // closed on us
      continue;
    }
    if (result == FrameReader::Result::kNeedMore) break;
    // Framing violation: best-effort structured error, then close (there is
    // no resync point in the stream).  The reader error is sticky, so later
    // readable events land here again while the rejection is still flushing
    // — only the first violation is counted and answered.  The close flag
    // is set before the send: flush honors it on success, and a transport
    // fault inside the send destroys the conn outright.
    if (!conn->close_after_flush) {
      metrics_.counter("net.rejected." + to_string(Reject::kBadRequest))
          .increment();
      conn->close_after_flush = true;
      // No envelope to echo a version from; the oldest version is the one
      // every peer can parse.
      send_payload(shard, conn,
                   encode_rejection_line(Reject::kBadRequest, frame_error,
                                         kMinProtocolVersion));
    }
    break;
  }

  conn = find_conn(shard, fd, conn_id);
  if (conn == nullptr) return;
  if (peer_gone) {
    // Responses still being solved have nowhere to go; drop the conn now
    // (deliveries find no matching conn id and are skipped).
    close_conn(shard, fd);
    return;
  }
  if (conn->close_after_flush && conn->out_offset >= conn->outbuf.size()) {
    close_conn(shard, fd);
  }
}

void Server::send_payload(Shard* shard, Conn* conn,
                          std::string_view payload) {
  const Codec codec = conn->reader.codec().value_or(Codec::kJson);
  std::string framed;
  try {
    framed = frame_payload(payload, codec);
  } catch (const common::Error&) {
    // Response exceeds what the codec can frame; the conn cannot be
    // answered coherently, so drop it.
    conn->close_after_flush = true;
    conn->outbuf.clear();
    conn->out_offset = 0;
    flush(shard, conn);
    return;
  }
  conn->outbuf.append(framed);
  flush(shard, conn);
}

void Server::flush(Shard* shard, Conn* conn) {
  const int fd = conn->socket.fd();
  while (conn->out_offset < conn->outbuf.size()) {
    std::size_t sent = 0;
    const IoStatus status = send_nonblocking(
        fd,
        std::string_view(conn->outbuf).substr(conn->out_offset), &sent);
    if (status == IoStatus::kOk) {
      conn->out_offset += sent;
      continue;
    }
    if (status == IoStatus::kWouldBlock) {
      if (!conn->want_write) {
        conn->want_write = true;
        shard->reactor.modify_fd(fd, EPOLLIN | EPOLLOUT);
      }
      if (!conn->counted_unflushed) {
        conn->counted_unflushed = true;
        unflushed_.fetch_add(1, std::memory_order_acq_rel);
      }
      return;
    }
    close_conn(shard, fd);  // transport fault
    return;
  }
  conn->outbuf.clear();
  conn->out_offset = 0;
  if (conn->want_write) {
    conn->want_write = false;
    shard->reactor.modify_fd(fd, EPOLLIN);
  }
  if (conn->counted_unflushed) {
    conn->counted_unflushed = false;
    unflushed_.fetch_sub(1, std::memory_order_acq_rel);
  }
  if (conn->close_after_flush) close_conn(shard, fd);
}

void Server::respond(Shard* shard, Conn* conn, Clock::time_point started,
                     std::string_view payload) {
  metrics_.timer("net.request.seconds").observe(seconds_since(started));
  send_payload(shard, conn, payload);
}

void Server::reject_request(Shard* shard, Conn* conn,
                            Clock::time_point started, Reject reason,
                            const std::string& message, long version) {
  metrics_.counter("net.rejected." + to_string(reason)).increment();
  respond(shard, conn, started,
          encode_rejection_line(reason, message, version));
}

void Server::handle_payload(Shard* shard, Conn* conn,
                            const std::string& payload) {
  const Clock::time_point started = Clock::now();
  metrics_.counter("net.requests").increment();

  std::string error;
  const std::optional<json::Value> envelope = json::parse(payload, &error);
  if (!envelope.has_value()) {
    reject_request(shard, conn, started, Reject::kBadRequest,
                   "parse: " + error);
    return;
  }

  std::string version_error;
  if (!envelope_version_ok(*envelope, &version_error)) {
    reject_request(shard, conn, started, Reject::kBadRequest, version_error);
    return;
  }
  // Accepted versions echo back on every response line; rejections above
  // fall back to kMinProtocolVersion, which every peer parses.
  const long version = envelope_version(*envelope);

  std::string op = "plan";
  if (const json::Value* member = envelope->find("op")) {
    if (!member->is_string()) {
      reject_request(shard, conn, started, Reject::kBadRequest,
                     "op: expected string", version);
      return;
    }
    op = member->as_string();
  }

  // The one op table (same order as supported_ops()): dispatch and the
  // unknown-op hint list both derive from tables generated in one place
  // instead of hand-kept string chains.
  using Handler = void (Server::*)(Shard*, Conn*, Clock::time_point,
                                   const json::Value&, long);
  static constexpr std::pair<std::string_view, Handler> kOpTable[] = {
      {"plan", &Server::handle_plan},
      {"validate", &Server::handle_validate},
      {"ping", &Server::handle_ping},
      {"metrics", &Server::handle_metrics},
      {"ingest", &Server::handle_ingest},
      {"subscribe", &Server::handle_subscribe},
  };
  for (const auto& [name, handler] : kOpTable) {
    if (op == name) {
      (this->*handler)(shard, conn, started, *envelope, version);
      return;
    }
  }
  // Unknown op: structured bad_request listing the supported ops.
  metrics_.counter("net.rejected." + to_string(Reject::kBadRequest))
      .increment();
  respond(shard, conn, started, encode_unknown_op_line(op, version));
}

void Server::handle_ping(Shard* shard, Conn* conn, Clock::time_point started,
                         const json::Value& /*envelope*/, long version) {
  metrics_.counter("net.pings").increment();
  respond(shard, conn, started,
          R"({"ok":true,"pong":true,"v":)" + dec(version) + "}");
}

void Server::handle_metrics(Shard* shard, Conn* conn,
                            Clock::time_point started,
                            const json::Value& /*envelope*/, long version) {
  write_metrics(shard, conn, started, version);
}

std::optional<Server::Clock::time_point> Server::resolve_deadline(
    long deadline_ms, long* budget_ms) const {
  // Request deadline wins; 0 falls back to the server default; a value < 0
  // is already expired (deterministic load-shed probe).  No deadline at all
  // maps to nullopt ("never expires").
  *budget_ms = deadline_ms != 0 ? deadline_ms : options_.default_deadline_ms;
  if (*budget_ms == 0) return std::nullopt;
  return Clock::now() + std::chrono::milliseconds(*budget_ms);
}

void Server::handle_plan(Shard* shard, Conn* conn, Clock::time_point started,
                         const json::Value& envelope, long version) {
  std::string error;
  long deadline_ms = 0;
  std::optional<svc::PlanRequest> request =
      decode_request(envelope, &deadline_ms, &error);
  if (!request.has_value()) {
    reject_request(shard, conn, started, Reject::kBadRequest, error, version);
    return;
  }
  if (draining_.load(std::memory_order_acquire)) {
    reject_request(shard, conn, started, Reject::kDraining,
                   "server is draining", version);
    return;
  }

  const std::string key = svc::canonical_key(*request);
  svc::PlanReport cached;
  if (engine_.try_cached_plan(key, &cached)) {
    cached.cache_hit = true;
    cached.queue_wait_seconds = 0.0;
    cached.label = request->label;
    metrics_.counter("net.planned").increment();
    respond(shard, conn, started, encode_report_line(cached, version));
    return;
  }

  long budget_ms = 0;
  const std::optional<Clock::time_point> deadline =
      resolve_deadline(deadline_ms, &budget_ms);
  // Admission-time deadline enforcement: once a request joins a flight it
  // is always answered — by delivery time the report is a cache entry, and
  // cache hits are always served.
  if (deadline.has_value() && Clock::now() >= *deadline) {
    reject_request(shard, conn, started, Reject::kDeadline,
                   "deadline expired before solve (budget " + dec(budget_ms) +
                       " ms)",
                   version);
    return;
  }

  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  const int fd = conn->socket.fd();
  const std::uint64_t conn_id = conn->id;
  // Leadership is only known after join(); the flag is written before the
  // leader publishes the solve, so a waiter observing false is a genuine
  // follower (its report is by definition a coalesced copy -> cache_hit).
  auto leader_flag = std::make_shared<std::atomic<bool>>(false);
  auto waiter = [this, shard, fd, conn_id, started, leader_flag, version,
                 label = request->label](const svc::PlanReport* finished) {
    // The report pointer is only valid during this call; copy before
    // posting to the owning shard.
    std::shared_ptr<svc::PlanReport> copy;
    if (finished != nullptr) {
      copy = std::make_shared<svc::PlanReport>(*finished);
      copy->label = label;
      if (!leader_flag->load(std::memory_order_acquire)) {
        copy->cache_hit = true;
        copy->queue_wait_seconds = 0.0;
      }
    }
    shard->reactor.post([this, shard, fd, conn_id, copy, started, version] {
      deliver_plan(shard, fd, conn_id, copy.get(), started, version);
      outstanding_.fetch_sub(1, std::memory_order_acq_rel);
    });
  };

  const bool leader = plan_flight_.join(key, std::move(waiter));
  metrics_
      .counter(leader ? "net.singleflight.leaders" : "net.singleflight.joined")
      .increment();
  if (!leader) return;  // coalesced onto the in-flight solve
  leader_flag->store(true, std::memory_order_release);

  auto job = [this, key, plan_request = std::move(*request)] {
    // No deadline here (admission already enforced it), so the result is
    // always engaged.
    const std::optional<svc::PlanReport> report =
        engine_.plan_one(plan_request, std::nullopt);
    plan_flight_.complete(key, *report);
  };
  if (!queue_.try_push(std::move(job))) {
    // Aborts the whole flight: every waiter (this one included) is answered
    // "rejected: overloaded" through its delivery callback.
    plan_flight_.abort(key);
    return;
  }
  metrics_.counter("net.admitted").increment();
  metrics_.gauge("net.queue.depth").set(static_cast<double>(queue_.size()));
}

void Server::deliver_plan(Shard* shard, int fd, std::uint64_t conn_id,
                          const svc::PlanReport* report,
                          Clock::time_point started, long version) {
  Conn* conn = find_conn(shard, fd, conn_id);
  if (conn == nullptr) return;  // client left while the solve ran
  if (report == nullptr) {
    reject_request(shard, conn, started, Reject::kOverloaded,
                   "admission queue full (capacity " +
                       dec(static_cast<long long>(queue_.capacity())) + ")",
                   version);
    return;
  }
  metrics_.counter("net.planned").increment();
  respond(shard, conn, started, encode_report_line(*report, version));
}

void Server::handle_validate(Shard* shard, Conn* conn,
                             Clock::time_point started,
                             const json::Value& envelope, long version) {
  std::string error;
  long deadline_ms = 0;
  std::optional<svc::SimRequest> request =
      decode_sim_request(envelope, &deadline_ms, &error);
  if (!request.has_value()) {
    reject_request(shard, conn, started, Reject::kBadRequest, error, version);
    return;
  }
  if (draining_.load(std::memory_order_acquire)) {
    reject_request(shard, conn, started, Reject::kDraining,
                   "server is draining", version);
    return;
  }

  const std::string key = svc::canonical_key(*request);
  svc::SimReport cached;
  if (engine_.try_cached_sim(key, &cached)) {
    cached.cache_hit = true;
    cached.label = request->label;
    metrics_.counter("net.validated").increment();
    respond(shard, conn, started, encode_sim_report_line(cached, version));
    return;
  }

  long budget_ms = 0;
  const std::optional<Clock::time_point> deadline =
      resolve_deadline(deadline_ms, &budget_ms);
  if (deadline.has_value() && Clock::now() >= *deadline) {
    reject_request(shard, conn, started, Reject::kDeadline,
                   "deadline expired before simulation (budget " +
                       dec(budget_ms) + " ms)",
                   version);
    return;
  }

  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  const int fd = conn->socket.fd();
  const std::uint64_t conn_id = conn->id;
  auto leader_flag = std::make_shared<std::atomic<bool>>(false);
  auto waiter = [this, shard, fd, conn_id, started, leader_flag, version,
                 label = request->label](const svc::SimReport* finished) {
    std::shared_ptr<svc::SimReport> copy;
    if (finished != nullptr) {
      copy = std::make_shared<svc::SimReport>(*finished);
      copy->label = label;
      if (!leader_flag->load(std::memory_order_acquire)) {
        copy->cache_hit = true;
      }
    }
    shard->reactor.post([this, shard, fd, conn_id, copy, started, version] {
      deliver_validate(shard, fd, conn_id, copy.get(), started, version);
      outstanding_.fetch_sub(1, std::memory_order_acq_rel);
    });
  };

  const bool leader = sim_flight_.join(key, std::move(waiter));
  metrics_
      .counter(leader ? "net.singleflight.leaders" : "net.singleflight.joined")
      .increment();
  if (!leader) return;
  leader_flag->store(true, std::memory_order_release);

  // The solver worker that pops this job calls validate_one, which plans
  // and then fans the Monte-Carlo replica chunks across the engine's own
  // pool (a different pool, so the busy worker cannot starve the fan-out).
  auto job = [this, key, sim_request = std::move(*request)] {
    const std::optional<svc::SimReport> report =
        engine_.validate_one(sim_request, std::nullopt);
    sim_flight_.complete(key, *report);
  };
  if (!queue_.try_push(std::move(job))) {
    sim_flight_.abort(key);
    return;
  }
  metrics_.counter("net.admitted").increment();
  metrics_.gauge("net.queue.depth").set(static_cast<double>(queue_.size()));
}

void Server::deliver_validate(Shard* shard, int fd, std::uint64_t conn_id,
                              const svc::SimReport* report,
                              Clock::time_point started, long version) {
  Conn* conn = find_conn(shard, fd, conn_id);
  if (conn == nullptr) return;
  if (report == nullptr) {
    reject_request(shard, conn, started, Reject::kOverloaded,
                   "admission queue full (capacity " +
                       dec(static_cast<long long>(queue_.capacity())) + ")",
                   version);
    return;
  }
  metrics_.counter("net.validated").increment();
  respond(shard, conn, started, encode_sim_report_line(*report, version));
}

void Server::handle_ingest(Shard* shard, Conn* conn,
                           Clock::time_point started,
                           const json::Value& envelope, long version) {
  std::string error;
  std::optional<ctrl::IngestRequest> request =
      decode_ingest_request(envelope, &error);
  if (!request.has_value()) {
    reject_request(shard, conn, started, Reject::kBadRequest, error, version);
    return;
  }
  if (draining_.load(std::memory_order_acquire)) {
    reject_request(shard, conn, started, Reject::kDraining,
                   "server is draining", version);
    return;
  }

  // Pure estimator arithmetic — safe on the reactor thread.  Batch
  // validation failures (regressing windows, out-of-window events) surface
  // as structured bad_requests, same as decode failures.
  ctrl::IngestOutcome outcome;
  try {
    outcome = replanner_.ingest(*request);
  } catch (const common::Error& e) {
    reject_request(shard, conn, started, Reject::kBadRequest, e.what(),
                   version);
    return;
  }
  respond(shard, conn, started,
          encode_ingest_report_line(outcome.report, version));
  if (!outcome.revised.has_value()) return;

  // Drift crossed the threshold: re-solve the revised request through the
  // bounded queue and push the committed revision to the stream's
  // subscribers.  No singleflight here — the replan_pending latch already
  // guarantees one in-flight re-solve per stream.
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  auto job = [this, key = outcome.report.key,
              revised = std::move(*outcome.revised)] {
    const std::optional<svc::PlanReport> report =
        engine_.plan_one(revised, std::nullopt);
    const ctrl::RevisedPlan plan = replanner_.commit(key, *report);
    publish_plan(key, plan);
    outstanding_.fetch_sub(1, std::memory_order_acq_rel);
  };
  if (!queue_.try_push(std::move(job))) {
    // Shed the re-solve, keep the drifted estimators armed: the next batch
    // re-triggers against a hopefully less loaded queue.
    replanner_.cancel_replan(outcome.report.key);
    metrics_.counter("ctrl.replan.shed").increment();
    outstanding_.fetch_sub(1, std::memory_order_acq_rel);
    return;
  }
  metrics_.counter("net.admitted").increment();
  metrics_.gauge("net.queue.depth").set(static_cast<double>(queue_.size()));
}

void Server::handle_subscribe(Shard* shard, Conn* conn,
                              Clock::time_point started,
                              const json::Value& envelope, long version) {
  std::string error;
  std::optional<svc::PlanRequest> request =
      decode_subscribe_request(envelope, &error);
  if (!request.has_value()) {
    reject_request(shard, conn, started, Reject::kBadRequest, error, version);
    return;
  }
  if (draining_.load(std::memory_order_acquire)) {
    reject_request(shard, conn, started, Reject::kDraining,
                   "server is draining", version);
    return;
  }
  if (conn->subscribed) {
    reject_request(shard, conn, started, Reject::kBadRequest,
                   "connection already subscribed", version);
    return;
  }

  const std::string key = svc::canonical_key(*request);
  conn->subscribed = true;
  conn->sub_key = key;
  conn->sub_version = version;
  {
    std::lock_guard<std::mutex> lock(subs_mutex_);
    subscribers_[key].push_back(
        Subscriber{shard->index, conn->socket.fd(), conn->id, version});
  }
  const auto count =
      subscriber_count_.fetch_add(1, std::memory_order_acq_rel) + 1;
  metrics_.counter("net.subscriptions").increment();
  metrics_.gauge("net.subscribers").set(static_cast<double>(count));
  respond(shard, conn, started,
          encode_subscribe_ack_line(key, replanner_.epoch(key), version));
}

void Server::publish_plan(const std::string& key,
                          const ctrl::RevisedPlan& plan) {
  // Encode once per envelope version in use (push events echo the version
  // each subscriber spoke at subscribe time), share the line across the
  // subscribers of that version; each send runs on the subscriber's owning
  // shard so connection state stays single-threaded.
  std::vector<Subscriber> targets;
  {
    std::lock_guard<std::mutex> lock(subs_mutex_);
    const auto it = subscribers_.find(key);
    if (it != subscribers_.end()) targets = it->second;
  }
  std::map<long, std::shared_ptr<const std::string>> lines;
  for (const Subscriber& target : targets) {
    auto& line = lines[target.version];
    if (line == nullptr) {
      line = std::make_shared<const std::string>(encode_plan_event_line(
          key, plan.plan_epoch, plan.report, target.version));
    }
    Shard* shard = shards_[target.shard].get();
    shard->reactor.post([this, shard, target, line] {
      Conn* conn = find_conn(shard, target.fd, target.conn_id);
      if (conn == nullptr) return;  // subscriber left since the snapshot
      metrics_.counter("net.pushes").increment();
      send_payload(shard, conn, *line);
    });
  }
}

std::vector<int> Server::subscribed_fds(const Shard* shard) {
  std::vector<int> subscribed;
  for (const auto& [fd, conn] : shard->conns) {
    if (conn->subscribed) subscribed.push_back(fd);
  }
  std::sort(subscribed.begin(), subscribed.end());
  return subscribed;
}

void Server::push_drained(Shard* shard) {
  // Runs on the shard's loop thread during drain: every subscriber gets a
  // final {"event":"drained"} line and closes once it flushed, in sorted fd
  // order so the drain sequence is reproducible.
  for (const int fd : subscribed_fds(shard)) {
    const auto it = shard->conns.find(fd);
    if (it == shard->conns.end()) continue;
    Conn* conn = it->second.get();
    conn->close_after_flush = true;
    send_payload(shard, conn, encode_drained_event_line(conn->sub_version));
  }
}

void Server::write_metrics(Shard* shard, Conn* conn,
                           Clock::time_point started, long version) {
  metrics_.counter("net.metrics_requests").increment();
  metrics_.gauge("net.queue.depth").set(static_cast<double>(queue_.size()));
  // Daemon counters, engine (cache/solver), and control-plane instruments,
  // one namespace.
  std::string jsonl = metrics_.to_jsonl();
  jsonl += engine_.metrics().to_jsonl();
  jsonl += replanner_.metrics().to_jsonl();
  if (!jsonl.empty() && jsonl.back() != '\n') jsonl.push_back('\n');
  std::size_t lines = 0;
  for (const char c : jsonl) {
    if (c == '\n') ++lines;
  }
  const int fd = conn->socket.fd();
  const std::uint64_t conn_id = conn->id;
  const Codec codec = conn->reader.codec().value_or(Codec::kJson);
  respond(shard, conn, started, R"({"ok":true,"metrics_lines":)" +
                                    dec(lines) + R"(,"v":)" + dec(version) +
                                    "}");
  // A send can close the conn on transport error; re-resolve before each
  // body write.
  conn = find_conn(shard, fd, conn_id);
  if (conn == nullptr) return;
  if (codec == Codec::kJson) {
    // The JSONL body is already line-framed; append it verbatim.
    conn->outbuf.append(jsonl);
    flush(shard, conn);
    return;
  }
  // Binary codec: each metrics line is its own frame, so the body carries
  // the same line-oriented content as the JSON codec.
  std::size_t begin = 0;
  while (begin < jsonl.size()) {
    const std::size_t end = jsonl.find('\n', begin);
    send_payload(shard, conn,
                 std::string_view(jsonl).substr(begin, end - begin));
    begin = end + 1;
    conn = find_conn(shard, fd, conn_id);
    if (conn == nullptr) return;
  }
}

}  // namespace mlcr::net
