// The planning daemon (mlcrd) core: a TCP server speaking the
// line-delimited JSON protocol of net/protocol.h on 127.0.0.1.
//
// Threading model (three tiers, all bounded):
//   * one accept thread polling the listener with a 100 ms tick;
//   * an io pool (common::ThreadPool) running one connection handler per
//     live connection — handlers parse lines, enqueue solves, and block on
//     the solve future (never on the solver itself);
//   * a fixed team of solver workers popping a bounded svc::AdmissionQueue
//     and calling SweepEngine::plan_one (op "plan") or validate_one
//     (op "validate") with the request's deadline; validate_one fans its
//     Monte-Carlo replicas across the engine's own pool.
//
// Admission control: the queue in front of the solvers has a hard capacity;
// when try_push fails the request is answered "rejected: overloaded"
// immediately — the daemon sheds load instead of building an unbounded
// backlog.  Per-request deadlines: a miss whose deadline passed while
// queued is answered "rejected: deadline" without entering Algorithm 1
// (cache hits are always served).  Both paths are observable as distinct
// counters (net.rejected.overloaded / net.rejected.deadline).
//
// Graceful drain (SIGINT/SIGTERM via common::shutdown, or drain()):
//   stop accepting -> close the listener -> answer in-flight lines ->
//   join connection handlers -> close the queue -> join solver workers.
// Nothing already admitted is dropped; new work is refused with
// "rejected: draining".
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "svc/admission_queue.h"
#include "svc/sweep_engine.h"

namespace mlcr::net {

struct ServerOptions {
  /// Port to bind on 127.0.0.1; 0 picks an ephemeral port (see port()).
  std::uint16_t port = 0;
  /// Connection-handler threads; also the maximum number of connections
  /// served concurrently (further accepts wait in the pool's task queue).
  std::size_t io_threads = 8;
  /// Solver worker threads; 0 = hardware concurrency.
  std::size_t solver_threads = 0;
  /// Admission queue capacity; a full queue answers "rejected: overloaded".
  /// 0 admits nothing (useful for load-shed tests).
  std::size_t queue_capacity = 256;
  /// Default per-request deadline when the request carries none; 0 = no
  /// deadline.
  long default_deadline_ms = 0;
  /// SweepEngine LRU capacity (cache hits are served even past deadline).
  std::size_t cache_capacity = 65536;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, spawns the accept thread / io pool / solver workers.  Throws
  /// common::Error if the port cannot be bound.
  void start();

  /// The bound port (valid after start(); resolves ephemeral binds).
  [[nodiscard]] std::uint16_t port() const;

  /// Graceful shutdown, idempotent: refuse new work, finish everything
  /// already admitted, join all threads.  Called by the destructor.
  void drain();

  [[nodiscard]] bool running() const noexcept {
    return started_.load(std::memory_order_acquire) &&
           !drained_.load(std::memory_order_acquire);
  }

  /// Blocks until `predicate-ish`: returns when drain() completed or the
  /// process shutdown flag (common::shutdown_requested) is raised; in the
  /// latter case it performs the drain itself.  The mlcrd main loop is just
  /// start(); serve_until_shutdown().
  void serve_until_shutdown();

  /// Daemon-wide instrumentation (net.* plus the engine's cache/solver
  /// metrics via engine().metrics()).
  [[nodiscard]] common::metrics::Registry& metrics() noexcept {
    return metrics_;
  }
  [[nodiscard]] svc::SweepEngine& engine() noexcept { return engine_; }

 private:
  void accept_loop();
  void worker_loop();
  void handle_connection(Socket socket);
  /// Dispatches one request line; false = stop serving this connection.
  [[nodiscard]] bool handle_line(const std::string& line, Connection* conn);
  [[nodiscard]] bool handle_plan(const json::Value& envelope,
                                 Connection* conn);
  [[nodiscard]] bool handle_validate(const json::Value& envelope,
                                     Connection* conn);
  /// Resolves the effective solve deadline: the request's deadline_ms wins,
  /// 0 falls back to the server default, and a fully unbounded request maps
  /// to nullopt ("never expires").  *budget_ms receives the winning budget
  /// for reject messages.
  [[nodiscard]] std::optional<std::chrono::steady_clock::time_point>
  resolve_deadline(long deadline_ms, long* budget_ms) const;
  [[nodiscard]] bool write_metrics(Connection* conn);
  [[nodiscard]] bool reject(Connection* conn, Reject reason,
                            const std::string& message);

  ServerOptions options_;
  svc::SweepEngine engine_;
  svc::AdmissionQueue queue_;
  common::metrics::Registry metrics_;

  std::optional<Listener> listener_;
  std::optional<common::ThreadPool> io_pool_;
  std::vector<std::thread> solver_workers_;
  std::thread accept_thread_;

  std::atomic<bool> accepting_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> drained_{false};
};

}  // namespace mlcr::net
