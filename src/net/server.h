// The planning daemon (mlcrd) core: a reactor-per-core TCP server speaking
// the framed protocol of net/protocol.h + net/codec.h on 127.0.0.1
// (DESIGN.md §12).
//
// Threading model (all bounded):
//   * N reactor shards, one epoll loop thread each; every connection is
//     owned by exactly one shard, chosen round-robin at accept time, so all
//     connection state is single-threaded by construction.  The listener is
//     registered in shard 0's epoll; accepted sockets are handed to their
//     owning shard via Reactor::post.
//   * a fixed team of solver workers popping a bounded svc::AdmissionQueue
//     and calling SweepEngine::plan_one (op "plan") or validate_one
//     (op "validate"); finished reports travel back to the owning shard as
//     posted delivery tasks.
//
// Request flow for plan/validate (the reactor thread never blocks):
//   decode -> draining? -> engine cache probe (hits answered inline,
//   microseconds) -> admission deadline check ("rejected: deadline") ->
//   singleflight join (identical in-flight keys coalesce onto one solve) ->
//   leader try_pushes the solve; a full queue aborts the flight and every
//   waiter is answered "rejected: overloaded".  Once admitted a request is
//   always answered: the deadline is enforced at admission only, because by
//   delivery time the report is a cache entry and cache hits are always
//   served (plan_one's contract).
//
// Codec: negotiated per connection by the first byte (see net/codec.h);
// responses are framed in the connection's codec.  Responses to pipelined
// requests on one connection are delivered in completion order, not request
// order — reports carry `key`/`label` for matching.
//
// Control plane (DESIGN.md §13): op "ingest" folds observed failure events
// into the ctrl::Replanner on the reactor thread (pure arithmetic, no
// blocking) and answers immediately; when the batch crosses the drift
// threshold the revised request is re-solved through the same bounded
// admission queue, committed (plan_epoch + 1), and the epoch-stamped
// revised report is pushed to every connection subscribed to the stream's
// canonical key.  Op "subscribe" upgrades a connection to a long-lived
// subscriber on its owning shard; pushes travel as Reactor::post tasks to
// that shard, so subscriber state stays single-threaded.  A full queue
// sheds the re-solve (ctrl.replan.shed) and re-arms the drift trigger for
// the next batch — ingest responses themselves are never dropped.
//
// Graceful drain (SIGINT/SIGTERM via common::shutdown, or drain()):
//   set draining (new plan/validate/ingest/subscribe frames get
//   "rejected: draining"; ping/metrics still answered) -> close the
//   listener -> wait until every admitted request has been answered (re-plan
//   pushes included) and every output buffer flushed (the flush wait is
//   bounded by drain_flush_timeout_ms: a peer that stops reading is
//   force-closed rather than hanging shutdown) -> push a final
//   {"event":"drained"} to every subscriber and close it once flushed
//   (bounded the same way) -> stop and join the reactors -> answer any
//   straggler admitted in the instant before the draining flag became
//   visible (its delivery lands on the stopped reactor; the drain thread,
//   now sole owner of all shard state, runs it directly) -> close the
//   queue -> join solver workers.  Nothing already admitted is dropped,
//   short of its peer refusing to read the response.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "ctrl/replanner.h"
#include "net/codec.h"
#include "net/json.h"
#include "net/protocol.h"
#include "net/reactor.h"
#include "net/socket.h"
#include "svc/admission_queue.h"
#include "svc/singleflight.h"
#include "svc/sweep_engine.h"

namespace mlcr::net {

struct ServerOptions {
  /// Port to bind on 127.0.0.1; 0 picks an ephemeral port (see port()).
  std::uint16_t port = 0;
  /// Reactor shards (event-loop threads); 0 = hardware concurrency.
  /// Connections are assigned round-robin, so shard i's accepted count is
  /// deterministic given the accept order (metric net.shard.<i>.accepted).
  std::size_t shards = 0;
  /// Solver worker threads; 0 = hardware concurrency.
  std::size_t solver_threads = 0;
  /// Admission queue capacity; a full queue answers "rejected: overloaded".
  /// 0 admits nothing (useful for load-shed tests).
  std::size_t queue_capacity = 256;
  /// Default per-request deadline when the request carries none; 0 = no
  /// deadline.
  long default_deadline_ms = 0;
  /// SweepEngine LRU capacity (cache hits are served even past deadline).
  std::size_t cache_capacity = 65536;
  /// Upper bound on waiting for unflushed response bytes during drain():
  /// a peer that stops reading its socket is force-closed after this long
  /// (metric net.drain.force_closed) so one stalled connection cannot hang
  /// shutdown.  0 = wait forever.
  long drain_flush_timeout_ms = 5000;
  /// Drift thresholds of the online re-planning control loop (op "ingest"
  /// / op "subscribe"; DESIGN.md §13).
  ctrl::ReplannerOptions replanner;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, spawns the reactor shards and solver workers.  Throws
  /// common::Error if the port cannot be bound.
  void start();

  /// The bound port (valid after start(); resolves ephemeral binds).
  [[nodiscard]] std::uint16_t port() const;

  /// Graceful shutdown, idempotent: refuse new work, answer everything
  /// already admitted, flush, join all threads.  Called by the destructor.
  void drain();

  [[nodiscard]] bool running() const noexcept {
    return started_.load(std::memory_order_acquire) &&
           !drained_.load(std::memory_order_acquire);
  }

  /// Blocks until drain() completed elsewhere or the process shutdown flag
  /// (common::shutdown_requested) is raised; in the latter case it performs
  /// the drain itself.  The mlcrd main loop is start(); serve_until_shutdown().
  void serve_until_shutdown();

  /// Daemon-wide instrumentation (net.* plus the engine's cache/solver
  /// metrics via engine().metrics()).
  [[nodiscard]] common::metrics::Registry& metrics() noexcept {
    return metrics_;
  }
  [[nodiscard]] svc::SweepEngine& engine() noexcept { return engine_; }

  [[nodiscard]] ctrl::Replanner& replanner() noexcept { return replanner_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// One connection, owned by exactly one shard; touched only on that
  /// shard's loop thread.
  struct Conn {
    std::uint64_t id = 0;  ///< guards against fd-number reuse on delivery
    Socket socket;
    FrameReader reader;            ///< codec autodetected from first byte
    std::string outbuf;            ///< bytes not yet accepted by the kernel
    std::size_t out_offset = 0;    ///< flushed prefix of outbuf
    bool want_write = false;       ///< EPOLLOUT interest currently registered
    bool counted_unflushed = false;  ///< counted in unflushed_
    bool codec_counted = false;      ///< counted in net.codec.<name>
    bool close_after_flush = false;
    bool subscribed = false;  ///< long-lived push subscriber (op "subscribe")
    std::string sub_key;      ///< canonical plan key the conn subscribed to
    /// Envelope version of the subscribe request; push events echo it so a
    /// v1 subscriber keeps receiving lines it can parse.
    long sub_version = kMinProtocolVersion;
  };

  struct Shard {
    std::size_t index = 0;
    Reactor reactor;
    std::thread thread;
    std::unordered_map<int, std::unique_ptr<Conn>> conns;
  };

  void worker_loop();
  void dispatch(Shard* shard, int fd, std::uint32_t events);
  /// Accepts until EAGAIN (shard 0 only) and hands sockets round-robin.
  void accept_ready();
  /// Runs on the owning shard's loop: registers the socket and conn state.
  void adopt(Shard* shard, Socket socket);
  void on_readable(Shard* shard, Conn* conn);
  /// Routes one decoded payload (any codec; the payload is the JSON text)
  /// through the op table (see kOpTable in server.cpp).  Every handler
  /// receives the request's envelope version and echoes it on the response.
  void handle_payload(Shard* shard, Conn* conn, const std::string& payload);
  void handle_ping(Shard* shard, Conn* conn, Clock::time_point started,
                   const json::Value& envelope, long version);
  void handle_metrics(Shard* shard, Conn* conn, Clock::time_point started,
                      const json::Value& envelope, long version);
  void handle_plan(Shard* shard, Conn* conn, Clock::time_point started,
                   const json::Value& envelope, long version);
  void handle_validate(Shard* shard, Conn* conn, Clock::time_point started,
                       const json::Value& envelope, long version);
  /// Folds one observed-failure batch into the replanner, answers inline,
  /// and schedules the drift re-solve when the batch crossed the threshold.
  void handle_ingest(Shard* shard, Conn* conn, Clock::time_point started,
                     const json::Value& envelope, long version);
  /// Upgrades the connection to a long-lived subscriber of its plan key.
  void handle_subscribe(Shard* shard, Conn* conn, Clock::time_point started,
                        const json::Value& envelope, long version);
  /// Called on a solver worker after the revised solve: posts the
  /// epoch-stamped plan event to every subscriber of `key` (on their owning
  /// shards).
  void publish_plan(const std::string& key, const ctrl::RevisedPlan& plan);
  /// Runs on the shard's loop during drain: sends {"event":"drained"} to
  /// every subscribed conn and closes it once the event flushed.
  void push_drained(Shard* shard);
  /// Subscribed fds on `shard`, sorted ascending so drain traffic leaves in
  /// a reproducible order (conns is hash-ordered).
  [[nodiscard]] static std::vector<int> subscribed_fds(const Shard* shard);
  void write_metrics(Shard* shard, Conn* conn, Clock::time_point started,
                     long version);
  /// Frames `payload` in the connection's codec and queues/flushes it.
  void send_payload(Shard* shard, Conn* conn, std::string_view payload);
  /// Observes net.request.seconds and sends one response payload.
  void respond(Shard* shard, Conn* conn, Clock::time_point started,
               std::string_view payload);
  /// Counts net.rejected.<reason> and responds with a rejection line
  /// stamped with `version` (the request's envelope version, or
  /// kMinProtocolVersion when the request was unparseable — every peer
  /// parses the oldest version).
  void reject_request(Shard* shard, Conn* conn, Clock::time_point started,
                      Reject reason, const std::string& message,
                      long version = kMinProtocolVersion);
  /// Flushes outbuf as far as the kernel allows; toggles EPOLLOUT interest
  /// and the unflushed_ accounting; may close the conn on transport error.
  void flush(Shard* shard, Conn* conn);
  void close_conn(Shard* shard, int fd);
  /// Closes every conn on `shard` whose output is stuck at EWOULDBLOCK
  /// (drain_flush_timeout_ms exceeded); counts net.drain.force_closed.
  void force_close_stalled(Shard* shard);
  [[nodiscard]] Conn* find_conn(Shard* shard, int fd,
                                std::uint64_t conn_id) const;
  /// Posted back to the owning shard by a solver/singleflight completion;
  /// `version` is the originating request's envelope version.
  void deliver_plan(Shard* shard, int fd, std::uint64_t conn_id,
                    const svc::PlanReport* report, Clock::time_point started,
                    long version);
  void deliver_validate(Shard* shard, int fd, std::uint64_t conn_id,
                        const svc::SimReport* report,
                        Clock::time_point started, long version);
  /// Resolves the effective solve deadline: the request's deadline_ms wins,
  /// 0 falls back to the server default, and a fully unbounded request maps
  /// to nullopt ("never expires").  *budget_ms receives the winning budget
  /// for reject messages.
  [[nodiscard]] std::optional<Clock::time_point> resolve_deadline(
      long deadline_ms, long* budget_ms) const;

  // Everything a posted delivery task can touch (counters, flags, queue,
  // engine, singleflight tables) is declared BEFORE shards_: members
  // declared later are destroyed first, and ~Reactor (inside ~Shard) runs
  // any still-pending posted tasks, so those tasks must only reference
  // members that outlive the shards.
  ServerOptions options_;
  svc::SweepEngine engine_;
  svc::AdmissionQueue queue_;
  common::metrics::Registry metrics_;

  svc::Singleflight<svc::PlanReport> plan_flight_;
  svc::Singleflight<svc::SimReport> sim_flight_;

  ctrl::Replanner replanner_;

  /// Subscriber directory: canonical plan key -> delivery addresses.  The
  /// map is written on shard threads (subscribe/close) and snapshotted on
  /// solver workers (publish), hence the mutex; per-connection state stays
  /// shard-owned.  Declared before shards_ (posted push tasks touch it).
  struct Subscriber {
    std::size_t shard = 0;
    int fd = -1;
    std::uint64_t conn_id = 0;
    long version = kMinProtocolVersion;  ///< subscribe envelope version
  };
  mutable std::mutex subs_mutex_;
  std::unordered_map<std::string, std::vector<Subscriber>> subscribers_;
  std::atomic<std::uint64_t> subscriber_count_{0};

  std::atomic<std::uint64_t> next_shard_{0};   ///< round-robin accept cursor
  std::atomic<std::uint64_t> conn_ids_{0};
  std::atomic<std::uint64_t> outstanding_{0};  ///< admitted, not yet answered
  std::atomic<std::uint64_t> unflushed_{0};    ///< conns with pending outbuf

  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> drained_{false};

  std::optional<Listener> listener_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> solver_workers_;
};

}  // namespace mlcr::net
