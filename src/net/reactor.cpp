#include "net/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <iterator>
#include <utility>

#include "common/error.h"

namespace mlcr::net {

namespace {

/// One poll tick: every blocking wait in the daemon re-checks its stop flag
/// at least this often (the project-wide bounded-wait convention).
constexpr int kPollTickMs = 100;

[[noreturn]] void fail_errno(const char* what) {
  common::fail(std::string("net: reactor: ") + what + ": " +
               std::strerror(errno));
}

}  // namespace

Reactor::Reactor()
    : epoll_(::epoll_create1(EPOLL_CLOEXEC)),
      wakeup_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) {
  if (!epoll_.valid()) fail_errno("epoll_create1()");
  if (!wakeup_.valid()) fail_errno("eventfd()");
  add_fd(wakeup_.fd(), EPOLLIN);
}

Reactor::~Reactor() {
  // Tasks posted after the loop exited still own resources (e.g. sockets
  // handed off mid-drain); run them so nothing leaks.
  run_posted_tasks();
}

void Reactor::wake() noexcept {
  const std::uint64_t one = 1;
  // Non-blocking eventfd: a full counter (EAGAIN) already guarantees the
  // loop will wake, so the result is intentionally ignored.
  [[maybe_unused]] const ssize_t n =
      // mlcr-lint: allow(net-blocking-call)
      ::write(wakeup_.fd(), &one, sizeof(one));
}

void Reactor::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(tasks_mutex_);
    tasks_.push_back(std::move(task));
  }
  wake();
}

void Reactor::stop() {
  stop_.store(true, std::memory_order_release);
  wake();
}

void Reactor::add_fd(int fd, std::uint32_t events) {
  struct epoll_event event = {};
  event.events = events;
  event.data.fd = fd;
  if (::epoll_ctl(epoll_.fd(), EPOLL_CTL_ADD, fd, &event) != 0) {
    fail_errno("epoll_ctl(ADD)");
  }
}

void Reactor::modify_fd(int fd, std::uint32_t events) {
  struct epoll_event event = {};
  event.events = events;
  event.data.fd = fd;
  if (::epoll_ctl(epoll_.fd(), EPOLL_CTL_MOD, fd, &event) != 0) {
    fail_errno("epoll_ctl(MOD)");
  }
}

void Reactor::remove_fd(int fd) noexcept {
  ::epoll_ctl(epoll_.fd(), EPOLL_CTL_DEL, fd, nullptr);
}

void Reactor::run_posted_tasks() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(tasks_mutex_);
    batch.swap(tasks_);
  }
  for (auto& task : batch) task();
}

void Reactor::run() {
  loop_thread_.store(std::this_thread::get_id(), std::memory_order_release);
  struct epoll_event events[64];
  while (!stop_.load(std::memory_order_acquire)) {
    const int ready = ::epoll_wait(epoll_.fd(), events,
                                   static_cast<int>(std::size(events)),
                                   kPollTickMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      fail_errno("epoll_wait()");
    }
    for (int i = 0; i < ready; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wakeup_.fd()) {
        std::uint64_t drained = 0;
        // Non-blocking eventfd drain; EAGAIN just means already drained.
        [[maybe_unused]] const ssize_t n =
            // mlcr-lint: allow(net-blocking-call)
            ::read(wakeup_.fd(), &drained, sizeof(drained));
        continue;
      }
      // The dispatcher resolves fd -> connection in the owner's table; an
      // fd closed earlier in this batch resolves to nothing and the stale
      // event is dropped.
      if (dispatcher_) dispatcher_(fd, events[i].events);
    }
    run_posted_tasks();
  }
  // Final drain so a task posted concurrently with stop() still runs.
  run_posted_tasks();
  loop_thread_.store(std::thread::id{}, std::memory_order_release);
}

}  // namespace mlcr::net
