// Minimal JSON value / parser / writer for the line-delimited wire protocol
// (src/net/protocol.h).  No external dependencies; the subset is exactly
// RFC 8259 documents small enough to fit on one protocol line.
//
// Design rules:
//   * Objects are std::map, so `dump` output is deterministic (keys sorted)
//     — a prerequisite for the codec's bit-identical round-trip guarantee.
//   * `dump` refuses non-finite numbers (JSON has no NaN/Inf); the protocol
//     layer encodes doubles as hex-float *strings* anyway, keeping wire
//     values exact (see protocol.h).
//   * `parse` consumes the whole input (trailing whitespace allowed) and
//     bounds nesting depth, so a hostile request line cannot blow the stack.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mlcr::net::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;  // null
  Value(bool value) : kind_(Kind::kBool), bool_(value) {}
  Value(double value) : kind_(Kind::kNumber), number_(value) {}
  Value(int value) : kind_(Kind::kNumber), number_(value) {}
  Value(long value) : kind_(Kind::kNumber), number_(static_cast<double>(value)) {}
  Value(std::string value) : kind_(Kind::kString), string_(std::move(value)) {}
  Value(const char* value) : kind_(Kind::kString), string_(value) {}
  Value(Array value) : kind_(Kind::kArray), array_(std::move(value)) {}
  Value(Object value) : kind_(Kind::kObject), object_(std::move(value)) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }

  /// Typed accessors throw common::Error on kind mismatch, so a malformed
  /// request surfaces as a structured bad_request, never a crash.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Member lookup on an object; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses one JSON document; the whole text must be consumed.  On failure
/// returns nullopt and describes the problem in *error (position included).
[[nodiscard]] std::optional<Value> parse(std::string_view text,
                                         std::string* error);

/// Serializes on one line (no added whitespace).  Throws common::Error on
/// non-finite numbers.
[[nodiscard]] std::string dump(const Value& value);

}  // namespace mlcr::net::json
